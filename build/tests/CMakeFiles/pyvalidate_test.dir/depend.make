# Empty dependencies file for pyvalidate_test.
# This may be replaced when dependencies are built.
