//===- tests/fstring_test.cpp - f-string interpolation support ------------===//
//
// Taint flows through f-strings in real web code (`f"SELECT {user_input}"`
// is the classic SQL-injection shape), so the frontend models `{...}`
// interpolations as information flow.
//
//===----------------------------------------------------------------------===//

#include "propgraph/GraphBuilder.h"
#include "pyast/AstPrinter.h"
#include "pyast/Lexer.h"
#include "pyast/Parser.h"
#include "pysem/Project.h"
#include "spec/SeedSpec.h"
#include "taint/TaintAnalyzer.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::pyast;

namespace {

TEST(FStringLexerTest, FlagSetOnlyForFStrings) {
  Lexer L("a = f'x{v}'\nb = 'plain'\nc = F\"up\"\nd = rf'raw{v}'\n");
  auto Tokens = L.lexAll();
  std::vector<bool> Flags;
  for (const Token &T : Tokens)
    if (T.is(TokenKind::String))
      Flags.push_back(T.IsFString);
  ASSERT_EQ(Flags.size(), 4u);
  EXPECT_TRUE(Flags[0]);
  EXPECT_FALSE(Flags[1]);
  EXPECT_TRUE(Flags[2]);
  EXPECT_TRUE(Flags[3]);
}

struct ParsedExpr {
  AstContext Ctx;
  const Expr *E = nullptr;
  std::vector<ParseError> Errors;

  explicit ParsedExpr(std::string_view Source) {
    ModuleNode *M = parseSource(Ctx, Source, &Errors);
    if (M->Body.size() == 1)
      if (const auto *A = dyn_cast<AssignStmt>(M->Body[0]))
        E = A->Value;
  }
};

TEST(FStringParserTest, SingleInterpolation) {
  ParsedExpr P("x = f'hello {name}!'\n");
  EXPECT_TRUE(P.Errors.empty());
  const auto *J = dyn_cast<JoinedStrExpr>(P.E);
  ASSERT_NE(J, nullptr);
  ASSERT_EQ(J->Interpolations.size(), 1u);
  EXPECT_EQ(exprToString(J->Interpolations[0]), "name");
}

TEST(FStringParserTest, MultipleAndComplexInterpolations) {
  ParsedExpr P("x = f'{a} and {obj.field} and {d[\"k\"]} and {f(1)}'\n");
  EXPECT_TRUE(P.Errors.empty());
  const auto *J = dyn_cast<JoinedStrExpr>(P.E);
  ASSERT_NE(J, nullptr);
  ASSERT_EQ(J->Interpolations.size(), 4u);
  EXPECT_EQ(exprToString(J->Interpolations[1]), "obj.field");
  EXPECT_EQ(exprToString(J->Interpolations[2]), "d['k']");
  EXPECT_TRUE(isa<CallExpr>(J->Interpolations[3]));
}

TEST(FStringParserTest, FormatSpecAndConversionStripped) {
  ParsedExpr P("x = f'{price:.2f} {name!r} {pct:{width}.{prec}}'\n");
  EXPECT_TRUE(P.Errors.empty());
  const auto *J = dyn_cast<JoinedStrExpr>(P.E);
  ASSERT_NE(J, nullptr);
  ASSERT_EQ(J->Interpolations.size(), 3u);
  EXPECT_EQ(exprToString(J->Interpolations[0]), "price");
  EXPECT_EQ(exprToString(J->Interpolations[1]), "name");
  EXPECT_EQ(exprToString(J->Interpolations[2]), "pct");
}

TEST(FStringParserTest, DebugEqualsForm) {
  ParsedExpr P("x = f'{value=}'\n");
  EXPECT_TRUE(P.Errors.empty());
  const auto *J = dyn_cast<JoinedStrExpr>(P.E);
  ASSERT_NE(J, nullptr);
  ASSERT_EQ(J->Interpolations.size(), 1u);
  EXPECT_EQ(exprToString(J->Interpolations[0]), "value");
}

TEST(FStringParserTest, DoubledBracesAreLiteral) {
  ParsedExpr P("x = f'{{literal}} {real}'\n");
  EXPECT_TRUE(P.Errors.empty());
  const auto *J = dyn_cast<JoinedStrExpr>(P.E);
  ASSERT_NE(J, nullptr);
  ASSERT_EQ(J->Interpolations.size(), 1u);
  EXPECT_EQ(exprToString(J->Interpolations[0]), "real");
}

TEST(FStringParserTest, ConcatenationWithPlainString) {
  ParsedExpr P("x = 'SELECT ' f'{col} FROM t'\n");
  EXPECT_TRUE(P.Errors.empty());
  const auto *J = dyn_cast<JoinedStrExpr>(P.E);
  ASSERT_NE(J, nullptr);
  EXPECT_EQ(J->Interpolations.size(), 1u);
  EXPECT_EQ(J->Text, "SELECT {col} FROM t");
}

TEST(FStringParserTest, UnterminatedInterpolationReported) {
  ParsedExpr P("x = f'{oops'\n");
  EXPECT_FALSE(P.Errors.empty());
}

TEST(FStringParserTest, BadInnerExpressionReported) {
  ParsedExpr P("x = f'{1 +}'\n");
  EXPECT_FALSE(P.Errors.empty());
}

TEST(FStringParserTest, NotInterpolatedWhenPlain) {
  ParsedExpr P("x = 'literal {not_a_field}'\n");
  EXPECT_TRUE(isa<StringExpr>(P.E));
}

//===----------------------------------------------------------------------===//
// Dataflow through f-strings
//===----------------------------------------------------------------------===//

struct FlowFixture {
  pysem::Project Proj;
  propgraph::PropagationGraph Graph;

  explicit FlowFixture(std::string_view Source) {
    const pysem::ModuleInfo &M = Proj.addModule("app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = propgraph::buildModuleGraph(Proj, M);
  }

  propgraph::EventId theEvent(const std::string &Rep) const {
    for (const propgraph::Event &E : Graph.events())
      if (E.primaryRep() == Rep)
        return E.Id;
    ADD_FAILURE() << "no event " << Rep;
    return propgraph::InvalidEvent;
  }
};

TEST(FStringFlowTest, SqlInjectionThroughFString) {
  FlowFixture F("import web\nimport db\n"
                "term = web.read()\n"
                "db.exec(f'SELECT * FROM t WHERE c = {term}')\n");
  auto Reach = F.Graph.reachableFrom(F.theEvent("web.read()"));
  propgraph::EventId Sink = F.theEvent("db.exec()");
  EXPECT_TRUE(std::find(Reach.begin(), Reach.end(), Sink) != Reach.end());
}

TEST(FStringFlowTest, TaintAnalyzerSeesFStringFlow) {
  FlowFixture F("import web\nimport db\n"
                "term = web.read()\n"
                "query = f'SELECT {term}'\n"
                "db.exec(query)\n");
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);
  EXPECT_EQ(Analyzer.analyze(Roles).size(), 1u);
}

TEST(FStringFlowTest, LiteralOnlyFStringCarriesNoTaint) {
  FlowFixture F("import web\nimport db\n"
                "term = web.read()\n"
                "db.exec(f'SELECT 1')\n");
  auto Reach = F.Graph.reachableFrom(F.theEvent("web.read()"));
  propgraph::EventId Sink = F.theEvent("db.exec()");
  EXPECT_TRUE(std::find(Reach.begin(), Reach.end(), Sink) == Reach.end());
}

TEST(FStringFlowTest, CallInsideInterpolationBecomesEvent) {
  FlowFixture F("import web\nimport db\n"
                "db.exec(f'q={web.read()}')\n");
  EXPECT_NE(F.theEvent("web.read()"), propgraph::InvalidEvent);
  auto Reach = F.Graph.reachableFrom(F.theEvent("web.read()"));
  EXPECT_TRUE(std::find(Reach.begin(), Reach.end(),
                        F.theEvent("db.exec()")) != Reach.end());
}

} // namespace
