//===- taint/JsonExport.cpp - Machine-readable report output --------------===//

#include "taint/JsonExport.h"

#include "support/StrUtil.h"

#include <cassert>

using namespace seldon;
using namespace seldon::taint;
using namespace seldon::propgraph;

namespace {

std::string eventJson(const PropagationGraph &Graph, EventId Id) {
  const Event &E = Graph.event(Id);
  return formatString("{\"rep\": \"%s\", \"line\": %u}",
                      jsonEscape(E.primaryRep()).c_str(), E.Loc.Line);
}

} // namespace

std::string
seldon::taint::reportsToJson(const PropagationGraph &Graph,
                             const std::vector<Violation> &Reports,
                             const std::vector<double> *Confidences) {
  assert((!Confidences || Confidences->size() == Reports.size()) &&
         "confidences must be parallel to reports");
  std::string Out = "{\"reports\": [";
  for (size_t I = 0; I < Reports.size(); ++I) {
    const Violation &V = Reports[I];
    if (I)
      Out += ", ";
    Out += "{\"file\": \"";
    Out += jsonEscape(Graph.files()[V.FileIdx]);
    Out += '"';
    if (Confidences)
      Out += formatString(", \"confidence\": %.4f", (*Confidences)[I]);
    Out += ", \"source\": " + eventJson(Graph, V.Source);
    Out += ", \"sink\": " + eventJson(Graph, V.Sink);
    Out += ", \"path\": [";
    for (size_t P = 0; P < V.Path.size(); ++P) {
      if (P)
        Out += ", ";
      Out += eventJson(Graph, V.Path[P]);
    }
    Out += "]}";
  }
  Out += "]}";
  return Out;
}
