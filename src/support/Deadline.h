//===- support/Deadline.h - Cooperative wall-clock budget --------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative wall-clock budget for long pipeline runs. The pipeline
/// never preempts work: every fan-out (per-project build, per-file
/// constraint shard) and the solver loop poll expired() at their natural
/// boundaries and wind the run down with partial, clearly-flagged results
/// instead of hanging — see docs/architecture.md "Failure discipline".
///
/// arm() happens-before the parallel phases (task submission synchronizes
/// through the pool's queue mutex), so the plain fields are safe to poll
/// from workers; expired() is a single steady_clock read.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_DEADLINE_H
#define SELDON_SUPPORT_DEADLINE_H

#include <chrono>
#include <limits>
#include <stdexcept>

namespace seldon {

/// Thrown by stages that cannot produce partial results (constraint
/// generation) when the deadline expires mid-stage; callers turn it into a
/// contextualized failure instead of a hang.
class DeadlineError : public std::runtime_error {
public:
  explicit DeadlineError(const std::string &What)
      : std::runtime_error(What) {}
};

/// An optional wall-clock limit, disabled until armed.
class Deadline {
public:
  Deadline() = default;

  /// Starts the budget: the deadline is \p Seconds from now. Non-positive
  /// seconds leave the deadline disarmed. Re-arming restarts the budget.
  void arm(double Seconds) {
    if (Seconds <= 0)
      return;
    Limit = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(Seconds));
    Armed = true;
  }

  bool armed() const { return Armed; }

  /// True once the budget is exhausted; always false when disarmed.
  bool expired() const { return Armed && Clock::now() >= Limit; }

  /// Seconds left, clamped to 0; +inf when disarmed.
  double remainingSeconds() const {
    if (!Armed)
      return std::numeric_limits<double>::infinity();
    double Left =
        std::chrono::duration<double>(Limit - Clock::now()).count();
    return Left > 0 ? Left : 0.0;
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Limit;
  bool Armed = false;
};

} // namespace seldon

#endif // SELDON_SUPPORT_DEADLINE_H
