//===- tests/propgraph_test.cpp - Tests for the propagation graph ---------===//

#include "propgraph/GraphBuilder.h"
#include "propgraph/RepTable.h"
#include "pysem/Project.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

struct GraphFixture {
  pysem::Project Proj;
  PropagationGraph Graph;

  explicit GraphFixture(std::string_view Source,
                        BuildOptions Opts = BuildOptions(),
                        std::string Path = "app.py") {
    const pysem::ModuleInfo &M = Proj.addModule(std::move(Path), Source);
    EXPECT_TRUE(M.Errors.empty())
        << "fixture source failed to parse: "
        << (M.Errors.empty() ? "" : M.Errors.front().Message);
    Graph = buildModuleGraph(Proj, M, Opts);
  }

  /// Events whose primary representation equals \p Rep.
  std::vector<EventId> eventsByRep(const std::string &Rep) const {
    std::vector<EventId> Out;
    for (const Event &E : Graph.events())
      if (E.primaryRep() == Rep)
        Out.push_back(E.Id);
    return Out;
  }

  /// First event whose primary rep equals \p Rep; asserts existence.
  EventId theEvent(const std::string &Rep) const {
    std::vector<EventId> Found = eventsByRep(Rep);
    EXPECT_EQ(Found.size(), 1u) << "expected exactly one event for " << Rep;
    return Found.empty() ? InvalidEvent : Found.front();
  }

  bool hasEvent(const std::string &Rep) const {
    return !eventsByRep(Rep).empty();
  }

  bool hasEdge(EventId From, EventId To) const {
    const auto &S = Graph.successors(From);
    return std::find(S.begin(), S.end(), To) != S.end();
  }

  /// True if \p To is forward-reachable from \p From.
  bool flowsTo(EventId From, EventId To) const {
    auto R = Graph.reachableFrom(From);
    return std::find(R.begin(), R.end(), To) != R.end();
  }
};

//===----------------------------------------------------------------------===//
// Event creation and representations
//===----------------------------------------------------------------------===//

TEST(GraphBuilderTest, ImportRootedCall) {
  GraphFixture F("from werkzeug import secure_filename\n"
                 "x = secure_filename(name)\n");
  EventId E = F.theEvent("werkzeug.secure_filename()");
  EXPECT_EQ(F.Graph.event(E).Kind, EventKind::Call);
  EXPECT_EQ(F.Graph.event(E).Candidates, AllRolesMask);
}

TEST(GraphBuilderTest, DottedModuleCallDoesNotCreatePrefixEvents) {
  GraphFixture F("import os\n"
                 "p = os.path.join(a, b)\n");
  EXPECT_TRUE(F.hasEvent("os.path.join()"));
  EXPECT_FALSE(F.hasEvent("os.path"));
  EXPECT_FALSE(F.hasEvent("os"));
}

TEST(GraphBuilderTest, SubscriptAndAttributeReads) {
  GraphFixture F("from flask import request\n"
                 "filename = request.files['f'].filename\n");
  EventId Sub = F.theEvent("flask.request.files['f']");
  EventId Attr = F.theEvent("flask.request.files['f'].filename");
  EXPECT_EQ(F.Graph.event(Sub).Kind, EventKind::ObjectRead);
  EXPECT_EQ(F.Graph.event(Attr).Kind, EventKind::ObjectRead);
  EXPECT_EQ(F.Graph.event(Attr).Candidates, SourceMask)
      << "object reads can only be sources (§5.1)";
  EXPECT_TRUE(F.hasEdge(Sub, Attr));
}

TEST(GraphBuilderTest, ParamEventRepsWithClassBackoff) {
  GraphFixture F("from base_driver import ThreadDriver\n"
                 "class ESCPOSDriver(ThreadDriver):\n"
                 "    def status(self, eprint):\n"
                 "        self.receipt('<div>' + msg + '</div>')\n");
  // The paper's §3.2 example: the call has four backoff options.
  std::vector<EventId> Calls;
  for (const Event &E : F.Graph.events())
    if (E.Kind == EventKind::Call && E.primaryRep().find("receipt") !=
                                         std::string::npos)
      Calls.push_back(E.Id);
  ASSERT_EQ(Calls.size(), 1u);
  const Event &Call = F.Graph.event(Calls[0]);
  std::vector<std::string> Expected{
      "ESCPOSDriver::status(param self).receipt()",
      "base_driver.ThreadDriver::status(param self).receipt()",
      "status(param self).receipt()",
      "self.receipt()",
  };
  EXPECT_EQ(Call.Reps, Expected);

  // Parameter events exist for `self` and `eprint` and exclude the bare
  // variable name from their representation options.
  bool FoundEprint = false;
  for (const Event &E : F.Graph.events()) {
    if (E.Kind != EventKind::FormalParam)
      continue;
    if (E.primaryRep() == "ESCPOSDriver::status(param eprint)") {
      FoundEprint = true;
      EXPECT_EQ(E.Candidates, SourceMask);
      for (const std::string &R : E.Reps)
        EXPECT_NE(R, "eprint");
    }
  }
  EXPECT_TRUE(FoundEprint);
}

TEST(GraphBuilderTest, PlainFunctionParamReps) {
  GraphFixture F("def media(f):\n"
                 "    f.save(path)\n");
  EXPECT_TRUE(F.hasEvent("media(param f)"));
  // The method call backs off from `media(param f).save()` to `f.save()`.
  std::vector<EventId> Calls;
  for (const Event &E : F.Graph.events())
    if (E.Kind == EventKind::Call)
      Calls.push_back(E.Id);
  ASSERT_EQ(Calls.size(), 1u);
  std::vector<std::string> Expected{"media(param f).save()", "f.save()"};
  EXPECT_EQ(F.Graph.event(Calls[0]).Reps, Expected);
}

TEST(GraphBuilderTest, ImportAsResolvesInReps) {
  GraphFixture F("import numpy as np\n"
                 "x = np.array(data)\n");
  EXPECT_TRUE(F.hasEvent("numpy.array()"));
}

TEST(GraphBuilderTest, CallResultChains) {
  GraphFixture F("import sqlite3\n"
                 "sqlite3.connect(p).cursor().execute(q)\n");
  EXPECT_TRUE(F.hasEvent("sqlite3.connect()"));
  EXPECT_TRUE(F.hasEvent("sqlite3.connect().cursor()"));
  EXPECT_TRUE(F.hasEvent("sqlite3.connect().cursor().execute()"));
  EXPECT_TRUE(F.flowsTo(F.theEvent("sqlite3.connect()"),
                        F.theEvent("sqlite3.connect().cursor().execute()")));
}

TEST(GraphBuilderTest, UnknownBaseRendersUnknown) {
  GraphFixture F("y = (a + b).format(c)\n");
  EXPECT_TRUE(F.hasEvent("<unknown>.format()"));
}

//===----------------------------------------------------------------------===//
// Flow edges
//===----------------------------------------------------------------------===//

TEST(GraphBuilderTest, ArgumentsFlowIntoCalls) {
  GraphFixture F("from flask import request\n"
                 "import db\n"
                 "q = request.args.get('q')\n"
                 "db.run(q)\n");
  EventId Src = F.theEvent("flask.request.args.get()");
  EventId Sink = F.theEvent("db.run()");
  EXPECT_TRUE(F.hasEdge(Src, Sink));
}

TEST(GraphBuilderTest, KeywordArgumentsFlow) {
  GraphFixture F("import db\n"
                 "import web\n"
                 "v = web.read()\n"
                 "db.run(query=v)\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, ReceiverFlowsIntoMethodCall) {
  GraphFixture F("from flask import request\n"
                 "request.files['f'].save(p)\n");
  EventId Sub = F.theEvent("flask.request.files['f']");
  EventId Save = F.theEvent("flask.request.files['f'].save()");
  EXPECT_TRUE(F.hasEdge(Sub, Save));
}

TEST(GraphBuilderTest, BinaryOperatorsPropagate) {
  GraphFixture F("import web\nimport db\n"
                 "x = web.read()\n"
                 "db.run('q' + x)\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, StringFormattingPropagates) {
  GraphFixture F("import web\nimport db\n"
                 "db.run('SELECT %s' % web.read())\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, CollectionsPropagate) {
  GraphFixture F("import web\nimport db\n"
                 "row = [1, web.read(), 'x']\n"
                 "db.run(row)\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, DictValuesPropagate) {
  GraphFixture F("import web\nimport db\n"
                 "d = {'k': web.read()}\n"
                 "db.run(d)\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, BranchesMergeFlows) {
  GraphFixture F("import a\nimport b\nimport db\n"
                 "if cond:\n    x = a.read()\nelse:\n    x = b.read()\n"
                 "db.run(x)\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("a.read()"), F.theEvent("db.run()")));
  EXPECT_TRUE(F.hasEdge(F.theEvent("b.read()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, ForLoopTargetReceivesIterFlow) {
  GraphFixture F("import web\nimport db\n"
                 "for row in web.rows():\n"
                 "    db.run(row)\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.rows()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, ConditionalExprPropagatesBothArms) {
  GraphFixture F("import a\nimport b\nimport db\n"
                 "db.run(a.x() if c else b.y())\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("a.x()"), F.theEvent("db.run()")));
  EXPECT_TRUE(F.hasEdge(F.theEvent("b.y()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, ComprehensionPropagates) {
  GraphFixture F("import web\nimport db\n"
                 "rows = [r.strip() for r in web.rows()]\n"
                 "db.run(rows)\n");
  EXPECT_TRUE(F.flowsTo(F.theEvent("web.rows()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, LocalsModeled) {
  GraphFixture F("import web\n"
                 "def view():\n"
                 "    secret = web.read()\n"
                 "    ctx = locals()\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"), F.theEvent("locals()")));
}

TEST(GraphBuilderTest, LocalsModelingCanBeDisabled) {
  BuildOptions Opts;
  Opts.ModelLocals = false;
  GraphFixture F("import web\n"
                 "def view():\n"
                 "    secret = web.read()\n"
                 "    ctx = locals()\n",
                 Opts);
  EXPECT_FALSE(F.hasEdge(F.theEvent("web.read()"), F.theEvent("locals()")));
}

//===----------------------------------------------------------------------===//
// Same-module inlining
//===----------------------------------------------------------------------===//

TEST(GraphBuilderTest, LocalFunctionInlining) {
  GraphFixture F("import web\nimport scrublib\n"
                 "def clean(x):\n"
                 "    return scrublib.scrub(x)\n"
                 "y = clean(web.read())\n");
  EventId Src = F.theEvent("web.read()");
  EventId Param = F.theEvent("clean(param x)");
  EventId Scrub = F.theEvent("scrublib.scrub()");
  EventId CallClean = F.theEvent("app.clean()");
  EXPECT_TRUE(F.hasEdge(Src, Param)) << "argument must reach the parameter";
  EXPECT_TRUE(F.hasEdge(Param, Scrub)) << "parameter flows into the body";
  EXPECT_TRUE(F.hasEdge(Scrub, CallClean)) << "return flows back to the call";
  EXPECT_TRUE(F.flowsTo(Src, CallClean));
}

TEST(GraphBuilderTest, InliningWorksWhenCalledBeforeDefinition) {
  GraphFixture F("import web\n"
                 "y = helper(web.read())\n"
                 "def helper(v):\n"
                 "    return v\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"),
                        F.theEvent("helper(param v)")));
}

TEST(GraphBuilderTest, MethodInliningThroughSelf) {
  GraphFixture F("import db\n"
                 "class Repo:\n"
                 "    def save(self, item):\n"
                 "        db.insert(item)\n"
                 "    def add(self, x):\n"
                 "        self.save(x)\n");
  EventId AddParam = F.theEvent("Repo::add(param x)");
  EventId SaveParam = F.theEvent("Repo::save(param item)");
  EventId Insert = F.theEvent("db.insert()");
  EXPECT_TRUE(F.hasEdge(AddParam, SaveParam));
  EXPECT_TRUE(F.flowsTo(AddParam, Insert));
}

TEST(GraphBuilderTest, ConstructorFlowsIntoInit) {
  GraphFixture F("import web\n"
                 "class Box:\n"
                 "    def __init__(self, v):\n"
                 "        self.v = v\n"
                 "b = Box(web.read())\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.read()"),
                        F.theEvent("Box::__init__(param v)")));
}

TEST(GraphBuilderTest, MethodCallOnLocalInstance) {
  GraphFixture F("import db\n"
                 "class Repo:\n"
                 "    def save(self, item):\n"
                 "        db.insert(item)\n"
                 "r = Repo()\n"
                 "r.save(payload)\n");
  EXPECT_TRUE(F.hasEvent("Repo::save(param item)"));
  EventId SaveParam = F.theEvent("Repo::save(param item)");
  EXPECT_TRUE(F.flowsTo(SaveParam, F.theEvent("db.insert()")));
}

TEST(GraphBuilderTest, RecursionTerminates) {
  GraphFixture F("def f(x):\n    return g(x)\n"
                 "def g(y):\n    return f(y)\n"
                 "f(1)\n");
  EXPECT_GT(F.Graph.numEvents(), 0u);
}

TEST(GraphBuilderTest, DecoratorObservesReturn) {
  GraphFixture F("from flask import app\nimport web\n"
                 "@app.route('/x')\n"
                 "def view():\n"
                 "    return web.page()\n");
  EXPECT_TRUE(F.hasEdge(F.theEvent("web.page()"),
                        F.theEvent("flask.app.route()")));
}

//===----------------------------------------------------------------------===//
// Points-to driven field flow
//===----------------------------------------------------------------------===//

TEST(GraphBuilderTest, FieldStoreReachesAliasedLoad) {
  GraphFixture F("import web\nimport db\n"
                 "obj = box()\n"
                 "p = obj\n"
                 "p.field = web.read()\n"
                 "db.run(obj.field)\n");
  EventId Src = F.theEvent("web.read()");
  EventId Sink = F.theEvent("db.run()");
  EXPECT_TRUE(F.flowsTo(Src, Sink));
}

TEST(GraphBuilderTest, FieldFlowRequiresPointsTo) {
  BuildOptions Opts;
  Opts.UsePointsTo = false;
  GraphFixture F("import web\nimport db\n"
                 "obj = box()\n"
                 "p = obj\n"
                 "p.field = web.read()\n"
                 "db.run(obj.field)\n",
                 Opts);
  EXPECT_FALSE(F.flowsTo(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

TEST(GraphBuilderTest, SelfFieldFlowAcrossMethods) {
  GraphFixture F("import web\nimport db\n"
                 "class Handler:\n"
                 "    def read(self):\n"
                 "        self.data = web.read()\n"
                 "    def write(self):\n"
                 "        db.run(self.data)\n");
  EXPECT_TRUE(F.flowsTo(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

//===----------------------------------------------------------------------===//
// Graph structure
//===----------------------------------------------------------------------===//

TEST(GraphBuilderTest, GraphIsAcyclic) {
  GraphFixture F("import web\n"
                 "x = web.read()\n"
                 "while cond:\n"
                 "    x = wrap(x)\n"
                 "def f(a):\n    return f(a)\n"
                 "f(x)\n");
  EXPECT_TRUE(F.Graph.isAcyclic());
}

TEST(GraphBuilderTest, PaperFig2aEndToEnd) {
  GraphFixture F("from yak.web import app\n"
                 "from flask import request\n"
                 "from werkzeug import secure_filename\n"
                 "import os\n"
                 "\n"
                 "blog_dir = app.config['PATH']\n"
                 "\n"
                 "@app.route('/media/', methods=['POST'])\n"
                 "def media():\n"
                 "    filename = request.files['f'].filename\n"
                 "    filename = secure_filename(filename)\n"
                 "    path = os.path.join(blog_dir, filename)\n"
                 "    if not os.path.exists(path):\n"
                 "        request.files['f'].save(path)\n");

  EventId A = F.theEvent("flask.request.files['f'].filename");
  EventId B = F.theEvent("werkzeug.secure_filename()");
  EventId C = F.theEvent("os.path.join()");
  EventId E = F.theEvent("yak.web.app.config['PATH']");
  EventId Fx = F.theEvent("os.path.exists()");
  EventId D = F.theEvent("flask.request.files['f'].save()");

  // The propagation structure of Fig. 2b.
  EXPECT_TRUE(F.hasEdge(A, B));
  EXPECT_TRUE(F.hasEdge(B, C));
  EXPECT_TRUE(F.hasEdge(E, C));
  EXPECT_TRUE(F.hasEdge(C, Fx));
  EXPECT_TRUE(F.hasEdge(C, D));
  EXPECT_TRUE(F.flowsTo(A, D));
  EXPECT_TRUE(F.Graph.isAcyclic());
}

TEST(GraphBuilderTest, AppendKeepsGraphsDisjoint) {
  GraphFixture F1("import web\nx = web.read()\n");
  GraphFixture F2("import db\ndb.run(1)\n");
  PropagationGraph G;
  G.append(F1.Graph);
  G.append(F2.Graph);
  EXPECT_EQ(G.numEvents(), F1.Graph.numEvents() + F2.Graph.numEvents());
  EXPECT_EQ(G.numEdges(), F1.Graph.numEdges() + F2.Graph.numEdges());
  EXPECT_EQ(G.files().size(), 2u);
}

TEST(PropagationGraphTest, CollapseByRepMergesSameRep) {
  GraphFixture F("from flask import request\n"
                 "a = request.files['f']\n"
                 "b = request.files['f']\n");
  ASSERT_EQ(F.eventsByRep("flask.request.files['f']").size(), 2u);
  PropagationGraph Collapsed = F.Graph.collapseByRep();
  std::vector<EventId> Merged;
  for (const Event &E : Collapsed.events())
    if (E.primaryRep() == "flask.request.files['f']")
      Merged.push_back(E.Id);
  EXPECT_EQ(Merged.size(), 1u);
}

TEST(PropagationGraphTest, CollapseCreatesSpuriousFlow) {
  // Paper Fig. 8: collapsing conflates unrelated events, creating flow from
  // the source to the sink that does not exist in the original program.
  GraphFixture F("import web\nimport scrub\nimport db\n"
                 "def f():\n"
                 "    x = web.src()\n"
                 "    y = scrub.san(x)\n"
                 "def g():\n"
                 "    x = 1\n"
                 "    y = scrub.san(x)\n"
                 "    db.sink(y)\n");
  EventId Src = F.theEvent("web.src()");
  EventId Sink = F.theEvent("db.sink()");
  EXPECT_FALSE(F.flowsTo(Src, Sink)) << "uncollapsed graph must be precise";

  PropagationGraph Collapsed = F.Graph.collapseByRep();
  EventId CSrc = InvalidEvent, CSink = InvalidEvent;
  for (const Event &E : Collapsed.events()) {
    if (E.primaryRep() == "web.src()")
      CSrc = E.Id;
    if (E.primaryRep() == "db.sink()")
      CSink = E.Id;
  }
  ASSERT_NE(CSrc, InvalidEvent);
  ASSERT_NE(CSink, InvalidEvent);
  auto R = Collapsed.reachableFrom(CSrc);
  EXPECT_TRUE(std::find(R.begin(), R.end(), CSink) != R.end())
      << "collapsed graph must conflate the two san() calls (Fig. 8)";
}

TEST(PropagationGraphTest, IsAcyclicDetectsCycles) {
  PropagationGraph G;
  uint32_t File = G.addFile("f.py");
  Event E1, E2;
  E1.Kind = E2.Kind = EventKind::Call;
  E1.Reps = {"a()"};
  E2.Reps = {"b()"};
  E1.FileIdx = E2.FileIdx = File;
  EventId A = G.addEvent(E1);
  EventId B = G.addEvent(E2);
  G.addEdge(A, B);
  EXPECT_TRUE(G.isAcyclic());
  G.addEdge(B, A);
  EXPECT_FALSE(G.isAcyclic());
}

//===----------------------------------------------------------------------===//
// RepTable
//===----------------------------------------------------------------------===//

TEST(RepTableTest, CountsAndCutoff) {
  // Six calls to web.read() and one rare call; cutoff 5 keeps the frequent
  // representation and drops the rare one.
  std::string Source = "import web\nimport rare\n";
  for (int I = 0; I < 6; ++I)
    Source += "x" + std::to_string(I) + " = web.read()\n";
  Source += "y = rare.api()\n";
  GraphFixture F(Source);

  RepTable Table;
  Table.countOccurrences(F.Graph);
  RepId Read;
  ASSERT_TRUE(Table.lookup("web.read()", Read));
  EXPECT_EQ(Table.occurrences(Read), 6u);

  const Event &Frequent = F.Graph.event(F.eventsByRep("web.read()").front());
  EXPECT_EQ(Table.backoffOptions(Frequent, 5).size(), 1u);
  const Event &Rare = F.Graph.event(F.theEvent("rare.api()"));
  EXPECT_TRUE(Table.backoffOptions(Rare, 5).empty())
      << "rare events are ignored entirely (§4.3)";
  EXPECT_EQ(Table.backoffOptions(Rare, 1).size(), 1u);
}

TEST(RepTableTest, BackoffOrderPreserved) {
  GraphFixture F("def media(f):\n"
                 "    f.save(p)\n");
  RepTable Table;
  Table.countOccurrences(F.Graph);
  const Event &Call =
      F.Graph.event(F.theEvent("media(param f).save()"));
  std::vector<RepId> Options = Table.backoffOptions(Call, 1);
  ASSERT_EQ(Options.size(), 2u);
  EXPECT_EQ(Table.repString(Options[0]), "media(param f).save()");
  EXPECT_EQ(Table.repString(Options[1]), "f.save()");
}

} // namespace
