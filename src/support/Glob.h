//===- support/Glob.h - Wildcard pattern matching ---------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wildcard pattern matching used for the blacklist entries of the seed
/// specification (paper App. B), e.g. `*tensorflow*`, `*.all()`, or
/// `flask.Flask()*`. Only `*` is a metacharacter; it matches any (possibly
/// empty) substring. All other characters match literally.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_GLOB_H
#define SELDON_SUPPORT_GLOB_H

#include <string>
#include <string_view>
#include <vector>

namespace seldon {

/// Returns true if \p Text matches the wildcard pattern \p Pattern.
///
/// Runs in O(|Text| * |Pattern|) worst case via the classic two-pointer
/// backtracking algorithm, which is linear in practice for the short
/// blacklist patterns we use.
bool globMatch(std::string_view Pattern, std::string_view Text);

/// A compiled set of wildcard patterns, answering "does any pattern match".
///
/// Patterns without any `*` are kept in a separate exact-match set so that
/// large blacklists stay cheap to query.
class GlobSet {
public:
  GlobSet() = default;

  /// Adds \p Pattern to the set.
  void add(std::string_view Pattern);

  /// Returns true if at least one pattern matches \p Text.
  bool matches(std::string_view Text) const;

  /// Number of patterns added.
  size_t size() const { return Exact.size() + Wildcards.size(); }

  bool empty() const { return Exact.empty() && Wildcards.empty(); }

  /// All patterns in insertion order (used to serialize seed specs).
  const std::vector<std::string> &patterns() const { return Original; }

private:
  std::vector<std::string> Exact;
  std::vector<std::string> Wildcards;
  std::vector<std::string> Original;
};

} // namespace seldon

#endif // SELDON_SUPPORT_GLOB_H
