//===- propgraph/GraphCodec.h - Binary graph serialization -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A compact, versioned, checksummed binary serialization of propagation
/// graphs — the persistence format behind cache::GraphCache. The frontend
/// of §5 is deterministic per project, so a once-built graph can be stored
/// and adopted by later runs without re-parsing.
///
/// Layout (all integers varint-encoded unless noted):
///
///   magic      4 bytes  "SPGC"
///   version    varint   GraphCodecVersion
///   checksum   8 bytes  FNV-1a-64 of the payload, little-endian
///   length     varint   payload size in bytes
///   payload:
///     files    count, then per file: length-prefixed path
///     events   count, then per event: kind (u8), candidate mask (u8),
///              file index, line, column, rep count, length-prefixed reps
///              (most to least specific)
///     edges    count, then per edge: from id, to id — emitted in
///              adjacency order (by source id, then insertion order)
///
/// The encoding is *canonical*: encode(decode(encode(G))) == encode(G)
/// byte for byte, and a decoded graph is structurally identical to the
/// original (same event ids, representations, adjacency order), so every
/// downstream stage — representation counting, constraint generation,
/// solving — produces bit-identical output from a decoded graph.
///
/// Decoding is *strict* in the SpecIO sense: any truncation, bit flip,
/// version skew, or out-of-range reference yields a descriptive
/// io::IOResult error with a default-constructed (empty) graph — never a
/// partially-populated one.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PROPGRAPH_GRAPHCODEC_H
#define SELDON_PROPGRAPH_GRAPHCODEC_H

#include "propgraph/PropagationGraph.h"
#include "support/IOResult.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace seldon {
namespace propgraph {

/// Current serialization format version. Bump on any layout change; the
/// decoder rejects every other version (the cache then rebuilds).
inline constexpr uint32_t GraphCodecVersion = 1;

/// Serializes \p Graph into the format described above.
std::string encodeGraph(const PropagationGraph &Graph);

/// Strictly parses \p Bytes. On failure the result's Error describes the
/// first problem (including the byte offset where parsing stopped) and the
/// Value is an empty graph.
io::IOResult<PropagationGraph> decodeGraph(std::string_view Bytes);

/// FNV-1a 64-bit over \p Bytes, continuing from \p Seed. The codec's
/// payload checksum; also the building block of cache::projectCacheKey.
/// Each step is injective in the accumulator, so two equal-length inputs
/// differing in one byte always hash differently — a single bit flip in a
/// stored payload is guaranteed to be detected.
uint64_t fnv1a64(std::string_view Bytes,
                 uint64_t Seed = 0xcbf29ce484222325ull);

} // namespace propgraph
} // namespace seldon

#endif // SELDON_PROPGRAPH_GRAPHCODEC_H
