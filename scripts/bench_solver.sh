#!/usr/bin/env bash
# Times the solve stage across the solver backends (legacy evaluator,
# compiled fused kernel, blocked-SIMD fp64, and fp32-compute SIMD) on the
# Fig. 10 corpus, plus a cold-vs-warm graph-cache comparison
# (bench/fig10_scaling in cache-only mode), and writes both to
# BENCH_solver.json (in the repo root, or $1 if given). Exits non-zero if
# any path disagrees on the learned specification (fp64 SIMD must be
# byte-identical to compiled; fp32 roles must match outside the documented
# threshold band), if the compiled kernel is not at least 2x faster
# serially than legacy, if the SIMD backends do not beat the compiled
# kernel (fp64 >= 1.25x, fp32 >= 1.5x serial — below the typical 1.6x /
# 2x to absorb shared-machine timing noise), or if the warm cache run is
# not all-hits and faster to parse than the cold run.
#
# A third section benchmarks incremental re-learning (bench/incr_learn):
# learn a corpus cold, touch one project, and re-learn through the shard
# cache with a warm-started solve. Gated: exactly one shard may rebuild,
# the composed cold-init replay must be byte-identical to a from-scratch
# learn, the warm solve must select the same roles, and the re-learn must
# be at least 5x faster than the cold learn.
#
# A fourth section benchmarks active learning (bench/active_learn):
# withhold half the seed specification and count the oracle queries the
# uncertainty-guided loop needs to recover full-seed passive F1. Gated:
# the target F1 must be reached while querying at most half the
# candidate variables.
#
# Knobs: SELDON_PROJECTS (corpus size, default 300), SELDON_JOBS,
# SELDON_CACHE_PROJECTS (cache-comparison corpus size, default 60),
# SELDON_INCR_PROJECTS (incremental corpus size, default 300),
# SELDON_ACTIVE_PROJECTS (active-learning corpus size, default 60).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT="${1:-$ROOT/BENCH_solver.json}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS" \
  --target solver_kernel fig10_scaling incr_learn active_learn >/dev/null

"$ROOT/build/bench/solver_kernel" > "$OUT"

# Cache-only fig10 run: SELDON_FIG10_SWEEP=0 skips the scaling sweep, and
# fig10_scaling halves SELDON_PROJECTS' doubling, so pass the size as-is.
CACHE_JSON="$(mktemp)"
INCR_JSON="$(mktemp)"
ACTIVE_JSON="$(mktemp)"
trap 'rm -f "$CACHE_JSON" "$INCR_JSON" "$ACTIVE_JSON"' EXIT
SELDON_FIG10_SWEEP=0 SELDON_CACHE_OUT="$CACHE_JSON" \
  SELDON_PROJECTS="$(( ${SELDON_CACHE_PROJECTS:-60} / 2 ))" \
  "$ROOT/build/bench/fig10_scaling" >&2

# Incremental re-learn: touch one project, replay the other shards.
SELDON_INCR_OUT="$INCR_JSON" \
  SELDON_PROJECTS="${SELDON_INCR_PROJECTS:-300}" \
  "$ROOT/build/bench/incr_learn" >&2

# Active learning: recover withheld-seed quality from oracle queries.
SELDON_ACTIVE_OUT="$ACTIVE_JSON" \
  SELDON_PROJECTS="${SELDON_ACTIVE_PROJECTS:-60}" \
  "$ROOT/build/bench/active_learn" >&2

# Merge {"cache": ...}, {"incr": ...}, and {"active": ...} into the
# solver summary.
python3 - "$OUT" "$CACHE_JSON" "$INCR_JSON" "$ACTIVE_JSON" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    summary = json.load(f)
with open(sys.argv[2]) as f:
    summary["cache"] = json.load(f)
with open(sys.argv[3]) as f:
    summary["incr"] = json.load(f)
with open(sys.argv[4]) as f:
    summary["active"] = json.load(f)
with open(sys.argv[1], "w") as f:
    json.dump(summary, f, indent=2)
    f.write("\n")
EOF
echo "wrote $OUT"

python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
if not r["byte_identical"]:
    sys.exit("FAIL: legacy and compiled specs differ")
if r["serial_speedup"] < 2.0:
    sys.exit(f"FAIL: serial speedup {r['serial_speedup']:.2f}x < 2x")

# The SIMD backends: fp64 must reproduce the compiled spec byte for byte
# at every job count; fp32 may flip role selections only inside the
# documented band around the report threshold. Speedups are gated against
# the compiled kernel, with headroom below the typical measurements for
# timing noise (only enforced when the host actually dispatched vector
# kernels — the scalar fallback promises identity, not speed).
if not r["simd_byte_identical"]:
    sys.exit("FAIL: simd fp64 spec differs from compiled")
if not r["simd_f32_roles_match"]:
    sys.exit(f"FAIL: simd-f32 roles differ outside the "
             f"±{r['simd_f32_threshold_band']} band "
             f"({r['simd_f32_role_flips']} flip(s))")
if r["simd_active"]:
    if r["simd_serial_speedup"] < 1.25:
        sys.exit(f"FAIL: simd serial speedup "
                 f"{r['simd_serial_speedup']:.2f}x < 1.25x over compiled")
    if r["simd_f32_serial_speedup"] < 1.5:
        sys.exit(f"FAIL: simd-f32 serial speedup "
                 f"{r['simd_f32_serial_speedup']:.2f}x < 1.5x over compiled")

# The embedded metrics snapshot must agree with the bench's own numbers:
# stage spans for the eight solves (four backends, serial then parallel),
# convergence series, and the compile stats the dedup claims are based on.
m = r["metrics"]
solves = [s for s in m["spans"] if s["path"] == "session/solve"]
if len(solves) != 8:
    sys.exit(f"FAIL: expected 8 session/solve spans, got {len(solves)}")
if abs(solves[1]["duration_seconds"] - r["compiled_serial_seconds"]) > 1e-6:
    sys.exit("FAIL: compiled_serial_seconds disagrees with its span")
if m["gauges"]["solver.rows_after"] != r["rows_after_dedup"]:
    sys.exit("FAIL: solver.rows_after gauge disagrees with rows_after_dedup")
if m["series"]["solve.objective"]["count"] == 0:
    sys.exit("FAIL: no solver convergence samples in metrics snapshot")

# The graph-cache comparison: warm runs must hit every project, emit a
# byte-identical spec, and skip enough parse work to beat the cold run.
c = r["cache"]
if not c["byte_identical"]:
    sys.exit("FAIL: cached and uncached specs differ")
if c["warm_hits"] != c["projects"] or c["warm_misses"] != 0:
    sys.exit(f"FAIL: warm cache run hit {c['warm_hits']}/{c['projects']}")
if c["cold_misses"] != c["projects"]:
    sys.exit("FAIL: cold cache run was not all misses")
if c["warm_parse_seconds"] >= c["cold_parse_seconds"]:
    sys.exit(f"FAIL: warm parse {c['warm_parse_seconds']:.3f}s not faster "
             f"than cold {c['cold_parse_seconds']:.3f}s")

# The incremental re-learn: one touched project must rebuild exactly one
# shard, the composed system must reproduce the from-scratch spec byte
# for byte, the warm-started short solve must pick the same roles, and
# the end-to-end re-learn must beat the cold learn by at least 5x.
i = r["incr"]
if not i["byte_identical"]:
    sys.exit("FAIL: composed re-learn spec differs from from-scratch")
if not i["warm_roles_match"]:
    sys.exit("FAIL: warm-started solve selected different roles")
if i["shards_rebuilt"] != 1:
    sys.exit(f"FAIL: touched 1 project but {i['shards_rebuilt']} shard(s) "
             "rebuilt")
if i["shards_hit"] != i["projects"] - 1:
    sys.exit(f"FAIL: expected {i['projects'] - 1} shard hits, got "
             f"{i['shards_hit']}")
if i["incr_speedup"] < 5.0:
    sys.exit(f"FAIL: incremental re-learn {i['incr_speedup']:.2f}x < 5x")

# Active learning: from half the seed, the loop must recover full-seed
# passive F1 while querying at most half the candidate variables.
a = r["active"]
if not a["reached_target"]:
    sys.exit(f"FAIL: active F1 {a['active_f1']:.4f} never reached the "
             f"passive target {a['passive_f1']:.4f}")
if a["active_f1"] + 1e-9 < a["passive_f1"]:
    sys.exit(f"FAIL: active F1 {a['active_f1']:.4f} below passive "
             f"{a['passive_f1']:.4f}")
if a["query_fraction"] > 0.5:
    sys.exit(f"FAIL: active queried {a['query_fraction']:.0%} of "
             f"candidates (> 50%)")
print(f"OK: {r['serial_speedup']:.2f}x serial speedup, "
      f"simd {r['simd_serial_speedup']:.2f}x / "
      f"simd-f32 {r['simd_f32_serial_speedup']:.2f}x over compiled, "
      f"{r['dedup_ratio']:.2f}x dedup, specs byte-identical, "
      f"metrics snapshot consistent; cache warm parse "
      f"{c['warm_parse_speedup']:.2f}x faster, {c['warm_hits']} hit(s); "
      f"incremental re-learn {i['incr_speedup']:.2f}x faster than cold "
      f"({i['shards_hit']}/{i['projects']} shards replayed); "
      f"active learning reached F1 {a['active_f1']:.4f} with "
      f"{a['queries']} label(s) ({a['query_fraction']:.0%} of "
      f"{a['candidates']} candidates)")
EOF
