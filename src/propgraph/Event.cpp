//===- propgraph/Event.cpp - Propagation-graph events ---------------------===//

#include "propgraph/Event.h"

using namespace seldon;
using namespace seldon::propgraph;

const char *seldon::propgraph::roleName(Role R) {
  switch (R) {
  case Role::Source: return "source";
  case Role::Sanitizer: return "sanitizer";
  case Role::Sink: return "sink";
  }
  return "unknown";
}

const char *seldon::propgraph::eventKindName(EventKind Kind) {
  switch (Kind) {
  case EventKind::Call: return "call";
  case EventKind::ObjectRead: return "object-read";
  case EventKind::FormalParam: return "formal-param";
  case EventKind::CallArgument: return "call-argument";
  }
  return "unknown";
}
