file(REMOVE_RECURSE
  "CMakeFiles/table6_report_categories.dir/table6_report_categories.cpp.o"
  "CMakeFiles/table6_report_categories.dir/table6_report_categories.cpp.o.d"
  "table6_report_categories"
  "table6_report_categories.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_report_categories.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
