//===- solver/CompiledObjective.cpp - Compiled fused solver kernel --------===//

#include "solver/CompiledObjective.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

using namespace seldon;
using namespace seldon::solver;

namespace {

/// One canonicalized constraint: Σ Coef·Var ≤ C with variables sorted and
/// merged. The byte image of (C, Terms) is the coalescing key.
struct CanonicalRow {
  std::vector<std::pair<uint32_t, double>> Terms;
  double C = 0.0;
};

/// Canonicalizes one constraint: folds Rhs into Lhs with negated
/// coefficients, sorts by variable id, merges duplicates by summing their
/// coefficients in double (float + float is exact in double), and drops
/// terms whose merged coefficient cancelled to exactly zero.
CanonicalRow canonicalize(const LinearConstraint &LC) {
  CanonicalRow Row;
  Row.C = LC.C;
  Row.Terms.reserve(LC.Lhs.size() + LC.Rhs.size());
  for (const Term &T : LC.Lhs)
    Row.Terms.emplace_back(T.Var, static_cast<double>(T.Coef));
  for (const Term &T : LC.Rhs)
    Row.Terms.emplace_back(T.Var, -static_cast<double>(T.Coef));
  std::sort(Row.Terms.begin(), Row.Terms.end(),
            [](const auto &A, const auto &B) { return A.first < B.first; });

  size_t Out = 0;
  for (size_t I = 0; I < Row.Terms.size();) {
    uint32_t Var = Row.Terms[I].first;
    double Sum = 0.0;
    for (; I < Row.Terms.size() && Row.Terms[I].first == Var; ++I)
      Sum += Row.Terms[I].second;
    if (Sum != 0.0)
      Row.Terms[Out++] = {Var, Sum};
  }
  Row.Terms.resize(Out);
  return Row;
}

/// Byte image of a canonical row, used as the exact-duplicate key. Zero
/// coefficients were dropped and -0.0 cannot survive merging into the
/// image (a sum that is zero is dropped; a single term keeps its sign bit
/// only if the source coefficient was -0.0, which canonicalize removed),
/// so bytewise equality is value equality.
std::string keyOf(const CanonicalRow &Row) {
  std::string Key;
  Key.resize(sizeof(double) + Row.Terms.size() * (sizeof(uint32_t) +
                                                  sizeof(double)));
  char *P = Key.data();
  std::memcpy(P, &Row.C, sizeof(double));
  P += sizeof(double);
  for (const auto &[Var, Coef] : Row.Terms) {
    std::memcpy(P, &Var, sizeof(uint32_t));
    P += sizeof(uint32_t);
    std::memcpy(P, &Coef, sizeof(double));
    P += sizeof(double);
  }
  return Key;
}

/// RowBegin/VarIdx are uint32_t; a corpus past ~4.29B rows or non-zeros
/// would silently wrap the offsets and corrupt every row after the
/// overflow point. Compilation checks against this limit and fails with a
/// descriptive error instead. SELDON_TEST_CSR_LIMIT lowers the limit so
/// the guard can be unit-tested without allocating four billion entries.
uint64_t csrIndexLimit() {
  if (const char *Env = std::getenv("SELDON_TEST_CSR_LIMIT")) {
    char *End = nullptr;
    unsigned long long V = std::strtoull(Env, &End, 10);
    if (End != Env && *End == '\0' && V > 0)
      return V;
  }
  return std::numeric_limits<uint32_t>::max();
}

} // namespace

CompiledObjective::CompiledObjective(
    size_t NumVars, const std::vector<LinearConstraint> &Constraints,
    double Lambda)
    : NumVars(NumVars), Lambda(Lambda), Pinned(NumVars, 0),
      PinnedValues(NumVars, 0.0) {
  Stats.RowsBefore = Constraints.size();

  // Coalesce canonically-identical constraints, keeping survivors in
  // first-occurrence order so the row layout is deterministic and mirrors
  // the legacy constraint order.
  std::unordered_map<std::string, uint32_t> RowIndex;
  RowIndex.reserve(Constraints.size());
  RowBegin.push_back(0);
  const uint64_t IndexLimit = csrIndexLimit();
  for (const LinearConstraint &LC : Constraints) {
    Stats.TermsBefore += LC.Lhs.size() + LC.Rhs.size();
    CanonicalRow Row = canonicalize(LC);
#ifndef NDEBUG
    for (const auto &[Var, CoefV] : Row.Terms) {
      (void)CoefV;
      assert(Var < NumVars && "constraint references unknown variable");
    }
#endif
    auto [It, Inserted] =
        RowIndex.emplace(keyOf(Row), static_cast<uint32_t>(C.size()));
    if (!Inserted) {
      Weight[It->second] += 1.0;
      continue;
    }
    if (static_cast<uint64_t>(C.size()) >= IndexLimit ||
        static_cast<uint64_t>(VarIdx.size()) + Row.Terms.size() > IndexLimit)
      throw std::runtime_error(
          "constraint system overflows the 32-bit CSR layout: " +
          std::to_string(C.size() + 1) + " coalesced rows / " +
          std::to_string(VarIdx.size() + Row.Terms.size()) +
          " non-zeros exceed the index limit of " +
          std::to_string(IndexLimit) +
          "; split the corpus into smaller solves");
    for (const auto &[Var, CoefV] : Row.Terms) {
      VarIdx.push_back(Var);
      Coef.push_back(CoefV);
    }
    RowBegin.push_back(static_cast<uint32_t>(VarIdx.size()));
    Weight.push_back(1.0);
    C.push_back(Row.C);
  }
  Stats.RowsAfter = C.size();
  Stats.NonZeros = VarIdx.size();
  for (double W : Weight)
    Stats.MaxMultiplicity =
        std::max(Stats.MaxMultiplicity, static_cast<size_t>(W));

  // Fixed shard structure: a function of the row count only, so every
  // Jobs setting performs the same floating-point reductions. Same
  // partitioning rule as the legacy Objective.
  size_t N = C.size();
  size_t Size = std::max(MinShardSize, (N + MaxShards - 1) / MaxShards);
  for (size_t Begin = 0; Begin < N; Begin += Size)
    Shards.push_back({Begin, std::min(N, Begin + Size)});
}

CompiledObjective CompiledObjective::compile(const Objective &Obj) {
  CompiledObjective Compiled(Obj.numVars(), Obj.constraints(), Obj.lambda());
  Compiled.Pinned = Obj.pinnedMask();
  Compiled.PinnedValues = Obj.pinnedValues();
  return Compiled;
}

void CompiledObjective::pin(uint32_t Var, double Value) {
  assert(Var < NumVars);
  assert(Value >= 0.0 && Value <= 1.0 && "pinned values must lie in [0,1]");
  Pinned[Var] = 1;
  PinnedValues[Var] = Value;
}

std::vector<double> CompiledObjective::initialPoint() const {
  std::vector<double> X(NumVars, 0.0);
  project(X);
  return X;
}

double CompiledObjective::shardSweep(const Shard &S, const double *X,
                                     double *GradOut) const {
  double Total = 0.0;
  for (size_t R = S.Begin; R < S.End; ++R) {
    const uint32_t Begin = RowBegin[R], End = RowBegin[R + 1];
    double V = -C[R];
    for (uint32_t K = Begin; K < End; ++K)
      V += Coef[K] * X[VarIdx[K]];
    if (V <= 0.0)
      continue; // Satisfied: no loss, subgradient 0.
    const double W = Weight[R];
    Total += W * V;
    if (GradOut)
      for (uint32_t K = Begin; K < End; ++K)
        GradOut[VarIdx[K]] += W * Coef[K];
  }
  return Total;
}

double CompiledObjective::sweep(const std::vector<double> &X,
                                bool WithGradient,
                                std::vector<double> *Grad) const {
  assert(X.size() == NumVars);
  if (WithGradient)
    Grad->assign(NumVars, 0.0);
  if (Shards.empty())
    return 0.0;
  if (Shards.size() == 1)
    return shardSweep(Shards[0], X.data(),
                      WithGradient ? Grad->data() : nullptr);

  ShardHinge.assign(Shards.size(), 0.0);
  if (WithGradient)
    ShardGrad.resize(Shards.size());
  auto RunShard = [&](size_t S, unsigned) {
    double *GradOut = nullptr;
    if (WithGradient) {
      ShardGrad[S].assign(NumVars, 0.0);
      GradOut = ShardGrad[S].data();
    }
    ShardHinge[S] = shardSweep(Shards[S], X.data(), GradOut);
  };
  if (Pool)
    Pool->parallelFor(Shards.size(), RunShard);
  else
    for (size_t S = 0; S < Shards.size(); ++S)
      RunShard(S, 0);

  // Reduce in shard order (deterministic regardless of execution order).
  double Total = 0.0;
  for (double P : ShardHinge)
    Total += P;
  if (!WithGradient)
    return Total;

  // Reduce gradient buffers in shard order. Each variable's sum is an
  // independent fixed-order chain, so the reduction may fan out over
  // variable ranges without changing a single bit of the result.
  double *Out = Grad->data();
  auto ReduceRange = [&](size_t Begin, size_t End) {
    for (const std::vector<double> &Buf : ShardGrad)
      for (size_t V = Begin; V < End; ++V)
        Out[V] += Buf[V];
  };
  if (Pool && NumVars >= 4096) {
    unsigned Workers = Pool->numWorkers();
    size_t Chunk = (NumVars + Workers - 1) / Workers;
    size_t NumChunks = (NumVars + Chunk - 1) / Chunk;
    Pool->parallelFor(NumChunks, [&](size_t Ch, unsigned) {
      ReduceRange(Ch * Chunk, std::min(NumVars, (Ch + 1) * Chunk));
    });
  } else {
    ReduceRange(0, NumVars);
  }
  return Total;
}

double CompiledObjective::valueAndGradient(const std::vector<double> &X,
                                           std::vector<double> &Grad) const {
  double Total = sweep(X, /*WithGradient=*/true, &Grad);
  // Flat epilogue over the pin mask: pinned variables lose their gradient
  // and carry no L1 term; free variables pick up +λ and λ·x. The L1
  // additions run in ascending variable order after the whole hinge term,
  // matching the legacy value() addition sequence exactly.
  const uint8_t *Pin = Pinned.data();
  double *G = Grad.data();
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pin[V]) {
      G[V] = 0.0;
    } else {
      G[V] += Lambda;
      Total += Lambda * X[V];
    }
  }
  return Total;
}

double CompiledObjective::hingeLoss(const std::vector<double> &X) const {
  return sweep(X, /*WithGradient=*/false, nullptr);
}

double CompiledObjective::value(const std::vector<double> &X) const {
  double Total = hingeLoss(X);
  const uint8_t *Pin = Pinned.data();
  for (uint32_t V = 0; V < NumVars; ++V)
    if (!Pin[V])
      Total += Lambda * X[V];
  return Total;
}

void CompiledObjective::gradient(const std::vector<double> &X,
                                 std::vector<double> &Grad) const {
  sweep(X, /*WithGradient=*/true, &Grad);
  const uint8_t *Pin = Pinned.data();
  double *G = Grad.data();
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pin[V])
      G[V] = 0.0;
    else
      G[V] += Lambda;
  }
}

void CompiledObjective::project(std::vector<double> &X) const {
  assert(X.size() == NumVars);
  const uint8_t *Pin = Pinned.data();
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pin[V])
      X[V] = PinnedValues[V];
    else
      X[V] = std::clamp(X[V], 0.0, 1.0);
  }
}
