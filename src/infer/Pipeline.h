//===- infer/Pipeline.h - Seldon end-to-end inference ------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Seldon pipeline (paper §7.1) behind a staged Session API:
/// parse a corpus of projects, extract per-project propagation graphs (in
/// parallel, merged deterministically), build the linear constraint system
/// (sharded by file), minimize the relaxed objective with projected Adam,
/// and read the per-(representation, role) scores back into a LearnedSpec.
///
/// Stages are explicit so callers can reuse expensive artifacts:
///
///   infer::Session S(Opts);
///   S.addProjects(Corpus);
///   S.buildGraph();                  // parse + extract once
///   S.generateConstraints(Seed);     // re-runnable after options() change
///   infer::PipelineResult R = S.solve();
///
/// Every stage honors PipelineOptions::Jobs; for any Jobs value the learned
/// scores are bit-identical to the serial (Jobs = 1) run — see
/// docs/architecture.md for the determinism strategy.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_INFER_PIPELINE_H
#define SELDON_INFER_PIPELINE_H

#include "cache/GraphCache.h"
#include "cache/ShardCache.h"
#include "constraints/ConstraintGen.h"
#include "constraints/Feedback.h"
#include "infer/RunHealth.h"
#include "propgraph/GraphBuilder.h"
#include "spec/LearnedSpec.h"
#include "spec/SeedSpec.h"
#include "solver/AdamOptimizer.h"
#include "solver/CompiledObjective.h"
#include "solver/ProjectedGradient.h"
#include "support/Deadline.h"

#include <memory>
#include <vector>

namespace seldon {

class ThreadPool;

namespace infer {

/// All knobs of the end-to-end pipeline, defaulting to the paper's values
/// (C = 0.75, cutoff 5, λ = 0.1, score threshold 0.1).
struct PipelineOptions {
  propgraph::BuildOptions Build;
  constraints::GenOptions Gen;
  double Lambda = 0.1;
  solver::SolveOptions Solve;
  /// Use projected Adam (the paper's optimizer); false switches to plain
  /// projected subgradient descent (ablation).
  bool UseAdam = true;
  // The evaluator backend lives in Solve.Backend
  // (legacy | compiled | simd | simd-f32): legacy keeps the reference
  // Objective, compiled lowers into the fused CSR kernel, simd adds the
  // blocked AVX2 layout (byte-identical scores for all three), simd-f32
  // trades bit equality for wider lanes under a documented tolerance.
  /// Warm-start the optimizer from a previously learned specification
  /// (matched by representation string): retraining after the corpus
  /// grows converges in far fewer iterations. Null starts from zero.
  const spec::LearnedSpec *WarmStart = nullptr;
  /// User feedback applied at solve time (borrowed; keep alive through
  /// solve()). Accepted/rejected specs append weighted evidence rows to
  /// the solved system — see constraints/Feedback.h. Null or empty is the
  /// passive path, byte for byte.
  const constraints::FeedbackSet *Feedback = nullptr;
  constraints::FeedbackOptions FeedbackOpts;
  /// Learn over the vertex-contracted graph (paper §6.4: the collapsed
  /// graph is unusable for taint analysis but still usable for
  /// specification learning). The result's Graph member stays uncollapsed
  /// so the taint client remains sound.
  bool CollapseForLearning = false;
  /// Worker threads for graph building, constraint generation, and
  /// gradient evaluation. 0 = hardware concurrency, 1 = fully serial.
  /// The learned scores are bit-identical for every value.
  unsigned Jobs = 0;
  /// Fail fast instead of quarantining: the first project whose
  /// parse/build throws rethrows out of buildGraph() (lowest corpus index
  /// wins, so the surfaced error is deterministic at any Jobs value).
  bool Strict = false;
  /// Whole-run wall-clock budget in seconds (0 = unlimited), armed when
  /// the first stage starts. Projects not built before expiry are
  /// quarantined, constraint generation aborts with DeadlineError, and
  /// the solver's remaining budget is capped — the run ends with partial,
  /// clearly-flagged results instead of hanging. See RunHealth.
  double DeadlineSeconds = 0.0;
};

/// The pipeline stages a ProgressObserver is notified about.
enum class Phase { BuildGraph, GenerateConstraints, Solve };

/// Printable phase name ("parse", "constraints", "solve").
const char *phaseName(Phase P);

/// Callback interface for long-running pipeline progress. All methods are
/// invoked serialized (never concurrently), including under a parallel
/// frontend; onProjectGraphBuilt sees a strictly increasing Done count.
/// Implementations must be fast — they run under the progress lock.
class ProgressObserver {
public:
  virtual ~ProgressObserver() = default;

  /// Entering pipeline phase \p P.
  virtual void onPhase(Phase P) { (void)P; }

  /// Pipeline phase \p P finished after \p Seconds of wall time (the same
  /// duration exported as the phase's "session/..." metrics span).
  virtual void onStageFinished(Phase P, double Seconds) {
    (void)P;
    (void)Seconds;
  }

  /// \p Done of \p Total projects parsed into propagation graphs.
  virtual void onProjectGraphBuilt(size_t Done, size_t Total) {
    (void)Done;
    (void)Total;
  }

  /// One solver iteration finished with the current objective value.
  virtual void onSolveIteration(int Iteration, double Objective) {
    (void)Iteration;
    (void)Objective;
  }
};

/// Delta statistics of one incremental run: how much of the constraint
/// system was replayed from cached shards versus regenerated, and whether
/// the solve was warm-started. All zero when the shard cache is off.
struct IncrStats {
  /// Projects whose constraint shard was replayed from the cache.
  uint64_t ShardsHit = 0;
  /// Projects whose shard was extracted fresh (miss, eviction, or no
  /// usable cache entry).
  uint64_t ShardsRebuilt = 0;
  /// Freshly extracted shards written back to the cache.
  uint64_t ShardsStored = 0;
  /// The solve was seeded from a previous LearnedSpec.
  bool WarmStarted = false;
};

/// Everything the pipeline produced, including the intermediate artifacts
/// the evaluation and the benches inspect.
struct PipelineResult {
  propgraph::PropagationGraph Graph; ///< Global propagation graph.
  propgraph::RepTable Reps;
  constraints::ConstraintSystem System;
  solver::SolveResult Solve;
  spec::LearnedSpec Learned;

  size_t NumFiles = 0;
  double BuildSeconds = 0.0;
  double GenSeconds = 0.0;
  double SolveSeconds = 0.0;

  /// Whether the solve used a compiled (CSR-lowered) kernel — the
  /// compiled or either simd backend — and what the compilation pass did
  /// (rows coalesced, CSR non-zeros). Stats are zero when the legacy path
  /// ran.
  bool UsedCompiledSolver = false;
  solver::CompileStats SolverStats;
  /// The backend that ran, and whether the AVX2 kernels were active (true
  /// only for the simd backends on AVX2 hosts without SELDON_SIMD=off;
  /// the scalar fallback computes bit-identical results).
  solver::SolverBackend Backend = solver::SolverBackend::Compiled;
  bool SimdActive = false;

  /// Whether a graph cache was enabled, and its counters at solve() time
  /// (hits + misses == project count when the cache was active during
  /// buildGraph). Cache hits change timings only — the learned scores are
  /// byte-identical to an uncached run.
  bool UsedCache = false;
  cache::CacheStats Cache;

  /// Whether a shard cache was enabled and usable for this run's
  /// constraint generation, its counters at solve() time, and the delta
  /// statistics. Like the graph cache, shard hits change timings only —
  /// the composed system and the learned scores are byte-identical to an
  /// uncached run.
  bool UsedShardCache = false;
  cache::CacheStats ShardCacheStats;
  IncrStats Incr;

  /// Whether feedback evidence rows were applied to this solve's System
  /// (the returned System then includes them), and what the application
  /// matched/appended.
  bool UsedFeedback = false;
  constraints::FeedbackStats Feedback;

  /// What the fault-tolerant runtime had to do: quarantined projects,
  /// solver recoveries, deadline expiries, degraded cache operations.
  /// Health.status() is Clean on an undisturbed run.
  RunHealth Health;

  /// Worker threads the run actually used.
  unsigned JobsUsed = 1;
  /// Per-worker busy time inside the graph-building fan-out; sums to the
  /// CPU time of the phase, so BuildSeconds / max(shard) approximates the
  /// phase's parallel efficiency.
  std::vector<double> BuildShardSeconds;
  /// Per-worker busy time inside constraint extraction.
  std::vector<double> GenShardSeconds;

  /// Wall time of the learning part (constraint generation + solving),
  /// the quantity plotted in paper Fig. 10.
  double inferenceSeconds() const { return GenSeconds + SolveSeconds; }
};

/// A staged pipeline run. Construct with options, feed projects (or adopt
/// a prebuilt graph), then drive the stages in order; generateConstraints
/// and solve may be re-run after mutating options() to sweep
/// configurations without re-parsing the corpus.
///
/// Projects added with addProject are borrowed — the caller keeps them
/// alive until buildGraph() has run. A Session is single-threaded from the
/// caller's perspective; it parallelizes internally according to
/// options().Jobs.
class Session {
public:
  explicit Session(PipelineOptions Opts = PipelineOptions());
  ~Session();
  Session(Session &&) noexcept;
  Session &operator=(Session &&) noexcept;

  /// Live options; Gen/Solve changes take effect on the next stage call.
  PipelineOptions &options() { return Opts; }
  const PipelineOptions &options() const { return Opts; }

  /// Installs a progress observer (null to remove). Borrowed.
  void setObserver(ProgressObserver *Observer) { this->Observer = Observer; }

  /// Registers a project for buildGraph(). Borrowed reference.
  Session &addProject(const pysem::Project &Proj);
  /// Registers every project of \p Corpus. Borrowed references.
  Session &addProjects(const std::vector<pysem::Project> &Corpus);

  /// Adopts an already-built global graph instead of parsing projects
  /// (used when the same graph is reused across ablation configurations).
  Session &adoptGraph(propgraph::PropagationGraph Graph);

  /// Enables the persistent propagation-graph cache rooted at \p Dir
  /// (created if missing). Must be called before buildGraph(). Projects
  /// whose entry hits are adopted without re-parsing; misses build via the
  /// normal (parallel) path and write back. An unusable directory degrades
  /// to all-miss operation rather than failing the pipeline; check
  /// graphCache()->valid() to surface that. See cache/GraphCache.h.
  Session &enableCache(const std::string &Dir);

  /// The enabled cache, or null. Valid for the Session's lifetime.
  const cache::GraphCache *graphCache() const { return Cache.get(); }

  /// Enables the persistent constraint-shard cache rooted at \p Dir
  /// (created if missing). Must be called before buildGraph(). With it,
  /// generateConstraints() replays cached per-project shards and extracts
  /// only the projects whose shard key changed; the composed system is
  /// byte-identical to uncached generation. Ignored (with a plain
  /// regeneration) when the graph was adopted rather than built from
  /// projects, or when CollapseForLearning is set — vertex contraction
  /// crosses project boundaries, so the system is not per-project
  /// composable. An unusable directory degrades to all-miss operation.
  Session &enableShardCache(const std::string &Dir);

  /// The enabled shard cache, or null. Valid for the Session's lifetime.
  const cache::ShardCache *shardCache() const { return SCache.get(); }

  /// Delta statistics of the most recent generateConstraints() (all zero
  /// without a shard cache; WarmStarted is filled in by solve()).
  const IncrStats &incrStats() const { return Incr; }

  /// Builds the global propagation graph: per-project extraction fans out
  /// over Jobs workers; the per-project graphs are merged in corpus order,
  /// so event ids match the serial run exactly. No-op if a graph was
  /// adopted or already built.
  ///
  /// Each project runs inside an isolation boundary: a throwing
  /// parse/build/cache-load quarantines that project (captured in
  /// health()) and the merge continues over the survivors — the resulting
  /// graph, and every downstream artifact, is byte-identical to a run
  /// over only the surviving projects at any Jobs value. Options
  /// Strict restores fail-fast.
  Session &buildGraph();

  /// Counts representations and generates the constraint system for
  /// \p Seed (runs buildGraph() first if needed). Re-runnable.
  Session &generateConstraints(const spec::SeedSpec &Seed);

  /// Minimizes the relaxed objective and returns the full result.
  /// Requires generateConstraints(). Re-runnable; each call re-optimizes
  /// with the current options and copies the shared artifacts into the
  /// returned PipelineResult.
  PipelineResult solve();

  /// Installs a previously computed solver result instead of optimizing:
  /// builds a PipelineResult from the session's artifacts exactly as
  /// solve() would — including applying options().Feedback evidence rows
  /// to the result's System copy — but adopts \p Restored wholesale in
  /// place of running the optimizer, then extracts the LearnedSpec from
  /// Restored.X. Requires generateConstraints(); returns false (leaving
  /// \p Out untouched) when Restored.X does not match the system's
  /// variable count. The seldond durability layer uses this to re-serve a
  /// snapshot's scores byte-identically without re-solving.
  bool restoreSolve(const solver::SolveResult &Restored, PipelineResult &Out);

  /// The built or adopted global graph (valid after buildGraph()).
  const propgraph::PropagationGraph &graph() const { return Graph; }
  bool hasGraph() const { return GraphReady; }

  /// The generated constraint system (valid after generateConstraints();
  /// solve() copies it — plus any feedback rows — into its result).
  const constraints::ConstraintSystem &system() const { return System; }
  /// The corpus representation table (valid after generateConstraints()).
  const propgraph::RepTable &reps() const { return Reps; }

  /// Pins the (\p Rep, \p R) score variable to \p Value for every
  /// subsequent solve() — the same §4.1 mechanism seed labels use, and
  /// how the active-learning loop applies oracle answers. An existing pin
  /// of the variable is updated in place. Returns false (and changes
  /// nothing) when the pair has no score variable. Requires
  /// generateConstraints(); re-running generateConstraints() rebuilds the
  /// seed-only pin set.
  bool pinVariable(const std::string &Rep, propgraph::Role R, double Value);

  /// The health report accumulated so far (quarantines after buildGraph,
  /// solver fields after solve — solve() also embeds a snapshot in its
  /// PipelineResult).
  const RunHealth &health() const { return Health; }

private:
  unsigned resolveJobs() const;
  ThreadPool *poolFor(unsigned Jobs);
  void armDeadline();
  /// The incremental generation path: per-project shards are loaded from
  /// the shard cache or extracted fresh (in parallel), then composed in
  /// corpus order into a system byte-identical to direct generation.
  constraints::ConstraintSystem
  composeFromShards(const spec::SeedSpec &Seed, ThreadPool *P);

  PipelineOptions Opts;
  ProgressObserver *Observer = nullptr;
  std::vector<const pysem::Project *> Projects;
  std::unique_ptr<cache::GraphCache> Cache;
  std::unique_ptr<cache::ShardCache> SCache;
  RunHealth Health;
  Deadline RunDeadline;

  /// One surviving project's slice of the built global graph: its file
  /// range plus its graph cache key (the shard key's content anchor).
  /// Recorded by buildGraph() when a shard cache is enabled; empty (and
  /// SlicesValid false) for adopted graphs.
  struct ProjectSlice {
    size_t ProjectIndex = 0;
    cache::CacheKey GraphKey;
    uint32_t FileBegin = 0;
    uint32_t FileEnd = 0;
  };
  std::vector<ProjectSlice> Slices;
  bool SlicesValid = false;
  IncrStats Incr;

  propgraph::PropagationGraph Graph;
  bool GraphReady = false;
  size_t NumFiles = 0;
  double BuildSeconds = 0.0;
  std::vector<double> BuildShardSeconds;

  propgraph::RepTable Reps;
  constraints::ConstraintSystem System;
  bool SystemReady = false;
  bool SystemFromShards = false;
  double GenSeconds = 0.0;
  std::vector<double> GenShardSeconds;
  unsigned JobsUsed = 1;

  std::unique_ptr<ThreadPool> Pool;
};

} // namespace infer
} // namespace seldon

#endif // SELDON_INFER_PIPELINE_H
