# Empty dependencies file for graphbuilder2_test.
# This may be replaced when dependencies are built.
