//===- spec/SeedSpec.cpp - Hand-labeled seed specifications ---------------===//

#include "spec/SeedSpec.h"

#include "support/StrUtil.h"

#include <algorithm>

using namespace seldon;
using namespace seldon::spec;
using namespace seldon::propgraph;

SeedSpec SeedSpec::parse(std::string_view Text,
                         std::vector<std::string> *ErrorsOut) {
  SeedSpec Out;
  size_t LineNo = 0;
  for (const std::string &RawLine : splitString(Text, '\n')) {
    ++LineNo;
    std::string_view Line = trim(RawLine);
    if (Line.empty() || Line.front() == '#')
      continue;
    if (Line.size() < 2 || Line[1] != ':') {
      if (ErrorsOut)
        ErrorsOut->push_back(formatString("line %zu: malformed entry '%s'",
                                          LineNo,
                                          std::string(Line).c_str()));
      continue;
    }
    std::string Value(trim(Line.substr(2)));
    if (Value.empty()) {
      if (ErrorsOut)
        ErrorsOut->push_back(formatString("line %zu: empty entry", LineNo));
      continue;
    }
    switch (Line.front()) {
    case 'o':
      Out.Spec.add(Value, Role::Source);
      break;
    case 'a':
      Out.Spec.add(Value, Role::Sanitizer);
      break;
    case 'i':
      Out.Spec.add(Value, Role::Sink);
      break;
    case 'b':
      Out.Blacklist.add(Value);
      break;
    default:
      if (ErrorsOut)
        ErrorsOut->push_back(formatString("line %zu: unknown kind '%c'",
                                          LineNo, Line.front()));
      break;
    }
  }
  return Out;
}

SeedSpec SeedSpec::halved() const {
  SeedSpec Out;
  Out.Blacklist = Blacklist;
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
    std::vector<std::string> Reps = Spec.sortedReps(R);
    for (size_t I = 0; I < Reps.size(); I += 2)
      Out.Spec.add(Reps[I], R);
  }
  return Out;
}

const char *seldon::spec::paperSeedSpecText() {
  // A representative excerpt of App. B. Grouped as in the paper: sources,
  // then sinks/sanitizers per vulnerability class, then the blacklist.
  return R"seed(
# Sources
o: flask.request.form.get()
o: flask.request.args.get()
o: request.GET.get()
o: request.POST.get()
o: request.GET.copy()
o: request.POST.copy()
o: django.http.QueryDict()
o: django.shortcuts.get_object_or_404()
o: User.objects.get()
o: self.request.get()
o: self.request.headers.get()

# SQL injection
i: MySQLdb.connect().cursor().execute()
i: pymysql.connect().cursor().execute()
i: psycopg2.connect().cursor().execute()
i: sqlite3.connect().cursor().execute()
i: sqlite3.connect().execute()
i: db.session().execute()
i: db.engine.execute()
i: django.db.connection.cursor().execute()
a: MySQLdb.escape_string()
a: psycopg2.escape_string()
a: sqlite3.escape_string()

# OS command injection
i: subprocess.call()
i: subprocess.check_call()
i: subprocess.check_output()
i: os.system()
i: os.popen()
a: subprocess.Popen()

# XSS
i: flask.Response()
i: flask.make_response()
i: flask.render_template_string()
i: jinja2.Markup()
i: django.utils.safestring.mark_safe()
i: wtforms.widgets.HTMLString()
a: bleach.clean()
a: cgi.escape()
a: flask.escape()
a: jinja2.escape()
a: django.utils.html.escape()
a: werkzeug.escape()
a: xml.sax.saxutils.escape()
a: flask.render_template()
a: django.shortcuts.render()

# Path traversal
i: flask.send_from_directory()
i: flask.send_file()
a: os.path.basename()
a: werkzeug.utils.secure_filename()

# Open redirect
i: flask.redirect()
i: django.shortcuts.redirect()
i: django.http.HttpResponseRedirect()

# Blacklist
b: *tensorflow*
b: *numpy*
b: np.*
b: os.path.*
b: sys.*
b: json.*
b: datetime.*
b: re.*
b: hashlib.*
b: *logging*
b: *logger*
b: *__name__*
b: *.all()
b: *.any()
b: *.append()
b: *.capitalize()
b: *.copy()
b: *.count()
b: *.decode()
b: *.encode()
b: *.endswith()
b: *.extend()
b: *.find()
b: *.format()
b: *.index()
b: *.insert()
b: *.join()
b: *.keys()
b: *.lower()
b: *.lstrip()
b: *.replace()*
b: *.rstrip()
b: *.split()*
b: *.splitlines()
b: *.startswith()
b: *.strip()
b: *.title()
b: *.upper()
b: *.values()
b: len()
b: str()
b: int()
b: float()
b: bool()
b: list()
b: dict()
b: set()
b: tuple()
b: range()
b: enumerate()
b: sorted()
b: reversed()
b: zip()
b: min()
b: max()
b: sum()
b: abs()
b: print()
b: open()
b: isinstance()
b: getattr()
b: setattr()
b: hasattr()
b: super()
b: type()
b: id()
b: repr()
b: hash()
b: *test*
)seed";
}
