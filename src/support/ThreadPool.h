//===- support/ThreadPool.h - Fixed-size worker pool -------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size thread pool and a parallelFor loop built on it.
///
/// The pool deliberately has no work stealing and no task dependencies:
/// every parallel phase of the pipeline is an independent fan-out over
/// projects, files, or constraint shards, collected per-index and merged in
/// a deterministic order by the caller. Tasks submitted before destruction
/// are drained (the destructor joins after the queue empties).
///
/// parallelFor hands each spawned task a stable worker index in
/// [0, numWorkers()), so callers can keep per-worker accumulators (timing
/// shards, gradient buffers) without locking.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_THREADPOOL_H
#define SELDON_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace seldon {

/// Fixed-size pool of worker threads with a shared FIFO queue.
class ThreadPool {
public:
  /// Spawns \p Threads workers; 0 means hardwareConcurrency().
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains: already-submitted tasks finish before the workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned numWorkers() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Task; the future rethrows any exception the task threw.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Body(Index, Worker) for every Index in [0, N), distributing
  /// indices dynamically over min(numWorkers(), N) tasks. Worker is the
  /// task's dense id, stable for the duration of the loop. Blocks until all
  /// indices ran; the first exception thrown by any Body is rethrown here
  /// (remaining indices are skipped once a Body has thrown).
  ///
  /// Safe to call from inside a task of this pool: re-entrant calls are
  /// detected and run inline on the calling worker (serially, with
  /// Worker == 0), since blocking a worker on futures only its own pool
  /// can run would deadlock.
  void parallelFor(size_t N,
                   const std::function<void(size_t Index, unsigned Worker)>
                       &Body);

  /// std::thread::hardware_concurrency clamped to at least 1.
  static unsigned hardwareConcurrency();

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::packaged_task<void()>> Queue;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  bool Stopping = false;
};

} // namespace seldon

#endif // SELDON_SUPPORT_THREADPOOL_H
