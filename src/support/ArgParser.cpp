//===- support/ArgParser.cpp - Declarative CLI flag parsing ---------------===//

#include "support/ArgParser.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace seldon;

bool seldon::parseStrictUnsigned(const std::string &Flag,
                                 const std::string &Text,
                                 unsigned long &Out) {
  if (Text.empty() || Text[0] < '0' || Text[0] > '9') {
    std::fprintf(stderr,
                 "error: %s expects a non-negative integer, got '%s'\n",
                 Flag.c_str(), Text.c_str());
    return false;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long Value = std::strtoul(Text.c_str(), &End, 10);
  if (errno == ERANGE || *End != '\0') {
    std::fprintf(stderr,
                 "error: %s expects a non-negative integer, got '%s'\n",
                 Flag.c_str(), Text.c_str());
    return false;
  }
  Out = Value;
  return true;
}

bool seldon::parseStrictDouble(const std::string &Flag,
                               const std::string &Text, double &Out) {
  errno = 0;
  char *End = nullptr;
  double Value = std::strtod(Text.c_str(), &End);
  if (Text.empty() || End == Text.c_str() || *End != '\0' ||
      errno == ERANGE || !std::isfinite(Value)) {
    std::fprintf(stderr, "error: %s expects a number, got '%s'\n",
                 Flag.c_str(), Text.c_str());
    return false;
  }
  Out = Value;
  return true;
}

ArgParser::Flag *ArgParser::find(const std::string &Name) {
  for (Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

const ArgParser::Flag *ArgParser::find(const std::string &Name) const {
  for (const Flag &F : Flags)
    if (F.Name == Name)
      return &F;
  return nullptr;
}

ArgParser &ArgParser::flag(const std::string &Name, bool *Target,
                           const std::string &Help) {
  assert(!find(Name) && "duplicate flag registration");
  Flag F;
  F.Name = Name;
  F.Help = Help;
  F.FlagKind = Kind::Bool;
  F.BoolTarget = Target;
  Flags.push_back(std::move(F));
  return *this;
}

ArgParser &ArgParser::string(const std::string &Name, std::string *Target,
                             const std::string &ValueName,
                             const std::string &Help) {
  assert(!find(Name) && "duplicate flag registration");
  Flag F;
  F.Name = Name;
  F.ValueName = ValueName;
  F.Help = Help;
  F.FlagKind = Kind::String;
  F.StringTarget = Target;
  Flags.push_back(std::move(F));
  return *this;
}

ArgParser &ArgParser::unsignedInt(const std::string &Name,
                                  unsigned long *Target,
                                  const std::string &ValueName,
                                  const std::string &Help) {
  assert(!find(Name) && "duplicate flag registration");
  Flag F;
  F.Name = Name;
  F.ValueName = ValueName;
  F.Help = Help;
  F.FlagKind = Kind::Unsigned;
  F.UnsignedTarget = Target;
  Flags.push_back(std::move(F));
  return *this;
}

ArgParser &ArgParser::decimal(const std::string &Name, double *Target,
                              const std::string &ValueName,
                              const std::string &Help) {
  assert(!find(Name) && "duplicate flag registration");
  Flag F;
  F.Name = Name;
  F.ValueName = ValueName;
  F.Help = Help;
  F.FlagKind = Kind::Double;
  F.DoubleTarget = Target;
  Flags.push_back(std::move(F));
  return *this;
}

bool ArgParser::parse(int Argc, char **Argv, int Begin,
                      std::vector<std::string> *Positional) {
  for (Flag &F : Flags)
    F.Seen = false;
  for (int I = Begin; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg.rfind("--", 0) != 0) {
      Positional->push_back(Arg);
      continue;
    }

    // Split `--name=value`; the inline value then serves as the flag's
    // value, and a flag that takes no value errors out on it.
    std::string Name = Arg;
    std::string Inline;
    bool HasInline = false;
    size_t Eq = Arg.find('=');
    if (Eq != std::string::npos) {
      Name = Arg.substr(0, Eq);
      Inline = Arg.substr(Eq + 1);
      HasInline = true;
    }

    Flag *F = find(Name);
    if (!F) {
      std::fprintf(stderr, "error: unknown option %s\n", Name.c_str());
      return false;
    }
    F->Seen = true;

    if (F->FlagKind == Kind::Bool) {
      if (HasInline) {
        std::fprintf(stderr, "error: %s takes no value\n", Name.c_str());
        return false;
      }
      *F->BoolTarget = true;
      continue;
    }

    const char *Value = nullptr;
    if (HasInline) {
      Value = Inline.c_str();
    } else if (I + 1 < Argc) {
      Value = Argv[++I];
    } else {
      std::fprintf(stderr, "error: %s needs a value\n", Name.c_str());
      return false;
    }

    switch (F->FlagKind) {
    case Kind::String:
      *F->StringTarget = Value;
      break;
    case Kind::Unsigned:
      if (!parseStrictUnsigned(Name, Value, *F->UnsignedTarget))
        return false;
      break;
    case Kind::Double:
      if (!parseStrictDouble(Name, Value, *F->DoubleTarget))
        return false;
      break;
    case Kind::Bool:
      break; // Handled above.
    }
  }
  return true;
}

bool ArgParser::seen(const std::string &Name) const {
  const Flag *F = find(Name);
  return F && F->Seen;
}

std::string ArgParser::usage() const {
  // Measure the widest "--name VALUE" column so help lines align.
  size_t Widest = 0;
  auto Heading = [](const Flag &F) {
    std::string H = F.Name;
    if (!F.ValueName.empty())
      H += " " + F.ValueName;
    return H;
  };
  for (const Flag &F : Flags)
    Widest = std::max(Widest, Heading(F).size());

  std::string Out;
  for (const Flag &F : Flags) {
    std::string Head = Heading(F);
    std::vector<std::string> HelpLines = splitString(F.Help, '\n');
    Out += formatString("  %-*s  %s\n", static_cast<int>(Widest),
                        Head.c_str(),
                        HelpLines.empty() ? "" : HelpLines[0].c_str());
    for (size_t L = 1; L < HelpLines.size(); ++L)
      Out += formatString("  %-*s  %s\n", static_cast<int>(Widest), "",
                          HelpLines[L].c_str());
  }
  return Out;
}
