# Empty compiler generated dependencies file for fstring_test.
# This may be replaced when dependencies are built.
