//===- bench/solver_kernel.cpp - Legacy vs compiled solve stage -----------===//
//
// Times the solve stage on the Fig. 10 corpus with the legacy Objective
// and with the compiled fused kernel, at Jobs=1 and at SELDON_JOBS threads,
// and verifies that all four runs emit byte-identical learned
// specifications. Emits a JSON summary to stdout (scripts/bench_solver.sh
// redirects it into BENCH_solver.json) and a human-readable table to
// stderr. Exits non-zero if any specification differs.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "spec/SpecIO.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace seldon;
using namespace seldon::eval;

namespace {

struct SolveRun {
  infer::PipelineResult Result;
  std::string Spec;
};

SolveRun solveWith(infer::Session &Session, bool Compiled, unsigned Jobs) {
  Session.options().UseCompiledSolver = Compiled;
  Session.options().Jobs = Jobs;
  SolveRun Run;
  Run.Result = Session.solve();
  Run.Spec = spec::writeLearnedSpec(Run.Result.Learned, ScoreThreshold);
  return Run;
}

} // namespace

int main() {
  int NumProjects = envInt("SELDON_PROJECTS", 300);
  unsigned Jobs = static_cast<unsigned>(
      envInt("SELDON_JOBS",
             static_cast<int>(ThreadPool::hardwareConcurrency())));

  // The bench's timings come from the same instrumentation layer the CLI
  // exports (--metrics-out): Session stage durations are trace spans, and
  // the full snapshot is embedded in the JSON summary below.
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.setEnabled(true);

  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  CorpusOpts.NumProjects = NumProjects;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  // Parse + generate once; every solve below reuses the same constraint
  // system, so the timings isolate the solve stage.
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();
  infer::Session Session(PipelineOpts);
  Session.addProjects(Data.Projects);
  Session.generateConstraints(Data.Seed);

  std::fprintf(stderr, "solver bench: %d project(s), %u parallel job(s)\n",
               NumProjects, Jobs);
  SolveRun LegacySerial = solveWith(Session, /*Compiled=*/false, 1);
  SolveRun CompiledSerial = solveWith(Session, /*Compiled=*/true, 1);
  SolveRun LegacyParallel = solveWith(Session, /*Compiled=*/false, Jobs);
  SolveRun CompiledParallel = solveWith(Session, /*Compiled=*/true, Jobs);

  bool Identical = LegacySerial.Spec == CompiledSerial.Spec &&
                   LegacySerial.Spec == LegacyParallel.Spec &&
                   LegacySerial.Spec == CompiledParallel.Spec;

  // Consume the metrics snapshot: the four "session/solve" spans (one per
  // run above, in order) are the timings reported below — the same values
  // PipelineResult::SolveSeconds carries, read back through the registry
  // to keep the bench on the shared instrumentation source.
  std::vector<double> SolveSpanSeconds;
  for (const metrics::SpanRecord &Span : Reg.spans())
    if (Span.Path == "session/solve")
      SolveSpanSeconds.push_back(Span.DurationSeconds);
  if (SolveSpanSeconds.size() != 4) {
    std::fprintf(stderr,
                 "error: expected 4 session/solve spans, found %zu\n",
                 SolveSpanSeconds.size());
    return 1;
  }
  double LegacySerialSeconds = SolveSpanSeconds[0];
  double CompiledSerialSeconds = SolveSpanSeconds[1];
  double LegacyParallelSeconds = SolveSpanSeconds[2];
  double CompiledParallelSeconds = SolveSpanSeconds[3];

  const infer::PipelineResult &R = CompiledSerial.Result;
  const solver::CompileStats &S = R.SolverStats;
  double SerialSpeedup = CompiledSerialSeconds > 0.0
                           ? LegacySerialSeconds / CompiledSerialSeconds
                           : 0.0;
  double ParallelSpeedup =
      CompiledParallelSeconds > 0.0
          ? LegacyParallelSeconds / CompiledParallelSeconds
          : 0.0;

  std::fprintf(stderr,
               "system: %zu constraints -> %zu rows (dedup %.2fx), "
               "%zu non-zeros, %d iterations\n",
               S.RowsBefore, S.RowsAfter, S.dedupRatio(), S.NonZeros,
               R.Solve.Iterations);
  std::fprintf(stderr, "legacy   jobs=1: %.3fs   jobs=%u: %.3fs\n",
               LegacySerialSeconds, Jobs, LegacyParallelSeconds);
  std::fprintf(stderr, "compiled jobs=1: %.3fs   jobs=%u: %.3fs\n",
               CompiledSerialSeconds, Jobs, CompiledParallelSeconds);
  std::fprintf(stderr, "speedup  jobs=1: %.2fx   jobs=%u: %.2fx\n",
               SerialSpeedup, Jobs, ParallelSpeedup);
  std::fprintf(stderr, "learned specs byte-identical across all runs: %s\n",
               Identical ? "yes" : "NO — EQUIVALENCE BUG");

  std::string Json = "{\n";
  Json += formatString("  \"projects\": %d,\n", NumProjects);
  Json += formatString("  \"files\": %zu,\n", R.NumFiles);
  Json += formatString("  \"jobs\": %u,\n", Jobs);
  Json += formatString("  \"constraints\": %zu,\n", S.RowsBefore);
  Json += formatString("  \"rows_after_dedup\": %zu,\n", S.RowsAfter);
  Json += formatString("  \"dedup_ratio\": %.4f,\n", S.dedupRatio());
  Json += formatString("  \"nonzeros\": %zu,\n", S.NonZeros);
  Json += formatString("  \"max_multiplicity\": %zu,\n", S.MaxMultiplicity);
  Json += formatString("  \"iterations\": %d,\n", R.Solve.Iterations);
  Json += formatString("  \"legacy_serial_seconds\": %.6f,\n",
                       LegacySerialSeconds);
  Json += formatString("  \"compiled_serial_seconds\": %.6f,\n",
                       CompiledSerialSeconds);
  Json += formatString("  \"legacy_parallel_seconds\": %.6f,\n",
                       LegacyParallelSeconds);
  Json += formatString("  \"compiled_parallel_seconds\": %.6f,\n",
                       CompiledParallelSeconds);
  Json += formatString("  \"serial_speedup\": %.4f,\n", SerialSpeedup);
  Json += formatString("  \"parallel_speedup\": %.4f,\n", ParallelSpeedup);
  Json += formatString("  \"byte_identical\": %s,\n",
                       Identical ? "true" : "false");
  // Full registry snapshot (indented to nest under this object).
  {
    std::string Snapshot = Reg.toJson();
    if (!Snapshot.empty() && Snapshot.back() == '\n')
      Snapshot.pop_back();
    std::string Indented;
    for (char C : Snapshot) {
      Indented += C;
      if (C == '\n')
        Indented += "  ";
    }
    Json += "  \"metrics\": " + Indented + "\n";
  }
  Json += "}\n";
  std::fputs(Json.c_str(), stdout);

  return Identical ? 0 : 1;
}
