# Empty dependencies file for compare_merlin.
# This may be replaced when dependencies are built.
