//===- support/Rng.cpp - Deterministic random number generation ----------===//

#include "support/Rng.h"

using namespace seldon;

uint64_t Rng::next() {
  // SplitMix64 (Steele, Lea, Flood 2014).
  State += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = State;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

uint64_t Rng::nextBelow(uint64_t Bound) {
  assert(Bound > 0 && "bound must be positive");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::nextInRange(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty range");
  return Lo + static_cast<int64_t>(nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
}

double Rng::nextDouble() {
  // 53 uniformly random mantissa bits.
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::nextBool(double P) { return nextDouble() < P; }

Rng Rng::fork() { return Rng(next()); }
