# Empty dependencies file for table7_vuln_totals.
# This may be replaced when dependencies are built.
