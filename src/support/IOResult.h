//===- support/IOResult.h - Uniform IO success/error carrier -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uniform result type of every IO-facing API in the codebase: either a
/// value or a printable error message, plus recoverable per-record warnings.
/// Grown out of spec/SpecIO.h (which keeps `spec::IOResult` as an alias) so
/// lower layers — the propagation-graph codec, the graph cache — can share
/// the same strict error discipline: a failed load returns a descriptive
/// Error and a default-constructed Value, never a partially-populated one.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_IORESULT_H
#define SELDON_SUPPORT_IORESULT_H

#include <string>
#include <utility>
#include <vector>

namespace seldon {
namespace io {

/// Outcome of an IO operation: either a value or an error message, plus
/// recoverable per-record warnings.
template <typename T> struct IOResult {
  T Value{};
  /// Empty on success; a printable message on failure.
  std::string Error;
  /// Recoverable diagnostics (malformed records that were skipped).
  std::vector<std::string> Warnings;

  bool ok() const { return Error.empty(); }
  explicit operator bool() const { return ok(); }

  static IOResult failure(std::string Message) {
    IOResult R;
    R.Error = std::move(Message);
    return R;
  }
};

} // namespace io
} // namespace seldon

#endif // SELDON_SUPPORT_IORESULT_H
