//===- propgraph/GraphExport.h - Graph serialization -------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes propagation graphs for inspection: Graphviz DOT (with events
/// coloured by resolved role, reproducing the paper's Fig. 2b rendering)
/// and a stable line-oriented text format used by tests and the CLI.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PROPGRAPH_GRAPHEXPORT_H
#define SELDON_PROPGRAPH_GRAPHEXPORT_H

#include "propgraph/PropagationGraph.h"

#include <string>
#include <vector>

namespace seldon {
namespace propgraph {

/// Options for DOT rendering.
struct DotOptions {
  /// Role mask per event (e.g. from taint::TaintAnalyzer::resolveRoles);
  /// empty renders all nodes neutrally. Sources are blue, sanitizers
  /// green, sinks red (Fig. 2b's colour scheme).
  std::vector<RoleMask> Roles;
  /// Graph name emitted in the DOT header.
  std::string Name = "propagation";
};

/// Renders \p Graph as a Graphviz digraph.
std::string toDot(const PropagationGraph &Graph,
                  const DotOptions &Opts = DotOptions());

/// Renders \p Graph as stable text: one `event <id> <kind> <rep>` line per
/// node (with indented backoff options) and one `edge <from> <to>` line
/// per edge, in id order.
std::string toText(const PropagationGraph &Graph);

} // namespace propgraph
} // namespace seldon

#endif // SELDON_PROPGRAPH_GRAPHEXPORT_H
