# Empty compiler generated dependencies file for graphexport_test.
# This may be replaced when dependencies are built.
