//===- corpus/GroundTruth.cpp - Oracle for generated corpora --------------===//

#include "corpus/GroundTruth.h"

#include <algorithm>

using namespace seldon;
using namespace seldon::corpus;

const std::string GroundTruth::Empty;

void GroundTruth::add(const std::string &Rep, RoleMask Mask,
                      std::string VulnClass) {
  Entry &E = Entries[Rep];
  E.Mask |= Mask;
  if (!VulnClass.empty())
    E.VulnClass = std::move(VulnClass);
  ByRoleValid = false; // New truth invalidates the memoized role lists.
}

RoleMask GroundTruth::rolesOf(const std::string &Rep) const {
  auto It = Entries.find(Rep);
  return It == Entries.end() ? 0 : It->second.Mask;
}

bool GroundTruth::isTrue(const std::string &Rep, Role R) const {
  return propgraph::maskHas(rolesOf(Rep), R);
}

bool GroundTruth::anyTrue(const std::vector<std::string> &RepOptions,
                          Role R) const {
  for (const std::string &Rep : RepOptions)
    if (isTrue(Rep, R))
      return true;
  return false;
}

const std::string &GroundTruth::vulnClassOf(const std::string &Rep) const {
  auto It = Entries.find(Rep);
  return It == Entries.end() ? Empty : It->second.VulnClass;
}

const std::vector<std::string> &GroundTruth::repsWithRole(Role R) const {
  if (!ByRoleValid) {
    for (std::vector<std::string> &List : ByRole)
      List.clear();
    for (const auto &[Rep, E] : Entries)
      for (int I = 0; I < propgraph::NumRoles; ++I)
        if (propgraph::maskHas(E.Mask, static_cast<Role>(I)))
          ByRole[I].push_back(Rep);
    // The entry map is unordered; sort so the derived lists (and anything
    // iterating them — oracles, recall sweeps) are deterministic.
    for (std::vector<std::string> &List : ByRole)
      std::sort(List.begin(), List.end());
    ByRoleValid = true;
    ++Derivations;
  }
  return ByRole[static_cast<size_t>(R)];
}
