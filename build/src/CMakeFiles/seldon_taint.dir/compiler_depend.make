# Empty compiler generated dependencies file for seldon_taint.
# This may be replaced when dependencies are built.
