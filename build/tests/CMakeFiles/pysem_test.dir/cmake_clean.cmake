file(REMOVE_RECURSE
  "CMakeFiles/pysem_test.dir/pysem_test.cpp.o"
  "CMakeFiles/pysem_test.dir/pysem_test.cpp.o.d"
  "pysem_test"
  "pysem_test.pdb"
  "pysem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pysem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
