file(REMOVE_RECURSE
  "CMakeFiles/ablation_collapsed.dir/ablation_collapsed.cpp.o"
  "CMakeFiles/ablation_collapsed.dir/ablation_collapsed.cpp.o.d"
  "ablation_collapsed"
  "ablation_collapsed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_collapsed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
