//===- pysem/ScopeBuilder.cpp - Module-level scope information ------------===//

#include "pysem/ScopeBuilder.h"

#include <unordered_set>

using namespace seldon;
using namespace seldon::pysem;
using namespace seldon::pyast;

void ModuleScope::build(const ModuleNode *Module,
                        const std::string &ModuleNameIn) {
  ModuleName = ModuleNameIn;
  Imports.build(Module, ModuleName);

  for (const Stmt *S : Module->Body) {
    if (const auto *F = dyn_cast<FunctionDefStmt>(S)) {
      Functions[F->Name] = F;
      continue;
    }
    const auto *C = dyn_cast<ClassDefStmt>(S);
    if (!C)
      continue;
    ClassInfo Info;
    Info.Def = C;
    Info.Name = C->Name;
    for (const Expr *Base : C->Bases) {
      std::string Qual = resolveDottedName(Imports, Base);
      if (Qual.empty())
        continue;
      Info.BaseQualNames.push_back(Qual);
      // A base with no dots that is not import-bound may be a class defined
      // in this module.
      if (const auto *Name = dyn_cast<NameExpr>(Base))
        if (!Imports.resolveRoot(Name->Id))
          Info.LocalBases.push_back(Name->Id);
    }
    for (const Stmt *Member : C->Body)
      if (const auto *M = dyn_cast<FunctionDefStmt>(Member))
        Info.Methods[M->Name] = M;
    Classes[C->Name] = std::move(Info);
  }
}

const FunctionDefStmt *
ModuleScope::lookupFunction(const std::string &Name) const {
  auto It = Functions.find(Name);
  return It == Functions.end() ? nullptr : It->second;
}

const ClassInfo *ModuleScope::lookupClass(const std::string &Name) const {
  auto It = Classes.find(Name);
  return It == Classes.end() ? nullptr : &It->second;
}

const FunctionDefStmt *
ModuleScope::lookupMethod(const std::string &ClassName,
                          const std::string &MethodName) const {
  // Walk the same-module inheritance chain breadth-first; a visited set
  // guards against inheritance cycles in malformed inputs.
  std::vector<const ClassInfo *> Worklist;
  std::unordered_set<const ClassInfo *> Visited;
  if (const ClassInfo *C = lookupClass(ClassName))
    Worklist.push_back(C);
  for (size_t I = 0; I < Worklist.size(); ++I) {
    const ClassInfo *C = Worklist[I];
    if (!Visited.insert(C).second)
      continue;
    auto It = C->Methods.find(MethodName);
    if (It != C->Methods.end())
      return It->second;
    for (const std::string &Base : C->LocalBases)
      if (const ClassInfo *B = lookupClass(Base))
        Worklist.push_back(B);
  }
  return nullptr;
}
