# Empty compiler generated dependencies file for seldon_pyast.
# This may be replaced when dependencies are built.
