file(REMOVE_RECURSE
  "CMakeFiles/table5_seldon_precision.dir/table5_seldon_precision.cpp.o"
  "CMakeFiles/table5_seldon_precision.dir/table5_seldon_precision.cpp.o.d"
  "table5_seldon_precision"
  "table5_seldon_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_seldon_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
