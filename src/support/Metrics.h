//===- support/Metrics.h - Counters, gauges, timers, series ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small thread-safe metrics registry: named counters, gauges,
/// timer-histograms, and sampled series, plus the stage-span records
/// emitted by support/Trace.h.
///
/// Design rules:
///
///  * **Near-zero overhead when disabled.** Every update checks one
///    relaxed atomic flag and returns; no locks, no allocation. Callers on
///    hot paths should additionally gate on `Registry::enabled()` so that
///    the metric *lookup* (which takes the registry mutex and may intern
///    the name) is skipped too.
///  * **Handles are stable.** `counter()` / `gauge()` / `timer()` /
///    `series()` intern the name on first use and always return the same
///    object; references stay valid for the registry's lifetime, so hot
///    loops can hoist the lookup.
///  * **Updates are lock-free.** Counters, gauges, and timers use atomics
///    (CAS loops for min/max); series take a short mutex but decimate
///    themselves to a bounded sample buffer, so they stay cheap no matter
///    how many points are recorded.
///  * **Metrics never feed back into computation.** Enabling the registry
///    cannot change any learned score or report: instrumented code only
///    writes, and the pipeline never reads a metric.
///
/// The process-wide registry (`Registry::global()`) starts disabled; the
/// CLI enables it for `--metrics` / `--metrics-out`, and the benches enable
/// it to source their JSON numbers from the same instrumentation layer.
/// Tests construct private registries.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_METRICS_H
#define SELDON_SUPPORT_METRICS_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace seldon {
namespace metrics {

class Registry;

/// Monotonically increasing event count (files parsed, solver iterations,
/// worklist pops). add() is a relaxed fetch_add — safe from any thread.
class Counter {
public:
  void add(uint64_t N = 1) {
    if (Enabled->load(std::memory_order_relaxed))
      Value_.fetch_add(N, std::memory_order_relaxed);
  }
  uint64_t value() const { return Value_.load(std::memory_order_relaxed); }

private:
  friend class Registry;
  explicit Counter(const std::atomic<bool> *Enabled) : Enabled(Enabled) {}
  void reset() { Value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> Value_{0};
  const std::atomic<bool> *Enabled;
};

/// Last-write-wins instantaneous value (candidate counts, compile stats).
class Gauge {
public:
  void set(double V) {
    if (Enabled->load(std::memory_order_relaxed))
      Value_.store(V, std::memory_order_relaxed);
  }
  double value() const { return Value_.load(std::memory_order_relaxed); }

private:
  friend class Registry;
  explicit Gauge(const std::atomic<bool> *Enabled) : Enabled(Enabled) {}
  void reset() { Value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> Value_{0.0};
  const std::atomic<bool> *Enabled;
};

/// Duration histogram: count / total / min / max over recorded samples
/// (per-file parse times, per-project graph builds). Lock-free; min/max
/// use CAS loops so concurrent record() calls from pool workers are safe.
class TimerStat {
public:
  void record(double Seconds);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double totalSeconds() const {
    return Sum.load(std::memory_order_relaxed);
  }
  /// 0 when no sample was recorded.
  double minSeconds() const;
  double maxSeconds() const;
  double meanSeconds() const {
    uint64_t N = count();
    return N == 0 ? 0.0 : totalSeconds() / static_cast<double>(N);
  }

private:
  friend class Registry;
  explicit TimerStat(const std::atomic<bool> *Enabled) : Enabled(Enabled) {}
  void reset();

  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min{0.0}; ///< Valid only when Count > 0.
  std::atomic<double> Max{0.0};
  const std::atomic<bool> *Enabled;
};

/// A bounded, self-decimating sample sequence (solver convergence
/// telemetry). Every record() counts; the stored samples keep every
/// Stride-th value and, when the buffer fills, drop every other stored
/// sample and double the stride — so the buffer always holds a uniformly
/// spaced subsample of the full sequence, bounded by the capacity.
class Series {
public:
  void record(double V);

  /// Total points recorded (including decimated-away ones).
  uint64_t total() const;
  /// Distance between consecutive stored samples in record() calls.
  uint64_t stride() const;
  std::vector<double> samples() const;

private:
  friend class Registry;
  Series(const std::atomic<bool> *Enabled, size_t Capacity)
      : Capacity(Capacity < 2 ? 2 : Capacity), Enabled(Enabled) {}
  void reset();

  mutable std::mutex Mutex;
  size_t Capacity;
  uint64_t Stride = 1;
  uint64_t Total = 0;
  std::vector<double> Samples;
  const std::atomic<bool> *Enabled;
};

/// One finished trace span (see support/Trace.h).
struct SpanRecord {
  std::string Path;       ///< Nested "parent/child" span name.
  double StartSeconds;    ///< Offset from the registry's construction.
  double DurationSeconds; ///< Wall time between construction and finish.
};

/// Thread-safe named metric registry with a JSON / plain-text snapshot.
class Registry {
public:
  /// A registry starts enabled unless constructed otherwise; the global()
  /// registry starts disabled so uninstrumented runs pay one relaxed load
  /// per metric site.
  explicit Registry(bool StartEnabled = true) : Enabled(StartEnabled) {}

  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }
  void setEnabled(bool On) {
    Enabled.store(On, std::memory_order_relaxed);
  }

  /// Interns \p Name on first use; always returns the same object. The
  /// returned reference stays valid for the registry's lifetime.
  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  TimerStat &timer(std::string_view Name);
  /// \p Capacity bounds the stored samples (decimation keeps the series
  /// uniform); it only applies when the series is first created.
  Series &series(std::string_view Name, size_t Capacity = 512);

  /// Appends a finished span (called by trace::Span).
  void recordSpan(std::string Path, double StartSeconds,
                  double DurationSeconds);
  std::vector<SpanRecord> spans() const;

  /// Seconds since the registry was constructed (span start offsets).
  double now() const;

  /// Zeroes every value and drops spans/series samples. Handles stay
  /// valid.
  void reset();

  /// Machine-readable snapshot:
  /// {"enabled":…, "counters":{…}, "gauges":{…}, "timers":{…},
  ///  "series":{…}, "spans":[…]} — keys sorted, spans in finish order.
  std::string toJson() const;

  /// Human-readable snapshot (aligned tables per metric kind; empty kinds
  /// are omitted).
  std::string renderText() const;

  /// The process-wide registry, constructed disabled.
  static Registry &global();

private:
  std::atomic<bool> Enabled;
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<TimerStat>, std::less<>> Timers;
  std::map<std::string, std::unique_ptr<Series>, std::less<>> AllSeries;
  std::vector<SpanRecord> Spans;
  std::chrono::steady_clock::time_point Epoch =
      std::chrono::steady_clock::now();
};

} // namespace metrics
} // namespace seldon

#endif // SELDON_SUPPORT_METRICS_H
