//===- bench/fig10_scaling.cpp - Paper Fig. 10 ----------------------------===//
//
// Regenerates Figure 10: Seldon inference time as a function of the number
// of analyzed files. The paper shows linear scaling up to 800,000 files
// (< 5 hours); we sweep corpus subsets of growing size and report the
// end-to-end pipeline time (parse + constraint generation + solving) for a
// serial run (--jobs 1) and a parallel run (SELDON_JOBS threads, default:
// all hardware threads), checking that the two produce byte-identical
// learned specifications. The per-file rate must stay roughly constant for
// linear scaling.
//
// Afterwards, the persistent graph cache is benchmarked at full corpus
// size: an uncached run, a cold cached run (all misses, entries written),
// and a warm cached run (all hits, parse+build skipped) must produce
// byte-identical learned specifications, and the warm parse stage must
// beat the cold one. With SELDON_CACHE_OUT=FILE the comparison is written
// as a JSON fragment that scripts/bench_solver.sh merges into
// BENCH_solver.json. SELDON_FIG10_SWEEP=0 skips the scaling sweep and
// runs only the cache comparison.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "spec/SpecIO.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

using namespace seldon;
using namespace seldon::eval;

namespace {

struct TimedRun {
  infer::PipelineResult Result;
  double TotalSeconds = 0.0;
};

TimedRun runWithJobs(const corpus::Corpus &Data,
                     const infer::PipelineOptions &BaseOpts, unsigned Jobs,
                     const std::string &CacheDir = std::string()) {
  infer::PipelineOptions Opts = BaseOpts;
  Opts.Jobs = Jobs;
  infer::Session Session(Opts);
  if (!CacheDir.empty())
    Session.enableCache(CacheDir);
  Session.addProjects(Data.Projects);
  Session.generateConstraints(Data.Seed);
  TimedRun Run;
  Run.Result = Session.solve();
  Run.TotalSeconds = Run.Result.BuildSeconds + Run.Result.GenSeconds +
                     Run.Result.SolveSeconds;
  return Run;
}

/// Cold vs warm graph-cache comparison at full corpus size. Returns false
/// on a correctness failure (spec drift or missing hits); timing deltas
/// are reported, not gated.
bool runCacheComparison(int MaxProjects, unsigned Jobs,
                        const infer::PipelineOptions &PipelineOpts) {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  CorpusOpts.NumProjects = MaxProjects;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  std::string Template =
      (std::filesystem::temp_directory_path() / "seldon-cache-XXXXXX")
          .string();
  std::vector<char> Path(Template.begin(), Template.end());
  Path.push_back('\0');
  if (!mkdtemp(Path.data())) {
    std::cerr << "cache bench: cannot create temp cache directory\n";
    return false;
  }
  std::string CacheDir(Path.data());

  TimedRun Uncached = runWithJobs(Data, PipelineOpts, Jobs);
  TimedRun Cold = runWithJobs(Data, PipelineOpts, Jobs, CacheDir);
  TimedRun Warm = runWithJobs(Data, PipelineOpts, Jobs, CacheDir);
  std::filesystem::remove_all(CacheDir);

  std::string UncachedSpec = spec::writeLearnedSpec(Uncached.Result.Learned);
  bool Identical =
      UncachedSpec == spec::writeLearnedSpec(Cold.Result.Learned) &&
      UncachedSpec == spec::writeLearnedSpec(Warm.Result.Learned);
  const cache::CacheStats &ColdStats = Cold.Result.Cache;
  const cache::CacheStats &WarmStats = Warm.Result.Cache;
  size_t Projects = Data.Projects.size();
  bool AllHits = WarmStats.Hits == Projects && WarmStats.Misses == 0;
  bool AllMisses = ColdStats.Misses == Projects && ColdStats.Hits == 0;

  std::cout << "\n=== Graph cache: cold vs warm at full corpus size ===\n\n";
  TablePrinter Table({"Run", "Parse (s)", "Total (s)", "Hits", "Misses"});
  Table.addRow({"uncached",
                formatString("%.3f", Uncached.Result.BuildSeconds),
                formatString("%.3f", Uncached.TotalSeconds), "-", "-"});
  Table.addRow({"cold cache",
                formatString("%.3f", Cold.Result.BuildSeconds),
                formatString("%.3f", Cold.TotalSeconds),
                std::to_string(ColdStats.Hits),
                std::to_string(ColdStats.Misses)});
  Table.addRow({"warm cache",
                formatString("%.3f", Warm.Result.BuildSeconds),
                formatString("%.3f", Warm.TotalSeconds),
                std::to_string(WarmStats.Hits),
                std::to_string(WarmStats.Misses)});
  Table.print(std::cout);
  std::cout << formatString(
      "\nwarm parse speedup over cold: %.2fx (%zu project(s), "
      "%llu bytes cached)\nlearned specs byte-identical across "
      "uncached/cold/warm: %s\n",
      Warm.Result.BuildSeconds > 0.0
          ? Cold.Result.BuildSeconds / Warm.Result.BuildSeconds
          : 0.0,
      Projects,
      static_cast<unsigned long long>(ColdStats.BytesWritten),
      Identical ? "yes" : "NO — CACHE BUG");
  if (!AllMisses)
    std::cout << "cold run was not all misses — CACHE BUG\n";
  if (!AllHits)
    std::cout << "warm run was not all hits — CACHE BUG\n";

  if (const char *Out = std::getenv("SELDON_CACHE_OUT")) {
    std::ofstream Json(Out, std::ios::trunc);
    Json << "{\n";
    Json << formatString("  \"projects\": %zu,\n", Projects);
    Json << formatString("  \"files\": %zu,\n", Uncached.Result.NumFiles);
    Json << formatString("  \"jobs\": %u,\n", Jobs);
    Json << formatString("  \"uncached_parse_seconds\": %.6f,\n",
                         Uncached.Result.BuildSeconds);
    Json << formatString("  \"cold_parse_seconds\": %.6f,\n",
                         Cold.Result.BuildSeconds);
    Json << formatString("  \"warm_parse_seconds\": %.6f,\n",
                         Warm.Result.BuildSeconds);
    Json << formatString("  \"cold_total_seconds\": %.6f,\n",
                         Cold.TotalSeconds);
    Json << formatString("  \"warm_total_seconds\": %.6f,\n",
                         Warm.TotalSeconds);
    Json << formatString("  \"warm_parse_speedup\": %.4f,\n",
                         Warm.Result.BuildSeconds > 0.0
                             ? Cold.Result.BuildSeconds /
                                   Warm.Result.BuildSeconds
                             : 0.0);
    Json << formatString("  \"warm_hits\": %llu,\n",
                         static_cast<unsigned long long>(WarmStats.Hits));
    Json << formatString("  \"warm_misses\": %llu,\n",
                         static_cast<unsigned long long>(WarmStats.Misses));
    Json << formatString(
        "  \"cold_misses\": %llu,\n",
        static_cast<unsigned long long>(ColdStats.Misses));
    Json << formatString(
        "  \"bytes_written\": %llu,\n",
        static_cast<unsigned long long>(ColdStats.BytesWritten));
    Json << formatString(
        "  \"bytes_read\": %llu,\n",
        static_cast<unsigned long long>(WarmStats.BytesRead));
    Json << formatString("  \"byte_identical\": %s\n",
                         Identical ? "true" : "false");
    Json << "}\n";
  }
  return Identical && AllHits && AllMisses;
}

} // namespace

int main() {
  int MaxProjects = envInt("SELDON_PROJECTS", 300) * 2;
  unsigned Jobs = static_cast<unsigned>(
      envInt("SELDON_JOBS",
             static_cast<int>(ThreadPool::hardwareConcurrency())));
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();

  if (envInt("SELDON_FIG10_SWEEP", 1) == 0)
    return runCacheComparison(MaxProjects, Jobs, PipelineOpts) ? 0 : 1;

  std::cout << "=== Figure 10: Seldon inference time vs number of analyzed "
               "files ===\n\n";
  std::cout << formatString("parallel runs use %u job(s) "
                            "(override with SELDON_JOBS)\n\n",
                            Jobs);
  TablePrinter Table({"# Files", "# Constraints", "Serial (s)",
                      formatString("Jobs=%u (s)", Jobs), "Speedup",
                      "ms per file"});

  bool AllIdentical = true;
  double HalfRate = 0.0, LastRate = 0.0;
  solver::CompileStats LastStats;
  for (int Fraction = 1; Fraction <= 8; ++Fraction) {
    corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
    CorpusOpts.NumProjects = MaxProjects * Fraction / 8;
    if (CorpusOpts.NumProjects == 0)
      continue;
    corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

    TimedRun Serial = runWithJobs(Data, PipelineOpts, 1);
    TimedRun Parallel = runWithJobs(Data, PipelineOpts, Jobs);

    // Determinism check: the parallel run must reproduce the serial
    // specification byte for byte.
    AllIdentical &= spec::writeLearnedSpec(Serial.Result.Learned) ==
                    spec::writeLearnedSpec(Parallel.Result.Learned);

    const infer::PipelineResult &R = Parallel.Result;
    double MsPerFile = R.NumFiles == 0
                           ? 0.0
                           : 1000.0 * Parallel.TotalSeconds /
                                 static_cast<double>(R.NumFiles);
    if (Fraction == 4)
      HalfRate = MsPerFile;
    LastRate = MsPerFile;
    LastStats = R.SolverStats;
    Table.addRow({std::to_string(R.NumFiles),
                  std::to_string(R.System.Constraints.size()),
                  formatString("%.3f", Serial.TotalSeconds),
                  formatString("%.3f", Parallel.TotalSeconds),
                  formatString("%.2fx",
                               Parallel.TotalSeconds > 0.0
                                   ? Serial.TotalSeconds /
                                         Parallel.TotalSeconds
                                   : 0.0),
                  formatString("%.3f", MsPerFile)});
  }
  Table.print(std::cout);

  std::cout << formatString(
      "\ncompiled solver at full size: %zu constraints -> %zu rows "
      "(dedup %.2fx), %zu non-zeros\n",
      LastStats.RowsBefore, LastStats.RowsAfter, LastStats.dedupRatio(),
      LastStats.NonZeros);
  std::cout << formatString(
      "\nSerial and parallel learned specs byte-identical at every size: "
      "%s\n",
      AllIdentical ? "yes" : "NO — DETERMINISM BUG");
  std::cout << formatString(
      "\nPer-file rate at half vs full corpus: %.3f vs %.3f ms/file — "
      "linear scaling keeps\nthese close. (The rate climbs at the smallest "
      "sizes while representations are still\nbelow the frequency cutoff, "
      "then plateaus; the paper's curve is linear up to 800k\nfiles. "
      "Speedup tracks the number of physical cores; on a single-core "
      "machine the\nparallel column matches the serial one.)\n",
      HalfRate, LastRate);

  AllIdentical &= runCacheComparison(MaxProjects, Jobs, PipelineOpts);
  return AllIdentical ? 0 : 1;
}
