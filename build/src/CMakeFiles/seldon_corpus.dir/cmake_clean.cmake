file(REMOVE_RECURSE
  "CMakeFiles/seldon_corpus.dir/corpus/ApiUniverse.cpp.o"
  "CMakeFiles/seldon_corpus.dir/corpus/ApiUniverse.cpp.o.d"
  "CMakeFiles/seldon_corpus.dir/corpus/CorpusGenerator.cpp.o"
  "CMakeFiles/seldon_corpus.dir/corpus/CorpusGenerator.cpp.o.d"
  "CMakeFiles/seldon_corpus.dir/corpus/GroundTruth.cpp.o"
  "CMakeFiles/seldon_corpus.dir/corpus/GroundTruth.cpp.o.d"
  "libseldon_corpus.a"
  "libseldon_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
