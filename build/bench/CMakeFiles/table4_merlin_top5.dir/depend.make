# Empty dependencies file for table4_merlin_top5.
# This may be replaced when dependencies are built.
