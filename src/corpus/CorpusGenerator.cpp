//===- corpus/CorpusGenerator.cpp - Synthetic web-app corpora -------------===//

#include "corpus/CorpusGenerator.h"

#include "support/Rng.h"
#include "support/StrUtil.h"

#include <set>
#include <unordered_set>

using namespace seldon;
using namespace seldon::corpus;
using namespace seldon::propgraph;

namespace {

/// Pools of realistic project-local names. Pooled names repeat across the
/// corpus so their (backoff) representations clear the frequency cutoff.
const char *WrapperNames[] = {"sanitize_input", "clean_value", "escape_data",
                              "normalize_field", "filter_payload"};
struct HandlerParam {
  const char *Handler;
  const char *Param;
};
const HandlerParam ParamHandlers[] = {
    {"view_profile", "username"},
    {"upload_file", "filename"},
    {"search_items", "query"},
    {"post_comment", "comment"},
    {"delete_entry", "entry_id"},
};
const char *ClassNames[] = {"RequestHandler", "ApiController",
                            "FormProcessor"};
struct AttrReadSource {
  const char *Fn;
  const char *Param;
  const char *Attr;
};
const AttrReadSource AttrReads[] = {
    {"render_post", "post", "content"},
    {"show_user", "user", "username"},
    {"format_entry", "entry", "body"},
    {"preview_comment", "comment", "text"},
};
const char *NoiseVars[] = {"items", "cfg", "tmp", "buf", "opts"};

/// Accumulates one Python source file.
class FileBuilder {
public:
  void addImport(const std::string &Import) {
    if (!Import.empty())
      Imports.insert(Import);
  }

  void addLine(std::string Line) { Lines.push_back(std::move(Line)); }

  std::string freshVar(const char *Base) {
    return std::string(Base) + "_" + std::to_string(VarCounter++);
  }

  bool defineOnce(const std::string &Name) {
    return Defined.insert(Name).second;
  }

  std::string render() const {
    std::string Out;
    for (const std::string &I : Imports) {
      Out += I;
      Out += '\n';
    }
    if (!Imports.empty())
      Out += '\n';
    for (const std::string &L : Lines) {
      Out += L;
      Out += '\n';
    }
    return Out;
  }

private:
  std::set<std::string> Imports;
  std::vector<std::string> Lines;
  std::unordered_set<std::string> Defined;
  int VarCounter = 0;
};

/// Substitutes the "{}" argument slot of a sink/sanitizer template.
std::string instantiate(const std::string &Template, const std::string &Arg) {
  std::string Out = Template;
  size_t Pos = Out.find("{}");
  if (Pos != std::string::npos)
    Out.replace(Pos, 2, Arg);
  return Out;
}

/// Rewrites a sink call so the tainted value enters a harmless keyword
/// parameter: the "{}" slot gets a constant and `meta=<var>` is appended.
std::string instantiateWrongParam(const std::string &Template,
                                  const std::string &Var) {
  std::string Out = instantiate(Template, "'static'");
  size_t Close = Out.rfind(')');
  if (Close != std::string::npos)
    Out.insert(Close, ", meta=" + Var);
  return Out;
}

/// Generates the contents of one file plus its ground-truth flows.
class FileGenerator {
public:
  FileGenerator(const ApiUniverse &U, const CorpusOptions &Opts, Rng &Random,
                const std::string &FilePath, Corpus *Out)
      : U(U), Opts(Opts), Random(Random), FilePath(FilePath), Out(Out) {}

  std::string generate(int NumFlows, int NumNoise) {
    for (int I = 0; I < NumFlows; ++I)
      emitFlow(I);
    for (int I = 0; I < NumNoise; ++I)
      emitNoise();
    return File.render();
  }

  /// True when some flow imported the project's shared utils module.
  bool usedUtilsModule() const { return UsedUtils; }

private:
  /// Picks from \p Pool with a popularity bias toward core APIs (which
  /// form a prefix of every pool).
  const ApiInfo &pickBiased(const std::vector<ApiInfo> &Pool) {
    size_t CoreCount = 0;
    while (CoreCount < Pool.size() && Pool[CoreCount].Core)
      ++CoreCount;
    if (CoreCount > 0 && Random.nextBool(Opts.CoreBias))
      return Pool[Random.nextBelow(CoreCount)];
    return Pool[Random.nextBelow(Pool.size())];
  }

  const ApiInfo &pickBiasedPtr(const std::vector<const ApiInfo *> &Pool) {
    size_t CoreCount = 0;
    while (CoreCount < Pool.size() && Pool[CoreCount]->Core)
      ++CoreCount;
    if (CoreCount > 0 && Random.nextBool(Opts.CoreBias))
      return *Pool[Random.nextBelow(CoreCount)];
    return *Pool[Random.nextBelow(Pool.size())];
  }

  const ApiInfo &pickSource() { return pickBiased(U.sources()); }

  void recordFlow(const std::string &SrcRep, const std::string &SnkRep,
                  const std::string &Cls, bool Sanitized, bool Exploitable,
                  bool WrongParam) {
    if (!Out)
      return;
    Out->Flows.push_back(
        {FilePath, SrcRep, SnkRep, Cls, Sanitized, Exploitable, WrongParam});
  }

  void emitFlow(int Index) {
    const std::string &Cls = Random.pick(ApiUniverse::vulnClasses());
    std::vector<const ApiInfo *> Sans = U.sanitizersOf(Cls);
    std::vector<const ApiInfo *> Snks = U.sinksOf(Cls);
    if (Sans.empty() || Snks.empty())
      return;
    const ApiInfo &San = pickBiasedPtr(Sans);
    const ApiInfo &Snk = pickBiasedPtr(Snks);

    double Total = Opts.PSanitized + Opts.PVulnerable + Opts.PWrongParam +
                   Opts.PParamHandler + Opts.PAttrReadSource;
    double Dice = Random.nextDouble() * Total;

    if ((Dice -= Opts.PSanitized) < 0) {
      emitSanitized(Index, Cls, San, Snk);
      return;
    }
    if ((Dice -= Opts.PVulnerable) < 0) {
      emitVulnerable(Index, Cls, Snk);
      return;
    }
    if ((Dice -= Opts.PWrongParam) < 0) {
      emitWrongParam(Index, Cls, Snk);
      return;
    }
    if ((Dice -= Opts.PParamHandler) < 0) {
      emitParamHandler(Cls, Snk);
      return;
    }
    emitAttrReadSource(Cls, Snk);
  }

  void emitAttrReadSource(const std::string &Cls, const ApiInfo &Snk) {
    // `post.content`-style source: an attribute read of a handler
    // parameter, learned through the read event's backoff options.
    const AttrReadSource &AR =
        AttrReads[Random.nextBelow(std::size(AttrReads))];
    std::string Name(AR.Fn);
    if (!File.defineOnce(Name))
      return;
    File.addImport(Snk.Import);
    std::string Var = File.freshVar("body");
    File.addLine("def " + Name + "(" + AR.Param + "):");
    File.addLine("    " + Var + " = " + std::string(AR.Param) + "." +
                 AR.Attr);
    // Half of these handlers sanitize: the sanitized form is what lets
    // Fig. 4a infer the read as a source (source evidence needs a
    // sanitizer/sink pair downstream).
    bool Sanitized = Random.nextBool(0.5);
    if (Sanitized) {
      std::vector<const ApiInfo *> Sans = U.sanitizersOf(Cls);
      if (!Sans.empty()) {
        const ApiInfo &San = pickBiasedPtr(Sans);
        File.addImport(San.Import);
        std::string Clean = File.freshVar("clean");
        File.addLine("    " + Clean + " = " + instantiate(San.Expr, Var));
        Var = Clean;
      } else {
        Sanitized = false;
      }
    }
    File.addLine("    " + instantiate(Snk.Expr, Var));
    std::string SpecificRep = Name + "(param " + AR.Param + ")." + AR.Attr;
    std::string GeneralRep = std::string(AR.Param) + "." + AR.Attr;
    if (Out) {
      Out->Truth.add(SpecificRep, SourceMask, Cls);
      Out->Truth.add(GeneralRep, SourceMask, Cls);
    }
    recordFlow(SpecificRep, Snk.Rep, Cls, Sanitized,
               /*Exploitable=*/!Sanitized, /*WrongParam=*/false);
  }

  void emitSanitized(int Index, const std::string &Cls, const ApiInfo &San,
                     const ApiInfo &Snk) {
    const ApiInfo &Src = pickSource();
    File.addImport(Src.Import);
    File.addImport(San.Import);
    File.addImport(Snk.Import);
    std::string Data = File.freshVar("data");
    std::string Clean = File.freshVar("clean");

    std::string SanCall;
    if (Random.nextBool(Opts.PUtilsSanitizer)) {
      // Sanitize through the project's shared utils module; the call's
      // representation `utils.<wrapper>()` repeats across repositories.
      std::string Wrapper =
          WrapperNames[Random.nextBelow(std::size(WrapperNames))];
      File.addImport("from utils import " + Wrapper);
      SanCall = Wrapper + "(" + Data + ")";
      UsedUtils = true;
      if (Out)
        Out->Truth.add("utils." + Wrapper + "()", SanitizerMask, Cls);
    } else if (Random.nextBool(Opts.PWrapperSanitizer)) {
      // Project-local wrapper: the learner must discover it through the
      // `wrapper()` backoff representation.
      std::string Wrapper =
          Random.pick(std::vector<std::string>(std::begin(WrapperNames),
                                               std::end(WrapperNames)));
      if (File.defineOnce(Wrapper)) {
        File.addLine("def " + Wrapper + "(value):");
        File.addLine("    return " + instantiate(San.Expr, "value"));
        if (Out)
          Out->Truth.add(Wrapper + "()", SanitizerMask, Cls);
      }
      SanCall = Wrapper + "(" + Data + ")";
    } else {
      SanCall = instantiate(San.Expr, Data);
    }

    std::string Handler = "def handle_" + std::to_string(Index) + "():";
    File.addLine(Handler);
    File.addLine("    " + Data + " = " + Src.Expr);
    emitExtraSource(Data, Snk, /*Sanitized=*/true, /*Exploitable=*/false);
    maybeNoiseTransform(Data);
    File.addLine("    " + Clean + " = " + SanCall);
    File.addLine("    " + instantiate(Snk.Expr, Clean));
    recordFlow(Src.Rep, Snk.Rep, Cls, /*Sanitized=*/true,
               /*Exploitable=*/false, /*WrongParam=*/false);
  }

  void emitVulnerable(int Index, const std::string &Cls, const ApiInfo &Snk) {
    const ApiInfo &Src = pickSource();
    File.addImport(Src.Import);
    File.addImport(Snk.Import);
    std::string Data = File.freshVar("data");
    bool Exploitable = Random.nextBool(Opts.PExploitable);

    if (Random.nextBool(Opts.PClassHandler)) {
      // Class-based handler: the flow crosses methods through a self field
      // (resolved by the points-to pass).
      std::string Cls2 = Random.pick(std::vector<std::string>(
          std::begin(ClassNames), std::end(ClassNames)));
      std::string Name = Cls2 + std::to_string(Index);
      if (!File.defineOnce(Name))
        Name += "_b";
      File.addLine("class " + Name + "(object):");
      File.addLine("    def collect(self, req):");
      File.addLine("        self.payload = " + Src.Expr);
      File.addLine("    def respond(self):");
      File.addLine("        " + instantiate(Snk.Expr, "self.payload"));
    } else {
      File.addLine("def handle_" + std::to_string(Index) + "():");
      if (!Exploitable)
        File.addLine("    # response content-type: text/plain");
      File.addLine("    " + Data + " = " + Src.Expr);
      emitExtraSource(Data, Snk, /*Sanitized=*/false, Exploitable);
      maybeNoiseTransform(Data);
      File.addLine("    " + instantiate(Snk.Expr, Data));
    }
    recordFlow(Src.Rep, Snk.Rep, Cls, /*Sanitized=*/false, Exploitable,
               /*WrongParam=*/false);
  }

  void emitWrongParam(int Index, const std::string &Cls, const ApiInfo &Snk) {
    const ApiInfo &Src = pickSource();
    File.addImport(Src.Import);
    File.addImport(Snk.Import);
    std::string Data = File.freshVar("data");
    File.addLine("def handle_" + std::to_string(Index) + "():");
    File.addLine("    " + Data + " = " + Src.Expr);
    File.addLine("    " + instantiateWrongParam(Snk.Expr, Data));
    recordFlow(Src.Rep, Snk.Rep, Cls, /*Sanitized=*/false,
               /*Exploitable=*/false, /*WrongParam=*/true);
  }

  void emitParamHandler(const std::string &Cls, const ApiInfo &Snk) {
    // A route handler whose formal parameter carries user input — the
    // parameter event itself is the true source.
    const HandlerParam &HP =
        ParamHandlers[Random.nextBelow(std::size(ParamHandlers))];
    std::string Name(HP.Handler);
    if (!File.defineOnce(Name))
      return; // One handler of each name per file.
    File.addImport(Snk.Import);
    if (Random.nextBool(0.5))
      File.addLine("@route('/" + Name + "')");
    File.addLine("def " + Name + "(" + HP.Param + "):");
    File.addLine("    " + instantiate(Snk.Expr, HP.Param));
    std::string SrcRep = Name + "(param " + std::string(HP.Param) + ")";
    if (Out)
      Out->Truth.add(SrcRep, SourceMask, Cls);
    recordFlow(SrcRep, Snk.Rep, Cls, /*Sanitized=*/false,
               /*Exploitable=*/true, /*WrongParam=*/false);
  }

  /// Occasionally concatenates a second source into \p Var — request
  /// handlers typically read several fields, which makes source events the
  /// most numerous candidates (as in the paper's corpus).
  void emitExtraSource(const std::string &Var, const ApiInfo &Snk,
                       bool Sanitized, bool Exploitable) {
    if (!Random.nextBool(0.4))
      return;
    const ApiInfo &Extra = pickSource();
    File.addImport(Extra.Import);
    std::string Second = File.freshVar("field");
    File.addLine("    " + Second + " = " + Extra.Expr);
    File.addLine("    " + Var + " = " + Var + " + " + Second);
    if (Out)
      Out->Flows.push_back({FilePath, Extra.Rep, Snk.Rep, "", Sanitized,
                            Exploitable, false});
  }

  /// Occasionally threads the tainted variable through a blacklisted
  /// builtin or an f-string (flow is preserved; neither becomes a
  /// candidate).
  void maybeNoiseTransform(const std::string &Var) {
    if (!Random.nextBool(0.3))
      return;
    if (Random.nextBool(0.25)) {
      File.addLine("    " + Var + " = f'value={" + Var + "}'");
      return;
    }
    static const char *Transforms[] = {".strip()", ".lower()",
                                       ".replace('\\n', ' ')"};
    File.addLine("    " + Var + " = " + Var +
                 Transforms[Random.nextBelow(std::size(Transforms))]);
  }

  void emitNoise() {
    const ApiInfo &N = Random.pick(U.neutrals());
    File.addImport(N.Import);
    std::string Var = File.freshVar(NoiseVars[Random.nextBelow(
        std::size(NoiseVars))]);
    switch (Random.nextBelow(3)) {
    case 0:
      File.addLine(Var + " = " + N.Expr);
      break;
    case 1:
      File.addLine(Var + " = str(len(" + N.Expr + "))");
      break;
    default:
      File.addLine(Var + " = [x for x in " + N.Expr + " if x]");
      break;
    }
  }

  const ApiUniverse &U;
  const CorpusOptions &Opts;
  Rng &Random;
  std::string FilePath;
  Corpus *Out;
  FileBuilder File;
  bool UsedUtils = false;
};

size_t countLines(const std::string &Text) {
  size_t N = 0;
  for (char C : Text)
    N += C == '\n';
  return N;
}

} // namespace

Corpus seldon::corpus::generateCorpus(const CorpusOptions &Opts) {
  Corpus Out;
  ApiUniverse Universe = ApiUniverse::standard(Opts.Universe);
  Out.Seed = Universe.seedSpec();
  Out.Truth = Universe.groundTruth();

  Rng Root(Opts.Seed);
  for (int P = 0; P < Opts.NumProjects; ++P) {
    Rng ProjectRng = Root.fork();
    std::string ProjectName = "proj" + std::to_string(P);
    pysem::Project Project(ProjectName);
    int NumFiles = static_cast<int>(ProjectRng.nextInRange(
        Opts.MinFilesPerProject, Opts.MaxFilesPerProject));
    bool NeedUtils = false;
    for (int F = 0; F < NumFiles; ++F) {
      std::string Path =
          ProjectName + "/app_" + std::to_string(F) + ".py";
      FileGenerator Gen(Universe, Opts, ProjectRng, Path, &Out);
      int Flows = static_cast<int>(ProjectRng.nextInRange(
          Opts.MinFlowsPerFile, Opts.MaxFlowsPerFile));
      std::string Source = Gen.generate(Flows, Opts.NoiseStatementsPerFile);
      Out.TotalLines += countLines(Source);
      Project.addModule(Path, Source);
      ++Out.NumFiles;
      NeedUtils |= Gen.usedUtilsModule();
    }
    if (NeedUtils) {
      // The shared project library the flows imported from. Each wrapper
      // delegates to a real sanitizer of its class rotation.
      std::string Source = "import flask\nimport shlex\n"
                           "import MySQLdb\nimport werkzeug.utils\n"
                           "import urlvalid\n\n";
      const char *Inner[] = {"flask.escape({})", "MySQLdb.escape_string({})",
                             "werkzeug.utils.secure_filename({})",
                             "shlex.quote({})", "urlvalid.check_relative({})"};
      for (size_t W = 0; W < std::size(WrapperNames); ++W) {
        Source += "def " + std::string(WrapperNames[W]) + "(value):\n";
        Source += "    return " +
                  instantiate(Inner[W % std::size(Inner)], "value") + "\n\n";
      }
      std::string Path = ProjectName + "/utils.py";
      Out.TotalLines += countLines(Source);
      Project.addModule(Path, Source);
      ++Out.NumFiles;
    }
    Out.Projects.push_back(std::move(Project));
  }
  return Out;
}

pysem::Project
seldon::corpus::generateSingleProject(const ApiUniverse &Universe,
                                      uint64_t Seed, int NumFiles,
                                      int FlowsPerFile,
                                      const std::string &Name) {
  CorpusOptions Opts;
  Rng Random(Seed);
  pysem::Project Project(Name);
  for (int F = 0; F < NumFiles; ++F) {
    std::string Path = Name + "/mod_" + std::to_string(F) + ".py";
    FileGenerator Gen(Universe, Opts, Random, Path, nullptr);
    Project.addModule(Path, Gen.generate(FlowsPerFile, 3));
  }
  return Project;
}
