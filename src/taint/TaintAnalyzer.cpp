//===- taint/TaintAnalyzer.cpp - Taint-flow violation detection -----------===//

#include "taint/TaintAnalyzer.h"

#include "support/Metrics.h"

#include <algorithm>
#include <unordered_set>

using namespace seldon;
using namespace seldon::taint;
using namespace seldon::propgraph;

bool RoleResolver::hasRole(const Event &E, Role R) const {
  if (!maskHas(E.Candidates, R))
    return false;
  if (Exact)
    for (const std::string &Rep : E.Reps)
      if (Exact->has(Rep, R))
        return true;
  if (Learned && Learned->selectRole(E.Reps, R, Threshold).has_value())
    return true;
  return false;
}

std::vector<RoleMask>
TaintAnalyzer::resolveRoles(const RoleResolver &Roles) const {
  std::vector<RoleMask> Out(Graph.numEvents(), 0);
  for (const Event &E : Graph.events()) {
    RoleMask Mask = 0;
    for (Role R : {Role::Source, Role::Sanitizer, Role::Sink})
      if (Roles.hasRole(E, R))
        Mask |= maskOf(R);
    Out[E.Id] = Mask;
  }
  return Out;
}

std::vector<Violation>
TaintAnalyzer::analyze(const RoleResolver &Roles) const {
  std::vector<Violation> Out;
  std::vector<RoleMask> Mask = resolveRoles(Roles);

  for (const Event &SrcEvent : Graph.events()) {
    if (!maskHas(Mask[SrcEvent.Id], Role::Source))
      continue;
    EventId Src = SrcEvent.Id;

    // Forward BFS that never expands *through* sanitizers: a sanitizer
    // event absorbs the taint (its output is clean).
    std::vector<EventId> Parent(Graph.numEvents(), InvalidEvent);
    std::vector<bool> Seen(Graph.numEvents(), false);
    std::vector<EventId> Queue{Src};
    Seen[Src] = true;

    for (size_t Head = 0; Head < Queue.size(); ++Head) {
      EventId Cur = Queue[Head];
      for (EventId Next : Graph.successors(Cur)) {
        if (Seen[Next])
          continue;
        Seen[Next] = true;
        Parent[Next] = Cur;
        if (maskHas(Mask[Next], Role::Sanitizer))
          continue; // Taint stops here.
        if (maskHas(Mask[Next], Role::Sink)) {
          Violation V;
          V.Source = Src;
          V.Sink = Next;
          V.FileIdx = SrcEvent.FileIdx;
          for (EventId Walk = Next; Walk != InvalidEvent;
               Walk = Parent[Walk])
            V.Path.push_back(Walk);
          std::reverse(V.Path.begin(), V.Path.end());
          Out.push_back(std::move(V));
        }
        Queue.push_back(Next);
      }
    }
  }

  metrics::Registry &Reg = metrics::Registry::global();
  if (Reg.enabled()) {
    Reg.counter("taint.analyses").add();
    Reg.counter("taint.violations").add(Out.size());
  }
  return Out;
}

size_t
seldon::taint::countAffectedProjects(const PropagationGraph &Graph,
                                     const std::vector<Violation> &Violations) {
  std::unordered_set<std::string> Projects;
  for (const Violation &V : Violations) {
    const std::string &Path = Graph.files()[V.FileIdx];
    size_t Slash = Path.find('/');
    Projects.insert(Slash == std::string::npos ? Path : Path.substr(0, Slash));
  }
  return Projects.size();
}
