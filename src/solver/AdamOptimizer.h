//===- solver/AdamOptimizer.h - Projected Adam descent -----------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Projected Adam (Kingma & Ba 2014), the optimizer the paper uses through
/// TensorFlow (§4.4): full-batch subgradient steps with first/second moment
/// estimates and bias correction, projecting onto [0,1] (and the pinned
/// seed values) after every step.
///
/// The loop drives any objective exposing the fused interface
/// (numVars / project / initialPoint / valueAndGradient) and needs exactly
/// one valueAndGradient evaluation per iteration: the objective value, the
/// stationarity probe, best-iterate tracking, and the progress callback all
/// derive from that single call. On a CompiledObjective that is one
/// constraint sweep per iteration; the legacy Objective's reference
/// implementation spends two sweeps inside valueAndGradient.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_ADAMOPTIMIZER_H
#define SELDON_SOLVER_ADAMOPTIMIZER_H

#include "solver/Objective.h"

namespace seldon {
namespace solver {

class CompiledObjective;

/// Projected Adam gradient descent over Objective or CompiledObjective
/// (explicitly instantiated for both in AdamOptimizer.cpp).
class AdamOptimizer {
public:
  explicit AdamOptimizer(SolveOptions Options = SolveOptions())
      : Options(Options) {}

  /// Minimizes \p Obj starting from Obj.initialPoint().
  template <class ObjT> SolveResult minimize(const ObjT &Obj) const;

  /// Minimizes \p Obj starting from \p X0 (projected first).
  template <class ObjT>
  SolveResult minimize(const ObjT &Obj, std::vector<double> X0) const;

private:
  SolveOptions Options;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_ADAMOPTIMIZER_H
