//===- tests/compiled_objective_test.cpp - Compiled solver kernel tests ---===//
//
// The compiled kernel must be an exact drop-in for the legacy Objective:
// same values, same gradients, same optimizer trajectories, for any Jobs
// setting. The bitwise assertions below are not wishful thinking — the
// comparison points are chosen so every sum the two evaluators perform is
// exact in double (coefficients are small dyadic floats, evaluation points
// are multiples of 2^-8), which makes the results independent of term
// order, merging, and duplicate coalescing. Gradient entries are sums of
// coefficients alone (no dependence on X), so trajectory equality holds
// even at the non-grid iterates Adam produces.
//
//===----------------------------------------------------------------------===//

#include "solver/AdamOptimizer.h"
#include "solver/CompiledObjective.h"
#include "solver/ProjectedGradient.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <random>
#include <stdexcept>
#include <string>

using namespace seldon;
using namespace seldon::solver;

namespace {

//===----------------------------------------------------------------------===//
// Canonicalization unit cases
//===----------------------------------------------------------------------===//

TEST(CompileTest, MergesDuplicateTermsWithinASide) {
  // x0·0.5 + x0·0.25 <= 0.25 lowers to one CSR entry with coef 0.75.
  LinearConstraint LC;
  LC.Lhs = {{0, 0.5f}, {0, 0.25f}};
  LC.C = 0.25;
  CompiledObjective Obj(1, {LC}, 0.0);
  EXPECT_EQ(Obj.numRows(), 1u);
  EXPECT_EQ(Obj.numNonZeros(), 1u);
  EXPECT_DOUBLE_EQ(Obj.hingeLoss({1.0}), 0.5);
  std::vector<double> Grad;
  Obj.gradient({1.0}, Grad);
  EXPECT_DOUBLE_EQ(Grad[0], 0.75);
}

TEST(CompileTest, FoldsRhsWithNegatedCoefficients) {
  // x0 <= 0.5·x1 + 0.25 becomes x0 − 0.5·x1 <= 0.25.
  LinearConstraint LC;
  LC.Lhs = {{0, 1.0f}};
  LC.Rhs = {{1, 0.5f}};
  LC.C = 0.25;
  CompiledObjective Obj(2, {LC}, 0.0);
  EXPECT_EQ(Obj.numNonZeros(), 2u);
  EXPECT_DOUBLE_EQ(Obj.hingeLoss({1.0, 0.5}), 0.5);
  std::vector<double> Grad;
  Obj.gradient({1.0, 0.5}, Grad);
  EXPECT_DOUBLE_EQ(Grad[0], 1.0);
  EXPECT_DOUBLE_EQ(Grad[1], -0.5);
}

TEST(CompileTest, DropsTermsThatCancelAcrossSides) {
  // x0 + 0.5·x1 <= 0.5·x1: the x1 terms cancel exactly and vanish.
  LinearConstraint LC;
  LC.Lhs = {{0, 1.0f}, {1, 0.5f}};
  LC.Rhs = {{1, 0.5f}};
  CompiledObjective Obj(2, {LC}, 0.0);
  EXPECT_EQ(Obj.numNonZeros(), 1u);
  std::vector<double> Grad;
  Obj.gradient({1.0, 1.0}, Grad);
  EXPECT_DOUBLE_EQ(Grad[0], 1.0);
  EXPECT_DOUBLE_EQ(Grad[1], 0.0);
}

TEST(CompileTest, CoalescesExactDuplicatesWithMultiplicity) {
  LinearConstraint A;
  A.Lhs = {{0, 1.0f}};
  A.Rhs = {{1, 1.0f}};
  A.C = 0.25;
  LinearConstraint B;
  B.Lhs = {{1, 1.0f}};
  B.C = 0.75;
  CompiledObjective Obj(2, {A, A, B, A}, 0.0);
  const CompileStats &S = Obj.stats();
  EXPECT_EQ(S.RowsBefore, 4u);
  EXPECT_EQ(S.RowsAfter, 2u);
  EXPECT_EQ(S.MaxMultiplicity, 3u);
  EXPECT_DOUBLE_EQ(S.dedupRatio(), 2.0);
  // Three copies of A, each violated by 0.75: the weighted row must
  // contribute exactly 3 · 0.75.
  EXPECT_DOUBLE_EQ(Obj.hingeLoss({1.0, 0.0}), 3 * 0.75);
  std::vector<double> Grad;
  Obj.gradient({1.0, 0.0}, Grad);
  EXPECT_DOUBLE_EQ(Grad[0], 3.0);
  EXPECT_DOUBLE_EQ(Grad[1], -3.0);
}

TEST(CompileTest, CoalescesRowsThatDifferOnlyInTermOrder) {
  LinearConstraint A;
  A.Lhs = {{0, 0.5f}, {1, 0.25f}};
  A.C = 0.25;
  LinearConstraint B;
  B.Lhs = {{1, 0.25f}, {0, 0.5f}}; // Same row, different spelling.
  B.C = 0.25;
  CompiledObjective Obj(2, {A, B}, 0.0);
  EXPECT_EQ(Obj.stats().RowsAfter, 1u);
  EXPECT_EQ(Obj.stats().MaxMultiplicity, 2u);
}

TEST(CompileTest, DoesNotCoalesceDifferentConstants) {
  LinearConstraint A;
  A.Lhs = {{0, 1.0f}};
  A.C = 0.25;
  LinearConstraint B = A;
  B.C = 0.75;
  CompiledObjective Obj(1, {A, B}, 0.0);
  EXPECT_EQ(Obj.stats().RowsAfter, 2u);
}

TEST(CompileTest, PinsBehaveLikeLegacy) {
  CompiledObjective Obj(2, {}, 0.1);
  Obj.pin(0, 1.0);
  EXPECT_TRUE(Obj.isPinned(0));
  EXPECT_DOUBLE_EQ(Obj.pinnedValue(0), 1.0);
  // Pinned vars carry no L1 term and no gradient; project restores them.
  EXPECT_NEAR(Obj.value({1.0, 1.0}), 0.1, 1e-12);
  std::vector<double> Grad;
  Obj.gradient({1.0, 1.0}, Grad);
  EXPECT_DOUBLE_EQ(Grad[0], 0.0);
  EXPECT_DOUBLE_EQ(Grad[1], 0.1);
  std::vector<double> X{0.25, -1.0};
  Obj.project(X);
  EXPECT_DOUBLE_EQ(X[0], 1.0);
  EXPECT_DOUBLE_EQ(X[1], 0.0);
}

TEST(CompileTest, RejectsSystemsOverflowingThe32BitCsrLayout) {
  // RowBegin/VarIdx are uint32_t; past ~4.29B entries the offsets would
  // wrap silently. SELDON_TEST_CSR_LIMIT shrinks the limit so the guard
  // can be exercised without allocating billions of entries.
  setenv("SELDON_TEST_CSR_LIMIT", "6", 1);
  // Four distinct 2-term rows = 8 non-zeros > 6: must throw, descriptively.
  std::vector<LinearConstraint> Big;
  for (int I = 0; I < 4; ++I) {
    LinearConstraint LC;
    LC.Lhs = {{static_cast<uint32_t>(2 * I), 1.0f},
              {static_cast<uint32_t>(2 * I + 1), 0.5f}};
    LC.C = 0.25;
    Big.push_back(LC);
  }
  try {
    CompiledObjective Obj(8, Big, 0.1);
    unsetenv("SELDON_TEST_CSR_LIMIT");
    FAIL() << "expected the CSR overflow guard to throw";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what()).find("32-bit CSR layout"),
              std::string::npos)
        << E.what();
  }

  // Rows past the limit trip the guard even when non-zeros stay under it.
  setenv("SELDON_TEST_CSR_LIMIT", "3", 1);
  std::vector<LinearConstraint> ManyRows;
  for (int I = 0; I < 4; ++I) {
    LinearConstraint LC;
    LC.Lhs = {{static_cast<uint32_t>(I), 1.0f}};
    LC.C = 0.25;
    ManyRows.push_back(LC);
  }
  EXPECT_THROW(CompiledObjective(4, ManyRows, 0.1), std::runtime_error);

  // Duplicates coalesce before the check: many copies of few rows pass.
  std::vector<LinearConstraint> Duplicates(100, ManyRows[0]);
  EXPECT_NO_THROW(CompiledObjective(4, Duplicates, 0.1));
  unsetenv("SELDON_TEST_CSR_LIMIT");

  // Back at the real limit, ordinary systems compile.
  EXPECT_NO_THROW(CompiledObjective(8, Big, 0.1));
}

TEST(CompileTest, CompileCopiesPinsFromLegacyObjective) {
  Objective Legacy(3, {}, 0.1);
  Legacy.pin(1, 1.0);
  CompiledObjective Compiled = CompiledObjective::compile(Legacy);
  EXPECT_TRUE(Compiled.isPinned(1));
  EXPECT_DOUBLE_EQ(Compiled.pinnedValue(1), 1.0);
  EXPECT_FALSE(Compiled.isPinned(0));
  EXPECT_DOUBLE_EQ(Compiled.lambda(), 0.1);
}

//===----------------------------------------------------------------------===//
// Randomized bitwise equivalence
//===----------------------------------------------------------------------===//

/// A random system in the shape the generator emits: averaging
/// coefficients 1/n, constants that are multiples of 0.25, seed pins, and
/// a healthy fraction of exact duplicates. Large enough (3k constraints)
/// to span multiple shards.
Objective randomSystem(uint32_t Seed, size_t NumVars = 60,
                       size_t NumConstraints = 3000, double Lambda = 0.1) {
  std::mt19937 Rng(Seed);
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  std::vector<LinearConstraint> Constraints;
  Constraints.reserve(NumConstraints);
  while (Constraints.size() < NumConstraints) {
    LinearConstraint LC;
    int NumLhs = Rand(1, 3), NumRhs = Rand(0, 3);
    for (int I = 0; I < NumLhs; ++I)
      LC.Lhs.push_back({static_cast<uint32_t>(Rand(0, NumVars - 1)),
                        1.0f / Rand(1, 6)});
    for (int I = 0; I < NumRhs; ++I)
      LC.Rhs.push_back({static_cast<uint32_t>(Rand(0, NumVars - 1)),
                        1.0f / Rand(1, 6)});
    LC.C = 0.25 * Rand(0, 4);
    // Duplicate some constraints, as big-code corpora do.
    int Copies = Rand(0, 4) == 0 ? Rand(2, 5) : 1;
    for (int I = 0; I < Copies && Constraints.size() < NumConstraints; ++I)
      Constraints.push_back(LC);
  }
  Objective Obj(NumVars, std::move(Constraints), Lambda);
  for (size_t I = 0; I < NumVars / 10; ++I)
    Obj.pin(Rand(0, NumVars - 1), Rand(0, 1));
  return Obj;
}

/// A random system for trajectory comparison at arbitrary (non-grid)
/// iterates. Off the grid, per-row sums round, so the violation test
/// (V > 0) could flip between evaluation orders when a row lands within
/// an ulp of zero; these rows are shaped so canonicalization preserves
/// the legacy addition sequence bit for bit: within a row the Lhs
/// variables are distinct, sorted, and all smaller than the (distinct,
/// sorted) Rhs variables, and a − b rounds identically to a + (−b).
/// Duplicate rows still coalesce — the weighted gradient W·c equals W
/// additions of the float c exactly — so the optimizer trajectories match
/// bitwise even though the hinge values may differ in ulps.
Objective structuredSystem(uint32_t Seed, size_t NumVars = 60,
                           size_t NumConstraints = 3000,
                           double Lambda = 0.1) {
  std::mt19937 Rng(Seed);
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  const int Split = static_cast<int>(NumVars) / 2;
  auto PickVars = [&](int Count, int Lo, int Hi) {
    std::vector<uint32_t> Vars;
    for (int I = 0; I < Count; ++I)
      Vars.push_back(static_cast<uint32_t>(Rand(Lo, Hi)));
    std::sort(Vars.begin(), Vars.end());
    Vars.erase(std::unique(Vars.begin(), Vars.end()), Vars.end());
    return Vars;
  };
  std::vector<LinearConstraint> Constraints;
  Constraints.reserve(NumConstraints);
  while (Constraints.size() < NumConstraints) {
    LinearConstraint LC;
    for (uint32_t Var : PickVars(Rand(1, 3), 0, Split - 1))
      LC.Lhs.push_back({Var, 1.0f / Rand(1, 6)});
    for (uint32_t Var : PickVars(Rand(0, 3), Split, NumVars - 1))
      LC.Rhs.push_back({Var, 1.0f / Rand(1, 6)});
    LC.C = 0.25 * Rand(0, 4);
    int Copies = Rand(0, 4) == 0 ? Rand(2, 5) : 1;
    for (int I = 0; I < Copies && Constraints.size() < NumConstraints; ++I)
      Constraints.push_back(LC);
  }
  Objective Obj(NumVars, std::move(Constraints), Lambda);
  for (size_t I = 0; I < NumVars / 10; ++I)
    Obj.pin(Rand(0, NumVars - 1), Rand(0, 1));
  return Obj;
}

/// A random point on the 2^-8 grid: every product with a coefficient is
/// exact in double, so evaluation order cannot affect the result.
std::vector<double> gridPoint(std::mt19937 &Rng, size_t NumVars) {
  std::uniform_int_distribution<int> Dist(0, 256);
  std::vector<double> X(NumVars);
  for (double &V : X)
    V = Dist(Rng) / 256.0;
  return X;
}

bool bitwiseEqual(const std::vector<double> &A, const std::vector<double> &B) {
  return A.size() == B.size() &&
         std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0;
}

TEST(CompiledEquivalenceTest, ValuesAndGradientsBitwiseEqualOnGridPoints) {
  for (uint32_t Seed : {1u, 2u, 3u}) {
    Objective Legacy = randomSystem(Seed);
    CompiledObjective Compiled = CompiledObjective::compile(Legacy);
    EXPECT_LT(Compiled.numRows(), Legacy.numConstraints())
        << "random system must contain duplicates for this test to bite";

    std::mt19937 Rng(Seed * 7919);
    for (int Trial = 0; Trial < 20; ++Trial) {
      std::vector<double> X = gridPoint(Rng, Legacy.numVars());
      Legacy.project(X);
      EXPECT_EQ(Legacy.hingeLoss(X), Compiled.hingeLoss(X));
      EXPECT_EQ(Legacy.value(X), Compiled.value(X));
      std::vector<double> GradL, GradC;
      Legacy.gradient(X, GradL);
      Compiled.gradient(X, GradC);
      EXPECT_TRUE(bitwiseEqual(GradL, GradC)) << "seed " << Seed;
      // The fused kernel must agree with its own split evaluators.
      std::vector<double> GradF;
      EXPECT_EQ(Compiled.valueAndGradient(X, GradF), Compiled.value(X));
      EXPECT_TRUE(bitwiseEqual(GradF, GradC));
    }
  }
}

TEST(CompiledEquivalenceTest, ParallelSweepsBitwiseEqualSerial) {
  Objective Legacy = randomSystem(42);
  CompiledObjective Serial = CompiledObjective::compile(Legacy);
  CompiledObjective Parallel = CompiledObjective::compile(Legacy);
  ASSERT_GT(Serial.numShards(), 1u) << "system too small to test sharding";
  ThreadPool Pool(4);
  Parallel.setThreadPool(&Pool);

  std::mt19937 Rng(99);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<double> X = gridPoint(Rng, Legacy.numVars());
    Serial.project(X);
    std::vector<double> GradS, GradP;
    double ValueS = Serial.valueAndGradient(X, GradS);
    double ValueP = Parallel.valueAndGradient(X, GradP);
    EXPECT_EQ(ValueS, ValueP);
    EXPECT_TRUE(bitwiseEqual(GradS, GradP));
  }
}

/// Runs Adam over \p Obj with a deterministic option set.
template <class ObjT>
SolveResult runAdam(const ObjT &Obj, int Iters = 120) {
  SolveOptions O;
  O.MaxIterations = Iters;
  O.LearningRate = 0.05;
  O.Tolerance = 1e-9;
  AdamOptimizer Opt(O);
  return Opt.minimize(Obj);
}

TEST(CompiledEquivalenceTest, FullAdamTrajectoryMatchesLegacy) {
  // Gradients are sums of coefficients alone, so they stay bitwise equal
  // at the arbitrary iterates Adam visits — and with them the entire X
  // trajectory, the iteration count, and the convergence flag.
  for (uint32_t Seed : {5u, 6u}) {
    Objective Legacy = structuredSystem(Seed);
    CompiledObjective Compiled = CompiledObjective::compile(Legacy);
    SolveResult RL = runAdam(Legacy);
    SolveResult RC = runAdam(Compiled);
    EXPECT_EQ(RL.Iterations, RC.Iterations);
    EXPECT_EQ(RL.Converged, RC.Converged);
    EXPECT_TRUE(bitwiseEqual(RL.X, RC.X)) << "seed " << Seed;
    EXPECT_NEAR(RL.FinalObjective, RC.FinalObjective,
                1e-12 * std::abs(RL.FinalObjective));
  }
}

TEST(CompiledEquivalenceTest, FullAdamTrajectoryMatchesAcrossJobs) {
  Objective Legacy = randomSystem(7);
  CompiledObjective Serial = CompiledObjective::compile(Legacy);
  CompiledObjective Parallel = CompiledObjective::compile(Legacy);
  ThreadPool Pool(4);
  Parallel.setThreadPool(&Pool);
  SolveResult RS = runAdam(Serial);
  SolveResult RP = runAdam(Parallel);
  EXPECT_EQ(RS.Iterations, RP.Iterations);
  EXPECT_TRUE(bitwiseEqual(RS.X, RP.X));
  EXPECT_EQ(RS.FinalObjective, RP.FinalObjective);
}

TEST(CompiledEquivalenceTest, ProjectedGradientTrajectoryMatchesLegacy) {
  Objective Legacy = structuredSystem(11);
  CompiledObjective Compiled = CompiledObjective::compile(Legacy);
  SolveOptions O;
  O.MaxIterations = 80;
  O.LearningRate = 0.05;
  O.Tolerance = 1e-9;
  ProjectedGradient Opt(O);
  SolveResult RL = Opt.minimize(Legacy);
  SolveResult RC = Opt.minimize(Compiled);
  EXPECT_EQ(RL.Iterations, RC.Iterations);
  EXPECT_TRUE(bitwiseEqual(RL.X, RC.X));
}

TEST(CompiledEquivalenceTest, WarmStartTrajectoryMatchesLegacy) {
  Objective Legacy = structuredSystem(13);
  CompiledObjective Compiled = CompiledObjective::compile(Legacy);
  std::mt19937 Rng(17);
  std::vector<double> X0 = gridPoint(Rng, Legacy.numVars());
  SolveOptions O;
  O.MaxIterations = 60;
  O.LearningRate = 0.05;
  O.Tolerance = 1e-9;
  AdamOptimizer Opt(O);
  SolveResult RL = Opt.minimize(Legacy, X0);
  SolveResult RC = Opt.minimize(Compiled, X0);
  EXPECT_EQ(RL.Iterations, RC.Iterations);
  EXPECT_TRUE(bitwiseEqual(RL.X, RC.X));
}

TEST(CompiledEquivalenceTest, CallbackSeesEveryIteration) {
  // The fused loop must preserve the iteration/callback contract the
  // pipeline's progress observer relies on: exactly one callback per
  // counted iteration, including the converging one.
  Objective Legacy = randomSystem(19, /*NumVars=*/20, /*NumConstraints=*/50);
  CompiledObjective Compiled = CompiledObjective::compile(Legacy);
  SolveOptions O;
  O.MaxIterations = 2000;
  O.LearningRate = 0.05;
  O.Tolerance = 1e-7;
  int Calls = 0, LastIter = 0;
  O.OnIteration = [&](int Iter, double) {
    ++Calls;
    LastIter = Iter;
  };
  AdamOptimizer Opt(O);
  SolveResult R = Opt.minimize(Compiled);
  EXPECT_EQ(Calls, R.Iterations);
  EXPECT_EQ(LastIter, R.Iterations);
  EXPECT_TRUE(R.Converged);
}

} // namespace
