file(REMOVE_RECURSE
  "CMakeFiles/ablation_argpos.dir/ablation_argpos.cpp.o"
  "CMakeFiles/ablation_argpos.dir/ablation_argpos.cpp.o.d"
  "ablation_argpos"
  "ablation_argpos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_argpos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
