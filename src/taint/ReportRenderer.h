//===- taint/ReportRenderer.h - Violation ranking & formatting ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Post-processing of taint reports, mirroring the paper's triage workflow
/// (§7.3/Q7: "we inspected several reports with highly scored sources and
/// sinks"):
///
///  * confidence scoring: a report's confidence is the weaker of its two
///    endpoint confidences (seeded endpoints count as 1.0);
///  * ranking: reports sorted by descending confidence;
///  * deduplication by (source representation, sink representation) pair —
///    thousands of raw reports collapse to one exemplar per API pair;
///  * human-readable rendering with the witness path.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_TAINT_REPORTRENDERER_H
#define SELDON_TAINT_REPORTRENDERER_H

#include "taint/TaintAnalyzer.h"

#include <string>
#include <vector>

namespace seldon {
namespace taint {

/// Confidence of one endpoint event under seed + learned specs: 1.0 for a
/// seed match, the decayed learned score otherwise, 0.0 if neither.
double endpointConfidence(const Event &E, Role R, const spec::TaintSpec *Seed,
                          const spec::LearnedSpec *Learned,
                          double Threshold = 0.1);

/// Report confidence: min(source confidence, sink confidence).
double violationConfidence(const PropagationGraph &Graph,
                           const Violation &V, const spec::TaintSpec *Seed,
                           const spec::LearnedSpec *Learned,
                           double Threshold = 0.1);

/// Sorts \p Reports by descending confidence (stable; ties keep discovery
/// order). Returns confidences parallel to the sorted vector.
std::vector<double> rankViolations(const PropagationGraph &Graph,
                                   std::vector<Violation> &Reports,
                                   const spec::TaintSpec *Seed,
                                   const spec::LearnedSpec *Learned,
                                   double Threshold = 0.1);

/// Keeps one exemplar (the first) per (source primary rep, sink primary
/// rep) pair, preserving order.
std::vector<Violation>
dedupByRepPair(const PropagationGraph &Graph,
               const std::vector<Violation> &Reports);

/// Multi-line human-readable rendering of one report.
std::string formatViolation(const PropagationGraph &Graph,
                            const Violation &V);

} // namespace taint
} // namespace seldon

#endif // SELDON_TAINT_REPORTRENDERER_H
