//===- service/Protocol.h - Versioned request/response framing ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `seldond` wire protocol: line-delimited JSON, one request per line,
/// one response line per request, in order. Every request carries a
/// protocol version and a caller-chosen id that is echoed verbatim:
///
///   -> {"v":1,"id":1,"op":"status"}
///   <- {"v":1,"id":1,"ok":true,"result":{...}}
///   -> {"v":1,"id":"q7","op":"query","rep":"bleach.clean()","role":"sanitizer"}
///   <- {"v":1,"id":"q7","ok":true,"result":{"rep":"bleach.clean()",...}}
///
/// Failures are *structured errors*, never closed connections or crashes:
///
///   <- {"v":1,"id":null,"ok":false,"error":{"code":"bad-json","message":"..."}}
///
/// The envelope keys are emitted in a fixed order (v, id, ok, then result
/// or error last), so byte-oriented consumers can splice the result out of
/// a response line without a JSON parser. Version gating happens before
/// anything else is interpreted: a request whose `v` is not the supported
/// version is answered with `unsupported-version` and the fields are not
/// touched, which is what lets the API evolve under long-lived clients.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_PROTOCOL_H
#define SELDON_SERVICE_PROTOCOL_H

#include "service/Json.h"

#include <cstddef>
#include <string>

namespace seldon {
namespace service {

/// The protocol version this build speaks. Bump only with a translation
/// path for the previous version.
constexpr int ProtocolVersion = 1;

/// Default cap on one request line (bytes, newline excluded). A line
/// beyond the cap is answered with an `oversized` error and discarded
/// without being parsed.
constexpr size_t DefaultMaxRequestBytes = 1 << 20;

/// Machine-readable error codes; the `code` field of a structured error.
enum class ErrorCode {
  BadJson,            ///< The line is not a JSON object.
  BadRequest,         ///< Missing/mistyped envelope or parameter field.
  UnsupportedVersion, ///< `v` is not ProtocolVersion.
  UnknownOp,          ///< `op` names no operation.
  Oversized,          ///< Request line exceeded the byte cap.
  Overloaded,         ///< Admission queue full; retry later.
  Deadline,           ///< Per-request deadline expired mid-execution.
  Internal,           ///< Handler threw; message carries the diagnostic.
  ShuttingDown,       ///< Service is draining after `shutdown`.
};

/// The wire name of \p Code ("bad-json", "unsupported-version", ...).
const char *errorCodeName(ErrorCode Code);

/// One parsed, version-checked request envelope.
struct Request {
  int Version = 0;
  /// The caller's id, echoed verbatim into the response. Null when the
  /// request carried none (or could not be parsed far enough to find it).
  JsonValue Id;
  std::string Op;
  /// The whole request object; operations read their parameters from it.
  JsonValue Params;
};

/// A structured failure produced while parsing or executing a request.
struct RequestError {
  ErrorCode Code = ErrorCode::Internal;
  std::string Message;
};

/// Parses and validates one request line (already stripped of its
/// newline). Enforces, in order: the \p MaxBytes frame cap, JSON
/// well-formedness, object shape, version `v`, and a string `op`. The id
/// is salvaged whenever the line parses as an object, so even error
/// responses correlate with the request that caused them. Returns false
/// with \p Err filled (and \p Out.Id set to the salvaged id) on failure.
bool parseRequest(const std::string &Line, size_t MaxBytes, Request &Out,
                  RequestError &Err);

/// Renders a success envelope: {"v":1,"id":<id>,"ok":true,"result":<R>}.
/// \p ResultJson must already be rendered JSON. No trailing newline.
std::string renderOkResponse(const JsonValue &Id,
                             const std::string &ResultJson);

/// Renders a failure envelope:
/// {"v":1,"id":<id>,"ok":false,"error":{"code":"...","message":"..."}}.
std::string renderErrorResponse(const JsonValue &Id, ErrorCode Code,
                                const std::string &Message);

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_PROTOCOL_H
