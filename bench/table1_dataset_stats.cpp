//===- bench/table1_dataset_stats.cpp - Paper Tab. 1 ----------------------===//
//
// Regenerates Table 1: statistics of the applications in the evaluation —
// number of candidate events, average number of backoff options per event,
// number of constraints, and number of source files.
//
// Paper values (44,250 GitHub files): 210,864 candidates / 1.73 backoff
// options / 504,982 constraints. Our corpus is smaller (scale it with
// SELDON_PROJECTS); the *ratios* (a handful of candidates per file, ~2.4
// constraints per candidate, backoff average well above 1) are the shape
// being reproduced.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "propgraph/GraphStats.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;

int main() {
  eval::CorpusRun Run = eval::runStandardExperiment(
      eval::standardCorpusOptions(), eval::standardPipelineOptions());

  std::cout << "=== Table 1: Statistics on the applications in our "
               "evaluation ===\n\n";
  TablePrinter Table({"Statistic", "Value"});
  Table.addRow({"# Candidates",
                std::to_string(Run.Pipeline.System.NumCandidates)});
  Table.addRow({"Average # backoff options per event",
                formatString("%.2f", Run.Pipeline.System.AvgBackoffOptions)});
  Table.addRow({"# Constraints",
                std::to_string(Run.Pipeline.System.Constraints.size())});
  Table.addRow({"# Source files", std::to_string(Run.Pipeline.NumFiles)});
  Table.print(std::cout);

  std::cout << "\nSupplementary corpus statistics:\n";
  TablePrinter Extra({"Statistic", "Value"});
  Extra.addRow({"# Projects", std::to_string(Run.Data.Projects.size())});
  Extra.addRow({"# Lines of Python", std::to_string(Run.Data.TotalLines)});
  Extra.addRow({"# Events (incl. non-candidates)",
                std::to_string(Run.Pipeline.Graph.numEvents())});
  Extra.addRow({"# Flow edges",
                std::to_string(Run.Pipeline.Graph.numEdges())});
  Extra.addRow({"# Seed annotations",
                std::to_string(Run.Data.Seed.Spec.size())});
  Extra.addRow({"# Optimization variables",
                std::to_string(Run.Pipeline.System.Vars.numVars())});
  Extra.print(std::cout);

  std::cout << "\nGraph structure:\n"
            << propgraph::renderGraphStats(
                   propgraph::computeGraphStats(Run.Pipeline.Graph));
  std::cout << "\nPaper reference (44,250 files): 210,864 candidates, 1.73 "
               "backoff options,\n504,982 constraints.\n";
  return 0;
}
