# Empty dependencies file for appc_reported_bugs.
# This may be replaced when dependencies are built.
