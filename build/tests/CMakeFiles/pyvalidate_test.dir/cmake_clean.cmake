file(REMOVE_RECURSE
  "CMakeFiles/pyvalidate_test.dir/pyvalidate_test.cpp.o"
  "CMakeFiles/pyvalidate_test.dir/pyvalidate_test.cpp.o.d"
  "pyvalidate_test"
  "pyvalidate_test.pdb"
  "pyvalidate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pyvalidate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
