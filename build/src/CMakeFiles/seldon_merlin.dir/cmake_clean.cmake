file(REMOVE_RECURSE
  "CMakeFiles/seldon_merlin.dir/merlin/FactorGraph.cpp.o"
  "CMakeFiles/seldon_merlin.dir/merlin/FactorGraph.cpp.o.d"
  "CMakeFiles/seldon_merlin.dir/merlin/GibbsSampler.cpp.o"
  "CMakeFiles/seldon_merlin.dir/merlin/GibbsSampler.cpp.o.d"
  "CMakeFiles/seldon_merlin.dir/merlin/LoopyBeliefPropagation.cpp.o"
  "CMakeFiles/seldon_merlin.dir/merlin/LoopyBeliefPropagation.cpp.o.d"
  "CMakeFiles/seldon_merlin.dir/merlin/MerlinConstraints.cpp.o"
  "CMakeFiles/seldon_merlin.dir/merlin/MerlinConstraints.cpp.o.d"
  "CMakeFiles/seldon_merlin.dir/merlin/MerlinPipeline.cpp.o"
  "CMakeFiles/seldon_merlin.dir/merlin/MerlinPipeline.cpp.o.d"
  "libseldon_merlin.a"
  "libseldon_merlin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_merlin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
