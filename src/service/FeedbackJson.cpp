//===- service/FeedbackJson.cpp - Feedback wire/file format ---------------===//

#include "service/FeedbackJson.h"

#include "service/QueryResult.h"

#include <fstream>
#include <sstream>

using namespace seldon;
using namespace seldon::service;

namespace {

bool parseVerdictArray(const JsonValue &Doc, const char *Key, bool Accepted,
                       constraints::FeedbackSet &Out, std::string &Error,
                       size_t &Count) {
  const JsonValue *Array = Doc.get(Key);
  if (!Array)
    return true;
  if (!Array->isArray()) {
    Error = std::string("\"") + Key + "\" must be an array";
    return false;
  }
  size_t Index = 0;
  for (const JsonValue &Entry : Array->arrayValue()) {
    std::string At =
        std::string(Key) + "[" + std::to_string(Index++) + "]";
    if (!Entry.isObject()) {
      Error = At + " is not an object";
      return false;
    }
    const JsonValue *Rep = Entry.get("rep");
    if (!Rep || !Rep->isString() || Rep->stringValue().empty()) {
      Error = At + " needs a non-empty string \"rep\"";
      return false;
    }
    const JsonValue *RoleV = Entry.get("role");
    propgraph::Role R;
    if (!RoleV || !RoleV->isString() ||
        !roleFromName(RoleV->stringValue(), R)) {
      Error = At + " needs \"role\" of source, sanitizer, or sink";
      return false;
    }
    if (Accepted)
      Out.accept(Rep->stringValue(), R);
    else
      Out.reject(Rep->stringValue(), R);
    ++Count;
  }
  return true;
}

} // namespace

bool seldon::service::feedbackFromJson(const JsonValue &Doc,
                                       constraints::FeedbackSet &Out,
                                       std::string &Error, size_t *Accepted,
                                       size_t *Rejected) {
  if (!Doc.isObject()) {
    Error = "feedback must be a JSON object";
    return false;
  }
  // Parse into a scratch set first so a malformed later entry leaves the
  // caller's accumulated feedback untouched.
  constraints::FeedbackSet Parsed;
  size_t NumAccepted = 0, NumRejected = 0;
  if (!parseVerdictArray(Doc, "accept", /*Accepted=*/true, Parsed, Error,
                         NumAccepted) ||
      !parseVerdictArray(Doc, "reject", /*Accepted=*/false, Parsed, Error,
                         NumRejected))
    return false;
  if (NumAccepted + NumRejected == 0) {
    Error = "feedback needs a non-empty \"accept\" or \"reject\" array";
    return false;
  }
  for (const constraints::FeedbackEntry &E : Parsed.entries()) {
    if (E.Accepted)
      Out.accept(E.Rep, E.R);
    else
      Out.reject(E.Rep, E.R);
  }
  if (Accepted)
    *Accepted = NumAccepted;
  if (Rejected)
    *Rejected = NumRejected;
  return true;
}

bool seldon::service::loadFeedbackFile(const std::string &Path,
                                       constraints::FeedbackSet &Out,
                                       std::string &Error, size_t *Accepted,
                                       size_t *Rejected) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open feedback file " + Path;
    return false;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  if (In.bad()) {
    Error = "cannot read feedback file " + Path;
    return false;
  }
  JsonValue Doc;
  if (!parseJson(Text.str(), Doc, Error) ||
      !feedbackFromJson(Doc, Out, Error, Accepted, Rejected)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}
