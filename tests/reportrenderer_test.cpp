//===- tests/reportrenderer_test.cpp - Tests for report post-processing ---===//

#include "propgraph/GraphBuilder.h"
#include "taint/ReportRenderer.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::taint;
using namespace seldon::propgraph;

namespace {

struct RendererFixture {
  pysem::Project Proj;
  PropagationGraph Graph;
  spec::SeedSpec Seed;
  spec::LearnedSpec Learned;

  explicit RendererFixture(std::string_view Source,
                           std::string_view SeedText = "") {
    const pysem::ModuleInfo &M = Proj.addModule("p/app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = buildModuleGraph(Proj, M);
    Seed = spec::SeedSpec::parse(SeedText);
  }

  std::vector<Violation> analyze() {
    RoleResolver Roles(&Seed.Spec, &Learned, 0.1);
    return TaintAnalyzer(Graph).analyze(Roles);
  }
};

TEST(ReportRendererTest, EndpointConfidenceSeedBeatsLearned) {
  RendererFixture F("import web\nx = web.read()\n", "o: web.read()\n");
  F.Learned.setScore("web.read()", Role::Source, 0.4);
  const Event &E = F.Graph.event(0);
  EXPECT_DOUBLE_EQ(
      endpointConfidence(E, Role::Source, &F.Seed.Spec, &F.Learned), 1.0);
  EXPECT_DOUBLE_EQ(endpointConfidence(E, Role::Source, nullptr, &F.Learned),
                   0.4);
  EXPECT_DOUBLE_EQ(endpointConfidence(E, Role::Sink, &F.Seed.Spec,
                                      &F.Learned),
                   0.0);
}

TEST(ReportRendererTest, ViolationConfidenceIsMinOfEndpoints) {
  RendererFixture F("import web\nimport db\ndb.run(web.read())\n",
                    "o: web.read()\n");
  F.Learned.setScore("db.run()", Role::Sink, 0.6);
  auto Reports = F.analyze();
  ASSERT_EQ(Reports.size(), 1u);
  EXPECT_DOUBLE_EQ(violationConfidence(F.Graph, Reports[0], &F.Seed.Spec,
                                       &F.Learned),
                   0.6);
}

TEST(ReportRendererTest, RankingSortsByConfidence) {
  RendererFixture F("import web\nimport other\nimport db\nimport log\n"
                    "db.run(web.read())\n"
                    "log.emit(other.fetch())\n",
                    "o: web.read()\ni: db.run()\n");
  F.Learned.setScore("other.fetch()", Role::Source, 0.3);
  F.Learned.setScore("log.emit()", Role::Sink, 0.5);
  auto Reports = F.analyze();
  ASSERT_EQ(Reports.size(), 2u);
  std::vector<double> Confidence =
      rankViolations(F.Graph, Reports, &F.Seed.Spec, &F.Learned);
  ASSERT_EQ(Confidence.size(), 2u);
  EXPECT_DOUBLE_EQ(Confidence[0], 1.0) << "seeded pair ranks first";
  EXPECT_DOUBLE_EQ(Confidence[1], 0.3);
  EXPECT_EQ(F.Graph.event(Reports[0].Source).primaryRep(), "web.read()");
}

TEST(ReportRendererTest, DedupByRepPair) {
  RendererFixture F("import web\nimport db\n"
                    "db.run(web.read())\n"
                    "db.run(web.read())\n"
                    "db.run(web.read())\n",
                    "o: web.read()\ni: db.run()\n");
  auto Reports = F.analyze();
  ASSERT_EQ(Reports.size(), 3u);
  auto Deduped = dedupByRepPair(F.Graph, Reports);
  EXPECT_EQ(Deduped.size(), 1u);
}

TEST(ReportRendererTest, DedupKeepsDistinctPairs) {
  RendererFixture F("import web\nimport db\nimport fs\n"
                    "db.run(web.read())\n"
                    "fs.write(web.read())\n",
                    "o: web.read()\ni: db.run()\ni: fs.write()\n");
  auto Reports = F.analyze();
  ASSERT_EQ(Reports.size(), 2u);
  EXPECT_EQ(dedupByRepPair(F.Graph, Reports).size(), 2u);
}

TEST(ReportRendererTest, FormatContainsEndpointsAndPath) {
  RendererFixture F("import web\nimport db\ndb.run(web.read())\n",
                    "o: web.read()\ni: db.run()\n");
  auto Reports = F.analyze();
  ASSERT_EQ(Reports.size(), 1u);
  std::string Text = formatViolation(F.Graph, Reports[0]);
  EXPECT_NE(Text.find("p/app.py"), std::string::npos);
  EXPECT_NE(Text.find("source web.read()"), std::string::npos);
  EXPECT_NE(Text.find("sink   db.run()"), std::string::npos);
  EXPECT_NE(Text.find("line 3"), std::string::npos);
  EXPECT_NE(Text.find("path:"), std::string::npos);
}

TEST(ReportRendererTest, RankingStableOnTies) {
  RendererFixture F("import web\nimport db\nimport fs\n"
                    "db.run(web.read())\n"
                    "fs.write(web.read())\n",
                    "o: web.read()\ni: db.run()\ni: fs.write()\n");
  auto Reports = F.analyze();
  ASSERT_EQ(Reports.size(), 2u);
  std::string FirstSink = F.Graph.event(Reports[0].Sink).primaryRep();
  rankViolations(F.Graph, Reports, &F.Seed.Spec, nullptr);
  EXPECT_EQ(F.Graph.event(Reports[0].Sink).primaryRep(), FirstSink)
      << "stable sort keeps discovery order on equal confidence";
}

} // namespace
