file(REMOVE_RECURSE
  "libseldon_merlin.a"
)
