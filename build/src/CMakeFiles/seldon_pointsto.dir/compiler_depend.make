# Empty compiler generated dependencies file for seldon_pointsto.
# This may be replaced when dependencies are built.
