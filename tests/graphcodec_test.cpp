//===- tests/graphcodec_test.cpp - Codec round-trip properties ------------===//
//
// The contract of propgraph/GraphCodec.h, swept over seeded-random
// corpora: encode -> decode -> re-encode must be byte-identical, decoded
// graphs must be structurally identical to the originals, and a decoded
// graph must produce an identical constraint system — the invariant the
// graph cache's byte-identity guarantee rests on.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "constraints/ConstraintGen.h"
#include "propgraph/GraphCodec.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

/// Structural equality of two graphs, field by field.
void expectGraphsIdentical(const PropagationGraph &A,
                           const PropagationGraph &B) {
  ASSERT_EQ(A.files().size(), B.files().size());
  for (size_t I = 0; I < A.files().size(); ++I)
    EXPECT_EQ(A.files()[I], B.files()[I]);
  ASSERT_EQ(A.numEvents(), B.numEvents());
  ASSERT_EQ(A.numEdges(), B.numEdges());
  for (EventId Id = 0; Id < A.numEvents(); ++Id) {
    const Event &EA = A.event(Id);
    const Event &EB = B.event(Id);
    EXPECT_EQ(EA.Id, EB.Id);
    EXPECT_EQ(EA.Kind, EB.Kind);
    EXPECT_EQ(EA.Reps, EB.Reps);
    EXPECT_EQ(EA.Candidates, EB.Candidates);
    EXPECT_EQ(EA.FileIdx, EB.FileIdx);
    EXPECT_EQ(EA.Loc.Line, EB.Loc.Line);
    EXPECT_EQ(EA.Loc.Col, EB.Loc.Col);
    EXPECT_EQ(A.successors(Id), B.successors(Id));
    EXPECT_EQ(A.predecessors(Id), B.predecessors(Id));
  }
}

/// Exact equality of two constraint systems.
void expectSystemsIdentical(const constraints::ConstraintSystem &A,
                            const constraints::ConstraintSystem &B) {
  EXPECT_EQ(A.Vars.numVars(), B.Vars.numVars());
  EXPECT_EQ(A.NumCandidates, B.NumCandidates);
  EXPECT_EQ(A.Pinned.size(), B.Pinned.size());
  ASSERT_EQ(A.Constraints.size(), B.Constraints.size());
  for (size_t I = 0; I < A.Constraints.size(); ++I) {
    const solver::LinearConstraint &CA = A.Constraints[I];
    const solver::LinearConstraint &CB = B.Constraints[I];
    EXPECT_EQ(CA.C, CB.C);
    ASSERT_EQ(CA.Lhs.size(), CB.Lhs.size());
    for (size_t T = 0; T < CA.Lhs.size(); ++T) {
      EXPECT_EQ(CA.Lhs[T].Var, CB.Lhs[T].Var);
      EXPECT_EQ(CA.Lhs[T].Coef, CB.Lhs[T].Coef);
    }
    ASSERT_EQ(CA.Rhs.size(), CB.Rhs.size());
    for (size_t T = 0; T < CA.Rhs.size(); ++T) {
      EXPECT_EQ(CA.Rhs[T].Var, CB.Rhs[T].Var);
      EXPECT_EQ(CA.Rhs[T].Coef, CB.Rhs[T].Coef);
    }
  }
}

//===----------------------------------------------------------------------===//
// Round-trip sweeps over generated corpora
//===----------------------------------------------------------------------===//

class CodecSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecSweepTest, RoundTripIsByteIdentical) {
  corpus::Corpus Data = testutil::makeCorpus(GetParam(), /*NumProjects=*/6);
  for (const pysem::Project &P : Data.Projects) {
    PropagationGraph Original = buildProjectGraph(P);
    std::string Encoded = encodeGraph(Original);

    io::IOResult<PropagationGraph> Decoded = decodeGraph(Encoded);
    ASSERT_TRUE(Decoded.ok()) << Decoded.Error;
    expectGraphsIdentical(Original, Decoded.Value);

    // The canonical-form property: re-encoding reproduces the bytes.
    EXPECT_EQ(Encoded, encodeGraph(Decoded.Value))
        << "re-encode differs for project " << P.name() << " at seed "
        << GetParam();
  }
}

TEST_P(CodecSweepTest, DecodedGraphYieldsIdenticalConstraints) {
  corpus::Corpus Data = testutil::makeCorpus(GetParam(), /*NumProjects=*/6);
  PropagationGraph Original = testutil::buildGlobalGraph(Data);

  io::IOResult<PropagationGraph> Decoded =
      decodeGraph(encodeGraph(Original));
  ASSERT_TRUE(Decoded.ok()) << Decoded.Error;

  RepTable RepsA, RepsB;
  RepsA.countOccurrences(Original);
  RepsB.countOccurrences(Decoded.Value);
  ASSERT_EQ(RepsA.size(), RepsB.size());
  for (RepId Id = 0; Id < RepsA.size(); ++Id) {
    EXPECT_EQ(RepsA.repString(Id), RepsB.repString(Id));
    EXPECT_EQ(RepsA.occurrences(Id), RepsB.occurrences(Id));
  }

  constraints::ConstraintSystem SysA =
      constraints::generateConstraints(Original, RepsA, Data.Seed);
  constraints::ConstraintSystem SysB =
      constraints::generateConstraints(Decoded.Value, RepsB, Data.Seed);
  expectSystemsIdentical(SysA, SysB);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecSweepTest,
                         ::testing::Values(1, 7, 42, 1234, 99991));

//===----------------------------------------------------------------------===//
// Edge cases
//===----------------------------------------------------------------------===//

TEST(GraphCodecTest, EmptyGraphRoundTrips) {
  PropagationGraph Empty;
  std::string Encoded = encodeGraph(Empty);
  io::IOResult<PropagationGraph> Decoded = decodeGraph(Encoded);
  ASSERT_TRUE(Decoded.ok()) << Decoded.Error;
  EXPECT_EQ(Decoded.Value.numEvents(), 0u);
  EXPECT_EQ(Decoded.Value.numEdges(), 0u);
  EXPECT_EQ(Decoded.Value.files().size(), 0u);
  EXPECT_EQ(Encoded, encodeGraph(Decoded.Value));
}

TEST(GraphCodecTest, HandWrittenGraphRoundTrips) {
  PropagationGraph G;
  uint32_t F = G.addFile("app/views.py");
  Event Src;
  Src.Kind = EventKind::Call;
  Src.Reps = {"flask.request.args.get()", "request.args.get()"};
  Src.Candidates = AllRolesMask;
  Src.FileIdx = F;
  Src.Loc = {12, 7};
  EventId SrcId = G.addEvent(Src);
  Event Snk;
  Snk.Kind = EventKind::ObjectRead;
  Snk.Reps = {"post.title"};
  Snk.Candidates = SourceMask;
  Snk.FileIdx = F;
  Snk.Loc = {13, 1};
  EventId SnkId = G.addEvent(Snk);
  G.addEdge(SrcId, SnkId);

  io::IOResult<PropagationGraph> Decoded = decodeGraph(encodeGraph(G));
  ASSERT_TRUE(Decoded.ok()) << Decoded.Error;
  expectGraphsIdentical(G, Decoded.Value);
}

TEST(GraphCodecTest, RejectsForeignBytes) {
  io::IOResult<PropagationGraph> R = decodeGraph("not a graph at all");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("magic"), std::string::npos) << R.Error;
  EXPECT_EQ(R.Value.numEvents(), 0u);
}

TEST(GraphCodecTest, RejectsFutureVersion) {
  PropagationGraph Empty;
  std::string Encoded = encodeGraph(Empty);
  // Byte 4 is the varint format version (currently a single byte).
  Encoded[4] = static_cast<char>(GraphCodecVersion + 1);
  io::IOResult<PropagationGraph> R = decodeGraph(Encoded);
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("version"), std::string::npos) << R.Error;
}

TEST(GraphCodecTest, FnvDetectsSingleByteDifference) {
  std::string A(256, 'x');
  for (size_t I = 0; I < A.size(); ++I) {
    std::string B = A;
    B[I] = 'y';
    EXPECT_NE(fnv1a64(A), fnv1a64(B)) << "collision at byte " << I;
  }
}

} // namespace
