#!/usr/bin/env bash
# Times the solve stage with the legacy evaluator and the compiled fused
# kernel on the Fig. 10 corpus and writes the comparison to
# BENCH_solver.json (in the repo root, or $1 if given). Exits non-zero if
# the two paths disagree on the learned specification or if the compiled
# kernel is not at least 2x faster serially.
#
# Knobs: SELDON_PROJECTS (corpus size, default 300), SELDON_JOBS.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT="${1:-$ROOT/BENCH_solver.json}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS" --target solver_kernel >/dev/null

"$ROOT/build/bench/solver_kernel" > "$OUT"
echo "wrote $OUT"

python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
if not r["byte_identical"]:
    sys.exit("FAIL: legacy and compiled specs differ")
if r["serial_speedup"] < 2.0:
    sys.exit(f"FAIL: serial speedup {r['serial_speedup']:.2f}x < 2x")

# The embedded metrics snapshot must agree with the bench's own numbers:
# stage spans for the four solves, convergence series, and the compile
# stats the dedup claims are based on.
m = r["metrics"]
solves = [s for s in m["spans"] if s["path"] == "session/solve"]
if len(solves) != 4:
    sys.exit(f"FAIL: expected 4 session/solve spans, got {len(solves)}")
if abs(solves[1]["duration_seconds"] - r["compiled_serial_seconds"]) > 1e-6:
    sys.exit("FAIL: compiled_serial_seconds disagrees with its span")
if m["gauges"]["solver.rows_after"] != r["rows_after_dedup"]:
    sys.exit("FAIL: solver.rows_after gauge disagrees with rows_after_dedup")
if m["series"]["solve.objective"]["count"] == 0:
    sys.exit("FAIL: no solver convergence samples in metrics snapshot")
print(f"OK: {r['serial_speedup']:.2f}x serial speedup, "
      f"{r['dedup_ratio']:.2f}x dedup, specs byte-identical, "
      f"metrics snapshot consistent")
EOF
