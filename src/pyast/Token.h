//===- pyast/Token.h - Python token definitions ------------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds and the Token value type produced by the Python lexer.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYAST_TOKEN_H
#define SELDON_PYAST_TOKEN_H

#include <cstdint>
#include <string>

namespace seldon {
namespace pyast {

/// Kinds of tokens in the supported Python subset.
enum class TokenKind : uint8_t {
  // Structure.
  EndOfFile,
  Newline,
  Indent,
  Dedent,

  // Literals and identifiers.
  Name,
  Number,
  String,

  // Keywords.
  KwAnd,
  KwAs,
  KwAssert,
  KwBreak,
  KwClass,
  KwContinue,
  KwDef,
  KwDel,
  KwElif,
  KwElse,
  KwExcept,
  KwFalse,
  KwFinally,
  KwFor,
  KwFrom,
  KwGlobal,
  KwIf,
  KwImport,
  KwIn,
  KwIs,
  KwLambda,
  KwNone,
  KwNonlocal,
  KwNot,
  KwOr,
  KwPass,
  KwRaise,
  KwReturn,
  KwTrue,
  KwTry,
  KwWhile,
  KwWith,
  KwYield,

  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Colon,
  Semicolon,
  Dot,
  Arrow,      // ->
  At,         // @ (decorator or matmul)
  Equal,      // =
  Walrus,     // :=
  Plus,
  Minus,
  Star,
  DoubleStar,
  Slash,
  DoubleSlash,
  Percent,
  Amp,
  Pipe,
  Caret,
  Tilde,
  LShift,
  RShift,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  PlusEq,
  MinusEq,
  StarEq,
  SlashEq,
  DoubleSlashEq,
  PercentEq,
  DoubleStarEq,
  AmpEq,
  PipeEq,
  CaretEq,
  LShiftEq,
  RShiftEq,
  AtEq,

  // Lexer error (bad character, unterminated string, inconsistent dedent).
  Error,
};

/// Returns a stable human-readable name for \p Kind (used in diagnostics
/// and the lexer tests).
const char *tokenKindName(TokenKind Kind);

/// If \p Ident is a Python keyword in our subset, returns its TokenKind;
/// otherwise returns TokenKind::Name.
TokenKind classifyIdentifier(const std::string &Ident);

/// A single lexed token. \c Text carries the identifier spelling, the
/// decoded string-literal contents, or the number spelling; it is empty for
/// punctuation.
struct Token {
  TokenKind Kind = TokenKind::EndOfFile;
  std::string Text;
  uint32_t Line = 0; ///< 1-based line number.
  uint32_t Col = 0;  ///< 1-based column number.
  /// True for string literals lexed from an f-string prefix; the parser
  /// then parses `{...}` interpolations out of Text.
  bool IsFString = false;

  bool is(TokenKind K) const { return Kind == K; }
  bool isNot(TokenKind K) const { return Kind != K; }
};

} // namespace pyast
} // namespace seldon

#endif // SELDON_PYAST_TOKEN_H
