file(REMOVE_RECURSE
  "CMakeFiles/seldon.dir/seldon_cli.cpp.o"
  "CMakeFiles/seldon.dir/seldon_cli.cpp.o.d"
  "seldon"
  "seldon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
