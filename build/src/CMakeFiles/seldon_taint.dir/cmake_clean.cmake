file(REMOVE_RECURSE
  "CMakeFiles/seldon_taint.dir/taint/JsonExport.cpp.o"
  "CMakeFiles/seldon_taint.dir/taint/JsonExport.cpp.o.d"
  "CMakeFiles/seldon_taint.dir/taint/ReportRenderer.cpp.o"
  "CMakeFiles/seldon_taint.dir/taint/ReportRenderer.cpp.o.d"
  "CMakeFiles/seldon_taint.dir/taint/TaintAnalyzer.cpp.o"
  "CMakeFiles/seldon_taint.dir/taint/TaintAnalyzer.cpp.o.d"
  "libseldon_taint.a"
  "libseldon_taint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_taint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
