//===- bench/table2_merlin_scalability.cpp - Paper Tab. 2 -----------------===//
//
// Regenerates Table 2: Merlin's scalability on a small application ("Flask
// API", 2,128 lines in the paper) versus a larger one ("Flask-Admin",
// 23,103 lines), for collapsed and uncollapsed propagation graphs. The
// paper reports minutes on the small app and a >10h timeout on the large
// one; we scale the inference budget down (SELDON_MERLIN_TIMEOUT seconds,
// default 30) and expect the same shape: factor counts explode with
// application size and inference exceeds the budget on the large app while
// Seldon handles it in a fraction of a second.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "infer/Pipeline.h"
#include "merlin/MerlinPipeline.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::merlin;

namespace {

size_t fileCount(const pysem::Project &Proj) { return Proj.modules().size(); }

} // namespace

int main() {
  double Timeout = eval::envInt("SELDON_MERLIN_TIMEOUT", 30);
  corpus::ApiUniverse Universe = corpus::ApiUniverse::standard();
  spec::SeedSpec Seed = Universe.seedSpec();

  // Small ~ "Flask API"; large ~ "Flask-Admin" (10x the files, denser).
  pysem::Project Small =
      corpus::generateSingleProject(Universe, 11, 3, 6, "flask_api_like");
  pysem::Project Large = corpus::generateSingleProject(
      Universe, 12, eval::envInt("SELDON_MERLIN_LARGE_FILES", 100), 10,
      "flask_admin_like");

  std::cout << "=== Table 2: Statistics on specification learning with "
               "Merlin ===\n\n";
  TablePrinter Table({"Repository", "Files", "Graph type",
                      "Candidates (src/san/sink)", "Factors",
                      "Inference Time"});

  struct Config {
    const pysem::Project *Proj;
    const char *Name;
    bool Collapsed;
  };
  const Config Configs[] = {
      {&Small, "Flask-API-like", true},
      {&Small, "Flask-API-like", false},
      {&Large, "Flask-Admin-like", true},
      {&Large, "Flask-Admin-like", false},
  };

  double SeldonLargeSeconds = 0.0;
  for (const Config &C : Configs) {
    propgraph::PropagationGraph Graph = propgraph::buildProjectGraph(*C.Proj);
    MerlinOptions Opts;
    Opts.Collapsed = C.Collapsed;
    Opts.Bp.TimeoutSeconds = Timeout;
    Opts.Bp.MaxIterations = 1 << 28; // The budget, not the iteration count,
                                     // terminates long runs.
    MerlinResult R = runMerlin(Graph, Seed, Opts);
    Table.addRow({C.Name, std::to_string(fileCount(*C.Proj)),
                  C.Collapsed ? "Collapsed" : "Uncollapsed",
                  formatString("%zu/%zu/%zu", R.NumCandidates[0],
                               R.NumCandidates[1], R.NumCandidates[2]),
                  std::to_string(R.NumFactors),
                  R.TimedOut ? formatString("> %.0fs (timeout)", Timeout)
                             : formatString("%.2fs", R.Seconds)});
  }
  Table.print(std::cout);

  // Seldon on the large application, for the "< 20 seconds" contrast the
  // paper draws (§7.4).
  solver::CompileStats SolverStats;
  {
    infer::PipelineOptions Opts = eval::standardPipelineOptions();
    std::vector<pysem::Project> One;
    One.push_back(std::move(Large));
    infer::Session S(Opts);
    S.addProjects(One);
    S.generateConstraints(Seed);
    infer::PipelineResult R = S.solve();
    SeldonLargeSeconds = R.inferenceSeconds();
    SolverStats = R.SolverStats;
  }
  std::cout << formatString(
      "\nSeldon on the large application: %.2fs "
      "(paper: < 20s on Flask-Admin while Merlin needed > 10h).\n",
      SeldonLargeSeconds);
  std::cout << formatString(
      "Compiled solver: %zu constraints -> %zu rows (dedup %.2fx), "
      "%zu non-zeros.\n",
      SolverStats.RowsBefore, SolverStats.RowsAfter,
      SolverStats.dedupRatio(), SolverStats.NonZeros);
  std::cout << "Paper reference: Flask API 2min/3min; Flask-Admin > 10h "
               "(both graph types).\n";
  return 0;
}
