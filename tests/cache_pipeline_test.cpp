//===- tests/cache_pipeline_test.cpp - Differential cache runs ------------===//
//
// The cache's headline guarantee, tested differentially: cold, warm, and
// mixed hit/miss pipeline runs must produce learned specifications
// byte-identical to an uncached run, serially and in parallel. Stale
// entries (project source changed) must miss and rebuild, and an unusable
// cache directory must degrade to correct all-miss operation.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "infer/Pipeline.h"
#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace seldon;

namespace fs = std::filesystem;

namespace {

infer::PipelineOptions testOptions(unsigned Jobs) {
  infer::PipelineOptions Opts;
  Opts.Solve.MaxIterations = 200;
  Opts.Jobs = Jobs;
  return Opts;
}

/// Runs the staged pipeline over \p Data, optionally with a cache at
/// \p CacheDir, and returns the result.
infer::PipelineResult runOnce(const corpus::Corpus &Data, unsigned Jobs,
                              const std::string &CacheDir = "") {
  infer::Session S(testOptions(Jobs));
  if (!CacheDir.empty())
    S.enableCache(CacheDir);
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  return S.solve();
}

std::string specOf(const infer::PipelineResult &R) {
  return spec::writeLearnedSpec(R.Learned);
}

size_t countEntries(const std::string &Dir) {
  size_t N = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    N += E.is_regular_file();
  return N;
}

class CachePipelineTest : public ::testing::TestWithParam<unsigned> {};

/// Cold -> warm -> mixed, all byte-identical to the uncached reference.
TEST_P(CachePipelineTest, ColdWarmMixedAreByteIdentical) {
  const unsigned Jobs = GetParam();
  corpus::Corpus Data = testutil::makeCorpus(2024, /*NumProjects=*/6);
  std::string Reference = specOf(runOnce(Data, Jobs));

  std::string Dir = testutil::makeScratchDir("cache-diff");

  infer::PipelineResult Cold = runOnce(Data, Jobs, Dir);
  EXPECT_TRUE(Cold.UsedCache);
  EXPECT_EQ(Cold.Cache.Hits, 0u);
  EXPECT_EQ(Cold.Cache.Misses, Data.Projects.size());
  EXPECT_EQ(Cold.Cache.Stores, Data.Projects.size());
  EXPECT_GT(Cold.Cache.BytesWritten, 0u);
  EXPECT_EQ(specOf(Cold), Reference);
  EXPECT_EQ(countEntries(Dir), Data.Projects.size());

  infer::PipelineResult Warm = runOnce(Data, Jobs, Dir);
  EXPECT_EQ(Warm.Cache.Hits, Data.Projects.size());
  EXPECT_EQ(Warm.Cache.Misses, 0u);
  EXPECT_GT(Warm.Cache.BytesRead, 0u);
  EXPECT_EQ(specOf(Warm), Reference);

  // Mixed: delete half the entries; those projects rebuild, the rest hit.
  size_t Deleted = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (Deleted * 2 >= Data.Projects.size())
      break;
    fs::remove(E.path());
    ++Deleted;
  }
  ASSERT_GT(Deleted, 0u);
  infer::PipelineResult Mixed = runOnce(Data, Jobs, Dir);
  EXPECT_EQ(Mixed.Cache.Hits, Data.Projects.size() - Deleted);
  EXPECT_EQ(Mixed.Cache.Misses, Deleted);
  EXPECT_EQ(specOf(Mixed), Reference);
  EXPECT_EQ(countEntries(Dir), Data.Projects.size());

  // The intermediate artifacts match too, not just the rendered spec.
  EXPECT_EQ(Mixed.Graph.numEvents(), Cold.Graph.numEvents());
  EXPECT_EQ(Mixed.Graph.numEdges(), Cold.Graph.numEdges());
  EXPECT_EQ(Mixed.System.Constraints.size(), Cold.System.Constraints.size());
  fs::remove_all(Dir);
}

/// Serial and parallel warm runs agree with each other bit-for-bit.
TEST_P(CachePipelineTest, WarmRunMatchesSerialWarmRun) {
  const unsigned Jobs = GetParam();
  corpus::Corpus Data = testutil::makeCorpus(3077, /*NumProjects=*/6);
  std::string Dir = testutil::makeScratchDir("cache-jobs");
  runOnce(Data, Jobs, Dir); // populate

  infer::PipelineResult Serial = runOnce(Data, 1, Dir);
  infer::PipelineResult Parallel = runOnce(Data, Jobs, Dir);
  EXPECT_EQ(Serial.Cache.Hits, Data.Projects.size());
  EXPECT_EQ(Parallel.Cache.Hits, Data.Projects.size());
  EXPECT_EQ(specOf(Serial), specOf(Parallel));
  ASSERT_EQ(Serial.Solve.X.size(), Parallel.Solve.X.size());
  for (size_t I = 0; I < Serial.Solve.X.size(); ++I)
    EXPECT_DOUBLE_EQ(Serial.Solve.X[I], Parallel.Solve.X[I]) << "var " << I;
  fs::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(Jobs, CachePipelineTest, ::testing::Values(1u, 4u));

/// Touching a project's source changes its cache key: the stale entry no
/// longer matches, the project rebuilds, and the result reflects the new
/// source — never the cached stale graph.
TEST(CacheStalenessTest, TouchedProjectRebuilds) {
  corpus::Corpus Data = testutil::makeCorpus(808, /*NumProjects=*/5);
  std::string Dir = testutil::makeScratchDir("cache-stale");
  infer::PipelineResult Cold = runOnce(Data, 2, Dir);
  EXPECT_EQ(Cold.Cache.Misses, Data.Projects.size());

  // "Edit" one project by adding a module with a fresh taint flow.
  Data.Projects.front().addModule(
      "app/extra.py", "import flask\n"
                      "def extra():\n"
                      "    v = flask.request.args.get('x')\n"
                      "    flask.render_template('t.html', value=v)\n");

  infer::PipelineResult Warm = runOnce(Data, 2, Dir);
  EXPECT_EQ(Warm.Cache.Hits, Data.Projects.size() - 1);
  EXPECT_EQ(Warm.Cache.Misses, 1u);
  EXPECT_EQ(Warm.Cache.Evictions, 0u) << "stale key must miss, not evict";
  EXPECT_GT(Warm.Graph.numEvents(), Cold.Graph.numEvents())
      << "cached run ignored the edited source";

  // The rebuilt result must equal an uncached run over the edited corpus.
  std::string Fresh = specOf(runOnce(Data, 2));
  EXPECT_EQ(specOf(Warm), Fresh);

  // The stale entry is orphaned, not reused: a second warm run is all hits
  // again under the new key.
  infer::PipelineResult Again = runOnce(Data, 2, Dir);
  EXPECT_EQ(Again.Cache.Hits, Data.Projects.size());
  EXPECT_EQ(specOf(Again), Fresh);
  fs::remove_all(Dir);
}

/// An unusable cache directory (the path names a file) degrades to correct
/// all-miss operation instead of failing the pipeline.
TEST(CacheDegradedTest, UnusableDirectoryStillProducesCorrectSpecs) {
  corpus::Corpus Data = testutil::makeCorpus(606, /*NumProjects=*/4);
  std::string Reference = specOf(runOnce(Data, 2));

  std::string Bogus = testutil::makeScratchDir("cache-degraded") + "/file";
  {
    std::ofstream Out(Bogus);
    Out << "not a directory\n";
  }
  infer::Session S(testOptions(2));
  S.enableCache(Bogus);
  ASSERT_NE(S.graphCache(), nullptr);
  EXPECT_FALSE(S.graphCache()->valid());
  EXPECT_FALSE(S.graphCache()->error().empty());
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  infer::PipelineResult R = S.solve();
  EXPECT_EQ(R.Cache.Hits, 0u);
  EXPECT_EQ(R.Cache.Misses, Data.Projects.size());
  EXPECT_EQ(specOf(R), Reference);
}

/// The key is derived from content + build options, not project identity:
/// renaming a project still hits; changing a build option misses.
TEST(CacheKeyTest, KeyTracksContentAndOptionsNotIdentity) {
  corpus::Corpus Data = testutil::makeCorpus(909, /*NumProjects=*/3);
  const pysem::Project &P = Data.Projects.front();

  propgraph::BuildOptions Build;
  cache::CacheKey Base = cache::projectCacheKey(P, Build);

  pysem::Project Renamed("totally-different-name");
  for (const pysem::ModuleInfo &M : P.modules())
    Renamed.addModule(M.Path, M.Source);
  EXPECT_EQ(cache::projectCacheKey(Renamed, Build).Hash, Base.Hash);

  propgraph::BuildOptions Deep;
  Deep.MaxInlineDepth = Build.MaxInlineDepth + 1;
  EXPECT_NE(cache::projectCacheKey(P, Deep).Hash, Base.Hash);

  propgraph::BuildOptions NoPts;
  NoPts.UsePointsTo = !Build.UsePointsTo;
  EXPECT_NE(cache::projectCacheKey(P, NoPts).Hash, Base.Hash);

  // Distinct projects in the corpus get distinct keys.
  cache::CacheKey Other =
      cache::projectCacheKey(Data.Projects[1], Build);
  EXPECT_NE(Other.Hash, Base.Hash);
}

} // namespace
