//===- support/StrUtil.h - Small string helpers ------------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String helpers shared across the project: splitting, joining, trimming,
/// and a printf-style formatter returning std::string.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_STRUTIL_H
#define SELDON_SUPPORT_STRUTIL_H

#include <string>
#include <string_view>
#include <vector>

namespace seldon {

/// Splits \p Text on \p Sep. Adjacent separators yield empty elements;
/// splitting the empty string yields one empty element.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// printf-style formatting into a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Escapes \p Text for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string jsonEscape(std::string_view Text);

} // namespace seldon

#endif // SELDON_SUPPORT_STRUTIL_H
