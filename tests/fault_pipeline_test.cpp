//===- tests/fault_pipeline_test.cpp - Fault-tolerant runtime -------------===//
//
// The contract of the fault-tolerant pipeline runtime: an injected failure
// in any registered fault point quarantines exactly the faulted work (or
// recovers from it), the run over the survivors is byte-identical to a run
// that never contained the faulted projects — at any Jobs value — and
// every deviation is recorded in RunHealth. Faults are armed through the
// deterministic support/FaultInjection.h registry, so these tests behave
// identically under TSan and at any thread count.
//
//===----------------------------------------------------------------------===//

#include "infer/Pipeline.h"
#include "spec/SpecIO.h"
#include "support/FaultInjection.h"
#include "TestCorpus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

using namespace seldon;
using namespace seldon::infer;
using seldon::testutil::addProjectsExcept;
using seldon::testutil::makeCorpus;
using seldon::testutil::makeScratchDir;

namespace {

/// Every test disarms the process-global fault registry on both sides, so
/// suites sharing this binary never contaminate each other.
class FaultPipelineTest : public ::testing::Test {
protected:
  void SetUp() override { fault::reset(); }
  void TearDown() override {
    fault::reset();
    ::unsetenv("SELDON_FAULT");
  }
};

PipelineOptions testOptions(unsigned Jobs) {
  PipelineOptions Opts;
  Opts.Solve.MaxIterations = 200;
  Opts.Jobs = Jobs;
  return Opts;
}

/// Runs the staged pipeline over all of \p Data with \p Opts.
PipelineResult runFull(const corpus::Corpus &Data, PipelineOptions Opts) {
  Session S(std::move(Opts));
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  return S.solve();
}

/// Runs the pipeline over \p Data minus the projects in \p Skip — the
/// reference a quarantined run must match byte for byte.
PipelineResult runSurvivors(const corpus::Corpus &Data, unsigned Jobs,
                            std::initializer_list<size_t> Skip) {
  Session S(testOptions(Jobs));
  addProjectsExcept(S, Data, Skip);
  S.generateConstraints(Data.Seed);
  return S.solve();
}

std::string specBytes(const PipelineResult &R) {
  return spec::writeLearnedSpec(R.Learned);
}

//===----------------------------------------------------------------------===//
// Fault registry
//===----------------------------------------------------------------------===//

TEST_F(FaultPipelineTest, SpecParsingAcceptsAllPointNames) {
  EXPECT_FALSE(fault::enabled());
  EXPECT_TRUE(fault::configure("parse:0,graph-build:1,cache-read:2,"
                               "cache-write:3,constraint-gen:4,"
                               "solver-step:*"));
  EXPECT_TRUE(fault::enabled());
  fault::reset();
  EXPECT_FALSE(fault::enabled());
}

TEST_F(FaultPipelineTest, SpecParsingRejectsMalformedSpecs) {
  std::string Error;
  EXPECT_FALSE(fault::configure("bogus-point:0", &Error));
  EXPECT_NE(Error.find("bogus-point"), std::string::npos);
  EXPECT_FALSE(fault::configure("parse", &Error));
  EXPECT_FALSE(fault::configure("parse:abc", &Error));
  EXPECT_FALSE(fault::configure("parse:", &Error));
  // A failed configure leaves nothing armed.
  EXPECT_FALSE(fault::enabled());
}

TEST_F(FaultPipelineTest, KeyedArmsAreOneShotStarArmsPersist) {
  ASSERT_TRUE(fault::configure("parse:3,solver-step:*"));
  EXPECT_FALSE(fault::shouldTrip(fault::Point::Parse, 2));
  EXPECT_TRUE(fault::shouldTrip(fault::Point::Parse, 3));
  EXPECT_FALSE(fault::shouldTrip(fault::Point::Parse, 3))
      << "a keyed arm is consumed by its first trip";
  EXPECT_TRUE(fault::shouldTrip(fault::Point::SolverStep, 0));
  EXPECT_TRUE(fault::shouldTrip(fault::Point::SolverStep, 9))
      << "a * arm never wears out";
  EXPECT_EQ(fault::tripCount(fault::Point::Parse), 1u);
  EXPECT_EQ(fault::tripCount(fault::Point::SolverStep), 2u);
  EXPECT_EQ(fault::totalTrips(), 3u);
}

TEST_F(FaultPipelineTest, ConfigureFromEnvReadsSeldonFault) {
  ::setenv("SELDON_FAULT", "graph-build:7", 1);
  ASSERT_TRUE(fault::configureFromEnv());
  EXPECT_TRUE(fault::enabled());
  EXPECT_TRUE(fault::shouldTrip(fault::Point::GraphBuild, 7));

  ::setenv("SELDON_FAULT", "not a spec", 1);
  std::string Error;
  EXPECT_FALSE(fault::configureFromEnv(&Error));
  EXPECT_FALSE(Error.empty());

  ::unsetenv("SELDON_FAULT");
  EXPECT_TRUE(fault::configureFromEnv());
}

TEST_F(FaultPipelineTest, MaybeThrowRaisesInjectedFault) {
  ASSERT_TRUE(fault::configure("cache-read:4"));
  EXPECT_NO_THROW(fault::maybeThrow(fault::Point::CacheRead, 3));
  try {
    fault::maybeThrow(fault::Point::CacheRead, 4);
    FAIL() << "armed point must throw";
  } catch (const fault::InjectedFault &E) {
    EXPECT_NE(std::string(E.what()).find("cache-read"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Project quarantine
//===----------------------------------------------------------------------===//

TEST_F(FaultPipelineTest, QuarantinedRunMatchesSurvivorRunAtAnyJobs) {
  corpus::Corpus Data = makeCorpus(11);
  std::string Survivors = specBytes(runSurvivors(Data, 1, {2, 5}));

  for (unsigned Jobs : {1u, 4u}) {
    ASSERT_TRUE(fault::configure("parse:2,parse:5"));
    PipelineResult R = runFull(Data, testOptions(Jobs));
    fault::reset();

    ASSERT_EQ(R.Health.Quarantined.size(), 2u) << "Jobs=" << Jobs;
    EXPECT_EQ(R.Health.Quarantined[0].Index, 2u);
    EXPECT_EQ(R.Health.Quarantined[0].Name, Data.Projects[2].name());
    EXPECT_EQ(R.Health.Quarantined[1].Index, 5u);
    EXPECT_NE(R.Health.Quarantined[0].Reason.find("injected fault"),
              std::string::npos);
    EXPECT_EQ(R.Health.status(), RunStatus::Degraded);
    EXPECT_EQ(specBytes(R), Survivors)
        << "Jobs=" << Jobs
        << ": quarantined run must be byte-identical to the survivor run";
  }
}

TEST_F(FaultPipelineTest, GraphBuildFaultQuarantinesToo) {
  corpus::Corpus Data = makeCorpus(11);
  ASSERT_TRUE(fault::configure("graph-build:3"));
  PipelineResult R = runFull(Data, testOptions(2));
  fault::reset();

  ASSERT_EQ(R.Health.Quarantined.size(), 1u);
  EXPECT_EQ(R.Health.Quarantined[0].Index, 3u);
  EXPECT_EQ(specBytes(R), specBytes(runSurvivors(Data, 1, {3})));
}

TEST_F(FaultPipelineTest, StrictModeRethrowsLowestIndexFailure) {
  corpus::Corpus Data = makeCorpus(11);
  for (unsigned Jobs : {1u, 4u}) {
    ASSERT_TRUE(fault::configure("parse:5,parse:2"));
    PipelineOptions Opts = testOptions(Jobs);
    Opts.Strict = true;
    Session S(Opts);
    S.addProjects(Data.Projects);
    try {
      S.buildGraph();
      FAIL() << "strict mode must rethrow (Jobs=" << Jobs << ")";
    } catch (const fault::InjectedFault &E) {
      // Project 2 fails first in task order; strict surfaces the lowest
      // index whatever subset of arms tripped before the short-circuit.
      EXPECT_NE(std::string(E.what()).find("#2"), std::string::npos)
          << "Jobs=" << Jobs << ": " << E.what();
    }
    fault::reset();
  }
}

//===----------------------------------------------------------------------===//
// Cache faults are transparent
//===----------------------------------------------------------------------===//

TEST_F(FaultPipelineTest, CacheReadFaultDegradesToRebuild) {
  corpus::Corpus Data = makeCorpus(13);
  std::string Dir = makeScratchDir("fault-cache");

  PipelineOptions Warm = testOptions(2);
  Session SWarm(Warm);
  SWarm.enableCache(Dir);
  SWarm.addProjects(Data.Projects);
  SWarm.generateConstraints(Data.Seed);
  std::string Clean = specBytes(SWarm.solve());

  ASSERT_TRUE(fault::configure("cache-read:*"));
  Session S(testOptions(2));
  S.enableCache(Dir);
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  PipelineResult R = S.solve();
  fault::reset();

  EXPECT_EQ(specBytes(R), Clean) << "the cache must stay transparent";
  EXPECT_EQ(R.Health.Quarantined.size(), 0u);
  EXPECT_GE(R.Health.CacheIncidents.size(), Data.Projects.size());
  EXPECT_EQ(R.Health.status(), RunStatus::Clean)
      << "degraded cache reads do not perturb results";
}

TEST_F(FaultPipelineTest, CacheWriteFaultSkipsWriteBack) {
  corpus::Corpus Data = makeCorpus(13);
  std::string Clean = specBytes(runFull(Data, testOptions(2)));

  ASSERT_TRUE(fault::configure("cache-write:*"));
  Session S(testOptions(2));
  S.enableCache(makeScratchDir("fault-cache-write"));
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  PipelineResult R = S.solve();
  fault::reset();

  EXPECT_EQ(specBytes(R), Clean);
  EXPECT_GE(R.Health.CacheIncidents.size(), Data.Projects.size());
  EXPECT_EQ(R.Health.status(), RunStatus::Clean);
  EXPECT_EQ(R.Cache.Stores, 0u) << "every write-back was skipped";
}

//===----------------------------------------------------------------------===//
// Constraint generation is all-or-nothing
//===----------------------------------------------------------------------===//

TEST_F(FaultPipelineTest, ConstraintGenFaultPropagates) {
  corpus::Corpus Data = makeCorpus(11);
  ASSERT_TRUE(fault::configure("constraint-gen:0"));
  Session S(testOptions(1));
  S.addProjects(Data.Projects);
  EXPECT_THROW(S.generateConstraints(Data.Seed), fault::InjectedFault);
}

//===----------------------------------------------------------------------===//
// Solver numeric guards
//===----------------------------------------------------------------------===//

TEST_F(FaultPipelineTest, SolverRecoversFromPoisonedIteration) {
  corpus::Corpus Data = makeCorpus(11);
  ASSERT_TRUE(fault::configure("solver-step:0"));
  PipelineResult R = runFull(Data, testOptions(1));
  fault::reset();

  EXPECT_GE(R.Solve.NonFiniteSteps, 1);
  EXPECT_GE(R.Solve.Recoveries, 1);
  EXPECT_FALSE(R.Solve.FellBack)
      << "a one-shot poison must recover, not fall back";
  for (double X : R.Solve.X)
    EXPECT_TRUE(std::isfinite(X));
  EXPECT_TRUE(std::isfinite(R.Solve.FinalObjective));

  EXPECT_EQ(R.Health.SolverRecoveries, R.Solve.Recoveries);
  EXPECT_EQ(R.Health.SolverNonFiniteSteps, R.Solve.NonFiniteSteps);
  EXPECT_EQ(R.Health.status(), RunStatus::Degraded);
}

TEST_F(FaultPipelineTest, SolverFallsBackWhenEveryStepIsPoisoned) {
  corpus::Corpus Data = makeCorpus(11);
  ASSERT_TRUE(fault::configure("solver-step:*"));
  PipelineResult R = runFull(Data, testOptions(1));
  fault::reset();

  EXPECT_TRUE(R.Solve.FellBack);
  EXPECT_EQ(R.Solve.Recoveries, PipelineOptions().Solve.MaxRecoveries)
      << "the ladder is bounded";
  for (double X : R.Solve.X)
    EXPECT_TRUE(std::isfinite(X)) << "fallback returns a finite iterate";
  EXPECT_TRUE(std::isfinite(R.Solve.FinalObjective));
  EXPECT_TRUE(R.Health.SolverFellBack);
  EXPECT_EQ(R.Health.status(), RunStatus::Degraded);
}

TEST_F(FaultPipelineTest, CleanRunUnaffectedByGuards) {
  corpus::Corpus Data = makeCorpus(11);
  PipelineResult R = runFull(Data, testOptions(1));
  EXPECT_EQ(R.Solve.NonFiniteSteps, 0);
  EXPECT_EQ(R.Solve.Recoveries, 0);
  EXPECT_FALSE(R.Solve.FellBack);
  EXPECT_FALSE(R.Solve.DeadlineExpired);
  EXPECT_EQ(R.Health.status(), RunStatus::Clean);
}

//===----------------------------------------------------------------------===//
// Deadlines
//===----------------------------------------------------------------------===//

TEST_F(FaultPipelineTest, SolverBudgetStopsTheLoopEarly) {
  corpus::Corpus Data = makeCorpus(11);
  PipelineOptions Opts = testOptions(1);
  Opts.Solve.BudgetSeconds = 1e-9;
  PipelineResult R = runFull(Data, Opts);

  EXPECT_TRUE(R.Solve.DeadlineExpired);
  EXPECT_LT(R.Solve.Iterations, Opts.Solve.MaxIterations);
  for (double X : R.Solve.X)
    EXPECT_TRUE(std::isfinite(X));
  EXPECT_TRUE(R.Health.DeadlineExpired);
  EXPECT_EQ(R.Health.DeadlineStage, "solve");
  EXPECT_EQ(R.Health.status(), RunStatus::Degraded);
}

TEST_F(FaultPipelineTest, RunDeadlineQuarantinesUnbuiltProjects) {
  corpus::Corpus Data = makeCorpus(11);
  PipelineOptions Opts = testOptions(2);
  Opts.DeadlineSeconds = 1e-9; // Expired before the first project builds.
  Session S(Opts);
  S.addProjects(Data.Projects);
  S.buildGraph();

  const RunHealth &H = S.health();
  EXPECT_EQ(H.Quarantined.size(), Data.Projects.size());
  EXPECT_TRUE(H.DeadlineExpired);
  EXPECT_EQ(H.DeadlineStage, "parse");
  for (const QuarantinedProject &Q : H.Quarantined)
    EXPECT_NE(Q.Reason.find("deadline"), std::string::npos);
  EXPECT_EQ(S.graph().events().size(), 0u);
}

//===----------------------------------------------------------------------===//
// Full sweep: every registered point, no crash, no hang
//===----------------------------------------------------------------------===//

TEST_F(FaultPipelineTest, SweepEveryPointCompletesWithSurvivorIdentity) {
  corpus::Corpus Data = makeCorpus(17);
  std::string AllClean = specBytes(runFull(Data, testOptions(1)));
  std::string Without1 = specBytes(runSurvivors(Data, 1, {1}));

  struct Case {
    const char *Spec;
    const char *Expect; // "survivor", "clean", or "throws".
  } Cases[] = {
      {"parse:1", "survivor"},       {"graph-build:1", "survivor"},
      {"cache-read:1", "clean"},     {"cache-write:1", "clean"},
      {"constraint-gen:0", "throws"}, {"solver-step:0", "recovers"},
  };
  for (const Case &C : Cases) {
    for (unsigned Jobs : {1u, 4u}) {
      SCOPED_TRACE(std::string(C.Spec) + " Jobs=" + std::to_string(Jobs));
      ASSERT_TRUE(fault::configure(C.Spec));
      Session S(testOptions(Jobs));
      if (std::string(C.Spec).rfind("cache-", 0) == 0)
        S.enableCache(makeScratchDir("fault-sweep"));
      S.addProjects(Data.Projects);
      if (std::string(C.Expect) == "throws") {
        EXPECT_THROW(S.generateConstraints(Data.Seed),
                     fault::InjectedFault);
        fault::reset();
        continue;
      }
      S.generateConstraints(Data.Seed);
      PipelineResult R = S.solve();
      fault::reset();
      if (std::string(C.Expect) == "survivor")
        EXPECT_EQ(specBytes(R), Without1);
      else if (std::string(C.Expect) == "clean")
        EXPECT_EQ(specBytes(R), AllClean);
      else
        EXPECT_GE(R.Solve.Recoveries, 1);
    }
  }
}

} // namespace
