//===- active/Uncertainty.h - Uncertainty-ranked candidates ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The query-selection half of the active-learning loop: rank every
/// unpinned, not-yet-queried (representation, role) score variable by how
/// close its learned score sits to the report threshold — the variables
/// whose role decision the next oracle answer is most likely to flip.
/// Ties break deterministically by representation name, then role, so the
/// proposed query order is identical across runs, job counts, and solver
/// backends (which are themselves byte-identical).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_ACTIVE_UNCERTAINTY_H
#define SELDON_ACTIVE_UNCERTAINTY_H

#include "constraints/ConstraintSystem.h"

#include <cstdint>
#include <string>
#include <vector>

namespace seldon {
namespace active {

/// One proposed query.
struct Candidate {
  constraints::VarId Var = 0;
  std::string Rep;
  propgraph::Role R = propgraph::Role::Source;
  double Score = 0.0;
  /// |Score - Threshold|; smaller = more uncertain.
  double Uncertainty = 0.0;
};

/// Ranks the top \p K most uncertain candidates of the solved assignment
/// \p X: skips pinned variables (seeds and previously-pinned oracle
/// answers) and every variable marked in \p Exclude (indexed by VarId —
/// the already-queried set), keeps scores within \p Band of \p Threshold
/// (1.0 disables the band), and orders by (|score-threshold|, rep name,
/// role).
std::vector<Candidate>
rankUncertain(const constraints::ConstraintSystem &Sys,
              const propgraph::RepTable &Reps, const std::vector<double> &X,
              double Threshold, size_t K, double Band,
              const std::vector<uint8_t> &Exclude);

} // namespace active
} // namespace seldon

#endif // SELDON_ACTIVE_UNCERTAINTY_H
