
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pyast/Ast.cpp" "src/CMakeFiles/seldon_pyast.dir/pyast/Ast.cpp.o" "gcc" "src/CMakeFiles/seldon_pyast.dir/pyast/Ast.cpp.o.d"
  "/root/repo/src/pyast/AstPrinter.cpp" "src/CMakeFiles/seldon_pyast.dir/pyast/AstPrinter.cpp.o" "gcc" "src/CMakeFiles/seldon_pyast.dir/pyast/AstPrinter.cpp.o.d"
  "/root/repo/src/pyast/Lexer.cpp" "src/CMakeFiles/seldon_pyast.dir/pyast/Lexer.cpp.o" "gcc" "src/CMakeFiles/seldon_pyast.dir/pyast/Lexer.cpp.o.d"
  "/root/repo/src/pyast/Parser.cpp" "src/CMakeFiles/seldon_pyast.dir/pyast/Parser.cpp.o" "gcc" "src/CMakeFiles/seldon_pyast.dir/pyast/Parser.cpp.o.d"
  "/root/repo/src/pyast/Token.cpp" "src/CMakeFiles/seldon_pyast.dir/pyast/Token.cpp.o" "gcc" "src/CMakeFiles/seldon_pyast.dir/pyast/Token.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seldon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
