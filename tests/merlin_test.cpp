//===- tests/merlin_test.cpp - Tests for the Merlin baseline --------------===//

#include "merlin/GibbsSampler.h"
#include "merlin/LoopyBeliefPropagation.h"
#include "merlin/MerlinPipeline.h"
#include "propgraph/GraphBuilder.h"
#include "pysem/Project.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::merlin;
using namespace seldon::propgraph;

namespace {

//===----------------------------------------------------------------------===//
// Factor graph + exact sanity cases for BP and Gibbs
//===----------------------------------------------------------------------===//

TEST(FactorGraphTest, BuildAndIndex) {
  FactorGraph G;
  VarIdx A = G.addVar("a"), B = G.addVar("b");
  G.addUnary(A, 0.3, 0.7);
  G.addFactor(Factor{{A, B}, {1.0, 1.0, 1.0, 0.1}});
  EXPECT_EQ(G.numVars(), 2u);
  EXPECT_EQ(G.numFactors(), 2u);
  const auto &Index = G.varToFactors();
  EXPECT_EQ(Index[A].size(), 2u);
  EXPECT_EQ(Index[B].size(), 1u);
}

TEST(LoopyBpTest, SingleUnaryMarginal) {
  FactorGraph G;
  VarIdx A = G.addVar("a");
  G.addUnary(A, 0.25, 0.75);
  LoopyBeliefPropagation Bp;
  InferenceResult R = Bp.run(G);
  EXPECT_TRUE(R.Converged);
  EXPECT_NEAR(R.Marginals[A], 0.75, 1e-6);
}

TEST(LoopyBpTest, ExactOnTreePair) {
  // p(a, b) ∝ prior(a) * f(a, b); marginal of b computable by hand.
  // prior(a) = [0.5, 0.5]; f penalizes (a=1, b=1) with 0.1:
  // p(b=1) = (0.5*1 + 0.5*0.1) / (0.5*1 + 0.5*1 + 0.5*1 + 0.5*0.1)
  FactorGraph G;
  VarIdx A = G.addVar("a"), B = G.addVar("b");
  G.addUnary(A, 0.5, 0.5);
  G.addFactor(Factor{{A, B}, {1.0, 1.0, 1.0, 0.1}});
  LoopyBeliefPropagation Bp;
  InferenceResult R = Bp.run(G);
  double Z = 0.5 + 0.5 + 0.5 + 0.5 * 0.1;
  double PB1 = (0.5 + 0.5 * 0.1) / Z;
  EXPECT_NEAR(R.Marginals[B], PB1, 1e-4);
}

TEST(LoopyBpTest, HardEvidencePropagates) {
  // a pinned to 1; f strongly penalizes (a=1, b=1) -> b must be ~0.
  FactorGraph G;
  VarIdx A = G.addVar("a"), B = G.addVar("b");
  G.addUnary(A, 0.0, 1.0);
  G.addFactor(Factor{{A, B}, {1.0, 1.0, 1.0, 0.001}});
  LoopyBeliefPropagation Bp;
  InferenceResult R = Bp.run(G);
  EXPECT_NEAR(R.Marginals[A], 1.0, 1e-6);
  EXPECT_LT(R.Marginals[B], 0.01);
}

TEST(LoopyBpTest, TripleFactorFig6a) {
  // src=1, snk=1 pinned; Fig. 6a factor penalizes mid=0 -> mid rises.
  FactorGraph G;
  VarIdx S = G.addVar("src"), M = G.addVar("mid"), T = G.addVar("snk");
  G.addUnary(S, 0.0, 1.0);
  G.addUnary(T, 0.0, 1.0);
  G.addUnary(M, 0.5, 0.5);
  Factor F;
  F.Vars = {S, M, T};
  F.Table = {1, 1, 1, 1, 1, 0.1, 1, 1}; // (s=1, m=0, t=1) == index 5.
  G.addFactor(std::move(F));
  LoopyBeliefPropagation Bp;
  InferenceResult R = Bp.run(G);
  // Exact: p(m=1)=0.5 / (0.5 + 0.5*0.1).
  EXPECT_NEAR(R.Marginals[M], 0.5 / 0.55, 1e-4);
}

TEST(LoopyBpTest, TimeoutReported) {
  // A frustrated loop with a zero-second budget must flag a timeout.
  FactorGraph G;
  VarIdx V[3];
  for (int I = 0; I < 3; ++I)
    V[I] = G.addVar("v" + std::to_string(I));
  for (int I = 0; I < 3; ++I)
    G.addFactor(Factor{{V[I], V[(I + 1) % 3]}, {1.0, 0.2, 0.2, 1.0}});
  BpOptions O;
  O.TimeoutSeconds = 1e-9;
  LoopyBeliefPropagation Bp(O);
  InferenceResult R = Bp.run(G);
  EXPECT_TRUE(R.TimedOut);
}

TEST(GibbsTest, MatchesExactMarginalOnPair) {
  FactorGraph G;
  VarIdx A = G.addVar("a"), B = G.addVar("b");
  G.addUnary(A, 0.5, 0.5);
  G.addFactor(Factor{{A, B}, {1.0, 1.0, 1.0, 0.1}});
  GibbsOptions O;
  O.BurnIn = 200;
  O.Samples = 4000;
  GibbsSampler Sampler(O);
  InferenceResult R = Sampler.run(G);
  double Z = 0.5 + 0.5 + 0.5 + 0.5 * 0.1;
  EXPECT_NEAR(R.Marginals[B], (0.5 + 0.05) / Z, 0.05);
}

TEST(GibbsTest, HardFactorsFreezeVariables) {
  FactorGraph G;
  VarIdx A = G.addVar("a");
  G.addUnary(A, 0.0, 1.0);
  GibbsSampler Sampler;
  InferenceResult R = Sampler.run(G);
  EXPECT_NEAR(R.Marginals[A], 1.0, 1e-9);
}

TEST(GibbsTest, DeterministicInSeed) {
  FactorGraph G;
  VarIdx A = G.addVar("a"), B = G.addVar("b");
  G.addUnary(A, 0.4, 0.6);
  G.addFactor(Factor{{A, B}, {1.0, 0.5, 0.5, 1.0}});
  GibbsSampler S1, S2;
  EXPECT_EQ(S1.run(G).Marginals, S2.run(G).Marginals);
}

//===----------------------------------------------------------------------===//
// Merlin end-to-end
//===----------------------------------------------------------------------===//

struct MerlinFixture {
  pysem::Project Proj;
  PropagationGraph Graph;

  explicit MerlinFixture(std::string_view Source) {
    const pysem::ModuleInfo &M = Proj.addModule("m/app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = buildModuleGraph(Proj, M);
  }
};

TEST(MerlinPipelineTest, LearnsSanitizerBetweenSeededEndpoints) {
  MerlinFixture F("import web\nimport mid\nimport db\n"
                  "db.exec(mid.filter(web.read()))\n");
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  MerlinResult R = runMerlin(F.Graph, Seed);
  EXPECT_GT(R.Learned.score("mid.filter()", Role::Sanitizer), 0.6)
      << "Fig. 6a must raise the sanitizer marginal";
  EXPECT_GT(R.NumFactors, 0u);
}

TEST(MerlinPipelineTest, SeedsPinnedInMarginals) {
  MerlinFixture F("import web\nimport db\n"
                  "db.exec(web.read())\n");
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  MerlinResult R = runMerlin(F.Graph, Seed);
  EXPECT_NEAR(R.Learned.score("web.read()", Role::Source), 1.0, 1e-3);
  EXPECT_NEAR(R.Learned.score("db.exec()", Role::Sink), 1.0, 1e-3);
  EXPECT_LT(R.Learned.score("web.read()", Role::Sink), 0.05);
}

TEST(MerlinPipelineTest, CollapsedVsUncollapsedCandidates) {
  // Two occurrences of the same call: collapsed mode merges them into one
  // candidate; uncollapsed keeps per-event nodes but variables are still
  // per representation, so candidate counts match — the factor counts
  // differ instead.
  MerlinFixture F("import web\nimport db\n"
                  "db.exec(web.read())\n"
                  "db.exec(web.read())\n");
  spec::SeedSpec Seed;
  MerlinOptions Collapsed;
  Collapsed.Collapsed = true;
  MerlinOptions Uncollapsed;
  Uncollapsed.Collapsed = false;
  MerlinResult RC = runMerlin(F.Graph, Seed, Collapsed);
  MerlinResult RU = runMerlin(F.Graph, Seed, Uncollapsed);
  EXPECT_EQ(RC.NumCandidates[0], RU.NumCandidates[0]);
  EXPECT_GE(RU.NumFactors, RC.NumFactors);
}

TEST(MerlinPipelineTest, GibbsMethodRuns) {
  MerlinFixture F("import web\nimport mid\nimport db\n"
                  "db.exec(mid.filter(web.read()))\n");
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  MerlinOptions Opts;
  Opts.Method = InferenceMethod::Gibbs;
  Opts.Gibbs.Samples = 800;
  MerlinResult R = runMerlin(F.Graph, Seed, Opts);
  EXPECT_GT(R.Learned.score("mid.filter()", Role::Sanitizer), 0.5);
}

TEST(MerlinPipelineTest, BlacklistExcludesCandidates) {
  MerlinFixture F("import web\nimport db\n"
                  "db.exec(web.read().strip())\n");
  spec::SeedSpec Seed = spec::SeedSpec::parse("b: *.strip()\n");
  MerlinResult R = runMerlin(F.Graph, Seed);
  EXPECT_FALSE(R.Learned.hasRep("web.read().strip()"));
}

TEST(MerlinPipelineTest, SanitizerPriorReflectsPosition) {
  // An API between a potential source and sink gets a higher sanitizer
  // prior than a dangling one (§6.3).
  MerlinFixture F("import web\nimport mid\nimport db\nimport lone\n"
                  "db.exec(mid.filter(web.read()))\n"
                  "lone.helper()\n");
  spec::SeedSpec Seed;
  MerlinResult R = runMerlin(F.Graph, Seed);
  EXPECT_GT(R.Learned.score("mid.filter()", Role::Sanitizer),
            R.Learned.score("lone.helper()", Role::Sanitizer));
}

TEST(MerlinPipelineTest, ReportsTiming) {
  MerlinFixture F("import web\nimport db\ndb.exec(web.read())\n");
  spec::SeedSpec Seed;
  MerlinResult R = runMerlin(F.Graph, Seed);
  EXPECT_GE(R.Seconds, 0.0);
  EXPECT_GT(R.Iterations, 0);
}

} // namespace
