file(REMOVE_RECURSE
  "CMakeFiles/table7_vuln_totals.dir/table7_vuln_totals.cpp.o"
  "CMakeFiles/table7_vuln_totals.dir/table7_vuln_totals.cpp.o.d"
  "table7_vuln_totals"
  "table7_vuln_totals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_vuln_totals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
