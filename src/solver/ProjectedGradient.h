//===- solver/ProjectedGradient.h - Plain projected subgradient --*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain projected-subgradient baseline with 1/sqrt(t) step decay. Used
/// by the optimizer-choice ablation and as a sanity cross-check of Adam:
/// both must converge to the same objective value on convex systems.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_PROJECTEDGRADIENT_H
#define SELDON_SOLVER_PROJECTEDGRADIENT_H

#include "solver/Objective.h"

namespace seldon {
namespace solver {

/// Projected subgradient descent with diminishing steps.
class ProjectedGradient {
public:
  explicit ProjectedGradient(SolveOptions Options = SolveOptions())
      : Options(Options) {}

  SolveResult minimize(const Objective &Obj) const;

  /// Minimizes starting from \p X0 (projected first).
  SolveResult minimize(const Objective &Obj, std::vector<double> X0) const;

private:
  SolveOptions Options;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_PROJECTEDGRADIENT_H
