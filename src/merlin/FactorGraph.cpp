//===- merlin/FactorGraph.cpp - Binary factor graphs ----------------------===//

#include "merlin/FactorGraph.h"

using namespace seldon;
using namespace seldon::merlin;

VarIdx FactorGraph::addVar(std::string Name) {
  Names.push_back(std::move(Name));
  CacheValid = false;
  return static_cast<VarIdx>(Names.size() - 1);
}

void FactorGraph::addFactor(Factor F) {
  assert(!F.Vars.empty() && "factor must touch at least one variable");
  assert(F.Table.size() == (size_t{1} << F.Vars.size()) &&
         "table size must be 2^arity");
#ifndef NDEBUG
  for (VarIdx V : F.Vars)
    assert(V < Names.size() && "factor references unknown variable");
  for (double Score : F.Table)
    assert(Score >= 0.0 && "factor scores must be non-negative");
#endif
  Factors.push_back(std::move(F));
  CacheValid = false;
}

void FactorGraph::addUnary(VarIdx V, double Score0, double Score1) {
  addFactor(Factor{{V}, {Score0, Score1}});
}

const std::vector<std::vector<uint32_t>> &FactorGraph::varToFactors() const {
  if (!CacheValid) {
    VarFactorsCache.assign(Names.size(), {});
    for (uint32_t F = 0; F < Factors.size(); ++F)
      for (VarIdx V : Factors[F].Vars)
        VarFactorsCache[V].push_back(F);
    CacheValid = true;
  }
  return VarFactorsCache;
}
