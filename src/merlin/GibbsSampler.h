//===- merlin/GibbsSampler.h - MCMC inference fallback -----------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gibbs sampling over binary factor graphs — the fallback inference method
/// the paper tried when Expectation Propagation timed out (§7.4). Estimates
/// marginals as sample means after burn-in.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_MERLIN_GIBBSSAMPLER_H
#define SELDON_MERLIN_GIBBSSAMPLER_H

#include "merlin/FactorGraph.h"
#include "merlin/LoopyBeliefPropagation.h"

#include <cstdint>

namespace seldon {
namespace merlin {

/// Knobs for Gibbs sampling.
struct GibbsOptions {
  int BurnIn = 100;
  int Samples = 400;
  uint64_t Seed = 1;
  /// Wall-clock budget in seconds; <= 0 means unlimited.
  double TimeoutSeconds = 0.0;
};

/// Single-site Gibbs sampler.
class GibbsSampler {
public:
  explicit GibbsSampler(GibbsOptions Options = GibbsOptions())
      : Options(Options) {}

  /// Runs the chain; marginals are means over the kept samples. A factor
  /// assigning zero mass to both values of a variable (conditioned on the
  /// current state) leaves the variable unchanged for that sweep.
  InferenceResult run(const FactorGraph &Graph) const;

private:
  GibbsOptions Options;
};

} // namespace merlin
} // namespace seldon

#endif // SELDON_MERLIN_GIBBSSAMPLER_H
