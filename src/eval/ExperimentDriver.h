//===- eval/ExperimentDriver.h - Shared experiment plumbing ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the benchmark binaries that regenerate the paper's
/// tables and figures: standard corpus + pipeline runs, environment-based
/// scaling knobs (`SELDON_PROJECTS=...` shrinks or grows every experiment),
/// and small formatting helpers.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_EVAL_EXPERIMENTDRIVER_H
#define SELDON_EVAL_EXPERIMENTDRIVER_H

#include "corpus/CorpusGenerator.h"
#include "eval/Precision.h"
#include "eval/ReportClassifier.h"
#include "infer/Pipeline.h"
#include "taint/TaintAnalyzer.h"

#include <string>

namespace seldon {
namespace eval {

/// Integer environment knob with default.
int envInt(const char *Name, int Default);

/// The score threshold the paper selects specifications at (§7.2: 0.1).
inline constexpr double ScoreThreshold = 0.1;

/// The default corpus configuration used by the table/figure benches;
/// NumProjects scales with the SELDON_PROJECTS environment variable.
corpus::CorpusOptions standardCorpusOptions();

/// The default pipeline configuration (paper constants).
infer::PipelineOptions standardPipelineOptions();

/// A generated corpus together with the finished pipeline run on it.
struct CorpusRun {
  corpus::Corpus Data;
  infer::PipelineResult Pipeline;
};

/// Generates the corpus and runs the full pipeline (memoizable by callers).
CorpusRun runStandardExperiment(const corpus::CorpusOptions &CorpusOpts,
                                const infer::PipelineOptions &PipelineOpts);

/// Runs the taint analyzer over \p Run with the seed spec only or with the
/// learned spec added.
std::vector<taint::Violation> analyzeCorpus(const CorpusRun &Run,
                                            bool UseLearned);

/// Formats a ratio as "12.3%".
std::string percent(double Fraction);

} // namespace eval
} // namespace seldon

#endif // SELDON_EVAL_EXPERIMENTDRIVER_H
