//===- infer/Pipeline.h - Seldon end-to-end inference ------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Seldon pipeline (paper §7.1): parse a corpus of projects,
/// extract per-file propagation graphs, merge them into a global graph,
/// build the linear constraint system, minimize the relaxed objective with
/// projected Adam, and read the per-(representation, role) scores back into
/// a LearnedSpec.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_INFER_PIPELINE_H
#define SELDON_INFER_PIPELINE_H

#include "constraints/ConstraintGen.h"
#include "propgraph/GraphBuilder.h"
#include "spec/LearnedSpec.h"
#include "spec/SeedSpec.h"
#include "solver/AdamOptimizer.h"
#include "solver/ProjectedGradient.h"

namespace seldon {
namespace infer {

/// All knobs of the end-to-end pipeline, defaulting to the paper's values
/// (C = 0.75, cutoff 5, λ = 0.1, score threshold 0.1).
struct PipelineOptions {
  propgraph::BuildOptions Build;
  constraints::GenOptions Gen;
  double Lambda = 0.1;
  solver::SolveOptions Solve;
  /// Use projected Adam (the paper's optimizer); false switches to plain
  /// projected subgradient descent (ablation).
  bool UseAdam = true;
  /// Warm-start the optimizer from a previously learned specification
  /// (matched by representation string): retraining after the corpus
  /// grows converges in far fewer iterations. Null starts from zero.
  const spec::LearnedSpec *WarmStart = nullptr;
  /// Learn over the vertex-contracted graph (paper §6.4: the collapsed
  /// graph is unusable for taint analysis but still usable for
  /// specification learning). The result's Graph member stays uncollapsed
  /// so the taint client remains sound.
  bool CollapseForLearning = false;
};

/// Everything the pipeline produced, including the intermediate artifacts
/// the evaluation and the benches inspect.
struct PipelineResult {
  propgraph::PropagationGraph Graph; ///< Global propagation graph.
  propgraph::RepTable Reps;
  constraints::ConstraintSystem System;
  solver::SolveResult Solve;
  spec::LearnedSpec Learned;

  size_t NumFiles = 0;
  double BuildSeconds = 0.0;
  double GenSeconds = 0.0;
  double SolveSeconds = 0.0;

  /// Wall time of the learning part (constraint generation + solving),
  /// the quantity plotted in paper Fig. 10.
  double inferenceSeconds() const { return GenSeconds + SolveSeconds; }
};

/// Runs the full pipeline over already-parsed \p Corpus with seeds \p Seed.
PipelineResult runPipeline(const std::vector<pysem::Project> &Corpus,
                           const spec::SeedSpec &Seed,
                           const PipelineOptions &Opts = PipelineOptions());

/// Runs constraint generation + solving over an existing global graph
/// (used when the same graph is reused across ablation configurations).
PipelineResult runPipelineOnGraph(propgraph::PropagationGraph Graph,
                                  const spec::SeedSpec &Seed,
                                  const PipelineOptions &Opts =
                                      PipelineOptions());

} // namespace infer
} // namespace seldon

#endif // SELDON_INFER_PIPELINE_H
