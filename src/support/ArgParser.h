//===- support/ArgParser.h - Declarative CLI flag parsing --------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative flag parser shared by the `seldon` CLI and the
/// `seldond` daemon, so the two binaries keep one flag vocabulary. Flags
/// are registered with a typed target and a help line; parse() then
/// accepts both `--name value` and `--name=value`, applies the same strict
/// numeric rules everywhere (`--jobs=-1` and `--jobs banana` are errors,
/// never garbage through atoi), collects non-flag operands as positional
/// arguments, and rejects unknown `--` options. usage() renders the
/// registered flags as aligned help text, so the usage screen can never
/// drift from what the binary actually accepts.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_ARGPARSER_H
#define SELDON_SUPPORT_ARGPARSER_H

#include <string>
#include <vector>

namespace seldon {

/// Strictly parses \p Text as a base-10 unsigned integer. Rejects empty
/// strings, signs, trailing junk, and overflow. On failure prints
/// "error: <flag> expects a non-negative integer ..." to stderr and
/// returns false.
bool parseStrictUnsigned(const std::string &Flag, const std::string &Text,
                         unsigned long &Out);

/// Strictly parses \p Text as a finite decimal number (full consume).
/// On failure prints "error: <flag> expects a number ..." to stderr and
/// returns false.
bool parseStrictDouble(const std::string &Flag, const std::string &Text,
                       double &Out);

/// Declarative flag table + parser. Register typed flags, then call
/// parse(); diagnostics go to stderr and parse() returns false on the
/// first error. Targets keep their initial value until their flag is seen,
/// so defaults live at the declaration site.
class ArgParser {
public:
  /// Registers a boolean flag (`--name`, takes no value; an inline
  /// `--name=x` is an error).
  ArgParser &flag(const std::string &Name, bool *Target,
                  const std::string &Help);

  /// Registers a string-valued flag (`--name VALUE` / `--name=VALUE`).
  /// \p ValueName is the placeholder shown in usage() ("FILE", "DIR").
  ArgParser &string(const std::string &Name, std::string *Target,
                    const std::string &ValueName, const std::string &Help);

  /// Registers a strict non-negative integer flag.
  ArgParser &unsignedInt(const std::string &Name, unsigned long *Target,
                         const std::string &ValueName,
                         const std::string &Help);

  /// Registers a strict decimal flag.
  ArgParser &decimal(const std::string &Name, double *Target,
                     const std::string &ValueName, const std::string &Help);

  /// Parses Argv[Begin, Argc): flags update their targets, everything else
  /// lands in \p Positional (never null-checked — pass a valid vector).
  /// Unknown `--options`, missing values, inline values on boolean flags,
  /// and malformed numbers are errors: a diagnostic is printed to stderr
  /// and parse() returns false.
  bool parse(int Argc, char **Argv, int Begin,
             std::vector<std::string> *Positional);

  /// True when \p Name was given on the last parsed command line.
  bool seen(const std::string &Name) const;

  /// The registered flags rendered as aligned "  --name VALUE  help" lines
  /// (help text is wrapped on the registered line breaks, i.e. '\n' in
  /// Help continues indented under the first line).
  std::string usage() const;

private:
  enum class Kind { Bool, String, Unsigned, Double };
  struct Flag {
    std::string Name;
    std::string ValueName;
    std::string Help;
    Kind FlagKind = Kind::Bool;
    bool *BoolTarget = nullptr;
    std::string *StringTarget = nullptr;
    unsigned long *UnsignedTarget = nullptr;
    double *DoubleTarget = nullptr;
    bool Seen = false;
  };

  Flag *find(const std::string &Name);
  const Flag *find(const std::string &Name) const;

  std::vector<Flag> Flags;
};

} // namespace seldon

#endif // SELDON_SUPPORT_ARGPARSER_H
