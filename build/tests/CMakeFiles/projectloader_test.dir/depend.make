# Empty dependencies file for projectloader_test.
# This may be replaced when dependencies are built.
