# Empty compiler generated dependencies file for seldon.
# This may be replaced when dependencies are built.
