//===- eval/Precision.cpp - Precision against ground truth ----------------===//

#include "eval/Precision.h"

#include "support/Rng.h"

#include <algorithm>

using namespace seldon;
using namespace seldon::eval;
using namespace seldon::propgraph;

std::vector<ScoredPrediction>
seldon::eval::predictionsAbove(const spec::LearnedSpec &Learned,
                               const GroundTruth &Truth,
                               const spec::SeedSpec &Seed, Role R,
                               double Threshold) {
  std::vector<ScoredPrediction> Out;
  for (const auto &[Rep, Score] : Learned.ranked(R)) {
    if (Score < Threshold)
      break; // ranked() is sorted descending.
    if (Seed.Spec.rolesOf(Rep) != 0)
      continue; // Seeds are not inferred specifications.
    Out.push_back({Rep, Score, Truth.isTrue(Rep, R)});
  }
  return Out;
}

RolePrecision seldon::eval::exactPrecision(const spec::LearnedSpec &Learned,
                                           const GroundTruth &Truth,
                                           const spec::SeedSpec &Seed, Role R,
                                           double Threshold) {
  RolePrecision P;
  for (const ScoredPrediction &Pred :
       predictionsAbove(Learned, Truth, Seed, R, Threshold)) {
    ++P.Predicted;
    P.Correct += Pred.Correct;
  }
  return P;
}

std::vector<ScoredPrediction> seldon::eval::sampledPredictions(
    const spec::LearnedSpec &Learned, const GroundTruth &Truth,
    const spec::SeedSpec &Seed, Role R, double Threshold, size_t SampleSize,
    uint64_t SampleSeed) {
  std::vector<ScoredPrediction> All =
      predictionsAbove(Learned, Truth, Seed, R, Threshold);
  if (All.size() > SampleSize) {
    Rng Random(SampleSeed);
    Random.shuffle(All);
    All.resize(SampleSize);
  }
  // Present samples sorted by score, as in Fig. 11.
  std::sort(All.begin(), All.end(),
            [](const ScoredPrediction &A, const ScoredPrediction &B) {
              if (A.Score != B.Score)
                return A.Score > B.Score;
              return A.Rep < B.Rep;
            });
  return All;
}

RolePrecision seldon::eval::topKPrecision(const spec::LearnedSpec &Learned,
                                          const GroundTruth &Truth,
                                          const spec::SeedSpec &Seed, Role R,
                                          size_t K) {
  std::vector<ScoredPrediction> All =
      predictionsAbove(Learned, Truth, Seed, R, 0.0);
  RolePrecision P;
  for (size_t I = 0; I < All.size() && I < K; ++I) {
    ++P.Predicted;
    P.Correct += All[I].Correct;
  }
  return P;
}

RoleF1 seldon::eval::exactF1(const spec::LearnedSpec &Learned,
                             const GroundTruth &Truth,
                             const spec::SeedSpec &Seed, Role R,
                             double Threshold) {
  RoleF1 F;
  for (const ScoredPrediction &Pred :
       predictionsAbove(Learned, Truth, Seed, R, Threshold)) {
    ++F.Predicted;
    F.Correct += Pred.Correct;
  }
  // The recall denominator reads the memoized role list (one derivation
  // per corpus however many thresholds/roles are swept).
  for (const std::string &Rep : Truth.repsWithRole(R))
    if (Seed.Spec.rolesOf(Rep) == 0)
      ++F.TruthReps;
  return F;
}

double seldon::eval::macroF1(const spec::LearnedSpec &Learned,
                             const GroundTruth &Truth,
                             const spec::SeedSpec &Seed, double Threshold) {
  double Sum = 0.0;
  for (int R = 0; R < propgraph::NumRoles; ++R)
    Sum += exactF1(Learned, Truth, Seed, static_cast<Role>(R), Threshold)
               .f1();
  return Sum / propgraph::NumRoles;
}

std::vector<double> seldon::eval::cumulativePrecision(
    const std::vector<ScoredPrediction> &Sample) {
  std::vector<double> Out;
  size_t Correct = 0;
  for (size_t I = 0; I < Sample.size(); ++I) {
    Correct += Sample[I].Correct;
    Out.push_back(static_cast<double>(Correct) /
                  static_cast<double>(I + 1));
  }
  return Out;
}
