//===- constraints/Explain.h - Constraint-level explanations -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explains *why* a representation received its score: the paper's Fig. 1
/// workflow has an expert examine the learned specifications, and the
/// natural question is which information-flow constraints pushed a score
/// up. This renders the constraints mentioning a (representation, role)
/// variable together with their residuals under the solved assignment.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CONSTRAINTS_EXPLAIN_H
#define SELDON_CONSTRAINTS_EXPLAIN_H

#include "constraints/ConstraintSystem.h"

#include <string>
#include <vector>

namespace seldon {
namespace constraints {

/// Renders one constraint as `lhs <= rhs + C`, with variables shown as
/// `rep^role` and non-unit coefficients prefixed (`0.5*rep^role`).
std::string renderConstraint(const ConstraintSystem &Sys,
                             const propgraph::RepTable &Reps,
                             const solver::LinearConstraint &C);

/// One constraint's appearance in an explanation.
struct ExplainedConstraint {
  std::string Text;
  /// L - R - C under the solution (> 0 means still violated).
  double Residual = 0.0;
  /// True when the explained variable sits on the left-hand side (the
  /// constraint *caps* it); false for the right-hand side (the constraint
  /// *demands* it).
  bool OnLhs = false;
};

/// Everything known about one (representation, role) variable.
struct Explanation {
  bool Found = false;
  double Score = 0.0;
  bool Pinned = false;
  double PinnedValue = 0.0;
  std::vector<ExplainedConstraint> Constraints;
};

/// Explains (\p Rep, \p R) under the solved assignment \p X (indexed by
/// the system's variable ids). Returns Found = false when the pair has no
/// variable (blacklisted, below cutoff, or never a candidate).
Explanation explainRep(const ConstraintSystem &Sys,
                       const propgraph::RepTable &Reps,
                       const std::string &Rep, propgraph::Role R,
                       const std::vector<double> &X);

} // namespace constraints
} // namespace seldon

#endif // SELDON_CONSTRAINTS_EXPLAIN_H
