//===- tests/argpos_test.cpp - Argument-position sensitivity + globals ----===//
//
// Tests for two builder extensions: `global`-statement write-through and
// the argument-position-sensitive mode (the differentiation the paper's
// §3.3 leaves as future work: an API can be a sink in one parameter and
// harmless in another).
//
//===----------------------------------------------------------------------===//

#include "infer/Pipeline.h"
#include "propgraph/GraphBuilder.h"
#include "taint/TaintAnalyzer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

struct Fixture {
  pysem::Project Proj;
  PropagationGraph Graph;

  explicit Fixture(std::string_view Source,
                   BuildOptions Opts = BuildOptions()) {
    const pysem::ModuleInfo &M = Proj.addModule("app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = buildModuleGraph(Proj, M, Opts);
  }

  EventId theEvent(const std::string &Rep) const {
    for (const Event &E : Graph.events())
      if (E.primaryRep() == Rep)
        return E.Id;
    ADD_FAILURE() << "no event " << Rep;
    return InvalidEvent;
  }

  bool hasEvent(const std::string &Rep) const {
    for (const Event &E : Graph.events())
      if (E.primaryRep() == Rep)
        return true;
    return false;
  }

  bool flowsTo(EventId From, EventId To) const {
    auto R = Graph.reachableFrom(From);
    return std::find(R.begin(), R.end(), To) != R.end();
  }
};

//===----------------------------------------------------------------------===//
// global statement
//===----------------------------------------------------------------------===//

TEST(GlobalStmtTest, GlobalAssignmentFlowsAcrossFunctions) {
  Fixture F("import web\nimport db\n"
            "cache = None\n"
            "def fill():\n"
            "    global cache\n"
            "    cache = web.read()\n"
            "def drain():\n"
            "    db.run(cache)\n"
            "fill()\n"
            "drain()\n");
  EXPECT_TRUE(F.flowsTo(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

TEST(GlobalStmtTest, NonGlobalAssignmentStaysLocal) {
  Fixture F("import web\nimport db\n"
            "cache = None\n"
            "def fill():\n"
            "    cache = web.read()\n" // No `global`: local shadow.
            "def drain():\n"
            "    db.run(cache)\n"
            "fill()\n"
            "drain()\n");
  EXPECT_FALSE(F.flowsTo(F.theEvent("web.read()"), F.theEvent("db.run()")));
}

//===----------------------------------------------------------------------===//
// Argument-position-sensitive mode
//===----------------------------------------------------------------------===//

BuildOptions argPos() {
  BuildOptions Opts;
  Opts.ArgPositionReps = true;
  return Opts;
}

TEST(ArgPosTest, PositionalAndKeywordArgEvents) {
  Fixture F("import db\nimport web\n"
            "db.exec(web.read(), timeout=web.read())\n",
            argPos());
  EXPECT_TRUE(F.hasEvent("db.exec()[arg0]"));
  EXPECT_TRUE(F.hasEvent("db.exec()[kw:timeout]"));
  const Event &Arg = F.Graph.event(F.theEvent("db.exec()[arg0]"));
  EXPECT_EQ(Arg.Kind, EventKind::CallArgument);
  EXPECT_EQ(Arg.Candidates, SinkMask)
      << "argument events are sink-only candidates";
}

TEST(ArgPosTest, UntaintedArgumentsGetNoEvent) {
  Fixture F("import db\ndb.exec('constant', 42)\n", argPos());
  EXPECT_FALSE(F.hasEvent("db.exec()[arg0]"));
  EXPECT_FALSE(F.hasEvent("db.exec()[arg1]"));
}

TEST(ArgPosTest, FlowRoutesThroughArgEvent) {
  Fixture F("import db\nimport web\ndb.exec(web.read())\n", argPos());
  EventId Src = F.theEvent("web.read()");
  EventId Arg = F.theEvent("db.exec()[arg0]");
  EventId Call = F.theEvent("db.exec()");
  EXPECT_TRUE(F.flowsTo(Src, Arg));
  EXPECT_TRUE(F.flowsTo(Arg, Call));
}

TEST(ArgPosTest, DisabledByDefault) {
  Fixture F("import db\nimport web\ndb.exec(web.read())\n");
  EXPECT_FALSE(F.hasEvent("db.exec()[arg0]"));
}

TEST(ArgPosTest, WrongParameterFlowNotReported) {
  // The paper's Tab. 6 "Flows into wrong parameter" false positives vanish
  // when the sink specification names the dangerous argument.
  const char *Source = "import db\nimport web\n"
                       "db.exec(web.read())\n"                // arg0: bad.
                       "db.exec('static', meta=web.read())\n"; // meta: ok.
  spec::SeedSpec ArgSeed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()[arg0]\n");
  Fixture F(Source, argPos());
  taint::RoleResolver Roles(&ArgSeed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);
  auto Reports = Analyzer.analyze(Roles);
  ASSERT_EQ(Reports.size(), 1u)
      << "only the dangerous-argument flow is a violation";
  EXPECT_EQ(F.Graph.event(Reports[0].Sink).primaryRep(), "db.exec()[arg0]");

  // Position-insensitive baseline: both flows are flagged.
  spec::SeedSpec PlainSeed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  Fixture Plain(Source);
  taint::RoleResolver PlainRoles(&PlainSeed.Spec, nullptr);
  EXPECT_EQ(taint::TaintAnalyzer(Plain.Graph).analyze(PlainRoles).size(),
            2u);
}

TEST(ArgPosTest, ArgSinkLearnableThroughPipeline) {
  // Big-code learning of a per-argument sink: the dangerous argument of
  // db.exec is learned while the timeout argument stays cold.
  std::vector<pysem::Project> Corpus;
  for (int I = 0; I < 8; ++I) {
    pysem::Project P("p" + std::to_string(I));
    P.addModule("p" + std::to_string(I) + "/app.py",
                "import web\nimport clean\nimport db\n"
                "q = clean.scrub(web.read())\n"
                "db.exec(q, timeout=30)\n"
                "db.exec('static', timeout=cfg.val)\n");
    Corpus.push_back(std::move(P));
  }
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\na: clean.scrub()\n");
  infer::PipelineOptions Opts;
  Opts.Build.ArgPositionReps = true;
  Opts.Solve.MaxIterations = 2000;
  Opts.Solve.LearningRate = 0.02;
  infer::Session S(Opts);
  S.addProjects(Corpus);
  S.generateConstraints(Seed);
  infer::PipelineResult R = S.solve();
  EXPECT_GT(R.Learned.score("db.exec()[arg0]", Role::Sink), 0.3);
  EXPECT_LT(R.Learned.score("db.exec()[kw:timeout]", Role::Sink), 0.1);
}

TEST(ArgPosTest, StarArgsAndKwargsExpansion) {
  Fixture F("import db\nimport web\n"
            "args = [web.read()]\n"
            "db.exec(*args, **extra)\n",
            argPos());
  // *args is positional slot 0; **extra has no events (unknown name).
  EXPECT_TRUE(F.hasEvent("db.exec()[arg0]"));
  EXPECT_FALSE(F.hasEvent("db.exec()[kwargs]"));
}

} // namespace
