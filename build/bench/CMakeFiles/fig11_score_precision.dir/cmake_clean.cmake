file(REMOVE_RECURSE
  "CMakeFiles/fig11_score_precision.dir/fig11_score_precision.cpp.o"
  "CMakeFiles/fig11_score_precision.dir/fig11_score_precision.cpp.o.d"
  "fig11_score_precision"
  "fig11_score_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_score_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
