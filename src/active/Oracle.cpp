//===- active/Oracle.cpp - Oracles for active learning --------------------===//

#include "active/Oracle.h"

#include "corpus/GroundTruth.h"
#include "service/Json.h"
#include "service/QueryResult.h"

#include <fstream>
#include <sstream>

using namespace seldon;
using namespace seldon::active;

const char *seldon::active::oracleAnswerName(OracleAnswer A) {
  switch (A) {
  case OracleAnswer::Yes:
    return "yes";
  case OracleAnswer::No:
    return "no";
  case OracleAnswer::Unknown:
    return "unknown";
  }
  return "?";
}

OracleAnswer GroundTruthOracle::answer(const std::string &Rep,
                                       propgraph::Role R) {
  return Truth->isTrue(Rep, R) ? OracleAnswer::Yes : OracleAnswer::No;
}

OracleAnswer FileOracle::answer(const std::string &Rep, propgraph::Role R) {
  auto It = Answers.find({Rep, static_cast<int>(R)});
  if (It == Answers.end())
    return OracleAnswer::Unknown;
  return It->second ? OracleAnswer::Yes : OracleAnswer::No;
}

bool FileOracle::parse(const std::string &JsonText, FileOracle &Out,
                       std::string &Error) {
  service::JsonValue Doc;
  if (!service::parseJson(JsonText, Doc, Error))
    return false;
  if (!Doc.isObject()) {
    Error = "oracle file must be a JSON object";
    return false;
  }
  const service::JsonValue *Answers = Doc.get("answers");
  if (!Answers || !Answers->isArray()) {
    Error = "oracle file needs an \"answers\" array";
    return false;
  }
  FileOracle Parsed;
  size_t Index = 0;
  for (const service::JsonValue &Entry : Answers->arrayValue()) {
    std::string At = "answers[" + std::to_string(Index++) + "]";
    if (!Entry.isObject()) {
      Error = At + " is not an object";
      return false;
    }
    const service::JsonValue *Rep = Entry.get("rep");
    const service::JsonValue *RoleV = Entry.get("role");
    const service::JsonValue *Truth = Entry.get("truth");
    if (!Rep || !Rep->isString() || Rep->stringValue().empty()) {
      Error = At + " needs a non-empty string \"rep\"";
      return false;
    }
    propgraph::Role R;
    if (!RoleV || !RoleV->isString() ||
        !service::roleFromName(RoleV->stringValue(), R)) {
      Error = At + " needs \"role\" of source, sanitizer, or sink";
      return false;
    }
    if (!Truth || !Truth->isBool()) {
      Error = At + " needs a boolean \"truth\"";
      return false;
    }
    Parsed.add(Rep->stringValue(), R, Truth->boolValue());
  }
  Out = std::move(Parsed);
  return true;
}

bool FileOracle::load(const std::string &Path, FileOracle &Out,
                      std::string &Error) {
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    Error = "cannot open oracle file " + Path;
    return false;
  }
  std::ostringstream Text;
  Text << In.rdbuf();
  if (In.bad()) {
    Error = "cannot read oracle file " + Path;
    return false;
  }
  if (!parse(Text.str(), Out, Error)) {
    Error = Path + ": " + Error;
    return false;
  }
  return true;
}

std::string
seldon::active::writeOracleFile(const std::vector<OracleExchange> &Transcript) {
  std::string Out = "{\"answers\":[";
  bool First = true;
  for (const OracleExchange &E : Transcript) {
    if (E.A == OracleAnswer::Unknown)
      continue;
    if (!First)
      Out += ",";
    First = false;
    Out += "\n  {\"rep\":";
    Out += service::JsonValue::makeString(E.Rep).render();
    Out += ",\"role\":\"";
    Out += propgraph::roleName(E.R);
    Out += "\",\"truth\":";
    Out += E.A == OracleAnswer::Yes ? "true" : "false";
    Out += "}";
  }
  Out += First ? "]}\n" : "\n]}\n";
  return Out;
}
