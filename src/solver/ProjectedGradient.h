//===- solver/ProjectedGradient.h - Plain projected subgradient --*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain projected-subgradient baseline with 1/sqrt(t) step decay. Used
/// by the optimizer-choice ablation and as a sanity cross-check of Adam:
/// both must converge to the same objective value on convex systems.
///
/// Like AdamOptimizer, the loop drives any objective exposing the fused
/// interface and performs one valueAndGradient evaluation per iteration.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_PROJECTEDGRADIENT_H
#define SELDON_SOLVER_PROJECTEDGRADIENT_H

#include "solver/Objective.h"

namespace seldon {
namespace solver {

class CompiledObjective;

/// Projected subgradient descent with diminishing steps, over Objective or
/// CompiledObjective (explicitly instantiated in ProjectedGradient.cpp).
class ProjectedGradient {
public:
  explicit ProjectedGradient(SolveOptions Options = SolveOptions())
      : Options(Options) {}

  /// Minimizes \p Obj starting from Obj.initialPoint().
  template <class ObjT> SolveResult minimize(const ObjT &Obj) const;

  /// Minimizes starting from \p X0 (projected first).
  template <class ObjT>
  SolveResult minimize(const ObjT &Obj, std::vector<double> X0) const;

private:
  SolveOptions Options;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_PROJECTEDGRADIENT_H
