//===- solver/CompiledObjective.h - Compiled fused solver kernel -*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The constraint compilation pass: lowers the `LinearConstraint` list of a
/// generated system into an immutable, flat, duplicate-coalesced form with
/// a fused single-pass value+gradient kernel.
///
/// Compilation performs three lowerings:
///
///  1. **Canonicalization.** Each constraint Σ Lhs ≤ Σ Rhs + C becomes one
///     row Σ c_i·x_i ≤ C: Rhs terms move to the Lhs with negated
///     coefficients, terms are sorted by variable id, duplicate variables
///     are merged by summing coefficients (in double precision — the sum
///     of the original float coefficients is exact), and exact-zero
///     coefficients are dropped.
///
///  2. **Coalescing.** Big-code corpora instantiate the same (rep, role)
///     inequality thousands of times across files; canonically-identical
///     rows collapse into one row with an integer multiplicity. This is
///     exact: K identical hinges sum to K · max(0, V).
///
///  3. **CSR layout.** Survivors are stored in flat RowBegin / VarIdx /
///     Coef / Weight / C arrays — no per-constraint heap vectors, one
///     contiguous streaming pass per sweep.
///
/// The fused kernel valueAndGradient() computes the objective value and a
/// subgradient in a single constraint sweep (the legacy `Objective` needs
/// one sweep for each). Rows are sharded exactly like the legacy class —
/// the shard structure depends only on the row count, never the thread
/// count — and shard partials are reduced in shard order, so results are
/// bit-identical for every Jobs setting. Pins and the L1 term are applied
/// in a flat epilogue over a `uint8_t` mask.
///
/// See docs/architecture.md ("The compiled solver kernel") for why the
/// learned specification stays byte-identical to the legacy path.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_COMPILEDOBJECTIVE_H
#define SELDON_SOLVER_COMPILEDOBJECTIVE_H

#include "solver/Objective.h"

#include <cstdint>
#include <vector>

namespace seldon {

class ThreadPool;

namespace solver {

/// What the compilation pass did to the constraint system.
struct CompileStats {
  /// Constraints in the source system.
  size_t RowsBefore = 0;
  /// Rows surviving duplicate coalescing.
  size_t RowsAfter = 0;
  /// Terms (Lhs + Rhs) in the source system.
  size_t TermsBefore = 0;
  /// CSR entries after folding, merging, and coalescing.
  size_t NonZeros = 0;
  /// Largest multiplicity any coalesced row carries.
  size_t MaxMultiplicity = 0;

  /// Constraint-sweep traffic saved by coalescing: RowsBefore / RowsAfter.
  double dedupRatio() const {
    return RowsAfter == 0 ? 1.0
                          : static_cast<double>(RowsBefore) /
                                static_cast<double>(RowsAfter);
  }
};

/// The relaxed objective of paper Eq. (9) over a compiled constraint
/// system. Immutable row data; same semantics as `Objective`, evaluated by
/// a fused single-sweep kernel.
class CompiledObjective {
public:
  /// Compiles \p Constraints (not retained) into CSR form.
  CompiledObjective(size_t NumVars,
                    const std::vector<LinearConstraint> &Constraints,
                    double Lambda);

  /// Compiles an existing legacy objective, copying its pins; the tests
  /// and benches use this to compare both evaluators on one system.
  static CompiledObjective compile(const Objective &Obj);

  /// Evaluates sweeps on \p Pool (one task per shard); null reverts to
  /// serial execution with identical arithmetic. The pool must outlive
  /// the objective (or be reset to null first).
  void setThreadPool(ThreadPool *Pool) { this->Pool = Pool; }

  /// Pins variable \p Var to \p Value (seed labels). Pinned variables are
  /// reset by project() and carry no L1 penalty and no gradient.
  void pin(uint32_t Var, double Value);

  /// A feasible starting point: all zeros, pinned values applied.
  std::vector<double> initialPoint() const;

  /// The fused kernel: writes a subgradient into \p Grad
  /// (resized/zeroed) and returns the full objective value — hinge loss
  /// plus λ · Σ free x_v — in one constraint sweep.
  double valueAndGradient(const std::vector<double> &X,
                          std::vector<double> &Grad) const;

  /// Σ_r Weight_r · max(Σ c_i·x_i − C_r, 0).
  double hingeLoss(const std::vector<double> &X) const;

  /// Full objective: hinge loss + λ · Σ free x_v.
  double value(const std::vector<double> &X) const;

  /// Subgradient only (one sweep; prefer valueAndGradient in loops).
  void gradient(const std::vector<double> &X,
                std::vector<double> &Grad) const;

  /// Projects \p X onto the feasible set: clamps to [0, 1] and restores
  /// pinned values.
  void project(std::vector<double> &X) const;

  size_t numVars() const { return NumVars; }
  size_t numRows() const { return C.size(); }
  size_t numNonZeros() const { return VarIdx.size(); }
  double lambda() const { return Lambda; }
  bool isPinned(uint32_t Var) const { return Pinned[Var] != 0; }
  double pinnedValue(uint32_t Var) const { return PinnedValues[Var]; }
  const CompileStats &stats() const { return Stats; }
  size_t numShards() const { return Shards.size(); }

  /// Read-only views of the compiled CSR arrays and pin state. The SIMD
  /// backend builds its blocked layout from these rows and keeps this
  /// exact layout for its original-order gradient epilogue.
  const std::vector<uint32_t> &rowBegin() const { return RowBegin; }
  const std::vector<uint32_t> &varIdx() const { return VarIdx; }
  const std::vector<double> &coef() const { return Coef; }
  const std::vector<double> &weight() const { return Weight; }
  const std::vector<double> &rowConstant() const { return C; }
  const std::vector<uint8_t> &pinnedMask() const { return Pinned; }
  const std::vector<double> &pinnedValues() const { return PinnedValues; }

private:
  /// Half-open row range [Begin, End) accumulated serially.
  struct Shard {
    size_t Begin = 0;
    size_t End = 0;
  };

  /// Streams shard \p S once: returns its weighted hinge loss and, when
  /// \p GradOut is non-null, adds the weighted hinge subgradient into it.
  double shardSweep(const Shard &S, const double *X, double *GradOut) const;

  /// Runs the sweep over all shards (on the pool when set) and reduces
  /// hinge partials in shard order; per-shard gradients land in ShardGrad
  /// when \p WithGradient is set and more than one shard exists.
  double sweep(const std::vector<double> &X, bool WithGradient,
               std::vector<double> *Grad) const;

  size_t NumVars;
  double Lambda;

  /// CSR rows: row R spans [RowBegin[R], RowBegin[R + 1]) in VarIdx/Coef.
  std::vector<uint32_t> RowBegin;
  std::vector<uint32_t> VarIdx;
  std::vector<double> Coef;
  /// Integer multiplicity of each coalesced row (kept as double so the
  /// kernel never converts).
  std::vector<double> Weight;
  /// Row constants (the C of Σ c_i·x_i ≤ C).
  std::vector<double> C;

  /// Flat pin mask (1 = pinned) and the pinned values.
  std::vector<uint8_t> Pinned;
  std::vector<double> PinnedValues;

  CompileStats Stats;

  std::vector<Shard> Shards;
  ThreadPool *Pool = nullptr;
  /// Per-shard reduction buffers, reused across iterations (only
  /// allocated when more than one shard exists).
  mutable std::vector<std::vector<double>> ShardGrad;
  mutable std::vector<double> ShardHinge;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_COMPILEDOBJECTIVE_H
