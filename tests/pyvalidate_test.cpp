//===- tests/pyvalidate_test.cpp - CPython validation of the corpus -------===//
//
// When a CPython interpreter is available, every generated file must be
// syntactically valid *real* Python (`py_compile` succeeds). This guards
// the corpus generator against drifting into a private dialect that only
// our own parser accepts. Skipped when python3 is absent.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGenerator.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

using namespace seldon;
using namespace seldon::corpus;

namespace {

bool havePython3() {
  return std::system("python3 -c pass > /dev/null 2>&1") == 0;
}

TEST(PyValidateTest, GeneratedCorpusCompilesWithCPython) {
  if (!havePython3())
    GTEST_SKIP() << "python3 not available";

  CorpusOptions Opts;
  Opts.NumProjects = 6;
  Opts.Seed = 17;
  Opts.PUtilsSanitizer = 0.5; // Exercise the shared utils module too.
  Corpus C = generateCorpus(Opts);

  fs::path Root = fs::temp_directory_path() /
                  ("seldon_pyvalidate_" + std::to_string(::getpid()));
  fs::create_directories(Root);

  size_t Checked = 0;
  for (const pysem::Project &P : C.Projects) {
    for (const pysem::ModuleInfo &M : P.modules()) {
      fs::path File = Root / (std::to_string(Checked) + ".py");
      {
        std::ofstream Out(File);
        Out << M.Source;
      }
      std::string Command = "python3 -m py_compile '" + File.string() +
                            "' > /dev/null 2>&1";
      EXPECT_EQ(std::system(Command.c_str()), 0)
          << "CPython rejected " << M.Path << ":\n"
          << M.Source;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 10u);
  std::error_code Ec;
  fs::remove_all(Root, Ec);
}

TEST(PyValidateTest, PaperFig2aCompilesWithCPython) {
  if (!havePython3())
    GTEST_SKIP() << "python3 not available";
  const char *Source =
      "from yak.web import app\n"
      "from flask import request\n"
      "from werkzeug import secure_filename\n"
      "import os\n"
      "\n"
      "blog_dir = app.config['PATH']\n"
      "\n"
      "@app.route('/media/', methods=['POST'])\n"
      "def media():\n"
      "    filename = request.files['f'].filename\n"
      "    filename = secure_filename(filename)\n"
      "    path = os.path.join(blog_dir, filename)\n"
      "    if not os.path.exists(path):\n"
      "        request.files['f'].save(path)\n";
  fs::path File = fs::temp_directory_path() /
                  ("seldon_fig2a_" + std::to_string(::getpid()) + ".py");
  {
    std::ofstream Out(File);
    Out << Source;
  }
  std::string Command =
      "python3 -m py_compile '" + File.string() + "' > /dev/null 2>&1";
  EXPECT_EQ(std::system(Command.c_str()), 0);
  std::error_code Ec;
  fs::remove(File, Ec);
}

} // namespace
