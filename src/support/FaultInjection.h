//===- support/FaultInjection.h - Deterministic fault points -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A registry of named fault points the pipeline's recovery paths can be
/// exercised through. Each fault point sits on one stage boundary (a
/// per-project parse, a cache read, a solver step); tests — and the
/// `SELDON_FAULT` environment variable — arm points by name plus a
/// deterministic key:
///
///   SELDON_FAULT="parse:2,solver-step:5"   fail project 2's parse and
///                                          poison solver iteration 5
///   SELDON_FAULT="cache-read:*"            fail every cache read
///
/// A `crash:` prefix turns an armed point into a *process-crash* point:
/// instead of throwing, the process exits immediately (no destructors, no
/// flushes beyond what the call site already wrote) — the primitive the
/// durability layer's kill-and-restart recovery harness is built on:
///
///   SELDON_FAULT="crash:journal-append:2"  die while appending journal
///                                          record #2
///
/// The key is always a value the *caller* owns (project index, file index,
/// solver iteration, journal sequence number), never an invocation
/// ordinal, so an armed fault trips at the same place regardless of thread
/// schedule — recovery tests stay deterministic at any `--jobs`, including
/// under TSan.
///
/// A keyed arm is one-shot: it trips the first time its (point, key) pair
/// is evaluated and is consumed, so a retry of the same work item (the
/// solver re-evaluating an iterate after backoff) observes the fault
/// exactly once. `*` arms are persistent.
///
/// The unarmed fast path is one relaxed atomic load (see enabled()).
/// Configuration is not thread-safe; arm faults before the run fans out.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_FAULTINJECTION_H
#define SELDON_SUPPORT_FAULTINJECTION_H

#include <cstdint>
#include <stdexcept>
#include <string>

namespace seldon {
namespace fault {

/// Every registered fault point, one per guarded stage boundary.
enum class Point {
  Parse,         ///< Per-project frontend work in Session::buildGraph.
  GraphBuild,    ///< Per-project propagation-graph extraction.
  CacheRead,     ///< Per-project graph-cache load.
  CacheWrite,    ///< Per-project graph-cache write-back.
  ConstraintGen, ///< Per-file constraint-extraction shard.
  SolverStep,    ///< One optimizer iteration (poisons the objective).
  // Durability boundaries (service/StateStore). Keyed by the journal
  // sequence number / the snapshot's covered sequence number; exercised
  // through the `crash:` arms by the recovery harness.
  JournalAppend,  ///< Mid-append: only a prefix of the record lands.
  JournalFsync,   ///< Record fully written, fsync not yet issued.
  JournalSynced,  ///< Record durable, the op not yet applied or acked.
  SnapshotWrite,  ///< Snapshot temp fully written, not yet renamed.
  SnapshotRename, ///< Snapshot published, journal not yet compacted.
  JournalReset,   ///< Fresh compacted journal written, not yet renamed.
};
constexpr int NumPoints = 12;

/// The spec-string name of \p P ("parse", "graph-build", ...).
const char *pointName(Point P);

/// The exception an armed fault point throws (for throwing points).
class InjectedFault : public std::runtime_error {
public:
  explicit InjectedFault(const std::string &What)
      : std::runtime_error(What) {}
};

/// True when any fault is armed. One relaxed atomic load; call sites
/// should gate on this so unarmed runs pay nothing else.
bool enabled();

/// Arms the faults described by \p Spec — a comma-separated list of
/// `point:key` (decimal key) or `point:*` items over the pointName()
/// names, each optionally prefixed with `crash:` to arm a process-crash
/// instead of a thrown fault. Replaces the previous configuration.
/// Returns false and writes a description into \p Error (may be null) on
/// a malformed spec.
bool configure(const std::string &Spec, std::string *Error = nullptr);

/// Arms faults from the SELDON_FAULT environment variable. Returns false
/// on a malformed value (error description in \p Error); an unset or empty
/// variable is a no-op success.
bool configureFromEnv(std::string *Error = nullptr);

/// Disarms everything and zeroes the trip counters.
void reset();

/// True — consuming a one-shot arm — when \p P is armed for \p Key.
/// Callers that cannot throw use this to synthesize their failure (the
/// solver poisons its objective value instead of throwing).
bool shouldTrip(Point P, uint64_t Key);

/// Throws InjectedFault("injected fault at <point> #<key>") when \p P is
/// armed for \p Key.
void maybeThrow(Point P, uint64_t Key);

/// The exit code a crash arm dies with (distinguishable from every normal
/// seldon exit: 0 ok, 1 error, 2 degraded).
constexpr int CrashExitCode = 86;

/// True — consuming a one-shot `crash:` arm — when a process crash is
/// armed at \p P for \p Key. Call sites that need to crash *mid*-effect
/// (a torn journal append) test this, emit their partial effect, then
/// call crashExit().
bool crashArmed(Point P, uint64_t Key);

/// Prints the injected-crash diagnostic to stderr and terminates the
/// process immediately via _Exit(CrashExitCode): no destructors, no
/// stream flushes, no atexit handlers — the closest portable stand-in
/// for SIGKILL that still reports where it happened.
[[noreturn]] void crashExit(Point P, uint64_t Key);

/// crashArmed() + crashExit() in one call — the plain boundary crash.
void maybeCrash(Point P, uint64_t Key);

/// Times \p P tripped since the last configure()/reset().
uint64_t tripCount(Point P);

/// Total trips across all points.
uint64_t totalTrips();

} // namespace fault
} // namespace seldon

#endif // SELDON_SUPPORT_FAULTINJECTION_H
