#!/usr/bin/env bash
# Full local check: the tier-1 build + tests, then a ThreadSanitizer build
# that runs the concurrency-sensitive tests (thread pool + metrics +
# parallel pipeline + fault injection), then CLI smoke runs: a metrics
# run that validates the --metrics-out JSON, a cache run, and a
# fault-injected run that must exit degraded (2) with health.* metrics
# and a spec byte-identical to a survivors-only run. Run from anywhere;
# builds land in build/ and build-tsan/.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo
echo "=== tsan: concurrency-sensitive tests under ThreadSanitizer ==="
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g"
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target threadpool_test metrics_test pipeline_parallel_test \
           compiled_objective_test cache_fault_test cache_pipeline_test \
           fault_pipeline_test
ctest --test-dir "$ROOT/build-tsan" --output-on-failure -j "$JOBS" \
  -R 'ThreadPoolTest|MetricsTest|TraceTest|MetricsPipelineTest|PipelineParallelTest|CompileTest|CompiledEquivalenceTest|CodecFaultTest|CacheFaultTest|CachePipelineTest|CacheStalenessTest|CacheDegradedTest|CacheKeyTest|FaultPipelineTest'

echo
echo "=== metrics smoke: seldon learn --metrics-out on a toy repo ==="
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
cat > "$SMOKE/app.py" <<'PY'
from flask import request
import flask

def greet():
    name = request.args.get('name')
    flask.make_response('<h1>' + name + '</h1>')

def safe():
    name = request.args.get('name')
    flask.make_response(flask.escape(name))
PY
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --metrics-out "$SMOKE/metrics.json" --out "$SMOKE/learned.spec" "$SMOKE"
python3 - "$SMOKE/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
if not m["enabled"]:
    sys.exit("FAIL: metrics snapshot reports enabled=false")
paths = {s["path"] for s in m["spans"]}
for stage in ("session/parse", "session/constraints", "session/solve"):
    if stage not in paths:
        sys.exit(f"FAIL: missing {stage} span")
for s in m["spans"]:
    if s["duration_seconds"] < 0:
        sys.exit(f"FAIL: span {s['path']} has negative duration")
for c in ("parse.files", "solve.iterations", "pointsto.solves"):
    if m["counters"].get(c, 0) <= 0:
        sys.exit(f"FAIL: counter {c} not populated")
for g in ("gen.constraints", "solver.rows_before", "solver.rows_after",
          "solve.final_objective"):
    if g not in m["gauges"]:
        sys.exit(f"FAIL: gauge {g} missing")
if m["gauges"]["solver.rows_after"] > m["gauges"]["solver.rows_before"]:
    sys.exit("FAIL: dedup grew the row count")
obj = m["series"].get("solve.objective", {"count": 0})
if obj["count"] == 0 or not obj["samples"]:
    sys.exit("FAIL: no solver convergence samples")
for t in ("parse.file_seconds", "build.project_seconds"):
    if m["timers"].get(t, {"count": 0})["count"] == 0:
        sys.exit(f"FAIL: timer {t} not populated")
print("OK: metrics snapshot has all expected stages, counters, gauges, "
      "timers, and convergence samples")
EOF

echo
echo "=== cache smoke: cold + warm seldon learn with --cache-dir ==="
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --cache-dir "$SMOKE/cache" --cache-stats \
  --out "$SMOKE/cold.spec" "$SMOKE"
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --cache-dir "$SMOKE/cache" --cache-stats \
  --metrics-out "$SMOKE/warm-metrics.json" \
  --out "$SMOKE/warm.spec" "$SMOKE"
cmp "$SMOKE/cold.spec" "$SMOKE/warm.spec" \
  || { echo "FAIL: warm-cache spec differs from cold run"; exit 1; }
python3 - "$SMOKE/warm-metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
hits = m["counters"].get("cache.hits", 0)
misses = m["counters"].get("cache.misses", 0)
if hits <= 0:
    sys.exit(f"FAIL: warm run recorded {hits} cache hits")
if misses != 0:
    sys.exit(f"FAIL: warm run recorded {misses} cache misses")
if m["counters"].get("cache.bytes_read", 0) <= 0:
    sys.exit("FAIL: warm run read no cache bytes")
if m["timers"].get("cache.load_seconds", {"count": 0})["count"] != hits:
    sys.exit("FAIL: cache.load_seconds count disagrees with cache.hits")
print(f"OK: warm run served {hits} project(s) from the graph cache, "
      "specs byte-identical")
EOF

echo
echo "=== fault smoke: SELDON_FAULT=parse:0 degrades but matches survivors ==="
mkdir -p "$SMOKE/p1" "$SMOKE/p2"
cp "$SMOKE/app.py" "$SMOKE/p1/app.py"
cp "$SMOKE/app.py" "$SMOKE/p2/app.py"
RC=0
SELDON_FAULT=parse:0 "$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 \
  --jobs 2 --metrics-out "$SMOKE/fault-metrics.json" \
  --out "$SMOKE/degraded.spec" "$SMOKE/p1" "$SMOKE/p2" || RC=$?
if [ "$RC" -ne 2 ]; then
  echo "FAIL: fault-injected run exited $RC, expected degraded exit code 2"
  exit 1
fi
"$ROOT/build/tools/seldon" learn --cutoff 1 --iters 100 --jobs 2 \
  --out "$SMOKE/survivor.spec" "$SMOKE/p2"
cmp "$SMOKE/degraded.spec" "$SMOKE/survivor.spec" \
  || { echo "FAIL: degraded spec differs from the survivors-only run"; exit 1; }
python3 - "$SMOKE/fault-metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    m = json.load(f)
if m["counters"].get("health.quarantined", 0) != 1:
    sys.exit("FAIL: expected exactly one quarantined project, got "
             f"{m['counters'].get('health.quarantined', 0)}")
if m["gauges"].get("health.status") != 1:
    sys.exit("FAIL: health.status gauge is not Degraded (1): "
             f"{m['gauges'].get('health.status')}")
if m["gauges"].get("health.deadline_expired") != 0:
    sys.exit("FAIL: deadline flagged on a fault-only run")
if m["gauges"].get("health.fault_trips", 0) < 1:
    sys.exit("FAIL: fault registry recorded no trips")
print("OK: parse fault quarantined one project, exit code 2, health.* "
      "metrics populated, spec byte-identical to the survivors-only run")
EOF

echo
echo "all checks passed"
