//===- taint/TaintAnalyzer.h - Taint-flow violation detection ----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The taint-analysis client of the propagation graph (paper §3.4, §7):
/// given a specification (seed and/or learned), it reports every
/// information flow from a source event to a sink event that does not pass
/// through a sanitizer event, with a witness path.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_TAINT_TAINTANALYZER_H
#define SELDON_TAINT_TAINTANALYZER_H

#include "propgraph/PropagationGraph.h"
#include "spec/LearnedSpec.h"
#include "spec/SeedSpec.h"

#include <vector>

namespace seldon {
namespace taint {

using propgraph::Event;
using propgraph::EventId;
using propgraph::PropagationGraph;
using propgraph::Role;

/// Decides event roles by combining an exact specification (seed entries,
/// matched against any representation option) with a learned specification
/// (scores with the 0.8^i backoff decay of §7.1).
class RoleResolver {
public:
  /// Either spec may be null. \p Threshold applies to learned scores.
  RoleResolver(const spec::TaintSpec *Exact, const spec::LearnedSpec *Learned,
               double Threshold = 0.1)
      : Exact(Exact), Learned(Learned), Threshold(Threshold) {}

  /// True if \p E holds role \p R under this resolver. Candidate masks are
  /// respected: an object read never becomes a sink even if its
  /// representation is sink-labeled elsewhere.
  bool hasRole(const Event &E, Role R) const;

private:
  const spec::TaintSpec *Exact;
  const spec::LearnedSpec *Learned;
  double Threshold;
};

/// One unsanitized source-to-sink flow.
struct Violation {
  EventId Source = propgraph::InvalidEvent;
  EventId Sink = propgraph::InvalidEvent;
  /// Witness path from Source to Sink (inclusive at both ends).
  std::vector<EventId> Path;
  uint32_t FileIdx = 0;
};

/// Taint analysis over a propagation graph.
class TaintAnalyzer {
public:
  explicit TaintAnalyzer(const PropagationGraph &Graph) : Graph(Graph) {}

  /// Finds all violations: one report per (source event, sink event) pair
  /// connected by at least one sanitizer-free path. Deterministic order
  /// (by source id, then discovery order).
  std::vector<Violation> analyze(const RoleResolver &Roles) const;

  /// Role masks the resolver assigns to every event (exposed for the
  /// evaluation of predicted-role precision on events).
  std::vector<propgraph::RoleMask>
  resolveRoles(const RoleResolver &Roles) const;

private:
  const PropagationGraph &Graph;
};

/// Projects (first path component of a file, e.g. "proj7" in
/// "proj7/app/views.py") affected by \p Violations.
size_t countAffectedProjects(const PropagationGraph &Graph,
                             const std::vector<Violation> &Violations);

} // namespace taint
} // namespace seldon

#endif // SELDON_TAINT_TAINTANALYZER_H
