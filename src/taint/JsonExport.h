//===- taint/JsonExport.h - Machine-readable report output -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// JSON serialization of taint reports for tool integration (CI gates,
/// dashboards — the push-button usage the paper describes for the deployed
/// system). The output is a single JSON object:
///
/// {
///   "reports": [
///     {
///       "file": "pkg/views.py",
///       "confidence": 0.75,
///       "source": {"rep": "...", "line": 12},
///       "sink":   {"rep": "...", "line": 19},
///       "path":   [{"rep": "...", "line": 12}, ...]
///     }, ...
///   ]
/// }
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_TAINT_JSONEXPORT_H
#define SELDON_TAINT_JSONEXPORT_H

#include "taint/TaintAnalyzer.h"

#include <string>
#include <vector>

namespace seldon {
namespace taint {

/// Serializes \p Reports. \p Confidences, when non-null, must be parallel
/// to \p Reports (as produced by rankViolations); otherwise the field is
/// omitted.
std::string reportsToJson(const PropagationGraph &Graph,
                          const std::vector<Violation> &Reports,
                          const std::vector<double> *Confidences = nullptr);

} // namespace taint
} // namespace seldon

#endif // SELDON_TAINT_JSONEXPORT_H
