# Empty dependencies file for seldon_support.
# This may be replaced when dependencies are built.
