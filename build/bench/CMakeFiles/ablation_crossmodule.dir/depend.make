# Empty dependencies file for ablation_crossmodule.
# This may be replaced when dependencies are built.
