//===- active/ActiveLearner.cpp - Query→pin→re-solve loop -----------------===//

#include "active/ActiveLearner.h"

#include "support/Metrics.h"

#include <algorithm>
#include <utility>

using namespace seldon;
using namespace seldon::active;

namespace {

/// The selected role set at the threshold, as a sorted key list (role
/// stability is about selections, not raw scores).
std::vector<std::string> selectedRoleKeys(const spec::LearnedSpec &Learned,
                                          double Threshold) {
  std::vector<std::string> Keys;
  for (int R = 0; R < propgraph::NumRoles; ++R)
    for (const auto &[Rep, Score] :
         Learned.ranked(static_cast<propgraph::Role>(R), Threshold)) {
      (void)Score;
      Keys.push_back(Rep + '\x1F' + static_cast<char>('0' + R));
    }
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

} // namespace

ActiveResult seldon::active::runActiveLoop(infer::Session &S,
                                           const spec::SeedSpec &Seed,
                                           Oracle &O,
                                           const ActiveOptions &Opts) {
  metrics::Registry &Reg = metrics::Registry::global();
  infer::PipelineOptions &P = S.options();
  const spec::LearnedSpec *SavedWarm = P.WarmStart;
  int SavedIterations = P.Solve.MaxIterations;

  ActiveResult Result;
  S.generateConstraints(Seed);
  Result.Final = S.solve(); // Round 0: the passive solve.

  const size_t NumVars = S.system().Vars.numVars();
  Result.Candidates = NumVars - S.system().Pinned.size();
  std::vector<uint8_t> Queried(NumVars, 0);
  std::vector<std::string> PrevRoles =
      selectedRoleKeys(Result.Final.Learned, Opts.Threshold);
  int Stable = 0;
  spec::LearnedSpec WarmCopy; // Keeps the borrowed WarmStart alive.

  for (int Round = 1; Round <= Opts.MaxRounds; ++Round) {
    size_t K = Opts.QueriesPerRound;
    if (Opts.MaxQueries) {
      if (Result.TotalQueries >= Opts.MaxQueries)
        break; // Budget stop, not convergence.
      K = std::min(K, Opts.MaxQueries - Result.TotalQueries);
    }
    std::vector<Candidate> Cands =
        rankUncertain(S.system(), S.reps(), Result.Final.Solve.X,
                      Opts.Threshold, K, Opts.UncertaintyBand, Queried);
    if (Cands.empty()) {
      Result.Converged = true; // Nothing uncertain left to ask about.
      break;
    }

    ActiveRoundStats RS;
    RS.Round = Round;
    for (const Candidate &C : Cands) {
      Queried[C.Var] = 1;
      OracleAnswer A = O.answer(C.Rep, C.R);
      Result.Transcript.push_back({C.Rep, C.R, A});
      ++Result.TotalQueries;
      ++RS.Queried;
      if (A == OracleAnswer::Unknown)
        continue;
      ++RS.Answered;
      bool Truth = A == OracleAnswer::Yes;
      S.pinVariable(C.Rep, C.R, Truth ? 1.0 : 0.0);
      ++Result.TotalPinned;
      if (Truth)
        ++RS.PinnedTrue;
      else
        ++RS.PinnedFalse;
    }

    // Re-solve with the new pins, warm-started from the previous round.
    WarmCopy = std::move(Result.Final.Learned);
    P.WarmStart = &WarmCopy;
    if (Opts.RoundIterations > 0)
      P.Solve.MaxIterations = Opts.RoundIterations;
    Result.Final = S.solve();
    RS.SolveSeconds = Result.Final.SolveSeconds;
    Result.Rounds.push_back(RS);

    if (Reg.enabled()) {
      Reg.counter("active.queries").add(RS.Queried);
      Reg.counter("active.answers").add(RS.Answered);
      Reg.counter("active.pins_true").add(RS.PinnedTrue);
      Reg.counter("active.pins_false").add(RS.PinnedFalse);
      Reg.timer("active.round_seconds").record(RS.SolveSeconds);
    }

    std::vector<std::string> Roles =
        selectedRoleKeys(Result.Final.Learned, Opts.Threshold);
    if (Opts.StableRounds > 0)
      Stable = Roles == PrevRoles ? Stable + 1 : 0;
    PrevRoles = std::move(Roles);
    if (Opts.StopWhen && Opts.StopWhen(Result.Final)) {
      Result.Converged = true;
      break;
    }
    if (Opts.StableRounds > 0 && Stable >= Opts.StableRounds) {
      Result.Converged = true;
      break;
    }
  }

  P.WarmStart = SavedWarm;
  P.Solve.MaxIterations = SavedIterations;
  if (Reg.enabled()) {
    Reg.gauge("active.rounds").set(static_cast<double>(Result.Rounds.size()));
    Reg.gauge("active.candidates")
        .set(static_cast<double>(Result.Candidates));
    Reg.gauge("active.pinned").set(static_cast<double>(Result.TotalPinned));
    Reg.gauge("active.converged").set(Result.Converged ? 1.0 : 0.0);
    Reg.gauge("active.queried_fraction")
        .set(Result.Candidates == 0
                 ? 0.0
                 : static_cast<double>(Result.TotalQueries) /
                       static_cast<double>(Result.Candidates));
  }
  return Result;
}
