//===- tests/corpus_test.cpp - Tests for the synthetic corpus -------------===//

#include "corpus/ApiUniverse.h"
#include "corpus/CorpusGenerator.h"
#include "propgraph/GraphBuilder.h"

#include <gtest/gtest.h>

#include <unordered_set>

using namespace seldon;
using namespace seldon::corpus;
using namespace seldon::propgraph;

namespace {

//===----------------------------------------------------------------------===//
// GroundTruth
//===----------------------------------------------------------------------===//

TEST(GroundTruthTest, BasicQueries) {
  GroundTruth T;
  T.add("a()", SourceMask, "xss");
  T.add("b()", SinkMask | SanitizerMask);
  EXPECT_TRUE(T.isTrue("a()", Role::Source));
  EXPECT_FALSE(T.isTrue("a()", Role::Sink));
  EXPECT_TRUE(T.isTrue("b()", Role::Sink));
  EXPECT_TRUE(T.isTrue("b()", Role::Sanitizer));
  EXPECT_FALSE(T.isTrue("c()", Role::Source));
  EXPECT_EQ(T.vulnClassOf("a()"), "xss");
  EXPECT_TRUE(T.vulnClassOf("b()").empty());
}

TEST(GroundTruthTest, AnyTrueOverBackoffOptions) {
  GroundTruth T;
  T.add("general()", SourceMask);
  EXPECT_TRUE(T.anyTrue({"specific()", "general()"}, Role::Source));
  EXPECT_FALSE(T.anyTrue({"specific()"}, Role::Source));
}

TEST(GroundTruthTest, RoleListsAreSortedAndComplete) {
  GroundTruth T;
  T.add("z()", SourceMask);
  T.add("a()", SourceMask | SinkMask);
  T.add("m()", SanitizerMask);
  const std::vector<std::string> &Sources = T.repsWithRole(Role::Source);
  ASSERT_EQ(Sources.size(), 2u);
  EXPECT_EQ(Sources[0], "a()");
  EXPECT_EQ(Sources[1], "z()");
  EXPECT_EQ(T.countWithRole(Role::Sanitizer), 1u);
  EXPECT_EQ(T.countWithRole(Role::Sink), 1u);
}

TEST(GroundTruthTest, RoleListsAreDerivedOncePerCorpus) {
  GroundTruth T;
  T.add("a()", SourceMask);
  T.add("b()", SinkMask);
  EXPECT_EQ(T.derivations(), 0u); // Lazy: nothing derived until asked.
  for (int I = 0; I < 10; ++I) {
    T.repsWithRole(Role::Source);
    T.countWithRole(Role::Sink);
    T.countWithRole(Role::Sanitizer);
  }
  EXPECT_EQ(T.derivations(), 1u)
      << "repeated role queries must hit the memo, not re-derive";
  // A mutation invalidates the memo; the next query re-derives once.
  T.add("c()", SanitizerMask);
  EXPECT_EQ(T.repsWithRole(Role::Sanitizer).size(), 1u);
  EXPECT_EQ(T.countWithRole(Role::Source), 1u);
  EXPECT_EQ(T.derivations(), 2u);
}

//===----------------------------------------------------------------------===//
// ApiUniverse
//===----------------------------------------------------------------------===//

TEST(ApiUniverseTest, StandardUniverseShape) {
  ApiUniverse U = ApiUniverse::standard();
  EXPECT_GT(U.sources().size(), 100u);
  EXPECT_GT(U.sanitizers().size(), 100u);
  EXPECT_GT(U.sinks().size(), 100u);
  EXPECT_GT(U.neutrals().size(), 200u);
}

TEST(ApiUniverseTest, SeedIsSmallSubset) {
  ApiUniverse U = ApiUniverse::standard();
  spec::SeedSpec Seed = U.seedSpec();
  size_t SeedEntries = Seed.Spec.size();
  size_t AllRoleApis =
      U.sources().size() + U.sanitizers().size() + U.sinks().size();
  EXPECT_GT(SeedEntries, 10u);
  EXPECT_LT(SeedEntries * 5, AllRoleApis)
      << "the seed must label only a small fraction of role APIs";
  EXPECT_GT(Seed.Blacklist.size(), 10u);
}

TEST(ApiUniverseTest, ClassFilteredPools) {
  ApiUniverse U = ApiUniverse::standard();
  for (const std::string &Cls : ApiUniverse::vulnClasses()) {
    EXPECT_FALSE(U.sanitizersOf(Cls).empty()) << Cls;
    EXPECT_FALSE(U.sinksOf(Cls).empty()) << Cls;
  }
}

TEST(ApiUniverseTest, GroundTruthCoversAllRoleApis) {
  ApiUniverse U = ApiUniverse::standard();
  GroundTruth T = U.groundTruth();
  for (const ApiInfo &A : U.sources())
    EXPECT_TRUE(T.isTrue(A.Rep, Role::Source)) << A.Rep;
  for (const ApiInfo &A : U.sinks())
    EXPECT_TRUE(T.isTrue(A.Rep, Role::Sink)) << A.Rep;
  for (const ApiInfo &A : U.neutrals())
    EXPECT_EQ(T.rolesOf(A.Rep), 0) << A.Rep;
}

TEST(ApiUniverseTest, DeclaredRepsMatchGraphBuilderRendering) {
  // Critical consistency property: for every API, the representation the
  // universe declares must be exactly what the graph builder renders for
  // the API's expression — otherwise seeds and ground truth would not
  // match any event.
  ApiUniverse U = ApiUniverse::standard();
  auto CheckApi = [&](const ApiInfo &A) {
    std::string Source;
    if (!A.Import.empty())
      Source += A.Import + "\n";
    std::string Expr = A.Expr;
    size_t Slot = Expr.find("{}");
    if (Slot != std::string::npos)
      Expr.replace(Slot, 2, "payload");
    Source += "probe = " + Expr + "\n";

    pysem::Project Proj;
    const pysem::ModuleInfo &M = Proj.addModule("probe.py", Source);
    ASSERT_TRUE(M.Errors.empty()) << A.Rep << ": " << Source;
    PropagationGraph G = buildModuleGraph(Proj, M);
    bool Found = false;
    for (const Event &E : G.events())
      Found |= E.primaryRep() == A.Rep;
    EXPECT_TRUE(Found) << "no event with rep '" << A.Rep
                       << "' for source:\n"
                       << Source;
  };
  // Hand-written core APIs (the procedural tail shares its shape with the
  // first few, so checking a prefix of each pool suffices).
  for (size_t I = 0; I < U.sources().size() && I < 15; ++I)
    CheckApi(U.sources()[I]);
  for (size_t I = 0; I < U.sanitizers().size() && I < 15; ++I)
    CheckApi(U.sanitizers()[I]);
  for (size_t I = 0; I < U.sinks().size() && I < 15; ++I)
    CheckApi(U.sinks()[I]);
  // And a slice of the procedural tail.
  CheckApi(U.sources().back());
  CheckApi(U.sanitizers().back());
  CheckApi(U.sinks().back());
  CheckApi(U.neutrals().back());
}

TEST(TaintSlotSuffixTest, PositionalAndKeywordSlots) {
  EXPECT_EQ(taintSlotSuffix("flask.redirect({})").value_or(""), "[arg0]");
  EXPECT_EQ(taintSlotSuffix("flask.send_from_directory(ROOT, {})")
                .value_or(""),
            "[arg1]");
  EXPECT_EQ(taintSlotSuffix("os.system('convert ' + {})").value_or(""),
            "[arg0]");
  EXPECT_EQ(
      taintSlotSuffix("flask.render_template('page.html', data={})")
          .value_or(""),
      "[kw:data]");
  EXPECT_EQ(taintSlotSuffix(
                "sqlite3.connect(DB).cursor().execute('SELECT ' + {})")
                .value_or(""),
            "[arg0]");
}

TEST(TaintSlotSuffixTest, NoSlot) {
  EXPECT_FALSE(taintSlotSuffix("flask.url_for('index')").has_value());
  EXPECT_FALSE(taintSlotSuffix("{} + 1").has_value()) << "slot outside call";
}

TEST(TaintSlotSuffixTest, AllUniverseSinksHaveSlots) {
  ApiUniverse U = ApiUniverse::standard();
  for (const ApiInfo &A : U.sinks())
    EXPECT_TRUE(taintSlotSuffix(A.Expr).has_value()) << A.Rep;
  for (const ApiInfo &A : U.sanitizers())
    EXPECT_TRUE(taintSlotSuffix(A.Expr).has_value()) << A.Rep;
}

//===----------------------------------------------------------------------===//
// Corpus generation
//===----------------------------------------------------------------------===//

CorpusOptions smallOptions() {
  CorpusOptions Opts;
  Opts.NumProjects = 12;
  Opts.Seed = 7;
  return Opts;
}

TEST(CorpusGeneratorTest, Deterministic) {
  Corpus A = generateCorpus(smallOptions());
  Corpus B = generateCorpus(smallOptions());
  ASSERT_EQ(A.Projects.size(), B.Projects.size());
  ASSERT_EQ(A.NumFiles, B.NumFiles);
  for (size_t P = 0; P < A.Projects.size(); ++P) {
    const auto &MA = A.Projects[P].modules();
    const auto &MB = B.Projects[P].modules();
    ASSERT_EQ(MA.size(), MB.size());
    for (size_t F = 0; F < MA.size(); ++F)
      EXPECT_EQ(MA[F].Path, MB[F].Path);
  }
  EXPECT_EQ(A.Flows.size(), B.Flows.size());
}

TEST(CorpusGeneratorTest, DifferentSeedsDiffer) {
  CorpusOptions O1 = smallOptions(), O2 = smallOptions();
  O2.Seed = 99;
  Corpus A = generateCorpus(O1);
  Corpus B = generateCorpus(O2);
  EXPECT_NE(A.TotalLines, B.TotalLines);
}

TEST(CorpusGeneratorTest, GeneratedFilesParseCleanly) {
  Corpus C = generateCorpus(smallOptions());
  EXPECT_GT(C.NumFiles, 0u);
  for (const pysem::Project &P : C.Projects)
    EXPECT_EQ(P.numErrors(), 0u) << "project " << P.name();
}

TEST(CorpusGeneratorTest, FlowMixPresent) {
  CorpusOptions Opts = smallOptions();
  Opts.NumProjects = 40;
  Corpus C = generateCorpus(Opts);
  size_t Sanitized = 0, Vulnerable = 0, WrongParam = 0, NonExploit = 0;
  for (const GeneratedFlow &F : C.Flows) {
    Sanitized += F.Sanitized;
    Vulnerable += !F.Sanitized && !F.WrongParam && F.Exploitable;
    WrongParam += F.WrongParam;
    NonExploit += !F.Sanitized && !F.WrongParam && !F.Exploitable;
  }
  EXPECT_GT(Sanitized, 0u);
  EXPECT_GT(Vulnerable, 0u);
  EXPECT_GT(WrongParam, 0u);
  EXPECT_GT(NonExploit, 0u);
}

TEST(CorpusGeneratorTest, FlowRecordsMatchGraphEvents) {
  // Every recorded flow endpoint must exist as an event representation in
  // the built graph of its file.
  CorpusOptions Opts = smallOptions();
  Opts.NumProjects = 4;
  Corpus C = generateCorpus(Opts);
  for (const pysem::Project &P : C.Projects) {
    PropagationGraph G = buildProjectGraph(P);
    std::unordered_set<std::string> RepsByFile;
    for (const Event &E : G.events())
      for (const std::string &R : E.Reps)
        RepsByFile.insert(G.fileOf(E) + "|" + R);
    for (const GeneratedFlow &F : C.Flows) {
      bool InProject = false;
      for (const pysem::ModuleInfo &M : P.modules())
        InProject |= M.Path == F.File;
      if (!InProject)
        continue;
      EXPECT_TRUE(RepsByFile.count(F.File + "|" + F.SrcRep))
          << "missing source event " << F.SrcRep << " in " << F.File;
      EXPECT_TRUE(RepsByFile.count(F.File + "|" + F.SnkRep))
          << "missing sink event " << F.SnkRep << " in " << F.File;
    }
  }
}

TEST(CorpusGeneratorTest, WrapperSanitizersRegisteredInTruth) {
  CorpusOptions Opts = smallOptions();
  Opts.NumProjects = 30;
  Opts.PWrapperSanitizer = 1.0;
  Corpus C = generateCorpus(Opts);
  bool AnyWrapper = false;
  for (const char *W : {"sanitize_input()", "clean_value()", "escape_data()",
                        "normalize_field()", "filter_payload()"})
    AnyWrapper |= C.Truth.isTrue(W, Role::Sanitizer);
  EXPECT_TRUE(AnyWrapper);
}

TEST(CorpusGeneratorTest, ParamHandlerSourcesRegistered) {
  CorpusOptions Opts = smallOptions();
  Opts.NumProjects = 40;
  Opts.PParamHandler = 1.0;
  Opts.PSanitized = Opts.PVulnerable = Opts.PWrongParam = 0.0;
  Corpus C = generateCorpus(Opts);
  EXPECT_TRUE(C.Truth.isTrue("view_profile(param username)", Role::Source) ||
              C.Truth.isTrue("search_items(param query)", Role::Source));
}

TEST(CorpusGeneratorTest, SharedUtilsModuleEmittedAndRegistered) {
  CorpusOptions Opts = smallOptions();
  Opts.NumProjects = 30;
  Opts.PUtilsSanitizer = 1.0; // Every sanitized flow goes through utils.
  Corpus C = generateCorpus(Opts);
  size_t UtilsFiles = 0;
  for (const pysem::Project &P : C.Projects)
    for (const pysem::ModuleInfo &M : P.modules())
      UtilsFiles += M.Path.find("utils.py") != std::string::npos;
  EXPECT_GT(UtilsFiles, 0u);
  bool AnyTruth = false;
  for (const char *W :
       {"utils.sanitize_input()", "utils.clean_value()",
        "utils.escape_data()", "utils.normalize_field()",
        "utils.filter_payload()"})
    AnyTruth |= C.Truth.isTrue(W, Role::Sanitizer);
  EXPECT_TRUE(AnyTruth);
  // Projects without utils usage get no utils.py.
  CorpusOptions NoUtils = smallOptions();
  NoUtils.PUtilsSanitizer = 0.0;
  Corpus C2 = generateCorpus(NoUtils);
  for (const pysem::Project &P : C2.Projects)
    for (const pysem::ModuleInfo &M : P.modules())
      EXPECT_EQ(M.Path.find("utils.py"), std::string::npos);
}

TEST(CorpusGeneratorTest, SingleProjectSizing) {
  ApiUniverse U = ApiUniverse::standard();
  pysem::Project Small = generateSingleProject(U, 1, 2, 6, "small");
  pysem::Project Large = generateSingleProject(U, 2, 20, 8, "large");
  EXPECT_EQ(Small.modules().size(), 2u);
  EXPECT_EQ(Large.modules().size(), 20u);
  EXPECT_EQ(Small.numErrors(), 0u);
  EXPECT_EQ(Large.numErrors(), 0u);
}

TEST(CorpusGeneratorTest, LineCountTracked) {
  Corpus C = generateCorpus(smallOptions());
  EXPECT_GT(C.TotalLines, 100u);
}

} // namespace
