//===- bench/ablation_collapsed.cpp - §6.4 graph-granularity ablation -----===//
//
// The paper notes that Merlin's collapsed (vertex-contracted) propagation
// graph, while unsound for taint analysis (Fig. 8), "can still be used for
// specification learning" (§6.4). This ablation runs Seldon's linear
// inference over both granularities of the same corpus and compares
// prediction counts, precision, and constraint-system size.
//
// Expected shape: collapsing merges all occurrences of a representation
// into one node, so constraints couple APIs that never interact in any
// single program. The constraint system inflates by an order of magnitude
// (every anchor sees the union of all programs' neighbours), learning
// slows down accordingly, and the wide right-hand-side sums let the
// optimizer satisfy constraints by spreading tiny scores across many
// candidates — fewer predictions clear the selection threshold.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using propgraph::Role;

int main() {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  std::cout << "=== Ablation: learning on uncollapsed vs collapsed "
               "propagation graphs (§6.4) ===\n\n";
  TablePrinter Table({"Graph", "# Constraints", "# Predicted", "# Correct",
                      "Precision", "Learning time (s)"});

  for (bool Collapse : {false, true}) {
    infer::PipelineOptions Opts = standardPipelineOptions();
    Opts.CollapseForLearning = Collapse;
    infer::Session S(Opts);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    infer::PipelineResult R = S.solve();

    size_t Predicted = 0, Correct = 0;
    for (Role Ro : {Role::Source, Role::Sanitizer, Role::Sink}) {
      RolePrecision P = exactPrecision(R.Learned, Data.Truth, Data.Seed, Ro,
                                       ScoreThreshold);
      Predicted += P.Predicted;
      Correct += P.Correct;
    }
    Table.addRow({Collapse ? "Collapsed" : "Uncollapsed (paper)",
                  std::to_string(R.System.Constraints.size()),
                  std::to_string(Predicted), std::to_string(Correct),
                  Predicted ? percent(static_cast<double>(Correct) /
                                      Predicted)
                            : "n/a",
                  formatString("%.2f", R.inferenceSeconds())});
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: contraction inflates the constraint "
               "system by ~10x and slows learning;\nits wide sums dilute "
               "scores, so fewer predictions clear the threshold. The "
               "paper\nlearns on the uncollapsed graph and keeps "
               "contraction for the Merlin baseline (§6.4).\n";
  return 0;
}
