# Empty dependencies file for table3_merlin_precision.
# This may be replaced when dependencies are built.
