//===- pointsto/AndersenSolver.h - Inclusion-based points-to -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Andersen-style (inclusion-based) points-to solver (paper §5.2,
/// following Smaragdakis & Balatsouras). Constraint kinds:
///
///   alloc  v ⊇ {o}         — v may point to abstract object o
///   copy   d ⊇ s           — everything s points to, d may point to
///   store  base.f ⊇ s      — for every o ∈ pts(base): fld(o,f) ⊇ pts(s)
///   load   d ⊇ base.f      — for every o ∈ pts(base): d ⊇ fld(o,f)
///
/// The solver is field-sensitive: each (object, field) pair owns a separate
/// points-to set, materialized lazily as an auxiliary variable node. The
/// classic worklist algorithm runs to a fixed point.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_POINTSTO_ANDERSENSOLVER_H
#define SELDON_POINTSTO_ANDERSENSOLVER_H

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace seldon {
namespace pointsto {

using VarId = uint32_t;
using ObjId = uint32_t;

/// Inclusion-based points-to constraint solver.
class AndersenSolver {
public:
  /// Creates a fresh variable node. \p Name is kept for debugging only.
  VarId makeVar(std::string Name);

  /// Creates a fresh abstract object (allocation site).
  ObjId makeObj(std::string Label);

  /// Constraint: \p V may point to \p O.
  void addAlloc(VarId V, ObjId O);

  /// Constraint: pts(\p Dst) ⊇ pts(\p Src).
  void addCopy(VarId Dst, VarId Src);

  /// Constraint: for every o ∈ pts(\p Base), fld(o, \p Field) ⊇ pts(\p Src).
  void addStore(VarId Base, const std::string &Field, VarId Src);

  /// Constraint: for every o ∈ pts(\p Base), pts(\p Dst) ⊇ fld(o, \p Field).
  void addLoad(VarId Dst, VarId Base, const std::string &Field);

  /// Runs the worklist algorithm to a fixed point. Safe to call repeatedly;
  /// constraints added after a solve are picked up by the next solve.
  void solve();

  /// Points-to set of \p V (valid after solve()).
  const std::set<ObjId> &pointsTo(VarId V) const;

  /// Points-to set of field \p Field of object \p O (valid after solve()).
  /// Returns an empty set if the field was never stored to.
  const std::set<ObjId> &fieldPointsTo(ObjId O, const std::string &Field) const;

  /// True if the points-to sets of \p A and \p B intersect (after solve()).
  bool mayAlias(VarId A, VarId B) const;

  size_t numVars() const { return Vars.size(); }
  size_t numObjs() const { return ObjLabels.size(); }
  const std::string &varName(VarId V) const { return Vars[V].Name; }
  const std::string &objLabel(ObjId O) const { return ObjLabels[O]; }

private:
  struct VarNode {
    std::string Name;
    std::set<ObjId> Pts;
    std::set<VarId> CopyTo; ///< Subset edges out of this node.
    /// Pending complex constraints keyed by field name.
    std::vector<std::pair<std::string, VarId>> Stores; ///< base.f ⊇ src
    std::vector<std::pair<std::string, VarId>> Loads;  ///< dst ⊇ base.f
  };

  /// Returns (creating on demand) the variable node representing
  /// fld(\p O, \p Field).
  VarId fieldVar(ObjId O, const std::string &Field);

  /// Adds \p O to pts(\p V); pushes \p V on the worklist when it grows.
  void addToPts(VarId V, ObjId O);

  std::vector<VarNode> Vars;
  std::vector<std::string> ObjLabels;
  std::map<std::pair<ObjId, std::string>, VarId> FieldVars;
  std::vector<VarId> Worklist;
  /// Tracks which (object) entries each var already dispatched complex
  /// constraints for, to keep solve() idempotent and incremental.
  std::vector<std::set<ObjId>> Dispatched;
  static const std::set<ObjId> EmptySet;
};

} // namespace pointsto
} // namespace seldon

#endif // SELDON_POINTSTO_ANDERSENSOLVER_H
