file(REMOVE_RECURSE
  "CMakeFiles/compare_merlin.dir/compare_merlin.cpp.o"
  "CMakeFiles/compare_merlin.dir/compare_merlin.cpp.o.d"
  "compare_merlin"
  "compare_merlin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compare_merlin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
