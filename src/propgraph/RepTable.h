//===- propgraph/RepTable.h - Global representation table --------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns event representations across the whole corpus, counts their
/// occurrences, and computes each event's backoff set Reps(v) (paper §4.3):
/// representation options that occur fewer than the cutoff number of times
/// (5 in the paper) are dropped; an event whose every option is infrequent
/// is ignored entirely.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PROPGRAPH_REPTABLE_H
#define SELDON_PROPGRAPH_REPTABLE_H

#include "propgraph/PropagationGraph.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace propgraph {

/// Dense id of an interned representation string.
using RepId = uint32_t;

/// Corpus-wide interning and frequency table of representations.
class RepTable {
public:
  /// Interns \p Rep (without counting an occurrence).
  RepId intern(const std::string &Rep);

  /// Counts every representation option of every event in \p Graph.
  /// Call once per (global) graph.
  void countOccurrences(const PropagationGraph &Graph);

  /// Occurrences of \p Id recorded by countOccurrences.
  size_t occurrences(RepId Id) const { return Counts[Id]; }

  /// The backoff set Reps(v) for \p E: ids of its representation options
  /// whose occurrence count is at least \p Cutoff, ordered most to least
  /// specific. Empty result means the event should be ignored (§4.3).
  std::vector<RepId> backoffOptions(const Event &E, size_t Cutoff) const;

  const std::string &repString(RepId Id) const { return Strings[Id]; }
  size_t size() const { return Strings.size(); }

  /// Looks up an already-interned representation; returns true and sets
  /// \p IdOut on success.
  bool lookup(const std::string &Rep, RepId &IdOut) const;

private:
  std::unordered_map<std::string, RepId> Ids;
  std::vector<std::string> Strings;
  std::vector<size_t> Counts;
};

} // namespace propgraph
} // namespace seldon

#endif // SELDON_PROPGRAPH_REPTABLE_H
