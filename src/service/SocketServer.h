//===- service/SocketServer.h - Unix-socket transport ------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The local transport for `seldond`: a Unix domain stream socket carrying
/// the line-delimited protocol of service/Protocol.h. Each accepted
/// connection gets a reader thread that frames request lines, admits them
/// against the Service's in-flight gate, and executes them on the shared
/// ThreadPool; responses are written back on the connection in request
/// order (per connection), while separate connections proceed
/// concurrently. A `shutdown` request drains the server: the accept loop
/// wakes, in-flight requests finish, and run() returns.
///
/// SocketClient is the matching test-side helper: connect, send a line,
/// read a line.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_SOCKETSERVER_H
#define SELDON_SERVICE_SOCKETSERVER_H

#include <atomic>
#include <mutex>
#include <set>
#include <string>

namespace seldon {

class ThreadPool;

namespace service {

class Service;

/// Serves \p Svc over a Unix domain socket at \p SocketPath.
class SocketServer {
public:
  /// \p Pool executes admitted requests; borrowed, must outlive run().
  SocketServer(Service &Svc, ThreadPool &Pool, std::string SocketPath);
  ~SocketServer();

  SocketServer(const SocketServer &) = delete;
  SocketServer &operator=(const SocketServer &) = delete;

  /// Binds and listens. Returns false with a diagnostic in \p Error when
  /// the path is unusable (exists and is live, wrong permissions, too
  /// long for sockaddr_un).
  bool listen(std::string &Error);

  /// Accepts and serves connections until stop() is called or the
  /// Service starts shutting down. Blocks; returns the number of
  /// connections served.
  size_t run();

  /// Wakes the accept loop and begins draining. Safe from any thread and
  /// from signal-ish contexts (one write to an atomic plus a socket
  /// shutdown).
  void stop();

  const std::string &socketPath() const { return Path; }

private:
  void serveConnection(int Fd);

  Service &Svc;
  ThreadPool &Pool;
  std::string Path;
  int ListenFd = -1;
  std::atomic<bool> Stopping{false};
  std::atomic<size_t> Served{0};
  /// Live connection fds, so a drain can shut them down: a stop() with
  /// an idle client parked in recv() must not hang the join in run().
  std::mutex LiveMutex;
  std::set<int> LiveFds;
};

/// Minimal blocking client for tests and scripts: one connection, one
/// line out, one line back.
class SocketClient {
public:
  SocketClient() = default;
  ~SocketClient();

  SocketClient(const SocketClient &) = delete;
  SocketClient &operator=(const SocketClient &) = delete;

  /// Connects to the server socket at \p SocketPath.
  bool connect(const std::string &SocketPath, std::string &Error);

  /// Sends \p Line (a newline is appended).
  bool sendLine(const std::string &Line);

  /// Reads one newline-terminated response (newline stripped). False on
  /// EOF or error.
  bool recvLine(std::string &Out);

  /// sendLine + recvLine.
  bool roundTrip(const std::string &Line, std::string &Response);

  void close();

private:
  int Fd = -1;
  std::string Buffer;
};

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_SOCKETSERVER_H
