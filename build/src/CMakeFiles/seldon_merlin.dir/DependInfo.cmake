
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/merlin/FactorGraph.cpp" "src/CMakeFiles/seldon_merlin.dir/merlin/FactorGraph.cpp.o" "gcc" "src/CMakeFiles/seldon_merlin.dir/merlin/FactorGraph.cpp.o.d"
  "/root/repo/src/merlin/GibbsSampler.cpp" "src/CMakeFiles/seldon_merlin.dir/merlin/GibbsSampler.cpp.o" "gcc" "src/CMakeFiles/seldon_merlin.dir/merlin/GibbsSampler.cpp.o.d"
  "/root/repo/src/merlin/LoopyBeliefPropagation.cpp" "src/CMakeFiles/seldon_merlin.dir/merlin/LoopyBeliefPropagation.cpp.o" "gcc" "src/CMakeFiles/seldon_merlin.dir/merlin/LoopyBeliefPropagation.cpp.o.d"
  "/root/repo/src/merlin/MerlinConstraints.cpp" "src/CMakeFiles/seldon_merlin.dir/merlin/MerlinConstraints.cpp.o" "gcc" "src/CMakeFiles/seldon_merlin.dir/merlin/MerlinConstraints.cpp.o.d"
  "/root/repo/src/merlin/MerlinPipeline.cpp" "src/CMakeFiles/seldon_merlin.dir/merlin/MerlinPipeline.cpp.o" "gcc" "src/CMakeFiles/seldon_merlin.dir/merlin/MerlinPipeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seldon_spec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_propgraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pointsto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pysem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pyast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
