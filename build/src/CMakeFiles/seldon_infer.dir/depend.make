# Empty dependencies file for seldon_infer.
# This may be replaced when dependencies are built.
