file(REMOVE_RECURSE
  "CMakeFiles/seldon_constraints.dir/constraints/ConstraintGen.cpp.o"
  "CMakeFiles/seldon_constraints.dir/constraints/ConstraintGen.cpp.o.d"
  "CMakeFiles/seldon_constraints.dir/constraints/ConstraintSystem.cpp.o"
  "CMakeFiles/seldon_constraints.dir/constraints/ConstraintSystem.cpp.o.d"
  "CMakeFiles/seldon_constraints.dir/constraints/Explain.cpp.o"
  "CMakeFiles/seldon_constraints.dir/constraints/Explain.cpp.o.d"
  "CMakeFiles/seldon_constraints.dir/constraints/VarTable.cpp.o"
  "CMakeFiles/seldon_constraints.dir/constraints/VarTable.cpp.o.d"
  "libseldon_constraints.a"
  "libseldon_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
