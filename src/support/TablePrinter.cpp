//===- support/TablePrinter.cpp - Aligned console tables ------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cassert>

using namespace seldon;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() <= Headers.size() && "row has more cells than headers");
  Cells.resize(Headers.size());
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::ostream &OS) const {
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C < Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C) {
      OS << Cells[C];
      if (C + 1 == Cells.size())
        break;
      OS << std::string(Widths[C] - Cells[C].size() + 2, ' ');
    }
    OS << '\n';
  };

  PrintRow(Headers);
  size_t Total = 0;
  for (size_t C = 0; C < Widths.size(); ++C)
    Total += Widths[C] + (C + 1 == Widths.size() ? 0 : 2);
  OS << std::string(Total, '-') << '\n';
  for (const auto &Row : Rows)
    PrintRow(Row);
}
