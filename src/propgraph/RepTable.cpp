//===- propgraph/RepTable.cpp - Global representation table ---------------===//

#include "propgraph/RepTable.h"

using namespace seldon;
using namespace seldon::propgraph;

RepId RepTable::intern(const std::string &Rep) {
  auto It = Ids.find(Rep);
  if (It != Ids.end())
    return It->second;
  RepId Id = static_cast<RepId>(Strings.size());
  Ids.emplace(Rep, Id);
  Strings.push_back(Rep);
  Counts.push_back(0);
  return Id;
}

void RepTable::countOccurrences(const PropagationGraph &Graph) {
  for (const Event &E : Graph.events())
    for (const std::string &Rep : E.Reps)
      ++Counts[intern(Rep)];
}

std::vector<RepId> RepTable::backoffOptions(const Event &E,
                                            size_t Cutoff) const {
  std::vector<RepId> Out;
  for (const std::string &Rep : E.Reps) {
    auto It = Ids.find(Rep);
    if (It == Ids.end())
      continue;
    if (Counts[It->second] >= Cutoff)
      Out.push_back(It->second);
  }
  return Out;
}

bool RepTable::lookup(const std::string &Rep, RepId &IdOut) const {
  auto It = Ids.find(Rep);
  if (It == Ids.end())
    return false;
  IdOut = It->second;
  return true;
}
