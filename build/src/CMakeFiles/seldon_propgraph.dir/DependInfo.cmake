
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/propgraph/Event.cpp" "src/CMakeFiles/seldon_propgraph.dir/propgraph/Event.cpp.o" "gcc" "src/CMakeFiles/seldon_propgraph.dir/propgraph/Event.cpp.o.d"
  "/root/repo/src/propgraph/GraphBuilder.cpp" "src/CMakeFiles/seldon_propgraph.dir/propgraph/GraphBuilder.cpp.o" "gcc" "src/CMakeFiles/seldon_propgraph.dir/propgraph/GraphBuilder.cpp.o.d"
  "/root/repo/src/propgraph/GraphExport.cpp" "src/CMakeFiles/seldon_propgraph.dir/propgraph/GraphExport.cpp.o" "gcc" "src/CMakeFiles/seldon_propgraph.dir/propgraph/GraphExport.cpp.o.d"
  "/root/repo/src/propgraph/GraphStats.cpp" "src/CMakeFiles/seldon_propgraph.dir/propgraph/GraphStats.cpp.o" "gcc" "src/CMakeFiles/seldon_propgraph.dir/propgraph/GraphStats.cpp.o.d"
  "/root/repo/src/propgraph/PropagationGraph.cpp" "src/CMakeFiles/seldon_propgraph.dir/propgraph/PropagationGraph.cpp.o" "gcc" "src/CMakeFiles/seldon_propgraph.dir/propgraph/PropagationGraph.cpp.o.d"
  "/root/repo/src/propgraph/RepTable.cpp" "src/CMakeFiles/seldon_propgraph.dir/propgraph/RepTable.cpp.o" "gcc" "src/CMakeFiles/seldon_propgraph.dir/propgraph/RepTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/seldon_pointsto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pysem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_pyast.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/seldon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
