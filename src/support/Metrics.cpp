//===- support/Metrics.cpp - Counters, gauges, timers, series -------------===//

#include "support/Metrics.h"

#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <sstream>

using namespace seldon;
using namespace seldon::metrics;

namespace {

/// CAS-loop atomic add for doubles (std::atomic<double>::fetch_add is
/// C++20 but spelled out here so the memory orders are explicit).
void atomicAdd(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (!A.compare_exchange_weak(Cur, Cur + V,
                                  std::memory_order_relaxed))
    ;
}

void atomicMin(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (V < Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

void atomicMax(std::atomic<double> &A, double V) {
  double Cur = A.load(std::memory_order_relaxed);
  while (V > Cur &&
         !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed))
    ;
}

/// Compact numeric rendering that is always valid JSON (no inf/nan).
std::string jsonNumber(double V) {
  if (!(V == V) || V > 1e300 || V < -1e300)
    return "0";
  std::string S = formatString("%.9g", V);
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// TimerStat
//===----------------------------------------------------------------------===//

void TimerStat::record(double Seconds) {
  if (!Enabled->load(std::memory_order_relaxed))
    return;
  // First sample initializes min/max: CAS the count from 0 is racy to
  // detect, so min/max use sentinel-free CAS loops against a published
  // first value. Count is bumped last so readers seeing Count > 0 see a
  // valid min/max (ordering is best-effort; snapshots are advisory).
  uint64_t Prev = Count.fetch_add(1, std::memory_order_relaxed);
  atomicAdd(Sum, Seconds);
  if (Prev == 0) {
    // Publish the first sample; racing records fix it up below.
    double Zero = 0.0;
    Min.compare_exchange_strong(Zero, Seconds, std::memory_order_relaxed);
    Zero = 0.0;
    Max.compare_exchange_strong(Zero, Seconds, std::memory_order_relaxed);
  }
  atomicMin(Min, Seconds);
  atomicMax(Max, Seconds);
}

double TimerStat::minSeconds() const {
  return count() == 0 ? 0.0 : Min.load(std::memory_order_relaxed);
}

double TimerStat::maxSeconds() const {
  return count() == 0 ? 0.0 : Max.load(std::memory_order_relaxed);
}

void TimerStat::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0.0, std::memory_order_relaxed);
  Min.store(0.0, std::memory_order_relaxed);
  Max.store(0.0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Series
//===----------------------------------------------------------------------===//

void Series::record(double V) {
  if (!Enabled->load(std::memory_order_relaxed))
    return;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Total % Stride == 0) {
    Samples.push_back(V);
    if (Samples.size() >= Capacity) {
      // Decimate: keep every other stored sample, double the stride. The
      // survivors stay uniformly spaced at the new stride.
      size_t Out = 0;
      for (size_t I = 0; I < Samples.size(); I += 2)
        Samples[Out++] = Samples[I];
      Samples.resize(Out);
      Stride *= 2;
    }
  }
  ++Total;
}

uint64_t Series::total() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Total;
}

uint64_t Series::stride() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stride;
}

std::vector<double> Series::samples() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Samples;
}

void Series::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Samples.clear();
  Stride = 1;
  Total = 0;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Counter &Registry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters
             .emplace(std::string(Name),
                      std::unique_ptr<Counter>(new Counter(&Enabled)))
             .first;
  return *It->second;
}

Gauge &Registry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges
             .emplace(std::string(Name),
                      std::unique_ptr<Gauge>(new Gauge(&Enabled)))
             .first;
  return *It->second;
}

TimerStat &Registry::timer(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Timers.find(Name);
  if (It == Timers.end())
    It = Timers
             .emplace(std::string(Name),
                      std::unique_ptr<TimerStat>(new TimerStat(&Enabled)))
             .first;
  return *It->second;
}

Series &Registry::series(std::string_view Name, size_t Capacity) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = AllSeries.find(Name);
  if (It == AllSeries.end())
    It = AllSeries
             .emplace(std::string(Name), std::unique_ptr<Series>(
                                             new Series(&Enabled, Capacity)))
             .first;
  return *It->second;
}

void Registry::recordSpan(std::string Path, double StartSeconds,
                          double DurationSeconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Spans.push_back(
      SpanRecord{std::move(Path), StartSeconds, DurationSeconds});
}

std::vector<SpanRecord> Registry::spans() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Spans;
}

double Registry::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Epoch)
      .count();
}

void Registry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, T] : Timers)
    T->reset();
  for (auto &[Name, S] : AllSeries)
    S->reset();
  Spans.clear();
}

std::string Registry::toJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\n";
  Out += formatString("  \"enabled\": %s,\n",
                      enabled() ? "true" : "false");

  Out += "  \"counters\": {";
  bool First = true;
  for (const auto &[Name, C] : Counters) {
    Out += formatString("%s\n    \"%s\": %llu", First ? "" : ",",
                        jsonEscape(Name).c_str(),
                        static_cast<unsigned long long>(C->value()));
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : Gauges) {
    Out += formatString("%s\n    \"%s\": %s", First ? "" : ",",
                        jsonEscape(Name).c_str(),
                        jsonNumber(G->value()).c_str());
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"timers\": {";
  First = true;
  for (const auto &[Name, T] : Timers) {
    Out += formatString(
        "%s\n    \"%s\": {\"count\": %llu, \"total_seconds\": %s, "
        "\"mean_seconds\": %s, \"min_seconds\": %s, \"max_seconds\": %s}",
        First ? "" : ",", jsonEscape(Name).c_str(),
        static_cast<unsigned long long>(T->count()),
        jsonNumber(T->totalSeconds()).c_str(),
        jsonNumber(T->meanSeconds()).c_str(),
        jsonNumber(T->minSeconds()).c_str(),
        jsonNumber(T->maxSeconds()).c_str());
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"series\": {";
  First = true;
  for (const auto &[Name, S] : AllSeries) {
    Out += formatString(
        "%s\n    \"%s\": {\"count\": %llu, \"stride\": %llu, "
        "\"samples\": [",
        First ? "" : ",", jsonEscape(Name).c_str(),
        static_cast<unsigned long long>(S->total()),
        static_cast<unsigned long long>(S->stride()));
    std::vector<double> Samples = S->samples();
    for (size_t I = 0; I < Samples.size(); ++I) {
      if (I)
        Out += ", ";
      Out += jsonNumber(Samples[I]);
    }
    Out += "]}";
    First = false;
  }
  Out += First ? "},\n" : "\n  },\n";

  Out += "  \"spans\": [";
  First = true;
  for (const SpanRecord &S : Spans) {
    Out += formatString("%s\n    {\"path\": \"%s\", \"start_seconds\": %s, "
                        "\"duration_seconds\": %s}",
                        First ? "" : ",", jsonEscape(S.Path).c_str(),
                        jsonNumber(S.StartSeconds).c_str(),
                        jsonNumber(S.DurationSeconds).c_str());
    First = false;
  }
  Out += First ? "]\n" : "\n  ]\n";
  Out += "}\n";
  return Out;
}

std::string Registry::renderText() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::ostringstream OS;

  if (!Spans.empty()) {
    TablePrinter T({"span", "start s", "duration s"});
    for (const SpanRecord &S : Spans)
      T.addRow({S.Path, formatString("%.3f", S.StartSeconds),
                formatString("%.3f", S.DurationSeconds)});
    T.print(OS);
    OS << '\n';
  }
  if (!Counters.empty()) {
    TablePrinter T({"counter", "value"});
    for (const auto &[Name, C] : Counters)
      T.addRow({Name, formatString("%llu", static_cast<unsigned long long>(
                                               C->value()))});
    T.print(OS);
    OS << '\n';
  }
  if (!Gauges.empty()) {
    TablePrinter T({"gauge", "value"});
    for (const auto &[Name, G] : Gauges)
      T.addRow({Name, formatString("%g", G->value())});
    T.print(OS);
    OS << '\n';
  }
  if (!Timers.empty()) {
    TablePrinter T({"timer", "count", "total s", "mean ms", "min ms",
                    "max ms"});
    for (const auto &[Name, Tm] : Timers)
      T.addRow({Name,
                formatString("%llu",
                             static_cast<unsigned long long>(Tm->count())),
                formatString("%.3f", Tm->totalSeconds()),
                formatString("%.3f", 1000.0 * Tm->meanSeconds()),
                formatString("%.3f", 1000.0 * Tm->minSeconds()),
                formatString("%.3f", 1000.0 * Tm->maxSeconds())});
    T.print(OS);
    OS << '\n';
  }
  if (!AllSeries.empty()) {
    TablePrinter T({"series", "count", "stride", "kept", "last"});
    for (const auto &[Name, S] : AllSeries) {
      std::vector<double> Samples = S->samples();
      T.addRow({Name,
                formatString("%llu",
                             static_cast<unsigned long long>(S->total())),
                formatString("%llu",
                             static_cast<unsigned long long>(S->stride())),
                formatString("%zu", Samples.size()),
                Samples.empty() ? std::string("-")
                                : formatString("%g", Samples.back())});
    }
    T.print(OS);
    OS << '\n';
  }
  return OS.str();
}

Registry &Registry::global() {
  static Registry G(/*StartEnabled=*/false);
  return G;
}
