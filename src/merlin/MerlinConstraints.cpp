//===- merlin/MerlinConstraints.cpp - Fig. 6 factor construction ----------===//

#include "merlin/MerlinConstraints.h"

#include <unordered_set>

using namespace seldon;
using namespace seldon::merlin;
using namespace seldon::propgraph;

namespace {

/// Variable-creation helper holding shared state of the construction.
class ModelBuilder {
public:
  ModelBuilder(const PropagationGraph &Graph, const spec::SeedSpec &Seed,
               const MerlinGenOptions &Opts, MerlinModel &Model)
      : Graph(Graph), Seed(Seed), Opts(Opts), Model(Model) {}

  void run() {
    createVariables();
    addPriors();
    addSeedPins();
    addEdgeFactors();
    addTripleFactors();
  }

private:
  /// The variable for (event's most-specific rep, role), creating it on
  /// first use; -1 when the event is not a candidate for the role or is
  /// blacklisted.
  int64_t varFor(const Event &E, Role R) {
    if (!maskHas(E.Candidates, R))
      return -1;
    const std::string &Rep = E.primaryRep();
    if (Seed.isBlacklisted(Rep))
      return -1;
    auto It = Model.VarOf.find(Rep);
    if (It == Model.VarOf.end())
      It = Model.VarOf.emplace(Rep, std::array<int64_t, 3>{{-1, -1, -1}})
               .first;
    int64_t &Slot = It->second[static_cast<size_t>(R)];
    if (Slot < 0) {
      Slot = Model.Graph.addVar(Rep + "#" + roleName(R));
      ++Model.NumCandidates[static_cast<size_t>(R)];
    }
    return Slot;
  }

  void createVariables() {
    for (const Event &E : Graph.events())
      for (Role R : {Role::Source, Role::Sanitizer, Role::Sink})
        varFor(E, R);
  }

  void addPriors() {
    // Uniform priors for sources and sinks; path-ratio priors for
    // sanitizers (§6.3). Track which vars already received their prior so
    // shared representations get exactly one.
    std::unordered_set<int64_t> Done;
    for (const Event &E : Graph.events()) {
      for (Role R : {Role::Source, Role::Sink}) {
        int64_t V = varFor(E, R);
        if (V >= 0 && Done.insert(V).second)
          Model.Graph.addUnary(static_cast<VarIdx>(V), 0.5, 0.5);
      }
      int64_t V = varFor(E, Role::Sanitizer);
      if (V < 0 || !Done.insert(V).second)
        continue;
      double Prior = sanitizerPrior(E.Id);
      Model.Graph.addUnary(static_cast<VarIdx>(V), 1.0 - Prior, Prior);
    }
  }

  /// Fraction of (predecessor-closure, successor-closure) pairs around the
  /// event that are (source candidate, sink candidate) — the paper's
  /// "fraction of paths through it that start from a source and end in a
  /// sink" (§6.3).
  double sanitizerPrior(EventId Id) {
    std::vector<EventId> Before = Graph.reachingTo(Id);
    std::vector<EventId> After = Graph.reachableFrom(Id);
    if (Before.empty() || After.empty())
      return 0.05; // Dangling candidate: weak prior.
    size_t SrcBefore = 0, SnkAfter = 0;
    for (EventId B : Before)
      SrcBefore += maskHas(Graph.event(B).Candidates, Role::Source);
    for (EventId A : After)
      SnkAfter += maskHas(Graph.event(A).Candidates, Role::Sink);
    double Ratio = static_cast<double>(SrcBefore * SnkAfter) /
                   static_cast<double>(Before.size() * After.size());
    // Keep the prior away from the degenerate endpoints.
    return 0.05 + 0.9 * Ratio;
  }

  void addSeedPins() {
    // Hard unary factors: a labeled candidate must take exactly its roles.
    std::unordered_set<int64_t> Done;
    for (const Event &E : Graph.events()) {
      for (const std::string &Rep : E.Reps) {
        RoleMask Mask = Seed.Spec.rolesOf(Rep);
        if (Mask == 0)
          continue;
        for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
          int64_t V = varFor(E, R);
          if (V < 0 || !Done.insert(V).second)
            continue;
          if (maskHas(Mask, R))
            Model.Graph.addUnary(static_cast<VarIdx>(V), 0.0, 1.0);
          else
            Model.Graph.addUnary(static_cast<VarIdx>(V), 1.0, 0.0);
        }
      }
    }
  }

  /// Fig. 6b/c/d: same-role adjacency penalties along every edge.
  void addEdgeFactors() {
    const double Low = Opts.LowScore;
    for (const Event &E : Graph.events()) {
      for (EventId SuccId : Graph.successors(E.Id)) {
        const Event &S = Graph.event(SuccId);
        struct EdgeRule {
          Role From;
          Role To;
        };
        static const EdgeRule Rules[] = {
            {Role::Sanitizer, Role::Sanitizer}, // Fig. 6b
            {Role::Source, Role::Source},       // Fig. 6c
            {Role::Sink, Role::Sink},           // Fig. 6d
        };
        for (const EdgeRule &Rule : Rules) {
          int64_t A = varFor(E, Rule.From);
          int64_t B = varFor(S, Rule.To);
          if (A < 0 || B < 0 || A == B)
            continue;
          // Table index: bit0 = A, bit1 = B. Penalize (1,1).
          Model.Graph.addFactor(
              Factor{{static_cast<VarIdx>(A), static_cast<VarIdx>(B)},
                     {1.0, 1.0, 1.0, Low}});
        }
      }
    }
  }

  /// Fig. 6a: source ⇝ mid ⇝ sink triples; (src=1, mid=0, snk=1) penalized.
  void addTripleFactors() {
    const double Low = Opts.LowScore;
    for (const Event &Mid : Graph.events()) {
      if (!maskHas(Mid.Candidates, Role::Sanitizer))
        continue;
      int64_t MidVar = varFor(Mid, Role::Sanitizer);
      if (MidVar < 0)
        continue;
      std::vector<EventId> Before = Graph.reachingTo(Mid.Id);
      std::vector<EventId> After = Graph.reachableFrom(Mid.Id);
      size_t Triples = 0;
      for (EventId B : Before) {
        int64_t SrcVar = varFor(Graph.event(B), Role::Source);
        if (SrcVar < 0)
          continue;
        for (EventId A : After) {
          int64_t SnkVar = varFor(Graph.event(A), Role::Sink);
          if (SnkVar < 0 || SnkVar == SrcVar)
            continue;
          if (SrcVar == MidVar || SnkVar == MidVar)
            continue;
          if (++Triples > Opts.MaxTriplesPerAnchor)
            return;
          // Bits: 0 = src, 1 = mid, 2 = snk. Penalize src & snk & !mid
          // (index 0b101 = 5).
          Factor F;
          F.Vars = {static_cast<VarIdx>(SrcVar),
                    static_cast<VarIdx>(MidVar),
                    static_cast<VarIdx>(SnkVar)};
          F.Table = {1.0, 1.0, 1.0, 1.0, 1.0, Low, 1.0, 1.0};
          Model.Graph.addFactor(std::move(F));
        }
      }
    }
  }

  const PropagationGraph &Graph;
  const spec::SeedSpec &Seed;
  const MerlinGenOptions &Opts;
  MerlinModel &Model;
};

} // namespace

MerlinModel
seldon::merlin::buildMerlinModel(const PropagationGraph &Graph,
                                 const spec::SeedSpec &Seed,
                                 const MerlinGenOptions &Opts) {
  MerlinModel Model;
  ModelBuilder Builder(Graph, Seed, Opts, Model);
  Builder.run();
  return Model;
}
