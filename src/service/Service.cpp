//===- service/Service.cpp - Warm inference service -----------------------===//

#include "service/Service.h"

#include "propgraph/GraphBuilder.h"
#include "pysem/ProjectLoader.h"
#include "service/FeedbackJson.h"
#include "service/QueryResult.h"
#include "spec/SpecIO.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "taint/JsonExport.h"
#include "taint/ReportRenderer.h"
#include "taint/TaintAnalyzer.h"

#include <cmath>
#include <cstdio>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <utility>

using namespace seldon;
using namespace seldon::service;

namespace {

/// A structured operation failure; handle() turns it into an error
/// response with the carried code.
class OpError : public std::runtime_error {
public:
  OpError(ErrorCode Code, const std::string &Message)
      : std::runtime_error(Message), Code(Code) {}
  ErrorCode Code;
};

[[noreturn]] void badRequest(const std::string &Message) {
  throw OpError(ErrorCode::BadRequest, Message);
}

void checkDeadline(const Deadline &D, const char *Stage) {
  if (D.expired())
    throw DeadlineError(
        formatString("request deadline expired before %s", Stage));
}

/// Reads an optional positive-integer parameter; \p Fallback when absent.
long readIntParam(const Request &Req, const char *Name, long Fallback,
                  long Min, long Max) {
  const JsonValue *V = Req.Params.get(Name);
  if (!V)
    return Fallback;
  if (!V->isNumber() ||
      std::floor(V->numberValue()) != V->numberValue() ||
      V->numberValue() < static_cast<double>(Min) ||
      V->numberValue() > static_cast<double>(Max))
    badRequest(formatString("\"%s\" must be an integer in [%ld, %ld]", Name,
                            Min, Max));
  return static_cast<long>(V->numberValue());
}

bool readBoolParam(const Request &Req, const char *Name, bool Fallback) {
  const JsonValue *V = Req.Params.get(Name);
  if (!V)
    return Fallback;
  if (!V->isBool())
    badRequest(formatString("\"%s\" must be a boolean", Name));
  return V->boolValue();
}

} // namespace

Service::Service(Options Opts) : Opts(std::move(Opts)) {}

Service::~Service() = default;

bool Service::start(std::string &Error) {
  if (Opts.SeedFile.empty()) {
    Seed = spec::SeedSpec::parse(spec::paperSeedSpecText());
  } else {
    spec::IOResult<spec::SeedSpec> Loaded =
        spec::loadSeedSpec(Opts.SeedFile);
    for (const std::string &W : Loaded.Warnings)
      std::fprintf(stderr, "seed: %s\n", W.c_str());
    if (!Loaded) {
      Error = Loaded.Error;
      return false;
    }
    Seed = std::move(Loaded.Value);
  }

  if (Opts.CorpusDirs.empty()) {
    Error = "no corpus directories to serve";
    return false;
  }
  if (!loadCorpus(Corpus, Error))
    return false;

  Session = makeSession();
  if (!Opts.CacheDir.empty() && !Session->graphCache()->valid()) {
    Error = Session->graphCache()->error();
    return false;
  }
  if (!Opts.ShardCacheDir.empty() && !Session->shardCache()->valid()) {
    Error = Session->shardCache()->error();
    return false;
  }
  if (!Opts.StateDir.empty()) {
    Durable = std::make_unique<StateStore>(Opts.StateDir);
    if (!Durable->valid()) {
      // Refuse to start rather than silently running without the
      // durability the operator asked for.
      Error = Durable->error();
      return false;
    }
  }

  Session->addProjects(Corpus);
  try {
    Session->generateConstraints(Seed);
    if (Durable) {
      if (!recoverDurableState(Error))
        return false;
    } else {
      Warm = Session->solve();
    }
  } catch (const std::exception &E) {
    Error = E.what();
    return false;
  }
  Started = true;
  return true;
}

bool Service::recoverDurableState(std::string &Error) {
  io::IOResult<RecoveredState> Recovered = Durable->recover();
  if (!Recovered) {
    Error = Recovered.Error;
    return false;
  }
  RecoveredState &RS = Recovered.Value;
  for (const std::string &W : Durable->stats().Errors)
    std::fprintf(stderr, "state: %s\n", W.c_str());

  bool Restored = false;
  if (RS.HasSnapshot) {
    // Verdicts first: restoreSolve applies the session's feedback
    // pointer (which is this set) to its System copy, so the restored
    // Warm carries the same evidence rows the pre-crash one did.
    for (const constraints::FeedbackEntry &E : RS.Snapshot.Feedback) {
      if (E.Accepted)
        Feedback.accept(E.Rep, E.R);
      else
        Feedback.reject(E.Rep, E.R);
    }
    WarmFO = RS.Snapshot.FeedbackOpts;
    uint64_t Fingerprint =
        systemFingerprint(Session->system(), Session->reps());
    if (Fingerprint == RS.Snapshot.Fingerprint) {
      infer::PipelineOptions &P = Session->options();
      constraints::FeedbackOptions SavedFO = P.FeedbackOpts;
      P.FeedbackOpts = WarmFO;
      Restored = Session->restoreSolve(RS.Snapshot.Solve, Warm);
      P.FeedbackOpts = SavedFO;
    }
    if (!Restored)
      std::fprintf(stderr,
                   "state: snapshot %llu no longer matches the corpus "
                   "(fingerprint/shape changed); restoring verdicts and "
                   "re-solving cold\n",
                   static_cast<unsigned long long>(RS.Snapshot.LastSeq));
    NextSeq = RS.Snapshot.LastSeq + 1;
  }
  if (!Restored) {
    // No (usable) snapshot: cold solve, with whatever verdicts were
    // restored above — the irreplaceable part of the state survives even
    // when the corpus changed out from under the snapshot.
    Warm = Session->solve();
    WarmFO = Session->options().FeedbackOpts;
  }

  // Re-execute the journal suffix through the same code path live
  // requests use; the state after replay is exactly the pre-crash state.
  for (const JournalRecord &R : RS.Replay) {
    NextSeq = std::max(NextSeq, R.Seq + 1);
    try {
      if (R.Op == JournalOp::Feedback)
        applyFeedbackRecord(R, nullptr);
      else
        applyLearnRecord(R, nullptr);
    } catch (const std::exception &E) {
      // A record that fails to apply is treated as aborted — the same
      // outcome its request would have had — instead of bricking the
      // daemon behind a permanently unreplayable journal.
      std::fprintf(stderr,
                   "state: skipping journal record %llu (replay failed: "
                   "%s)\n",
                   static_cast<unsigned long long>(R.Seq), E.what());
    }
  }

  // Baseline snapshot: everything recovered is now covered by one
  // snapshot and the journal is compact, so the next crash replays at
  // most the op in flight.
  takeSnapshotLocked();
  return true;
}

void Service::persist() {
  std::unique_lock<std::shared_mutex> Lock(WarmMutex);
  if (!Durable || !Started)
    return;
  if (EverSnapshotted && LastSnapshotSeq == NextSeq - 1)
    return; // Nothing changed since the last snapshot.
  takeSnapshotLocked();
}

void Service::takeSnapshotLocked() {
  StateSnapshot Snapshot;
  Snapshot.LastSeq = NextSeq - 1;
  Snapshot.Fingerprint =
      systemFingerprint(Session->system(), Session->reps());
  Snapshot.Solve = Warm.Solve;
  Snapshot.FeedbackOpts = WarmFO;
  Snapshot.Feedback = Feedback.entries();
  std::string Error;
  if (!Durable->writeSnapshot(Snapshot, Error)) {
    // The journal still holds every op; losing one snapshot degrades
    // recovery time, not correctness.
    std::fprintf(stderr, "state: snapshot failed: %s\n", Error.c_str());
    return;
  }
  OpsSinceSnapshot = 0;
  LastSnapshotSeq = Snapshot.LastSeq;
  EverSnapshotted = true;
}

void Service::journalAppend(JournalRecord &Rec) {
  if (!Durable)
    return;
  Rec.Seq = NextSeq++;
  std::string Error;
  if (!Durable->appendRecord(Rec, Error))
    throw OpError(ErrorCode::Internal,
                  formatString("cannot journal op: %s", Error.c_str()));
}

void Service::journalAbort(uint64_t Seq) {
  if (!Durable || Seq == 0)
    return;
  JournalRecord Abort;
  Abort.Op = JournalOp::Abort;
  Abort.AbortedSeq = Seq;
  // Best-effort, from a catch block: a failed abort append means the op
  // gets replayed on recovery and fails again there — annoying, not
  // incorrect — and must not mask the original error.
  try {
    journalAppend(Abort);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "state: %s\n", E.what());
  }
}

void Service::maybeSnapshot() {
  if (!Durable)
    return;
  ++OpsSinceSnapshot;
  if (Opts.SnapshotEvery > 0 && OpsSinceSnapshot >= Opts.SnapshotEvery)
    takeSnapshotLocked();
}

bool Service::loadCorpus(std::vector<pysem::Project> &Out,
                         std::string &Error) {
  std::vector<std::vector<std::string>> LoadErrors;
  std::vector<std::optional<pysem::Project>> Loaded =
      pysem::loadProjectsFromDirs(Opts.CorpusDirs, pysem::LoadOptions(),
                                  Opts.Jobs, &LoadErrors);
  for (size_t I = 0; I < Loaded.size(); ++I) {
    for (const std::string &E : LoadErrors[I])
      std::fprintf(stderr, "warning: %s\n", E.c_str());
    if (!Loaded[I]) {
      Error = Opts.CorpusDirs[I] + " is not a directory";
      return false;
    }
    Out.push_back(std::move(*Loaded[I]));
  }
  return true;
}

std::unique_ptr<infer::Session> Service::makeSession() {
  infer::PipelineOptions P;
  P.Solve.MaxIterations = Opts.Iterations;
  P.Gen.RepCutoff = Opts.RepCutoff;
  P.Jobs = Opts.Jobs;
  P.Solve.Backend = Opts.Backend;
  P.Strict = Opts.Strict;
  // Session::armDeadline is one-shot, which is wrong for a daemon: the
  // run deadline stays disarmed forever and per-request budgets flow
  // through SolveOptions (learn) or per-stage polls (query/taint).
  P.DeadlineSeconds = 0.0;
  // Every session solves against the service's cumulative feedback set;
  // while it is empty applyFeedback never runs and the solve is
  // byte-identical to the passive path.
  P.Feedback = &Feedback;
  auto S = std::make_unique<infer::Session>(P);
  if (!Opts.CacheDir.empty())
    S->enableCache(Opts.CacheDir);
  if (!Opts.ShardCacheDir.empty())
    S->enableShardCache(Opts.ShardCacheDir);
  return S;
}

bool Service::tryAdmit() {
  size_t Prev = Admitted.fetch_add(1, std::memory_order_acq_rel);
  if (Prev >= Opts.MaxInFlight) {
    Admitted.fetch_sub(1, std::memory_order_acq_rel);
    return false;
  }
  return true;
}

void Service::release() {
  Admitted.fetch_sub(1, std::memory_order_acq_rel);
}

std::string Service::serve(const std::string &Line) {
  if (!tryAdmit())
    return overloadedResponse(Line);
  std::string Response = handle(Line);
  release();
  return Response;
}

std::string Service::overloadedResponse(const std::string &Line) const {
  // Best-effort id salvage; parseRequest fills Out.Id whenever the line
  // parses as an object, even when validation fails afterwards.
  Request Req;
  RequestError Err;
  (void)parseRequest(Line, Opts.MaxRequestBytes, Req, Err);
  return renderErrorResponse(
      Req.Id, ErrorCode::Overloaded,
      formatString("%zu request(s) already in flight; retry later",
                   Opts.MaxInFlight));
}

std::string Service::handle(const std::string &Line) {
  Handled.fetch_add(1, std::memory_order_relaxed);
  Request Req;
  RequestError Err;
  if (!parseRequest(Line, Opts.MaxRequestBytes, Req, Err)) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, Err.Code, Err.Message);
  }
  if (shuttingDown()) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::ShuttingDown,
                               "service is draining");
  }
  try {
    if (!Started)
      throw OpError(ErrorCode::Internal, "service not started");
    Deadline D;
    double Budget = Opts.RequestDeadlineSeconds;
    if (const JsonValue *DS = Req.Params.get("deadline_s")) {
      if (!DS->isNumber() || DS->numberValue() < 0.0)
        badRequest("\"deadline_s\" must be a non-negative number");
      Budget = DS->numberValue();
    }
    D.arm(Budget);
    return renderOkResponse(Req.Id, dispatch(Req, D));
  } catch (const OpError &E) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, E.Code, E.what());
  } catch (const DeadlineError &E) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::Deadline, E.what());
  } catch (const std::exception &E) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::Internal, E.what());
  } catch (...) {
    Failed.fetch_add(1, std::memory_order_relaxed);
    return renderErrorResponse(Req.Id, ErrorCode::Internal,
                               "unknown exception");
  }
}

std::string Service::dispatch(const Request &Req, Deadline &D) {
  if (Req.Op == "status")
    return opStatus();
  if (Req.Op == "query")
    return opQuery(Req, D);
  if (Req.Op == "learn")
    return opLearn(Req, D);
  if (Req.Op == "feedback")
    return opFeedback(Req, D);
  if (Req.Op == "taint")
    return opTaint(Req, D);
  if (Req.Op == "shutdown") {
    ShuttingDown.store(true, std::memory_order_release);
    return "{\"stopping\":true}";
  }
  throw OpError(ErrorCode::UnknownOp,
                formatString("unknown op \"%s\" (expected status, query, "
                             "learn, feedback, taint, or shutdown)",
                             Req.Op.c_str()));
}

std::string Service::opStatus() {
  std::shared_lock<std::shared_mutex> Lock(WarmMutex);
  metrics::Registry &Reg = metrics::Registry::global();
  std::string Durability = "{\"enabled\":false}";
  if (Durable) {
    DurabilityStats DS = Durable->stats();
    Durability = formatString(
        "{\"enabled\":true,\"appends\":%llu,\"fsyncs\":%llu,"
        "\"journal_bytes\":%llu,\"snapshots\":%llu,\"compactions\":%llu,"
        "\"replayed\":%llu,\"truncated_tail_bytes\":%llu,"
        "\"evicted_snapshots\":%llu,\"evicted_journals\":%llu,"
        "\"stale_temps_removed\":%llu,\"recovery_seconds\":%s}",
        static_cast<unsigned long long>(DS.Appends),
        static_cast<unsigned long long>(DS.Fsyncs),
        static_cast<unsigned long long>(DS.BytesAppended),
        static_cast<unsigned long long>(DS.Snapshots),
        static_cast<unsigned long long>(DS.Compactions),
        static_cast<unsigned long long>(DS.ReplayedRecords),
        static_cast<unsigned long long>(DS.TruncatedTailBytes),
        static_cast<unsigned long long>(DS.EvictedSnapshots),
        static_cast<unsigned long long>(DS.EvictedJournals),
        static_cast<unsigned long long>(DS.StaleTempsRemoved),
        renderJsonNumber(DS.RecoverySeconds).c_str());
  }
  return formatString(
      "{\"protocol\":%d,"
      "\"corpus\":{\"projects\":%zu,\"files\":%zu,\"events\":%zu,"
      "\"edges\":%zu},"
      "\"system\":{\"candidates\":%zu,\"constraints\":%zu},"
      "\"spec\":{\"size\":%zu,\"threshold\":%s},"
      "\"solve\":{\"iterations\":%d,\"converged\":%s},"
      "\"health\":{\"status\":\"%s\",\"quarantined\":%zu},"
      "\"cache\":{\"enabled\":%s,\"hits\":%llu,\"misses\":%llu,"
      "\"stores\":%llu},"
      "\"requests\":{\"handled\":%llu,\"failed\":%llu,\"active\":%zu},"
      "\"durability\":%s,"
      "\"metrics\":{\"parse_files\":%llu,\"taint_analyses\":%llu}}",
      ProtocolVersion, Corpus.size(), Warm.NumFiles,
      Warm.Graph.numEvents(), Warm.Graph.numEdges(),
      Warm.System.NumCandidates, Warm.System.Constraints.size(),
      Warm.Learned.size(),
      renderJsonNumber(Opts.Threshold).c_str(), Warm.Solve.Iterations,
      Warm.Solve.Converged ? "true" : "false",
      infer::runStatusName(Warm.Health.status()),
      Warm.Health.Quarantined.size(),
      Warm.UsedCache ? "true" : "false",
      static_cast<unsigned long long>(Warm.Cache.Hits),
      static_cast<unsigned long long>(Warm.Cache.Misses),
      static_cast<unsigned long long>(Warm.Cache.Stores),
      static_cast<unsigned long long>(
          Handled.load(std::memory_order_relaxed)),
      static_cast<unsigned long long>(
          Failed.load(std::memory_order_relaxed)),
      Admitted.load(std::memory_order_relaxed), Durability.c_str(),
      static_cast<unsigned long long>(Reg.counter("parse.files").value()),
      static_cast<unsigned long long>(
          Reg.counter("taint.analyses").value()));
}

std::string Service::opQuery(const Request &Req, Deadline &D) {
  const JsonValue *Rep = Req.Params.get("rep");
  if (!Rep || !Rep->isString() || Rep->stringValue().empty())
    badRequest("\"rep\" must be a non-empty string");
  std::string RoleName = "source";
  if (const JsonValue *R = Req.Params.get("role")) {
    if (!R->isString())
      badRequest("\"role\" must be a string");
    RoleName = R->stringValue();
  }
  propgraph::Role Role;
  if (!roleFromName(RoleName, Role))
    badRequest("\"role\" must be source|sanitizer|sink");

  checkDeadline(D, "query");
  std::shared_lock<std::shared_mutex> Lock(WarmMutex);
  QueryResult Q =
      queryRep(Warm.System, Warm.Reps, Rep->stringValue(), Role,
               Warm.Solve.X);
  return renderQueryJson(Q);
}

std::string Service::opLearn(const Request &Req, Deadline &D) {
  long Iters =
      readIntParam(Req, "iters", Opts.Iterations, 1, 10'000'000);
  bool Reload = readBoolParam(Req, "reload", false);
  // A reload defaults to a warm start — the point of an incremental
  // re-learn is converging quickly from the served spec; a plain re-solve
  // stays cold by default so differential clients get the exact
  // reference trajectory.
  bool WarmStart = readBoolParam(Req, "warm", Reload);
  // Optional per-request evaluator override; the daemon default is
  // restored once the solve finishes (or throws).
  solver::SolverBackend Backend = Opts.Backend;
  if (const JsonValue *B = Req.Params.get("backend")) {
    if (!B->isString() ||
        !solver::parseSolverBackend(B->stringValue(), Backend))
      badRequest(
          "\"backend\" must be one of legacy|compiled|simd|simd-f32");
  }

  checkDeadline(D, Reload ? "reload" : "solve");
  JournalRecord Rec;
  Rec.Op = JournalOp::Learn;
  Rec.Iters = static_cast<uint64_t>(Iters);
  Rec.WarmStart = WarmStart;
  Rec.Reload = Reload;
  Rec.Backend = Backend;

  std::unique_lock<std::shared_mutex> Lock(WarmMutex);
  // Journal + fsync *before* the solve mutates anything: a crash at any
  // later point replays this op from the journal.
  journalAppend(Rec);
  try {
    applyLearnRecord(Rec, &D);
  } catch (...) {
    journalAbort(Rec.Seq);
    throw;
  }
  maybeSnapshot();
  return formatString(
      "{\"iterations\":%d,\"converged\":%s,\"constraints\":%zu,"
      "\"candidates\":%zu,\"spec_size\":%zu,\"warm_started\":%s,"
      "\"backend\":\"%s\",\"simd_active\":%s,"
      "\"incremental\":{\"shards_hit\":%llu,\"shards_rebuilt\":%llu,"
      "\"warm_start\":%s},"
      "\"health\":\"%s\"}",
      Warm.Solve.Iterations, Warm.Solve.Converged ? "true" : "false",
      Warm.System.Constraints.size(), Warm.System.NumCandidates,
      Warm.Learned.size(), WarmStart ? "true" : "false",
      solver::solverBackendName(Warm.Backend),
      Warm.SimdActive ? "true" : "false",
      static_cast<unsigned long long>(Warm.Incr.ShardsHit),
      static_cast<unsigned long long>(Warm.Incr.ShardsRebuilt),
      Warm.Incr.WarmStarted ? "true" : "false",
      infer::runStatusName(Warm.Health.status()));
}

std::string Service::opFeedback(const Request &Req, Deadline &D) {
  long Iters =
      readIntParam(Req, "iters", Opts.Iterations, 1, 10'000'000);
  // Feedback exists to nudge the served spec, so it warm-starts by
  // default; "warm": false forces the cold reference trajectory.
  bool WarmStart = readBoolParam(Req, "warm", true);
  constraints::FeedbackOptions FO;
  if (const JsonValue *W = Req.Params.get("weight")) {
    if (!W->isNumber() || W->numberValue() <= 0.0)
      badRequest("\"weight\" must be a positive number");
    FO.AcceptWeight = FO.RejectWeight = W->numberValue();
  }
  if (const JsonValue *Dk = Req.Params.get("decay")) {
    if (!Dk->isNumber() || Dk->numberValue() < 0.0 ||
        Dk->numberValue() > 1.0)
      badRequest("\"decay\" must be a number in [0, 1]");
    FO.SimilarityDecay = Dk->numberValue();
  }
  constraints::FeedbackSet Delta;
  std::string Error;
  size_t Accepted = 0, Rejected = 0;
  if (!feedbackFromJson(Req.Params, Delta, Error, &Accepted, &Rejected))
    badRequest(Error);

  checkDeadline(D, "feedback solve");
  JournalRecord Rec;
  Rec.Op = JournalOp::Feedback;
  Rec.Entries = Delta.entries();
  Rec.FeedbackOpts = FO;
  Rec.Iters = static_cast<uint64_t>(Iters);
  Rec.WarmStart = WarmStart;

  std::unique_lock<std::shared_mutex> Lock(WarmMutex);
  // Journal + fsync *before* the verdict merge and re-solve: a crash at
  // any later point replays this op from the journal.
  journalAppend(Rec);
  try {
    applyFeedbackRecord(Rec, &D);
  } catch (...) {
    journalAbort(Rec.Seq);
    throw;
  }
  maybeSnapshot();
  return formatString(
      "{\"accepted\":%zu,\"rejected\":%zu,\"total_feedback\":%zu,"
      "\"matched\":%zu,\"unmatched\":%zu,\"evidence_rows\":%zu,"
      "\"propagated_rows\":%zu,"
      "\"iterations\":%d,\"converged\":%s,\"spec_size\":%zu,"
      "\"warm_started\":%s}",
      Accepted, Rejected, Feedback.size(), Warm.Feedback.Matched,
      Warm.Feedback.Unmatched, Warm.Feedback.EvidenceRows,
      Warm.Feedback.PropagatedRows, Warm.Solve.Iterations,
      Warm.Solve.Converged ? "true" : "false", Warm.Learned.size(),
      WarmStart ? "true" : "false");
}

void Service::applyLearnRecord(const JournalRecord &Rec, Deadline *D) {
  infer::PipelineResult R;
  // The warm-start spec must outlive the solve; options().WarmStart is a
  // borrowed pointer.
  spec::LearnedSpec WarmCopy;
  if (Rec.Reload) {
    // Re-read the corpus into a *fresh* session: the served state stays
    // untouched (and keeps serving reads after we release the lock on a
    // throw) until the new solve has fully succeeded. With the graph and
    // shard caches enabled, unchanged projects replay their cached graph
    // and constraint shard — only the delta re-parses and re-extracts.
    std::vector<pysem::Project> NewCorpus;
    std::string Error;
    if (!loadCorpus(NewCorpus, Error))
      throw OpError(ErrorCode::Internal, Error);
    std::unique_ptr<infer::Session> NewSession = makeSession();
    NewSession->addProjects(NewCorpus);
    solver::SolveOptions &SO = NewSession->options().Solve;
    SO.MaxIterations = static_cast<int>(Rec.Iters);
    SO.Backend = Rec.Backend;
    if (D && D->armed()) {
      SO.BudgetSeconds = D->remainingSeconds();
      SO.ShouldStop = [D]() { return D->expired(); };
    }
    if (Rec.WarmStart) {
      WarmCopy = Warm.Learned;
      NewSession->options().WarmStart = &WarmCopy;
    }
    NewSession->generateConstraints(Seed);
    R = NewSession->solve();
    // Clear the per-request knobs before the session becomes the warm
    // one — D and WarmCopy die with this request.
    SO.MaxIterations = Opts.Iterations;
    SO.Backend = Opts.Backend;
    SO.BudgetSeconds = 0.0;
    SO.ShouldStop = nullptr;
    NewSession->options().WarmStart = nullptr;
    // Moving the vector moves its buffer, not its elements, so the
    // Project pointers the new session borrowed stay valid.
    Corpus = std::move(NewCorpus);
    Session = std::move(NewSession);
  } else {
    solver::SolveOptions &SO = Session->options().Solve;
    SO.MaxIterations = static_cast<int>(Rec.Iters);
    SO.Backend = Rec.Backend;
    if (D && D->armed()) {
      SO.BudgetSeconds = D->remainingSeconds();
      SO.ShouldStop = [D]() { return D->expired(); };
    }
    if (Rec.WarmStart) {
      WarmCopy = Warm.Learned;
      Session->options().WarmStart = &WarmCopy;
    }
    auto Restore = [&]() {
      SO.MaxIterations = Opts.Iterations;
      SO.Backend = Opts.Backend;
      SO.BudgetSeconds = 0.0;
      SO.ShouldStop = nullptr;
      Session->options().WarmStart = nullptr;
    };
    try {
      // The graph and constraint system are warm (GraphReady/SystemReady
      // from start()); solve() alone re-optimizes — no re-parse, no
      // re-gen.
      R = Session->solve();
    } catch (...) {
      Restore();
      throw;
    }
    Restore();
  }
  Warm = std::move(R);
  WarmFO = Session->options().FeedbackOpts;
}

void Service::applyFeedbackRecord(const JournalRecord &Rec, Deadline *D) {
  // Merge the delta into the cumulative set; a repeated pair keeps the
  // newest verdict. The session's options already point at Feedback, so
  // the re-solve below (and every later learn) sees the merged set.
  for (const constraints::FeedbackEntry &E : Rec.Entries) {
    if (E.Accepted)
      Feedback.accept(E.Rep, E.R);
    else
      Feedback.reject(E.Rep, E.R);
  }
  infer::PipelineOptions &P = Session->options();
  constraints::FeedbackOptions SavedFO = P.FeedbackOpts;
  P.FeedbackOpts = Rec.FeedbackOpts;
  solver::SolveOptions &SO = P.Solve;
  SO.MaxIterations = static_cast<int>(Rec.Iters);
  if (D && D->armed()) {
    SO.BudgetSeconds = D->remainingSeconds();
    SO.ShouldStop = [D]() { return D->expired(); };
  }
  // The warm-start spec must outlive the solve; options().WarmStart is a
  // borrowed pointer.
  spec::LearnedSpec WarmCopy;
  if (Rec.WarmStart) {
    WarmCopy = Warm.Learned;
    P.WarmStart = &WarmCopy;
  }
  auto Restore = [&]() {
    P.FeedbackOpts = SavedFO;
    SO.MaxIterations = Opts.Iterations;
    SO.BudgetSeconds = 0.0;
    SO.ShouldStop = nullptr;
    P.WarmStart = nullptr;
  };
  infer::PipelineResult R;
  try {
    R = Session->solve();
  } catch (...) {
    Restore();
    throw;
  }
  Restore();
  Warm = std::move(R);
  WarmFO = Rec.FeedbackOpts;
}

std::string Service::opTaint(const Request &Req, Deadline &D) {
  const JsonValue *Files = Req.Params.get("files");
  const JsonValue *Path = Req.Params.get("path");
  if ((Files != nullptr) == (Path != nullptr))
    badRequest("taint needs exactly one of \"files\" (object of "
               "name -> source) or \"path\" (directory)");
  double Threshold = Opts.Threshold;
  if (const JsonValue *T = Req.Params.get("threshold")) {
    if (!T->isNumber())
      badRequest("\"threshold\" must be a number");
    Threshold = T->numberValue();
  }
  bool Dedup = readBoolParam(Req, "dedup", true);

  pysem::Project Payload("payload");
  if (Files) {
    if (!Files->isObject() || Files->objectValue().empty())
      badRequest("\"files\" must be a non-empty object of "
                 "name -> source");
    // std::map iteration is sorted by name, so the payload graph — and
    // therefore the report order — is deterministic.
    for (const auto &[Name, Source] : Files->objectValue()) {
      if (!Source.isString())
        badRequest(
            formatString("\"files\" entry \"%s\" must be a string",
                         Name.c_str()));
      Payload.addModule(Name, Source.stringValue());
    }
  } else {
    if (!Path->isString() || Path->stringValue().empty())
      badRequest("\"path\" must be a non-empty string");
    std::vector<std::string> LoadErrors;
    std::optional<pysem::Project> Loaded = pysem::loadProjectFromDir(
        Path->stringValue(), pysem::LoadOptions(), &LoadErrors);
    if (!Loaded)
      badRequest(Path->stringValue() + " is not a directory");
    Payload = std::move(*Loaded);
  }

  checkDeadline(D, "graph build");
  propgraph::PropagationGraph Graph =
      propgraph::buildProjectGraph(Payload);

  checkDeadline(D, "taint analysis");
  std::shared_lock<std::shared_mutex> Lock(WarmMutex);
  taint::RoleResolver Roles(&Seed.Spec, &Warm.Learned, Threshold);
  taint::TaintAnalyzer Analyzer(Graph);
  std::vector<taint::Violation> Reports = Analyzer.analyze(Roles);
  if (Dedup)
    Reports = taint::dedupByRepPair(Graph, Reports);
  std::vector<double> Confidence = taint::rankViolations(
      Graph, Reports, &Seed.Spec, &Warm.Learned, Threshold);
  return taint::reportsToJson(Graph, Reports, &Confidence);
}
