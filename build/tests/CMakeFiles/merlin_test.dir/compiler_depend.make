# Empty compiler generated dependencies file for merlin_test.
# This may be replaced when dependencies are built.
