file(REMOVE_RECURSE
  "libseldon_pyast.a"
)
