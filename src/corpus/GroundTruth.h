//===- corpus/GroundTruth.h - Oracle for generated corpora -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground-truth oracle of the synthetic corpus: which representations
/// truly are sources, sanitizers, and sinks. The paper estimates precision
/// by manually inspecting 50 samples per role (§7.3); our generator knows
/// the truth exactly, so the evaluation can compute both the sampled and
/// the exact precision.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CORPUS_GROUNDTRUTH_H
#define SELDON_CORPUS_GROUNDTRUTH_H

#include "propgraph/Event.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace corpus {

using propgraph::Role;
using propgraph::RoleMask;

/// Representation -> true roles (and vulnerability class).
class GroundTruth {
public:
  /// Registers \p Rep as truly holding the roles of \p Mask.
  void add(const std::string &Rep, RoleMask Mask,
           std::string VulnClass = std::string());

  /// True roles of \p Rep (0 when unknown/no role).
  RoleMask rolesOf(const std::string &Rep) const;

  /// True if \p Rep truly holds \p R.
  bool isTrue(const std::string &Rep, Role R) const;

  /// True if any of \p RepOptions truly holds \p R (events carry several
  /// backoff representations).
  bool anyTrue(const std::vector<std::string> &RepOptions, Role R) const;

  /// Vulnerability class of \p Rep ("xss", "sqli", ...; empty if none).
  const std::string &vulnClassOf(const std::string &Rep) const;

  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    RoleMask Mask = 0;
    std::string VulnClass;
  };
  std::unordered_map<std::string, Entry> Entries;
  static const std::string Empty;
};

} // namespace corpus
} // namespace seldon

#endif // SELDON_CORPUS_GROUNDTRUTH_H
