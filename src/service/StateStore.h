//===- service/StateStore.h - seldond durable state on disk ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk durability layer behind `seldond --state-dir` (formats in
/// service/StateCodec.h). One directory holds:
///
///   state.wal            — the append-only write-ahead journal
///   state-<seq>.ssn      — snapshots, newest sequence number wins
///   *.tmp<digits>        — in-flight temp files (crash leftovers are
///                          swept on open, same age-guarded rule as the
///                          caches)
///
/// Protocol, enforced by Service:
///
///   1. Every accepted mutating op (feedback, learn) is appended to the
///      journal and fsynced *before* its re-solve runs — a crash at any
///      later point replays the op from the journal (at-least-once).
///   2. An op that fails after journaling appends an abort record so
///      replay skips it.
///   3. After every SnapshotEvery-th applied op (and on orderly
///      shutdown), the served state is snapshotted via temp + rename and
///      the journal is compacted: a fresh journal is published (also
///      temp + rename), and older snapshots are pruned. Replay skips
///      records at or below the snapshot's sequence number, so a crash
///      anywhere between those steps recovers exactly.
///
/// recover() never yields partial state: a corrupt snapshot is evicted
/// and the next-older one tried; a torn journal tail is truncated away; a
/// journal with interior corruption is evicted whole (the surviving
/// snapshot still restores everything it covers).
///
/// Process-crash fault points (support/FaultInjection, `crash:` arms)
/// sit on every boundary above, keyed by the record's sequence number —
/// the recovery harness kills the daemon at each one and asserts
/// byte-identical recovery.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_STATESTORE_H
#define SELDON_SERVICE_STATESTORE_H

#include "service/StateCodec.h"
#include "support/IOResult.h"

#include <cstdint>
#include <string>
#include <vector>

namespace seldon {
namespace service {

/// Durability counters, exported as journal.*/snapshot.* metrics and in
/// the status op's "durability" section.
struct DurabilityStats {
  uint64_t Appends = 0;       ///< Journal records appended.
  uint64_t Fsyncs = 0;        ///< fsync calls (journal + snapshot).
  uint64_t BytesAppended = 0; ///< Journal bytes appended.
  uint64_t Snapshots = 0;     ///< Snapshots published.
  uint64_t SnapshotBytes = 0; ///< Snapshot bytes written.
  uint64_t Compactions = 0;   ///< Journal resets after a snapshot.
  uint64_t ReplayedRecords = 0;  ///< Journal records replayed on recovery.
  uint64_t TruncatedTailBytes = 0; ///< Torn-tail bytes dropped on recovery.
  uint64_t EvictedSnapshots = 0;   ///< Corrupt snapshots deleted.
  uint64_t EvictedJournals = 0;    ///< Corrupt journals deleted.
  uint64_t StaleTempsRemoved = 0;  ///< Crash-leaked temps swept on open.
  double RecoverySeconds = 0.0;    ///< Wall time of the last recover().
  /// Descriptive messages of every eviction/degradation, in order.
  std::vector<std::string> Errors;
};

/// What recover() reconstructed from the state directory.
struct RecoveredState {
  /// A valid snapshot was found; Snapshot then carries the newest one.
  bool HasSnapshot = false;
  StateSnapshot Snapshot;
  /// Journal records to re-execute, in order: seq strictly above the
  /// snapshot's (0 without a snapshot), aborted records already dropped.
  std::vector<JournalRecord> Replay;
};

/// The state directory handle. Construction creates the directory,
/// sweeps crash-leaked temps, and opens (creating if absent) the
/// journal; an unusable directory leaves valid() false with a
/// descriptive error — the caller refuses to start rather than running
/// without durability it was asked for.
class StateStore {
public:
  explicit StateStore(std::string Dir);
  ~StateStore();

  StateStore(const StateStore &) = delete;
  StateStore &operator=(const StateStore &) = delete;

  bool valid() const { return DirError.empty(); }
  const std::string &error() const { return DirError; }
  const std::string &dir() const { return Dir; }

  /// The journal file path (inside dir()).
  std::string journalPath() const;
  /// The snapshot path for covered sequence number \p Seq.
  std::string snapshotPath(uint64_t Seq) const;

  /// Reconstructs the durable state: newest valid snapshot (corrupt ones
  /// evicted, next-older tried) plus the filtered journal replay suffix.
  /// A torn journal tail is truncated in place; interior journal
  /// corruption evicts the journal (recorded in stats().Errors). Fails
  /// only on unusable IO (unreadable directory).
  io::IOResult<RecoveredState> recover();

  /// Appends \p Record to the journal and fsyncs it. On failure the
  /// record is not durable and the caller must fail the op. Crash points:
  /// journal-append (torn write), journal-fsync, journal-synced, keyed by
  /// Record.Seq.
  bool appendRecord(const JournalRecord &Record, std::string &Error);

  /// Publishes \p Snapshot atomically (temp + fsync + rename), prunes
  /// older snapshots, and compacts the journal to a fresh header. Crash
  /// points: snapshot-write, snapshot-rename, journal-reset, keyed by
  /// Snapshot.LastSeq.
  bool writeSnapshot(const StateSnapshot &Snapshot, std::string &Error);

  /// Lifetime counters (monotonic snapshot).
  DurabilityStats stats() const { return Stats; }

private:
  bool openJournal(std::string &Error);
  void closeJournal();
  /// Publishes \p Bytes at \p Path via "<Path>.tmp<seq>" + fsync +
  /// rename + directory fsync. \p CrashSeq keys the snapshot-write crash
  /// point when \p ArmCrash is set.
  bool publishFile(const std::string &Path, const std::string &Bytes,
                   bool ArmCrash, uint64_t CrashSeq, std::string &Error);
  void fsyncDir();

  std::string Dir;
  std::string DirError;
  int JournalFd = -1;
  DurabilityStats Stats;
};

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_STATESTORE_H
