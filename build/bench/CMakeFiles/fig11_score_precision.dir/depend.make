# Empty dependencies file for fig11_score_precision.
# This may be replaced when dependencies are built.
