# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/pysem_test[1]_include.cmake")
include("/root/repo/build/tests/pointsto_test[1]_include.cmake")
include("/root/repo/build/tests/propgraph_test[1]_include.cmake")
include("/root/repo/build/tests/spec_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/infer_test[1]_include.cmake")
include("/root/repo/build/tests/merlin_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/specio_test[1]_include.cmake")
include("/root/repo/build/tests/projectloader_test[1]_include.cmake")
include("/root/repo/build/tests/graphexport_test[1]_include.cmake")
include("/root/repo/build/tests/reportrenderer_test[1]_include.cmake")
include("/root/repo/build/tests/fstring_test[1]_include.cmake")
include("/root/repo/build/tests/explain_test[1]_include.cmake")
include("/root/repo/build/tests/argpos_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/graphbuilder2_test[1]_include.cmake")
include("/root/repo/build/tests/pyvalidate_test[1]_include.cmake")
include("/root/repo/build/tests/crossmodule_test[1]_include.cmake")
