file(REMOVE_RECURSE
  "CMakeFiles/seldon_spec.dir/spec/LearnedSpec.cpp.o"
  "CMakeFiles/seldon_spec.dir/spec/LearnedSpec.cpp.o.d"
  "CMakeFiles/seldon_spec.dir/spec/SeedSpec.cpp.o"
  "CMakeFiles/seldon_spec.dir/spec/SeedSpec.cpp.o.d"
  "CMakeFiles/seldon_spec.dir/spec/SpecIO.cpp.o"
  "CMakeFiles/seldon_spec.dir/spec/SpecIO.cpp.o.d"
  "CMakeFiles/seldon_spec.dir/spec/TaintSpec.cpp.o"
  "CMakeFiles/seldon_spec.dir/spec/TaintSpec.cpp.o.d"
  "libseldon_spec.a"
  "libseldon_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seldon_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
