file(REMOVE_RECURSE
  "CMakeFiles/argpos_test.dir/argpos_test.cpp.o"
  "CMakeFiles/argpos_test.dir/argpos_test.cpp.o.d"
  "argpos_test"
  "argpos_test.pdb"
  "argpos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/argpos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
