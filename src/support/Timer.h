//===- support/Timer.h - Wall-clock stopwatch --------------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic wall-clock stopwatch used by the scalability experiments
/// (paper Fig. 10, Tab. 2).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_TIMER_H
#define SELDON_SUPPORT_TIMER_H

#include <chrono>

namespace seldon {

/// Starts timing on construction; elapsed time is queried at any point.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  double millis() const { return seconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace seldon

#endif // SELDON_SUPPORT_TIMER_H
