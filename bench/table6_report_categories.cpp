//===- bench/table6_report_categories.cpp - Paper Tab. 6 ------------------===//
//
// Regenerates Table 6: classification of 25 randomly sampled bug reports,
// for the seed specification alone versus the inferred specification. The
// paper's shape: both discover a similar ratio of true vulnerable flows;
// the seed spec's false positives are dominated by missing sanitizers,
// while the inferred spec trades those for incorrect sources/sinks.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;

int main() {
  CorpusRun Run = runStandardExperiment(standardCorpusOptions(),
                                        standardPipelineOptions());

  auto SeedReports = analyzeCorpus(Run, /*UseLearned=*/false);
  auto FullReports = analyzeCorpus(Run, /*UseLearned=*/true);
  const size_t SampleSize = 25;
  ReportBreakdown SeedB =
      classifyReports(Run.Pipeline.Graph, SeedReports, Run.Data.Truth,
                      Run.Data.Flows, SampleSize, /*SampleSeed=*/11);
  ReportBreakdown FullB =
      classifyReports(Run.Pipeline.Graph, FullReports, Run.Data.Truth,
                      Run.Data.Flows, SampleSize, /*SampleSeed=*/11);

  std::cout << "=== Table 6: Bug-report categories, seed vs inferred "
               "specification (25 sampled reports) ===\n\n";
  TablePrinter Table({"Reason", "Seed spec", "Inferred spec"});
  for (size_t C = 0; C < NumReportCategories; ++C) {
    ReportCategory Cat = static_cast<ReportCategory>(C);
    Table.addRow({reportCategoryName(Cat), percent(SeedB.fraction(Cat)),
                  percent(FullB.fraction(Cat))});
  }
  Table.print(std::cout);

  std::cout << "\nPaper reference: true vulnerabilities 24% vs 28%; missing "
               "sanitizer 40% vs 8%;\nincorrect sink 0% vs 24%; incorrect "
               "source 0% vs 8%.\n";
  return 0;
}
