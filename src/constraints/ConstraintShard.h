//===- constraints/ConstraintShard.h - Per-project constraints ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-project slice of constraint generation, made persistable. A
/// ConstraintShard captures everything the Fig. 4 templates computed from
/// one project's propagation graph that is *expensive*: the per-file
/// reachability structure — which sanitizer sees which sources upstream and
/// sinks downstream (Fig. 4a/4b), which source reaches which sink through
/// which mid-sanitizers (Fig. 4c) — with representation names kept symbolic
/// (strings, not corpus RepIds).
///
/// Crucially, a shard is *filter-free*: the §4.3 frequency cutoff and the
/// §7.2 blacklist depend on corpus-global occurrence counts and on the seed
/// spec, so applying them at extraction time would invalidate every shard
/// whenever any other project changes. Instead the shard stores each
/// referenced event's full backoff option list, and appendShard() replays
/// the shard against the *current* global RepTable, seed, and GenOptions —
/// filtering, computing the 1/|Reps(v)| averaging coefficients, capping
/// pairs per anchor, and interning variables in the exact order serial
/// generation would. Composing all project shards in corpus order therefore
/// reproduces generateConstraints() byte for byte: same variable ids, same
/// constraint order, same coefficients (see composeConstraints).
///
/// The trade-off: shards store anchor pair lists uncapped (the
/// MaxPairsPerAnchor cap counts only *surviving* pairs, which is a merge-
/// time property), so a pathologically dense file costs shard bytes
/// proportional to its uncapped pair count.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CONSTRAINTS_CONSTRAINTSHARD_H
#define SELDON_CONSTRAINTS_CONSTRAINTSHARD_H

#include "constraints/ConstraintGen.h"

#include <cstdint>
#include <string>
#include <vector>

namespace seldon {

class Deadline;
class ThreadPool;

namespace constraints {

/// Index of an interned representation string within one shard.
using ShardStrId = uint32_t;
/// Index of an interned event within one shard.
using ShardEventId = uint32_t;

/// One event referenced by a shard: its full representation option list
/// (most to least specific), as indices into ConstraintShard::Strings.
struct ShardEvent {
  std::vector<ShardStrId> Reps;
};

/// One sanitizer anchor (Fig. 4a/4b): the sources flowing into it and the
/// sinks reachable from it, each in candidate (event id) order. Omitted
/// entirely when both lists are empty — serial generation skips those too.
struct ShardSanAnchor {
  ShardEventId San = 0;
  std::vector<ShardEventId> SourcesBefore;
  std::vector<ShardEventId> SinksAfter;
};

/// One (source, sink) pair of a source anchor (Fig. 4c) with the
/// mid-sanitizers lying between them (reachability already resolved).
struct ShardSrcPair {
  ShardEventId Snk = 0;
  std::vector<ShardEventId> Mids;
};

/// One source anchor (Fig. 4c): every sink it reaches (Snk != Src, in
/// candidate order), uncapped. Omitted when it reaches no sink.
struct ShardSrcAnchor {
  ShardEventId Src = 0;
  std::vector<ShardSrcPair> Pairs;
};

/// The anchors of one file, in extraction order: all sanitizer anchors
/// (Fig. 4a/4b), then all source anchors (Fig. 4c).
struct ShardFile {
  std::vector<ShardSanAnchor> SanAnchors;
  std::vector<ShardSrcAnchor> SrcAnchors;
};

/// The persistable per-project slice of constraint generation. Strings and
/// events are interned shard-locally in first-reference order; Files holds
/// one block per project file (empty blocks included, so blocks align with
/// the project's file list).
struct ConstraintShard {
  std::vector<std::string> Strings;
  std::vector<ShardEvent> Events;
  std::vector<ShardFile> Files;

  /// Total anchors across all files (shard-size diagnostics).
  size_t numAnchors() const;
};

/// Extracts the shard of the files [\p FileBegin, \p FileEnd) of \p Graph
/// — a project's file range within the global graph, or (0, files().size())
/// for a standalone per-project graph. Performs the full per-file BFS
/// reachability work of generateConstraints but no filtering: the result
/// depends only on the graph slice, never on RepTable counts, seed, or
/// GenOptions. Deterministic (serial per project; parallelism comes from
/// extracting different projects' shards concurrently).
ConstraintShard extractShard(const propgraph::PropagationGraph &Graph,
                             uint32_t FileBegin, uint32_t FileEnd);

/// Replays \p Shard into \p Sys under the current corpus state: filters
/// each event's options by the §4.3 cutoff (global counts in \p Reps) and
/// the seed blacklist, skips dead anchors, caps surviving pairs per anchor,
/// and appends the resulting constraints — interning variables into
/// Sys.Vars in the exact order serial generation would. Must be called
/// with shards in corpus (project) order, after seed pins were created.
void appendShard(const ConstraintShard &Shard,
                 const propgraph::RepTable &Reps, const spec::SeedSpec &Seed,
                 const GenOptions &Opts, ConstraintSystem &Sys);

/// Composes per-project \p Shards (in corpus order; null entries are
/// skipped) into a full constraint system over the global \p Graph:
/// prepareSystem() scaffolding (event filter, stats, seed pins) followed by
/// an appendShard() replay per shard. The result is byte-identical to
/// generateConstraints(Graph, ...) at any thread count, provided the shards
/// were extracted from the same graph's project slices. \p StopAt (may be
/// null) is polled at every shard boundary; expiry throws DeadlineError —
/// composition is all-or-nothing, like generation.
ConstraintSystem
composeConstraints(const propgraph::PropagationGraph &Graph,
                   const propgraph::RepTable &Reps,
                   const spec::SeedSpec &Seed,
                   const std::vector<const ConstraintShard *> &Shards,
                   const GenOptions &Opts = GenOptions(),
                   ThreadPool *Pool = nullptr,
                   const Deadline *StopAt = nullptr);

} // namespace constraints
} // namespace seldon

#endif // SELDON_CONSTRAINTS_CONSTRAINTSHARD_H
