//===- propgraph/GraphStats.h - Structural graph statistics ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural statistics of a propagation graph: event-kind breakdown,
/// degree profile, and the longest flow chain. Used by the dataset-stats
/// bench (Tab. 1 supplement) and handy when sanity-checking a corpus.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PROPGRAPH_GRAPHSTATS_H
#define SELDON_PROPGRAPH_GRAPHSTATS_H

#include "propgraph/PropagationGraph.h"

#include <array>
#include <string>

namespace seldon {
namespace propgraph {

/// Aggregate structural statistics.
struct GraphStats {
  size_t NumEvents = 0;
  size_t NumEdges = 0;
  size_t NumFiles = 0;
  /// Indexed by EventKind (Call, ObjectRead, FormalParam, CallArgument).
  std::array<size_t, 4> EventsByKind{};
  /// Events with no incoming flow (potential taint entry points).
  size_t Roots = 0;
  /// Events with no outgoing flow.
  size_t Leaves = 0;
  size_t MaxInDegree = 0;
  size_t MaxOutDegree = 0;
  double AvgOutDegree = 0.0;
  /// Number of events on the longest flow chain (0 for an empty graph,
  /// 1 for an edgeless one). Only meaningful for acyclic graphs; cyclic
  /// graphs (collapsed mode) report 0.
  size_t LongestChain = 0;
  /// Events in the most event-dense file.
  size_t MaxEventsPerFile = 0;

  size_t countOf(EventKind Kind) const {
    return EventsByKind[static_cast<size_t>(Kind)];
  }
};

/// Computes statistics for \p Graph in O(V + E).
GraphStats computeGraphStats(const PropagationGraph &Graph);

/// Multi-line human-readable rendering.
std::string renderGraphStats(const GraphStats &Stats);

} // namespace propgraph
} // namespace seldon

#endif // SELDON_PROPGRAPH_GRAPHSTATS_H
