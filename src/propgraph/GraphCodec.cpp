//===- propgraph/GraphCodec.cpp - Binary graph serialization --------------===//

#include "propgraph/GraphCodec.h"

#include "support/BinaryCodec.h"
#include "support/StrUtil.h"

#include <cstring>

using namespace seldon;
using namespace seldon::propgraph;
using codec::ByteReader;
using codec::putFixed64;
using codec::putString;
using codec::putVarint;

uint64_t seldon::propgraph::fnv1a64(std::string_view Bytes, uint64_t Seed) {
  return codec::fnv1a64(Bytes, Seed);
}

namespace {

constexpr char Magic[4] = {'S', 'P', 'G', 'C'};

std::string encodePayload(const PropagationGraph &Graph) {
  std::string Payload;
  putVarint(Payload, Graph.files().size());
  for (const std::string &File : Graph.files())
    putString(Payload, File);

  putVarint(Payload, Graph.numEvents());
  for (const Event &E : Graph.events()) {
    Payload.push_back(static_cast<char>(E.Kind));
    Payload.push_back(static_cast<char>(E.Candidates));
    putVarint(Payload, E.FileIdx);
    putVarint(Payload, E.Loc.Line);
    putVarint(Payload, E.Loc.Col);
    putVarint(Payload, E.Reps.size());
    for (const std::string &Rep : E.Reps)
      putString(Payload, Rep);
  }

  putVarint(Payload, Graph.numEdges());
  for (EventId From = 0; From < Graph.numEvents(); ++From)
    for (EventId To : Graph.successors(From)) {
      putVarint(Payload, From);
      putVarint(Payload, To);
    }
  return Payload;
}

} // namespace

std::string seldon::propgraph::encodeGraph(const PropagationGraph &Graph) {
  std::string Payload = encodePayload(Graph);
  std::string Out;
  Out.reserve(Payload.size() + 24);
  Out.append(Magic, sizeof(Magic));
  putVarint(Out, GraphCodecVersion);
  putFixed64(Out, fnv1a64(Payload));
  putVarint(Out, Payload.size());
  Out += Payload;
  return Out;
}

io::IOResult<PropagationGraph>
seldon::propgraph::decodeGraph(std::string_view Bytes) {
  using Result = io::IOResult<PropagationGraph>;
  ByteReader Reader(Bytes);

  if (Bytes.size() < sizeof(Magic))
    return Result::failure(formatString(
        "truncated graph header: %zu byte(s), need at least %zu",
        Bytes.size(), sizeof(Magic)));
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Result::failure(
        "bad magic: not a serialized propagation graph");
  for (size_t I = 0; I < sizeof(Magic); ++I)
    Reader.getByte("magic");

  uint64_t Version = Reader.getVarint("format version");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (Version != GraphCodecVersion)
    return Result::failure(formatString(
        "unsupported graph format version %llu (this build reads "
        "version %u)",
        static_cast<unsigned long long>(Version), GraphCodecVersion));

  uint64_t StoredChecksum = Reader.getFixed64("payload checksum");
  uint64_t PayloadLen = Reader.getVarint("payload length");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (PayloadLen != Reader.remaining())
    return Result::failure(formatString(
        "payload size mismatch: header declares %llu byte(s), %zu "
        "follow (%s)",
        static_cast<unsigned long long>(PayloadLen), Reader.remaining(),
        PayloadLen > Reader.remaining() ? "truncated entry"
                                        : "trailing garbage"));
  uint64_t ActualChecksum = fnv1a64(Bytes.substr(Reader.offset()));
  if (ActualChecksum != StoredChecksum)
    return Result::failure(formatString(
        "payload checksum mismatch: stored %016llx, computed %016llx "
        "(corrupt entry)",
        static_cast<unsigned long long>(StoredChecksum),
        static_cast<unsigned long long>(ActualChecksum)));

  // The payload is integrity-checked now; remaining failures are
  // structural (a corrupt encoder or version-1 layout drift) and still
  // reported descriptively rather than trusted.
  PropagationGraph Graph;

  uint64_t NumFiles = Reader.getVarint("file count");
  for (uint64_t I = 0; Reader.ok() && I < NumFiles; ++I) {
    std::string_view Path = Reader.getString("file path");
    if (Reader.ok())
      Graph.addFile(std::string(Path));
  }

  uint64_t NumEvents = Reader.getVarint("event count");
  for (uint64_t I = 0; Reader.ok() && I < NumEvents; ++I) {
    Event E;
    uint8_t Kind = Reader.getByte("event kind");
    uint8_t Candidates = Reader.getByte("candidate mask");
    uint64_t FileIdx = Reader.getVarint("event file index");
    uint64_t Line = Reader.getVarint("event line");
    uint64_t Col = Reader.getVarint("event column");
    uint64_t NumReps = Reader.getVarint("representation count");
    if (!Reader.ok())
      break;
    if (Kind > static_cast<uint8_t>(EventKind::CallArgument)) {
      Reader.fail(formatString("invalid event kind %u", Kind));
      break;
    }
    if (Candidates > AllRolesMask) {
      Reader.fail(formatString("invalid candidate mask %u", Candidates));
      break;
    }
    if (FileIdx >= Graph.files().size()) {
      Reader.fail(formatString(
          "event file index %llu out of range (%zu file(s))",
          static_cast<unsigned long long>(FileIdx),
          Graph.files().size()));
      break;
    }
    if (NumReps == 0) {
      Reader.fail("event with no representations");
      break;
    }
    E.Kind = static_cast<EventKind>(Kind);
    E.Candidates = static_cast<RoleMask>(Candidates);
    E.FileIdx = static_cast<uint32_t>(FileIdx);
    E.Loc.Line = static_cast<uint32_t>(Line);
    E.Loc.Col = static_cast<uint32_t>(Col);
    E.Reps.reserve(NumReps);
    for (uint64_t R = 0; Reader.ok() && R < NumReps; ++R) {
      std::string_view Rep = Reader.getString("representation");
      if (Reader.ok())
        E.Reps.emplace_back(Rep);
    }
    if (Reader.ok())
      Graph.addEvent(std::move(E));
  }

  uint64_t NumEdges = Reader.getVarint("edge count");
  for (uint64_t I = 0; Reader.ok() && I < NumEdges; ++I) {
    uint64_t From = Reader.getVarint("edge source");
    uint64_t To = Reader.getVarint("edge target");
    if (!Reader.ok())
      break;
    if (From >= Graph.numEvents() || To >= Graph.numEvents()) {
      Reader.fail(formatString(
          "edge %llu -> %llu out of range (%zu event(s))",
          static_cast<unsigned long long>(From),
          static_cast<unsigned long long>(To), Graph.numEvents()));
      break;
    }
    if (From == To) {
      Reader.fail(formatString("self-edge on event %llu",
                               static_cast<unsigned long long>(From)));
      break;
    }
    Graph.addEdge(static_cast<EventId>(From), static_cast<EventId>(To));
  }

  if (Reader.ok() && Reader.remaining() != 0)
    Reader.fail(formatString("%zu unconsumed payload byte(s)",
                             Reader.remaining()));
  if (!Reader.ok())
    return Result::failure(Reader.error());

  Result Out;
  Out.Value = std::move(Graph);
  return Out;
}
