//===- solver/ProjectedGradient.cpp - Plain projected subgradient ---------===//

#include "solver/ProjectedGradient.h"

#include "solver/CompiledObjective.h"
#include "solver/SolveTelemetry.h"

#include <cmath>

using namespace seldon;
using namespace seldon::solver;

template <class ObjT>
SolveResult ProjectedGradient::minimize(const ObjT &Obj) const {
  return minimize(Obj, Obj.initialPoint());
}

template <class ObjT>
SolveResult ProjectedGradient::minimize(const ObjT &Obj,
                                        std::vector<double> X0) const {
  SolveResult Result;
  Result.X = std::move(X0);
  Obj.project(Result.X);

  std::vector<double> Grad;
  SolveTelemetry Telemetry;
  // The fused call at the start of each step doubles as the value check of
  // the previous one: a single constraint sweep per iteration.
  double Value = Obj.valueAndGradient(Result.X, Grad);
  std::vector<double> Best = Result.X;
  double BestValue = Value;
  double PrevValue = Value;

  for (int Iter = 1; Iter <= Options.MaxIterations; ++Iter) {
    double Step = Options.LearningRate / std::sqrt(static_cast<double>(Iter));
    for (size_t I = 0; I < Grad.size(); ++I)
      Result.X[I] -= Step * Grad[I];
    Obj.project(Result.X);

    double Current = Obj.valueAndGradient(Result.X, Grad);
    Result.Iterations = Iter;
    // Subgradient steps are not monotone; track the best iterate.
    if (Current < BestValue) {
      BestValue = Current;
      Best = Result.X;
      Telemetry.onBestUpdate();
    }
    Telemetry.onIteration(Iter, Current, Grad);
    if (Options.OnIteration)
      Options.OnIteration(Iter, Current);
    if (std::abs(PrevValue - Current) < Options.Tolerance) {
      Result.Converged = true;
      break;
    }
    PrevValue = Current;
  }
  Result.X = std::move(Best);
  Result.FinalObjective = BestValue;
  return Result;
}

namespace seldon {
namespace solver {

template SolveResult ProjectedGradient::minimize<Objective>(const Objective &)
    const;
template SolveResult
ProjectedGradient::minimize<Objective>(const Objective &,
                                       std::vector<double>) const;
template SolveResult ProjectedGradient::minimize<CompiledObjective>(
    const CompiledObjective &) const;
template SolveResult
ProjectedGradient::minimize<CompiledObjective>(const CompiledObjective &,
                                               std::vector<double>) const;

} // namespace solver
} // namespace seldon
