//===- support/Trace.cpp - RAII stage spans -------------------------------===//

#include "support/Trace.h"

using namespace seldon;
using namespace seldon::trace;

namespace {
/// Innermost open span on this thread; children prefix its path.
thread_local Span *CurrentSpan = nullptr;
} // namespace

Span::Span(metrics::Registry &Reg, std::string_view Name)
    : Reg(Reg), StartSeconds(Reg.now()), Record(Reg.enabled()),
      Parent(CurrentSpan) {
  // Nest only under spans of the same registry — a test's private registry
  // must not pick up path prefixes from the global one (and vice versa).
  if (Parent && &Parent->Reg != &Reg)
    Parent = nullptr;
  if (Parent) {
    Path.reserve(Parent->Path.size() + 1 + Name.size());
    Path += Parent->Path;
    Path += '/';
    Path += Name;
  } else {
    Path = std::string(Name);
  }
  CurrentSpan = this;
}

Span::~Span() { finish(); }

double Span::seconds() const {
  return DurationSeconds >= 0.0 ? DurationSeconds
                                : Reg.now() - StartSeconds;
}

double Span::finish() {
  if (DurationSeconds >= 0.0)
    return DurationSeconds;
  DurationSeconds = Reg.now() - StartSeconds;
  if (CurrentSpan == this)
    CurrentSpan = Parent;
  if (Record)
    Reg.recordSpan(Path, StartSeconds, DurationSeconds);
  return DurationSeconds;
}
