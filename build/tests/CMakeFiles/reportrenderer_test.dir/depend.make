# Empty dependencies file for reportrenderer_test.
# This may be replaced when dependencies are built.
