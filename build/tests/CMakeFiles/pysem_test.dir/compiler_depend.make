# Empty compiler generated dependencies file for pysem_test.
# This may be replaced when dependencies are built.
