//===- pyast/Ast.cpp - Python abstract syntax tree ------------------------===//

#include "pyast/Ast.h"

using namespace seldon;
using namespace seldon::pyast;

// Out-of-line virtual method anchor (keeps the vtable in one object file).
Node::~Node() = default;

const char *seldon::pyast::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add: return "+";
  case BinaryOp::Sub: return "-";
  case BinaryOp::Mul: return "*";
  case BinaryOp::MatMul: return "@";
  case BinaryOp::Div: return "/";
  case BinaryOp::FloorDiv: return "//";
  case BinaryOp::Mod: return "%";
  case BinaryOp::Pow: return "**";
  case BinaryOp::LShift: return "<<";
  case BinaryOp::RShift: return ">>";
  case BinaryOp::BitAnd: return "&";
  case BinaryOp::BitOr: return "|";
  case BinaryOp::BitXor: return "^";
  }
  return "?";
}
