//===- bench/ablation_argpos.cpp - §3.3 future work: per-argument sinks ---===//
//
// The paper's §3.3: "a function may act as a source or a sink depending on
// its arguments, however, we leave this differentiation for future work."
// This ablation implements that future work (BuildOptions::ArgPositionReps)
// and measures its effect on the "Flows into wrong parameter" false
// positives of Tab. 6: with per-argument sink specifications
// (`flask.redirect()[arg0]` instead of `flask.redirect()`), tainted data
// entering a harmless keyword parameter no longer triggers a report.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>
#include <unordered_set>

using namespace seldon;
using namespace seldon::eval;

namespace {

/// Rewrites the sink entries of \p Seed to argument-position form using
/// the universe's expression templates.
spec::SeedSpec argPositionSeed(const spec::SeedSpec &Seed,
                               const corpus::ApiUniverse &Universe) {
  spec::SeedSpec Out;
  Out.Blacklist = Seed.Blacklist;
  for (const auto &[Rep, Mask] : Seed.Spec.entries()) {
    if (!propgraph::maskHas(Mask, propgraph::Role::Sink)) {
      Out.Spec.addMask(Rep, Mask);
      continue;
    }
    bool Rewritten = false;
    for (const corpus::ApiInfo &A : Universe.sinks()) {
      if (A.Rep != Rep)
        continue;
      if (std::optional<std::string> Slot = corpus::taintSlotSuffix(A.Expr)) {
        Out.Spec.add(Rep + *Slot, propgraph::Role::Sink);
        Rewritten = true;
      }
      break;
    }
    if (!Rewritten)
      Out.Spec.addMask(Rep, Mask);
  }
  return Out;
}

/// Counts reports that correspond to the generator's wrong-parameter flows
/// (tainted data entering a harmless parameter — false positives) and to
/// its genuine unsanitized flows. Argument-event sink reps are reduced to
/// the plain call rep by stripping the "[...]" suffix.
struct MatchCounts {
  size_t WrongParam = 0;
  size_t Genuine = 0;
  size_t Total = 0;
};

MatchCounts matchReports(const CorpusRun &Run,
                         const std::vector<taint::Violation> &Reports) {
  // Index the generator's flows by (file, srcRep, snkRep).
  std::unordered_set<std::string> WrongKeys, GenuineKeys;
  for (const corpus::GeneratedFlow &F : Run.Data.Flows) {
    std::string Key = F.File + "|" + F.SrcRep + "|" + F.SnkRep;
    if (F.WrongParam)
      WrongKeys.insert(Key);
    else if (!F.Sanitized)
      GenuineKeys.insert(Key);
  }

  const propgraph::PropagationGraph &Graph = Run.Pipeline.Graph;
  MatchCounts Out;
  Out.Total = Reports.size();
  for (const taint::Violation &V : Reports) {
    const propgraph::Event &Src = Graph.event(V.Source);
    const propgraph::Event &Snk = Graph.event(V.Sink);
    const std::string &File = Graph.files()[V.FileIdx];
    for (const std::string &SrcRep : Src.Reps) {
      for (const std::string &SnkRepRaw : Snk.Reps) {
        std::string SnkRep = SnkRepRaw;
        size_t Bracket = SnkRep.rfind('[');
        if (Bracket != std::string::npos && SnkRep.back() == ']' &&
            SnkRep.compare(Bracket - 1, 2, ")[") == 0)
          SnkRep.resize(Bracket);
        std::string Key = File + "|" + SrcRep + "|" + SnkRep;
        if (WrongKeys.count(Key)) {
          ++Out.WrongParam;
          goto NextReport;
        }
        if (GenuineKeys.count(Key)) {
          ++Out.Genuine;
          goto NextReport;
        }
      }
    }
  NextReport:;
  }
  return Out;
}

} // namespace

int main() {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);
  corpus::ApiUniverse Universe =
      corpus::ApiUniverse::standard(CorpusOpts.Universe);

  std::cout << "=== Ablation: argument-position-sensitive sinks (§3.3 "
               "future work) ===\n\n";
  TablePrinter Table({"Mode", "Reports", "Genuine flows",
                      "Wrong-parameter FPs"});

  for (bool ArgPos : {false, true}) {
    infer::PipelineOptions Opts = standardPipelineOptions();
    Opts.Build.ArgPositionReps = ArgPos;
    spec::SeedSpec Seed =
        ArgPos ? argPositionSeed(Data.Seed, Universe) : Data.Seed;
    infer::Session S(Opts);
    S.addProjects(Data.Projects);
    S.generateConstraints(Seed);
    infer::PipelineResult R = S.solve();

    CorpusRun Run;
    Run.Data.Truth = Data.Truth;
    Run.Data.Flows = Data.Flows;
    Run.Data.Seed = Seed;
    Run.Pipeline = std::move(R);
    auto Reports = analyzeCorpus(Run, /*UseLearned=*/true);
    MatchCounts Counts = matchReports(Run, Reports);
    Table.addRow({ArgPos ? "Per-argument sinks" : "Whole-call sinks (paper)",
                  std::to_string(Counts.Total),
                  std::to_string(Counts.Genuine),
                  std::to_string(Counts.WrongParam)});
  }
  Table.print(std::cout);

  std::cout << "\nExpected shape: per-argument sink specifications keep the "
               "genuine reports and\neliminate the wrong-parameter false "
               "positives (Tab. 6's 12% row).\n";
  return 0;
}
