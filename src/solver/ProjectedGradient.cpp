//===- solver/ProjectedGradient.cpp - Plain projected subgradient ---------===//

#include "solver/ProjectedGradient.h"

#include <cmath>

using namespace seldon;
using namespace seldon::solver;

SolveResult ProjectedGradient::minimize(const Objective &Obj) const {
  return minimize(Obj, Obj.initialPoint());
}

SolveResult ProjectedGradient::minimize(const Objective &Obj,
                                        std::vector<double> X0) const {
  SolveResult Result;
  Result.X = std::move(X0);
  Obj.project(Result.X);

  std::vector<double> Grad;
  std::vector<double> Best = Result.X;
  double BestValue = Obj.value(Result.X);
  double PrevValue = BestValue;

  for (int Iter = 1; Iter <= Options.MaxIterations; ++Iter) {
    Obj.gradient(Result.X, Grad);
    double Step = Options.LearningRate / std::sqrt(static_cast<double>(Iter));
    for (size_t I = 0; I < Grad.size(); ++I)
      Result.X[I] -= Step * Grad[I];
    Obj.project(Result.X);

    double Current = Obj.value(Result.X);
    Result.Iterations = Iter;
    // Subgradient steps are not monotone; track the best iterate.
    if (Current < BestValue) {
      BestValue = Current;
      Best = Result.X;
    }
    if (Options.OnIteration)
      Options.OnIteration(Iter, Current);
    if (std::abs(PrevValue - Current) < Options.Tolerance) {
      Result.Converged = true;
      break;
    }
    PrevValue = Current;
  }
  Result.X = std::move(Best);
  Result.FinalObjective = BestValue;
  return Result;
}
