//===- merlin/MerlinPipeline.h - End-to-end Merlin baseline ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs the full Merlin baseline (paper §6/§7.4): optionally collapse the
/// propagation graph (§6.4), build the Fig. 6 factor graph, run loopy BP
/// (standing in for Infer.NET's EP) with an optional Gibbs-sampling
/// fallback, and read marginals back as a LearnedSpec.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_MERLIN_MERLINPIPELINE_H
#define SELDON_MERLIN_MERLINPIPELINE_H

#include "merlin/GibbsSampler.h"
#include "merlin/MerlinConstraints.h"
#include "spec/LearnedSpec.h"

namespace seldon {
namespace merlin {

/// Which inference engine to run.
enum class InferenceMethod { BeliefPropagation, Gibbs };

/// End-to-end Merlin knobs.
struct MerlinOptions {
  /// Collapse events with equal representation first (Merlin's original
  /// graph granularity, §6.4).
  bool Collapsed = true;
  InferenceMethod Method = InferenceMethod::BeliefPropagation;
  MerlinGenOptions Gen;
  BpOptions Bp;
  GibbsOptions Gibbs;
};

/// Merlin's output and run metadata (Tab. 2 columns).
struct MerlinResult {
  spec::LearnedSpec Learned; ///< Marginal P(role) per representation.
  std::array<size_t, 3> NumCandidates{0, 0, 0}; ///< src/san/snk.
  size_t NumFactors = 0;
  double Seconds = 0.0;
  bool TimedOut = false;
  bool Converged = false;
  int Iterations = 0;
};

/// Runs Merlin over \p Graph with seeds \p Seed.
MerlinResult runMerlin(const propgraph::PropagationGraph &Graph,
                       const spec::SeedSpec &Seed,
                       const MerlinOptions &Opts = MerlinOptions());

} // namespace merlin
} // namespace seldon

#endif // SELDON_MERLIN_MERLINPIPELINE_H
