#!/usr/bin/env bash
# Times the solve stage with the legacy evaluator and the compiled fused
# kernel on the Fig. 10 corpus and writes the comparison to
# BENCH_solver.json (in the repo root, or $1 if given). Exits non-zero if
# the two paths disagree on the learned specification or if the compiled
# kernel is not at least 2x faster serially.
#
# Knobs: SELDON_PROJECTS (corpus size, default 300), SELDON_JOBS.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
OUT="${1:-$ROOT/BENCH_solver.json}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "$ROOT/build" -S "$ROOT" >/dev/null
cmake --build "$ROOT/build" -j "$JOBS" --target solver_kernel >/dev/null

"$ROOT/build/bench/solver_kernel" > "$OUT"
echo "wrote $OUT"

python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    r = json.load(f)
if not r["byte_identical"]:
    sys.exit("FAIL: legacy and compiled specs differ")
if r["serial_speedup"] < 2.0:
    sys.exit(f"FAIL: serial speedup {r['serial_speedup']:.2f}x < 2x")
print(f"OK: {r['serial_speedup']:.2f}x serial speedup, "
      f"{r['dedup_ratio']:.2f}x dedup, specs byte-identical")
EOF
