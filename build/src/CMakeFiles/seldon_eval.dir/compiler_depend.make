# Empty compiler generated dependencies file for seldon_eval.
# This may be replaced when dependencies are built.
