#!/usr/bin/env bash
# Full local check: the tier-1 build + tests, then a ThreadSanitizer build
# that runs the concurrency-sensitive tests (thread pool + parallel
# pipeline). Run from anywhere; builds land in build/ and build-tsan/.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

echo "=== tier-1: configure + build + ctest ==="
cmake -B "$ROOT/build" -S "$ROOT"
cmake --build "$ROOT/build" -j "$JOBS"
ctest --test-dir "$ROOT/build" --output-on-failure -j "$JOBS"

echo
echo "=== tsan: parallel pipeline under ThreadSanitizer ==="
cmake -B "$ROOT/build-tsan" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g"
cmake --build "$ROOT/build-tsan" -j "$JOBS" \
  --target threadpool_test pipeline_parallel_test compiled_objective_test
ctest --test-dir "$ROOT/build-tsan" --output-on-failure -j "$JOBS" \
  -R 'ThreadPoolTest|PipelineParallelTest|CompileTest|CompiledEquivalenceTest'

echo
echo "all checks passed"
