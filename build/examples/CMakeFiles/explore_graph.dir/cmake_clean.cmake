file(REMOVE_RECURSE
  "CMakeFiles/explore_graph.dir/explore_graph.cpp.o"
  "CMakeFiles/explore_graph.dir/explore_graph.cpp.o.d"
  "explore_graph"
  "explore_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
