//===- service/Json.cpp - Minimal JSON values for the wire protocol -------===//

#include "service/Json.h"

#include "support/StrUtil.h"

#include <charconv>
#include <cmath>
#include <cstring>
#include <system_error>

using namespace seldon;
using namespace seldon::service;

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Object.find(Key);
  return It == Object.end() ? nullptr : &It->second;
}

JsonValue JsonValue::makeBool(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.Boolean = B;
  return V;
}

JsonValue JsonValue::makeNumber(double N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Number = N;
  return V;
}

JsonValue JsonValue::makeString(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

std::string seldon::service::renderJsonNumber(double N) {
  if (!std::isfinite(N))
    return "null"; // JSON has no NaN/Inf; the protocol never emits them.
  // std::to_chars, not printf: number formatting must not follow
  // LC_NUMERIC — a host locale with a ',' decimal separator would
  // otherwise corrupt the wire protocol ("0,1" is not JSON).
  char Buf[64];
  double Integral;
  if (std::modf(N, &Integral) == 0.0 && std::fabs(N) < 1e15) {
    auto R = std::to_chars(Buf, Buf + sizeof(Buf), N,
                           std::chars_format::fixed, 0);
    return std::string(Buf, R.ptr);
  }
  // Shortest general form that round-trips: 0.1 renders as "0.1", not the
  // full 17-digit expansion, while arbitrary doubles still survive exactly.
  for (int Precision = 1; Precision < 17; ++Precision) {
    auto R = std::to_chars(Buf, Buf + sizeof(Buf), N,
                           std::chars_format::general, Precision);
    double Back = 0.0;
    if (std::from_chars(Buf, R.ptr, Back).ec == std::errc() && Back == N)
      return std::string(Buf, R.ptr);
  }
  auto R = std::to_chars(Buf, Buf + sizeof(Buf), N,
                         std::chars_format::general, 17);
  return std::string(Buf, R.ptr);
}

std::string JsonValue::render() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return Boolean ? "true" : "false";
  case Kind::Number:
    return renderJsonNumber(Number);
  case Kind::String:
    return "\"" + jsonEscape(Str) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < Array.size(); ++I) {
      if (I)
        Out += ",";
      Out += Array[I].render();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    bool First = true;
    for (const auto &[Key, Value] : Object) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"" + jsonEscape(Key) + "\":" + Value.render();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace seldon {
namespace service {

/// Recursive-descent parser over a string_view. Bounded nesting depth so a
/// pathological request ("[[[[...") cannot exhaust the C++ stack.
class JsonParser {
public:
  JsonParser(std::string_view Text, std::string &Error)
      : Text(Text), Error(Error) {}

  bool parseDocument(JsonValue &Out) {
    skipWhitespace();
    if (!parseValue(Out, 0))
      return false;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &What) {
    Error = What + formatString(" at byte %zu", Pos);
    return false;
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool parseLiteral(const char *Word) {
    size_t Len = std::strlen(Word);
    if (Text.size() - Pos < Len || Text.substr(Pos, Len) != Word)
      return false;
    Pos += Len;
    return true;
  }

  bool parseValue(JsonValue &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWhitespace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    switch (C) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      Out.K = JsonValue::Kind::String;
      return parseString(Out.Str);
    }
    case 't':
      if (parseLiteral("true")) {
        Out = JsonValue::makeBool(true);
        return true;
      }
      return fail("invalid literal");
    case 'f':
      if (parseLiteral("false")) {
        Out = JsonValue::makeBool(false);
        return true;
      }
      return fail("invalid literal");
    case 'n':
      if (parseLiteral("null")) {
        Out = JsonValue::makeNull();
        return true;
      }
      return fail("invalid literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, int Depth) {
    ++Pos; // '{'
    Out.K = JsonValue::Kind::Object;
    skipWhitespace();
    if (consume('}'))
      return true;
    while (true) {
      skipWhitespace();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWhitespace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      JsonValue Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Out.Object[Key] = std::move(Value); // Duplicate keys: last one wins.
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, int Depth) {
    ++Pos; // '['
    Out.K = JsonValue::Kind::Array;
    skipWhitespace();
    if (consume(']'))
      return true;
    while (true) {
      JsonValue Value;
      if (!parseValue(Value, Depth + 1))
        return false;
      Out.Array.push_back(std::move(Value));
      skipWhitespace();
      if (consume(','))
        continue;
      if (consume(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Text.size() - Pos < 4)
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape digit");
    }
    return true;
  }

  void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xF0 | (Code >> 18));
      Out += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        // Surrogate pair: a high surrogate must be followed by \uDC00..
        if (Code >= 0xD800 && Code <= 0xDBFF) {
          if (Text.size() - Pos < 2 || Text[Pos] != '\\' ||
              Text[Pos + 1] != 'u')
            return fail("unpaired surrogate");
          Pos += 2;
          unsigned Low = 0;
          if (!parseHex4(Low))
            return false;
          if (Low < 0xDC00 || Low > 0xDFFF)
            return fail("invalid low surrogate");
          Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
        } else if (Code >= 0xDC00 && Code <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    auto Digits = [&]() {
      size_t Before = Pos;
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
      return Pos > Before;
    };
    if (!Digits())
      return fail("invalid number");
    // JSON forbids leading zeros ("01"), but strtod accepts them; keep the
    // parser permissive there — requests are machine-generated anyway.
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!Digits())
        return fail("invalid number (no fraction digits)");
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!Digits())
        return fail("invalid number (no exponent digits)");
    }
    // std::from_chars, not strtod: parsing must not follow LC_NUMERIC —
    // under a ',' decimal locale strtod would stop at the '.' and reject
    // every fractional number on the wire.
    const char *First = Text.data() + Start;
    const char *Last = Text.data() + Pos;
    double Value = 0.0;
    auto R = std::from_chars(First, Last, Value);
    if (R.ec != std::errc() || R.ptr != Last)
      return fail("number out of range");
    Out = JsonValue::makeNumber(Value);
    return true;
  }

  std::string_view Text;
  std::string &Error;
  size_t Pos = 0;
};

} // namespace service
} // namespace seldon

bool seldon::service::parseJson(std::string_view Text, JsonValue &Out,
                                std::string &Error) {
  Out = JsonValue();
  JsonParser Parser(Text, Error);
  return Parser.parseDocument(Out);
}
