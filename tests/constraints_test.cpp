//===- tests/constraints_test.cpp - Tests for Fig. 4 constraint gen -------===//

#include "constraints/ConstraintGen.h"
#include "propgraph/GraphBuilder.h"
#include "pysem/Project.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::constraints;
using namespace seldon::propgraph;

namespace {

struct GenFixture {
  pysem::Project Proj;
  PropagationGraph Graph;
  RepTable Reps;
  spec::SeedSpec Seed;
  ConstraintSystem Sys;

  GenFixture(std::string_view Source, std::string_view SeedText,
             GenOptions Opts = lowCutoff()) {
    const pysem::ModuleInfo &M = Proj.addModule("app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = buildModuleGraph(Proj, M);
    Reps.countOccurrences(Graph);
    Seed = spec::SeedSpec::parse(SeedText);
    Sys = generateConstraints(Graph, Reps, Seed, Opts);
  }

  static GenOptions lowCutoff() {
    GenOptions O;
    O.RepCutoff = 1; // Single-file fixtures: every rep is rare.
    return O;
  }

  /// Number of constraints whose LHS mentions (rep, role).
  size_t constraintsWithLhs(const std::string &Rep, Role R) const {
    RepId Id;
    if (!Reps.lookup(Rep, Id))
      return 0;
    VarId V;
    VarTable &Vars = const_cast<VarTable &>(Sys.Vars);
    if (!Vars.lookup(Id, R, V))
      return 0;
    size_t N = 0;
    for (const auto &C : Sys.Constraints)
      for (const auto &T : C.Lhs)
        if (T.Var == V)
          ++N;
    return N;
  }
};

TEST(ConstraintGenTest, ChainYieldsAllThreeTemplates) {
  // src() -> san(x) -> snk(y): one instance of each of Fig. 4a/b/c.
  GenFixture F("import w\nimport s\nimport d\n"
               "x = w.src()\n"
               "y = s.san(x)\n"
               "d.snk(y)\n",
               "");
  // Each call is a candidate for all roles, so several template instances
  // fire; the exact count depends on candidate pairs, but every template
  // must contribute at least one constraint.
  EXPECT_GE(F.Sys.Constraints.size(), 3u);
  EXPECT_GE(F.constraintsWithLhs("s.san()", Role::Sanitizer), 1u);
  EXPECT_GE(F.constraintsWithLhs("w.src()", Role::Source), 1u);
}

TEST(ConstraintGenTest, ConstraintShapeFig4a) {
  GenFixture F("import w\nimport s\nimport d\n"
               "x = w.src()\n"
               "y = s.san(x)\n"
               "d.snk(y)\n",
               "");
  // Find the (san, snk) <= sources constraint and check its arithmetic
  // shape: 2 LHS terms, C = 0.75.
  RepId SanRep, SnkRep, SrcRep;
  ASSERT_TRUE(F.Reps.lookup("s.san()", SanRep));
  ASSERT_TRUE(F.Reps.lookup("d.snk()", SnkRep));
  ASSERT_TRUE(F.Reps.lookup("w.src()", SrcRep));
  VarId SanVar, SnkVar, SrcVar;
  ASSERT_TRUE(F.Sys.Vars.lookup(SanRep, Role::Sanitizer, SanVar));
  ASSERT_TRUE(F.Sys.Vars.lookup(SnkRep, Role::Sink, SnkVar));
  ASSERT_TRUE(F.Sys.Vars.lookup(SrcRep, Role::Source, SrcVar));

  bool Found = false;
  for (const auto &C : F.Sys.Constraints) {
    if (C.Lhs.size() != 2)
      continue;
    bool HasSan = false, HasSnk = false;
    for (const auto &T : C.Lhs) {
      HasSan |= T.Var == SanVar;
      HasSnk |= T.Var == SnkVar;
    }
    if (!HasSan || !HasSnk)
      continue;
    Found = true;
    EXPECT_DOUBLE_EQ(C.C, 0.75);
    bool RhsHasSrc = false;
    for (const auto &T : C.Rhs)
      RhsHasSrc |= T.Var == SrcVar;
    EXPECT_TRUE(RhsHasSrc);
  }
  EXPECT_TRUE(Found) << "Fig. 4a instance missing";
}

TEST(ConstraintGenTest, SeedsArePinned) {
  GenFixture F("import w\nimport d\n"
               "d.snk(w.src())\n",
               "o: w.src()\ni: d.snk()\n");
  // w.src() pinned to (1,0,0); d.snk() to (0,0,1).
  RepId SrcRep;
  ASSERT_TRUE(F.Reps.lookup("w.src()", SrcRep));
  VarId V;
  ASSERT_TRUE(F.Sys.Vars.lookup(SrcRep, Role::Source, V));
  bool FoundPin = false;
  for (const auto &[Var, Value] : F.Sys.Pinned)
    if (Var == V) {
      FoundPin = true;
      EXPECT_DOUBLE_EQ(Value, 1.0);
    }
  EXPECT_TRUE(FoundPin);
  EXPECT_EQ(F.Sys.Pinned.size(), 6u) << "3 role pins per seeded rep";
}

TEST(ConstraintGenTest, SeedAbsentFromCorpusIgnored) {
  GenFixture F("import w\nx = w.api()\n", "o: never.seen()\n");
  EXPECT_TRUE(F.Sys.Pinned.empty());
}

TEST(ConstraintGenTest, BlacklistRemovesCandidates) {
  GenFixture F("import w\nimport d\n"
               "d.snk(w.src())\n"
               "y = x.split()\n",
               "b: *.split()*\n");
  // The split() event survives as a graph node but has no variables.
  RepId Id;
  bool Interned = F.Reps.lookup("x.split()", Id);
  ASSERT_TRUE(Interned);
  VarId V;
  EXPECT_FALSE(F.Sys.Vars.lookup(Id, Role::Source, V));
}

TEST(ConstraintGenTest, CutoffDropsRareReps) {
  GenOptions Opts;
  Opts.RepCutoff = 5;
  GenFixture F("import w\nimport d\nd.snk(w.src())\n", "", Opts);
  EXPECT_EQ(F.Sys.NumCandidates, 0u);
  EXPECT_TRUE(F.Sys.Constraints.empty());
}

TEST(ConstraintGenTest, CandidateStatistics) {
  GenFixture F("import w\nimport d\n"
               "a = w.src()\n"
               "d.snk(a)\n",
               "");
  EXPECT_EQ(F.Sys.NumCandidates, 2u);
  EXPECT_DOUBLE_EQ(F.Sys.AvgBackoffOptions, 1.0);
}

TEST(ConstraintGenTest, BackoffAveragingCoefficients) {
  // A param-rooted method call has 2 options; its variable terms carry
  // coefficient 1/2 (§4.3).
  GenFixture F("import d\n"
               "def media(f):\n"
               "    d.snk(f.save())\n",
               "");
  RepId Id;
  ASSERT_TRUE(F.Reps.lookup("media(param f).save()", Id));
  VarId V;
  ASSERT_TRUE(F.Sys.Vars.lookup(Id, Role::Source, V));
  bool Found = false;
  for (const auto &C : F.Sys.Constraints)
    for (const auto &T : C.Lhs)
      if (T.Var == V) {
        EXPECT_FLOAT_EQ(T.Coef, 0.5f);
        Found = true;
      }
  EXPECT_TRUE(Found);
}

TEST(ConstraintGenTest, ObjectReadsOnlySourceVariables) {
  GenFixture F("import w\nimport d\n"
               "d.snk(w.data.field)\n",
               "");
  RepId Id;
  ASSERT_TRUE(F.Reps.lookup("w.data.field", Id));
  VarId V;
  EXPECT_TRUE(F.Sys.Vars.lookup(Id, Role::Source, V));
  EXPECT_FALSE(F.Sys.Vars.lookup(Id, Role::Sanitizer, V));
  EXPECT_FALSE(F.Sys.Vars.lookup(Id, Role::Sink, V));
}

TEST(ConstraintGenTest, CustomSlackConstant) {
  GenOptions Opts;
  Opts.RepCutoff = 1;
  Opts.C = 1.0;
  GenFixture F("import w\nimport s\nimport d\n"
               "d.snk(s.san(w.src()))\n",
               "", Opts);
  ASSERT_FALSE(F.Sys.Constraints.empty());
  for (const auto &C : F.Sys.Constraints)
    EXPECT_DOUBLE_EQ(C.C, 1.0);
}

TEST(ConstraintGenTest, MakeObjectiveWiresPins) {
  GenFixture F("import w\nimport d\nd.snk(w.src())\n",
               "o: w.src()\n");
  solver::Objective Obj = F.Sys.makeObjective(0.1);
  EXPECT_EQ(Obj.numVars(), F.Sys.Vars.numVars());
  EXPECT_EQ(Obj.numConstraints(), F.Sys.Constraints.size());
  RepId Id;
  ASSERT_TRUE(F.Reps.lookup("w.src()", Id));
  VarId V;
  ASSERT_TRUE(F.Sys.Vars.lookup(Id, Role::Source, V));
  EXPECT_TRUE(Obj.isPinned(V));
  EXPECT_DOUBLE_EQ(Obj.pinnedValue(V), 1.0);
}

TEST(ConstraintGenTest, CrossFileRepsShareVariables) {
  // Two files using the same API: its events map to the same variable.
  pysem::Project Proj;
  const auto &M1 = Proj.addModule("p/a.py", "import w\nx = w.api()\n");
  const auto &M2 = Proj.addModule("p/b.py", "import w\ny = w.api()\n");
  (void)M1;
  (void)M2;
  PropagationGraph G = buildProjectGraph(Proj);
  RepTable Reps;
  Reps.countOccurrences(G);
  RepId Id;
  ASSERT_TRUE(Reps.lookup("w.api()", Id));
  EXPECT_EQ(Reps.occurrences(Id), 2u);
}

} // namespace
