//===- tests/specio_test.cpp - Tests for specification serialization ------===//

#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace seldon;
using namespace seldon::spec;
using namespace seldon::propgraph;

namespace {

/// Writes spec files into a per-test temp directory (cleaned up on exit)
/// for exercising the strict file loaders.
class SpecIOFileTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::temp_directory_path() /
          ("seldon_specio_" +
           std::string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->name()));
    std::filesystem::create_directories(Dir);
  }
  void TearDown() override {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
  }

  std::string write(const std::string &Name, const std::string &Content) {
    std::string Path = (Dir / Name).string();
    std::ofstream Out(Path, std::ios::binary);
    Out << Content;
    return Path;
  }

  std::filesystem::path Dir;
};

TEST_F(SpecIOFileTest, LearnedSpecFileRoundTrip) {
  LearnedSpec L;
  L.setScore("os.system()", Role::Sink, 0.8);
  std::string Path = (Dir / "spec.txt").string();
  ASSERT_TRUE(saveLearnedSpec(L, Path).ok());
  IOResult<LearnedSpec> Loaded = loadLearnedSpec(Path);
  ASSERT_TRUE(Loaded.ok()) << Loaded.Error;
  EXPECT_NEAR(Loaded.Value.score("os.system()", Role::Sink), 0.8, 1e-9);
}

TEST_F(SpecIOFileTest, TruncatedLearnedSpecFails) {
  // Cut off mid-record: no trailing newline after the last line.
  std::string Path = write("trunc.txt", "sink 0.800000 os.system()\n"
                                        "source 0.75 flask.requ");
  IOResult<LearnedSpec> Loaded = loadLearnedSpec(Path);
  EXPECT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.Error.find("truncated"), std::string::npos)
      << Loaded.Error;
  // Never a partially-populated spec: the complete first record must not
  // leak into the result.
  EXPECT_EQ(Loaded.Value.size(), 0u);
}

TEST_F(SpecIOFileTest, MidRecordCorruptLearnedSpecFails) {
  std::string Path = write("corrupt.txt", "sink 0.4 db.run()\n"
                                          "source 0.5\n"
                                          "wizard 0.5 x()\n");
  IOResult<LearnedSpec> Loaded = loadLearnedSpec(Path);
  EXPECT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.Error.find("corrupt"), std::string::npos)
      << Loaded.Error;
  EXPECT_NE(Loaded.Error.find("line 2"), std::string::npos)
      << Loaded.Error;
  EXPECT_EQ(Loaded.Value.size(), 0u);
}

TEST_F(SpecIOFileTest, TruncatedSeedSpecFails) {
  std::string Path = write("seed.txt", "o: flask.request.args.get()\n"
                                       "i: os.sys");
  IOResult<SeedSpec> Loaded = loadSeedSpec(Path);
  EXPECT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.Error.find("truncated"), std::string::npos)
      << Loaded.Error;
  EXPECT_EQ(Loaded.Value.Spec.size(), 0u);
}

TEST_F(SpecIOFileTest, CorruptSeedSpecFails) {
  std::string Path = write("seed.txt", "o: good()\n"
                                       "q: what-is-this\n");
  IOResult<SeedSpec> Loaded = loadSeedSpec(Path);
  EXPECT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.Error.find("corrupt"), std::string::npos)
      << Loaded.Error;
  EXPECT_EQ(Loaded.Value.Spec.size(), 0u);
}

TEST_F(SpecIOFileTest, EmptyFileLoadsAsEmptySpec) {
  std::string Path = write("empty.txt", "");
  IOResult<LearnedSpec> Loaded = loadLearnedSpec(Path);
  EXPECT_TRUE(Loaded.ok()) << Loaded.Error;
  EXPECT_EQ(Loaded.Value.size(), 0u);
}

TEST_F(SpecIOFileTest, MissingFileFails) {
  IOResult<LearnedSpec> Loaded =
      loadLearnedSpec((Dir / "nope.txt").string());
  EXPECT_FALSE(Loaded.ok());
  EXPECT_NE(Loaded.Error.find("cannot read"), std::string::npos);
}

TEST(SpecIOTest, SeedSpecRoundTrip) {
  SeedSpec Seed = SeedSpec::parse("o: flask.request.args.get()\n"
                                  "o: req.GET.get()\n"
                                  "a: bleach.clean()\n"
                                  "i: os.system()\n"
                                  "i: flask.redirect()\n"
                                  "b: *logging*\n"
                                  "b: *.strip()\n");
  std::string Text = writeSeedSpec(Seed);
  std::vector<std::string> Errors;
  SeedSpec Parsed = SeedSpec::parse(Text, &Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_EQ(Parsed.Spec.entries(), Seed.Spec.entries());
  EXPECT_EQ(Parsed.Blacklist.patterns(), Seed.Blacklist.patterns());
}

TEST(SpecIOTest, SeedSpecDeterministicOrder) {
  SeedSpec Seed = SeedSpec::parse("o: b()\no: a()\n");
  std::string Text = writeSeedSpec(Seed);
  EXPECT_LT(Text.find("o: a()"), Text.find("o: b()"));
}

TEST(SpecIOTest, PaperSeedRoundTrips) {
  SeedSpec Seed = SeedSpec::parse(paperSeedSpecText());
  SeedSpec Again = SeedSpec::parse(writeSeedSpec(Seed));
  EXPECT_EQ(Again.Spec.size(), Seed.Spec.size());
  EXPECT_EQ(Again.Blacklist.size(), Seed.Blacklist.size());
}

TEST(SpecIOTest, LearnedSpecRoundTrip) {
  LearnedSpec L;
  L.setScore("flask.request.args.get()", Role::Source, 0.75);
  L.setScore("bleach.clean()", Role::Sanitizer, 0.5);
  L.setScore("os.system()", Role::Sink, 1.0);
  L.setScore("dual()", Role::Source, 0.3);
  L.setScore("dual()", Role::Sink, 0.4);

  std::string Text = writeLearnedSpec(L);
  std::vector<std::string> Errors;
  LearnedSpec Parsed = parseLearnedSpec(Text, &Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_NEAR(Parsed.score("flask.request.args.get()", Role::Source), 0.75,
              1e-9);
  EXPECT_NEAR(Parsed.score("bleach.clean()", Role::Sanitizer), 0.5, 1e-9);
  EXPECT_NEAR(Parsed.score("os.system()", Role::Sink), 1.0, 1e-9);
  EXPECT_NEAR(Parsed.score("dual()", Role::Source), 0.3, 1e-9);
  EXPECT_NEAR(Parsed.score("dual()", Role::Sink), 0.4, 1e-9);
}

TEST(SpecIOTest, LearnedSpecMinScoreFilter) {
  LearnedSpec L;
  L.setScore("hi()", Role::Source, 0.9);
  L.setScore("lo()", Role::Source, 0.05);
  std::string Text = writeLearnedSpec(L, 0.1);
  EXPECT_NE(Text.find("hi()"), std::string::npos);
  EXPECT_EQ(Text.find("lo()"), std::string::npos);
}

TEST(SpecIOTest, LearnedSpecSortedByScore) {
  LearnedSpec L;
  L.setScore("low()", Role::Sink, 0.2);
  L.setScore("high()", Role::Sink, 0.9);
  std::string Text = writeLearnedSpec(L);
  EXPECT_LT(Text.find("high()"), Text.find("low()"));
}

TEST(SpecIOTest, ParseRejectsMalformedLines) {
  std::vector<std::string> Errors;
  LearnedSpec L = parseLearnedSpec("source 0.5 ok()\n"
                                   "gibberish\n"
                                   "wizard 0.5 x()\n"
                                   "source notanumber y()\n"
                                   "source 1.5 z()\n"
                                   "source 0.5\n",
                                   &Errors);
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(Errors.size(), 5u);
}

TEST(SpecIOTest, ParseSkipsCommentsAndBlanks) {
  std::vector<std::string> Errors;
  LearnedSpec L = parseLearnedSpec("# header\n\n  \nsink 0.4 db.run()\n",
                                   &Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_NEAR(L.score("db.run()", Role::Sink), 0.4, 1e-9);
}

TEST(SpecIOTest, RepsWithSpacesSurvive) {
  // Parameter representations contain spaces: `media(param f).save()`.
  LearnedSpec L;
  L.setScore("media(param f).save()", Role::Sink, 0.6);
  LearnedSpec Parsed = parseLearnedSpec(writeLearnedSpec(L));
  EXPECT_NEAR(Parsed.score("media(param f).save()", Role::Sink), 0.6, 1e-9);
}

TEST(SpecDiffTest, AddedRemovedDrifted) {
  LearnedSpec Old, New;
  Old.setScore("stays()", Role::Source, 0.5);
  Old.setScore("gone()", Role::Sink, 0.4);
  Old.setScore("drifts()", Role::Sanitizer, 0.3);
  New.setScore("stays()", Role::Source, 0.52); // Below drift delta.
  New.setScore("fresh()", Role::Sink, 0.6);
  New.setScore("drifts()", Role::Sanitizer, 0.8);

  SpecDiff Diff = diffLearnedSpecs(Old, New, 0.1, 0.1);
  ASSERT_EQ(Diff.Added.size(), 1u);
  EXPECT_EQ(Diff.Added[0].first, "fresh()");
  EXPECT_EQ(Diff.Added[0].second, Role::Sink);
  ASSERT_EQ(Diff.Removed.size(), 1u);
  EXPECT_EQ(Diff.Removed[0].first, "gone()");
  ASSERT_EQ(Diff.Drifted.size(), 1u);
  EXPECT_EQ(std::get<0>(Diff.Drifted[0]), "drifts()");
  EXPECT_NEAR(std::get<2>(Diff.Drifted[0]), 0.3, 1e-9);
  EXPECT_NEAR(std::get<3>(Diff.Drifted[0]), 0.8, 1e-9);
}

TEST(SpecDiffTest, IdenticalSpecsAreEmpty) {
  LearnedSpec L;
  L.setScore("a()", Role::Source, 0.7);
  SpecDiff Diff = diffLearnedSpecs(L, L);
  EXPECT_TRUE(Diff.Added.empty());
  EXPECT_TRUE(Diff.Removed.empty());
  EXPECT_TRUE(Diff.Drifted.empty());
  EXPECT_TRUE(renderSpecDiff(Diff).empty());
}

TEST(SpecDiffTest, BelowThresholdIgnored) {
  LearnedSpec Old, New;
  New.setScore("weak()", Role::Source, 0.05); // Never selected.
  SpecDiff Diff = diffLearnedSpecs(Old, New, 0.1);
  EXPECT_TRUE(Diff.Added.empty());
}

TEST(SpecDiffTest, RenderFormat) {
  LearnedSpec Old, New;
  New.setScore("fresh()", Role::Sink, 0.6);
  std::string Text = renderSpecDiff(diffLearnedSpecs(Old, New));
  EXPECT_EQ(Text, "+ sink fresh()\n");
}

} // namespace
