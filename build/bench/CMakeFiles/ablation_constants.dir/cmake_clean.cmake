file(REMOVE_RECURSE
  "CMakeFiles/ablation_constants.dir/ablation_constants.cpp.o"
  "CMakeFiles/ablation_constants.dir/ablation_constants.cpp.o.d"
  "ablation_constants"
  "ablation_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
