# Empty dependencies file for seldon_pysem.
# This may be replaced when dependencies are built.
