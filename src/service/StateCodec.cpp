//===- service/StateCodec.cpp - Durable-state binary formats --------------===//

#include "service/StateCodec.h"

#include "support/BinaryCodec.h"
#include "support/StrUtil.h"

#include <cstring>

using namespace seldon;
using namespace seldon::service;
using codec::ByteReader;
using codec::putFixed64;
using codec::putString;
using codec::putVarint;

namespace {

constexpr char JournalMagic[4] = {'S', 'W', 'A', 'L'};
constexpr char SnapshotMagic[4] = {'S', 'S', 'N', 'P'};

/// Doubles travel as their exact IEEE-754 bit pattern — a restored score
/// vector is byte-identical to the solved one, never a decimal round trip.
uint64_t doubleBits(double Value) {
  uint64_t Bits;
  std::memcpy(&Bits, &Value, sizeof(Bits));
  return Bits;
}

double bitsDouble(uint64_t Bits) {
  double Value;
  std::memcpy(&Value, &Bits, sizeof(Value));
  return Value;
}

void putFeedbackEntries(std::string &Out,
                        const std::vector<constraints::FeedbackEntry> &Es) {
  putVarint(Out, Es.size());
  for (const constraints::FeedbackEntry &E : Es) {
    putString(Out, E.Rep);
    Out.push_back(static_cast<char>(E.R));
    Out.push_back(E.Accepted ? 1 : 0);
  }
}

std::vector<constraints::FeedbackEntry>
getFeedbackEntries(ByteReader &Reader) {
  std::vector<constraints::FeedbackEntry> Out;
  uint64_t Count = Reader.getVarint("feedback entry count");
  for (uint64_t I = 0; Reader.ok() && I < Count; ++I) {
    constraints::FeedbackEntry E;
    std::string_view Rep = Reader.getString("feedback representation");
    uint8_t Role = Reader.getByte("feedback role");
    uint8_t Accepted = Reader.getByte("feedback verdict");
    if (!Reader.ok())
      break;
    if (Rep.empty()) {
      Reader.fail("empty feedback representation");
      break;
    }
    if (Role >= propgraph::NumRoles) {
      Reader.fail(formatString("feedback role %u out of range", Role));
      break;
    }
    if (Accepted > 1) {
      Reader.fail(formatString("feedback verdict %u is not a boolean",
                               Accepted));
      break;
    }
    E.Rep = std::string(Rep);
    E.R = static_cast<propgraph::Role>(Role);
    E.Accepted = Accepted != 0;
    Out.push_back(std::move(E));
  }
  return Out;
}

uint8_t getBool(ByteReader &Reader, const char *What) {
  uint8_t B = Reader.getByte(What);
  if (Reader.ok() && B > 1)
    Reader.fail(formatString("%s byte %u is not a boolean", What, B));
  return B;
}

std::string encodeRecordPayload(const JournalRecord &Record) {
  std::string Payload;
  putVarint(Payload, Record.Seq);
  Payload.push_back(static_cast<char>(Record.Op));
  switch (Record.Op) {
  case JournalOp::Feedback:
    putVarint(Payload, Record.Iters);
    Payload.push_back(Record.WarmStart ? 1 : 0);
    putFixed64(Payload, doubleBits(Record.FeedbackOpts.AcceptWeight));
    putFixed64(Payload, doubleBits(Record.FeedbackOpts.RejectWeight));
    putFixed64(Payload, doubleBits(Record.FeedbackOpts.SimilarityDecay));
    putFeedbackEntries(Payload, Record.Entries);
    break;
  case JournalOp::Learn:
    putVarint(Payload, Record.Iters);
    Payload.push_back(Record.WarmStart ? 1 : 0);
    Payload.push_back(Record.Reload ? 1 : 0);
    Payload.push_back(static_cast<char>(Record.Backend));
    break;
  case JournalOp::Abort:
    putVarint(Payload, Record.AbortedSeq);
    break;
  }
  return Payload;
}

/// Decodes one record payload; failures land in \p Reader.
JournalRecord decodeRecordPayload(ByteReader &Reader) {
  JournalRecord Record;
  Record.Seq = Reader.getVarint("record sequence number");
  uint8_t Op = Reader.getByte("record op");
  if (!Reader.ok())
    return Record;
  if (Op > static_cast<uint8_t>(JournalOp::Abort)) {
    Reader.fail(formatString("unknown journal op %u", Op));
    return Record;
  }
  Record.Op = static_cast<JournalOp>(Op);
  switch (Record.Op) {
  case JournalOp::Feedback:
    Record.Iters = Reader.getVarint("feedback iters");
    Record.WarmStart = getBool(Reader, "feedback warm flag") != 0;
    Record.FeedbackOpts.AcceptWeight =
        bitsDouble(Reader.getFixed64("accept weight"));
    Record.FeedbackOpts.RejectWeight =
        bitsDouble(Reader.getFixed64("reject weight"));
    Record.FeedbackOpts.SimilarityDecay =
        bitsDouble(Reader.getFixed64("similarity decay"));
    Record.Entries = getFeedbackEntries(Reader);
    break;
  case JournalOp::Learn: {
    Record.Iters = Reader.getVarint("learn iters");
    Record.WarmStart = getBool(Reader, "learn warm flag") != 0;
    Record.Reload = getBool(Reader, "learn reload flag") != 0;
    uint8_t Backend = Reader.getByte("learn backend");
    if (Reader.ok() &&
        Backend > static_cast<uint8_t>(solver::SolverBackend::SimdF32)) {
      Reader.fail(formatString("unknown solver backend %u", Backend));
      break;
    }
    Record.Backend = static_cast<solver::SolverBackend>(Backend);
    break;
  }
  case JournalOp::Abort:
    Record.AbortedSeq = Reader.getVarint("aborted sequence number");
    break;
  }
  if (Reader.ok() && Reader.remaining() != 0)
    Reader.fail(formatString("%zu unconsumed record byte(s)",
                             Reader.remaining()));
  return Record;
}

} // namespace

std::string seldon::service::journalHeader() {
  std::string Out;
  Out.append(JournalMagic, sizeof(JournalMagic));
  putVarint(Out, JournalCodecVersion);
  return Out;
}

std::string
seldon::service::encodeJournalRecord(const JournalRecord &Record) {
  std::string Payload = encodeRecordPayload(Record);
  std::string Out;
  Out.reserve(Payload.size() + 16);
  putFixed64(Out, codec::fnv1a64(Payload));
  putVarint(Out, Payload.size());
  Out += Payload;
  return Out;
}

io::IOResult<JournalScan>
seldon::service::scanJournal(std::string_view Bytes) {
  using Result = io::IOResult<JournalScan>;

  // The header is written whole via temp+rename (StateStore resets the
  // journal that way), so a short or wrong header is corruption, not a
  // torn append.
  if (Bytes.size() < sizeof(JournalMagic))
    return Result::failure(formatString(
        "truncated journal header: %zu byte(s), need at least %zu",
        Bytes.size(), sizeof(JournalMagic)));
  if (std::memcmp(Bytes.data(), JournalMagic, sizeof(JournalMagic)) != 0)
    return Result::failure("bad magic: not a seldond write-ahead journal");
  ByteReader Header(Bytes);
  for (size_t I = 0; I < sizeof(JournalMagic); ++I)
    Header.getByte("magic");
  uint64_t Version = Header.getVarint("journal format version");
  if (!Header.ok())
    return Result::failure(Header.error());
  if (Version != JournalCodecVersion)
    return Result::failure(formatString(
        "unsupported journal format version %llu (this build reads "
        "version %u)",
        static_cast<unsigned long long>(Version), JournalCodecVersion));

  JournalScan Scan;
  size_t Off = Header.offset();
  Scan.ValidBytes = Off;
  while (Off < Bytes.size()) {
    // Frame header: fixed64 checksum + varint length. An append is one
    // sequential write, so any incomplete frame here extends to EOF —
    // that is the torn tail; everything before it stays valid.
    ByteReader Frame(Bytes.substr(Off));
    uint64_t Checksum = Frame.getFixed64("record checksum");
    uint64_t Len = Frame.getVarint("record length");
    if (!Frame.ok() || Len > Frame.remaining()) {
      Scan.Torn = true;
      break;
    }
    std::string_view Payload = Bytes.substr(Off + Frame.offset(), Len);
    if (codec::fnv1a64(Payload) != Checksum)
      return Result::failure(formatString(
          "journal record %zu checksum mismatch at byte %zu: stored "
          "%016llx, computed %016llx (corrupt journal)",
          Scan.Records.size(), Off,
          static_cast<unsigned long long>(Checksum),
          static_cast<unsigned long long>(codec::fnv1a64(Payload))));

    ByteReader Body(Payload);
    JournalRecord Record = decodeRecordPayload(Body);
    if (!Body.ok())
      return Result::failure(formatString(
          "journal record %zu at byte %zu: %s (corrupt journal)",
          Scan.Records.size(), Off, Body.error().c_str()));
    Scan.Records.push_back(std::move(Record));
    Off += Frame.offset() + Len;
    Scan.ValidBytes = Off;
  }

  Result Out;
  Out.Value = std::move(Scan);
  return Out;
}

std::string seldon::service::encodeSnapshot(const StateSnapshot &Snapshot) {
  std::string Payload;
  putVarint(Payload, Snapshot.LastSeq);
  putFixed64(Payload, Snapshot.Fingerprint);
  putVarint(Payload, static_cast<uint64_t>(Snapshot.Solve.Iterations));
  Payload.push_back(Snapshot.Solve.Converged ? 1 : 0);
  putFixed64(Payload, doubleBits(Snapshot.Solve.FinalObjective));
  putVarint(Payload, static_cast<uint64_t>(Snapshot.Solve.NonFiniteSteps));
  putVarint(Payload, static_cast<uint64_t>(Snapshot.Solve.Recoveries));
  Payload.push_back(Snapshot.Solve.FellBack ? 1 : 0);
  Payload.push_back(Snapshot.Solve.DeadlineExpired ? 1 : 0);
  putVarint(Payload, Snapshot.Solve.X.size());
  for (double Score : Snapshot.Solve.X)
    putFixed64(Payload, doubleBits(Score));
  putFixed64(Payload, doubleBits(Snapshot.FeedbackOpts.AcceptWeight));
  putFixed64(Payload, doubleBits(Snapshot.FeedbackOpts.RejectWeight));
  putFixed64(Payload, doubleBits(Snapshot.FeedbackOpts.SimilarityDecay));
  putFeedbackEntries(Payload, Snapshot.Feedback);

  std::string Out;
  Out.reserve(Payload.size() + 24);
  Out.append(SnapshotMagic, sizeof(SnapshotMagic));
  putVarint(Out, SnapshotCodecVersion);
  putFixed64(Out, codec::fnv1a64(Payload));
  putVarint(Out, Payload.size());
  Out += Payload;
  return Out;
}

io::IOResult<StateSnapshot>
seldon::service::decodeSnapshot(std::string_view Bytes) {
  using Result = io::IOResult<StateSnapshot>;
  if (Bytes.size() < sizeof(SnapshotMagic))
    return Result::failure(formatString(
        "truncated snapshot header: %zu byte(s), need at least %zu",
        Bytes.size(), sizeof(SnapshotMagic)));
  if (std::memcmp(Bytes.data(), SnapshotMagic, sizeof(SnapshotMagic)) != 0)
    return Result::failure("bad magic: not a seldond state snapshot");
  ByteReader Reader(Bytes);
  for (size_t I = 0; I < sizeof(SnapshotMagic); ++I)
    Reader.getByte("magic");
  uint64_t Version = Reader.getVarint("snapshot format version");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (Version != SnapshotCodecVersion)
    return Result::failure(formatString(
        "unsupported snapshot format version %llu (this build reads "
        "version %u)",
        static_cast<unsigned long long>(Version), SnapshotCodecVersion));

  uint64_t StoredChecksum = Reader.getFixed64("payload checksum");
  uint64_t PayloadLen = Reader.getVarint("payload length");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (PayloadLen != Reader.remaining())
    return Result::failure(formatString(
        "payload size mismatch: header declares %llu byte(s), %zu "
        "follow (%s)",
        static_cast<unsigned long long>(PayloadLen), Reader.remaining(),
        PayloadLen > Reader.remaining() ? "truncated snapshot"
                                        : "trailing garbage"));
  uint64_t ActualChecksum = codec::fnv1a64(Bytes.substr(Reader.offset()));
  if (ActualChecksum != StoredChecksum)
    return Result::failure(formatString(
        "payload checksum mismatch: stored %016llx, computed %016llx "
        "(corrupt snapshot)",
        static_cast<unsigned long long>(StoredChecksum),
        static_cast<unsigned long long>(ActualChecksum)));

  StateSnapshot Snapshot;
  Snapshot.LastSeq = Reader.getVarint("covered sequence number");
  Snapshot.Fingerprint = Reader.getFixed64("system fingerprint");
  Snapshot.Solve.Iterations =
      static_cast<int>(Reader.getVarint("solve iterations"));
  Snapshot.Solve.Converged = getBool(Reader, "converged flag") != 0;
  Snapshot.Solve.FinalObjective =
      bitsDouble(Reader.getFixed64("final objective"));
  Snapshot.Solve.NonFiniteSteps =
      static_cast<int>(Reader.getVarint("non-finite steps"));
  Snapshot.Solve.Recoveries =
      static_cast<int>(Reader.getVarint("solver recoveries"));
  Snapshot.Solve.FellBack = getBool(Reader, "fellback flag") != 0;
  Snapshot.Solve.DeadlineExpired =
      getBool(Reader, "deadline-expired flag") != 0;

  uint64_t NumScores = Reader.getVarint("score count");
  if (Reader.ok() && NumScores * 8 > Reader.remaining())
    Reader.fail(formatString("score count %llu exceeds payload",
                             static_cast<unsigned long long>(NumScores)));
  if (Reader.ok()) {
    Snapshot.Solve.X.reserve(NumScores);
    for (uint64_t I = 0; Reader.ok() && I < NumScores; ++I)
      Snapshot.Solve.X.push_back(bitsDouble(Reader.getFixed64("score")));
  }
  Snapshot.FeedbackOpts.AcceptWeight =
      bitsDouble(Reader.getFixed64("accept weight"));
  Snapshot.FeedbackOpts.RejectWeight =
      bitsDouble(Reader.getFixed64("reject weight"));
  Snapshot.FeedbackOpts.SimilarityDecay =
      bitsDouble(Reader.getFixed64("similarity decay"));
  Snapshot.Feedback = getFeedbackEntries(Reader);

  if (Reader.ok() && Reader.remaining() != 0)
    Reader.fail(formatString("%zu unconsumed payload byte(s)",
                             Reader.remaining()));
  if (!Reader.ok())
    return Result::failure(Reader.error());

  Result Out;
  Out.Value = std::move(Snapshot);
  return Out;
}

uint64_t
seldon::service::systemFingerprint(const constraints::ConstraintSystem &Sys,
                                   const propgraph::RepTable &Reps) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  const constraints::VarTable &Vars = Sys.Vars;
  codec::hashValue(Hash, Vars.numVars());
  for (uint32_t V = 0; V < Vars.numVars(); ++V) {
    codec::hashChunk(Hash, Reps.repString(Vars.repOf(V)));
    codec::hashValue(Hash, static_cast<uint64_t>(Vars.roleOf(V)));
  }
  codec::hashValue(Hash, Sys.Constraints.size());
  codec::hashValue(Hash, Sys.NumCandidates);
  return Hash;
}
