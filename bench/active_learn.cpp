//===- bench/active_learn.cpp - Oracle queries to target F1 ---------------===//
//
// Measures what uncertainty-guided active learning buys on label cost.
// The experiment withholds half the hand-written seed specification and
// asks: how many oracle labels does the query→pin→re-solve loop need to
// recover the quality a passive solve gets from the full seed?
//
//   passive (full seed)    — the quality target: macro-F1 against the
//                            corpus ground truth at the report threshold.
//   passive (halved seed)  — where the active run starts from.
//   active (halved seed)   — queries a ground-truth oracle round by
//                            round, pinning answers, until it matches the
//                            full-seed F1 or exhausts its budget.
//
// Both F1s exclude the halved seed's entries, so the withheld seed half
// counts as predictions the loop must genuinely recover. Gated, not just
// timed: the active run must reach the passive F1 while querying at most
// half the candidate variables (the "pin everything" labeling cost). With
// SELDON_ACTIVE_OUT=FILE the comparison is written as a JSON fragment
// that scripts/bench_solver.sh merges into BENCH_solver.json.
//
// Knobs: SELDON_PROJECTS (default 300; the script passes 60), SELDON_JOBS,
// SELDON_SOLVER_ITERS, SELDON_ACTIVE_QPR (queries per round, default 25),
// SELDON_ACTIVE_ROUNDS (round budget, default 40).
//
//===----------------------------------------------------------------------===//

#include "active/ActiveLearner.h"
#include "active/Oracle.h"
#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>

using namespace seldon;
using namespace seldon::eval;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

} // namespace

int main() {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();
  PipelineOpts.Jobs = static_cast<unsigned>(
      envInt("SELDON_JOBS",
             static_cast<int>(ThreadPool::hardwareConcurrency())));
  size_t QueriesPerRound =
      static_cast<size_t>(envInt("SELDON_ACTIVE_QPR", 25));
  int MaxRounds = envInt("SELDON_ACTIVE_ROUNDS", 40);

  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);
  spec::SeedSpec Half = Data.Seed.halved();

  std::cout << formatString(
      "=== Active learning: queries to full-seed F1, %d project(s), "
      "%zu/round, %d round budget ===\n\n",
      CorpusOpts.NumProjects, QueriesPerRound, MaxRounds);

  auto passiveRun = [&](const spec::SeedSpec &Seed, double &Seconds) {
    auto Start = std::chrono::steady_clock::now();
    infer::Session S(PipelineOpts);
    S.addProjects(Data.Projects);
    S.generateConstraints(Seed);
    infer::PipelineResult R = S.solve();
    Seconds = secondsSince(Start);
    return eval::macroF1(R.Learned, Data.Truth, Half, ScoreThreshold);
  };

  // The quality target: what passive inference achieves with the full
  // hand-written seed.
  double PassiveSeconds = 0.0;
  double PassiveF1 = passiveRun(Data.Seed, PassiveSeconds);

  // The starting point: the same passive solve with only half the seed.
  double HalvedSeconds = 0.0;
  double HalvedF1 = passiveRun(Half, HalvedSeconds);

  // The headline run: active learning from the halved seed against a
  // ground-truth oracle, stopping the moment the target F1 is reached.
  active::GroundTruthOracle Oracle(Data.Truth);
  active::ActiveOptions AO;
  AO.Threshold = ScoreThreshold;
  AO.QueriesPerRound = QueriesPerRound;
  AO.MaxRounds = MaxRounds;
  AO.StopWhen = [&](const infer::PipelineResult &R) {
    return eval::macroF1(R.Learned, Data.Truth, Half, ScoreThreshold) >=
           PassiveF1 - 1e-9;
  };
  auto ActiveStart = std::chrono::steady_clock::now();
  infer::Session S(PipelineOpts);
  S.addProjects(Data.Projects);
  active::ActiveResult AR = active::runActiveLoop(S, Half, Oracle, AO);
  double ActiveSeconds = secondsSince(ActiveStart);
  double ActiveF1 =
      eval::macroF1(AR.Final.Learned, Data.Truth, Half, ScoreThreshold);

  double QueryFraction =
      AR.Candidates
          ? static_cast<double>(AR.TotalQueries) /
                static_cast<double>(AR.Candidates)
          : 0.0;
  bool ReachedTarget = ActiveF1 >= PassiveF1 - 1e-9;
  bool HalfTheLabels = AR.TotalQueries * 2 <= AR.Candidates;

  TablePrinter Table(
      {"Run", "Seed", "Labels", "Rounds", "Macro-F1", "Time (s)"});
  Table.addRow({"passive (target)", "full", "-", "-",
                formatString("%.4f", PassiveF1),
                formatString("%.3f", PassiveSeconds)});
  Table.addRow({"passive (start)", "half", "-", "-",
                formatString("%.4f", HalvedF1),
                formatString("%.3f", HalvedSeconds)});
  Table.addRow({"active", "half", std::to_string(AR.TotalQueries),
                std::to_string(AR.Rounds.size()),
                formatString("%.4f", ActiveF1),
                formatString("%.3f", ActiveSeconds)});
  Table.addRow({"pin everything", "half", std::to_string(AR.Candidates),
                "1", "-", "-"});
  Table.print(std::cout);

  std::cout << formatString(
      "\nreached full-seed F1: %s (%.4f vs %.4f target)\n"
      "labels spent: %zu of %zu candidate(s) (%.1f%%) — %s\n",
      ReachedTarget ? "yes" : "NO — BUDGET EXHAUSTED", ActiveF1, PassiveF1,
      AR.TotalQueries, AR.Candidates, QueryFraction * 100.0,
      HalfTheLabels ? "within the half-label gate"
                    : "OVER THE HALF-LABEL GATE");

  if (const char *Out = std::getenv("SELDON_ACTIVE_OUT")) {
    std::ofstream Json(Out, std::ios::trunc);
    Json << "{\n";
    Json << formatString("  \"projects\": %d,\n", CorpusOpts.NumProjects);
    Json << formatString("  \"candidates\": %zu,\n", AR.Candidates);
    Json << formatString("  \"queries\": %zu,\n", AR.TotalQueries);
    Json << formatString("  \"query_fraction\": %.4f,\n", QueryFraction);
    Json << formatString("  \"rounds\": %zu,\n", AR.Rounds.size());
    Json << formatString("  \"queries_per_round\": %zu,\n",
                         QueriesPerRound);
    Json << formatString("  \"passive_f1\": %.6f,\n", PassiveF1);
    Json << formatString("  \"halved_f1\": %.6f,\n", HalvedF1);
    Json << formatString("  \"active_f1\": %.6f,\n", ActiveF1);
    Json << formatString("  \"reached_target\": %s,\n",
                         ReachedTarget ? "true" : "false");
    Json << formatString("  \"passive_seconds\": %.6f,\n", PassiveSeconds);
    Json << formatString("  \"active_seconds\": %.6f\n", ActiveSeconds);
    Json << "}\n";
  }
  return (ReachedTarget && HalfTheLabels) ? 0 : 1;
}
