//===- pyast/AstPrinter.cpp - Debug dump of the Python AST ----------------===//

#include "pyast/AstPrinter.h"

#include "pyast/Ast.h"

#include <sstream>

using namespace seldon;
using namespace seldon::pyast;

namespace {

/// Indented tree dumper over the node hierarchy.
class Dumper {
public:
  explicit Dumper(std::ostringstream &OS) : OS(OS) {}

  void dump(const Node *N) {
    if (!N) {
      line("<null>");
      return;
    }
    if (const auto *M = dyn_cast<ModuleNode>(N)) {
      line("Module");
      Indented In(*this);
      for (const Stmt *S : M->Body)
        dump(S);
      return;
    }
    if (const auto *E = dyn_cast<Expr>(N)) {
      dumpExpr(E);
      return;
    }
    dumpStmt(cast<Stmt>(N));
  }

private:
  struct Indented {
    explicit Indented(Dumper &D) : D(D) { ++D.Depth; }
    ~Indented() { --D.Depth; }
    Dumper &D;
  };

  void line(const std::string &Text) {
    for (int I = 0; I < Depth; ++I)
      OS << "  ";
    OS << Text << '\n';
  }

  void dumpBody(const char *Label, const std::vector<Stmt *> &Body) {
    if (Body.empty())
      return;
    line(Label);
    Indented In(*this);
    for (const Stmt *S : Body)
      dump(S);
  }

  void dumpStmt(const Stmt *S) {
    switch (S->kind()) {
    case NodeKind::ExprStmt:
      line("ExprStmt");
      {
        Indented In(*this);
        dump(cast<ExprStmt>(S)->Value);
      }
      return;
    case NodeKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      line("Assign");
      Indented In(*this);
      for (const Expr *T : A->Targets) {
        line("target:");
        Indented In2(*this);
        dump(T);
      }
      line("value:");
      Indented In3(*this);
      dump(A->Value);
      return;
    }
    case NodeKind::AugAssign: {
      const auto *A = cast<AugAssignStmt>(S);
      line(std::string("AugAssign ") + binaryOpSpelling(A->Op) + "=");
      Indented In(*this);
      dump(A->Target);
      dump(A->Value);
      return;
    }
    case NodeKind::AnnAssign: {
      const auto *A = cast<AnnAssignStmt>(S);
      line("AnnAssign");
      Indented In(*this);
      dump(A->Target);
      if (A->Value)
        dump(A->Value);
      return;
    }
    case NodeKind::FunctionDef: {
      const auto *F = cast<FunctionDefStmt>(S);
      std::string Header = "FunctionDef " + F->Name + "(";
      for (size_t I = 0; I < F->Params.size(); ++I) {
        if (I)
          Header += ", ";
        if (F->Params[I].IsVarArgs)
          Header += "*";
        if (F->Params[I].IsKwArgs)
          Header += "**";
        Header += F->Params[I].Name;
      }
      Header += ")";
      line(Header);
      Indented In(*this);
      for (const Expr *D : F->Decorators) {
        line("decorator:");
        Indented In2(*this);
        dump(D);
      }
      dumpBody("body:", F->Body);
      return;
    }
    case NodeKind::ClassDef: {
      const auto *C = cast<ClassDefStmt>(S);
      line("ClassDef " + C->Name);
      Indented In(*this);
      for (const Expr *B : C->Bases) {
        line("base:");
        Indented In2(*this);
        dump(B);
      }
      dumpBody("body:", C->Body);
      return;
    }
    case NodeKind::Return:
      line("Return");
      if (cast<ReturnStmt>(S)->Value) {
        Indented In(*this);
        dump(cast<ReturnStmt>(S)->Value);
      }
      return;
    case NodeKind::If: {
      const auto *I = cast<IfStmt>(S);
      line("If");
      Indented In(*this);
      line("cond:");
      {
        Indented In2(*this);
        dump(I->Cond);
      }
      dumpBody("then:", I->Then);
      dumpBody("else:", I->Else);
      return;
    }
    case NodeKind::While: {
      const auto *W = cast<WhileStmt>(S);
      line("While");
      Indented In(*this);
      dump(W->Cond);
      dumpBody("body:", W->Body);
      dumpBody("else:", W->Else);
      return;
    }
    case NodeKind::For: {
      const auto *F = cast<ForStmt>(S);
      line("For");
      Indented In(*this);
      dump(F->Target);
      dump(F->Iter);
      dumpBody("body:", F->Body);
      dumpBody("else:", F->Else);
      return;
    }
    case NodeKind::Import: {
      const auto *I = cast<ImportStmt>(S);
      std::string Text = "Import";
      for (const ImportAlias &A : I->Names) {
        Text += " " + A.Module;
        if (!A.AsName.empty())
          Text += " as " + A.AsName;
      }
      line(Text);
      return;
    }
    case NodeKind::ImportFrom: {
      const auto *I = cast<ImportFromStmt>(S);
      std::string Text = "ImportFrom " + I->Module + ":";
      for (const ImportAlias &A : I->Names) {
        Text += " " + A.Module;
        if (!A.AsName.empty())
          Text += " as " + A.AsName;
      }
      line(Text);
      return;
    }
    case NodeKind::Pass:
      line("Pass");
      return;
    case NodeKind::Break:
      line("Break");
      return;
    case NodeKind::Continue:
      line("Continue");
      return;
    case NodeKind::With: {
      const auto *W = cast<WithStmt>(S);
      line("With");
      Indented In(*this);
      for (const WithItem &Item : W->Items) {
        dump(Item.ContextExpr);
        if (Item.OptionalVars) {
          line("as:");
          Indented In2(*this);
          dump(Item.OptionalVars);
        }
      }
      dumpBody("body:", W->Body);
      return;
    }
    case NodeKind::Try: {
      const auto *T = cast<TryStmt>(S);
      line("Try");
      Indented In(*this);
      dumpBody("body:", T->Body);
      for (const ExceptHandler &H : T->Handlers) {
        line("except" + (H.Name.empty() ? "" : " as " + H.Name) + ":");
        Indented In2(*this);
        if (H.Type)
          dump(H.Type);
        for (const Stmt *B : H.Body)
          dump(B);
      }
      dumpBody("orelse:", T->OrElse);
      dumpBody("finally:", T->Finally);
      return;
    }
    case NodeKind::Raise:
      line("Raise");
      if (cast<RaiseStmt>(S)->Exc) {
        Indented In(*this);
        dump(cast<RaiseStmt>(S)->Exc);
      }
      return;
    case NodeKind::Global: {
      std::string Text = "Global";
      for (const std::string &N : cast<GlobalStmt>(S)->Names)
        Text += " " + N;
      line(Text);
      return;
    }
    case NodeKind::Delete: {
      line("Delete");
      Indented In(*this);
      for (const Expr *T : cast<DeleteStmt>(S)->Targets)
        dump(T);
      return;
    }
    case NodeKind::Assert: {
      line("Assert");
      Indented In(*this);
      dump(cast<AssertStmt>(S)->Test);
      return;
    }
    default:
      line("<unknown stmt>");
      return;
    }
  }

  void dumpExpr(const Expr *E) { line(exprToString(E)); }

  std::ostringstream &OS;
  int Depth = 0;
};

void renderExpr(const Expr *E, std::string &Out) {
  if (!E) {
    Out += "<null>";
    return;
  }
  switch (E->kind()) {
  case NodeKind::Name:
    Out += cast<NameExpr>(E)->Id;
    return;
  case NodeKind::NumberLit:
    Out += cast<NumberExpr>(E)->Spelling;
    return;
  case NodeKind::StringLit: {
    Out += '\'';
    for (char C : cast<StringExpr>(E)->Value) {
      if (C == '\n')
        Out += "\\n";
      else if (C == '\'')
        Out += "\\'";
      else
        Out += C;
    }
    Out += '\'';
    return;
  }
  case NodeKind::BoolLit:
    Out += cast<BoolExpr>(E)->Value ? "True" : "False";
    return;
  case NodeKind::NoneLit:
    Out += "None";
    return;
  case NodeKind::Attribute:
    renderExpr(cast<AttributeExpr>(E)->Value, Out);
    Out += '.';
    Out += cast<AttributeExpr>(E)->Attr;
    return;
  case NodeKind::Subscript:
    renderExpr(cast<SubscriptExpr>(E)->Value, Out);
    Out += '[';
    renderExpr(cast<SubscriptExpr>(E)->Index, Out);
    Out += ']';
    return;
  case NodeKind::Slice: {
    const auto *S = cast<SliceExpr>(E);
    if (S->Lower)
      renderExpr(S->Lower, Out);
    Out += ':';
    if (S->Upper)
      renderExpr(S->Upper, Out);
    if (S->Step) {
      Out += ':';
      renderExpr(S->Step, Out);
    }
    return;
  }
  case NodeKind::Call: {
    const auto *C = cast<CallExpr>(E);
    renderExpr(C->Callee, Out);
    Out += '(';
    bool First = true;
    for (const Expr *A : C->Args) {
      if (!First)
        Out += ", ";
      First = false;
      renderExpr(A, Out);
    }
    for (const KeywordArg &K : C->Keywords) {
      if (!First)
        Out += ", ";
      First = false;
      if (K.Name.empty())
        Out += "**";
      else {
        Out += K.Name;
        Out += '=';
      }
      renderExpr(K.Value, Out);
    }
    Out += ')';
    return;
  }
  case NodeKind::Binary: {
    const auto *B = cast<BinaryExpr>(E);
    Out += '(';
    renderExpr(B->Lhs, Out);
    Out += ' ';
    Out += binaryOpSpelling(B->Op);
    Out += ' ';
    renderExpr(B->Rhs, Out);
    Out += ')';
    return;
  }
  case NodeKind::Unary: {
    const auto *U = cast<UnaryExpr>(E);
    switch (U->Op) {
    case UnaryOp::Neg: Out += '-'; break;
    case UnaryOp::Pos: Out += '+'; break;
    case UnaryOp::Invert: Out += '~'; break;
    case UnaryOp::Not: Out += "not "; break;
    }
    renderExpr(U->Operand, Out);
    return;
  }
  case NodeKind::BoolOp: {
    const auto *B = cast<BoolOpExpr>(E);
    Out += '(';
    for (size_t I = 0; I < B->Operands.size(); ++I) {
      if (I)
        Out += B->IsAnd ? " and " : " or ";
      renderExpr(B->Operands[I], Out);
    }
    Out += ')';
    return;
  }
  case NodeKind::Compare: {
    const auto *C = cast<CompareExpr>(E);
    Out += '(';
    renderExpr(C->First, Out);
    static const char *Spellings[] = {"==", "!=", "<",      "<=",    ">",
                                      ">=", "is", "is not", "in",    "not in"};
    for (size_t I = 0; I < C->Ops.size(); ++I) {
      Out += ' ';
      Out += Spellings[static_cast<size_t>(C->Ops[I])];
      Out += ' ';
      renderExpr(C->Comparators[I], Out);
    }
    Out += ')';
    return;
  }
  case NodeKind::List:
  case NodeKind::Tuple:
  case NodeKind::Set: {
    const std::vector<Expr *> *Elements;
    char Open, Close;
    if (const auto *L = dyn_cast<ListExpr>(E)) {
      Elements = &L->Elements;
      Open = '[';
      Close = ']';
    } else if (const auto *T = dyn_cast<TupleExpr>(E)) {
      Elements = &T->Elements;
      Open = '(';
      Close = ')';
    } else {
      Elements = &cast<SetExpr>(E)->Elements;
      Open = '{';
      Close = '}';
    }
    Out += Open;
    for (size_t I = 0; I < Elements->size(); ++I) {
      if (I)
        Out += ", ";
      renderExpr((*Elements)[I], Out);
    }
    Out += Close;
    return;
  }
  case NodeKind::Dict: {
    const auto *D = cast<DictExpr>(E);
    Out += '{';
    for (size_t I = 0; I < D->Values.size(); ++I) {
      if (I)
        Out += ", ";
      if (D->Keys[I]) {
        renderExpr(D->Keys[I], Out);
        Out += ": ";
      } else {
        Out += "**";
      }
      renderExpr(D->Values[I], Out);
    }
    Out += '}';
    return;
  }
  case NodeKind::Lambda: {
    const auto *L = cast<LambdaExpr>(E);
    Out += "lambda ";
    for (size_t I = 0; I < L->Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += L->Params[I].Name;
    }
    Out += ": ";
    renderExpr(L->Body, Out);
    return;
  }
  case NodeKind::Conditional: {
    const auto *C = cast<ConditionalExpr>(E);
    Out += '(';
    renderExpr(C->Body, Out);
    Out += " if ";
    renderExpr(C->Cond, Out);
    Out += " else ";
    renderExpr(C->OrElse, Out);
    Out += ')';
    return;
  }
  case NodeKind::Starred:
    Out += '*';
    renderExpr(cast<StarredExpr>(E)->Value, Out);
    return;
  case NodeKind::Comprehension: {
    const auto *C = cast<ComprehensionExpr>(E);
    Out += '[';
    if (C->KeyElement) {
      renderExpr(C->KeyElement, Out);
      Out += ": ";
    }
    renderExpr(C->Element, Out);
    Out += " for ";
    renderExpr(C->Target, Out);
    Out += " in ";
    renderExpr(C->Iter, Out);
    if (C->Cond) {
      Out += " if ";
      renderExpr(C->Cond, Out);
    }
    Out += ']';
    return;
  }
  case NodeKind::JoinedStr: {
    const auto *J = cast<JoinedStrExpr>(E);
    Out += "f'";
    for (char C : J->Text) {
      if (C == '\n')
        Out += "\\n";
      else if (C == '\'')
        Out += "\\'";
      else
        Out += C;
    }
    Out += '\'';
    return;
  }
  case NodeKind::Yield:
    Out += "yield";
    if (cast<YieldExpr>(E)->Value) {
      Out += ' ';
      renderExpr(cast<YieldExpr>(E)->Value, Out);
    }
    return;
  default:
    Out += "<unknown expr>";
    return;
  }
}

} // namespace

std::string seldon::pyast::exprToString(const Expr *E) {
  std::string Out;
  renderExpr(E, Out);
  return Out;
}

std::string seldon::pyast::dumpAst(const Node *Root) {
  std::ostringstream OS;
  Dumper D(OS);
  D.dump(Root);
  return OS.str();
}
