# Empty dependencies file for seldon_corpus.
# This may be replaced when dependencies are built.
