//===- active/Oracle.h - Oracles for active learning -------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The oracle side of the active-learning loop ("Active Learning of
/// Points-To Specifications", Bastani et al.): something that can answer
/// "does representation r truly hold role R?". Two implementations:
///
///  * GroundTruthOracle — backed by corpus::GroundTruth, the generated
///    corpus's exact oracle; always answers.
///  * FileOracle — a replayable JSON answer file for the CLI and seldond;
///    pairs it has no entry for stay Unknown (queried but unpinned).
///
/// A run's query transcript serializes to the same JSON shape
/// (writeOracleFile), so any run — including one driven by the ground
/// truth — can be replayed exactly from a file.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_ACTIVE_ORACLE_H
#define SELDON_ACTIVE_ORACLE_H

#include "propgraph/Event.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

namespace seldon {

namespace corpus {
class GroundTruth;
}

namespace active {

/// What an oracle said about one (representation, role) pair.
enum class OracleAnswer { Yes, No, Unknown };

/// Printable name ("yes", "no", "unknown").
const char *oracleAnswerName(OracleAnswer A);

/// Answers membership queries about the true specification.
class Oracle {
public:
  virtual ~Oracle() = default;

  /// Does \p Rep truly hold role \p R? Unknown leaves the variable
  /// unpinned (the query still counts against the budget).
  virtual OracleAnswer answer(const std::string &Rep,
                              propgraph::Role R) = 0;
};

/// The generated corpus's exact oracle; never answers Unknown.
class GroundTruthOracle : public Oracle {
public:
  explicit GroundTruthOracle(const corpus::GroundTruth &Truth)
      : Truth(&Truth) {}
  OracleAnswer answer(const std::string &Rep, propgraph::Role R) override;

private:
  const corpus::GroundTruth *Truth;
};

/// A replayable answer file:
///   {"answers":[{"rep":"flask.escape()","role":"sanitizer","truth":true},
///               ...]}
/// Pairs without an entry answer Unknown. Duplicate entries: last wins.
class FileOracle : public Oracle {
public:
  /// Parses the JSON text; false (with a message) on malformed input.
  static bool parse(const std::string &JsonText, FileOracle &Out,
                    std::string &Error);
  /// Reads and parses \p Path; false (with a message) on IO/parse errors.
  static bool load(const std::string &Path, FileOracle &Out,
                   std::string &Error);

  void add(const std::string &Rep, propgraph::Role R, bool Truth) {
    Answers[{Rep, static_cast<int>(R)}] = Truth;
  }
  size_t size() const { return Answers.size(); }

  OracleAnswer answer(const std::string &Rep, propgraph::Role R) override;

private:
  std::map<std::pair<std::string, int>, bool> Answers;
};

/// One asked-and-answered query of a run.
struct OracleExchange {
  std::string Rep;
  propgraph::Role R = propgraph::Role::Source;
  OracleAnswer A = OracleAnswer::Unknown;
};

/// Serializes a transcript in the FileOracle format (Unknown answers are
/// skipped — replaying them would pin nothing either way).
std::string writeOracleFile(const std::vector<OracleExchange> &Transcript);

} // namespace active
} // namespace seldon

#endif // SELDON_ACTIVE_ORACLE_H
