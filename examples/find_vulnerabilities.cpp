//===- examples/find_vulnerabilities.cpp - End-to-end bug finding ---------===//
//
// The paper's production scenario (§7, Q4/Q7): learn taint specifications
// from a corpus of web applications, then run the taint analyzer over a
// target application and print each violation with its witness path —
// including violations that are undetectable with the seed specification
// alone.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGenerator.h"
#include "infer/Pipeline.h"
#include "taint/TaintAnalyzer.h"

#include <cstdio>

using namespace seldon;

int main() {
  // 1. Learn from a generated corpus of web applications.
  corpus::CorpusOptions Opts;
  Opts.NumProjects = 120;
  corpus::Corpus Data = corpus::generateCorpus(Opts);
  std::printf("Training corpus: %zu projects, %zu files, %zu lines.\n",
              Data.Projects.size(), Data.NumFiles, Data.TotalLines);

  infer::Session Learn;
  Learn.addProjects(Data.Projects);
  Learn.generateConstraints(Data.Seed);
  infer::PipelineResult Result = Learn.solve();
  std::printf("Learned %zu scored representations from %zu constraints "
              "in %.2fs.\n\n",
              Result.Learned.size(), Result.System.Constraints.size(),
              Result.inferenceSeconds());

  // 2. A target application that uses APIs the seed does not know: take
  //    the top inferred (non-seed) source and sink and write an app that
  //    pipes one into the other.
  auto TopInferred = [&](propgraph::Role R) -> std::string {
    for (const auto &[Rep, Score] : Result.Learned.ranked(R, 0.1)) {
      if (Data.Seed.Spec.rolesOf(Rep) != 0)
        continue;
      // Only simple module-level calls can be spliced into the victim app.
      if (Rep.find("weblib") == 0 && Rep.rfind("()") == Rep.size() - 2)
        return Rep.substr(0, Rep.size() - 2);
    }
    return std::string();
  };
  std::string SrcApi = TopInferred(propgraph::Role::Source);
  std::string SnkApi = TopInferred(propgraph::Role::Sink);
  if (SrcApi.empty() || SnkApi.empty()) {
    std::printf("no inferred weblib source/sink pair found; rerun with a "
                "larger corpus\n");
    return 1;
  }
  std::string SrcMod = SrcApi.substr(0, SrcApi.find('.'));
  std::string SnkMod = SnkApi.substr(0, SnkApi.find('.'));
  std::printf("Top inferred source: %s() | top inferred sink: %s()\n\n",
              SrcApi.c_str(), SnkApi.c_str());

  pysem::Project Victim("victim_app");
  Victim.addModule("victim_app/views.py",
                   "import " + SrcMod + "\n"
                   "import " + SnkMod + "\n"
                   "from flask import request\n"
                   "import flask\n"
                   "\n"
                   "def search():\n"
                   "    term = " + SrcApi + "(request)\n"
                   "    " + SnkApi + "(term)\n"
                   "\n"
                   "def greet():\n"
                   "    name = request.args.get('name')\n"
                   "    flask.make_response('<h1>' + name + '</h1>')\n");
  propgraph::PropagationGraph Graph = propgraph::buildProjectGraph(Victim);

  // 3. Analyze with the seed spec alone, then with the learned spec.
  taint::TaintAnalyzer Analyzer(Graph);
  taint::RoleResolver SeedOnly(&Data.Seed.Spec, nullptr);
  taint::RoleResolver WithLearned(&Data.Seed.Spec, &Result.Learned, 0.1);

  auto Print = [&](const char *Label,
                   const std::vector<taint::Violation> &Reports) {
    std::printf("%s: %zu violation(s)\n", Label, Reports.size());
    for (const taint::Violation &V : Reports) {
      std::printf("  [%s] flow:\n", Graph.files()[V.FileIdx].c_str());
      for (propgraph::EventId Id : V.Path) {
        const propgraph::Event &E = Graph.event(Id);
        std::printf("    %s (line %u)\n", E.primaryRep().c_str(),
                    E.Loc.Line);
      }
    }
  };
  auto SeedReports = Analyzer.analyze(SeedOnly);
  auto FullReports = Analyzer.analyze(WithLearned);
  Print("Seed specification only", SeedReports);
  std::printf("\n");
  Print("Seed + inferred specification", FullReports);

  std::printf("\nThe %s -> %s flow is invisible to the seed "
              "specification;\nonly the inferred roles expose it (the "
              "paper's '97%% undetectable' observation).\n",
              SrcApi.c_str(), SnkApi.c_str());
  return 0;
}
