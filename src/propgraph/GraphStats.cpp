//===- propgraph/GraphStats.cpp - Structural graph statistics -------------===//

#include "propgraph/GraphStats.h"

#include "support/StrUtil.h"

#include <algorithm>

using namespace seldon;
using namespace seldon::propgraph;

GraphStats seldon::propgraph::computeGraphStats(const PropagationGraph &Graph) {
  GraphStats Stats;
  Stats.NumEvents = Graph.numEvents();
  Stats.NumEdges = Graph.numEdges();
  Stats.NumFiles = Graph.files().size();

  std::vector<size_t> PerFile(Graph.files().size(), 0);
  size_t OutDegreeSum = 0;
  for (const Event &E : Graph.events()) {
    ++Stats.EventsByKind[static_cast<size_t>(E.Kind)];
    ++PerFile[E.FileIdx];
    size_t Out = Graph.successors(E.Id).size();
    size_t In = Graph.predecessors(E.Id).size();
    OutDegreeSum += Out;
    Stats.MaxOutDegree = std::max(Stats.MaxOutDegree, Out);
    Stats.MaxInDegree = std::max(Stats.MaxInDegree, In);
    Stats.Roots += In == 0;
    Stats.Leaves += Out == 0;
  }
  if (Stats.NumEvents > 0)
    Stats.AvgOutDegree = static_cast<double>(OutDegreeSum) /
                         static_cast<double>(Stats.NumEvents);
  if (!PerFile.empty())
    Stats.MaxEventsPerFile = *std::max_element(PerFile.begin(), PerFile.end());

  // Longest chain via DP over a Kahn topological order; a cycle (possible
  // after vertex contraction) leaves some nodes unpopped and yields 0.
  std::vector<size_t> InDegree(Stats.NumEvents, 0);
  for (const Event &E : Graph.events())
    for (EventId To : Graph.successors(E.Id))
      ++InDegree[To];
  std::vector<EventId> Queue;
  std::vector<size_t> Depth(Stats.NumEvents, 1);
  for (EventId Id = 0; Id < Stats.NumEvents; ++Id)
    if (InDegree[Id] == 0)
      Queue.push_back(Id);
  size_t Popped = 0;
  size_t Longest = Stats.NumEvents > 0 ? 1 : 0;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    EventId Cur = Queue[Head];
    ++Popped;
    Longest = std::max(Longest, Depth[Cur]);
    for (EventId Next : Graph.successors(Cur)) {
      Depth[Next] = std::max(Depth[Next], Depth[Cur] + 1);
      if (--InDegree[Next] == 0)
        Queue.push_back(Next);
    }
  }
  Stats.LongestChain = Popped == Stats.NumEvents ? Longest : 0;
  return Stats;
}

std::string seldon::propgraph::renderGraphStats(const GraphStats &Stats) {
  std::string Out;
  Out += formatString("events: %zu (%zu calls, %zu object reads, %zu formal "
                      "params, %zu call args)\n",
                      Stats.NumEvents, Stats.countOf(EventKind::Call),
                      Stats.countOf(EventKind::ObjectRead),
                      Stats.countOf(EventKind::FormalParam),
                      Stats.countOf(EventKind::CallArgument));
  Out += formatString("edges: %zu (avg out-degree %.2f, max out %zu, max in "
                      "%zu)\n",
                      Stats.NumEdges, Stats.AvgOutDegree, Stats.MaxOutDegree,
                      Stats.MaxInDegree);
  Out += formatString("roots: %zu, leaves: %zu, longest flow chain: %zu "
                      "events\n",
                      Stats.Roots, Stats.Leaves, Stats.LongestChain);
  Out += formatString("files: %zu (densest file: %zu events)\n",
                      Stats.NumFiles, Stats.MaxEventsPerFile);
  return Out;
}
