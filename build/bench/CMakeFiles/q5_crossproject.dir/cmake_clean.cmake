file(REMOVE_RECURSE
  "CMakeFiles/q5_crossproject.dir/q5_crossproject.cpp.o"
  "CMakeFiles/q5_crossproject.dir/q5_crossproject.cpp.o.d"
  "q5_crossproject"
  "q5_crossproject.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/q5_crossproject.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
