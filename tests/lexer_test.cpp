//===- tests/lexer_test.cpp - Tests for the Python lexer ------------------===//

#include "pyast/Lexer.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::pyast;

namespace {

std::vector<Token> lex(std::string_view Source) {
  Lexer L(Source);
  return L.lexAll();
}

/// Returns the token kinds, dropping the trailing EndOfFile.
std::vector<TokenKind> kindsOf(std::string_view Source) {
  std::vector<TokenKind> Kinds;
  for (const Token &T : lex(Source))
    Kinds.push_back(T.Kind);
  EXPECT_FALSE(Kinds.empty());
  EXPECT_EQ(Kinds.back(), TokenKind::EndOfFile);
  Kinds.pop_back();
  return Kinds;
}

TEST(LexerTest, EmptyInput) {
  auto Tokens = lex("");
  ASSERT_EQ(Tokens.size(), 1u);
  EXPECT_EQ(Tokens[0].Kind, TokenKind::EndOfFile);
}

TEST(LexerTest, SimpleAssignment) {
  auto Kinds = kindsOf("x = 1\n");
  std::vector<TokenKind> Expected{TokenKind::Name, TokenKind::Equal,
                                  TokenKind::Number, TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, KeywordsVsNames) {
  auto Tokens = lex("def deff\n");
  EXPECT_EQ(Tokens[0].Kind, TokenKind::KwDef);
  EXPECT_EQ(Tokens[1].Kind, TokenKind::Name);
  EXPECT_EQ(Tokens[1].Text, "deff");
}

TEST(LexerTest, IndentDedent) {
  auto Kinds = kindsOf("if x:\n    y = 1\nz = 2\n");
  std::vector<TokenKind> Expected{
      TokenKind::KwIf,   TokenKind::Name,   TokenKind::Colon,
      TokenKind::Newline, TokenKind::Indent, TokenKind::Name,
      TokenKind::Equal,  TokenKind::Number, TokenKind::Newline,
      TokenKind::Dedent, TokenKind::Name,   TokenKind::Equal,
      TokenKind::Number, TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, NestedIndentationClosesAtEof) {
  auto Kinds = kindsOf("def f():\n  if x:\n    return 1");
  // Two DEDENTs must be emitted before EOF.
  int Dedents = 0;
  for (TokenKind K : Kinds)
    Dedents += K == TokenKind::Dedent;
  EXPECT_EQ(Dedents, 2);
  // A synthetic newline terminates the final line.
  EXPECT_EQ(Kinds[Kinds.size() - 3], TokenKind::Newline);
}

TEST(LexerTest, BlankAndCommentLinesIgnored) {
  auto Kinds = kindsOf("x = 1\n\n# comment\n   \ny = 2\n");
  std::vector<TokenKind> Expected{TokenKind::Name,   TokenKind::Equal,
                                  TokenKind::Number, TokenKind::Newline,
                                  TokenKind::Name,   TokenKind::Equal,
                                  TokenKind::Number, TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, TrailingCommentOnCodeLine) {
  auto Kinds = kindsOf("x = 1  # set x\n");
  std::vector<TokenKind> Expected{TokenKind::Name, TokenKind::Equal,
                                  TokenKind::Number, TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, ImplicitLineJoinInsideBrackets) {
  auto Kinds = kindsOf("f(a,\n  b)\n");
  std::vector<TokenKind> Expected{
      TokenKind::Name,  TokenKind::LParen, TokenKind::Name, TokenKind::Comma,
      TokenKind::Name, TokenKind::RParen, TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, ExplicitLineJoin) {
  auto Kinds = kindsOf("x = 1 + \\\n    2\n");
  std::vector<TokenKind> Expected{TokenKind::Name,   TokenKind::Equal,
                                  TokenKind::Number, TokenKind::Plus,
                                  TokenKind::Number, TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, StringEscapes) {
  auto Tokens = lex("s = 'a\\nb\\'c'\n");
  ASSERT_GE(Tokens.size(), 3u);
  EXPECT_EQ(Tokens[2].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[2].Text, "a\nb'c");
}

TEST(LexerTest, RawStringKeepsBackslash) {
  auto Tokens = lex("s = r'a\\nb'\n");
  EXPECT_EQ(Tokens[2].Text, "a\\nb");
}

TEST(LexerTest, TripleQuotedString) {
  auto Tokens = lex("s = \"\"\"line1\nline2\"\"\"\n");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[2].Text, "line1\nline2");
}

TEST(LexerTest, FStringLexedAsString) {
  auto Tokens = lex("s = f'hello {name}'\n");
  EXPECT_EQ(Tokens[2].Kind, TokenKind::String);
  EXPECT_EQ(Tokens[2].Text, "hello {name}");
}

TEST(LexerTest, UnterminatedStringIsError) {
  Lexer L("s = 'oops\n");
  L.lexAll();
  EXPECT_FALSE(L.errors().empty());
}

TEST(LexerTest, Numbers) {
  auto Tokens = lex("a = 10_000\nb = 3.14\nc = 1e-5\nd = 0xFF\ne = .5\n");
  std::vector<std::string> Expected{"10_000", "3.14", "1e-5", "0xFF", ".5"};
  std::vector<std::string> Got;
  for (const Token &T : Tokens)
    if (T.is(TokenKind::Number))
      Got.push_back(T.Text);
  EXPECT_EQ(Got, Expected);
}

TEST(LexerTest, NumberDotAttributeNotFloat) {
  // `x[0].attr` — the dot binds to the attribute, not the number... but
  // `0 .attr` is rare; what matters is `d[0].save()` lexes correctly.
  auto Kinds = kindsOf("d[0].save()\n");
  std::vector<TokenKind> Expected{
      TokenKind::Name,   TokenKind::LBracket, TokenKind::Number,
      TokenKind::RBracket, TokenKind::Dot,    TokenKind::Name,
      TokenKind::LParen, TokenKind::RParen,   TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, MultiCharOperators) {
  auto Kinds = kindsOf("a **= b // c != d -> e := f\n");
  std::vector<TokenKind> Expected{
      TokenKind::Name, TokenKind::DoubleStarEq, TokenKind::Name,
      TokenKind::DoubleSlash, TokenKind::Name, TokenKind::NotEq,
      TokenKind::Name, TokenKind::Arrow, TokenKind::Name,
      TokenKind::Walrus, TokenKind::Name, TokenKind::Newline};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, LineAndColumnTracking) {
  auto Tokens = lex("x = 1\ny = 2\n");
  EXPECT_EQ(Tokens[0].Line, 1u);
  EXPECT_EQ(Tokens[0].Col, 1u);
  // Token for `y`.
  EXPECT_EQ(Tokens[4].Line, 2u);
  EXPECT_EQ(Tokens[4].Col, 1u);
  // Token for `2`.
  EXPECT_EQ(Tokens[6].Col, 5u);
}

TEST(LexerTest, InconsistentDedentReported) {
  Lexer L("if x:\n        a = 1\n    b = 2\n");
  L.lexAll();
  EXPECT_FALSE(L.errors().empty());
}

TEST(LexerTest, BadCharacterReported) {
  Lexer L("a = 1 $ 2\n");
  auto Tokens = L.lexAll();
  EXPECT_FALSE(L.errors().empty());
  bool SawError = false;
  for (const Token &T : Tokens)
    SawError |= T.is(TokenKind::Error);
  EXPECT_TRUE(SawError);
}

TEST(LexerTest, TabsIndentToMultipleOfEight) {
  // A tab and 8 spaces must land on the same indentation level.
  auto Kinds = kindsOf("if x:\n\ty = 1\n        z = 2\n");
  int Indents = 0, Dedents = 0;
  for (TokenKind K : Kinds) {
    Indents += K == TokenKind::Indent;
    Dedents += K == TokenKind::Dedent;
  }
  EXPECT_EQ(Indents, 1);
  EXPECT_EQ(Dedents, 1);
}

TEST(LexerTest, RealWorldSnippet) {
  // The paper's Fig. 2a snippet must lex without errors.
  const char *Source =
      "from yak.web import app\n"
      "from flask import request\n"
      "from werkzeug import secure_filename\n"
      "import os\n"
      "\n"
      "blog_dir = app.config['PATH']\n"
      "\n"
      "@app.route('/media/', methods=['POST'])\n"
      "def media():\n"
      "    filename = request.files['f'].filename\n"
      "    filename = secure_filename(filename)\n"
      "    path = os.path.join(blog_dir, filename)\n"
      "    if not os.path.exists(path):\n"
      "        request.files['f'].save(path)\n";
  Lexer L(Source);
  auto Tokens = L.lexAll();
  EXPECT_TRUE(L.errors().empty());
  EXPECT_GT(Tokens.size(), 50u);
}

} // namespace
