//===- constraints/ConstraintSystem.cpp - Generated system ----------------===//

#include "constraints/ConstraintSystem.h"

using namespace seldon;
using namespace seldon::constraints;

solver::Objective ConstraintSystem::makeObjective(double Lambda) const {
  solver::Objective Obj(Vars.numVars(), Constraints, Lambda);
  for (const auto &[Var, Value] : Pinned)
    Obj.pin(Var, Value);
  return Obj;
}

solver::CompiledObjective
ConstraintSystem::makeCompiledObjective(double Lambda) const {
  solver::CompiledObjective Obj(Vars.numVars(), Constraints, Lambda);
  for (const auto &[Var, Value] : Pinned)
    Obj.pin(Var, Value);
  return Obj;
}

solver::SimdObjective
ConstraintSystem::makeSimdObjective(double Lambda,
                                    solver::SimdPrecision Precision) const {
  solver::SimdObjective Obj(Vars.numVars(), Constraints, Lambda, Precision);
  for (const auto &[Var, Value] : Pinned)
    Obj.pin(Var, Value);
  return Obj;
}
