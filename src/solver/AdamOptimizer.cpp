//===- solver/AdamOptimizer.cpp - Projected Adam descent ------------------===//

#include "solver/AdamOptimizer.h"

#include "solver/CompiledObjective.h"
#include "solver/NumericGuard.h"
#include "solver/SimdObjective.h"
#include "solver/SolveTelemetry.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>

using namespace seldon;
using namespace seldon::solver;

template <class ObjT>
SolveResult AdamOptimizer::minimize(const ObjT &Obj) const {
  // A warm-start point for a different variable count is a caller bug
  // (stale spec mapped onto the wrong system); fall back to the exact
  // cold start rather than solving the wrong problem.
  if (!Options.WarmStart.empty() &&
      Options.WarmStart.size() == Obj.numVars())
    return minimize(Obj, Options.WarmStart);
  return minimize(Obj, Obj.initialPoint());
}

template <class ObjT>
SolveResult AdamOptimizer::minimize(const ObjT &Obj,
                                    std::vector<double> X0) const {
  SolveResult Result;
  Result.X = std::move(X0);
  Obj.project(Result.X);

  const size_t N = Obj.numVars();
  std::vector<double> M(N, 0.0), V(N, 0.0), Grad, Mapped;
  SolveTelemetry Telemetry;
  Timer Budget;
  // The only constraint evaluation per iteration: one fused call yields
  // both the objective value at the current iterate and its subgradient.
  double Value = guardedEval(Obj, Result.X, Grad, 0);
  std::vector<double> Best = Result.X;
  double BestValue = Value;
  // Bias-correction powers β₁ᵗ/β₂ᵗ, maintained incrementally instead of
  // calling std::pow every iteration.
  double Beta1T = 1.0, Beta2T = 1.0;
  // 1.0 on a healthy run (the update below is bit-identical to the
  // unscaled one); halved by each recovery rung.
  double StepScale = 1.0;

  // Non-finite recovery ladder: revert to the best finite iterate, clear
  // the Adam moments (stale momentum would relaunch the iterate toward
  // the region that produced the NaN/Inf), halve the step scale, and
  // re-evaluate. Bounded by MaxRecoveries; when the ladder runs dry the
  // solve falls back to best-so-far with FellBack set.
  auto Recover = [&](int Iter) -> bool {
    ++Result.NonFiniteSteps;
    if (!std::isfinite(BestValue)) // Poisoned initial evaluation: the
      BestValue =                  // projected start is still finite.
          std::numeric_limits<double>::infinity();
    while (Result.Recoveries < Options.MaxRecoveries) {
      ++Result.Recoveries;
      Result.X = Best;
      std::fill(M.begin(), M.end(), 0.0);
      std::fill(V.begin(), V.end(), 0.0);
      Beta1T = Beta2T = 1.0;
      StepScale *= 0.5;
      Value = guardedEval(Obj, Result.X, Grad, Iter);
      if (allFinite(Value, Grad))
        return true;
      ++Result.NonFiniteSteps;
    }
    Result.FellBack = true;
    return false;
  };

  if (!allFinite(Value, Grad) && !Recover(0)) {
    // Nothing ever evaluated finite. The projected start is a valid
    // iterate; return it rather than a NaN-poisoned spec.
    Result.FinalObjective = 0.0;
    return Result;
  }

  for (int Iter = 1; Iter <= Options.MaxIterations; ++Iter) {
    if ((Options.ShouldStop && Options.ShouldStop()) ||
        (Options.BudgetSeconds > 0 &&
         Budget.seconds() >= Options.BudgetSeconds)) {
      Result.DeadlineExpired = true;
      break;
    }
    // Stationarity test via the projected-gradient mapping: at a solution,
    // a plain projected step does not move the iterate. (Comparing
    // objective values is unreliable here: an iterate pinned to the box
    // boundary by leftover momentum keeps the objective constant without
    // being optimal.) The probe reuses the gradient of the fused call —
    // no extra constraint sweep.
    Mapped = Result.X;
    for (size_t I = 0; I < N; ++I)
      Mapped[I] -= Options.LearningRate * StepScale * Grad[I];
    Obj.project(Mapped);
    double StepNorm = 0.0;
    for (size_t I = 0; I < N; ++I)
      StepNorm = std::max(StepNorm, std::abs(Mapped[I] - Result.X[I]));
    if (StepNorm < Options.Tolerance) {
      Result.Converged = true;
      Result.Iterations = Iter;
      Telemetry.onIteration(Iter, Value, Grad);
      if (Options.OnIteration)
        Options.OnIteration(Iter, Value);
      break;
    }

    Beta1T *= Options.Beta1;
    Beta2T *= Options.Beta2;
    for (size_t I = 0; I < N; ++I) {
      M[I] = Options.Beta1 * M[I] + (1.0 - Options.Beta1) * Grad[I];
      V[I] = Options.Beta2 * V[I] + (1.0 - Options.Beta2) * Grad[I] * Grad[I];
      double MHat = M[I] / (1.0 - Beta1T);
      double VHat = V[I] / (1.0 - Beta2T);
      Result.X[I] -= Options.LearningRate * StepScale * MHat /
                     (std::sqrt(VHat) + Options.Epsilon);
    }
    Obj.project(Result.X);
    Result.Iterations = Iter;

    Value = guardedEval(Obj, Result.X, Grad, Iter);
    if (!allFinite(Value, Grad)) {
      // Roll back before any telemetry or callback sees the poisoned
      // evaluation; a recovered iteration resumes from the reverted state.
      if (!Recover(Iter))
        break;
      continue;
    }
    // Subgradient iterations are not monotone; keep the best point seen.
    if (Value < BestValue) {
      BestValue = Value;
      Best = Result.X;
      Telemetry.onBestUpdate();
    }
    Telemetry.onIteration(Iter, Value, Grad);
    if (Options.OnIteration)
      Options.OnIteration(Iter, Value);
  }

  // Value is the objective at the final iterate: the loop left it there
  // after the last step (or at the initial point when the loop never ran).
  // A FellBack break leaves Value non-finite, so the comparison routes to
  // the best finite iterate.
  if (Value <= BestValue) {
    Result.FinalObjective = Value;
  } else {
    Result.X = std::move(Best);
    Result.FinalObjective = BestValue;
  }
  if (!std::isfinite(Result.FinalObjective))
    Result.FinalObjective = 0.0; // Nothing finite past the start (FellBack).
  return Result;
}

namespace seldon {
namespace solver {

template SolveResult AdamOptimizer::minimize<Objective>(const Objective &)
    const;
template SolveResult
AdamOptimizer::minimize<Objective>(const Objective &,
                                   std::vector<double>) const;
template SolveResult
AdamOptimizer::minimize<CompiledObjective>(const CompiledObjective &) const;
template SolveResult
AdamOptimizer::minimize<CompiledObjective>(const CompiledObjective &,
                                           std::vector<double>) const;
template SolveResult
AdamOptimizer::minimize<SimdObjective>(const SimdObjective &) const;
template SolveResult
AdamOptimizer::minimize<SimdObjective>(const SimdObjective &,
                                       std::vector<double>) const;

} // namespace solver
} // namespace seldon
