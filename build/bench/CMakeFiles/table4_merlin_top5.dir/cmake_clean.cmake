file(REMOVE_RECURSE
  "CMakeFiles/table4_merlin_top5.dir/table4_merlin_top5.cpp.o"
  "CMakeFiles/table4_merlin_top5.dir/table4_merlin_top5.cpp.o.d"
  "table4_merlin_top5"
  "table4_merlin_top5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_merlin_top5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
