//===- bench/fig10_scaling.cpp - Paper Fig. 10 ----------------------------===//
//
// Regenerates Figure 10: Seldon inference time as a function of the number
// of analyzed files. The paper shows linear scaling up to 800,000 files
// (< 5 hours); we sweep corpus subsets of growing size and report the
// end-to-end pipeline time (parse + constraint generation + solving) for a
// serial run (--jobs 1) and a parallel run (SELDON_JOBS threads, default:
// all hardware threads), checking that the two produce byte-identical
// learned specifications. The per-file rate must stay roughly constant for
// linear scaling.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "spec/SpecIO.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;

namespace {

struct TimedRun {
  infer::PipelineResult Result;
  double TotalSeconds = 0.0;
};

TimedRun runWithJobs(const corpus::Corpus &Data,
                     const infer::PipelineOptions &BaseOpts, unsigned Jobs) {
  infer::PipelineOptions Opts = BaseOpts;
  Opts.Jobs = Jobs;
  infer::Session Session(Opts);
  Session.addProjects(Data.Projects);
  Session.generateConstraints(Data.Seed);
  TimedRun Run;
  Run.Result = Session.solve();
  Run.TotalSeconds = Run.Result.BuildSeconds + Run.Result.GenSeconds +
                     Run.Result.SolveSeconds;
  return Run;
}

} // namespace

int main() {
  int MaxProjects = envInt("SELDON_PROJECTS", 300) * 2;
  unsigned Jobs = static_cast<unsigned>(
      envInt("SELDON_JOBS",
             static_cast<int>(ThreadPool::hardwareConcurrency())));
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();

  std::cout << "=== Figure 10: Seldon inference time vs number of analyzed "
               "files ===\n\n";
  std::cout << formatString("parallel runs use %u job(s) "
                            "(override with SELDON_JOBS)\n\n",
                            Jobs);
  TablePrinter Table({"# Files", "# Constraints", "Serial (s)",
                      formatString("Jobs=%u (s)", Jobs), "Speedup",
                      "ms per file"});

  bool AllIdentical = true;
  double HalfRate = 0.0, LastRate = 0.0;
  solver::CompileStats LastStats;
  for (int Fraction = 1; Fraction <= 8; ++Fraction) {
    corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
    CorpusOpts.NumProjects = MaxProjects * Fraction / 8;
    if (CorpusOpts.NumProjects == 0)
      continue;
    corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

    TimedRun Serial = runWithJobs(Data, PipelineOpts, 1);
    TimedRun Parallel = runWithJobs(Data, PipelineOpts, Jobs);

    // Determinism check: the parallel run must reproduce the serial
    // specification byte for byte.
    AllIdentical &= spec::writeLearnedSpec(Serial.Result.Learned) ==
                    spec::writeLearnedSpec(Parallel.Result.Learned);

    const infer::PipelineResult &R = Parallel.Result;
    double MsPerFile = R.NumFiles == 0
                           ? 0.0
                           : 1000.0 * Parallel.TotalSeconds /
                                 static_cast<double>(R.NumFiles);
    if (Fraction == 4)
      HalfRate = MsPerFile;
    LastRate = MsPerFile;
    LastStats = R.SolverStats;
    Table.addRow({std::to_string(R.NumFiles),
                  std::to_string(R.System.Constraints.size()),
                  formatString("%.3f", Serial.TotalSeconds),
                  formatString("%.3f", Parallel.TotalSeconds),
                  formatString("%.2fx",
                               Parallel.TotalSeconds > 0.0
                                   ? Serial.TotalSeconds /
                                         Parallel.TotalSeconds
                                   : 0.0),
                  formatString("%.3f", MsPerFile)});
  }
  Table.print(std::cout);

  std::cout << formatString(
      "\ncompiled solver at full size: %zu constraints -> %zu rows "
      "(dedup %.2fx), %zu non-zeros\n",
      LastStats.RowsBefore, LastStats.RowsAfter, LastStats.dedupRatio(),
      LastStats.NonZeros);
  std::cout << formatString(
      "\nSerial and parallel learned specs byte-identical at every size: "
      "%s\n",
      AllIdentical ? "yes" : "NO — DETERMINISM BUG");
  std::cout << formatString(
      "\nPer-file rate at half vs full corpus: %.3f vs %.3f ms/file — "
      "linear scaling keeps\nthese close. (The rate climbs at the smallest "
      "sizes while representations are still\nbelow the frequency cutoff, "
      "then plateaus; the paper's curve is linear up to 800k\nfiles. "
      "Speedup tracks the number of physical cores; on a single-core "
      "machine the\nparallel column matches the serial one.)\n",
      HalfRate, LastRate);
  return AllIdentical ? 0 : 1;
}
