//===- solver/Objective.cpp - Relaxed constraint-system objective ---------===//

#include "solver/Objective.h"

#include <algorithm>
#include <cassert>

using namespace seldon;
using namespace seldon::solver;

Objective::Objective(size_t NumVars,
                     std::vector<LinearConstraint> Constraints, double Lambda)
    : NumVars(NumVars), Constraints(std::move(Constraints)), Lambda(Lambda),
      Pinned(NumVars, false), PinnedValues(NumVars, 0.0) {
#ifndef NDEBUG
  for (const LinearConstraint &C : this->Constraints) {
    for (const Term &T : C.Lhs)
      assert(T.Var < NumVars && "constraint references unknown variable");
    for (const Term &T : C.Rhs)
      assert(T.Var < NumVars && "constraint references unknown variable");
  }
#endif
}

void Objective::pin(uint32_t Var, double Value) {
  assert(Var < NumVars);
  assert(Value >= 0.0 && Value <= 1.0 && "pinned values must lie in [0,1]");
  Pinned[Var] = true;
  PinnedValues[Var] = Value;
}

std::vector<double> Objective::initialPoint() const {
  std::vector<double> X(NumVars, 0.0);
  project(X);
  return X;
}

double Objective::hingeLoss(const std::vector<double> &X) const {
  double Total = 0.0;
  for (const LinearConstraint &C : Constraints) {
    double V = -C.C;
    for (const Term &T : C.Lhs)
      V += T.Coef * X[T.Var];
    for (const Term &T : C.Rhs)
      V -= T.Coef * X[T.Var];
    if (V > 0.0)
      Total += V;
  }
  return Total;
}

double Objective::value(const std::vector<double> &X) const {
  double Total = hingeLoss(X);
  for (uint32_t V = 0; V < NumVars; ++V)
    if (!Pinned[V])
      Total += Lambda * X[V];
  return Total;
}

void Objective::gradient(const std::vector<double> &X,
                         std::vector<double> &Grad) const {
  Grad.assign(NumVars, 0.0);
  for (const LinearConstraint &C : Constraints) {
    double V = -C.C;
    for (const Term &T : C.Lhs)
      V += T.Coef * X[T.Var];
    for (const Term &T : C.Rhs)
      V -= T.Coef * X[T.Var];
    if (V <= 0.0)
      continue; // Satisfied: subgradient 0.
    for (const Term &T : C.Lhs)
      Grad[T.Var] += T.Coef;
    for (const Term &T : C.Rhs)
      Grad[T.Var] -= T.Coef;
  }
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pinned[V])
      Grad[V] = 0.0;
    else
      Grad[V] += Lambda;
  }
}

void Objective::project(std::vector<double> &X) const {
  assert(X.size() == NumVars);
  for (uint32_t V = 0; V < NumVars; ++V) {
    if (Pinned[V])
      X[V] = PinnedValues[V];
    else
      X[V] = std::clamp(X[V], 0.0, 1.0);
  }
}
