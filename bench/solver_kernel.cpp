//===- bench/solver_kernel.cpp - Solver backend bench ---------------------===//
//
// Times the solve stage on the Fig. 10 corpus across the solver backends
// (legacy Objective, compiled fused kernel, blocked-SIMD fp64, and the
// fp32-compute SIMD variant), each at Jobs=1 and at SELDON_JOBS threads,
// and verifies the equivalence contracts: legacy/compiled/simd runs emit
// byte-identical learned specifications, and simd-f32 selects the same
// role set within its documented score tolerance. Emits a JSON summary to
// stdout (scripts/bench_solver.sh redirects it into BENCH_solver.json)
// and a human-readable table to stderr. Exits non-zero if any contract is
// violated.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "spec/SpecIO.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace seldon;
using namespace seldon::eval;

namespace {

struct SolveRun {
  infer::PipelineResult Result;
  std::string Spec;
};

SolveRun solveWith(infer::Session &Session, solver::SolverBackend Backend,
                   unsigned Jobs) {
  Session.options().Solve.Backend = Backend;
  Session.options().Jobs = Jobs;
  SolveRun Run;
  Run.Result = Session.solve();
  Run.Spec = spec::writeLearnedSpec(Run.Result.Learned, ScoreThreshold);
  return Run;
}

/// The fp32 backend's equivalence contract (docs/architecture.md): its
/// role selection may differ from the compiled backend only where the
/// compiled score lies within this band of the report threshold. fp32
/// rounding perturbs the optimizer trajectory, so scores that land close
/// to the threshold can flip sides; scores outside the band must select
/// identically.
constexpr double F32ThresholdBand = 0.02;

struct F32Comparison {
  bool WithinBand = true; ///< Every selection flip is inside the band.
  size_t Flips = 0;       ///< (rep, role) pairs whose selection differs.
  double WorstFlipDistance = 0.0; ///< Max |compiled score − threshold|
                                  ///< over the flips.
};

F32Comparison compareF32Roles(const spec::LearnedSpec &Compiled,
                              const spec::LearnedSpec &F32) {
  F32Comparison Cmp;
  auto Check = [&](double CompiledScore, double F32Score) {
    if ((CompiledScore >= ScoreThreshold) == (F32Score >= ScoreThreshold))
      return;
    ++Cmp.Flips;
    double Distance = std::fabs(CompiledScore - ScoreThreshold);
    Cmp.WorstFlipDistance = std::max(Cmp.WorstFlipDistance, Distance);
    if (Distance >= F32ThresholdBand)
      Cmp.WithinBand = false;
  };
  for (const auto &[Rep, Scores] : Compiled.all()) {
    auto It = F32.all().find(Rep);
    for (size_t I = 0; I < propgraph::NumRoles; ++I)
      Check(Scores[static_cast<Role>(I)],
            It == F32.all().end() ? 0.0
                                  : It->second[static_cast<Role>(I)]);
  }
  // Representations only the fp32 run scored (none in practice — both
  // solve the same system — but the contract should not silently pass on
  // asymmetric key sets).
  for (const auto &[Rep, Scores] : F32.all())
    if (Compiled.all().find(Rep) == Compiled.all().end())
      for (size_t I = 0; I < propgraph::NumRoles; ++I)
        Check(0.0, Scores[static_cast<Role>(I)]);
  return Cmp;
}

} // namespace

int main() {
  int NumProjects = envInt("SELDON_PROJECTS", 300);
  unsigned Jobs = static_cast<unsigned>(
      envInt("SELDON_JOBS",
             static_cast<int>(ThreadPool::hardwareConcurrency())));

  // The bench's timings come from the same instrumentation layer the CLI
  // exports (--metrics-out): Session stage durations are trace spans, and
  // the full snapshot is embedded in the JSON summary below.
  metrics::Registry &Reg = metrics::Registry::global();
  Reg.setEnabled(true);

  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  CorpusOpts.NumProjects = NumProjects;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  // Parse + generate once; every solve below reuses the same constraint
  // system, so the timings isolate the solve stage.
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();
  infer::Session Session(PipelineOpts);
  Session.addProjects(Data.Projects);
  Session.generateConstraints(Data.Seed);

  std::fprintf(stderr, "solver bench: %d project(s), %u parallel job(s)\n",
               NumProjects, Jobs);
  using solver::SolverBackend;
  SolveRun LegacySerial = solveWith(Session, SolverBackend::Legacy, 1);
  SolveRun CompiledSerial = solveWith(Session, SolverBackend::Compiled, 1);
  SolveRun SimdSerial = solveWith(Session, SolverBackend::Simd, 1);
  SolveRun SimdF32Serial = solveWith(Session, SolverBackend::SimdF32, 1);
  SolveRun LegacyParallel = solveWith(Session, SolverBackend::Legacy, Jobs);
  SolveRun CompiledParallel =
      solveWith(Session, SolverBackend::Compiled, Jobs);
  SolveRun SimdParallel = solveWith(Session, SolverBackend::Simd, Jobs);
  SolveRun SimdF32Parallel =
      solveWith(Session, SolverBackend::SimdF32, Jobs);

  bool Identical = LegacySerial.Spec == CompiledSerial.Spec &&
                   LegacySerial.Spec == LegacyParallel.Spec &&
                   LegacySerial.Spec == CompiledParallel.Spec;
  // The fp64 SIMD backend promises byte-identical specs to the compiled
  // kernel at any job count.
  bool SimdIdentical = SimdSerial.Spec == CompiledSerial.Spec &&
                       SimdParallel.Spec == CompiledSerial.Spec;
  // The fp32 backend promises the same role selection outside the
  // documented threshold band.
  F32Comparison F32Serial =
      compareF32Roles(CompiledSerial.Result.Learned,
                      SimdF32Serial.Result.Learned);
  F32Comparison F32Parallel =
      compareF32Roles(CompiledSerial.Result.Learned,
                      SimdF32Parallel.Result.Learned);
  bool F32RolesMatch = F32Serial.WithinBand && F32Parallel.WithinBand;
  size_t F32Flips = std::max(F32Serial.Flips, F32Parallel.Flips);
  double F32WorstFlip =
      std::max(F32Serial.WorstFlipDistance, F32Parallel.WorstFlipDistance);

  // Consume the metrics snapshot: the eight "session/solve" spans (one
  // per run above, in order) are the timings reported below — the same
  // values PipelineResult::SolveSeconds carries, read back through the
  // registry to keep the bench on the shared instrumentation source.
  std::vector<double> SolveSpanSeconds;
  for (const metrics::SpanRecord &Span : Reg.spans())
    if (Span.Path == "session/solve")
      SolveSpanSeconds.push_back(Span.DurationSeconds);
  if (SolveSpanSeconds.size() != 8) {
    std::fprintf(stderr,
                 "error: expected 8 session/solve spans, found %zu\n",
                 SolveSpanSeconds.size());
    return 1;
  }
  double LegacySerialSeconds = SolveSpanSeconds[0];
  double CompiledSerialSeconds = SolveSpanSeconds[1];
  double SimdSerialSeconds = SolveSpanSeconds[2];
  double SimdF32SerialSeconds = SolveSpanSeconds[3];
  double LegacyParallelSeconds = SolveSpanSeconds[4];
  double CompiledParallelSeconds = SolveSpanSeconds[5];
  double SimdParallelSeconds = SolveSpanSeconds[6];
  double SimdF32ParallelSeconds = SolveSpanSeconds[7];

  const infer::PipelineResult &R = CompiledSerial.Result;
  const solver::CompileStats &S = R.SolverStats;
  auto Speedup = [](double Base, double Fast) {
    return Fast > 0.0 ? Base / Fast : 0.0;
  };
  double SerialSpeedup = Speedup(LegacySerialSeconds, CompiledSerialSeconds);
  double ParallelSpeedup =
      Speedup(LegacyParallelSeconds, CompiledParallelSeconds);
  // SIMD speedups are measured against the compiled kernel — that is the
  // bar the vectorized layout has to clear, not the legacy evaluator.
  double SimdSerialSpeedup =
      Speedup(CompiledSerialSeconds, SimdSerialSeconds);
  double SimdParallelSpeedup =
      Speedup(CompiledParallelSeconds, SimdParallelSeconds);
  double SimdF32SerialSpeedup =
      Speedup(CompiledSerialSeconds, SimdF32SerialSeconds);
  double SimdF32ParallelSpeedup =
      Speedup(CompiledParallelSeconds, SimdF32ParallelSeconds);
  bool SimdActive = SimdSerial.Result.SimdActive;

  std::fprintf(stderr,
               "system: %zu constraints -> %zu rows (dedup %.2fx), "
               "%zu non-zeros, %d iterations\n",
               S.RowsBefore, S.RowsAfter, S.dedupRatio(), S.NonZeros,
               R.Solve.Iterations);
  std::fprintf(stderr, "legacy   jobs=1: %.3fs   jobs=%u: %.3fs\n",
               LegacySerialSeconds, Jobs, LegacyParallelSeconds);
  std::fprintf(stderr, "compiled jobs=1: %.3fs   jobs=%u: %.3fs\n",
               CompiledSerialSeconds, Jobs, CompiledParallelSeconds);
  std::fprintf(stderr, "simd     jobs=1: %.3fs   jobs=%u: %.3fs   (%s)\n",
               SimdSerialSeconds, Jobs, SimdParallelSeconds,
               SimdActive ? "avx2" : "scalar fallback");
  std::fprintf(stderr, "simd-f32 jobs=1: %.3fs   jobs=%u: %.3fs\n",
               SimdF32SerialSeconds, Jobs, SimdF32ParallelSeconds);
  std::fprintf(stderr,
               "speedup vs legacy   (compiled) jobs=1: %.2fx   jobs=%u: "
               "%.2fx\n",
               SerialSpeedup, Jobs, ParallelSpeedup);
  std::fprintf(stderr,
               "speedup vs compiled (simd)     jobs=1: %.2fx   jobs=%u: "
               "%.2fx\n",
               SimdSerialSpeedup, Jobs, SimdParallelSpeedup);
  std::fprintf(stderr,
               "speedup vs compiled (simd-f32) jobs=1: %.2fx   jobs=%u: "
               "%.2fx\n",
               SimdF32SerialSpeedup, Jobs, SimdF32ParallelSpeedup);
  std::fprintf(stderr, "legacy/compiled specs byte-identical: %s\n",
               Identical ? "yes" : "NO — EQUIVALENCE BUG");
  std::fprintf(stderr, "simd fp64 specs byte-identical to compiled: %s\n",
               SimdIdentical ? "yes" : "NO — EQUIVALENCE BUG");
  std::fprintf(stderr,
               "simd-f32 roles match compiled outside ±%.3g band: %s "
               "(%zu flip(s), worst at %.4f from threshold)\n",
               F32ThresholdBand,
               F32RolesMatch ? "yes" : "NO — TOLERANCE BUG", F32Flips,
               F32WorstFlip);

  std::string Json = "{\n";
  Json += formatString("  \"projects\": %d,\n", NumProjects);
  Json += formatString("  \"files\": %zu,\n", R.NumFiles);
  Json += formatString("  \"jobs\": %u,\n", Jobs);
  Json += formatString("  \"constraints\": %zu,\n", S.RowsBefore);
  Json += formatString("  \"rows_after_dedup\": %zu,\n", S.RowsAfter);
  Json += formatString("  \"dedup_ratio\": %.4f,\n", S.dedupRatio());
  Json += formatString("  \"nonzeros\": %zu,\n", S.NonZeros);
  Json += formatString("  \"max_multiplicity\": %zu,\n", S.MaxMultiplicity);
  Json += formatString("  \"iterations\": %d,\n", R.Solve.Iterations);
  Json += formatString("  \"simd_active\": %s,\n",
                       SimdActive ? "true" : "false");
  Json += formatString("  \"legacy_serial_seconds\": %.6f,\n",
                       LegacySerialSeconds);
  Json += formatString("  \"compiled_serial_seconds\": %.6f,\n",
                       CompiledSerialSeconds);
  Json += formatString("  \"simd_serial_seconds\": %.6f,\n",
                       SimdSerialSeconds);
  Json += formatString("  \"simd_f32_serial_seconds\": %.6f,\n",
                       SimdF32SerialSeconds);
  Json += formatString("  \"legacy_parallel_seconds\": %.6f,\n",
                       LegacyParallelSeconds);
  Json += formatString("  \"compiled_parallel_seconds\": %.6f,\n",
                       CompiledParallelSeconds);
  Json += formatString("  \"simd_parallel_seconds\": %.6f,\n",
                       SimdParallelSeconds);
  Json += formatString("  \"simd_f32_parallel_seconds\": %.6f,\n",
                       SimdF32ParallelSeconds);
  Json += formatString("  \"serial_speedup\": %.4f,\n", SerialSpeedup);
  Json += formatString("  \"parallel_speedup\": %.4f,\n", ParallelSpeedup);
  Json += formatString("  \"simd_serial_speedup\": %.4f,\n",
                       SimdSerialSpeedup);
  Json += formatString("  \"simd_parallel_speedup\": %.4f,\n",
                       SimdParallelSpeedup);
  Json += formatString("  \"simd_f32_serial_speedup\": %.4f,\n",
                       SimdF32SerialSpeedup);
  Json += formatString("  \"simd_f32_parallel_speedup\": %.4f,\n",
                       SimdF32ParallelSpeedup);
  Json += formatString("  \"byte_identical\": %s,\n",
                       Identical ? "true" : "false");
  Json += formatString("  \"simd_byte_identical\": %s,\n",
                       SimdIdentical ? "true" : "false");
  Json += formatString("  \"simd_f32_roles_match\": %s,\n",
                       F32RolesMatch ? "true" : "false");
  Json += formatString("  \"simd_f32_role_flips\": %zu,\n", F32Flips);
  Json += formatString("  \"simd_f32_threshold_band\": %.4f,\n",
                       F32ThresholdBand);
  // Full registry snapshot (indented to nest under this object).
  {
    std::string Snapshot = Reg.toJson();
    if (!Snapshot.empty() && Snapshot.back() == '\n')
      Snapshot.pop_back();
    std::string Indented;
    for (char C : Snapshot) {
      Indented += C;
      if (C == '\n')
        Indented += "  ";
    }
    Json += "  \"metrics\": " + Indented + "\n";
  }
  Json += "}\n";
  std::fputs(Json.c_str(), stdout);

  return (Identical && SimdIdentical && F32RolesMatch) ? 0 : 1;
}
