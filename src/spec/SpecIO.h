//===- spec/SpecIO.h - Specification serialization ---------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of specifications:
///
///  * seed/taint specs round-trip through the paper's App. B format
///    (`o:`/`a:`/`i:`/`b:` lines);
///  * learned specs use a scored line format
///    (`source 0.75 flask.request.args.get()`), so a learned specification
///    can be saved, reviewed by an expert (the paper's Fig. 1 workflow),
///    edited, and fed back to the taint analyzer.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SPEC_SPECIO_H
#define SELDON_SPEC_SPECIO_H

#include "spec/LearnedSpec.h"
#include "spec/SeedSpec.h"
#include "support/IOResult.h"

#include <string>
#include <vector>

namespace seldon {
namespace spec {

/// Outcome of a specification IO operation: either a value or an error
/// message, plus recoverable per-line warnings. The uniform replacement
/// for the mixed bool / optional / out-parameter conventions SpecIO
/// callers used to juggle. Now an alias of the shared support/IOResult.h
/// carrier so the graph codec and cache speak the same error language.
template <typename T> using IOResult = io::IOResult<T>;

/// Reads and parses a seed specification (App. B format) from \p Path.
/// Strict: a truncated file (non-empty, no trailing newline) or any
/// malformed record fails the whole load with a descriptive error and a
/// default-constructed Value — never a partially-populated spec. Use
/// SeedSpec::parse for lenient in-memory parsing.
IOResult<SeedSpec> loadSeedSpec(const std::string &Path);

/// Reads and parses a learned specification (scored lines) from \p Path.
/// Strict like loadSeedSpec; use parseLearnedSpec for lenient parsing.
IOResult<LearnedSpec> loadLearnedSpec(const std::string &Path);

/// Writes \p Seed to \p Path in the App. B format. Value = bytes written.
IOResult<size_t> saveSeedSpec(const SeedSpec &Seed, const std::string &Path);

/// Writes \p Learned to \p Path as scored lines, keeping entries with
/// score above \p MinScore. Value = bytes written.
IOResult<size_t> saveLearnedSpec(const LearnedSpec &Learned,
                                 const std::string &Path,
                                 double MinScore = 0.0);

/// Renders \p Seed in the App. B text format (deterministic order:
/// sources, sanitizers, sinks — each sorted — then blacklist patterns in
/// insertion order). parse(writeSeedSpec(S)) reproduces S.
std::string writeSeedSpec(const SeedSpec &Seed);

/// Renders \p Learned as scored lines, one per (representation, role) with
/// score above \p MinScore, grouped by role and sorted by descending
/// score.
std::string writeLearnedSpec(const LearnedSpec &Learned,
                             double MinScore = 0.0);

/// Parses the scored line format back into a LearnedSpec. Malformed lines
/// are reported into \p ErrorsOut (may be null) and skipped.
LearnedSpec parseLearnedSpec(std::string_view Text,
                             std::vector<std::string> *ErrorsOut = nullptr);

/// Differences between two learned specifications at a selection
/// threshold — the review a security team runs when retraining changes
/// the deployed specification.
struct SpecDiff {
  /// Selected in New but not in Old.
  std::vector<std::pair<std::string, Role>> Added;
  /// Selected in Old but not in New.
  std::vector<std::pair<std::string, Role>> Removed;
  /// Selected in both with |scoreNew - scoreOld| >= the drift delta:
  /// (rep, role, old score, new score).
  std::vector<std::tuple<std::string, Role, double, double>> Drifted;
};

/// Compares \p Old and \p New: an entry is "selected" when its score is
/// at least \p Threshold. Deterministic order (role, then rep).
SpecDiff diffLearnedSpecs(const LearnedSpec &Old, const LearnedSpec &New,
                          double Threshold = 0.1, double DriftDelta = 0.1);

/// Human-readable rendering of a diff (empty string when nothing changed).
std::string renderSpecDiff(const SpecDiff &Diff);

} // namespace spec
} // namespace seldon

#endif // SELDON_SPEC_SPECIO_H
