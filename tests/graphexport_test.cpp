//===- tests/graphexport_test.cpp - Tests for graph serialization ---------===//

#include "propgraph/GraphBuilder.h"
#include "propgraph/GraphExport.h"
#include "propgraph/GraphStats.h"
#include "pysem/Project.h"
#include "taint/TaintAnalyzer.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

struct ExportFixture {
  pysem::Project Proj;
  PropagationGraph Graph;

  explicit ExportFixture(std::string_view Source) {
    const pysem::ModuleInfo &M = Proj.addModule("app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = buildModuleGraph(Proj, M);
  }
};

TEST(GraphExportTest, TextFormatListsEventsAndEdges) {
  ExportFixture F("import web\nimport db\ndb.run(web.read())\n");
  std::string Text = toText(F.Graph);
  EXPECT_NE(Text.find("graph events=2 edges=1"), std::string::npos);
  EXPECT_NE(Text.find("event 0 call web.read()"), std::string::npos);
  EXPECT_NE(Text.find("event 1 call db.run()"), std::string::npos);
  EXPECT_NE(Text.find("edge 0 1"), std::string::npos);
}

TEST(GraphExportTest, TextFormatIncludesBackoffOptions) {
  ExportFixture F("def media(f):\n    f.save(p)\n");
  std::string Text = toText(F.Graph);
  EXPECT_NE(Text.find("event"), std::string::npos);
  EXPECT_NE(Text.find("backoff f.save()"), std::string::npos);
}

TEST(GraphExportTest, DotIsWellFormed) {
  ExportFixture F("import web\nimport db\ndb.run(web.read())\n");
  std::string Dot = toDot(F.Graph);
  EXPECT_EQ(Dot.rfind("digraph", 0), 0u);
  EXPECT_NE(Dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(Dot.find("label=\"web.read()\""), std::string::npos);
  EXPECT_EQ(Dot.back(), '\n');
  // Balanced braces.
  EXPECT_NE(Dot.find("{"), std::string::npos);
  EXPECT_NE(Dot.find("}"), std::string::npos);
}

TEST(GraphExportTest, DotEscapesQuotes) {
  ExportFixture F("from flask import request\n"
                  "x = request.files['f']\n");
  std::string Dot = toDot(F.Graph);
  // The label contains single quotes (fine) and must not break quoting.
  EXPECT_NE(Dot.find("flask.request.files['f']"), std::string::npos);
}

TEST(GraphExportTest, DotColorsRoles) {
  ExportFixture F("import web\nimport clean\nimport db\n"
                  "db.run(clean.scrub(web.read()))\n");
  spec::SeedSpec Seed = spec::SeedSpec::parse(
      "o: web.read()\na: clean.scrub()\ni: db.run()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);

  DotOptions Opts;
  Opts.Roles = Analyzer.resolveRoles(Roles);
  Opts.Name = "fig2b";
  std::string Dot = toDot(F.Graph, Opts);
  EXPECT_NE(Dot.find("digraph \"fig2b\""), std::string::npos);
  EXPECT_NE(Dot.find("lightskyblue"), std::string::npos); // Source.
  EXPECT_NE(Dot.find("palegreen"), std::string::npos);    // Sanitizer.
  EXPECT_NE(Dot.find("lightcoral"), std::string::npos);   // Sink.
}

TEST(GraphExportTest, EmptyGraph) {
  PropagationGraph G;
  EXPECT_NE(toText(G).find("graph events=0 edges=0"), std::string::npos);
  EXPECT_EQ(toDot(G).rfind("digraph", 0), 0u);
}

//===----------------------------------------------------------------------===//
// GraphStats
//===----------------------------------------------------------------------===//

TEST(GraphStatsTest, CountsAndDegrees) {
  ExportFixture F("import web\nimport clean\nimport db\n"
                  "def handle(req):\n"
                  "    x = web.read()\n"
                  "    y = clean.scrub(x)\n"
                  "    db.run(y)\n"
                  "    db.run(x)\n");
  GraphStats Stats = computeGraphStats(F.Graph);
  EXPECT_EQ(Stats.NumEvents, F.Graph.numEvents());
  EXPECT_EQ(Stats.NumEdges, F.Graph.numEdges());
  EXPECT_EQ(Stats.countOf(EventKind::FormalParam), 1u);
  EXPECT_EQ(Stats.countOf(EventKind::Call), 4u);
  // web.read() feeds scrub and the second db.run: out-degree 2.
  EXPECT_EQ(Stats.MaxOutDegree, 2u);
  EXPECT_GT(Stats.Roots, 0u);
  EXPECT_GT(Stats.Leaves, 0u);
  // Longest chain: web.read -> clean.scrub -> db.run = 3 events.
  EXPECT_EQ(Stats.LongestChain, 3u);
  EXPECT_EQ(Stats.MaxEventsPerFile, Stats.NumEvents);
}

TEST(GraphStatsTest, EmptyGraph) {
  PropagationGraph G;
  GraphStats Stats = computeGraphStats(G);
  EXPECT_EQ(Stats.NumEvents, 0u);
  EXPECT_EQ(Stats.LongestChain, 0u);
  EXPECT_DOUBLE_EQ(Stats.AvgOutDegree, 0.0);
}

TEST(GraphStatsTest, CyclicGraphReportsZeroChain) {
  PropagationGraph G;
  uint32_t File = G.addFile("f.py");
  Event E1, E2;
  E1.Kind = E2.Kind = EventKind::Call;
  E1.Reps = {"a()"};
  E2.Reps = {"b()"};
  E1.FileIdx = E2.FileIdx = File;
  EventId A = G.addEvent(E1), B = G.addEvent(E2);
  G.addEdge(A, B);
  G.addEdge(B, A);
  EXPECT_EQ(computeGraphStats(G).LongestChain, 0u);
}

TEST(GraphStatsTest, RenderingContainsKeyNumbers) {
  ExportFixture F("import web\nimport db\ndb.run(web.read())\n");
  std::string Text = renderGraphStats(computeGraphStats(F.Graph));
  EXPECT_NE(Text.find("events: 2"), std::string::npos);
  EXPECT_NE(Text.find("longest flow chain: 2"), std::string::npos);
}

} // namespace
