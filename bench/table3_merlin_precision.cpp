//===- bench/table3_merlin_precision.cpp - Paper Tab. 3 -------------------===//
//
// Regenerates Table 3: Merlin's predictions on the small application at a
// 95% confidence threshold, per role, for collapsed and uncollapsed
// graphs. The paper's point: Merlin is "often overly confident, but not
// very precise" — counts are small and precision low.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "merlin/MerlinPipeline.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using namespace seldon::merlin;
using propgraph::Role;

int main() {
  corpus::ApiUniverse Universe = corpus::ApiUniverse::standard();
  spec::SeedSpec Seed = Universe.seedSpec();
  corpus::GroundTruth Truth = Universe.groundTruth();
  pysem::Project Small =
      corpus::generateSingleProject(Universe, 11, 3, 6, "flask_api_like");
  propgraph::PropagationGraph Graph = propgraph::buildProjectGraph(Small);

  std::cout << "=== Table 3: Results for Merlin on the small app, "
               "confidence >= 95% ===\n\n";
  TablePrinter Table(
      {"Role", "Collapsed: Number", "Collapsed: Precision",
       "Uncollapsed: Number", "Uncollapsed: Precision"});

  const double Threshold = 0.95;
  MerlinOptions Collapsed, Uncollapsed;
  Collapsed.Collapsed = true;
  Uncollapsed.Collapsed = false;
  MerlinResult RC = runMerlin(Graph, Seed, Collapsed);
  MerlinResult RU = runMerlin(Graph, Seed, Uncollapsed);

  size_t AnyC = 0, AnyCCorrect = 0, AnyU = 0, AnyUCorrect = 0;
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
    RolePrecision PC = exactPrecision(RC.Learned, Truth, Seed, R, Threshold);
    RolePrecision PU = exactPrecision(RU.Learned, Truth, Seed, R, Threshold);
    AnyC += PC.Predicted;
    AnyCCorrect += PC.Correct;
    AnyU += PU.Predicted;
    AnyUCorrect += PU.Correct;
    std::string Name = propgraph::roleName(R);
    Name[0] = static_cast<char>(std::toupper(Name[0]));
    Table.addRow({Name + "s", std::to_string(PC.Predicted),
                  PC.Predicted ? percent(PC.precision()) : "n/a",
                  std::to_string(PU.Predicted),
                  PU.Predicted ? percent(PU.precision()) : "n/a"});
  }
  Table.addRow({"Any", std::to_string(AnyC),
                AnyC ? percent(static_cast<double>(AnyCCorrect) / AnyC)
                     : "n/a",
                std::to_string(AnyU),
                AnyU ? percent(static_cast<double>(AnyUCorrect) / AnyU)
                     : "n/a"});
  Table.print(std::cout);

  std::cout << "\nPaper reference (Flask API): collapsed 18/5/3 predictions "
               "at 33/20/0% precision\n(27% overall); uncollapsed 9/1/3 at "
               "22/100/0% (23% overall).\n";
  return 0;
}
