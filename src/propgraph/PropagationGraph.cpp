//===- propgraph/PropagationGraph.cpp - Information-flow graph ------------===//

#include "propgraph/PropagationGraph.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace seldon;
using namespace seldon::propgraph;

uint32_t PropagationGraph::addFile(std::string Path) {
  Files.push_back(std::move(Path));
  return static_cast<uint32_t>(Files.size() - 1);
}

EventId PropagationGraph::addEvent(Event E) {
  assert(!E.Reps.empty() && "events must carry at least one representation");
  assert(E.FileIdx < Files.size() && "event references unregistered file");
  E.Id = static_cast<EventId>(Events.size());
  Events.push_back(std::move(E));
  Succ.emplace_back();
  Pred.emplace_back();
  return Events.back().Id;
}

void PropagationGraph::addEdge(EventId From, EventId To) {
  assert(From < Events.size() && To < Events.size());
  if (From == To)
    return;
  std::vector<EventId> &Out = Succ[From];
  if (std::find(Out.begin(), Out.end(), To) != Out.end())
    return;
  Out.push_back(To);
  Pred[To].push_back(From);
  ++EdgeCount;
}

void PropagationGraph::append(const PropagationGraph &Other) {
  uint32_t FileOffset = static_cast<uint32_t>(Files.size());
  EventId IdOffset = static_cast<EventId>(Events.size());
  for (const std::string &F : Other.Files)
    Files.push_back(F);
  for (const Event &E : Other.Events) {
    Event Copy = E;
    Copy.Id = static_cast<EventId>(Events.size());
    Copy.FileIdx += FileOffset;
    Events.push_back(std::move(Copy));
    Succ.emplace_back();
    Pred.emplace_back();
  }
  for (EventId From = 0; From < Other.Events.size(); ++From)
    for (EventId To : Other.Succ[From]) {
      Succ[From + IdOffset].push_back(To + IdOffset);
      Pred[To + IdOffset].push_back(From + IdOffset);
      ++EdgeCount;
    }
}

std::vector<EventId> PropagationGraph::reachableFrom(EventId Start) const {
  std::vector<EventId> Out;
  std::vector<bool> Seen(Events.size(), false);
  std::vector<EventId> Queue{Start};
  Seen[Start] = true;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    EventId Cur = Queue[Head];
    for (EventId Next : Succ[Cur]) {
      if (Seen[Next])
        continue;
      Seen[Next] = true;
      Out.push_back(Next);
      Queue.push_back(Next);
    }
  }
  return Out;
}

std::vector<EventId> PropagationGraph::reachingTo(EventId Start) const {
  std::vector<EventId> Out;
  std::vector<bool> Seen(Events.size(), false);
  std::vector<EventId> Queue{Start};
  Seen[Start] = true;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    EventId Cur = Queue[Head];
    for (EventId Prev : Pred[Cur]) {
      if (Seen[Prev])
        continue;
      Seen[Prev] = true;
      Out.push_back(Prev);
      Queue.push_back(Prev);
    }
  }
  return Out;
}

PropagationGraph PropagationGraph::collapseByRep() const {
  PropagationGraph Out;
  // All merged events nominally live in one synthetic file; per-file
  // provenance is meaningless after contraction.
  uint32_t FileIdx = Out.addFile("<collapsed>");

  std::unordered_map<std::string, EventId> RepToNew;
  std::vector<EventId> OldToNew(Events.size(), InvalidEvent);

  for (const Event &E : Events) {
    auto It = RepToNew.find(E.primaryRep());
    if (It != RepToNew.end()) {
      EventId NewId = It->second;
      OldToNew[E.Id] = NewId;
      Event &Merged = Out.event(NewId);
      Merged.Candidates |= E.Candidates;
      for (const std::string &R : E.Reps)
        if (std::find(Merged.Reps.begin(), Merged.Reps.end(), R) ==
            Merged.Reps.end())
          Merged.Reps.push_back(R);
      continue;
    }
    Event Copy = E;
    Copy.FileIdx = FileIdx;
    EventId NewId = Out.addEvent(std::move(Copy));
    RepToNew.emplace(E.primaryRep(), NewId);
    OldToNew[E.Id] = NewId;
  }

  for (EventId From = 0; From < Events.size(); ++From)
    for (EventId To : Succ[From])
      Out.addEdge(OldToNew[From], OldToNew[To]);
  return Out;
}

bool PropagationGraph::isAcyclic() const {
  // Kahn's algorithm: the graph is acyclic iff all nodes get popped.
  std::vector<size_t> InDegree(Events.size(), 0);
  for (const std::vector<EventId> &Out : Succ)
    for (EventId To : Out)
      ++InDegree[To];
  std::vector<EventId> Queue;
  for (EventId Id = 0; Id < Events.size(); ++Id)
    if (InDegree[Id] == 0)
      Queue.push_back(Id);
  size_t Popped = 0;
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    EventId Cur = Queue[Head];
    ++Popped;
    for (EventId Next : Succ[Cur])
      if (--InDegree[Next] == 0)
        Queue.push_back(Next);
  }
  return Popped == Events.size();
}
