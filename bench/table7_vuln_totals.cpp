//===- bench/table7_vuln_totals.cpp - Paper Tab. 7 ------------------------===//
//
// Regenerates Table 7: total number of reports, number of projects
// affected, and estimated number of true vulnerabilities, for the seed
// specification versus the inferred one. The paper's headline: the
// inferred specification multiplies reports (662 -> 21,318) and estimated
// true vulnerabilities (159 -> 5,969) by an order of magnitude; 97% of
// violations were undetectable without the inferred specifications.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;

int main() {
  CorpusRun Run = runStandardExperiment(standardCorpusOptions(),
                                        standardPipelineOptions());

  auto SeedReports = analyzeCorpus(Run, /*UseLearned=*/false);
  auto FullReports = analyzeCorpus(Run, /*UseLearned=*/true);

  // True-positive rate estimated exactly over ALL reports (the paper
  // extrapolates from its 25-report sample of Tab. 6).
  ReportBreakdown SeedB = classifyReports(Run.Pipeline.Graph, SeedReports,
                                          Run.Data.Truth, Run.Data.Flows);
  ReportBreakdown FullB = classifyReports(Run.Pipeline.Graph, FullReports,
                                          Run.Data.Truth, Run.Data.Flows);

  auto EstimatedVulns = [](const ReportBreakdown &B) {
    return B.count(ReportCategory::TrueVulnerability);
  };

  std::cout << "=== Table 7: Total reports and estimated vulnerabilities "
               "===\n\n";
  TablePrinter Table({"Reason", "Seed spec", "Inferred spec"});
  Table.addRow({"Number of reports", std::to_string(SeedReports.size()),
                std::to_string(FullReports.size())});
  Table.addRow(
      {"Number of projects affected",
       std::to_string(
           taint::countAffectedProjects(Run.Pipeline.Graph, SeedReports)),
       std::to_string(
           taint::countAffectedProjects(Run.Pipeline.Graph, FullReports))});
  Table.addRow({"Estimated vulnerabilities",
                std::to_string(EstimatedVulns(SeedB)),
                std::to_string(EstimatedVulns(FullB))});
  Table.print(std::cout);

  double Growth = SeedReports.empty()
                      ? 0.0
                      : static_cast<double>(FullReports.size()) /
                            static_cast<double>(SeedReports.size());
  size_t OnlyWithInferred =
      FullReports.size() > SeedReports.size()
          ? FullReports.size() - SeedReports.size()
          : 0;
  std::cout << formatString(
      "\nReport growth with inferred specs: %.1fx; %zu of %zu reports "
      "(%.0f%%) need the inferred\nspecification.\n",
      Growth, OnlyWithInferred, FullReports.size(),
      FullReports.empty() ? 0.0
                          : 100.0 * static_cast<double>(OnlyWithInferred) /
                                static_cast<double>(FullReports.size()));
  std::cout << "Paper reference: 662 -> 21,318 reports; 192 -> 2,409 "
               "projects; 159 -> 5,969 vulnerabilities\n(97% undetectable "
               "without inferred specs).\n";
  return 0;
}
