//===- infer/Pipeline.cpp - Seldon end-to-end inference -------------------===//

#include "infer/Pipeline.h"

#include "support/Timer.h"

using namespace seldon;
using namespace seldon::infer;
using namespace seldon::propgraph;

PipelineResult
seldon::infer::runPipeline(const std::vector<pysem::Project> &Corpus,
                           const spec::SeedSpec &Seed,
                           const PipelineOptions &Opts) {
  Timer BuildTimer;
  PropagationGraph Global;
  size_t NumFiles = 0;
  for (const pysem::Project &Proj : Corpus) {
    PropagationGraph G = buildProjectGraph(Proj, Opts.Build);
    NumFiles += Proj.modules().size();
    Global.append(G);
  }
  double BuildSeconds = BuildTimer.seconds();

  PipelineResult Result = runPipelineOnGraph(std::move(Global), Seed, Opts);
  Result.NumFiles = NumFiles;
  Result.BuildSeconds = BuildSeconds;
  return Result;
}

PipelineResult
seldon::infer::runPipelineOnGraph(PropagationGraph Graph,
                                  const spec::SeedSpec &Seed,
                                  const PipelineOptions &Opts) {
  PipelineResult Result;
  Result.Graph = std::move(Graph);
  Result.NumFiles = Result.Graph.files().size();

  Timer GenTimer;
  const PropagationGraph *LearnGraph = &Result.Graph;
  PropagationGraph Collapsed;
  if (Opts.CollapseForLearning) {
    Collapsed = Result.Graph.collapseByRep();
    LearnGraph = &Collapsed;
  }
  // Representation frequencies always come from the uncollapsed graph:
  // contraction collapses every representation to one occurrence, which
  // would starve the §4.3 frequency cutoff.
  Result.Reps.countOccurrences(Result.Graph);
  Result.System = constraints::generateConstraints(*LearnGraph, Result.Reps,
                                                   Seed, Opts.Gen);
  Result.GenSeconds = GenTimer.seconds();

  Timer SolveTimer;
  solver::Objective Obj = Result.System.makeObjective(Opts.Lambda);
  std::vector<double> X0 = Obj.initialPoint();
  if (Opts.WarmStart) {
    // Seed each variable with the previous run's score for its
    // (representation, role); new variables start at zero.
    const constraints::VarTable &Vars = Result.System.Vars;
    for (uint32_t V = 0; V < Vars.numVars(); ++V) {
      const std::string &Rep = Result.Reps.repString(Vars.repOf(V));
      X0[V] = Opts.WarmStart->score(Rep, Vars.roleOf(V));
    }
    Obj.project(X0);
  }
  if (Opts.UseAdam) {
    solver::AdamOptimizer Optimizer(Opts.Solve);
    Result.Solve = Optimizer.minimize(Obj, std::move(X0));
  } else {
    solver::ProjectedGradient Optimizer(Opts.Solve);
    Result.Solve = Optimizer.minimize(Obj, std::move(X0));
  }
  Result.SolveSeconds = SolveTimer.seconds();

  // Read scores back: one entry per (representation, role) variable.
  const constraints::VarTable &Vars = Result.System.Vars;
  for (uint32_t V = 0; V < Vars.numVars(); ++V) {
    const std::string &Rep = Result.Reps.repString(Vars.repOf(V));
    Result.Learned.setScore(Rep, Vars.roleOf(V), Result.Solve.X[V]);
  }
  return Result;
}
