//===- tests/shard_pipeline_test.cpp - Incremental learning, differential -===//
//
// The incremental path's headline guarantee, tested differentially: a run
// that composes the constraint system from per-project shards (cold, warm,
// and mixed hit/miss) must produce a learned specification byte-identical
// to direct generation, serially and in parallel. Touching one project must
// rebuild exactly one shard; changing a generation knob or the seed must
// miss everywhere; warm-starting the solve must converge to the same
// learned roles; and an unusable shard directory must degrade to correct
// all-rebuild operation.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "infer/Pipeline.h"
#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace seldon;

namespace fs = std::filesystem;

namespace {

infer::PipelineOptions testOptions(unsigned Jobs) {
  infer::PipelineOptions Opts;
  Opts.Solve.MaxIterations = 200;
  Opts.Jobs = Jobs;
  return Opts;
}

infer::PipelineResult runOnce(const corpus::Corpus &Data,
                              infer::PipelineOptions Opts,
                              const std::string &ShardDir = "") {
  infer::Session S(std::move(Opts));
  if (!ShardDir.empty())
    S.enableShardCache(ShardDir);
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  return S.solve();
}

std::string specOf(const infer::PipelineResult &R) {
  return spec::writeLearnedSpec(R.Learned);
}

class ShardPipelineTest : public ::testing::TestWithParam<unsigned> {};

/// Cold (all shards extracted + stored), warm (all replayed), and mixed
/// runs all match the direct-generation reference bit for bit.
TEST_P(ShardPipelineTest, ComposedSystemIsByteIdenticalToDirect) {
  const unsigned Jobs = GetParam();
  corpus::Corpus Data = testutil::makeCorpus(6061, /*NumProjects=*/6);
  const size_t N = Data.Projects.size();
  infer::PipelineResult Direct = runOnce(Data, testOptions(Jobs));
  std::string Reference = specOf(Direct);

  std::string Dir = testutil::makeScratchDir("shard-diff");
  infer::PipelineResult Cold = runOnce(Data, testOptions(Jobs), Dir);
  EXPECT_TRUE(Cold.UsedShardCache);
  EXPECT_EQ(Cold.Incr.ShardsHit, 0u);
  EXPECT_EQ(Cold.Incr.ShardsRebuilt, N);
  EXPECT_EQ(Cold.Incr.ShardsStored, N);
  EXPECT_EQ(Cold.ShardCacheStats.Misses, N);
  EXPECT_GT(Cold.ShardCacheStats.BytesWritten, 0u);
  EXPECT_EQ(specOf(Cold), Reference);

  infer::PipelineResult Warm = runOnce(Data, testOptions(Jobs), Dir);
  EXPECT_EQ(Warm.Incr.ShardsHit, N);
  EXPECT_EQ(Warm.Incr.ShardsRebuilt, 0u);
  EXPECT_GT(Warm.ShardCacheStats.BytesRead, 0u);
  EXPECT_EQ(specOf(Warm), Reference);

  // Not just the rendered spec: the composed system itself matches the
  // directly generated one, constraint by constraint, term by term.
  ASSERT_EQ(Warm.System.Vars.numVars(), Direct.System.Vars.numVars());
  for (uint32_t V = 0; V < Direct.System.Vars.numVars(); ++V) {
    EXPECT_EQ(Warm.System.Vars.repOf(V), Direct.System.Vars.repOf(V));
    EXPECT_EQ(Warm.System.Vars.roleOf(V), Direct.System.Vars.roleOf(V));
  }
  ASSERT_EQ(Warm.System.Constraints.size(),
            Direct.System.Constraints.size());
  for (size_t I = 0; I < Direct.System.Constraints.size(); ++I) {
    const solver::LinearConstraint &A = Direct.System.Constraints[I];
    const solver::LinearConstraint &B = Warm.System.Constraints[I];
    ASSERT_EQ(A.Lhs.size(), B.Lhs.size()) << "constraint " << I;
    ASSERT_EQ(A.Rhs.size(), B.Rhs.size()) << "constraint " << I;
    for (size_t T = 0; T < A.Lhs.size(); ++T) {
      EXPECT_EQ(A.Lhs[T].Var, B.Lhs[T].Var);
      EXPECT_EQ(A.Lhs[T].Coef, B.Lhs[T].Coef);
    }
    for (size_t T = 0; T < A.Rhs.size(); ++T) {
      EXPECT_EQ(A.Rhs[T].Var, B.Rhs[T].Var);
      EXPECT_EQ(A.Rhs[T].Coef, B.Rhs[T].Coef);
    }
  }
  EXPECT_EQ(Warm.System.Pinned, Direct.System.Pinned);
  EXPECT_EQ(Warm.System.NumCandidates, Direct.System.NumCandidates);
  EXPECT_EQ(Warm.System.AvgBackoffOptions, Direct.System.AvgBackoffOptions);

  // Mixed: delete half the shard entries; exactly those projects
  // re-extract, the rest replay.
  size_t Deleted = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (Deleted * 2 >= N)
      break;
    fs::remove(E.path());
    ++Deleted;
  }
  ASSERT_GT(Deleted, 0u);
  infer::PipelineResult Mixed = runOnce(Data, testOptions(Jobs), Dir);
  EXPECT_EQ(Mixed.Incr.ShardsHit, N - Deleted);
  EXPECT_EQ(Mixed.Incr.ShardsRebuilt, Deleted);
  EXPECT_EQ(specOf(Mixed), Reference);
  fs::remove_all(Dir);
}

/// A warm composed run matches the serial warm composed run bit for bit —
/// determinism does not depend on which runs were cached.
TEST_P(ShardPipelineTest, WarmComposedRunMatchesSerial) {
  const unsigned Jobs = GetParam();
  corpus::Corpus Data = testutil::makeCorpus(7207, /*NumProjects=*/6);
  std::string Dir = testutil::makeScratchDir("shard-jobs");
  runOnce(Data, testOptions(Jobs), Dir); // populate

  infer::PipelineResult Serial = runOnce(Data, testOptions(1), Dir);
  infer::PipelineResult Parallel = runOnce(Data, testOptions(Jobs), Dir);
  EXPECT_EQ(Serial.Incr.ShardsHit, Data.Projects.size());
  EXPECT_EQ(Parallel.Incr.ShardsHit, Data.Projects.size());
  EXPECT_EQ(specOf(Serial), specOf(Parallel));
  ASSERT_EQ(Serial.Solve.X.size(), Parallel.Solve.X.size());
  for (size_t I = 0; I < Serial.Solve.X.size(); ++I)
    EXPECT_EQ(Serial.Solve.X[I], Parallel.Solve.X[I]) << "var " << I;
  fs::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(Jobs, ShardPipelineTest, ::testing::Values(1u, 4u));

/// Editing one project's source changes its graph key, hence its shard
/// key: exactly one shard re-extracts, and the result equals a fresh
/// uncached run over the edited corpus.
TEST(ShardStalenessTest, TouchedProjectRebuildsExactlyOneShard) {
  corpus::Corpus Data = testutil::makeCorpus(1818, /*NumProjects=*/5);
  std::string Dir = testutil::makeScratchDir("shard-stale");
  infer::PipelineResult Cold = runOnce(Data, testOptions(2), Dir);
  EXPECT_EQ(Cold.Incr.ShardsRebuilt, Data.Projects.size());

  Data.Projects.front().addModule(
      "app/extra.py", "import flask\n"
                      "def extra():\n"
                      "    v = flask.request.args.get('x')\n"
                      "    flask.render_template('t.html', value=v)\n");

  infer::PipelineResult Incr = runOnce(Data, testOptions(2), Dir);
  EXPECT_EQ(Incr.Incr.ShardsHit, Data.Projects.size() - 1);
  EXPECT_EQ(Incr.Incr.ShardsRebuilt, 1u);
  EXPECT_EQ(specOf(Incr), specOf(runOnce(Data, testOptions(2))));
  fs::remove_all(Dir);
}

/// The shard key covers the generation options and the seed: changing
/// either misses everywhere instead of replaying stale structure.
TEST(ShardKeyTest, GenOptionOrSeedChangeMissesEverywhere) {
  corpus::Corpus Data = testutil::makeCorpus(2727, /*NumProjects=*/4);
  std::string Dir = testutil::makeScratchDir("shard-key");
  runOnce(Data, testOptions(2), Dir); // populate

  infer::PipelineOptions Tweaked = testOptions(2);
  Tweaked.Gen.RepCutoff += 1;
  infer::PipelineResult R1 = runOnce(Data, Tweaked, Dir);
  EXPECT_EQ(R1.Incr.ShardsHit, 0u);
  EXPECT_EQ(R1.Incr.ShardsRebuilt, Data.Projects.size());

  Data.Seed.Spec.add("extra.fake()", spec::Role::Sink);
  infer::PipelineResult R2 = runOnce(Data, testOptions(2), Dir);
  EXPECT_EQ(R2.Incr.ShardsHit, 0u);
  fs::remove_all(Dir);
}

/// Warm-starting from the previous learned spec converges to the same
/// learned roles (at the paper's 0.1 threshold) as the cold solve.
TEST(ShardWarmStartTest, WarmStartConvergesToSameRoles) {
  corpus::Corpus Data = testutil::makeCorpus(3434, /*NumProjects=*/6);
  infer::PipelineResult Cold = runOnce(Data, testOptions(2));
  EXPECT_FALSE(Cold.Incr.WarmStarted);

  infer::PipelineOptions Opts = testOptions(2);
  Opts.WarmStart = &Cold.Learned;
  infer::PipelineResult Warm = runOnce(Data, Opts);
  EXPECT_TRUE(Warm.Incr.WarmStarted);

  spec::TaintSpec ColdRoles = Cold.Learned.toSpec(0.1);
  spec::TaintSpec WarmRoles = Warm.Learned.toSpec(0.1);
  for (spec::Role R : {spec::Role::Source, spec::Role::Sanitizer,
                       spec::Role::Sink})
    EXPECT_EQ(ColdRoles.sortedReps(R), WarmRoles.sortedReps(R));

  // Restarting at (a projection of) the solution is cheap: the warm solve
  // must not take more iterations than the cold one did.
  EXPECT_LE(Warm.Solve.Iterations, Cold.Solve.Iterations);
}

/// Disabling the warm start restores the exact cold trajectory even when
/// the system was composed from cached shards.
TEST(ShardWarmStartTest, ColdInitOnComposedSystemIsByteIdentical) {
  corpus::Corpus Data = testutil::makeCorpus(4545, /*NumProjects=*/5);
  std::string Reference = specOf(runOnce(Data, testOptions(2)));
  std::string Dir = testutil::makeScratchDir("shard-coldinit");
  runOnce(Data, testOptions(2), Dir); // populate
  infer::PipelineResult Replayed = runOnce(Data, testOptions(2), Dir);
  EXPECT_EQ(Replayed.Incr.ShardsHit, Data.Projects.size());
  EXPECT_FALSE(Replayed.Incr.WarmStarted);
  EXPECT_EQ(specOf(Replayed), Reference);
  fs::remove_all(Dir);
}

/// Vertex contraction crosses project boundaries, so the composed path
/// must bow out: the run falls back to direct generation and reports the
/// shard cache as unused.
TEST(ShardFallbackTest, CollapsedLearningBypassesShards) {
  corpus::Corpus Data = testutil::makeCorpus(5656, /*NumProjects=*/4);
  infer::PipelineOptions Opts = testOptions(2);
  Opts.CollapseForLearning = true;
  std::string Reference = specOf(runOnce(Data, Opts));

  std::string Dir = testutil::makeScratchDir("shard-collapse");
  infer::PipelineResult R = runOnce(Data, Opts, Dir);
  EXPECT_FALSE(R.UsedShardCache);
  EXPECT_EQ(R.Incr.ShardsHit + R.Incr.ShardsRebuilt, 0u);
  EXPECT_EQ(specOf(R), Reference);
  fs::remove_all(Dir);
}

/// An adopted graph has no per-project slices to shard by.
TEST(ShardFallbackTest, AdoptedGraphBypassesShards) {
  corpus::Corpus Data = testutil::makeCorpus(5657, /*NumProjects=*/4);
  std::string Dir = testutil::makeScratchDir("shard-adopt");
  infer::Session S(testOptions(2));
  S.enableShardCache(Dir);
  S.adoptGraph(testutil::buildGlobalGraph(Data));
  S.generateConstraints(Data.Seed);
  infer::PipelineResult R = S.solve();
  EXPECT_FALSE(R.UsedShardCache);
  EXPECT_EQ(specOf(R), specOf(runOnce(Data, testOptions(2))));
  fs::remove_all(Dir);
}

/// An unusable shard directory (the path names a file) degrades to
/// correct all-rebuild operation instead of failing the pipeline.
TEST(ShardDegradedTest, UnusableDirectoryStillProducesCorrectSpecs) {
  corpus::Corpus Data = testutil::makeCorpus(6767, /*NumProjects=*/4);
  std::string Reference = specOf(runOnce(Data, testOptions(2)));

  std::string Bogus = testutil::makeScratchDir("shard-degraded") + "/file";
  {
    std::ofstream Out(Bogus);
    Out << "not a directory\n";
  }
  infer::Session S(testOptions(2));
  S.enableShardCache(Bogus);
  ASSERT_NE(S.shardCache(), nullptr);
  EXPECT_FALSE(S.shardCache()->valid());
  EXPECT_FALSE(S.shardCache()->error().empty());
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  infer::PipelineResult R = S.solve();
  EXPECT_TRUE(R.UsedShardCache);
  EXPECT_EQ(R.Incr.ShardsHit, 0u);
  EXPECT_EQ(R.Incr.ShardsRebuilt, Data.Projects.size());
  EXPECT_EQ(R.Incr.ShardsStored, 0u);
  EXPECT_EQ(specOf(R), Reference);
}

/// Both caches together: a fully warm run replays the graphs *and* the
/// shards and still matches the uncached reference.
TEST(ShardPipelineComboTest, GraphAndShardCachesComposeCorrectly) {
  corpus::Corpus Data = testutil::makeCorpus(7878, /*NumProjects=*/5);
  std::string Reference = specOf(runOnce(Data, testOptions(4)));
  std::string Dir = testutil::makeScratchDir("shard-combo");

  auto runBoth = [&]() {
    infer::Session S(testOptions(4));
    S.enableCache(Dir);
    S.enableShardCache(Dir);
    S.addProjects(Data.Projects);
    S.generateConstraints(Data.Seed);
    return S.solve();
  };
  infer::PipelineResult Cold = runBoth();
  EXPECT_EQ(Cold.Cache.Misses, Data.Projects.size());
  EXPECT_EQ(Cold.Incr.ShardsRebuilt, Data.Projects.size());
  EXPECT_EQ(specOf(Cold), Reference);

  infer::PipelineResult Warm = runBoth();
  EXPECT_EQ(Warm.Cache.Hits, Data.Projects.size());
  EXPECT_EQ(Warm.Incr.ShardsHit, Data.Projects.size());
  EXPECT_EQ(specOf(Warm), Reference);
  fs::remove_all(Dir);
}

} // namespace
