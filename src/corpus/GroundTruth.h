//===- corpus/GroundTruth.h - Oracle for generated corpora -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ground-truth oracle of the synthetic corpus: which representations
/// truly are sources, sanitizers, and sinks. The paper estimates precision
/// by manually inspecting 50 samples per role (§7.3); our generator knows
/// the truth exactly, so the evaluation can compute both the sampled and
/// the exact precision.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CORPUS_GROUNDTRUTH_H
#define SELDON_CORPUS_GROUNDTRUTH_H

#include "propgraph/Event.h"

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace corpus {

using propgraph::Role;
using propgraph::RoleMask;

/// Representation -> true roles (and vulnerability class).
class GroundTruth {
public:
  /// Registers \p Rep as truly holding the roles of \p Mask.
  void add(const std::string &Rep, RoleMask Mask,
           std::string VulnClass = std::string());

  /// True roles of \p Rep (0 when unknown/no role).
  RoleMask rolesOf(const std::string &Rep) const;

  /// True if \p Rep truly holds \p R.
  bool isTrue(const std::string &Rep, Role R) const;

  /// True if any of \p RepOptions truly holds \p R (events carry several
  /// backoff representations).
  bool anyTrue(const std::vector<std::string> &RepOptions, Role R) const;

  /// Vulnerability class of \p Rep ("xss", "sqli", ...; empty if none).
  const std::string &vulnClassOf(const std::string &Rep) const;

  /// Every representation truly holding \p R, sorted lexicographically.
  /// Derived lazily — one pass over the entries fills all three role
  /// lists — and memoized until the next add(), so oracle/recall loops
  /// stop paying O(corpus) per query. Not thread-safe with concurrent
  /// first calls (fill the memo once before fanning out readers).
  const std::vector<std::string> &repsWithRole(Role R) const;

  /// Count of representations truly holding \p R (same memo).
  size_t countWithRole(Role R) const { return repsWithRole(R).size(); }

  /// How many times the role lists were derived from scratch — the
  /// regression hook: any number of repsWithRole()/countWithRole() calls
  /// on an unmodified corpus must keep this at one.
  size_t derivations() const { return Derivations; }

  size_t size() const { return Entries.size(); }

private:
  struct Entry {
    RoleMask Mask = 0;
    std::string VulnClass;
  };
  std::unordered_map<std::string, Entry> Entries;
  mutable std::array<std::vector<std::string>, propgraph::NumRoles> ByRole;
  mutable bool ByRoleValid = false;
  mutable size_t Derivations = 0;
  static const std::string Empty;
};

} // namespace corpus
} // namespace seldon

#endif // SELDON_CORPUS_GROUNDTRUTH_H
