//===- solver/ProjectedGradient.cpp - Plain projected subgradient ---------===//

#include "solver/ProjectedGradient.h"

#include "solver/CompiledObjective.h"
#include "solver/NumericGuard.h"
#include "solver/SimdObjective.h"
#include "solver/SolveTelemetry.h"
#include "support/Timer.h"

#include <cmath>

using namespace seldon;
using namespace seldon::solver;

template <class ObjT>
SolveResult ProjectedGradient::minimize(const ObjT &Obj) const {
  // Same contract as AdamOptimizer: a size-mismatched warm-start point is
  // ignored in favor of the exact cold start.
  if (!Options.WarmStart.empty() &&
      Options.WarmStart.size() == Obj.numVars())
    return minimize(Obj, Options.WarmStart);
  return minimize(Obj, Obj.initialPoint());
}

template <class ObjT>
SolveResult ProjectedGradient::minimize(const ObjT &Obj,
                                        std::vector<double> X0) const {
  SolveResult Result;
  Result.X = std::move(X0);
  Obj.project(Result.X);

  std::vector<double> Grad;
  SolveTelemetry Telemetry;
  Timer Budget;
  // The fused call at the start of each step doubles as the value check of
  // the previous one: a single constraint sweep per iteration.
  double Value = guardedEval(Obj, Result.X, Grad, 0);
  std::vector<double> Best = Result.X;
  double BestValue = Value;
  double PrevValue = Value;
  // 1.0 on a healthy run (1.0 * Step is bit-exact); halved per recovery.
  double StepScale = 1.0;

  // Non-finite recovery ladder (same discipline as AdamOptimizer, minus
  // the moment reset — plain subgradient descent carries no momentum):
  // revert to the best finite iterate, halve the step scale, re-evaluate.
  auto Recover = [&](int Iter) -> bool {
    ++Result.NonFiniteSteps;
    if (!std::isfinite(BestValue)) {
      BestValue = std::numeric_limits<double>::infinity();
      PrevValue = BestValue; // Never spuriously "converge" onto a NaN.
    }
    while (Result.Recoveries < Options.MaxRecoveries) {
      ++Result.Recoveries;
      Result.X = Best;
      StepScale *= 0.5;
      double Revived = guardedEval(Obj, Result.X, Grad, Iter);
      if (allFinite(Revived, Grad)) {
        PrevValue = Revived;
        return true;
      }
      ++Result.NonFiniteSteps;
    }
    Result.FellBack = true;
    return false;
  };

  if (!allFinite(Value, Grad) && !Recover(0)) {
    Result.FinalObjective = 0.0; // Projected start; nothing finite seen.
    return Result;
  }

  for (int Iter = 1; Iter <= Options.MaxIterations; ++Iter) {
    if ((Options.ShouldStop && Options.ShouldStop()) ||
        (Options.BudgetSeconds > 0 &&
         Budget.seconds() >= Options.BudgetSeconds)) {
      Result.DeadlineExpired = true;
      break;
    }
    double Step = StepScale * (Options.LearningRate /
                               std::sqrt(static_cast<double>(Iter)));
    for (size_t I = 0; I < Grad.size(); ++I)
      Result.X[I] -= Step * Grad[I];
    Obj.project(Result.X);

    double Current = guardedEval(Obj, Result.X, Grad, Iter);
    Result.Iterations = Iter;
    if (!allFinite(Current, Grad)) {
      // Roll back before any telemetry or callback sees the poisoned
      // evaluation; a recovered iteration resumes from the best iterate.
      if (!Recover(Iter))
        break;
      continue;
    }
    // Subgradient steps are not monotone; track the best iterate.
    if (Current < BestValue) {
      BestValue = Current;
      Best = Result.X;
      Telemetry.onBestUpdate();
    }
    Telemetry.onIteration(Iter, Current, Grad);
    if (Options.OnIteration)
      Options.OnIteration(Iter, Current);
    if (std::abs(PrevValue - Current) < Options.Tolerance) {
      Result.Converged = true;
      break;
    }
    PrevValue = Current;
  }
  Result.X = std::move(Best);
  Result.FinalObjective = BestValue;
  if (!std::isfinite(Result.FinalObjective))
    Result.FinalObjective = 0.0; // Nothing finite past the start (FellBack).
  return Result;
}

namespace seldon {
namespace solver {

template SolveResult ProjectedGradient::minimize<Objective>(const Objective &)
    const;
template SolveResult
ProjectedGradient::minimize<Objective>(const Objective &,
                                       std::vector<double>) const;
template SolveResult ProjectedGradient::minimize<CompiledObjective>(
    const CompiledObjective &) const;
template SolveResult
ProjectedGradient::minimize<CompiledObjective>(const CompiledObjective &,
                                               std::vector<double>) const;
template SolveResult
ProjectedGradient::minimize<SimdObjective>(const SimdObjective &) const;
template SolveResult
ProjectedGradient::minimize<SimdObjective>(const SimdObjective &,
                                           std::vector<double>) const;

} // namespace solver
} // namespace seldon
