//===- bench/table4_merlin_top5.cpp - Paper Tab. 4 ------------------------===//
//
// Regenerates Table 4: precision of Merlin's top-5 predictions per role on
// the small application, collapsed and uncollapsed.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "merlin/MerlinPipeline.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using namespace seldon::merlin;
using propgraph::Role;

int main() {
  corpus::ApiUniverse Universe = corpus::ApiUniverse::standard();
  spec::SeedSpec Seed = Universe.seedSpec();
  corpus::GroundTruth Truth = Universe.groundTruth();
  pysem::Project Small =
      corpus::generateSingleProject(Universe, 11, 3, 6, "flask_api_like");
  propgraph::PropagationGraph Graph = propgraph::buildProjectGraph(Small);

  std::cout << "=== Table 4: Results for Merlin on the small app, top-5 "
               "predictions ===\n\n";
  TablePrinter Table(
      {"Role", "Collapsed: Number", "Collapsed: Precision",
       "Uncollapsed: Number", "Uncollapsed: Precision"});

  MerlinOptions CollapsedOpts, UncollapsedOpts;
  CollapsedOpts.Collapsed = true;
  UncollapsedOpts.Collapsed = false;
  MerlinResult RC = runMerlin(Graph, Seed, CollapsedOpts);
  MerlinResult RU = runMerlin(Graph, Seed, UncollapsedOpts);

  size_t AnyC = 0, AnyCCorrect = 0, AnyU = 0, AnyUCorrect = 0;
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
    RolePrecision PC = topKPrecision(RC.Learned, Truth, Seed, R, 5);
    RolePrecision PU = topKPrecision(RU.Learned, Truth, Seed, R, 5);
    AnyC += PC.Predicted;
    AnyCCorrect += PC.Correct;
    AnyU += PU.Predicted;
    AnyUCorrect += PU.Correct;
    std::string Name = propgraph::roleName(R);
    Name[0] = static_cast<char>(std::toupper(Name[0]));
    Table.addRow({Name + "s", std::to_string(PC.Predicted),
                  PC.Predicted ? percent(PC.precision()) : "n/a",
                  std::to_string(PU.Predicted),
                  PU.Predicted ? percent(PU.precision()) : "n/a"});
  }
  Table.addRow({"Any", std::to_string(AnyC),
                AnyC ? percent(static_cast<double>(AnyCCorrect) / AnyC)
                     : "n/a",
                std::to_string(AnyU),
                AnyU ? percent(static_cast<double>(AnyUCorrect) / AnyU)
                     : "n/a"});
  Table.print(std::cout);

  std::cout << "\nPaper reference: top-5 precision 40/20/0% collapsed and "
               "20/40/0% uncollapsed\n(20% overall in both modes).\n";
  return 0;
}
