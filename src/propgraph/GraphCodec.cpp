//===- propgraph/GraphCodec.cpp - Binary graph serialization --------------===//

#include "propgraph/GraphCodec.h"

#include "support/StrUtil.h"

#include <cstring>

using namespace seldon;
using namespace seldon::propgraph;

uint64_t seldon::propgraph::fnv1a64(std::string_view Bytes, uint64_t Seed) {
  uint64_t Hash = Seed;
  for (unsigned char C : Bytes) {
    Hash ^= C;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

namespace {

constexpr char Magic[4] = {'S', 'P', 'G', 'C'};

void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<char>(Value | 0x80));
    Value >>= 7;
  }
  Out.push_back(static_cast<char>(Value));
}

void putString(std::string &Out, std::string_view Text) {
  putVarint(Out, Text.size());
  Out.append(Text);
}

void putFixed64(std::string &Out, uint64_t Value) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<char>((Value >> Shift) & 0xff));
}

/// Strict forward-only reader over the encoded bytes. Every getter either
/// succeeds or records a descriptive error (with the current offset) and
/// makes all further reads fail, so decode logic can chain reads and check
/// once per section.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes) : Bytes(Bytes) {}

  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }
  size_t offset() const { return Pos; }
  size_t remaining() const { return Bytes.size() - Pos; }

  void fail(const std::string &What) {
    if (Error.empty())
      Error = formatString("%s at byte %zu", What.c_str(), Pos);
  }

  uint64_t getVarint(const char *What) {
    uint64_t Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Bytes.size()) {
        fail(formatString("truncated input reading %s", What));
        return 0;
      }
      unsigned char Byte = static_cast<unsigned char>(Bytes[Pos++]);
      Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if ((Byte & 0x80) == 0)
        return Value;
    }
    fail(formatString("varint overflow reading %s", What));
    return 0;
  }

  uint8_t getByte(const char *What) {
    if (Pos >= Bytes.size()) {
      fail(formatString("truncated input reading %s", What));
      return 0;
    }
    return static_cast<uint8_t>(Bytes[Pos++]);
  }

  uint64_t getFixed64(const char *What) {
    if (remaining() < 8) {
      fail(formatString("truncated input reading %s", What));
      return 0;
    }
    uint64_t Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 8)
      Value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(Bytes[Pos++]))
               << Shift;
    return Value;
  }

  std::string_view getString(const char *What) {
    uint64_t Len = getVarint(What);
    if (!ok())
      return {};
    if (Len > remaining()) {
      fail(formatString("truncated input reading %s (need %llu bytes, "
                        "have %zu)",
                        What, static_cast<unsigned long long>(Len),
                        remaining()));
      return {};
    }
    std::string_view Out = Bytes.substr(Pos, Len);
    Pos += Len;
    return Out;
  }

private:
  std::string_view Bytes;
  size_t Pos = 0;
  std::string Error;
};

std::string encodePayload(const PropagationGraph &Graph) {
  std::string Payload;
  putVarint(Payload, Graph.files().size());
  for (const std::string &File : Graph.files())
    putString(Payload, File);

  putVarint(Payload, Graph.numEvents());
  for (const Event &E : Graph.events()) {
    Payload.push_back(static_cast<char>(E.Kind));
    Payload.push_back(static_cast<char>(E.Candidates));
    putVarint(Payload, E.FileIdx);
    putVarint(Payload, E.Loc.Line);
    putVarint(Payload, E.Loc.Col);
    putVarint(Payload, E.Reps.size());
    for (const std::string &Rep : E.Reps)
      putString(Payload, Rep);
  }

  putVarint(Payload, Graph.numEdges());
  for (EventId From = 0; From < Graph.numEvents(); ++From)
    for (EventId To : Graph.successors(From)) {
      putVarint(Payload, From);
      putVarint(Payload, To);
    }
  return Payload;
}

} // namespace

std::string seldon::propgraph::encodeGraph(const PropagationGraph &Graph) {
  std::string Payload = encodePayload(Graph);
  std::string Out;
  Out.reserve(Payload.size() + 24);
  Out.append(Magic, sizeof(Magic));
  putVarint(Out, GraphCodecVersion);
  putFixed64(Out, fnv1a64(Payload));
  putVarint(Out, Payload.size());
  Out += Payload;
  return Out;
}

io::IOResult<PropagationGraph>
seldon::propgraph::decodeGraph(std::string_view Bytes) {
  using Result = io::IOResult<PropagationGraph>;
  ByteReader Reader(Bytes);

  if (Bytes.size() < sizeof(Magic))
    return Result::failure(formatString(
        "truncated graph header: %zu byte(s), need at least %zu",
        Bytes.size(), sizeof(Magic)));
  if (std::memcmp(Bytes.data(), Magic, sizeof(Magic)) != 0)
    return Result::failure(
        "bad magic: not a serialized propagation graph");
  for (size_t I = 0; I < sizeof(Magic); ++I)
    Reader.getByte("magic");

  uint64_t Version = Reader.getVarint("format version");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (Version != GraphCodecVersion)
    return Result::failure(formatString(
        "unsupported graph format version %llu (this build reads "
        "version %u)",
        static_cast<unsigned long long>(Version), GraphCodecVersion));

  uint64_t StoredChecksum = Reader.getFixed64("payload checksum");
  uint64_t PayloadLen = Reader.getVarint("payload length");
  if (!Reader.ok())
    return Result::failure(Reader.error());
  if (PayloadLen != Reader.remaining())
    return Result::failure(formatString(
        "payload size mismatch: header declares %llu byte(s), %zu "
        "follow (%s)",
        static_cast<unsigned long long>(PayloadLen), Reader.remaining(),
        PayloadLen > Reader.remaining() ? "truncated entry"
                                        : "trailing garbage"));
  uint64_t ActualChecksum = fnv1a64(Bytes.substr(Reader.offset()));
  if (ActualChecksum != StoredChecksum)
    return Result::failure(formatString(
        "payload checksum mismatch: stored %016llx, computed %016llx "
        "(corrupt entry)",
        static_cast<unsigned long long>(StoredChecksum),
        static_cast<unsigned long long>(ActualChecksum)));

  // The payload is integrity-checked now; remaining failures are
  // structural (a corrupt encoder or version-1 layout drift) and still
  // reported descriptively rather than trusted.
  PropagationGraph Graph;

  uint64_t NumFiles = Reader.getVarint("file count");
  for (uint64_t I = 0; Reader.ok() && I < NumFiles; ++I) {
    std::string_view Path = Reader.getString("file path");
    if (Reader.ok())
      Graph.addFile(std::string(Path));
  }

  uint64_t NumEvents = Reader.getVarint("event count");
  for (uint64_t I = 0; Reader.ok() && I < NumEvents; ++I) {
    Event E;
    uint8_t Kind = Reader.getByte("event kind");
    uint8_t Candidates = Reader.getByte("candidate mask");
    uint64_t FileIdx = Reader.getVarint("event file index");
    uint64_t Line = Reader.getVarint("event line");
    uint64_t Col = Reader.getVarint("event column");
    uint64_t NumReps = Reader.getVarint("representation count");
    if (!Reader.ok())
      break;
    if (Kind > static_cast<uint8_t>(EventKind::CallArgument)) {
      Reader.fail(formatString("invalid event kind %u", Kind));
      break;
    }
    if (Candidates > AllRolesMask) {
      Reader.fail(formatString("invalid candidate mask %u", Candidates));
      break;
    }
    if (FileIdx >= Graph.files().size()) {
      Reader.fail(formatString(
          "event file index %llu out of range (%zu file(s))",
          static_cast<unsigned long long>(FileIdx),
          Graph.files().size()));
      break;
    }
    if (NumReps == 0) {
      Reader.fail("event with no representations");
      break;
    }
    E.Kind = static_cast<EventKind>(Kind);
    E.Candidates = static_cast<RoleMask>(Candidates);
    E.FileIdx = static_cast<uint32_t>(FileIdx);
    E.Loc.Line = static_cast<uint32_t>(Line);
    E.Loc.Col = static_cast<uint32_t>(Col);
    E.Reps.reserve(NumReps);
    for (uint64_t R = 0; Reader.ok() && R < NumReps; ++R) {
      std::string_view Rep = Reader.getString("representation");
      if (Reader.ok())
        E.Reps.emplace_back(Rep);
    }
    if (Reader.ok())
      Graph.addEvent(std::move(E));
  }

  uint64_t NumEdges = Reader.getVarint("edge count");
  for (uint64_t I = 0; Reader.ok() && I < NumEdges; ++I) {
    uint64_t From = Reader.getVarint("edge source");
    uint64_t To = Reader.getVarint("edge target");
    if (!Reader.ok())
      break;
    if (From >= Graph.numEvents() || To >= Graph.numEvents()) {
      Reader.fail(formatString(
          "edge %llu -> %llu out of range (%zu event(s))",
          static_cast<unsigned long long>(From),
          static_cast<unsigned long long>(To), Graph.numEvents()));
      break;
    }
    if (From == To) {
      Reader.fail(formatString("self-edge on event %llu",
                               static_cast<unsigned long long>(From)));
      break;
    }
    Graph.addEdge(static_cast<EventId>(From), static_cast<EventId>(To));
  }

  if (Reader.ok() && Reader.remaining() != 0)
    Reader.fail(formatString("%zu unconsumed payload byte(s)",
                             Reader.remaining()));
  if (!Reader.ok())
    return Result::failure(Reader.error());

  Result Out;
  Out.Value = std::move(Graph);
  return Out;
}
