//===- constraints/ConstraintGen.h - Fig. 4 constraint extraction -*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Instantiates the three information-flow constraint templates of paper
/// Fig. 4 over a (global) propagation graph via BFS (§4, "Algorithmic
/// Collection of Constraints"):
///
///   (a) san(v) + snk(v')  ≤  Σ src(u) over u flowing into v        + C
///       for every sanitizer candidate v reaching a sink candidate v'
///   (b) src(s) + san(v)   ≤  Σ snk(t) over t reachable from v      + C
///       for every source candidate s flowing into sanitizer candidate v
///   (c) src(s) + snk(t)   ≤  Σ san(m) over m between s and t       + C
///       for every source candidate s reaching a sink candidate t
///
/// Every variable occurrence is replaced by the average of the event's
/// surviving backoff options (§4.3), and seed labels pin the corresponding
/// fully-qualified variables (§4.1).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CONSTRAINTS_CONSTRAINTGEN_H
#define SELDON_CONSTRAINTS_CONSTRAINTGEN_H

#include "constraints/ConstraintSystem.h"
#include "propgraph/PropagationGraph.h"
#include "propgraph/RepTable.h"
#include "spec/SeedSpec.h"

#include <vector>

namespace seldon {

class Deadline;
class ThreadPool;

namespace constraints {

/// Generation knobs.
struct GenOptions {
  /// Implication slack constant (paper §4.2: C = 0.75; C = 1 is the exact
  /// boolean relaxation, used by the ablation bench).
  double C = 0.75;
  /// Representation frequency cutoff (§4.3: 5 occurrences).
  size_t RepCutoff = 5;
  /// Safety cap on (pair) constraints extracted per source/sanitizer
  /// anchor, guarding against pathological dense files.
  size_t MaxPairsPerAnchor = 4096;
};

/// Extracts the full constraint system from \p Graph.
///
/// \p Reps must already have counted occurrences over \p Graph.
/// Blacklisted representation options never receive variables; events
/// whose every option is blacklisted or infrequent are ignored (§4.3).
///
/// When \p Pool is non-null the expensive stages fan out over it: the
/// per-event backoff filtering (disjoint writes) and the per-file template
/// extraction, which is sharded by file into private constraint buffers.
/// Determinism is preserved by construction: variables are pre-created in
/// event order before any extraction runs, and the per-file buffers are
/// concatenated in file order, so the resulting system — ids, constraint
/// order, coefficients — is identical to the serial one. \p
/// ShardSecondsOut (may be null) receives per-worker extraction wall time.
///
/// \p StopAt (may be null) is polled at every per-file shard boundary.
/// Constraint generation is all-or-nothing — a partial system would change
/// the learned scores silently — so an expired deadline throws
/// DeadlineError rather than returning a truncated system.
ConstraintSystem generateConstraints(const propgraph::PropagationGraph &Graph,
                                     const propgraph::RepTable &Reps,
                                     const spec::SeedSpec &Seed,
                                     const GenOptions &Opts = GenOptions(),
                                     ThreadPool *Pool = nullptr,
                                     std::vector<double> *ShardSecondsOut =
                                         nullptr,
                                     const Deadline *StopAt = nullptr);

/// The pre-extraction scaffolding shared by generateConstraints and the
/// incremental composeConstraints (ConstraintShard.h): the per-event
/// surviving backoff options (frequency cutoff + blacklist), the candidate
/// statistics, and the seed pins — which intern the corpus's first
/// variables, so pins must be created before any constraint extraction
/// replays. Returns a system with no constraints yet.
ConstraintSystem prepareSystem(const propgraph::PropagationGraph &Graph,
                               const propgraph::RepTable &Reps,
                               const spec::SeedSpec &Seed,
                               const GenOptions &Opts = GenOptions(),
                               ThreadPool *Pool = nullptr);

} // namespace constraints
} // namespace seldon

#endif // SELDON_CONSTRAINTS_CONSTRAINTGEN_H
