//===- pyast/Token.cpp - Python token definitions -------------------------===//

#include "pyast/Token.h"

#include <unordered_map>

using namespace seldon;
using namespace seldon::pyast;

const char *seldon::pyast::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::EndOfFile: return "eof";
  case TokenKind::Newline: return "newline";
  case TokenKind::Indent: return "indent";
  case TokenKind::Dedent: return "dedent";
  case TokenKind::Name: return "name";
  case TokenKind::Number: return "number";
  case TokenKind::String: return "string";
  case TokenKind::KwAnd: return "and";
  case TokenKind::KwAs: return "as";
  case TokenKind::KwAssert: return "assert";
  case TokenKind::KwBreak: return "break";
  case TokenKind::KwClass: return "class";
  case TokenKind::KwContinue: return "continue";
  case TokenKind::KwDef: return "def";
  case TokenKind::KwDel: return "del";
  case TokenKind::KwElif: return "elif";
  case TokenKind::KwElse: return "else";
  case TokenKind::KwExcept: return "except";
  case TokenKind::KwFalse: return "False";
  case TokenKind::KwFinally: return "finally";
  case TokenKind::KwFor: return "for";
  case TokenKind::KwFrom: return "from";
  case TokenKind::KwGlobal: return "global";
  case TokenKind::KwIf: return "if";
  case TokenKind::KwImport: return "import";
  case TokenKind::KwIn: return "in";
  case TokenKind::KwIs: return "is";
  case TokenKind::KwLambda: return "lambda";
  case TokenKind::KwNone: return "None";
  case TokenKind::KwNonlocal: return "nonlocal";
  case TokenKind::KwNot: return "not";
  case TokenKind::KwOr: return "or";
  case TokenKind::KwPass: return "pass";
  case TokenKind::KwRaise: return "raise";
  case TokenKind::KwReturn: return "return";
  case TokenKind::KwTrue: return "True";
  case TokenKind::KwTry: return "try";
  case TokenKind::KwWhile: return "while";
  case TokenKind::KwWith: return "with";
  case TokenKind::KwYield: return "yield";
  case TokenKind::LParen: return "(";
  case TokenKind::RParen: return ")";
  case TokenKind::LBracket: return "[";
  case TokenKind::RBracket: return "]";
  case TokenKind::LBrace: return "{";
  case TokenKind::RBrace: return "}";
  case TokenKind::Comma: return ",";
  case TokenKind::Colon: return ":";
  case TokenKind::Semicolon: return ";";
  case TokenKind::Dot: return ".";
  case TokenKind::Arrow: return "->";
  case TokenKind::At: return "@";
  case TokenKind::Equal: return "=";
  case TokenKind::Walrus: return ":=";
  case TokenKind::Plus: return "+";
  case TokenKind::Minus: return "-";
  case TokenKind::Star: return "*";
  case TokenKind::DoubleStar: return "**";
  case TokenKind::Slash: return "/";
  case TokenKind::DoubleSlash: return "//";
  case TokenKind::Percent: return "%";
  case TokenKind::Amp: return "&";
  case TokenKind::Pipe: return "|";
  case TokenKind::Caret: return "^";
  case TokenKind::Tilde: return "~";
  case TokenKind::LShift: return "<<";
  case TokenKind::RShift: return ">>";
  case TokenKind::EqEq: return "==";
  case TokenKind::NotEq: return "!=";
  case TokenKind::Less: return "<";
  case TokenKind::LessEq: return "<=";
  case TokenKind::Greater: return ">";
  case TokenKind::GreaterEq: return ">=";
  case TokenKind::PlusEq: return "+=";
  case TokenKind::MinusEq: return "-=";
  case TokenKind::StarEq: return "*=";
  case TokenKind::SlashEq: return "/=";
  case TokenKind::DoubleSlashEq: return "//=";
  case TokenKind::PercentEq: return "%=";
  case TokenKind::DoubleStarEq: return "**=";
  case TokenKind::AmpEq: return "&=";
  case TokenKind::PipeEq: return "|=";
  case TokenKind::CaretEq: return "^=";
  case TokenKind::LShiftEq: return "<<=";
  case TokenKind::RShiftEq: return ">>=";
  case TokenKind::AtEq: return "@=";
  case TokenKind::Error: return "error";
  }
  return "unknown";
}

TokenKind seldon::pyast::classifyIdentifier(const std::string &Ident) {
  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"and", TokenKind::KwAnd},           {"as", TokenKind::KwAs},
      {"assert", TokenKind::KwAssert},     {"break", TokenKind::KwBreak},
      {"class", TokenKind::KwClass},       {"continue", TokenKind::KwContinue},
      {"def", TokenKind::KwDef},           {"del", TokenKind::KwDel},
      {"elif", TokenKind::KwElif},         {"else", TokenKind::KwElse},
      {"except", TokenKind::KwExcept},     {"False", TokenKind::KwFalse},
      {"finally", TokenKind::KwFinally},   {"for", TokenKind::KwFor},
      {"from", TokenKind::KwFrom},         {"global", TokenKind::KwGlobal},
      {"if", TokenKind::KwIf},             {"import", TokenKind::KwImport},
      {"in", TokenKind::KwIn},             {"is", TokenKind::KwIs},
      {"lambda", TokenKind::KwLambda},     {"None", TokenKind::KwNone},
      {"nonlocal", TokenKind::KwNonlocal}, {"not", TokenKind::KwNot},
      {"or", TokenKind::KwOr},             {"pass", TokenKind::KwPass},
      {"raise", TokenKind::KwRaise},       {"return", TokenKind::KwReturn},
      {"True", TokenKind::KwTrue},         {"try", TokenKind::KwTry},
      {"while", TokenKind::KwWhile},       {"with", TokenKind::KwWith},
      {"yield", TokenKind::KwYield},
  };
  auto It = Keywords.find(Ident);
  return It == Keywords.end() ? TokenKind::Name : It->second;
}
