file(REMOVE_RECURSE
  "CMakeFiles/ablation_crossmodule.dir/ablation_crossmodule.cpp.o"
  "CMakeFiles/ablation_crossmodule.dir/ablation_crossmodule.cpp.o.d"
  "ablation_crossmodule"
  "ablation_crossmodule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crossmodule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
