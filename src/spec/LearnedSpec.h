//===- spec/LearnedSpec.h - Scored, learned specifications -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Holds the per-(representation, role) confidence scores produced by the
/// optimizer and implements the role-selection procedure of §7.1: for an
/// event with backoff options (n_0, n_1, ...) ordered most to least
/// specific, role `r` is selected if `0.8^i * score(n_i, r) >= t` for some
/// option index i and threshold t (the paper uses t = 0.1).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SPEC_LEARNEDSPEC_H
#define SELDON_SPEC_LEARNEDSPEC_H

#include "spec/TaintSpec.h"

#include <array>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace spec {

/// Per-role confidence scores for one representation.
struct RoleScores {
  std::array<double, propgraph::NumRoles> Scores{0.0, 0.0, 0.0};

  double &operator[](Role R) { return Scores[static_cast<size_t>(R)]; }
  double operator[](Role R) const { return Scores[static_cast<size_t>(R)]; }
};

/// The learned specification: representation -> role scores.
class LearnedSpec {
public:
  /// Decay factor applied per backoff level during selection (§7.1).
  static constexpr double BackoffDecay = 0.8;

  void setScore(const std::string &Rep, Role R, double Score);
  double score(const std::string &Rep, Role R) const;
  bool hasRep(const std::string &Rep) const { return Scores.count(Rep) != 0; }

  /// §7.1 selection over an event's backoff options (most specific first):
  /// returns the decayed score of the first option that clears
  /// \p Threshold, or std::nullopt when no option does.
  std::optional<double>
  selectRole(const std::vector<std::string> &RepOptions, Role R,
             double Threshold) const;

  /// Materializes the plain per-representation spec: every representation
  /// whose own score for a role clears \p Threshold gets that role.
  TaintSpec toSpec(double Threshold) const;

  /// Number of representations whose score for \p R clears \p Threshold.
  size_t countAbove(Role R, double Threshold) const;

  /// (representation, score) pairs for role \p R with score > \p MinScore,
  /// sorted by descending score (ties broken lexicographically).
  std::vector<std::pair<std::string, double>>
  ranked(Role R, double MinScore = 0.0) const;

  const std::unordered_map<std::string, RoleScores> &all() const {
    return Scores;
  }
  size_t size() const { return Scores.size(); }

private:
  std::unordered_map<std::string, RoleScores> Scores;
};

} // namespace spec
} // namespace seldon

#endif // SELDON_SPEC_LEARNEDSPEC_H
