//===- eval/ReportClassifier.h - Tab. 6 report categories --------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classifies taint-analyzer reports into the categories of paper Tab. 6 —
/// what the authors determined by manually inspecting 25 sampled reports,
/// our oracle decides exactly:
///
///   * True vulnerabilities          — real, exploitable unsanitized flow;
///   * Vulnerable flow, but no bug   — flow real but not exploitable
///                                     (e.g. text/plain responses);
///   * Incorrect sink / source /     — the inferred specification
///     source and sink                 mislabeled an endpoint;
///   * Missing sanitizer             — the flow passes a true sanitizer the
///                                     specification does not know;
///   * Flows into wrong parameter    — tainted data enters a harmless
///                                     parameter of a real sink.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_EVAL_REPORTCLASSIFIER_H
#define SELDON_EVAL_REPORTCLASSIFIER_H

#include "corpus/CorpusGenerator.h"
#include "taint/TaintAnalyzer.h"

#include <array>
#include <cstdint>
#include <vector>

namespace seldon {
namespace eval {

/// Tab. 6 rows.
enum class ReportCategory : uint8_t {
  TrueVulnerability = 0,
  VulnerableNoBug,
  IncorrectSink,
  IncorrectSource,
  IncorrectSourceAndSink,
  MissingSanitizer,
  WrongParameter,
};

inline constexpr size_t NumReportCategories = 7;

/// The paper's row label for \p C.
const char *reportCategoryName(ReportCategory C);

/// Classifies one report against the oracle.
ReportCategory classifyReport(const propgraph::PropagationGraph &Graph,
                              const taint::Violation &Report,
                              const corpus::GroundTruth &Truth,
                              const std::vector<corpus::GeneratedFlow> &Flows);

/// Category counts over a set of reports.
struct ReportBreakdown {
  std::array<size_t, NumReportCategories> Counts{};
  size_t Total = 0;

  size_t count(ReportCategory C) const {
    return Counts[static_cast<size_t>(C)];
  }
  double fraction(ReportCategory C) const {
    return Total == 0 ? 0.0
                      : static_cast<double>(count(C)) /
                            static_cast<double>(Total);
  }
};

/// Classifies all \p Reports; when \p SampleSize > 0, classifies only a
/// uniform random sample of that size (the paper samples 25),
/// deterministic in \p SampleSeed.
ReportBreakdown
classifyReports(const propgraph::PropagationGraph &Graph,
                const std::vector<taint::Violation> &Reports,
                const corpus::GroundTruth &Truth,
                const std::vector<corpus::GeneratedFlow> &Flows,
                size_t SampleSize = 0, uint64_t SampleSeed = 1);

} // namespace eval
} // namespace seldon

#endif // SELDON_EVAL_REPORTCLASSIFIER_H
