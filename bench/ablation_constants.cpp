//===- bench/ablation_constants.cpp - §4.2/§4.4 constant ablations --------===//
//
// Sensitivity of the paper's two constants on the same corpus:
//
//  * the implication slack C (§4.2): the paper moved from the exact
//    boolean relaxation C = 1 to C = 0.75 because it separates scores
//    better ("for C = 1, most scores are quite close to 0");
//  * the L1 regularizer λ (§4.4): the paper observed that dividing λ by 10
//    roughly doubles the number of inferred specifications.
//
// Also compares projected Adam with plain projected subgradient descent
// (the optimizer swap ablation).
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>

using namespace seldon;
using namespace seldon::eval;
using propgraph::Role;

namespace {

struct Outcome {
  size_t Predicted = 0;
  size_t Correct = 0;
  double MeanScore = 0.0;
};

Outcome evaluate(const infer::PipelineResult &R, const corpus::Corpus &Data) {
  Outcome Out;
  double ScoreSum = 0.0;
  for (Role Ro : {Role::Source, Role::Sanitizer, Role::Sink})
    for (const ScoredPrediction &P : predictionsAbove(
             R.Learned, Data.Truth, Data.Seed, Ro, ScoreThreshold)) {
      ++Out.Predicted;
      Out.Correct += P.Correct;
      ScoreSum += P.Score;
    }
  Out.MeanScore = Out.Predicted ? ScoreSum / Out.Predicted : 0.0;
  return Out;
}

void addRow(TablePrinter &Table, const std::string &Config,
            const Outcome &O) {
  Table.addRow({Config, std::to_string(O.Predicted),
                std::to_string(O.Correct),
                O.Predicted ? percent(static_cast<double>(O.Correct) /
                                      O.Predicted)
                            : "n/a",
                formatString("%.3f", O.MeanScore)});
}

} // namespace

int main() {
  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  std::cout << "=== Ablation: slack constant C (paper default 0.75) ===\n\n";
  {
    TablePrinter Table({"C", "# Predicted", "# Correct", "Precision",
                        "Mean score"});
    for (double C : {0.5, 0.75, 1.0}) {
      infer::PipelineOptions Opts = standardPipelineOptions();
      Opts.Gen.C = C;
      infer::Session S(Opts);
      S.addProjects(Data.Projects);
      S.generateConstraints(Data.Seed);
      infer::PipelineResult R = S.solve();
      addRow(Table, formatString("%.2f", C), evaluate(R, Data));
    }
    Table.print(std::cout);
    std::cout << "\nExpected shape: C = 1 depresses scores toward 0 and "
                 "predicts less; C = 0.75\nseparates roles (paper §4.2).\n";
  }

  std::cout << "\n=== Ablation: regularization λ (paper default 0.1) "
               "===\n\n";
  {
    TablePrinter Table({"lambda", "# Predicted", "# Correct", "Precision",
                        "Mean score"});
    for (double Lambda : {0.01, 0.1, 1.0}) {
      infer::PipelineOptions Opts = standardPipelineOptions();
      Opts.Lambda = Lambda;
      infer::Session S(Opts);
      S.addProjects(Data.Projects);
      S.generateConstraints(Data.Seed);
      infer::PipelineResult R = S.solve();
      addRow(Table, formatString("%.2f", Lambda), evaluate(R, Data));
    }
    Table.print(std::cout);
    std::cout << "\nExpected shape: smaller λ inflates the number of "
                 "inferred specifications\n(paper: 10x smaller λ ≈ 2x the "
                 "specifications); λ = 1 suppresses learning.\n";
  }

  std::cout << "\n=== Ablation: optimizer (projected Adam vs plain PGD) "
               "===\n\n";
  {
    TablePrinter Table({"Optimizer", "# Predicted", "# Correct", "Precision",
                        "Mean score"});
    for (bool UseAdam : {true, false}) {
      infer::PipelineOptions Opts = standardPipelineOptions();
      Opts.UseAdam = UseAdam;
      if (!UseAdam)
        Opts.Solve.LearningRate = 0.1; // PGD needs a larger base step.
      infer::Session S(Opts);
      S.addProjects(Data.Projects);
      S.generateConstraints(Data.Seed);
      infer::PipelineResult R = S.solve();
      addRow(Table, UseAdam ? "Adam (paper)" : "Projected subgradient",
             evaluate(R, Data));
    }
    Table.print(std::cout);
    std::cout << "\nExpected shape: both optimizers reach comparable "
                 "predictions on the convex\nrelaxation.\n";
  }
  return 0;
}
