//===- spec/TaintSpec.h - Taint specification data model ---------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A taint specification maps API representations (fully qualified strings
/// such as `werkzeug.utils.secure_filename()`) to the roles they play:
/// source, sanitizer, sink. Events may hold several roles (§4, "we
/// explicitly allow events to have multiple roles").
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SPEC_TAINTSPEC_H
#define SELDON_SPEC_TAINTSPEC_H

#include "propgraph/Event.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace seldon {
namespace spec {

using propgraph::Role;
using propgraph::RoleMask;

/// A set of (representation, roles) entries.
class TaintSpec {
public:
  /// Grants role \p R to representation \p Rep.
  void add(const std::string &Rep, Role R);

  /// Grants the roles of \p Mask to \p Rep.
  void addMask(const std::string &Rep, RoleMask Mask);

  /// True if \p Rep holds role \p R.
  bool has(const std::string &Rep, Role R) const;

  /// All roles of \p Rep (0 when absent).
  RoleMask rolesOf(const std::string &Rep) const;

  /// Number of representations holding role \p R.
  size_t count(Role R) const;

  /// Number of entries (representations with at least one role).
  size_t size() const { return Entries.size(); }
  bool empty() const { return Entries.empty(); }

  /// Adds all entries of \p Other into this spec (role masks are unioned).
  void merge(const TaintSpec &Other);

  /// Keeps only the entries whose representation satisfies \p Pred.
  template <typename PredT> TaintSpec filtered(PredT Pred) const {
    TaintSpec Out;
    for (const auto &[Rep, Mask] : Entries)
      if (Pred(Rep))
        Out.addMask(Rep, Mask);
    return Out;
  }

  const std::unordered_map<std::string, RoleMask> &entries() const {
    return Entries;
  }

  /// Entries holding role \p R, sorted lexicographically (deterministic
  /// iteration for sampling and reports).
  std::vector<std::string> sortedReps(Role R) const;

private:
  std::unordered_map<std::string, RoleMask> Entries;
};

} // namespace spec
} // namespace seldon

#endif // SELDON_SPEC_TAINTSPEC_H
