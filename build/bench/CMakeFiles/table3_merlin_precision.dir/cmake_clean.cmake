file(REMOVE_RECURSE
  "CMakeFiles/table3_merlin_precision.dir/table3_merlin_precision.cpp.o"
  "CMakeFiles/table3_merlin_precision.dir/table3_merlin_precision.cpp.o.d"
  "table3_merlin_precision"
  "table3_merlin_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_merlin_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
