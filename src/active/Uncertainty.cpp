//===- active/Uncertainty.cpp - Uncertainty-ranked candidates -------------===//

#include "active/Uncertainty.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

using namespace seldon;
using namespace seldon::active;
using namespace seldon::constraints;

std::vector<Candidate>
seldon::active::rankUncertain(const ConstraintSystem &Sys,
                              const propgraph::RepTable &Reps,
                              const std::vector<double> &X, double Threshold,
                              size_t K, double Band,
                              const std::vector<uint8_t> &Exclude) {
  std::unordered_set<VarId> Pinned;
  for (const auto &[Var, Value] : Sys.Pinned)
    Pinned.insert(Var);

  std::vector<Candidate> All;
  const size_t NumVars = Sys.Vars.numVars();
  for (VarId V = 0; V < NumVars; ++V) {
    if (Pinned.count(V))
      continue;
    if (V < Exclude.size() && Exclude[V])
      continue;
    double Score = V < X.size() ? X[V] : 0.0;
    double U = std::fabs(Score - Threshold);
    if (U > Band)
      continue;
    Candidate C;
    C.Var = V;
    C.Rep = Reps.repString(Sys.Vars.repOf(V));
    C.R = Sys.Vars.roleOf(V);
    C.Score = Score;
    C.Uncertainty = U;
    All.push_back(std::move(C));
  }

  // Full sort keeps the top-K selection independent of variable order:
  // ties on uncertainty break by (rep, role), never by VarId.
  std::sort(All.begin(), All.end(), [](const Candidate &A,
                                       const Candidate &B) {
    if (A.Uncertainty != B.Uncertainty)
      return A.Uncertainty < B.Uncertainty;
    if (A.Rep != B.Rep)
      return A.Rep < B.Rep;
    return A.R < B.R;
  });
  if (All.size() > K)
    All.resize(K);
  return All;
}
