//===- propgraph/Event.h - Propagation-graph events --------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Events and roles of the propagation graph (paper §3.1-§3.3, §5.1).
///
/// An event is a program action that can propagate information: a function
/// call, an object read (attribute load / subscript), or a formal parameter.
/// Each event carries its representation options Rep(v): strings ordered
/// from most to least specific (paper §3.2, §4.3), and a mask of the roles
/// it is a candidate for (§5.1: object reads and formal parameters can only
/// be sources; calls can be sources, sanitizers, or sinks).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PROPGRAPH_EVENT_H
#define SELDON_PROPGRAPH_EVENT_H

#include "pyast/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace seldon {
namespace propgraph {

/// The three taint roles an API can take.
enum class Role : uint8_t { Source = 0, Sanitizer = 1, Sink = 2 };

/// Number of distinct roles.
inline constexpr int NumRoles = 3;

/// Printable name ("source", "sanitizer", "sink").
const char *roleName(Role R);

/// Bitmask over roles.
using RoleMask = uint8_t;

inline constexpr RoleMask maskOf(Role R) {
  return static_cast<RoleMask>(1u << static_cast<unsigned>(R));
}
inline constexpr RoleMask SourceMask = maskOf(Role::Source);
inline constexpr RoleMask SanitizerMask = maskOf(Role::Sanitizer);
inline constexpr RoleMask SinkMask = maskOf(Role::Sink);
inline constexpr RoleMask AllRolesMask =
    SourceMask | SanitizerMask | SinkMask;

inline bool maskHas(RoleMask Mask, Role R) { return (Mask & maskOf(R)) != 0; }

/// Kinds of propagation-graph events (§5.1). CallArgument events exist
/// only in argument-position-sensitive mode (the differentiation of sink
/// roles by argument that paper §3.3 leaves as future work): one per
/// argument of a call, representing "argument i of API f".
enum class EventKind : uint8_t { Call, ObjectRead, FormalParam, CallArgument };

/// Printable name for an event kind.
const char *eventKindName(EventKind Kind);

/// Dense event identifier within one PropagationGraph.
using EventId = uint32_t;

/// Sentinel for "no event".
inline constexpr EventId InvalidEvent = ~static_cast<EventId>(0);

/// A node of the propagation graph.
struct Event {
  EventId Id = InvalidEvent;
  EventKind Kind = EventKind::Call;
  /// Representation options, ordered most specific -> least specific.
  /// Always non-empty.
  std::vector<std::string> Reps;
  /// Roles this event may take (subset determined by Kind and blacklist).
  RoleMask Candidates = 0;
  /// Index into PropagationGraph::files().
  uint32_t FileIdx = 0;
  pyast::SourceLoc Loc;

  /// The most specific representation.
  const std::string &primaryRep() const { return Reps.front(); }
};

} // namespace propgraph
} // namespace seldon

#endif // SELDON_PROPGRAPH_EVENT_H
