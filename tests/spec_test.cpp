//===- tests/spec_test.cpp - Tests for taint/seed/learned specs -----------===//

#include "spec/LearnedSpec.h"
#include "spec/SeedSpec.h"
#include "spec/TaintSpec.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::spec;
using namespace seldon::propgraph;

namespace {

//===----------------------------------------------------------------------===//
// TaintSpec
//===----------------------------------------------------------------------===//

TEST(TaintSpecTest, AddAndQuery) {
  TaintSpec S;
  S.add("flask.request.args.get()", Role::Source);
  S.add("flask.redirect()", Role::Sink);
  EXPECT_TRUE(S.has("flask.request.args.get()", Role::Source));
  EXPECT_FALSE(S.has("flask.request.args.get()", Role::Sink));
  EXPECT_FALSE(S.has("unknown()", Role::Source));
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.count(Role::Source), 1u);
  EXPECT_EQ(S.count(Role::Sink), 1u);
  EXPECT_EQ(S.count(Role::Sanitizer), 0u);
}

TEST(TaintSpecTest, MultipleRolesPerRep) {
  TaintSpec S;
  S.add("x()", Role::Source);
  S.add("x()", Role::Sink);
  EXPECT_TRUE(S.has("x()", Role::Source));
  EXPECT_TRUE(S.has("x()", Role::Sink));
  EXPECT_EQ(S.size(), 1u);
}

TEST(TaintSpecTest, MergeUnionsMasks) {
  TaintSpec A, B;
  A.add("x()", Role::Source);
  B.add("x()", Role::Sink);
  B.add("y()", Role::Sanitizer);
  A.merge(B);
  EXPECT_TRUE(A.has("x()", Role::Source));
  EXPECT_TRUE(A.has("x()", Role::Sink));
  EXPECT_TRUE(A.has("y()", Role::Sanitizer));
}

TEST(TaintSpecTest, SortedRepsDeterministic) {
  TaintSpec S;
  S.add("b()", Role::Source);
  S.add("a()", Role::Source);
  S.add("c()", Role::Sink);
  auto Sources = S.sortedReps(Role::Source);
  ASSERT_EQ(Sources.size(), 2u);
  EXPECT_EQ(Sources[0], "a()");
  EXPECT_EQ(Sources[1], "b()");
}

TEST(TaintSpecTest, AddMaskZeroIsNoop) {
  TaintSpec S;
  S.addMask("x()", 0);
  EXPECT_TRUE(S.empty());
}

//===----------------------------------------------------------------------===//
// SeedSpec parsing
//===----------------------------------------------------------------------===//

TEST(SeedSpecTest, ParseAllKinds) {
  std::vector<std::string> Errors;
  SeedSpec S = SeedSpec::parse("# comment\n"
                               "o: flask.request.form.get()\n"
                               "a: bleach.clean()\n"
                               "i: flask.redirect()\n"
                               "b: *logging*\n"
                               "\n",
                               &Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_TRUE(S.Spec.has("flask.request.form.get()", Role::Source));
  EXPECT_TRUE(S.Spec.has("bleach.clean()", Role::Sanitizer));
  EXPECT_TRUE(S.Spec.has("flask.redirect()", Role::Sink));
  EXPECT_TRUE(S.isBlacklisted("my.logging.info()"));
  EXPECT_FALSE(S.isBlacklisted("flask.redirect()"));
}

TEST(SeedSpecTest, MalformedLinesReported) {
  std::vector<std::string> Errors;
  SeedSpec S = SeedSpec::parse("o: good()\nbad line\nq: unknown()\no:\n",
                               &Errors);
  EXPECT_EQ(Errors.size(), 3u);
  EXPECT_EQ(S.Spec.size(), 1u);
}

TEST(SeedSpecTest, WhitespaceTolerant) {
  SeedSpec S = SeedSpec::parse("  o:   spaced.api()  \r\n");
  EXPECT_TRUE(S.Spec.has("spaced.api()", Role::Source));
}

TEST(SeedSpecTest, PaperSeedSpecParsesCleanly) {
  std::vector<std::string> Errors;
  SeedSpec S = SeedSpec::parse(paperSeedSpecText(), &Errors);
  EXPECT_TRUE(Errors.empty());
  EXPECT_GT(S.Spec.count(Role::Source), 5u);
  EXPECT_GT(S.Spec.count(Role::Sanitizer), 5u);
  EXPECT_GT(S.Spec.count(Role::Sink), 10u);
  EXPECT_GT(S.Blacklist.size(), 50u);
  // Spot checks straight from App. B.
  EXPECT_TRUE(S.Spec.has("werkzeug.utils.secure_filename()",
                         Role::Sanitizer));
  EXPECT_TRUE(S.Spec.has("os.system()", Role::Sink));
  EXPECT_TRUE(S.isBlacklisted("tf.tensorflow.constant()"));
  EXPECT_TRUE(S.isBlacklisted("x.split()"));
}

TEST(SeedSpecTest, HalvedKeepsEveryOtherEntry) {
  SeedSpec S = SeedSpec::parse("o: a()\no: b()\no: c()\no: d()\n"
                               "i: s1()\ni: s2()\n"
                               "b: *x*\n");
  SeedSpec Half = S.halved();
  EXPECT_EQ(Half.Spec.count(Role::Source), 2u);
  EXPECT_EQ(Half.Spec.count(Role::Sink), 1u);
  EXPECT_TRUE(Half.isBlacklisted("axb")) << "blacklist kept in full";
  // Deterministic: the lexicographically first entry of each role is kept.
  EXPECT_TRUE(Half.Spec.has("a()", Role::Source));
  EXPECT_TRUE(Half.Spec.has("c()", Role::Source));
}

//===----------------------------------------------------------------------===//
// LearnedSpec
//===----------------------------------------------------------------------===//

TEST(LearnedSpecTest, ScoreRoundTrip) {
  LearnedSpec L;
  L.setScore("api()", Role::Source, 0.7);
  EXPECT_DOUBLE_EQ(L.score("api()", Role::Source), 0.7);
  EXPECT_DOUBLE_EQ(L.score("api()", Role::Sink), 0.0);
  EXPECT_DOUBLE_EQ(L.score("other()", Role::Source), 0.0);
}

TEST(LearnedSpecTest, SelectRoleMostSpecificWins) {
  LearnedSpec L;
  L.setScore("specific()", Role::Source, 0.5);
  auto Score = L.selectRole({"specific()", "general()"}, Role::Source, 0.1);
  ASSERT_TRUE(Score.has_value());
  EXPECT_DOUBLE_EQ(*Score, 0.5);
}

TEST(LearnedSpecTest, SelectRoleBackoffDecay) {
  // §7.1: the i-th option is decayed by 0.8^i.
  LearnedSpec L;
  L.setScore("general()", Role::Sink, 0.5);
  auto Score = L.selectRole({"specific()", "general()"}, Role::Sink, 0.1);
  ASSERT_TRUE(Score.has_value());
  EXPECT_NEAR(*Score, 0.8 * 0.5, 1e-12);
}

TEST(LearnedSpecTest, SelectRoleRespectsThreshold) {
  LearnedSpec L;
  L.setScore("g()", Role::Sink, 0.2);
  // 0.8^2 * 0.2 = 0.128 >= 0.1, but 0.8^5 * 0.2 < 0.1.
  EXPECT_TRUE(L.selectRole({"a()", "b()", "g()"}, Role::Sink, 0.1));
  EXPECT_FALSE(
      L.selectRole({"a()", "b()", "c()", "d()", "e()", "g()"}, Role::Sink,
                   0.1));
}

TEST(LearnedSpecTest, SelectRoleNoOptions) {
  LearnedSpec L;
  EXPECT_FALSE(L.selectRole({}, Role::Source, 0.1).has_value());
  EXPECT_FALSE(L.selectRole({"unseen()"}, Role::Source, 0.1).has_value());
}

TEST(LearnedSpecTest, ToSpecThreshold) {
  LearnedSpec L;
  L.setScore("hi()", Role::Source, 0.9);
  L.setScore("lo()", Role::Source, 0.05);
  L.setScore("hi()", Role::Sink, 0.15);
  TaintSpec S = L.toSpec(0.1);
  EXPECT_TRUE(S.has("hi()", Role::Source));
  EXPECT_TRUE(S.has("hi()", Role::Sink));
  EXPECT_FALSE(S.has("lo()", Role::Source));
  EXPECT_EQ(L.countAbove(Role::Source, 0.1), 1u);
}

TEST(LearnedSpecTest, RankedSortsDescending) {
  LearnedSpec L;
  L.setScore("a()", Role::Source, 0.3);
  L.setScore("b()", Role::Source, 0.9);
  L.setScore("c()", Role::Source, 0.6);
  L.setScore("z()", Role::Source, 0.0);
  auto Ranked = L.ranked(Role::Source);
  ASSERT_EQ(Ranked.size(), 3u) << "zero scores excluded by default";
  EXPECT_EQ(Ranked[0].first, "b()");
  EXPECT_EQ(Ranked[1].first, "c()");
  EXPECT_EQ(Ranked[2].first, "a()");
}

TEST(LearnedSpecTest, RankedTieBreaksLexicographic) {
  LearnedSpec L;
  L.setScore("b()", Role::Sink, 0.5);
  L.setScore("a()", Role::Sink, 0.5);
  auto Ranked = L.ranked(Role::Sink);
  ASSERT_EQ(Ranked.size(), 2u);
  EXPECT_EQ(Ranked[0].first, "a()");
}

} // namespace
