//===- bench/appc_reported_bugs.cpp - Paper App. C / §7.5 Q7 --------------===//
//
// Regenerates the App. C view: the concrete bugs worth reporting upstream.
// The paper's authors inspected reports "with highly scored sources and
// sinks", built exploits, and disclosed 49 vulnerabilities across 17
// projects (25 XSS, 18 SQLi, 3 path traversal, 2 command injection, 1 code
// injection). We rank all corpus reports by confidence, deduplicate per
// (source API, sink API) pair, keep true exploitable vulnerabilities (our
// oracle plays the role of the manual exploit), and print the breakdown by
// vulnerability class plus the top disclosures.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "taint/ReportRenderer.h"

#include <iostream>
#include <map>
#include <unordered_set>

using namespace seldon;
using namespace seldon::eval;

int main() {
  CorpusRun Run = runStandardExperiment(standardCorpusOptions(),
                                        standardPipelineOptions());
  auto Reports = analyzeCorpus(Run, /*UseLearned=*/true);

  // Keep confirmed, exploitable, unsanitized flows (the oracle stands in
  // for the paper's manual proof-of-concept exploits).
  std::vector<taint::Violation> Confirmed;
  for (const taint::Violation &V : Reports)
    if (classifyReport(Run.Pipeline.Graph, V, Run.Data.Truth,
                       Run.Data.Flows) ==
        ReportCategory::TrueVulnerability)
      Confirmed.push_back(V);

  Confirmed = taint::dedupByRepPair(Run.Pipeline.Graph, Confirmed);
  std::vector<double> Confidence =
      taint::rankViolations(Run.Pipeline.Graph, Confirmed,
                            &Run.Data.Seed.Spec, &Run.Pipeline.Learned,
                            ScoreThreshold);

  // Vulnerability class of each confirmed report, via the sink's class.
  auto ClassOf = [&](const taint::Violation &V) -> std::string {
    const propgraph::Event &Snk = Run.Pipeline.Graph.event(V.Sink);
    for (const std::string &Rep : Snk.Reps) {
      const std::string &Cls = Run.Data.Truth.vulnClassOf(Rep);
      if (!Cls.empty())
        return Cls;
    }
    return "other";
  };

  std::map<std::string, size_t> PerClass;
  std::unordered_set<std::string> Projects;
  for (const taint::Violation &V : Confirmed) {
    ++PerClass[ClassOf(V)];
    const std::string &Path = Run.Pipeline.Graph.files()[V.FileIdx];
    Projects.insert(Path.substr(0, Path.find('/')));
  }

  std::cout << "=== App. C: confirmed, deduplicated vulnerabilities worth "
               "disclosing ===\n\n";
  TablePrinter Table({"Type of Bug", "Number of Bugs"});
  static const std::map<std::string, std::string> Labels = {
      {"xss", "Cross-Site Scripting"},
      {"sqli", "SQL Injection"},
      {"path", "Path Traversal"},
      {"cmdi", "Command Injection"},
      {"redirect", "Open Redirect"},
      {"other", "Other"}};
  for (const auto &[Cls, Count] : PerClass) {
    auto It = Labels.find(Cls);
    Table.addRow({It == Labels.end() ? Cls : It->second,
                  std::to_string(Count)});
  }
  Table.addRow({"Total", std::to_string(Confirmed.size())});
  Table.print(std::cout);
  std::cout << formatString("\nAcross %zu projects.\n\n", Projects.size());

  std::cout << "Top 5 disclosures by confidence:\n";
  for (size_t I = 0; I < Confirmed.size() && I < 5; ++I) {
    std::cout << formatString("\n[%zu] confidence %.2f, class %s\n", I + 1,
                              Confidence[I],
                              ClassOf(Confirmed[I]).c_str());
    std::cout << taint::formatViolation(Run.Pipeline.Graph, Confirmed[I]);
  }

  std::cout << "\nPaper reference (App. C): 49 bugs in 17 projects — 25 "
               "XSS, 18 SQLi, 3 path traversal,\n2 command injection, 1 "
               "code injection; only 3 discoverable with the seed spec.\n";
  return 0;
}
