//===- pyast/Parser.cpp - Recursive-descent Python parser -----------------===//

#include "pyast/Parser.h"

#include "pyast/Lexer.h"

#include <cassert>

using namespace seldon;
using namespace seldon::pyast;

Parser::Parser(AstContext &Ctx, std::vector<Token> Tokens)
    : Ctx(Ctx), Tokens(std::move(Tokens)) {
  assert(!this->Tokens.empty() &&
         this->Tokens.back().is(TokenKind::EndOfFile) &&
         "token stream must end with EndOfFile");
}

const Token &Parser::peek(size_t Ahead) const {
  size_t Idx = Pos + Ahead;
  if (Idx >= Tokens.size())
    Idx = Tokens.size() - 1; // EndOfFile.
  return Tokens[Idx];
}

Token Parser::advance() {
  Token Tok = current();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return Tok;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  errorHere(std::string("expected '") + tokenKindName(Kind) + "' " + Context +
            ", found '" + tokenKindName(current().Kind) + "'");
  return false;
}

void Parser::errorHere(const std::string &Message) {
  Errors.push_back({current().Line, current().Col, Message});
}

void Parser::synchronizeToLineEnd() {
  while (!check(TokenKind::EndOfFile) && !check(TokenKind::Newline) &&
         !check(TokenKind::Dedent))
    advance();
  accept(TokenKind::Newline);
}

SourceLoc Parser::locHere() const { return {current().Line, current().Col}; }

namespace {

/// RAII recursion counter for the descent; paired with the MaxNestingDepth
/// checks in parseStatement/parseAtom, the two funnels every statement and
/// expression recursion passes through.
struct DepthScope {
  explicit DepthScope(int &Depth) : Depth(Depth) { ++Depth; }
  ~DepthScope() { --Depth; }
  int &Depth;
};

} // namespace

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

ModuleNode *Parser::parseModule() {
  SourceLoc Loc{1, 1};
  std::vector<Stmt *> Body = parseStatementsUntil(TokenKind::EndOfFile);
  return Ctx.create<ModuleNode>(Loc, std::move(Body));
}

std::vector<Stmt *> Parser::parseStatementsUntil(TokenKind Terminator) {
  std::vector<Stmt *> Out;
  while (!check(Terminator) && !check(TokenKind::EndOfFile)) {
    if (accept(TokenKind::Newline))
      continue;
    if (check(TokenKind::Indent)) {
      errorHere("unexpected indent");
      advance();
      continue;
    }
    if (check(TokenKind::Dedent) && Terminator != TokenKind::Dedent) {
      errorHere("unexpected dedent");
      advance();
      continue;
    }
    size_t Before = Pos;
    if (Stmt *S = parseStatement())
      Out.push_back(S);
    if (Pos == Before)
      advance(); // Guarantee progress even on a parse failure.
  }
  return Out;
}

Stmt *Parser::parseStatement() {
  if (Depth >= MaxNestingDepth) {
    errorHere("statement nesting too deep");
    synchronizeToLineEnd();
    return nullptr;
  }
  DepthScope Scope(Depth);
  switch (current().Kind) {
  case TokenKind::KwDef:
    return parseFunctionDef({});
  case TokenKind::KwClass:
    return parseClassDef({});
  case TokenKind::At:
    return parseDecorated();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwWith:
    return parseWith();
  case TokenKind::KwTry:
    return parseTry();
  default: {
    std::vector<Stmt *> Line;
    parseSimpleStatementLine(Line);
    if (Line.size() == 1)
      return Line.front();
    if (Line.empty())
      return nullptr;
    // A `a; b; c` line yields several statements where the caller expects
    // one; wrap them in an always-taken If so execution order is preserved.
    SourceLoc Loc = Line.front()->loc();
    Expr *True = Ctx.create<BoolExpr>(Loc, true);
    return Ctx.create<IfStmt>(Loc, True, std::move(Line),
                              std::vector<Stmt *>{});
  }
  }
}

void Parser::parseSimpleStatementLine(std::vector<Stmt *> &Out) {
  for (;;) {
    if (Stmt *S = parseSmallStatement())
      Out.push_back(S);
    if (accept(TokenKind::Semicolon)) {
      if (check(TokenKind::Newline) || check(TokenKind::EndOfFile)) {
        accept(TokenKind::Newline);
        return;
      }
      continue;
    }
    if (!accept(TokenKind::Newline) && !check(TokenKind::EndOfFile) &&
        !check(TokenKind::Dedent)) {
      errorHere(std::string("unexpected token '") +
                tokenKindName(current().Kind) + "' at end of statement");
      synchronizeToLineEnd();
    }
    return;
  }
}

Stmt *Parser::parseSmallStatement() {
  SourceLoc Loc = locHere();
  switch (current().Kind) {
  case TokenKind::KwPass:
    advance();
    return Ctx.create<PassStmt>(Loc);
  case TokenKind::KwBreak:
    advance();
    return Ctx.create<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    advance();
    return Ctx.create<ContinueStmt>(Loc);
  case TokenKind::KwReturn: {
    advance();
    Expr *Value = nullptr;
    if (!check(TokenKind::Newline) && !check(TokenKind::Semicolon) &&
        !check(TokenKind::EndOfFile) && !check(TokenKind::Dedent))
      Value = parseExprOrTupleNoAssign();
    return Ctx.create<ReturnStmt>(Loc, Value);
  }
  case TokenKind::KwRaise: {
    advance();
    Expr *Exc = nullptr, *Cause = nullptr;
    if (!check(TokenKind::Newline) && !check(TokenKind::Semicolon) &&
        !check(TokenKind::EndOfFile) && !check(TokenKind::Dedent)) {
      Exc = parseTest();
      if (accept(TokenKind::KwFrom))
        Cause = parseTest();
    }
    return Ctx.create<RaiseStmt>(Loc, Exc, Cause);
  }
  case TokenKind::KwImport:
    return parseImport();
  case TokenKind::KwFrom:
    return parseImportFrom();
  case TokenKind::KwGlobal:
  case TokenKind::KwNonlocal: {
    advance();
    std::vector<std::string> Names;
    do {
      if (check(TokenKind::Name))
        Names.push_back(advance().Text);
      else
        errorHere("expected identifier in global/nonlocal statement");
    } while (accept(TokenKind::Comma));
    return Ctx.create<GlobalStmt>(Loc, std::move(Names));
  }
  case TokenKind::KwDel: {
    advance();
    std::vector<Expr *> Targets;
    do {
      Targets.push_back(parseTest());
    } while (accept(TokenKind::Comma));
    return Ctx.create<DeleteStmt>(Loc, std::move(Targets));
  }
  case TokenKind::KwAssert: {
    advance();
    Expr *Test = parseTest();
    Expr *Msg = nullptr;
    if (accept(TokenKind::Comma))
      Msg = parseTest();
    return Ctx.create<AssertStmt>(Loc, Test, Msg);
  }
  default:
    return parseExprLikeStatement();
  }
}

Stmt *Parser::parseExprLikeStatement() {
  SourceLoc Loc = locHere();
  Expr *First = parseExprOrTupleNoAssign();
  if (!First) {
    synchronizeToLineEnd();
    return nullptr;
  }

  // Annotated assignment: `target: type [= value]`.
  if (accept(TokenKind::Colon)) {
    Expr *Annotation = parseTest();
    Expr *Value = nullptr;
    if (accept(TokenKind::Equal))
      Value = parseExprOrTupleNoAssign();
    return Ctx.create<AnnAssignStmt>(Loc, First, Annotation, Value);
  }

  // Augmented assignment.
  struct AugEntry {
    TokenKind Kind;
    BinaryOp Op;
  };
  static const AugEntry AugOps[] = {
      {TokenKind::PlusEq, BinaryOp::Add},
      {TokenKind::MinusEq, BinaryOp::Sub},
      {TokenKind::StarEq, BinaryOp::Mul},
      {TokenKind::SlashEq, BinaryOp::Div},
      {TokenKind::DoubleSlashEq, BinaryOp::FloorDiv},
      {TokenKind::PercentEq, BinaryOp::Mod},
      {TokenKind::DoubleStarEq, BinaryOp::Pow},
      {TokenKind::AmpEq, BinaryOp::BitAnd},
      {TokenKind::PipeEq, BinaryOp::BitOr},
      {TokenKind::CaretEq, BinaryOp::BitXor},
      {TokenKind::LShiftEq, BinaryOp::LShift},
      {TokenKind::RShiftEq, BinaryOp::RShift},
      {TokenKind::AtEq, BinaryOp::MatMul},
  };
  for (const AugEntry &E : AugOps) {
    if (!check(E.Kind))
      continue;
    advance();
    Expr *Value = parseExprOrTupleNoAssign();
    return Ctx.create<AugAssignStmt>(Loc, First, E.Op, Value);
  }

  // Chained assignment `a = b = value`.
  if (check(TokenKind::Equal)) {
    std::vector<Expr *> Chain{First};
    while (accept(TokenKind::Equal))
      Chain.push_back(parseExprOrTupleNoAssign());
    Expr *Value = Chain.back();
    Chain.pop_back();
    return Ctx.create<AssignStmt>(Loc, std::move(Chain), Value);
  }

  return Ctx.create<ExprStmt>(Loc, First);
}

std::vector<Stmt *> Parser::parseBlock() {
  expect(TokenKind::Colon, "to introduce a block");
  if (accept(TokenKind::Newline)) {
    if (!expect(TokenKind::Indent, "to start an indented block"))
      return {};
    std::vector<Stmt *> Body = parseStatementsUntil(TokenKind::Dedent);
    expect(TokenKind::Dedent, "to end an indented block");
    return Body;
  }
  // Inline suite: `if x: do(); done()`.
  std::vector<Stmt *> Body;
  parseSimpleStatementLine(Body);
  return Body;
}

Stmt *Parser::parseFunctionDef(std::vector<Expr *> Decorators) {
  SourceLoc Loc = locHere();
  expect(TokenKind::KwDef, "to start a function definition");
  std::string Name;
  if (check(TokenKind::Name))
    Name = advance().Text;
  else
    errorHere("expected function name after 'def'");
  expect(TokenKind::LParen, "after function name");
  std::vector<Param> Params = parseParamList(TokenKind::RParen);
  expect(TokenKind::RParen, "after parameter list");
  Expr *ReturnAnnotation = nullptr;
  if (accept(TokenKind::Arrow))
    ReturnAnnotation = parseTest();
  std::vector<Stmt *> Body = parseBlock();
  return Ctx.create<FunctionDefStmt>(Loc, std::move(Name), std::move(Params),
                                     std::move(Body), std::move(Decorators),
                                     ReturnAnnotation);
}

Stmt *Parser::parseClassDef(std::vector<Expr *> Decorators) {
  SourceLoc Loc = locHere();
  expect(TokenKind::KwClass, "to start a class definition");
  std::string Name;
  if (check(TokenKind::Name))
    Name = advance().Text;
  else
    errorHere("expected class name after 'class'");
  std::vector<Expr *> Bases;
  if (accept(TokenKind::LParen)) {
    if (!check(TokenKind::RParen)) {
      do {
        // Skip metaclass= and other keyword arguments in the base list.
        if (check(TokenKind::Name) && peek(1).is(TokenKind::Equal)) {
          advance();
          advance();
          parseTest();
          continue;
        }
        Bases.push_back(parseTest());
      } while (accept(TokenKind::Comma) && !check(TokenKind::RParen));
    }
    expect(TokenKind::RParen, "after base class list");
  }
  std::vector<Stmt *> Body = parseBlock();
  return Ctx.create<ClassDefStmt>(Loc, std::move(Name), std::move(Bases),
                                  std::move(Body), std::move(Decorators));
}

Stmt *Parser::parseDecorated() {
  std::vector<Expr *> Decorators;
  while (check(TokenKind::At)) {
    advance();
    Decorators.push_back(parseAtomWithTrailers());
    accept(TokenKind::Newline);
  }
  if (check(TokenKind::KwDef))
    return parseFunctionDef(std::move(Decorators));
  if (check(TokenKind::KwClass))
    return parseClassDef(std::move(Decorators));
  errorHere("expected 'def' or 'class' after decorators");
  synchronizeToLineEnd();
  return nullptr;
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = locHere();
  advance(); // if / elif
  Expr *Cond = parseTest();
  std::vector<Stmt *> Then = parseBlock();
  std::vector<Stmt *> Else;
  if (check(TokenKind::KwElif)) {
    if (Stmt *Nested = parseIf())
      Else.push_back(Nested);
  } else if (accept(TokenKind::KwElse)) {
    Else = parseBlock();
  }
  return Ctx.create<IfStmt>(Loc, Cond, std::move(Then), std::move(Else));
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = locHere();
  advance();
  Expr *Cond = parseTest();
  std::vector<Stmt *> Body = parseBlock();
  std::vector<Stmt *> Else;
  if (accept(TokenKind::KwElse))
    Else = parseBlock();
  return Ctx.create<WhileStmt>(Loc, Cond, std::move(Body), std::move(Else));
}

Stmt *Parser::parseFor() {
  SourceLoc Loc = locHere();
  advance();
  Expr *Target = parseTargetList();
  expect(TokenKind::KwIn, "in for statement");
  Expr *Iter = parseExprOrTupleNoAssign();
  std::vector<Stmt *> Body = parseBlock();
  std::vector<Stmt *> Else;
  if (accept(TokenKind::KwElse))
    Else = parseBlock();
  return Ctx.create<ForStmt>(Loc, Target, Iter, std::move(Body),
                             std::move(Else));
}

Stmt *Parser::parseWith() {
  SourceLoc Loc = locHere();
  advance();
  std::vector<WithItem> Items;
  do {
    WithItem Item;
    Item.ContextExpr = parseTest();
    if (accept(TokenKind::KwAs))
      Item.OptionalVars = parseAtomWithTrailers();
    Items.push_back(Item);
  } while (accept(TokenKind::Comma));
  std::vector<Stmt *> Body = parseBlock();
  return Ctx.create<WithStmt>(Loc, std::move(Items), std::move(Body));
}

Stmt *Parser::parseTry() {
  SourceLoc Loc = locHere();
  advance();
  std::vector<Stmt *> Body = parseBlock();
  std::vector<ExceptHandler> Handlers;
  std::vector<Stmt *> OrElse, Finally;
  while (check(TokenKind::KwExcept)) {
    advance();
    ExceptHandler Handler;
    if (!check(TokenKind::Colon)) {
      Handler.Type = parseTest();
      if (accept(TokenKind::KwAs) && check(TokenKind::Name))
        Handler.Name = advance().Text;
    }
    Handler.Body = parseBlock();
    Handlers.push_back(std::move(Handler));
  }
  if (accept(TokenKind::KwElse))
    OrElse = parseBlock();
  if (accept(TokenKind::KwFinally))
    Finally = parseBlock();
  if (Handlers.empty() && Finally.empty())
    errorHere("try statement must have an except or finally clause");
  return Ctx.create<TryStmt>(Loc, std::move(Body), std::move(Handlers),
                             std::move(OrElse), std::move(Finally));
}

Stmt *Parser::parseImport() {
  SourceLoc Loc = locHere();
  advance();
  std::vector<ImportAlias> Names;
  do {
    ImportAlias Alias;
    while (check(TokenKind::Name)) {
      if (!Alias.Module.empty())
        Alias.Module += '.';
      Alias.Module += advance().Text;
      if (!accept(TokenKind::Dot))
        break;
    }
    if (Alias.Module.empty())
      errorHere("expected module name after 'import'");
    if (accept(TokenKind::KwAs) && check(TokenKind::Name))
      Alias.AsName = advance().Text;
    Names.push_back(std::move(Alias));
  } while (accept(TokenKind::Comma));
  return Ctx.create<ImportStmt>(Loc, std::move(Names));
}

Stmt *Parser::parseImportFrom() {
  SourceLoc Loc = locHere();
  advance();
  unsigned Level = 0;
  while (accept(TokenKind::Dot))
    ++Level;
  std::string Module;
  while (check(TokenKind::Name)) {
    if (!Module.empty())
      Module += '.';
    Module += advance().Text;
    if (!accept(TokenKind::Dot))
      break;
  }
  expect(TokenKind::KwImport, "in from-import statement");
  std::vector<ImportAlias> Names;
  if (accept(TokenKind::Star)) {
    Names.push_back({"*", ""});
  } else {
    bool Paren = accept(TokenKind::LParen);
    do {
      if (Paren && check(TokenKind::RParen))
        break; // Trailing comma inside parentheses.
      ImportAlias Alias;
      if (check(TokenKind::Name))
        Alias.Module = advance().Text;
      else
        errorHere("expected imported name");
      if (accept(TokenKind::KwAs) && check(TokenKind::Name))
        Alias.AsName = advance().Text;
      Names.push_back(std::move(Alias));
    } while (accept(TokenKind::Comma));
    if (Paren)
      expect(TokenKind::RParen, "after import list");
  }
  return Ctx.create<ImportFromStmt>(Loc, std::move(Module), std::move(Names),
                                    Level);
}

std::vector<Param> Parser::parseParamList(TokenKind Terminator) {
  std::vector<Param> Params;
  while (!check(Terminator) && !check(TokenKind::EndOfFile)) {
    Param P;
    P.Loc = locHere();
    if (accept(TokenKind::Star)) {
      if (check(Terminator) || check(TokenKind::Comma)) {
        // Bare '*' keyword-only marker; no parameter.
        if (!accept(TokenKind::Comma))
          break;
        continue;
      }
      P.IsVarArgs = true;
    } else if (accept(TokenKind::DoubleStar)) {
      P.IsKwArgs = true;
    }
    if (check(TokenKind::Name)) {
      P.Name = advance().Text;
    } else {
      errorHere("expected parameter name");
      break;
    }
    // Lambdas terminate their parameter list with ':', so a colon there
    // is never an annotation (Python forbids annotated lambda params).
    if (Terminator != TokenKind::Colon && accept(TokenKind::Colon))
      P.Annotation = parseTest();
    if (accept(TokenKind::Equal))
      P.Default = parseTest();
    Params.push_back(std::move(P));
    if (!accept(TokenKind::Comma))
      break;
  }
  return Params;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseTargetList() {
  // Assignment/loop targets stop before `in`, so they must not reach the
  // comparison level of the expression grammar. Trailers (attributes,
  // subscripts, calls) are still allowed: `for obj.f[i] in xs` is legal.
  SourceLoc Loc = locHere();
  auto ParseOne = [&]() -> Expr * {
    if (check(TokenKind::Star)) {
      SourceLoc StarLoc = locHere();
      advance();
      return Ctx.create<StarredExpr>(StarLoc, parseAtomWithTrailers());
    }
    return parseAtomWithTrailers();
  };
  Expr *First = ParseOne();
  if (!check(TokenKind::Comma))
    return First;
  std::vector<Expr *> Elements{First};
  while (accept(TokenKind::Comma)) {
    if (check(TokenKind::KwIn) || check(TokenKind::Equal) ||
        check(TokenKind::Colon) || check(TokenKind::Newline) ||
        check(TokenKind::EndOfFile))
      break;
    Elements.push_back(ParseOne());
  }
  return Ctx.create<TupleExpr>(Loc, std::move(Elements));
}

Expr *Parser::parseExprOrTupleNoAssign() {
  SourceLoc Loc = locHere();
  Expr *First = parseStarOrTest();
  if (!check(TokenKind::Comma))
    return First;
  std::vector<Expr *> Elements{First};
  while (accept(TokenKind::Comma)) {
    // A trailing comma still makes a tuple: `x, = f()`.
    if (check(TokenKind::Newline) || check(TokenKind::Equal) ||
        check(TokenKind::EndOfFile) || check(TokenKind::RParen) ||
        check(TokenKind::Semicolon) || check(TokenKind::Colon) ||
        check(TokenKind::KwIn) || check(TokenKind::Dedent))
      break;
    Elements.push_back(parseStarOrTest());
  }
  return Ctx.create<TupleExpr>(Loc, std::move(Elements));
}

Expr *Parser::parseStarOrTest() {
  if (check(TokenKind::Star)) {
    SourceLoc Loc = locHere();
    advance();
    return Ctx.create<StarredExpr>(Loc, parseTest());
  }
  return parseTest();
}

Expr *Parser::parseTest() {
  if (check(TokenKind::KwLambda))
    return parseLambda();
  SourceLoc Loc = locHere();
  Expr *Body = parseOrTest();
  if (!accept(TokenKind::KwIf))
    return Body;
  Expr *Cond = parseOrTest();
  expect(TokenKind::KwElse, "in conditional expression");
  Expr *OrElse = parseTest();
  return Ctx.create<ConditionalExpr>(Loc, Body, Cond, OrElse);
}

Expr *Parser::parseLambda() {
  SourceLoc Loc = locHere();
  expect(TokenKind::KwLambda, "to start a lambda");
  std::vector<Param> Params = parseParamList(TokenKind::Colon);
  expect(TokenKind::Colon, "after lambda parameters");
  Expr *Body = parseTest();
  return Ctx.create<LambdaExpr>(Loc, std::move(Params), Body);
}

Expr *Parser::parseOrTest() {
  SourceLoc Loc = locHere();
  Expr *First = parseAndTest();
  if (!check(TokenKind::KwOr))
    return First;
  std::vector<Expr *> Operands{First};
  while (accept(TokenKind::KwOr))
    Operands.push_back(parseAndTest());
  return Ctx.create<BoolOpExpr>(Loc, /*IsAnd=*/false, std::move(Operands));
}

Expr *Parser::parseAndTest() {
  SourceLoc Loc = locHere();
  Expr *First = parseNotTest();
  if (!check(TokenKind::KwAnd))
    return First;
  std::vector<Expr *> Operands{First};
  while (accept(TokenKind::KwAnd))
    Operands.push_back(parseNotTest());
  return Ctx.create<BoolOpExpr>(Loc, /*IsAnd=*/true, std::move(Operands));
}

Expr *Parser::parseNotTest() {
  if (check(TokenKind::KwNot)) {
    SourceLoc Loc = locHere();
    advance();
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Not, parseNotTest());
  }
  return parseComparison();
}

Expr *Parser::parseComparison() {
  SourceLoc Loc = locHere();
  Expr *First = parseBitOr();
  std::vector<CompareOp> Ops;
  std::vector<Expr *> Comparators;
  for (;;) {
    CompareOp Op;
    if (accept(TokenKind::EqEq))
      Op = CompareOp::Eq;
    else if (accept(TokenKind::NotEq))
      Op = CompareOp::NotEq;
    else if (accept(TokenKind::Less))
      Op = CompareOp::Less;
    else if (accept(TokenKind::LessEq))
      Op = CompareOp::LessEq;
    else if (accept(TokenKind::Greater))
      Op = CompareOp::Greater;
    else if (accept(TokenKind::GreaterEq))
      Op = CompareOp::GreaterEq;
    else if (check(TokenKind::KwIs)) {
      advance();
      Op = accept(TokenKind::KwNot) ? CompareOp::IsNot : CompareOp::Is;
    } else if (accept(TokenKind::KwIn))
      Op = CompareOp::In;
    else if (check(TokenKind::KwNot) && peek(1).is(TokenKind::KwIn)) {
      advance();
      advance();
      Op = CompareOp::NotIn;
    } else
      break;
    Ops.push_back(Op);
    Comparators.push_back(parseBitOr());
  }
  if (Ops.empty())
    return First;
  return Ctx.create<CompareExpr>(Loc, First, std::move(Ops),
                                 std::move(Comparators));
}

Expr *Parser::parseBitOr() {
  SourceLoc Loc = locHere();
  Expr *Lhs = parseBitXor();
  while (accept(TokenKind::Pipe))
    Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::BitOr, Lhs, parseBitXor());
  return Lhs;
}

Expr *Parser::parseBitXor() {
  SourceLoc Loc = locHere();
  Expr *Lhs = parseBitAnd();
  while (accept(TokenKind::Caret))
    Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::BitXor, Lhs, parseBitAnd());
  return Lhs;
}

Expr *Parser::parseBitAnd() {
  SourceLoc Loc = locHere();
  Expr *Lhs = parseShift();
  while (accept(TokenKind::Amp))
    Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::BitAnd, Lhs, parseShift());
  return Lhs;
}

Expr *Parser::parseShift() {
  SourceLoc Loc = locHere();
  Expr *Lhs = parseArith();
  for (;;) {
    if (accept(TokenKind::LShift))
      Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::LShift, Lhs, parseArith());
    else if (accept(TokenKind::RShift))
      Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::RShift, Lhs, parseArith());
    else
      return Lhs;
  }
}

Expr *Parser::parseArith() {
  SourceLoc Loc = locHere();
  Expr *Lhs = parseTerm();
  for (;;) {
    if (accept(TokenKind::Plus))
      Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::Add, Lhs, parseTerm());
    else if (accept(TokenKind::Minus))
      Lhs = Ctx.create<BinaryExpr>(Loc, BinaryOp::Sub, Lhs, parseTerm());
    else
      return Lhs;
  }
}

Expr *Parser::parseTerm() {
  SourceLoc Loc = locHere();
  Expr *Lhs = parseFactor();
  for (;;) {
    BinaryOp Op;
    if (accept(TokenKind::Star))
      Op = BinaryOp::Mul;
    else if (accept(TokenKind::Slash))
      Op = BinaryOp::Div;
    else if (accept(TokenKind::DoubleSlash))
      Op = BinaryOp::FloorDiv;
    else if (accept(TokenKind::Percent))
      Op = BinaryOp::Mod;
    else if (accept(TokenKind::At))
      Op = BinaryOp::MatMul;
    else
      return Lhs;
    Lhs = Ctx.create<BinaryExpr>(Loc, Op, Lhs, parseFactor());
  }
}

Expr *Parser::parseFactor() {
  SourceLoc Loc = locHere();
  if (accept(TokenKind::Minus))
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Neg, parseFactor());
  if (accept(TokenKind::Plus))
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Pos, parseFactor());
  if (accept(TokenKind::Tilde))
    return Ctx.create<UnaryExpr>(Loc, UnaryOp::Invert, parseFactor());
  return parsePower();
}

Expr *Parser::parsePower() {
  SourceLoc Loc = locHere();
  Expr *Base = parseAtomWithTrailers();
  if (accept(TokenKind::DoubleStar))
    return Ctx.create<BinaryExpr>(Loc, BinaryOp::Pow, Base, parseFactor());
  return Base;
}

Expr *Parser::parseAtomWithTrailers() {
  Expr *E = parseAtom();
  for (;;) {
    SourceLoc Loc = locHere();
    if (accept(TokenKind::Dot)) {
      if (check(TokenKind::Name)) {
        E = Ctx.create<AttributeExpr>(Loc, E, advance().Text);
      } else {
        errorHere("expected attribute name after '.'");
        return E;
      }
      continue;
    }
    if (accept(TokenKind::LParen)) {
      std::vector<Expr *> Args;
      std::vector<KeywordArg> Keywords;
      parseCallArgs(Args, Keywords);
      expect(TokenKind::RParen, "after call arguments");
      E = Ctx.create<CallExpr>(Loc, E, std::move(Args), std::move(Keywords));
      continue;
    }
    if (accept(TokenKind::LBracket)) {
      Expr *Index = parseSubscriptIndex();
      expect(TokenKind::RBracket, "after subscript");
      E = Ctx.create<SubscriptExpr>(Loc, E, Index);
      continue;
    }
    return E;
  }
}

Expr *Parser::parseSubscriptIndex() {
  SourceLoc Loc = locHere();
  auto ParseItem = [&]() -> Expr * {
    SourceLoc ItemLoc = locHere();
    Expr *Lower = nullptr;
    if (!check(TokenKind::Colon))
      Lower = parseTest();
    if (!check(TokenKind::Colon))
      return Lower;
    advance(); // ':'
    Expr *Upper = nullptr;
    if (!check(TokenKind::Colon) && !check(TokenKind::RBracket) &&
        !check(TokenKind::Comma))
      Upper = parseTest();
    Expr *Step = nullptr;
    if (accept(TokenKind::Colon))
      if (!check(TokenKind::RBracket) && !check(TokenKind::Comma))
        Step = parseTest();
    return Ctx.create<SliceExpr>(ItemLoc, Lower, Upper, Step);
  };
  Expr *First = ParseItem();
  if (!check(TokenKind::Comma))
    return First;
  std::vector<Expr *> Items{First};
  while (accept(TokenKind::Comma)) {
    if (check(TokenKind::RBracket))
      break;
    Items.push_back(ParseItem());
  }
  return Ctx.create<TupleExpr>(Loc, std::move(Items));
}

void Parser::parseCallArgs(std::vector<Expr *> &Args,
                           std::vector<KeywordArg> &Keywords) {
  if (check(TokenKind::RParen))
    return;
  do {
    if (check(TokenKind::RParen))
      break; // Trailing comma.
    SourceLoc Loc = locHere();
    if (accept(TokenKind::Star)) {
      Args.push_back(Ctx.create<StarredExpr>(Loc, parseTest()));
      continue;
    }
    if (accept(TokenKind::DoubleStar)) {
      Keywords.push_back({"", parseTest()});
      continue;
    }
    if (check(TokenKind::Name) && peek(1).is(TokenKind::Equal)) {
      std::string Name = advance().Text;
      advance(); // '='
      Keywords.push_back({std::move(Name), parseTest()});
      continue;
    }
    Expr *Arg = parseTest();
    // Generator expression as sole call argument: f(x for x in xs).
    if (check(TokenKind::KwFor)) {
      advance();
      Expr *Target = parseTargetList();
      expect(TokenKind::KwIn, "in generator expression");
      Expr *Iter = parseOrTest();
      Expr *Cond = nullptr;
      if (accept(TokenKind::KwIf))
        Cond = parseOrTest();
      Arg = Ctx.create<ComprehensionExpr>(Loc, ComprehensionKind::Generator,
                                          Arg, nullptr, Target, Iter, Cond);
    }
    Args.push_back(Arg);
  } while (accept(TokenKind::Comma));
}

Expr *Parser::parseAtom() {
  SourceLoc Loc = locHere();
  if (Depth >= MaxNestingDepth) {
    errorHere("expression nesting too deep");
    synchronizeToLineEnd();
    return Ctx.create<NoneExpr>(Loc);
  }
  DepthScope Scope(Depth);
  switch (current().Kind) {
  case TokenKind::Name: {
    Token Tok = advance();
    // Walrus `name := value` appears in conditions; model as the value.
    if (accept(TokenKind::Walrus)) {
      Expr *Value = parseTest();
      return Value;
    }
    return Ctx.create<NameExpr>(Loc, Tok.Text);
  }
  case TokenKind::Number:
    return Ctx.create<NumberExpr>(Loc, advance().Text);
  case TokenKind::String: {
    // Adjacent string literals concatenate; the result is an f-string if
    // any piece is one.
    std::string Value;
    std::vector<Expr *> Interpolations;
    bool AnyFString = false;
    do {
      Token Piece = advance();
      if (Piece.IsFString) {
        AnyFString = true;
        parseFStringInterpolations(Piece.Text, Loc, Interpolations);
      }
      Value += Piece.Text;
    } while (check(TokenKind::String));
    if (AnyFString)
      return Ctx.create<JoinedStrExpr>(Loc, std::move(Value),
                                       std::move(Interpolations));
    return Ctx.create<StringExpr>(Loc, std::move(Value));
  }
  case TokenKind::KwTrue:
    advance();
    return Ctx.create<BoolExpr>(Loc, true);
  case TokenKind::KwFalse:
    advance();
    return Ctx.create<BoolExpr>(Loc, false);
  case TokenKind::KwNone:
    advance();
    return Ctx.create<NoneExpr>(Loc);
  case TokenKind::KwYield: {
    advance();
    Expr *Value = nullptr;
    if (accept(TokenKind::KwFrom)) {
      Value = parseTest();
    } else if (!check(TokenKind::Newline) && !check(TokenKind::RParen) &&
               !check(TokenKind::EndOfFile) && !check(TokenKind::Dedent) &&
               !check(TokenKind::Semicolon))
      Value = parseExprOrTupleNoAssign();
    return Ctx.create<YieldExpr>(Loc, Value);
  }
  case TokenKind::KwLambda:
    return parseLambda();
  case TokenKind::LParen: {
    advance();
    if (accept(TokenKind::RParen))
      return Ctx.create<TupleExpr>(Loc, std::vector<Expr *>{});
    Expr *First = parseStarOrTest();
    if (check(TokenKind::KwFor)) {
      advance();
      Expr *Target = parseTargetList();
      expect(TokenKind::KwIn, "in generator expression");
      Expr *Iter = parseOrTest();
      Expr *Cond = nullptr;
      if (accept(TokenKind::KwIf))
        Cond = parseOrTest();
      expect(TokenKind::RParen, "after generator expression");
      return Ctx.create<ComprehensionExpr>(Loc, ComprehensionKind::Generator,
                                           First, nullptr, Target, Iter, Cond);
    }
    if (check(TokenKind::Comma)) {
      std::vector<Expr *> Elements{First};
      while (accept(TokenKind::Comma)) {
        if (check(TokenKind::RParen))
          break;
        Elements.push_back(parseStarOrTest());
      }
      expect(TokenKind::RParen, "after tuple display");
      return Ctx.create<TupleExpr>(Loc, std::move(Elements));
    }
    expect(TokenKind::RParen, "after parenthesized expression");
    return First;
  }
  case TokenKind::LBracket: {
    advance();
    if (accept(TokenKind::RBracket))
      return Ctx.create<ListExpr>(Loc, std::vector<Expr *>{});
    Expr *First = parseStarOrTest();
    if (check(TokenKind::KwFor)) {
      advance();
      Expr *Target = parseTargetList();
      expect(TokenKind::KwIn, "in list comprehension");
      Expr *Iter = parseOrTest();
      Expr *Cond = nullptr;
      if (accept(TokenKind::KwIf))
        Cond = parseOrTest();
      expect(TokenKind::RBracket, "after list comprehension");
      return Ctx.create<ComprehensionExpr>(Loc, ComprehensionKind::List, First,
                                           nullptr, Target, Iter, Cond);
    }
    std::vector<Expr *> Elements{First};
    while (accept(TokenKind::Comma)) {
      if (check(TokenKind::RBracket))
        break;
      Elements.push_back(parseStarOrTest());
    }
    expect(TokenKind::RBracket, "after list display");
    return Ctx.create<ListExpr>(Loc, std::move(Elements));
  }
  case TokenKind::LBrace: {
    advance();
    if (accept(TokenKind::RBrace))
      return Ctx.create<DictExpr>(Loc, std::vector<Expr *>{},
                                  std::vector<Expr *>{});
    // `**mapping` can only start a dict display.
    if (accept(TokenKind::DoubleStar)) {
      std::vector<Expr *> Keys{nullptr};
      std::vector<Expr *> Values{parseTest()};
      while (accept(TokenKind::Comma)) {
        if (check(TokenKind::RBrace))
          break;
        if (accept(TokenKind::DoubleStar)) {
          Keys.push_back(nullptr);
          Values.push_back(parseTest());
          continue;
        }
        Keys.push_back(parseTest());
        expect(TokenKind::Colon, "in dict display");
        Values.push_back(parseTest());
      }
      expect(TokenKind::RBrace, "after dict display");
      return Ctx.create<DictExpr>(Loc, std::move(Keys), std::move(Values));
    }
    Expr *First = parseTest();
    if (accept(TokenKind::Colon)) {
      Expr *FirstValue = parseTest();
      if (check(TokenKind::KwFor)) {
        advance();
        Expr *Target = parseTargetList();
        expect(TokenKind::KwIn, "in dict comprehension");
        Expr *Iter = parseOrTest();
        Expr *Cond = nullptr;
        if (accept(TokenKind::KwIf))
          Cond = parseOrTest();
        expect(TokenKind::RBrace, "after dict comprehension");
        return Ctx.create<ComprehensionExpr>(Loc, ComprehensionKind::Dict,
                                             FirstValue, First, Target, Iter,
                                             Cond);
      }
      std::vector<Expr *> Keys{First};
      std::vector<Expr *> Values{FirstValue};
      while (accept(TokenKind::Comma)) {
        if (check(TokenKind::RBrace))
          break;
        if (accept(TokenKind::DoubleStar)) {
          Keys.push_back(nullptr);
          Values.push_back(parseTest());
          continue;
        }
        Keys.push_back(parseTest());
        expect(TokenKind::Colon, "in dict display");
        Values.push_back(parseTest());
      }
      expect(TokenKind::RBrace, "after dict display");
      return Ctx.create<DictExpr>(Loc, std::move(Keys), std::move(Values));
    }
    if (check(TokenKind::KwFor)) {
      advance();
      Expr *Target = parseTargetList();
      expect(TokenKind::KwIn, "in set comprehension");
      Expr *Iter = parseOrTest();
      Expr *Cond = nullptr;
      if (accept(TokenKind::KwIf))
        Cond = parseOrTest();
      expect(TokenKind::RBrace, "after set comprehension");
      return Ctx.create<ComprehensionExpr>(Loc, ComprehensionKind::Set, First,
                                           nullptr, Target, Iter, Cond);
    }
    std::vector<Expr *> Elements{First};
    while (accept(TokenKind::Comma)) {
      if (check(TokenKind::RBrace))
        break;
      Elements.push_back(parseTest());
    }
    expect(TokenKind::RBrace, "after set display");
    return Ctx.create<SetExpr>(Loc, std::move(Elements));
  }
  default:
    errorHere(std::string("unexpected token '") +
              tokenKindName(current().Kind) + "' in expression");
    // Produce a placeholder so parsing can continue.
    if (!check(TokenKind::Newline) && !check(TokenKind::EndOfFile) &&
        !check(TokenKind::Dedent))
      advance();
    return Ctx.create<NoneExpr>(Loc);
  }
}

void Parser::parseFStringInterpolations(const std::string &Text,
                                        SourceLoc Loc,
                                        std::vector<Expr *> &Out) {
  // Scan for `{expr[!conv][:format][=]}` fields; `{{`/`}}` are literal
  // braces. Quoted spans inside a field are skipped so `{d['k']}` works.
  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (C == '}') {
      if (I + 1 < Text.size() && Text[I + 1] == '}')
        ++I;
      continue;
    }
    if (C != '{')
      continue;
    if (I + 1 < Text.size() && Text[I + 1] == '{') {
      ++I;
      continue;
    }
    // Find the matching close brace and the end of the expression part
    // (the first `:` or `!conv` at depth 0 starts the format spec).
    size_t Depth = 1;
    size_t ExprEnd = std::string::npos;
    size_t FieldEnd = std::string::npos;
    char Quote = '\0';
    for (size_t J = I + 1; J < Text.size(); ++J) {
      char D = Text[J];
      if (Quote != '\0') {
        if (D == Quote)
          Quote = '\0';
        continue;
      }
      if (D == '\'' || D == '"') {
        Quote = D;
        continue;
      }
      if (D == '{' || D == '[' || D == '(')
        ++Depth;
      if (D == '}' || D == ']' || D == ')') {
        if (D == '}' && Depth == 1) {
          FieldEnd = J;
          if (ExprEnd == std::string::npos)
            ExprEnd = J;
          break;
        }
        if (Depth > 1)
          --Depth;
        continue;
      }
      if (Depth == 1 && ExprEnd == std::string::npos) {
        if (D == ':')
          ExprEnd = J;
        else if (D == '!' && J + 1 < Text.size() && Text[J + 1] != '=')
          ExprEnd = J;
      }
    }
    if (FieldEnd == std::string::npos) {
      Errors.push_back({Loc.Line, Loc.Col,
                        "unterminated interpolation in f-string"});
      return;
    }
    std::string ExprText = Text.substr(I + 1, ExprEnd - I - 1);
    // f"{x=}" debug form: the trailing '=' is display sugar.
    while (!ExprText.empty() && ExprText.back() == '=')
      ExprText.pop_back();
    if (!ExprText.empty()) {
      Lexer SubLexer(ExprText);
      Parser SubParser(Ctx, SubLexer.lexAll());
      ModuleNode *Sub = SubParser.parseModule();
      for (const ParseError &E : SubParser.errors())
        Errors.push_back({Loc.Line, Loc.Col,
                          "in f-string interpolation: " + E.Message});
      if (Sub->Body.size() == 1)
        if (const auto *ES = dyn_cast<ExprStmt>(Sub->Body.front()))
          Out.push_back(ES->Value);
    }
    I = FieldEnd;
  }
}

ModuleNode *seldon::pyast::parseSource(AstContext &Ctx,
                                       std::string_view Source,
                                       std::vector<ParseError> *ErrorsOut) {
  Lexer Lex(Source);
  std::vector<Token> Tokens = Lex.lexAll();
  if (ErrorsOut)
    for (const LexError &E : Lex.errors())
      ErrorsOut->push_back({E.Line, E.Col, E.Message});
  Parser P(Ctx, std::move(Tokens));
  ModuleNode *M = P.parseModule();
  if (ErrorsOut)
    for (const ParseError &E : P.errors())
      ErrorsOut->push_back(E);
  return M;
}
