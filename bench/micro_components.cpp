//===- bench/micro_components.cpp - Component microbenchmarks -------------===//
//
// google-benchmark microbenchmarks of the pipeline stages: lexing, parsing,
// points-to solving, propagation-graph construction, constraint
// generation, one optimizer iteration, and taint analysis. These quantify
// where the per-file cost of Fig. 10's linear scaling goes.
//
//===----------------------------------------------------------------------===//

#include "constraints/ConstraintGen.h"
#include "corpus/CorpusGenerator.h"
#include "eval/ExperimentDriver.h"
#include "infer/Pipeline.h"
#include "merlin/MerlinPipeline.h"
#include "pyast/Lexer.h"
#include "pyast/Parser.h"
#include "taint/TaintAnalyzer.h"

#include <benchmark/benchmark.h>

using namespace seldon;

namespace {

/// A representative generated source file, shared by the front-end
/// benchmarks.
const std::string &sampleSource() {
  static const std::string Source = [] {
    corpus::CorpusOptions Opts;
    Opts.NumProjects = 1;
    Opts.MinFilesPerProject = Opts.MaxFilesPerProject = 1;
    Opts.MinFlowsPerFile = Opts.MaxFlowsPerFile = 8;
    corpus::Corpus C = corpus::generateCorpus(Opts);
    // Re-render by regenerating the single project deterministically.
    corpus::ApiUniverse U = corpus::ApiUniverse::standard();
    pysem::Project P = corpus::generateSingleProject(U, 42, 1, 8, "bench");
    (void)C;
    // Projects do not retain text; lex/parse benchmarks need raw source,
    // so synthesize an equivalent realistic file here.
    std::string Out;
    Out += "from flask import request\n";
    Out += "import flask\nimport sqlite3\nimport bleach\n\n";
    for (int I = 0; I < 8; ++I) {
      std::string N = std::to_string(I);
      Out += "def handle_" + N + "():\n";
      Out += "    data_" + N + " = request.args.get('q')\n";
      Out += "    data_" + N + " = data_" + N + ".strip()\n";
      Out += "    clean_" + N + " = bleach.clean(data_" + N + ")\n";
      Out += "    flask.make_response(clean_" + N + ")\n";
      Out += "    sqlite3.connect(DB).cursor().execute('x' + data_" + N +
             ")\n";
    }
    return Out;
  }();
  return Source;
}

/// A small prebuilt corpus shared by the backend benchmarks.
struct BackendState {
  corpus::Corpus Data;
  propgraph::PropagationGraph Graph;
  propgraph::RepTable Reps;
  constraints::ConstraintSystem System;

  BackendState() {
    corpus::CorpusOptions Opts;
    Opts.NumProjects = 40;
    Data = corpus::generateCorpus(Opts);
    for (const pysem::Project &P : Data.Projects)
      Graph.append(propgraph::buildProjectGraph(P));
    Reps.countOccurrences(Graph);
    System = constraints::generateConstraints(Graph, Reps, Data.Seed);
  }

  static BackendState &get() {
    static BackendState State;
    return State;
  }
};

void BM_Lexer(benchmark::State &State) {
  const std::string &Source = sampleSource();
  for (auto _ : State) {
    pyast::Lexer Lexer(Source);
    benchmark::DoNotOptimize(Lexer.lexAll());
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Source.size()));
}
BENCHMARK(BM_Lexer);

void BM_Parser(benchmark::State &State) {
  const std::string &Source = sampleSource();
  for (auto _ : State) {
    pyast::AstContext Ctx;
    benchmark::DoNotOptimize(pyast::parseSource(Ctx, Source));
  }
  State.SetBytesProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Source.size()));
}
BENCHMARK(BM_Parser);

void BM_GraphBuild(benchmark::State &State) {
  pysem::Project Proj;
  const pysem::ModuleInfo &M = Proj.addModule("bench.py", sampleSource());
  for (auto _ : State)
    benchmark::DoNotOptimize(propgraph::buildModuleGraph(Proj, M));
}
BENCHMARK(BM_GraphBuild);

void BM_GraphBuildNoPointsTo(benchmark::State &State) {
  pysem::Project Proj;
  const pysem::ModuleInfo &M = Proj.addModule("bench.py", sampleSource());
  propgraph::BuildOptions Opts;
  Opts.UsePointsTo = false;
  for (auto _ : State)
    benchmark::DoNotOptimize(propgraph::buildModuleGraph(Proj, M, Opts));
}
BENCHMARK(BM_GraphBuildNoPointsTo);

void BM_ConstraintGen(benchmark::State &State) {
  BackendState &B = BackendState::get();
  for (auto _ : State)
    benchmark::DoNotOptimize(
        constraints::generateConstraints(B.Graph, B.Reps, B.Data.Seed));
}
BENCHMARK(BM_ConstraintGen);

void BM_AdamIteration(benchmark::State &State) {
  BackendState &B = BackendState::get();
  solver::Objective Obj = B.System.makeObjective(0.1);
  std::vector<double> X = Obj.initialPoint();
  std::vector<double> Grad;
  for (auto _ : State) {
    Obj.gradient(X, Grad);
    benchmark::DoNotOptimize(Grad.data());
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Obj.numConstraints()));
}
BENCHMARK(BM_AdamIteration);

// The legacy solve step as the optimizer actually runs it: one gradient
// sweep plus one value sweep per iteration. Baseline for the fused kernel.
void BM_SolveIterationLegacy(benchmark::State &State) {
  BackendState &B = BackendState::get();
  solver::Objective Obj = B.System.makeObjective(0.1);
  std::vector<double> X = Obj.initialPoint();
  std::vector<double> Grad;
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.valueAndGradient(X, Grad));
  // items = source constraints swept, so items/sec compares directly
  // against the compiled kernel's row throughput.
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Obj.numConstraints()));
  State.counters["sweeps_per_iter"] = 2;
}
BENCHMARK(BM_SolveIterationLegacy);

// The compiled solve step: a single fused sweep over the coalesced CSR
// rows yields both the value and the gradient.
void BM_SolveIterationCompiled(benchmark::State &State) {
  BackendState &B = BackendState::get();
  solver::CompiledObjective Obj = B.System.makeCompiledObjective(0.1);
  std::vector<double> X = Obj.initialPoint();
  std::vector<double> Grad;
  for (auto _ : State)
    benchmark::DoNotOptimize(Obj.valueAndGradient(X, Grad));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(Obj.stats().RowsBefore));
  State.counters["sweeps_per_iter"] = 1;
  State.counters["rows"] = static_cast<double>(Obj.numRows());
  State.counters["nnz"] = static_cast<double>(Obj.numNonZeros());
  State.counters["dedup_ratio"] = Obj.stats().dedupRatio();
}
BENCHMARK(BM_SolveIterationCompiled);

// The compilation pass itself (canonicalize + coalesce + CSR layout);
// runs once per solve, so it must stay negligible next to the sweeps.
void BM_ConstraintCompile(benchmark::State &State) {
  BackendState &B = BackendState::get();
  for (auto _ : State)
    benchmark::DoNotOptimize(B.System.makeCompiledObjective(0.1));
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(B.System.Constraints.size()));
}
BENCHMARK(BM_ConstraintCompile);

void BM_TaintAnalysis(benchmark::State &State) {
  BackendState &B = BackendState::get();
  taint::RoleResolver Roles(&B.Data.Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(B.Graph);
  for (auto _ : State)
    benchmark::DoNotOptimize(Analyzer.analyze(Roles));
}
BENCHMARK(BM_TaintAnalysis);

void BM_GraphCollapse(benchmark::State &State) {
  BackendState &B = BackendState::get();
  for (auto _ : State)
    benchmark::DoNotOptimize(B.Graph.collapseByRep());
}
BENCHMARK(BM_GraphCollapse);

void BM_MerlinBpIteration(benchmark::State &State) {
  corpus::ApiUniverse U = corpus::ApiUniverse::standard();
  spec::SeedSpec Seed = U.seedSpec();
  pysem::Project Proj = corpus::generateSingleProject(U, 5, 2, 6, "m");
  propgraph::PropagationGraph G = propgraph::buildProjectGraph(Proj);
  merlin::MerlinModel Model = merlin::buildMerlinModel(G, Seed);
  merlin::BpOptions Opts;
  Opts.MaxIterations = 1;
  merlin::LoopyBeliefPropagation Bp(Opts);
  for (auto _ : State)
    benchmark::DoNotOptimize(Bp.run(Model.Graph));
}
BENCHMARK(BM_MerlinBpIteration);

} // namespace

BENCHMARK_MAIN();
