file(REMOVE_RECURSE
  "CMakeFiles/expert_review.dir/expert_review.cpp.o"
  "CMakeFiles/expert_review.dir/expert_review.cpp.o.d"
  "expert_review"
  "expert_review.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_review.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
