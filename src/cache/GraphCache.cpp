//===- cache/GraphCache.cpp - Persistent propagation-graph cache ----------===//

#include "cache/GraphCache.h"

#include "propgraph/GraphCodec.h"
#include "support/BinaryCodec.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/Timer.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace seldon;
using namespace seldon::cache;

namespace fs = std::filesystem;

std::string CacheKey::hex() const {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Hash));
  return std::string(Buf);
}

namespace {

/// Entry files are the codec blob prefixed by the 8-byte little-endian
/// key hash, so a load can verify the entry actually belongs to its key.
constexpr size_t KeyPrefixBytes = 8;
constexpr const char *EntrySuffix = ".spg";

using codec::hashChunk;
using codec::hashValue;

} // namespace

size_t seldon::cache::sweepStaleTemps(const std::string &Dir,
                                      const char *Suffix,
                                      unsigned MaxAgeSeconds) {
  const std::string TempMarker = std::string(Suffix) + ".tmp";
  const auto Now = fs::file_time_type::clock::now();
  size_t Removed = 0;
  std::error_code Ec;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    const fs::path &P = It->path();
    const std::string Name = P.filename().string();
    size_t At = Name.find(TempMarker);
    // The marker must be followed by the sequence digits only — an entry
    // legitimately named "...tmp..." earlier in the stem is not a temp.
    if (At == std::string::npos ||
        Name.find_first_not_of("0123456789", At + TempMarker.size()) !=
            std::string::npos)
      continue;
    std::error_code FileEc;
    fs::file_time_type Mtime = fs::last_write_time(P, FileEc);
    if (FileEc ||
        Now - Mtime < std::chrono::seconds(MaxAgeSeconds))
      continue; // Possibly a live writer in another process.
    if (fs::remove(P, FileEc) && !FileEc)
      ++Removed;
  }
  return Removed;
}

CacheKey seldon::cache::projectCacheKey(const pysem::Project &Proj,
                                        const propgraph::BuildOptions &Opts) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  hashChunk(Hash, "seldon-graph-cache");
  hashValue(Hash, propgraph::GraphCodecVersion);

  // Every frontend knob participates: flipping any of them must rebuild.
  hashValue(Hash, static_cast<uint64_t>(Opts.MaxInlineDepth));
  hashValue(Hash, Opts.ModelLocals);
  hashValue(Hash, Opts.UsePointsTo);
  hashValue(Hash, Opts.ArgPositionReps);
  hashValue(Hash, Opts.PreciseInlining);
  hashValue(Hash, Opts.CrossModuleFlows);

  hashValue(Hash, Proj.modules().size());
  for (const pysem::ModuleInfo &M : Proj.modules()) {
    hashChunk(Hash, M.Path);
    hashChunk(Hash, M.Source);
  }
  CacheKey Key;
  Key.Hash = Hash;
  return Key;
}

GraphCache::GraphCache(std::string Dir) : Dir(std::move(Dir)) {
  std::error_code Ec;
  fs::create_directories(this->Dir, Ec);
  if (Ec) {
    DirError = formatString("cannot create cache directory %s: %s",
                            this->Dir.c_str(), Ec.message().c_str());
    return;
  }
  if (!fs::is_directory(this->Dir, Ec)) {
    DirError = formatString("cache path %s is not a directory",
                            this->Dir.c_str());
    return;
  }
  // A store that crashed between writing its temp and the publishing
  // rename leaks "<entry>.spg.tmp<seq>" files; sweep the old ones now so
  // they cannot accumulate across runs.
  Stats.StaleTempsRemoved = sweepStaleTemps(this->Dir, EntrySuffix);
}

std::string GraphCache::entryPath(const CacheKey &Key) const {
  return Dir + "/" + Key.hex() + EntrySuffix;
}

void GraphCache::recordError(std::string Message) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats.Errors.push_back(std::move(Message));
}

std::optional<propgraph::PropagationGraph>
GraphCache::load(const CacheKey &Key) {
  metrics::Registry &Reg = metrics::Registry::global();
  auto Miss = [&] {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Misses;
  };
  if (!valid()) {
    Miss();
    if (Reg.enabled())
      Reg.counter("cache.misses").add();
    return std::nullopt;
  }

  Timer LoadTimer;
  std::string Path = entryPath(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    // Absent entry: a plain miss, not an error.
    Miss();
    if (Reg.enabled())
      Reg.counter("cache.misses").add();
    return std::nullopt;
  }
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();

  std::string Problem;
  if (Bytes.size() < KeyPrefixBytes) {
    Problem = formatString("truncated cache entry (%zu byte(s), need at "
                           "least %zu for the key prefix)",
                           Bytes.size(), KeyPrefixBytes);
  } else {
    uint64_t StoredKey = 0;
    for (size_t I = 0; I < KeyPrefixBytes; ++I)
      StoredKey |= static_cast<uint64_t>(
                       static_cast<unsigned char>(Bytes[I]))
                   << (8 * I);
    if (StoredKey != Key.Hash) {
      Problem = formatString(
          "cache entry key mismatch: stored %016llx, expected %s",
          static_cast<unsigned long long>(StoredKey), Key.hex().c_str());
    } else {
      io::IOResult<propgraph::PropagationGraph> Decoded =
          propgraph::decodeGraph(
              std::string_view(Bytes).substr(KeyPrefixBytes));
      if (Decoded.ok()) {
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Stats.Hits;
          Stats.BytesRead += Bytes.size();
        }
        if (Reg.enabled()) {
          Reg.counter("cache.hits").add();
          Reg.counter("cache.bytes_read").add(Bytes.size());
          Reg.timer("cache.load_seconds").record(LoadTimer.seconds());
        }
        return std::move(Decoded.Value);
      }
      Problem = Decoded.Error;
    }
  }

  // Corrupt entry: evict it so the rebuild's write-back starts clean, and
  // report a miss so the caller falls back to a cold build.
  std::error_code Ec;
  fs::remove(Path, Ec);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Misses;
    ++Stats.Evictions;
    Stats.Errors.push_back(formatString("evicted %s: %s", Path.c_str(),
                                        Problem.c_str()));
  }
  if (Reg.enabled()) {
    Reg.counter("cache.misses").add();
    Reg.counter("cache.evictions").add();
  }
  return std::nullopt;
}

bool GraphCache::store(const CacheKey &Key,
                       const propgraph::PropagationGraph &Graph) {
  metrics::Registry &Reg = metrics::Registry::global();
  if (!valid()) {
    recordError(formatString("cannot store %s: %s", Key.hex().c_str(),
                             DirError.c_str()));
    return false;
  }

  Timer StoreTimer;
  std::string Bytes;
  Bytes.reserve(KeyPrefixBytes + 64);
  for (size_t I = 0; I < KeyPrefixBytes; ++I)
    Bytes.push_back(static_cast<char>((Key.Hash >> (8 * I)) & 0xff));
  Bytes += encodeGraph(Graph);

  // Unique temp name per store call: two workers may store the same key
  // when a corpus contains byte-identical projects.
  static std::atomic<uint64_t> StoreSeq{0};
  std::string Path = entryPath(Key);
  std::string TmpPath = formatString(
      "%s.tmp%llu", Path.c_str(),
      static_cast<unsigned long long>(
          StoreSeq.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream Out(TmpPath, std::ios::binary | std::ios::trunc);
    if (Out)
      Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out) {
      recordError(formatString("cannot write cache entry %s",
                               TmpPath.c_str()));
      std::error_code Ec;
      fs::remove(TmpPath, Ec);
      return false;
    }
  }
  std::error_code Ec;
  fs::rename(TmpPath, Path, Ec);
  if (Ec) {
    recordError(formatString("cannot publish cache entry %s: %s",
                             Path.c_str(), Ec.message().c_str()));
    fs::remove(TmpPath, Ec);
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Stores;
    Stats.BytesWritten += Bytes.size();
  }
  if (Reg.enabled()) {
    Reg.counter("cache.stores").add();
    Reg.counter("cache.bytes_written").add(Bytes.size());
    Reg.timer("cache.store_seconds").record(StoreTimer.seconds());
  }
  return true;
}

CacheStats GraphCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}
