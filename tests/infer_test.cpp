//===- tests/infer_test.cpp - End-to-end inference + taint analysis -------===//
//
// These tests exercise the paper's central claims on micro-corpora with
// known ground truth: each Fig. 4 template must let the optimizer infer the
// role of an unlabeled API from its interaction with seeded APIs.
//
//===----------------------------------------------------------------------===//

#include "infer/Pipeline.h"
#include "taint/TaintAnalyzer.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::infer;
using namespace seldon::propgraph;

namespace {

/// One-shot convenience over the staged Session API, so the Fig. 4
/// micro-corpus tests read as a single learning step.
PipelineResult runPipeline(const std::vector<pysem::Project> &Corpus,
                           const spec::SeedSpec &Seed,
                           const PipelineOptions &Opts) {
  Session S(Opts);
  S.addProjects(Corpus);
  S.generateConstraints(Seed);
  return S.solve();
}

/// Builds a corpus of \p Copies single-file projects with identical
/// \p Source (distinct paths), so representations clear the frequency
/// cutoff of 5 and cross-file learning applies.
std::vector<pysem::Project> replicate(std::string_view Source, int Copies) {
  std::vector<pysem::Project> Corpus;
  for (int I = 0; I < Copies; ++I) {
    pysem::Project P("proj" + std::to_string(I));
    P.addModule("proj" + std::to_string(I) + "/app.py", Source);
    Corpus.push_back(std::move(P));
  }
  return Corpus;
}

PipelineOptions testOptions() {
  PipelineOptions Opts;
  Opts.Solve.MaxIterations = 3000;
  Opts.Solve.LearningRate = 0.02;
  return Opts;
}

TEST(PipelineTest, LearnsUnknownSourceFromFig4a) {
  // unknown.read() -> seeded sanitizer -> seeded sink: Fig. 4a forces the
  // upstream event to be a source.
  auto Corpus = replicate("import web\nimport clean\nimport store\n"
                          "x = web.read()\n"
                          "y = clean.scrub(x)\n"
                          "store.put(y)\n",
                          8);
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("a: clean.scrub()\ni: store.put()\n");
  PipelineResult R = runPipeline(Corpus, Seed, testOptions());
  EXPECT_GT(R.Learned.score("web.read()", Role::Source), 0.3)
      << "Fig. 4a must raise the unknown source";
  EXPECT_LT(R.Learned.score("web.read()", Role::Sink), 0.2);
}

TEST(PipelineTest, LearnsUnknownSinkFromFig4b) {
  auto Corpus = replicate("import web\nimport clean\nimport db\n"
                          "x = web.read()\n"
                          "y = clean.scrub(x)\n"
                          "db.exec(y)\n",
                          8);
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\na: clean.scrub()\n");
  PipelineResult R = runPipeline(Corpus, Seed, testOptions());
  EXPECT_GT(R.Learned.score("db.exec()", Role::Sink), 0.3)
      << "Fig. 4b must raise the unknown sink";
}

TEST(PipelineTest, LearnsUnknownSanitizerFromFig4c) {
  auto Corpus = replicate("import web\nimport mystery\nimport db\n"
                          "x = web.read()\n"
                          "y = mystery.filter(x)\n"
                          "db.exec(y)\n",
                          8);
  spec::SeedSpec Seed = spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  PipelineResult R = runPipeline(Corpus, Seed, testOptions());
  EXPECT_GT(R.Learned.score("mystery.filter()", Role::Sanitizer), 0.3)
      << "Fig. 4c must raise the sanitizer between source and sink";
}

TEST(PipelineTest, EmptySeedLearnsNothing) {
  // §7 Q6: with an empty seed, all-zeros solves the system trivially.
  auto Corpus = replicate("import web\nimport clean\nimport db\n"
                          "db.exec(clean.scrub(web.read()))\n",
                          8);
  spec::SeedSpec Empty;
  PipelineResult R = runPipeline(Corpus, Empty, testOptions());
  for (const auto &[Rep, Scores] : R.Learned.all())
    for (Role Ro : {Role::Source, Role::Sanitizer, Role::Sink})
      EXPECT_LT(Scores[Ro], 0.05) << Rep;
}

TEST(PipelineTest, UnrelatedApisStayCold) {
  auto Corpus = replicate("import web\nimport clean\nimport db\nimport misc\n"
                          "x = web.read()\n"
                          "y = clean.scrub(x)\n"
                          "db.exec(y)\n"
                          "misc.tick()\n", // No flow to/from the chain.
                          8);
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\na: clean.scrub()\n");
  PipelineResult R = runPipeline(Corpus, Seed, testOptions());
  for (Role Ro : {Role::Source, Role::Sanitizer, Role::Sink})
    EXPECT_LT(R.Learned.score("misc.tick()", Ro), 0.05);
}

TEST(PipelineTest, CrossProjectLearning) {
  // The evidence for db.exec() being a sink exists only in project A;
  // project B uses db.exec() with an unknown upstream API. Cross-project
  // variable sharing must transfer the learned sink.
  std::vector<pysem::Project> Corpus;
  for (int I = 0; I < 8; ++I) {
    pysem::Project A("a" + std::to_string(I));
    A.addModule("a" + std::to_string(I) + "/app.py",
                "import web\nimport clean\nimport db\n"
                "db.exec(clean.scrub(web.read()))\n");
    Corpus.push_back(std::move(A));
    pysem::Project B("b" + std::to_string(I));
    B.addModule("b" + std::to_string(I) + "/app.py",
                "import other\nimport db\n"
                "db.exec(other.fetch())\n");
    Corpus.push_back(std::move(B));
  }
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\na: clean.scrub()\n");
  PipelineResult R = runPipeline(Corpus, Seed, testOptions());
  EXPECT_GT(R.Learned.score("db.exec()", Role::Sink), 0.3);
}

TEST(PipelineTest, CollapsedLearningStillInfers) {
  // §6.4: the collapsed graph is usable for specification learning. The
  // three-event chain survives contraction, so the sanitizer must still
  // be inferred; the result graph stays uncollapsed for taint analysis.
  auto Corpus = replicate("import web\nimport mystery\nimport db\n"
                          "db.exec(mystery.filter(web.read()))\n",
                          8);
  spec::SeedSpec Seed = spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  PipelineOptions Opts = testOptions();
  Opts.CollapseForLearning = true;
  PipelineResult R = runPipeline(Corpus, Seed, Opts);
  EXPECT_GT(R.Learned.score("mystery.filter()", Role::Sanitizer), 0.3);
  EXPECT_TRUE(R.Graph.isAcyclic())
      << "the taint-analysis graph must remain uncollapsed";
  EXPECT_EQ(R.Graph.numEvents(), 8u * 3u);
}

TEST(PipelineTest, WarmStartPreservesSolutionUnderTinyBudget) {
  auto Corpus = replicate("import web\nimport mystery\nimport db\n"
                          "db.exec(mystery.filter(web.read()))\n",
                          8);
  spec::SeedSpec Seed = spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");

  PipelineResult Full = runPipeline(Corpus, Seed, testOptions());
  double Converged = Full.Learned.score("mystery.filter()", Role::Sanitizer);
  ASSERT_GT(Converged, 0.3);

  // Retraining with a tiny iteration budget: the warm start retains the
  // previous solution, while a cold start cannot get there.
  PipelineOptions Tiny = testOptions();
  Tiny.Solve.MaxIterations = 20;
  PipelineResult Cold = runPipeline(Corpus, Seed, Tiny);
  Tiny.WarmStart = &Full.Learned;
  PipelineResult Warm = runPipeline(Corpus, Seed, Tiny);

  EXPECT_NEAR(Warm.Learned.score("mystery.filter()", Role::Sanitizer),
              Converged, 0.1)
      << "warm start must stay at the converged solution";
  EXPECT_LT(Cold.Learned.score("mystery.filter()", Role::Sanitizer),
            Converged - 0.2)
      << "20 cold iterations must not be enough";
}

TEST(PipelineTest, StatisticsPopulated) {
  auto Corpus = replicate("import web\nimport db\ndb.exec(web.read())\n", 6);
  spec::SeedSpec Seed = spec::SeedSpec::parse("o: web.read()\n");
  PipelineResult R = runPipeline(Corpus, Seed, testOptions());
  EXPECT_EQ(R.NumFiles, 6u);
  EXPECT_GT(R.System.NumCandidates, 0u);
  EXPECT_GT(R.System.Constraints.size(), 0u);
  EXPECT_GE(R.System.AvgBackoffOptions, 1.0);
  EXPECT_GE(R.inferenceSeconds(), 0.0);
}

TEST(PipelineTest, AdamAndPgdAgree) {
  auto Corpus = replicate("import web\nimport clean\nimport db\n"
                          "db.exec(clean.scrub(web.read()))\n",
                          8);
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  PipelineOptions A = testOptions();
  PipelineOptions P = testOptions();
  P.UseAdam = false;
  P.Solve.LearningRate = 0.1;
  double SA = runPipeline(Corpus, Seed, A)
                  .Learned.score("clean.scrub()", Role::Sanitizer);
  double SP = runPipeline(Corpus, Seed, P)
                  .Learned.score("clean.scrub()", Role::Sanitizer);
  EXPECT_NEAR(SA, SP, 0.15);
}

//===----------------------------------------------------------------------===//
// Taint analyzer
//===----------------------------------------------------------------------===//

struct TaintFixture {
  pysem::Project Proj;
  PropagationGraph Graph;

  explicit TaintFixture(std::string_view Source) {
    const pysem::ModuleInfo &M = Proj.addModule("p/app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = buildModuleGraph(Proj, M);
  }
};

TEST(TaintAnalyzerTest, DetectsUnsanitizedFlow) {
  TaintFixture F("import web\nimport db\n"
                 "db.exec(web.read())\n");
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);
  auto Violations = Analyzer.analyze(Roles);
  ASSERT_EQ(Violations.size(), 1u);
  EXPECT_EQ(F.Graph.event(Violations[0].Source).primaryRep(), "web.read()");
  EXPECT_EQ(F.Graph.event(Violations[0].Sink).primaryRep(), "db.exec()");
  ASSERT_GE(Violations[0].Path.size(), 2u);
  EXPECT_EQ(Violations[0].Path.front(), Violations[0].Source);
  EXPECT_EQ(Violations[0].Path.back(), Violations[0].Sink);
}

TEST(TaintAnalyzerTest, SanitizerBlocksFlow) {
  TaintFixture F("import web\nimport clean\nimport db\n"
                 "db.exec(clean.scrub(web.read()))\n");
  spec::SeedSpec Seed = spec::SeedSpec::parse(
      "o: web.read()\na: clean.scrub()\ni: db.exec()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);
  EXPECT_TRUE(Analyzer.analyze(Roles).empty());
}

TEST(TaintAnalyzerTest, UnsanitizedBranchStillReported) {
  // One path sanitized, one not: the violation must be found via the
  // unsanitized branch.
  TaintFixture F("import web\nimport clean\nimport db\n"
                 "x = web.read()\n"
                 "if flag:\n"
                 "    x = clean.scrub(x)\n"
                 "db.exec(x)\n");
  spec::SeedSpec Seed = spec::SeedSpec::parse(
      "o: web.read()\na: clean.scrub()\ni: db.exec()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);
  auto Violations = Analyzer.analyze(Roles);
  ASSERT_EQ(Violations.size(), 1u);
}

TEST(TaintAnalyzerTest, LearnedSpecExtendsSeed) {
  TaintFixture F("import web\nimport db\n"
                 "db.exec(web.read())\n");
  spec::SeedSpec Seed = spec::SeedSpec::parse("o: web.read()\n");
  // Seed alone: no sink known, no violation.
  taint::RoleResolver SeedOnly(&Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);
  EXPECT_TRUE(Analyzer.analyze(SeedOnly).empty());
  // Learned spec supplies the sink.
  spec::LearnedSpec Learned;
  Learned.setScore("db.exec()", Role::Sink, 0.6);
  taint::RoleResolver Both(&Seed.Spec, &Learned, 0.1);
  EXPECT_EQ(Analyzer.analyze(Both).size(), 1u);
}

TEST(TaintAnalyzerTest, CandidateMaskRespected) {
  // An object read whose rep is (bogusly) sink-labeled must not become a
  // sink: reads are source-only candidates (§5.1).
  TaintFixture F("import web\n"
                 "x = web.read()\n"
                 "y = x.field\n");
  spec::TaintSpec Spec;
  Spec.add("web.read()", Role::Source);
  Spec.add("web.read().field", Role::Sink);
  taint::RoleResolver Roles(&Spec, nullptr);
  taint::TaintAnalyzer Analyzer(F.Graph);
  EXPECT_TRUE(Analyzer.analyze(Roles).empty());
}

TEST(TaintAnalyzerTest, AffectedProjectCount) {
  pysem::Project P1("alpha"), P2("beta");
  P1.addModule("alpha/app.py", "import web\nimport db\ndb.exec(web.read())\n");
  P2.addModule("beta/app.py", "import web\nimport db\ndb.exec(web.read())\n");
  PropagationGraph G = buildProjectGraph(P1);
  G.append(buildProjectGraph(P2));
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  taint::TaintAnalyzer Analyzer(G);
  auto Violations = Analyzer.analyze(Roles);
  EXPECT_EQ(Violations.size(), 2u);
  EXPECT_EQ(taint::countAffectedProjects(G, Violations), 2u);
}

TEST(TaintAnalyzerTest, EndToEndInferThenAnalyze) {
  // Learn the sink from big code, then find a violation in a project where
  // the flow is NOT sanitized — undetectable with the seed spec alone
  // (the paper's 97% claim in miniature).
  std::vector<pysem::Project> Corpus;
  for (int I = 0; I < 8; ++I) {
    pysem::Project A("train" + std::to_string(I));
    A.addModule("train" + std::to_string(I) + "/app.py",
                "import web\nimport clean\nimport db\n"
                "db.exec(clean.scrub(web.read()))\n");
    Corpus.push_back(std::move(A));
  }
  pysem::Project Victim("victim");
  Victim.addModule("victim/app.py",
                   "import web\nimport db\ndb.exec(web.read())\n");
  Corpus.push_back(std::move(Victim));

  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\na: clean.scrub()\n");
  PipelineResult R = runPipeline(Corpus, Seed, testOptions());

  taint::RoleResolver SeedOnly(&Seed.Spec, nullptr);
  taint::RoleResolver WithLearned(&Seed.Spec, &R.Learned, 0.1);
  taint::TaintAnalyzer Analyzer(R.Graph);
  size_t Before = Analyzer.analyze(SeedOnly).size();
  size_t After = Analyzer.analyze(WithLearned).size();
  EXPECT_EQ(Before, 0u);
  EXPECT_GE(After, 1u);
}

} // namespace
