//===- examples/expert_review.cpp - The Fig. 1 expert workflow ------------===//
//
// The paper's Fig. 1 shows learned specifications being "examined by an
// expert" before feeding the bug detector. This example plays the expert:
// learn from a corpus, pull the most *uncertain* predictions (scores near
// the selection threshold), and for each one print the information-flow
// constraints that produced its score — the evidence a human reviewer
// would weigh before accepting the specification.
//
//===----------------------------------------------------------------------===//

#include "constraints/Explain.h"
#include "corpus/CorpusGenerator.h"
#include "infer/Pipeline.h"

#include <algorithm>
#include <cstdio>

using namespace seldon;
using propgraph::Role;

int main() {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = 80;
  corpus::Corpus Data = corpus::generateCorpus(Opts);
  infer::Session S;
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  infer::PipelineResult R = S.solve();
  std::printf("Learned %zu scored representations from %zu files.\n\n",
              R.Learned.size(), R.NumFiles);

  for (Role Ro : {Role::Source, Role::Sanitizer, Role::Sink}) {
    // Review queue: non-seed predictions just above the threshold — the
    // ones a reviewer is least sure about.
    auto Ranked = R.Learned.ranked(Ro, 0.1);
    std::vector<std::pair<std::string, double>> Borderline;
    for (const auto &[Rep, Score] : Ranked)
      if (Data.Seed.Spec.rolesOf(Rep) == 0)
        Borderline.emplace_back(Rep, Score);
    std::sort(Borderline.begin(), Borderline.end(),
              [](const auto &A, const auto &B) {
                return A.second < B.second; // Most uncertain first.
              });

    std::printf("=== Review queue: borderline %ss ===\n",
                propgraph::roleName(Ro));
    for (size_t I = 0; I < Borderline.size() && I < 2; ++I) {
      const auto &[Rep, Score] = Borderline[I];
      std::printf("\n%s (score %.2f) — supporting evidence:\n", Rep.c_str(),
                  Score);
      constraints::Explanation E =
          constraints::explainRep(R.System, R.Reps, Rep, Ro, R.Solve.X);
      size_t Shown = 0;
      for (const constraints::ExplainedConstraint &C : E.Constraints) {
        if (C.OnLhs)
          continue; // Show the constraints that *demand* the role.
        if (++Shown > 3) {
          std::printf("  ... %zu more\n", E.Constraints.size() - 3);
          break;
        }
        std::printf("  %s\n", C.Text.c_str());
      }
      if (Shown == 0)
        std::printf("  (score driven only by capping constraints)\n");
      bool Correct = Data.Truth.isTrue(Rep, Ro);
      std::printf("  oracle verdict: %s\n",
                  Correct ? "correct" : "FALSE POSITIVE — reject");
    }
    std::printf("\n");
  }

  std::printf("A reviewer accepts or rejects each entry; accepted entries "
              "join the specification\nthe taint analyzer consumes "
              "(paper Fig. 1).\n");
  return 0;
}
