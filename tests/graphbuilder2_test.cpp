//===- tests/graphbuilder2_test.cpp - Frontend coverage, second batch -----===//
//
// Further propagation-graph construction coverage: statement forms, call
// shapes, and representation corner cases beyond propgraph_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "propgraph/GraphBuilder.h"
#include "pysem/Project.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

struct Fixture {
  pysem::Project Proj;
  PropagationGraph Graph;

  explicit Fixture(std::string_view Source) {
    const pysem::ModuleInfo &M = Proj.addModule("app.py", Source);
    EXPECT_TRUE(M.Errors.empty())
        << (M.Errors.empty() ? "" : M.Errors.front().Message);
    Graph = buildModuleGraph(Proj, M);
  }

  EventId theEvent(const std::string &Rep) const {
    for (const Event &E : Graph.events())
      if (E.primaryRep() == Rep)
        return E.Id;
    ADD_FAILURE() << "no event " << Rep;
    return InvalidEvent;
  }

  bool hasEvent(const std::string &Rep) const {
    for (const Event &E : Graph.events())
      if (E.primaryRep() == Rep)
        return true;
    return false;
  }

  bool flowsTo(const std::string &From, const std::string &To) const {
    EventId F = InvalidEvent, T = InvalidEvent;
    for (const Event &E : Graph.events()) {
      if (E.primaryRep() == From)
        F = E.Id;
      if (E.primaryRep() == To)
        T = E.Id;
    }
    if (F == InvalidEvent || T == InvalidEvent)
      return false;
    auto R = Graph.reachableFrom(F);
    return std::find(R.begin(), R.end(), T) != R.end();
  }
};

TEST(GraphBuilder2Test, WithAsBindsContextFlow) {
  Fixture F("import web\nimport fs\n"
            "with web.open_stream() as s:\n"
            "    fs.write(s)\n");
  EXPECT_TRUE(F.flowsTo("web.open_stream()", "fs.write()"));
}

TEST(GraphBuilder2Test, TryExceptElseFinallyFlows) {
  Fixture F("import web\nimport db\nimport log\n"
            "try:\n"
            "    x = web.read()\n"
            "except ValueError as e:\n"
            "    log.warn(e)\n"
            "else:\n"
            "    db.run(x)\n"
            "finally:\n"
            "    db.close(x)\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
  EXPECT_TRUE(F.flowsTo("web.read()", "db.close()"));
}

TEST(GraphBuilder2Test, AugmentedAssignmentAccumulates) {
  Fixture F("import web\nimport db\n"
            "q = 'SELECT '\n"
            "q += web.read()\n"
            "db.run(q)\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, ReassignmentKillsOldFlow) {
  Fixture F("import web\nimport db\n"
            "x = web.read()\n"
            "x = 'constant'\n"
            "db.run(x)\n");
  EXPECT_FALSE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, StarArgsFlowIntoCall) {
  Fixture F("import web\nimport db\n"
            "args = [web.read()]\n"
            "db.run(*args)\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, DoubleStarKwargsFlowIntoCall) {
  Fixture F("import web\nimport db\n"
            "opts = {'q': web.read()}\n"
            "db.run(**opts)\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, YieldFlowsBackToLocalCaller) {
  Fixture F("import web\nimport db\n"
            "def gen():\n"
            "    yield web.read()\n"
            "db.run(gen())\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, TupleUnpackingSpreadsFlow) {
  Fixture F("import web\nimport db\n"
            "a, b = web.pair()\n"
            "db.run(b)\n");
  EXPECT_TRUE(F.flowsTo("web.pair()", "db.run()"));
}

TEST(GraphBuilder2Test, NestedCallArgumentsChain) {
  Fixture F("import web\nimport db\nimport json\n"
            "db.run(json.dumps(web.read()))\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "json.dumps()"));
  EXPECT_TRUE(F.flowsTo("json.dumps()", "db.run()"));
}

TEST(GraphBuilder2Test, LambdaBodyIsOpaque) {
  // Lambdas are not modeled; they must not crash nor leak flow.
  Fixture F("import web\nimport db\n"
            "f = lambda v: v\n"
            "db.run(f(web.read()))\n");
  EXPECT_TRUE(F.hasEvent("web.read()"));
  EXPECT_TRUE(F.hasEvent("db.run()"));
}

TEST(GraphBuilder2Test, DecoratorWithAttributePath) {
  Fixture F("from flask import app\n"
            "@app.route('/x', methods=['GET'])\n"
            "def view():\n"
            "    pass\n");
  EXPECT_TRUE(F.hasEvent("flask.app.route()"));
}

TEST(GraphBuilder2Test, ConditionalImportStillResolves) {
  Fixture F("try:\n"
            "    import ujson as json\n"
            "except ImportError:\n"
            "    import json\n"
            "x = json.loads(payload)\n");
  // The later binding wins in the import map; either qualified rep is
  // acceptable as long as one exists.
  EXPECT_TRUE(F.hasEvent("json.loads()") || F.hasEvent("ujson.loads()"));
}

TEST(GraphBuilder2Test, MultipleAssignTargetsShareFlow) {
  Fixture F("import web\nimport db\nimport fs\n"
            "a = b = web.read()\n"
            "db.run(a)\n"
            "fs.write(b)\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
  EXPECT_TRUE(F.flowsTo("web.read()", "fs.write()"));
}

TEST(GraphBuilder2Test, AnnotatedAssignmentFlows) {
  Fixture F("import web\nimport db\n"
            "x: str = web.read()\n"
            "db.run(x)\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, ChainedMethodOnParamBacksOff) {
  Fixture F("def handle(req):\n"
            "    return req.data.decode()\n");
  // Backoff: handle(param req).data.decode() -> req.data.decode().
  EventId Id = F.theEvent("handle(param req).data.decode()");
  const Event &E = F.Graph.event(Id);
  ASSERT_EQ(E.Reps.size(), 2u);
  EXPECT_EQ(E.Reps[1], "req.data.decode()");
}

TEST(GraphBuilder2Test, SubscriptIndexVariantsRender) {
  Fixture F("import web\n"
            "a = web.data['key']\n"
            "b = web.data[3]\n"
            "c = web.data[k]\n");
  EXPECT_TRUE(F.hasEvent("web.data['key']"));
  EXPECT_TRUE(F.hasEvent("web.data[3]"));
  EXPECT_TRUE(F.hasEvent("web.data[]"));
}

TEST(GraphBuilder2Test, ReturnInsideBranches) {
  Fixture F("import web\nimport a\nimport b\nimport db\n"
            "def pick():\n"
            "    if web.flag():\n"
            "        return a.get()\n"
            "    return b.get()\n"
            "db.run(pick())\n");
  EXPECT_TRUE(F.flowsTo("a.get()", "db.run()"));
  EXPECT_TRUE(F.flowsTo("b.get()", "db.run()"));
}

TEST(GraphBuilder2Test, DeleteRemovesBinding) {
  Fixture F("import web\nimport db\n"
            "x = web.read()\n"
            "del x\n"
            "db.run(x)\n");
  EXPECT_FALSE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, ClassAttributeAssignmentsProcessed) {
  Fixture F("import cfglib\n"
            "class Settings(object):\n"
            "    DB_URL = cfglib.load()\n");
  EXPECT_TRUE(F.hasEvent("cfglib.load()"));
}

TEST(GraphBuilder2Test, WhileConditionEventsCreated) {
  Fixture F("import net\n"
            "while net.poll():\n"
            "    pass\n");
  EXPECT_TRUE(F.hasEvent("net.poll()"));
}

TEST(GraphBuilder2Test, RaiseArgumentEvaluated) {
  Fixture F("import web\n"
            "raise ValueError(web.read())\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "ValueError()"));
}

TEST(GraphBuilder2Test, NestedFunctionProcessed) {
  Fixture F("import web\nimport db\n"
            "def outer():\n"
            "    def inner():\n"
            "        db.run(web.read())\n"
            "    return inner\n");
  EXPECT_TRUE(F.flowsTo("web.read()", "db.run()"));
}

TEST(GraphBuilder2Test, ImportAliasInReps) {
  Fixture F("from django.utils.html import escape as esc\n"
            "y = esc(x)\n");
  EXPECT_TRUE(F.hasEvent("django.utils.html.escape()"));
}

TEST(GraphBuilder2Test, SelfMethodChainOnBaseClassBackoff) {
  Fixture F("from base_driver import ThreadDriver\n"
            "class Printer(ThreadDriver):\n"
            "    def run(self):\n"
            "        self.emit(data)\n");
  EventId Id = F.theEvent("Printer::run(param self).emit()");
  const Event &E = F.Graph.event(Id);
  std::vector<std::string> Expected{
      "Printer::run(param self).emit()",
      "base_driver.ThreadDriver::run(param self).emit()",
      "run(param self).emit()",
      "self.emit()",
  };
  EXPECT_EQ(E.Reps, Expected);
}

} // namespace
