# Empty compiler generated dependencies file for seldon_constraints.
# This may be replaced when dependencies are built.
