//===- support/FaultInjection.cpp - Deterministic fault points ------------===//

#include "support/FaultInjection.h"

#include "support/StrUtil.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace seldon;
using namespace seldon::fault;

namespace {

/// One armed (point, key) pair. Consumed guards the one-shot semantics;
/// it is atomic because trips race from pool workers.
struct ArmedKey {
  uint64_t Key = 0;
  std::atomic<bool> Consumed{false};

  ArmedKey() = default;
  explicit ArmedKey(uint64_t Key) : Key(Key) {}
  ArmedKey(const ArmedKey &Other)
      : Key(Other.Key),
        Consumed(Other.Consumed.load(std::memory_order_relaxed)) {}
};

struct PointState {
  bool All = false; ///< `point:*` — trips for every key, never consumed.
  std::vector<ArmedKey> Keys;
  /// `crash:point:...` arms, kept separate so a throwing arm and a crash
  /// arm of the same point coexist.
  bool CrashAll = false;
  std::vector<ArmedKey> CrashKeys;
  std::atomic<uint64_t> Trips{0};

  void clear() {
    All = false;
    Keys.clear();
    CrashAll = false;
    CrashKeys.clear();
    Trips.store(0, std::memory_order_relaxed);
  }
};

struct FaultState {
  std::atomic<bool> AnyArmed{false};
  PointState Points[NumPoints];
};

FaultState &state() {
  static FaultState S;
  return S;
}

} // namespace

const char *seldon::fault::pointName(Point P) {
  switch (P) {
  case Point::Parse:
    return "parse";
  case Point::GraphBuild:
    return "graph-build";
  case Point::CacheRead:
    return "cache-read";
  case Point::CacheWrite:
    return "cache-write";
  case Point::ConstraintGen:
    return "constraint-gen";
  case Point::SolverStep:
    return "solver-step";
  case Point::JournalAppend:
    return "journal-append";
  case Point::JournalFsync:
    return "journal-fsync";
  case Point::JournalSynced:
    return "journal-synced";
  case Point::SnapshotWrite:
    return "snapshot-write";
  case Point::SnapshotRename:
    return "snapshot-rename";
  case Point::JournalReset:
    return "journal-reset";
  }
  return "?";
}

bool seldon::fault::enabled() {
  return state().AnyArmed.load(std::memory_order_relaxed);
}

void seldon::fault::reset() {
  FaultState &S = state();
  S.AnyArmed.store(false, std::memory_order_relaxed);
  for (PointState &P : S.Points)
    P.clear();
}

bool seldon::fault::configure(const std::string &Spec, std::string *Error) {
  reset();
  bool Armed = false;
  for (std::string_view Item : splitString(Spec, ',')) {
    Item = trim(Item);
    if (Item.empty())
      continue;
    // `crash:` turns the item into a process-crash arm.
    bool Crash = false;
    constexpr std::string_view CrashPrefix = "crash:";
    if (Item.substr(0, CrashPrefix.size()) == CrashPrefix) {
      Crash = true;
      Item = Item.substr(CrashPrefix.size());
    }
    size_t Colon = Item.find(':');
    if (Colon == std::string_view::npos) {
      if (Error)
        *Error = "fault item '" + std::string(Item) +
                 "' is not of the form [crash:]point:key";
      reset();
      return false;
    }
    std::string Name(trim(Item.substr(0, Colon)));
    std::string Key(trim(Item.substr(Colon + 1)));

    int Found = -1;
    for (int P = 0; P < NumPoints; ++P)
      if (Name == pointName(static_cast<Point>(P)))
        Found = P;
    if (Found < 0) {
      if (Error)
        *Error = "unknown fault point '" + Name + "'";
      reset();
      return false;
    }

    PointState &PS = state().Points[Found];
    if (Key == "*") {
      (Crash ? PS.CrashAll : PS.All) = true;
    } else {
      errno = 0;
      char *End = nullptr;
      unsigned long long Value = std::strtoull(Key.c_str(), &End, 10);
      if (Key.empty() || *End != '\0' || errno == ERANGE) {
        if (Error)
          *Error = "fault key '" + Key + "' for point '" + Name +
                   "' is not a non-negative integer or '*'";
        reset();
        return false;
      }
      (Crash ? PS.CrashKeys : PS.Keys)
          .emplace_back(static_cast<uint64_t>(Value));
    }
    Armed = true;
  }
  state().AnyArmed.store(Armed, std::memory_order_relaxed);
  return true;
}

bool seldon::fault::configureFromEnv(std::string *Error) {
  const char *Spec = std::getenv("SELDON_FAULT");
  if (!Spec || !*Spec)
    return true;
  return configure(Spec, Error);
}

namespace {

/// Shared matcher for the throwing and crash arm sets of one point.
bool tripArm(PointState &PS, bool All, std::vector<ArmedKey> &Keys,
             uint64_t Key) {
  if (All) {
    PS.Trips.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  for (ArmedKey &A : Keys) {
    if (A.Key != Key)
      continue;
    // One-shot: the first evaluation wins the exchange and trips; a retry
    // of the same work item sees the fault consumed.
    if (!A.Consumed.exchange(true, std::memory_order_relaxed)) {
      PS.Trips.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

} // namespace

bool seldon::fault::shouldTrip(Point P, uint64_t Key) {
  FaultState &S = state();
  if (!S.AnyArmed.load(std::memory_order_relaxed))
    return false;
  PointState &PS = S.Points[static_cast<int>(P)];
  return tripArm(PS, PS.All, PS.Keys, Key);
}

bool seldon::fault::crashArmed(Point P, uint64_t Key) {
  FaultState &S = state();
  if (!S.AnyArmed.load(std::memory_order_relaxed))
    return false;
  PointState &PS = S.Points[static_cast<int>(P)];
  return tripArm(PS, PS.CrashAll, PS.CrashKeys, Key);
}

void seldon::fault::crashExit(Point P, uint64_t Key) {
  std::fprintf(stderr, "injected crash at %s #%llu\n", pointName(P),
               static_cast<unsigned long long>(Key));
  std::fflush(stderr);
  // _Exit: no destructors, no atexit, no stream flushes — pending writes
  // that the call site did not explicitly push to the OS are lost, which
  // is exactly the crash model the recovery harness needs.
  std::_Exit(CrashExitCode);
}

void seldon::fault::maybeCrash(Point P, uint64_t Key) {
  if (crashArmed(P, Key))
    crashExit(P, Key);
}

void seldon::fault::maybeThrow(Point P, uint64_t Key) {
  if (shouldTrip(P, Key))
    throw InjectedFault(std::string("injected fault at ") + pointName(P) +
                        " #" + std::to_string(Key));
}

uint64_t seldon::fault::tripCount(Point P) {
  return state().Points[static_cast<int>(P)].Trips.load(
      std::memory_order_relaxed);
}

uint64_t seldon::fault::totalTrips() {
  uint64_t Total = 0;
  for (int P = 0; P < NumPoints; ++P)
    Total += tripCount(static_cast<Point>(P));
  return Total;
}
