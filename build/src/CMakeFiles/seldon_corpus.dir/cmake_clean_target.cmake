file(REMOVE_RECURSE
  "libseldon_corpus.a"
)
