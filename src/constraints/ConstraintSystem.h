//===- constraints/ConstraintSystem.h - Generated system ---------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The output of constraint generation: the soft information-flow
/// constraints (paper §4.2/§4.3), the variable table, the pinned seed
/// variables (§4.1), and per-event candidate bookkeeping used by the
/// evaluation (Tab. 1 statistics and precision sampling).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CONSTRAINTS_CONSTRAINTSYSTEM_H
#define SELDON_CONSTRAINTS_CONSTRAINTSYSTEM_H

#include "constraints/VarTable.h"
#include "solver/CompiledObjective.h"
#include "solver/Objective.h"
#include "solver/SimdObjective.h"

#include <vector>

namespace seldon {
namespace constraints {

/// A generated constraint system ready for the solver.
struct ConstraintSystem {
  /// Soft constraints (Σ Lhs ≤ Σ Rhs + C form).
  std::vector<solver::LinearConstraint> Constraints;
  /// (rep, role) -> variable mapping.
  VarTable Vars;
  /// Seed pins: (variable, value in {0, 1}).
  std::vector<std::pair<VarId, double>> Pinned;

  /// Per-event surviving backoff options Reps(v) (after the frequency
  /// cutoff and the blacklist); empty entries mean the event is ignored.
  std::vector<std::vector<RepId>> EventReps;

  /// Number of events with a non-empty backoff set (Tab. 1 "# Candidates").
  size_t NumCandidates = 0;
  /// Mean |Reps(v)| over candidates (Tab. 1 "Average # backoff options").
  double AvgBackoffOptions = 0.0;

  /// Builds the solver objective (hinge relaxation + L1, Eq. 9) with the
  /// regularization strength \p Lambda.
  solver::Objective makeObjective(double Lambda) const;

  /// Compiles the system directly into the fused CSR form (same semantics
  /// as makeObjective; see solver/CompiledObjective.h).
  solver::CompiledObjective makeCompiledObjective(double Lambda) const;

  /// Compiles the system into the blocked SIMD form (same semantics; fp64
  /// is bit-identical to the compiled kernel — see solver/SimdObjective.h).
  solver::SimdObjective
  makeSimdObjective(double Lambda,
                    solver::SimdPrecision Precision =
                        solver::SimdPrecision::F64) const;
};

} // namespace constraints
} // namespace seldon

#endif // SELDON_CONSTRAINTS_CONSTRAINTSYSTEM_H
