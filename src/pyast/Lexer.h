//===- pyast/Lexer.h - Indentation-aware Python lexer ------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An indentation-aware lexer for the Python subset analyzed by Seldon.
///
/// Notable behaviours, matching CPython's tokenizer:
///  * INDENT/DEDENT tokens are synthesized from leading whitespace at
///    logical line starts; a tab advances the column to the next multiple
///    of 8.
///  * Newlines inside (), [] and {} are implicit line joins and produce no
///    NEWLINE token; `\` at end of line joins explicitly.
///  * Blank lines and comment-only lines produce no tokens.
///  * String prefixes (r, b, u, f, and combinations) are accepted; f-string
///    interpolations are not parsed (the literal text is kept verbatim),
///    which is sufficient for taint-irrelevant literals.
///  * Triple-quoted strings are supported (docstrings).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYAST_LEXER_H
#define SELDON_PYAST_LEXER_H

#include "pyast/Token.h"

#include <string>
#include <string_view>
#include <vector>

namespace seldon {
namespace pyast {

/// A lexer diagnostic (bad character, bad indentation, unterminated string).
struct LexError {
  uint32_t Line = 0;
  uint32_t Col = 0;
  std::string Message;
};

/// Tokenizes a whole buffer in one pass.
class Lexer {
public:
  explicit Lexer(std::string_view Source);

  /// Lexes the entire input. The returned stream always ends with
  /// outstanding DEDENTs followed by a single EndOfFile token.
  std::vector<Token> lexAll();

  /// Diagnostics produced while lexing (valid after lexAll()).
  const std::vector<LexError> &errors() const { return Errors; }

private:
  // Per-logical-line lexing.
  void lexLine(std::vector<Token> &Out);
  void lexNumber(std::vector<Token> &Out);
  void lexString(std::vector<Token> &Out, std::string Prefix);
  void lexOperator(std::vector<Token> &Out);
  bool handleIndentation(std::vector<Token> &Out);

  // Character helpers.
  char peek(size_t Ahead = 0) const;
  char advance();
  bool atEnd() const { return Pos >= Source.size(); }
  void error(const std::string &Message);
  Token makeToken(TokenKind Kind, std::string Text = std::string()) const;

  std::string_view Source;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  uint32_t TokLine = 1;
  uint32_t TokCol = 1;
  int BracketDepth = 0;
  std::vector<int> IndentStack{0};
  std::vector<LexError> Errors;
};

} // namespace pyast
} // namespace seldon

#endif // SELDON_PYAST_LEXER_H
