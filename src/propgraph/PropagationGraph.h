//===- propgraph/PropagationGraph.h - Information-flow graph -----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The propagation graph G = (V, E) of paper §3: nodes are events, directed
/// edges are information flow. Individual per-file graphs are appended into
/// one global graph for learning (§4, "Learning over a Global Propagation
/// Graph"); events of different files never share edges.
///
/// Also implements vertex contraction (collapsing events with the same
/// primary representation) used to reproduce Merlin's collapsed graphs
/// (paper §6.4, Fig. 7/8).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PROPGRAPH_PROPAGATIONGRAPH_H
#define SELDON_PROPGRAPH_PROPAGATIONGRAPH_H

#include "propgraph/Event.h"

#include <string>
#include <vector>

namespace seldon {
namespace propgraph {

/// A directed information-flow graph over events.
class PropagationGraph {
public:
  /// Registers a source file; events reference it by index.
  uint32_t addFile(std::string Path);

  /// Adds an event and returns its id. \p E.Id is assigned by the graph.
  EventId addEvent(Event E);

  /// Adds a flow edge \p From -> \p To. Self-edges and duplicates are
  /// silently dropped.
  void addEdge(EventId From, EventId To);

  const std::vector<Event> &events() const { return Events; }
  const Event &event(EventId Id) const { return Events[Id]; }
  Event &event(EventId Id) { return Events[Id]; }
  const std::vector<std::string> &files() const { return Files; }
  const std::string &fileOf(const Event &E) const { return Files[E.FileIdx]; }

  /// Successors (events receiving flow from \p Id).
  const std::vector<EventId> &successors(EventId Id) const {
    return Succ[Id];
  }
  /// Predecessors (events flowing into \p Id).
  const std::vector<EventId> &predecessors(EventId Id) const {
    return Pred[Id];
  }

  size_t numEvents() const { return Events.size(); }
  size_t numEdges() const { return EdgeCount; }

  /// Appends \p Other into this graph, remapping ids and file indices.
  /// The event sets stay disjoint, matching the global graph of §4.
  void append(const PropagationGraph &Other);

  /// Forward BFS from \p Start; returns all reachable events (excluding
  /// \p Start itself unless it lies on a cycle).
  std::vector<EventId> reachableFrom(EventId Start) const;

  /// Backward BFS from \p Start.
  std::vector<EventId> reachingTo(EventId Start) const;

  /// Vertex contraction: merges all events with equal primary
  /// representation into one node (Merlin's collapsed graph, §6.4).
  /// Candidate masks are unioned; the merged node keeps the union of all
  /// members' representation option lists (first occurrence order).
  PropagationGraph collapseByRep() const;

  /// True if the graph contains no directed cycle (the builder's output is
  /// acyclic by construction, §5.2; collapsed graphs may contain cycles).
  bool isAcyclic() const;

private:
  std::vector<Event> Events;
  std::vector<std::vector<EventId>> Succ;
  std::vector<std::vector<EventId>> Pred;
  std::vector<std::string> Files;
  size_t EdgeCount = 0;
};

} // namespace propgraph
} // namespace seldon

#endif // SELDON_PROPGRAPH_PROPAGATIONGRAPH_H
