//===- eval/ReportClassifier.cpp - Tab. 6 report categories ---------------===//

#include "eval/ReportClassifier.h"

#include "support/Rng.h"

#include <algorithm>

using namespace seldon;
using namespace seldon::eval;
using namespace seldon::propgraph;

const char *seldon::eval::reportCategoryName(ReportCategory C) {
  switch (C) {
  case ReportCategory::TrueVulnerability:
    return "True vulnerabilities";
  case ReportCategory::VulnerableNoBug:
    return "Vulnerable flow, but no bug";
  case ReportCategory::IncorrectSink:
    return "Incorrect sink";
  case ReportCategory::IncorrectSource:
    return "Incorrect source";
  case ReportCategory::IncorrectSourceAndSink:
    return "Incorrect source and sink";
  case ReportCategory::MissingSanitizer:
    return "Missing sanitizer";
  case ReportCategory::WrongParameter:
    return "Flows into wrong parameter";
  }
  return "unknown";
}

ReportCategory
seldon::eval::classifyReport(const PropagationGraph &Graph,
                             const taint::Violation &Report,
                             const corpus::GroundTruth &Truth,
                             const std::vector<corpus::GeneratedFlow> &Flows) {
  const Event &Src = Graph.event(Report.Source);
  const Event &Snk = Graph.event(Report.Sink);
  bool SrcTrue = Truth.anyTrue(Src.Reps, Role::Source);
  bool SnkTrue = Truth.anyTrue(Snk.Reps, Role::Sink);
  if (!SrcTrue && !SnkTrue)
    return ReportCategory::IncorrectSourceAndSink;
  if (!SnkTrue)
    return ReportCategory::IncorrectSink;
  if (!SrcTrue)
    return ReportCategory::IncorrectSource;

  // Both endpoints are real. If the witness path crosses a true sanitizer,
  // the specification missed it and the report is a false positive.
  for (size_t I = 1; I + 1 < Report.Path.size(); ++I)
    if (Truth.anyTrue(Graph.event(Report.Path[I]).Reps, Role::Sanitizer))
      return ReportCategory::MissingSanitizer;

  // Match the report against the generator's flow records for this file.
  const std::string &File = Graph.files()[Src.FileIdx];
  auto Matches = [&](const corpus::GeneratedFlow &F) {
    if (F.File != File)
      return false;
    bool SrcMatch = std::find(Src.Reps.begin(), Src.Reps.end(), F.SrcRep) !=
                    Src.Reps.end();
    bool SnkMatch = std::find(Snk.Reps.begin(), Snk.Reps.end(), F.SnkRep) !=
                    Snk.Reps.end();
    return SrcMatch && SnkMatch;
  };

  bool SawWrongParam = false, SawNonExploitable = false;
  for (const corpus::GeneratedFlow &F : Flows) {
    if (!Matches(F) || F.Sanitized)
      continue;
    if (F.WrongParam) {
      SawWrongParam = true;
      continue;
    }
    if (F.Exploitable)
      return ReportCategory::TrueVulnerability;
    SawNonExploitable = true;
  }
  if (SawNonExploitable)
    return ReportCategory::VulnerableNoBug;
  if (SawWrongParam)
    return ReportCategory::WrongParameter;
  // Incidental flow (e.g. through shared state) the generator did not plan:
  // endpoints are real but exploitability is not established.
  return ReportCategory::VulnerableNoBug;
}

ReportBreakdown seldon::eval::classifyReports(
    const PropagationGraph &Graph, const std::vector<taint::Violation> &Reports,
    const corpus::GroundTruth &Truth,
    const std::vector<corpus::GeneratedFlow> &Flows, size_t SampleSize,
    uint64_t SampleSeed) {
  std::vector<const taint::Violation *> Chosen;
  Chosen.reserve(Reports.size());
  for (const taint::Violation &R : Reports)
    Chosen.push_back(&R);
  if (SampleSize > 0 && Chosen.size() > SampleSize) {
    Rng Random(SampleSeed);
    Random.shuffle(Chosen);
    Chosen.resize(SampleSize);
  }
  ReportBreakdown Out;
  for (const taint::Violation *R : Chosen) {
    ReportCategory C = classifyReport(Graph, *R, Truth, Flows);
    ++Out.Counts[static_cast<size_t>(C)];
    ++Out.Total;
  }
  return Out;
}
