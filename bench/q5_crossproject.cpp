//===- bench/q5_crossproject.cpp - Paper §7.5 Q5 --------------------------===//
//
// Regenerates the Q5 experiment: does learning on a big dataset beat
// learning on a single project? Three random projects are trained (a)
// individually and (b) as part of the full corpus with the result
// projected onto each project's representations. The paper reports average
// precision rising from 45% to 65% plus 18 new true roles.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"

#include <iostream>
#include <unordered_set>

using namespace seldon;
using namespace seldon::eval;
using propgraph::Role;

namespace {

/// Representations occurring in one project's graph.
std::unordered_set<std::string> projectReps(const pysem::Project &Proj) {
  std::unordered_set<std::string> Out;
  propgraph::PropagationGraph G = propgraph::buildProjectGraph(Proj);
  for (const propgraph::Event &E : G.events())
    for (const std::string &Rep : E.Reps)
      Out.insert(Rep);
  return Out;
}

struct Tally {
  size_t Predicted = 0;
  size_t Correct = 0;
};

/// Precision of \p Learned restricted to \p Reps (the projection of a
/// global specification onto one project, §7.5 Q5).
Tally projectedPrecision(const spec::LearnedSpec &Learned,
                         const corpus::GroundTruth &Truth,
                         const spec::SeedSpec &Seed,
                         const std::unordered_set<std::string> &Reps) {
  Tally Out;
  for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
    for (const ScoredPrediction &P :
         predictionsAbove(Learned, Truth, Seed, R, ScoreThreshold)) {
      if (!Reps.count(P.Rep))
        continue;
      ++Out.Predicted;
      Out.Correct += P.Correct;
    }
  }
  return Out;
}

} // namespace

int main() {
  CorpusRun Run = runStandardExperiment(standardCorpusOptions(),
                                        standardPipelineOptions());
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();

  std::cout << "=== Q5: Impact of learning on a large dataset vs a single "
               "project ===\n\n";
  TablePrinter Table({"Project", "Individual: preds", "Individual: prec",
                      "Projected global: preds", "Projected global: prec",
                      "New true roles"});

  // Three deterministic "random" projects, as in the paper.
  size_t Indices[3] = {Run.Data.Projects.size() / 5,
                       Run.Data.Projects.size() / 2,
                       Run.Data.Projects.size() - 1};
  double IndivPrecSum = 0.0, GlobalPrecSum = 0.0;
  int Counted = 0;
  size_t TotalNewTrue = 0;
  for (size_t Idx : Indices) {
    const pysem::Project &Proj = Run.Data.Projects[Idx];
    std::unordered_set<std::string> Reps = projectReps(Proj);

    // (a) Train on this project alone (same seed specification). A single
    // project cannot meet the big-code frequency cutoff of 5, so the
    // individual run drops the cutoff entirely (most generous setting).
    infer::PipelineOptions SingleOpts = PipelineOpts;
    SingleOpts.Gen.RepCutoff = 1;
    propgraph::PropagationGraph G = propgraph::buildProjectGraph(Proj);
    infer::Session Single(SingleOpts);
    Single.adoptGraph(std::move(G));
    Single.generateConstraints(Run.Data.Seed);
    infer::PipelineResult Individual = Single.solve();

    Tally Indiv = projectedPrecision(Individual.Learned, Run.Data.Truth,
                                     Run.Data.Seed, Reps);
    Tally Global = projectedPrecision(Run.Pipeline.Learned, Run.Data.Truth,
                                      Run.Data.Seed, Reps);

    // New true roles: correct projected-global predictions the individual
    // run missed.
    size_t NewTrue = 0;
    for (Role R : {Role::Source, Role::Sanitizer, Role::Sink})
      for (const ScoredPrediction &P :
           predictionsAbove(Run.Pipeline.Learned, Run.Data.Truth,
                            Run.Data.Seed, R, ScoreThreshold)) {
        if (!Reps.count(P.Rep) || !P.Correct)
          continue;
        if (Individual.Learned.score(P.Rep, R) < ScoreThreshold)
          ++NewTrue;
      }
    TotalNewTrue += NewTrue;

    double IP = Indiv.Predicted
                    ? static_cast<double>(Indiv.Correct) / Indiv.Predicted
                    : 0.0;
    double GP = Global.Predicted
                    ? static_cast<double>(Global.Correct) / Global.Predicted
                    : 0.0;
    if (Indiv.Predicted || Global.Predicted) {
      IndivPrecSum += IP;
      GlobalPrecSum += GP;
      ++Counted;
    }
    Table.addRow({Proj.name(), std::to_string(Indiv.Predicted),
                  Indiv.Predicted ? percent(IP) : "n/a",
                  std::to_string(Global.Predicted),
                  Global.Predicted ? percent(GP) : "n/a",
                  std::to_string(NewTrue)});
  }
  Table.print(std::cout);

  if (Counted > 0)
    std::cout << formatString(
        "\nAverage precision: individual %s vs projected global %s; %zu "
        "new true roles in total.\n",
        percent(IndivPrecSum / Counted).c_str(),
        percent(GlobalPrecSum / Counted).c_str(), TotalNewTrue);
  std::cout << "Paper reference: 45% -> 65% average precision, 18 new true "
               "roles.\n";
  return 0;
}
