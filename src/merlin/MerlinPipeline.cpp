//===- merlin/MerlinPipeline.cpp - End-to-end Merlin baseline -------------===//

#include "merlin/MerlinPipeline.h"

#include "support/Metrics.h"
#include "support/Timer.h"

using namespace seldon;
using namespace seldon::merlin;
using namespace seldon::propgraph;

MerlinResult seldon::merlin::runMerlin(const PropagationGraph &Graph,
                                       const spec::SeedSpec &Seed,
                                       const MerlinOptions &Opts) {
  Timer Clock;
  MerlinResult Result;

  const PropagationGraph *Active = &Graph;
  PropagationGraph Collapsed;
  if (Opts.Collapsed) {
    Collapsed = Graph.collapseByRep();
    Active = &Collapsed;
  }

  MerlinModel Model = buildMerlinModel(*Active, Seed, Opts.Gen);
  Result.NumCandidates = Model.NumCandidates;
  Result.NumFactors = Model.Graph.numFactors();

  InferenceResult Inference;
  if (Opts.Method == InferenceMethod::BeliefPropagation) {
    LoopyBeliefPropagation Bp(Opts.Bp);
    Inference = Bp.run(Model.Graph);
  } else {
    GibbsSampler Gibbs(Opts.Gibbs);
    Inference = Gibbs.run(Model.Graph);
  }
  Result.TimedOut = Inference.TimedOut;
  Result.Converged = Inference.Converged;
  Result.Iterations = Inference.Iterations;

  for (const auto &[Rep, Slots] : Model.VarOf)
    for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
      int64_t V = Slots[static_cast<size_t>(R)];
      if (V >= 0)
        Result.Learned.setScore(Rep, R, Inference.Marginals[V]);
    }
  Result.Seconds = Clock.seconds();

  metrics::Registry &Reg = metrics::Registry::global();
  if (Reg.enabled()) {
    Reg.counter("merlin.runs").add();
    Reg.timer("merlin.solve_seconds").record(Result.Seconds);
    Reg.gauge("merlin.factors").set(static_cast<double>(Result.NumFactors));
    Reg.gauge("merlin.candidates")
        .set(static_cast<double>(Result.NumCandidates[0] +
                                 Result.NumCandidates[1] +
                                 Result.NumCandidates[2]));
    Reg.gauge("merlin.iterations")
        .set(static_cast<double>(Result.Iterations));
    Reg.gauge("merlin.converged").set(Result.Converged ? 1.0 : 0.0);
    Reg.gauge("merlin.timed_out").set(Result.TimedOut ? 1.0 : 0.0);
  }
  return Result;
}
