//===- merlin/GibbsSampler.cpp - MCMC inference fallback ------------------===//

#include "merlin/GibbsSampler.h"

#include "support/Rng.h"
#include "support/Timer.h"

using namespace seldon;
using namespace seldon::merlin;

InferenceResult GibbsSampler::run(const FactorGraph &Graph) const {
  Timer Clock;
  InferenceResult Result;
  const std::vector<Factor> &Factors = Graph.factors();
  const auto &VarFactors = Graph.varToFactors();
  const size_t NumVars = Graph.numVars();

  Rng Random(Options.Seed);
  std::vector<uint8_t> State(NumVars, 0);
  std::vector<double> Counts(NumVars, 0.0);
  int Kept = 0;

  // Conditional score of variable V taking value Val given the rest.
  auto ConditionalScore = [&](VarIdx V, uint8_t Val) {
    double Score = 1.0;
    for (uint32_t F : VarFactors[V]) {
      const Factor &Fac = Factors[F];
      size_t Bits = 0;
      for (size_t K = 0; K < Fac.arity(); ++K) {
        uint8_t Value = Fac.Vars[K] == V ? Val : State[Fac.Vars[K]];
        Bits |= static_cast<size_t>(Value) << K;
      }
      Score *= Fac.Table[Bits];
      if (Score == 0.0)
        return 0.0;
    }
    return Score;
  };

  int TotalSweeps = Options.BurnIn + Options.Samples;
  for (int Sweep = 0; Sweep < TotalSweeps; ++Sweep) {
    if (Options.TimeoutSeconds > 0.0 &&
        Clock.seconds() > Options.TimeoutSeconds) {
      Result.TimedOut = true;
      break;
    }
    for (VarIdx V = 0; V < NumVars; ++V) {
      double S0 = ConditionalScore(V, 0);
      double S1 = ConditionalScore(V, 1);
      double Sum = S0 + S1;
      if (Sum <= 0.0)
        continue; // Frozen by hard factors.
      State[V] = Random.nextDouble() < S1 / Sum ? 1 : 0;
    }
    Result.Iterations = Sweep + 1;
    if (Sweep >= Options.BurnIn) {
      ++Kept;
      for (VarIdx V = 0; V < NumVars; ++V)
        Counts[V] += State[V];
    }
  }

  Result.Marginals.assign(NumVars, 0.5);
  if (Kept > 0)
    for (VarIdx V = 0; V < NumVars; ++V)
      Result.Marginals[V] = Counts[V] / Kept;
  Result.Converged = !Result.TimedOut;
  Result.Seconds = Clock.seconds();
  return Result;
}
