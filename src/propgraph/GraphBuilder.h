//===- propgraph/GraphBuilder.h - AST -> propagation graph -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the propagation graph of a Python module (paper §5):
///
///  * events are function calls, object reads (attribute loads, subscripts)
///    and formal parameters (§5.1);
///  * calls propagate information from arguments (and the receiver) to
///    their result (§5.2);
///  * same-module functions and methods are "inlined": call arguments flow
///    into the callee's formal-parameter events and the callee's returned
///    events flow back into the call event (§5.2, Inlining Methods);
///  * collections propagate element flows to the whole container, and
///    `locals()` receives flow from every local variable (§5.2);
///  * loops are processed as a single iteration, keeping graphs acyclic;
///  * an Andersen points-to analysis connects attribute/subscript stores to
///    aliasing loads (§5.2, Points-to Analysis);
///  * every event carries representation options from most specific to
///    least specific, with class-based backoff for parameter-rooted paths
///    (§3.2: `ESCPOSDriver::status(param self).receipt()`,
///    `base.ThreadDriver::status(param self).receipt()`,
///    `status(param self).receipt()`, `self.receipt()`).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PROPGRAPH_GRAPHBUILDER_H
#define SELDON_PROPGRAPH_GRAPHBUILDER_H

#include "propgraph/PropagationGraph.h"
#include "pysem/Project.h"

namespace seldon {
namespace propgraph {

/// Tunables of the graph construction.
struct BuildOptions {
  /// Maximum depth of on-demand same-module inlining (paper: context bound
  /// of 8 method calls).
  int MaxInlineDepth = 8;
  /// Model the `locals()` builtin (§5.2).
  bool ModelLocals = true;
  /// Run the Andersen points-to pass to connect field stores to aliasing
  /// loads. Disabling it keeps only direct dataflow (used by ablations).
  bool UsePointsTo = true;
  /// Argument-position-sensitive mode: each call argument becomes its own
  /// sink-candidate event with representation `f()[arg0]` / `f()[kw:name]`,
  /// so an API can be a sink in one parameter and harmless in another —
  /// the differentiation paper §3.3 leaves as future work.
  bool ArgPositionReps = false;
  /// When a same-module call is inlined, drop the direct argument-to-call
  /// edges so flow routes exclusively through the callee's body. The paper
  /// keeps both (a call always propagates its arguments to its result,
  /// §5.2), which makes local sanitizer wrappers opaque to the analyzer
  /// until they are *learned*; this beyond-paper mode lets a seeded
  /// sanitizer inside a local wrapper suppress reports directly.
  bool PreciseInlining = false;
  /// Resolve calls to functions defined in *other modules of the same
  /// project* (`from utils import scrub`), wiring arguments to the
  /// callee's parameter events and returns back to the call. The paper
  /// treats all imported methods as having unknown bodies (§5.2); this
  /// beyond-paper mode recovers flows through project-local helper
  /// modules. Only affects buildProjectGraph.
  bool CrossModuleFlows = false;
};

/// Builds the propagation graph of one module of \p Proj. The graph
/// contains exactly one file entry.
PropagationGraph buildModuleGraph(const pysem::Project &Proj,
                                  const pysem::ModuleInfo &Module,
                                  const BuildOptions &Opts = BuildOptions());

/// Builds one graph covering every module of \p Proj (per-module subgraphs
/// are disjoint, as in the paper's global graph).
PropagationGraph buildProjectGraph(const pysem::Project &Proj,
                                   const BuildOptions &Opts = BuildOptions());

} // namespace propgraph
} // namespace seldon

#endif // SELDON_PROPGRAPH_GRAPHBUILDER_H
