//===- propgraph/GraphBuilder.cpp - AST -> propagation graph --------------===//

#include "propgraph/GraphBuilder.h"

#include "pointsto/AndersenSolver.h"
#include "pysem/ScopeBuilder.h"
#include "support/StrUtil.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>
#include <unordered_set>

using namespace seldon;
using namespace seldon::propgraph;
using namespace seldon::pyast;

namespace {

constexpr pointsto::VarId InvalidPtVar = ~static_cast<pointsto::VarId>(0);

/// The abstract value of an expression during the dataflow walk.
struct Value {
  /// Events whose information flows out of the expression.
  std::vector<EventId> Events;
  /// Symbolic path options (most -> least specific) used to render event
  /// representations; empty when the expression has no renderable path.
  std::vector<std::string> Paths;
  /// True while the path is a pure import-rooted attribute chain (a module
  /// or class path, not data) — such prefixes do not form events.
  bool PureModulePath = false;
  /// Name of the same-module class this value is an instance of (set for
  /// constructor-call results and `self`), enabling method inlining.
  std::string InstanceClass;
  /// Points-to variable holding the objects this value may denote.
  pointsto::VarId PtVar = InvalidPtVar;
};

/// A variable environment. Function environments start as copies of the
/// module environment (free names resolve to module globals).
using Env = std::unordered_map<std::string, Value>;

/// Summary of a processed function definition.
struct FunctionSummary {
  std::vector<EventId> ParamEvents; // Parallel to Def->Params.
  std::vector<EventId> ReturnEvents;
  bool InProgress = false;
  bool Processed = false;
};

/// Deferred field accesses resolved against the points-to solution.
struct FieldStore {
  pointsto::VarId Base;
  std::string Field;
  std::vector<EventId> Events;
};
struct FieldLoad {
  pointsto::VarId Base;
  std::string Field;
  EventId Target;
};

/// What one module build exports for project-level linking
/// (BuildOptions::CrossModuleFlows): its top-level functions and its calls
/// into other modules. Event ids refer to the module's own graph and are
/// offset when the graphs are appended.
struct ModuleArtifacts {
  struct ExportedFn {
    std::vector<std::pair<std::string, EventId>> Params; // (name, event)
    std::vector<EventId> Returns;
  };
  /// Qualified function name ("pkg.utils.scrub") -> interface events.
  std::unordered_map<std::string, ExportedFn> Exports;

  struct CallSite {
    std::string Target;        ///< Qualified callee name (no "()").
    std::string CallerPackage; ///< For implicit-relative lookup.
    EventId Call;
    std::vector<std::vector<EventId>> Args;
    std::vector<std::pair<std::string, std::vector<EventId>>> Kwargs;
  };
  std::vector<CallSite> Calls;

  /// Shifts every event id by \p Offset (after PropagationGraph::append).
  void offsetIds(EventId Offset) {
    for (auto &[Name, Fn] : Exports) {
      for (auto &[ParamName, Id] : Fn.Params)
        Id += Offset;
      for (EventId &Id : Fn.Returns)
        Id += Offset;
    }
    for (CallSite &C : Calls) {
      C.Call += Offset;
      for (auto &Events : C.Args)
        for (EventId &Id : Events)
          Id += Offset;
      for (auto &[Kw, Events] : C.Kwargs)
        for (EventId &Id : Events)
          Id += Offset;
    }
  }
};

/// Per-module graph construction state.
class ModuleGraphBuilder {
public:
  ModuleGraphBuilder(const pysem::ModuleInfo &Module, const BuildOptions &Opts,
                     ModuleArtifacts *Artifacts = nullptr)
      : Module(Module), Opts(Opts), Artifacts(Artifacts) {
    Scope.build(Module.Ast, Module.ModuleName);
    FileIdx = Graph.addFile(Module.Path);
  }

  PropagationGraph build() {
    // Pass 1: module-level statements; function bodies are processed on
    // demand when called, so module-level flow reaches them.
    runStmts(Module.Ast->Body, ModuleEnv, /*FnCtx=*/nullptr, /*Depth=*/0);

    // Pass 2: functions never called from module level still contribute
    // events and intraprocedural flow.
    processAllRemaining(Module.Ast->Body, /*EnclosingClass=*/nullptr);

    // Resolve alias-borne field flows against the points-to solution.
    if (Opts.UsePointsTo)
      connectFieldFlows();
    return std::move(Graph);
  }

private:
  //===--------------------------------------------------------------------===//
  // Event creation helpers
  //===--------------------------------------------------------------------===//

  EventId makeEvent(EventKind Kind, std::vector<std::string> Reps,
                    SourceLoc Loc) {
    assert(!Reps.empty());
    Event E;
    E.Kind = Kind;
    E.Reps = std::move(Reps);
    if (Kind == EventKind::Call)
      // In argument-position mode the per-argument events own the sink
      // role exclusively; the call itself can still be a source/sanitizer
      // (its return value).
      E.Candidates = Opts.ArgPositionReps
                         ? (SourceMask | SanitizerMask)
                         : AllRolesMask;
    else if (Kind == EventKind::CallArgument)
      E.Candidates = SinkMask;
    else
      E.Candidates = SourceMask;
    E.FileIdx = FileIdx;
    E.Loc = Loc;
    return Graph.addEvent(std::move(E));
  }

  void flowInto(const std::vector<EventId> &Sources, EventId Target) {
    for (EventId S : Sources)
      Graph.addEdge(S, Target);
  }

  /// Appends \p Link (".attr", "['k']", or "()") to every path option.
  static std::vector<std::string>
  extendPaths(const std::vector<std::string> &Paths, const std::string &Link) {
    std::vector<std::string> Out;
    Out.reserve(Paths.size());
    for (const std::string &P : Paths)
      Out.push_back(P + Link);
    return Out;
  }

  /// Path options for a value with no renderable path.
  static std::vector<std::string> unknownPath(const std::string &Link) {
    return {"<unknown>" + Link};
  }

  /// Root path options for parameter \p ParamName of function \p Fn
  /// defined in \p Class (may be null). Ordered most -> least specific:
  ///   Class::fn(param p), QualifiedBase::fn(param p), ..., fn(param p), p
  std::vector<std::string> paramRootPaths(const FunctionDefStmt *Fn,
                                          const pysem::ClassInfo *Class,
                                          const std::string &ParamName,
                                          bool IncludeBareName) const {
    std::vector<std::string> Out;
    std::string Suffix = Fn->Name + "(param " + ParamName + ")";
    if (Class) {
      Out.push_back(Class->Name + "::" + Suffix);
      for (const std::string &Base : Class->BaseQualNames)
        Out.push_back(Base + "::" + Suffix);
    }
    Out.push_back(Suffix);
    if (IncludeBareName)
      Out.push_back(ParamName);
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Points-to plumbing
  //===--------------------------------------------------------------------===//

  pointsto::VarId freshPtVar(const char *Tag) {
    return PT.makeVar(std::string(Tag) + "#" + std::to_string(PtTemp++));
  }

  /// The shared abstract instance object of a same-module class.
  pointsto::ObjId classInstanceObj(const std::string &ClassName) {
    auto It = ClassInstanceObjs.find(ClassName);
    if (It != ClassInstanceObjs.end())
      return It->second;
    pointsto::ObjId O = PT.makeObj("instance:" + ClassName);
    ClassInstanceObjs.emplace(ClassName, O);
    return O;
  }

  pointsto::VarId ptVarOf(Value &V, const char *Tag) {
    if (V.PtVar == InvalidPtVar)
      V.PtVar = freshPtVar(Tag);
    return V.PtVar;
  }

  void connectFieldFlows() {
    PT.solve();
    for (const FieldLoad &L : Loads) {
      for (const FieldStore &S : Stores) {
        if (S.Field != L.Field)
          continue;
        if (!PT.mayAlias(S.Base, L.Base))
          continue;
        flowInto(S.Events, L.Target);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Function processing
  //===--------------------------------------------------------------------===//

  /// Processes \p Fn (once), creating its parameter events and recording
  /// its return events. \p Class is the enclosing class for methods.
  FunctionSummary &processFunction(const FunctionDefStmt *Fn,
                                   const pysem::ClassInfo *Class, int Depth) {
    FunctionSummary &Summary = Summaries[Fn];
    if (Summary.Processed || Summary.InProgress)
      return Summary;
    Summary.InProgress = true;

    // Function scope: module globals visible, parameters bound.
    Env FnEnv = ModuleEnv;
    for (const Param &P : Fn->Params) {
      std::vector<std::string> EventReps =
          paramRootPaths(Fn, Class, P.Name, /*IncludeBareName=*/false);
      EventId PE = makeEvent(EventKind::FormalParam, EventReps, P.Loc);
      Summary.ParamEvents.push_back(PE);

      Value V;
      V.Events.push_back(PE);
      V.Paths = paramRootPaths(Fn, Class, P.Name, /*IncludeBareName=*/true);
      V.PtVar = freshPtVar("param");
      if (Class && &P == &Fn->Params.front()) {
        // Every method's `self` denotes the same abstract instance, so
        // fields written in one method are visible in another.
        V.InstanceClass = Class->Name;
        PT.addAlloc(V.PtVar, classInstanceObj(Class->Name));
      } else {
        PT.addAlloc(V.PtVar, PT.makeObj("param:" + EventReps.front()));
      }
      FnEnv[P.Name] = std::move(V);

      if (P.Default)
        evalExpr(P.Default, FnEnv, nullptr, Depth);
    }

    FnContext Ctx;
    Ctx.Summary = &Summary;
    runStmts(Fn->Body, FnEnv, &Ctx, Depth);

    // Decorators observe the function's results (e.g. a route handler's
    // response is consumed by the framework).
    for (const Expr *Dec : Fn->Decorators) {
      Value DV = evalExpr(Dec, ModuleEnv, nullptr, Depth);
      if (DV.Events.empty())
        continue;
      for (EventId R : Summary.ReturnEvents)
        Graph.addEdge(R, DV.Events.front());
    }

    Summary.InProgress = false;
    Summary.Processed = true;

    // Export top-level functions for project-level linking.
    if (Artifacts && !Class) {
      ModuleArtifacts::ExportedFn Exported;
      for (size_t I = 0; I < Fn->Params.size(); ++I)
        Exported.Params.emplace_back(Fn->Params[I].Name,
                                     Summary.ParamEvents[I]);
      Exported.Returns = Summary.ReturnEvents;
      Artifacts->Exports[Module.ModuleName + "." + Fn->Name] =
          std::move(Exported);
    }
    return Summary;
  }

  void processAllRemaining(const std::vector<Stmt *> &Body,
                           const pysem::ClassInfo *EnclosingClass) {
    for (const Stmt *S : Body) {
      if (const auto *Fn = dyn_cast<FunctionDefStmt>(S)) {
        processFunction(Fn, EnclosingClass, /*Depth=*/0);
        // Nested defs are reached when the body was processed; scan anyway
        // in case processing was skipped by recursion guards.
        processAllRemaining(Fn->Body, EnclosingClass);
        continue;
      }
      if (const auto *C = dyn_cast<ClassDefStmt>(S)) {
        const pysem::ClassInfo *Info = Scope.lookupClass(C->Name);
        processAllRemaining(C->Body, Info);
        continue;
      }
      if (const auto *I = dyn_cast<IfStmt>(S)) {
        processAllRemaining(I->Then, EnclosingClass);
        processAllRemaining(I->Else, EnclosingClass);
      }
    }
  }

  //===--------------------------------------------------------------------===//
  // Statement walk
  //===--------------------------------------------------------------------===//

  struct FnContext {
    FunctionSummary *Summary = nullptr;
    /// Names declared `global` in this function: assignments write through
    /// to the module environment.
    std::unordered_set<std::string> Globals;
  };

  void runStmts(const std::vector<Stmt *> &Body, Env &E, FnContext *Fn,
                int Depth) {
    for (const Stmt *S : Body)
      runStmt(S, E, Fn, Depth);
  }

  void runStmt(const Stmt *S, Env &E, FnContext *Fn, int Depth) {
    switch (S->kind()) {
    case NodeKind::ExprStmt:
      evalExpr(cast<ExprStmt>(S)->Value, E, Fn, Depth);
      return;
    case NodeKind::Assign: {
      const auto *A = cast<AssignStmt>(S);
      Value V = evalExpr(A->Value, E, Fn, Depth);
      for (const Expr *T : A->Targets)
        assignTo(T, V, E, Fn, Depth);
      return;
    }
    case NodeKind::AugAssign: {
      const auto *A = cast<AugAssignStmt>(S);
      Value V = evalExpr(A->Value, E, Fn, Depth);
      if (const auto *Name = dyn_cast<NameExpr>(A->Target)) {
        Value &Old = E[Name->Id];
        for (EventId Id : V.Events)
          Old.Events.push_back(Id);
        Old.Paths.clear();
        Old.PureModulePath = false;
      } else {
        assignTo(A->Target, V, E, Fn, Depth);
      }
      return;
    }
    case NodeKind::AnnAssign: {
      const auto *A = cast<AnnAssignStmt>(S);
      if (A->Value) {
        Value V = evalExpr(A->Value, E, Fn, Depth);
        assignTo(A->Target, V, E, Fn, Depth);
      }
      return;
    }
    case NodeKind::Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (!R->Value)
        return;
      Value V = evalExpr(R->Value, E, Fn, Depth);
      if (Fn && Fn->Summary)
        for (EventId Id : V.Events)
          Fn->Summary->ReturnEvents.push_back(Id);
      return;
    }
    case NodeKind::If: {
      const auto *I = cast<IfStmt>(S);
      evalExpr(I->Cond, E, Fn, Depth);
      Env ThenEnv = E, ElseEnv = E;
      runStmts(I->Then, ThenEnv, Fn, Depth);
      runStmts(I->Else, ElseEnv, Fn, Depth);
      E = mergeEnvs(ThenEnv, ElseEnv);
      return;
    }
    case NodeKind::While: {
      const auto *W = cast<WhileStmt>(S);
      evalExpr(W->Cond, E, Fn, Depth);
      runStmts(W->Body, E, Fn, Depth); // Single iteration (§5.2).
      runStmts(W->Else, E, Fn, Depth);
      return;
    }
    case NodeKind::For: {
      const auto *F = cast<ForStmt>(S);
      Value Iter = evalExpr(F->Iter, E, Fn, Depth);
      Value Elem;
      Elem.Events = Iter.Events; // Reading an element of a tainted
                                 // collection yields tainted data.
      Elem.PtVar = freshPtVar("iter");
      if (Iter.PtVar != InvalidPtVar)
        PT.addLoad(Elem.PtVar, Iter.PtVar, "$elem");
      assignTo(F->Target, Elem, E, Fn, Depth);
      runStmts(F->Body, E, Fn, Depth);
      runStmts(F->Else, E, Fn, Depth);
      return;
    }
    case NodeKind::With: {
      const auto *W = cast<WithStmt>(S);
      for (const WithItem &Item : W->Items) {
        Value Ctx = evalExpr(Item.ContextExpr, E, Fn, Depth);
        if (Item.OptionalVars)
          assignTo(Item.OptionalVars, Ctx, E, Fn, Depth);
      }
      runStmts(W->Body, E, Fn, Depth);
      return;
    }
    case NodeKind::Try: {
      const auto *T = cast<TryStmt>(S);
      runStmts(T->Body, E, Fn, Depth);
      for (const ExceptHandler &H : T->Handlers)
        runStmts(H.Body, E, Fn, Depth);
      runStmts(T->OrElse, E, Fn, Depth);
      runStmts(T->Finally, E, Fn, Depth);
      return;
    }
    case NodeKind::Raise: {
      const auto *R = cast<RaiseStmt>(S);
      if (R->Exc)
        evalExpr(R->Exc, E, Fn, Depth);
      return;
    }
    case NodeKind::Assert: {
      const auto *A = cast<AssertStmt>(S);
      evalExpr(A->Test, E, Fn, Depth);
      if (A->Msg)
        evalExpr(A->Msg, E, Fn, Depth);
      return;
    }
    case NodeKind::Delete:
      for (const Expr *T : cast<DeleteStmt>(S)->Targets)
        if (const auto *Name = dyn_cast<NameExpr>(T))
          E.erase(Name->Id);
      return;
    case NodeKind::Global:
      if (Fn)
        for (const std::string &Name : cast<GlobalStmt>(S)->Names)
          Fn->Globals.insert(Name);
      return;
    case NodeKind::FunctionDef:
      // Processed on demand at call sites or in pass 2; nothing flows here.
      return;
    case NodeKind::ClassDef: {
      // Class-body assignments (class attributes) run in a scratch env; the
      // contained method defs are processed on demand / in pass 2.
      const auto *C = cast<ClassDefStmt>(S);
      Env ClassEnv = E;
      for (const Stmt *Member : C->Body)
        if (!isa<FunctionDefStmt>(Member))
          runStmt(Member, ClassEnv, Fn, Depth);
      for (const Expr *Base : C->Bases)
        evalExpr(Base, E, Fn, Depth);
      return;
    }
    default:
      return; // pass/break/continue/import/global — no dataflow.
    }
  }

  Env mergeEnvs(const Env &A, const Env &B) {
    Env Out = A;
    for (const auto &[Name, VB] : B) {
      auto It = Out.find(Name);
      if (It == Out.end()) {
        Out.emplace(Name, VB);
        continue;
      }
      Value &VA = It->second;
      for (EventId Id : VB.Events)
        if (std::find(VA.Events.begin(), VA.Events.end(), Id) ==
            VA.Events.end())
          VA.Events.push_back(Id);
      if (VA.Paths != VB.Paths) {
        VA.Paths.clear();
        VA.PureModulePath = false;
      }
      if (VA.InstanceClass != VB.InstanceClass)
        VA.InstanceClass.clear();
      if (VA.PtVar == InvalidPtVar)
        VA.PtVar = VB.PtVar;
      else if (VB.PtVar != InvalidPtVar && VB.PtVar != VA.PtVar) {
        pointsto::VarId Merged = freshPtVar("phi");
        PT.addCopy(Merged, VA.PtVar);
        PT.addCopy(Merged, VB.PtVar);
        VA.PtVar = Merged;
      }
    }
    return Out;
  }

  void assignTo(const Expr *Target, const Value &V, Env &E, FnContext *Fn,
                int Depth) {
    switch (Target->kind()) {
    case NodeKind::Name: {
      const std::string &Name = cast<NameExpr>(Target)->Id;
      E[Name] = V;
      // `global x` makes the assignment visible at module scope, where
      // later-processed functions pick it up through their initial env.
      if (Fn && Fn->Globals.count(Name))
        ModuleEnv[Name] = V;
      return;
    }
    case NodeKind::Tuple:
    case NodeKind::List: {
      const auto &Elements = Target->kind() == NodeKind::Tuple
                                 ? cast<TupleExpr>(Target)->Elements
                                 : cast<ListExpr>(Target)->Elements;
      Value Elem;
      Elem.Events = V.Events; // Unpacking spreads the flow (over-approx).
      Elem.PtVar = V.PtVar;
      for (const Expr *T : Elements)
        assignTo(T, Elem, E, Fn, Depth);
      return;
    }
    case NodeKind::Starred:
      assignTo(cast<StarredExpr>(Target)->Value, V, E, Fn, Depth);
      return;
    case NodeKind::Attribute: {
      const auto *A = cast<AttributeExpr>(Target);
      Value Base = evalExpr(A->Value, E, Fn, Depth);
      recordFieldStore(Base, A->Attr, V);
      return;
    }
    case NodeKind::Subscript: {
      const auto *Sub = cast<SubscriptExpr>(Target);
      Value Base = evalExpr(Sub->Value, E, Fn, Depth);
      evalExpr(Sub->Index, E, Fn, Depth);
      recordFieldStore(Base, "$elem", V);
      return;
    }
    default:
      return;
    }
  }

  void recordFieldStore(Value &Base, const std::string &Field,
                        const Value &V) {
    if (!Opts.UsePointsTo || V.Events.empty())
      return;
    pointsto::VarId BaseVar = ptVarOf(Base, "storebase");
    Stores.push_back({BaseVar, Field, V.Events});
    if (V.PtVar != InvalidPtVar)
      PT.addStore(BaseVar, Field, V.PtVar);
  }

  //===--------------------------------------------------------------------===//
  // Expression walk
  //===--------------------------------------------------------------------===//

  Value evalExpr(const Expr *Ex, Env &E, FnContext *Fn, int Depth) {
    return evalExprCtx(Ex, E, Fn, Depth, /*BasePosition=*/false);
  }

  /// \p BasePosition is true when the result is only used as the base of a
  /// longer attribute/subscript/call chain — pure module-path prefixes then
  /// stay path-only and do not become events.
  Value evalExprCtx(const Expr *Ex, Env &E, FnContext *Fn, int Depth,
                    bool BasePosition) {
    switch (Ex->kind()) {
    case NodeKind::Name:
      return evalName(cast<NameExpr>(Ex), E);
    case NodeKind::Attribute:
      return evalAttribute(cast<AttributeExpr>(Ex), E, Fn, Depth,
                           BasePosition);
    case NodeKind::Subscript:
      return evalSubscript(cast<SubscriptExpr>(Ex), E, Fn, Depth);
    case NodeKind::Call:
      return evalCall(cast<CallExpr>(Ex), E, Fn, Depth);
    case NodeKind::Binary: {
      const auto *B = cast<BinaryExpr>(Ex);
      Value L = evalExpr(B->Lhs, E, Fn, Depth);
      Value R = evalExpr(B->Rhs, E, Fn, Depth);
      Value Out;
      Out.Events = unionEvents(L.Events, R.Events);
      return Out;
    }
    case NodeKind::Unary:
      return evalExpr(cast<UnaryExpr>(Ex)->Operand, E, Fn, Depth);
    case NodeKind::BoolOp: {
      Value Out;
      Out.PtVar = freshPtVar("boolop");
      for (const Expr *Op : cast<BoolOpExpr>(Ex)->Operands) {
        Value V = evalExpr(Op, E, Fn, Depth);
        Out.Events = unionEvents(Out.Events, V.Events);
        if (V.PtVar != InvalidPtVar)
          PT.addCopy(Out.PtVar, V.PtVar);
      }
      return Out;
    }
    case NodeKind::Compare: {
      const auto *C = cast<CompareExpr>(Ex);
      evalExpr(C->First, E, Fn, Depth);
      for (const Expr *Cmp : C->Comparators)
        evalExpr(Cmp, E, Fn, Depth);
      return Value{}; // Comparisons yield booleans; no taint propagation.
    }
    case NodeKind::Conditional: {
      const auto *C = cast<ConditionalExpr>(Ex);
      evalExpr(C->Cond, E, Fn, Depth);
      Value A = evalExpr(C->Body, E, Fn, Depth);
      Value B = evalExpr(C->OrElse, E, Fn, Depth);
      Value Out;
      Out.Events = unionEvents(A.Events, B.Events);
      return Out;
    }
    case NodeKind::List:
    case NodeKind::Tuple:
    case NodeKind::Set:
    case NodeKind::Dict:
      return evalDisplay(Ex, E, Fn, Depth);
    case NodeKind::Comprehension: {
      const auto *C = cast<ComprehensionExpr>(Ex);
      Value Iter = evalExpr(C->Iter, E, Fn, Depth);
      Env Inner = E;
      Value Elem;
      Elem.Events = Iter.Events;
      assignTo(C->Target, Elem, Inner, Fn, Depth);
      if (C->Cond)
        evalExpr(C->Cond, Inner, Fn, Depth);
      Value Out;
      if (C->KeyElement)
        evalExpr(C->KeyElement, Inner, Fn, Depth);
      Value Body = evalExpr(C->Element, Inner, Fn, Depth);
      Out.Events = unionEvents(Body.Events, Iter.Events);
      return Out;
    }
    case NodeKind::JoinedStr: {
      // f-strings propagate every interpolated value (f"q={user_input}").
      Value Out;
      for (const Expr *Part : cast<JoinedStrExpr>(Ex)->Interpolations) {
        Value V = evalExpr(Part, E, Fn, Depth);
        Out.Events = unionEvents(Out.Events, V.Events);
      }
      return Out;
    }
    case NodeKind::Starred:
      return evalExpr(cast<StarredExpr>(Ex)->Value, E, Fn, Depth);
    case NodeKind::Lambda:
      // Treated as opaque (the body runs elsewhere); no flow modeled.
      return Value{};
    case NodeKind::Yield: {
      const auto *Y = cast<YieldExpr>(Ex);
      if (Y->Value) {
        // Yielded values are results of the function (like returns).
        Value V = evalExpr(Y->Value, E, Fn, Depth);
        if (Fn && Fn->Summary)
          for (EventId Id : V.Events)
            Fn->Summary->ReturnEvents.push_back(Id);
      }
      return Value{};
    }
    case NodeKind::Slice: {
      const auto *S = cast<SliceExpr>(Ex);
      if (S->Lower)
        evalExpr(S->Lower, E, Fn, Depth);
      if (S->Upper)
        evalExpr(S->Upper, E, Fn, Depth);
      if (S->Step)
        evalExpr(S->Step, E, Fn, Depth);
      return Value{};
    }
    default:
      return Value{}; // Literals carry no taint.
    }
  }

  Value evalName(const NameExpr *Name, Env &E) {
    auto It = E.find(Name->Id);
    if (It != E.end())
      return It->second;
    Value V;
    if (std::optional<std::string> Qual =
            Scope.imports().resolveRoot(Name->Id)) {
      V.Paths = {*Qual};
      V.PureModulePath = true;
    } else {
      // Unknown free name: builtin, star import, or late-bound global.
      V.Paths = {Name->Id};
      V.PureModulePath = true;
    }
    return V;
  }

  /// Renders a subscript link: "['key']", "[3]", or "[]".
  static std::string subscriptLink(const Expr *Index) {
    if (const auto *S = dyn_cast<StringExpr>(Index))
      return "['" + S->Value + "']";
    if (const auto *N = dyn_cast<NumberExpr>(Index))
      return "[" + N->Spelling + "]";
    return "[]";
  }

  Value evalAttribute(const AttributeExpr *A, Env &E, FnContext *Fn,
                      int Depth, bool BasePosition) {
    Value Base = evalExprCtx(A->Value, E, Fn, Depth, /*BasePosition=*/true);
    std::string Link = "." + A->Attr;
    Value Out;
    Out.Paths = Base.Paths.empty() ? unknownPath(Link)
                                   : extendPaths(Base.Paths, Link);
    Out.PureModulePath = Base.PureModulePath;
    Out.InstanceClass = Base.InstanceClass;

    // Pure module-path prefixes (e.g. `os.path` inside `os.path.join`) are
    // paths, not data reads; only the outermost use becomes an event.
    if (BasePosition && Base.PureModulePath && Base.Events.empty())
      return Out;

    EventId Read = makeEvent(EventKind::ObjectRead, Out.Paths, A->loc());
    flowInto(Base.Events, Read);
    Out.Events = {Read};
    Out.PureModulePath = false;
    Out.InstanceClass.clear();
    if (Opts.UsePointsTo) {
      Out.PtVar = freshPtVar("attr");
      if (Base.PtVar != InvalidPtVar)
        PT.addLoad(Out.PtVar, Base.PtVar, A->Attr);
      pointsto::VarId BaseVar = ptVarOf(Base, "loadbase");
      Loads.push_back({BaseVar, A->Attr, Read});
    }
    return Out;
  }

  Value evalSubscript(const SubscriptExpr *S, Env &E, FnContext *Fn,
                      int Depth) {
    Value Base = evalExprCtx(S->Value, E, Fn, Depth, /*BasePosition=*/true);
    Value Index = evalExpr(S->Index, E, Fn, Depth);
    std::string Link = subscriptLink(S->Index);
    Value Out;
    Out.Paths = Base.Paths.empty() ? unknownPath(Link)
                                   : extendPaths(Base.Paths, Link);

    EventId Read = makeEvent(EventKind::ObjectRead, Out.Paths, S->loc());
    flowInto(Base.Events, Read);
    Out.Events = {Read};
    if (Opts.UsePointsTo) {
      Out.PtVar = freshPtVar("subscript");
      if (Base.PtVar != InvalidPtVar)
        PT.addLoad(Out.PtVar, Base.PtVar, "$elem");
      pointsto::VarId BaseVar = ptVarOf(Base, "loadbase");
      Loads.push_back({BaseVar, "$elem", Read});
    }
    return Out;
  }

  Value evalDisplay(const Expr *Ex, Env &E, FnContext *Fn, int Depth) {
    // Containers: information flows from every entry to the container
    // (§5.2, Data Structures).
    std::vector<const Expr *> Parts;
    if (const auto *L = dyn_cast<ListExpr>(Ex))
      for (const Expr *El : L->Elements)
        Parts.push_back(El);
    if (const auto *T = dyn_cast<TupleExpr>(Ex))
      for (const Expr *El : T->Elements)
        Parts.push_back(El);
    if (const auto *S = dyn_cast<SetExpr>(Ex))
      for (const Expr *El : S->Elements)
        Parts.push_back(El);
    if (const auto *D = dyn_cast<DictExpr>(Ex)) {
      for (const Expr *K : D->Keys)
        if (K)
          Parts.push_back(K);
      for (const Expr *V : D->Values)
        Parts.push_back(V);
    }
    Value Out;
    if (Opts.UsePointsTo) {
      Out.PtVar = freshPtVar("container");
      PT.addAlloc(Out.PtVar, PT.makeObj("container@" +
                                        std::to_string(Ex->loc().Line)));
    }
    for (const Expr *P : Parts) {
      Value V = evalExpr(P, E, Fn, Depth);
      Out.Events = unionEvents(Out.Events, V.Events);
      if (Opts.UsePointsTo && V.PtVar != InvalidPtVar)
        PT.addStore(Out.PtVar, "$elem", V.PtVar);
    }
    return Out;
  }

  Value evalCall(const CallExpr *C, Env &E, FnContext *Fn, int Depth) {
    // Evaluate arguments first.
    std::vector<Value> ArgValues;
    for (const Expr *Arg : C->Args)
      ArgValues.push_back(evalExpr(Arg, E, Fn, Depth));
    std::vector<std::pair<std::string, Value>> KwValues;
    for (const KeywordArg &K : C->Keywords)
      KwValues.emplace_back(K.Name, evalExpr(K.Value, E, Fn, Depth));

    // Identify the callee target and render representation options.
    Value Receiver;          // For method calls: the object flowed through.
    std::vector<std::string> RepOptions;
    std::string CrossModuleTarget; // Import-resolved callee (if any).
    const FunctionDefStmt *LocalTarget = nullptr;
    const pysem::ClassInfo *LocalTargetClass = nullptr;
    const pysem::ClassInfo *ConstructedClass = nullptr;
    bool CalleeIsLocals = false;

    if (const auto *Name = dyn_cast<NameExpr>(C->Callee)) {
      if (E.find(Name->Id) == E.end()) {
        if (const FunctionDefStmt *Local = Scope.lookupFunction(Name->Id)) {
          LocalTarget = Local;
          RepOptions = {Module.ModuleName + "." + Name->Id + "()",
                        Name->Id + "()"};
        } else if (const pysem::ClassInfo *Cls = Scope.lookupClass(Name->Id)) {
          ConstructedClass = Cls;
          RepOptions = {Module.ModuleName + "." + Name->Id + "()",
                        Name->Id + "()"};
        } else if (std::optional<std::string> Qual =
                       Scope.imports().resolveRoot(Name->Id)) {
          RepOptions = {*Qual + "()"};
          CrossModuleTarget = *Qual;
        } else {
          if (Opts.ModelLocals && Name->Id == "locals")
            CalleeIsLocals = true;
          RepOptions = {Name->Id + "()"};
        }
      } else {
        // Calling a local variable (bound lambda / aliased function).
        Value V = E[Name->Id];
        Receiver = V;
        RepOptions = V.Paths.empty() ? unknownPath("()")
                                     : extendPaths(V.Paths, "()");
      }
    } else if (const auto *Attr = dyn_cast<AttributeExpr>(C->Callee)) {
      Receiver = evalExprCtx(Attr->Value, E, Fn, Depth, /*BasePosition=*/true);
      std::string Link = "." + Attr->Attr + "()";
      RepOptions = Receiver.Paths.empty()
                       ? unknownPath(Link)
                       : extendPaths(Receiver.Paths, Link);
      if (Receiver.PureModulePath && Receiver.Paths.size() == 1)
        CrossModuleTarget = Receiver.Paths.front() + "." + Attr->Attr;
      // Method call on a known same-module instance (including `self`).
      if (!Receiver.InstanceClass.empty()) {
        LocalTarget = Scope.lookupMethod(Receiver.InstanceClass, Attr->Attr);
        LocalTargetClass = Scope.lookupClass(Receiver.InstanceClass);
      }
    } else {
      Value V = evalExprCtx(C->Callee, E, Fn, Depth, /*BasePosition=*/true);
      Receiver = V;
      RepOptions =
          V.Paths.empty() ? unknownPath("()") : extendPaths(V.Paths, "()");
    }

    EventId Call = makeEvent(EventKind::Call, RepOptions, C->loc());

    // When project-level linking will try to resolve this call, defer the
    // direct argument edges: a linked call routes its arguments through
    // the callee's parameters instead (falling back to direct edges when
    // no project module exports the target).
    bool DeferArgEdges = Artifacts && !CrossModuleTarget.empty() &&
                         !Opts.ArgPositionReps;
    // Precise inlining: a successfully inlined same-module call likewise
    // routes flow only through the callee's body.
    if (Opts.PreciseInlining && !Opts.ArgPositionReps &&
        Depth < Opts.MaxInlineDepth) {
      const FunctionDefStmt *Probe = LocalTarget;
      if (!Probe && ConstructedClass) {
        auto It = ConstructedClass->Methods.find("__init__");
        if (It != ConstructedClass->Methods.end())
          Probe = It->second;
      }
      if (Probe) {
        auto It = Summaries.find(Probe);
        // Only defer when the summary is (or will be) usable: a function
        // currently being processed (recursion) keeps direct edges.
        if (It == Summaries.end() || !It->second.InProgress)
          DeferArgEdges = true;
      }
    }

    // Arguments and the receiver flow into the call (§5.2). In
    // argument-position-sensitive mode each argument is interposed with
    // its own sink-candidate event (paper §3.3's future work).
    if (DeferArgEdges) {
      // Edges added by the linking pass in buildProjectGraph.
    } else if (Opts.ArgPositionReps) {
      auto MakeArgEvent = [&](const std::string &Slot,
                              const std::vector<EventId> &Events) {
        if (Events.empty())
          return;
        EventId AE = makeEvent(EventKind::CallArgument,
                               extendPaths(RepOptions, Slot), C->loc());
        flowInto(Events, AE);
        Graph.addEdge(AE, Call);
      };
      for (size_t I = 0; I < ArgValues.size(); ++I)
        MakeArgEvent("[arg" + std::to_string(I) + "]", ArgValues[I].Events);
      for (const auto &[Kw, KV] : KwValues)
        MakeArgEvent(Kw.empty() ? std::string("[kwargs]") : "[kw:" + Kw + "]",
                     KV.Events);
    } else {
      for (const Value &AV : ArgValues)
        flowInto(AV.Events, Call);
      for (const auto &[Kw, KV] : KwValues)
        flowInto(KV.Events, Call);
    }
    flowInto(Receiver.Events, Call);

    if (CalleeIsLocals) {
      // locals() receives flow from every local variable (§5.2).
      for (const auto &[VarName, VarValue] : E)
        flowInto(VarValue.Events, Call);
    }

    if (Artifacts && !CrossModuleTarget.empty() && !Opts.ArgPositionReps) {
      ModuleArtifacts::CallSite Site;
      Site.Target = std::move(CrossModuleTarget);
      std::vector<std::string> Parts =
          splitString(Module.ModuleName, '.');
      Parts.pop_back();
      Site.CallerPackage = joinStrings(Parts, ".");
      Site.Call = Call;
      for (const Value &AV : ArgValues)
        Site.Args.push_back(AV.Events);
      for (const auto &[Kw, KV] : KwValues)
        Site.Kwargs.emplace_back(Kw, KV.Events);
      Artifacts->Calls.push_back(std::move(Site));
    }

    // Same-module inlining: wire arguments to parameter events and returns
    // back to the call event (§5.2, Inlining Methods).
    const FunctionDefStmt *InlineFn = LocalTarget;
    const pysem::ClassInfo *InlineClass = LocalTargetClass;
    if (!InlineFn && ConstructedClass) {
      auto It = ConstructedClass->Methods.find("__init__");
      if (It != ConstructedClass->Methods.end()) {
        InlineFn = It->second;
        InlineClass = ConstructedClass;
      }
    }
    bool InlinedPrecisely = false;
    if (InlineFn && Depth < Opts.MaxInlineDepth) {
      FunctionSummary &Summary =
          processFunction(InlineFn, InlineClass, Depth + 1);
      if (Summary.Processed) {
        InlinedPrecisely = true;
        // Positional arguments: methods get the receiver as `self`.
        size_t ParamBase = InlineClass ? 1 : 0;
        if (InlineClass && !Summary.ParamEvents.empty())
          flowInto(Receiver.Events, Summary.ParamEvents[0]);
        for (size_t I = 0; I < ArgValues.size(); ++I) {
          size_t ParamIdx = ParamBase + I;
          if (ParamIdx >= Summary.ParamEvents.size())
            break;
          flowInto(ArgValues[I].Events, Summary.ParamEvents[ParamIdx]);
        }
        for (const auto &[Kw, KV] : KwValues) {
          for (size_t P = 0; P < InlineFn->Params.size(); ++P)
            if (InlineFn->Params[P].Name == Kw)
              flowInto(KV.Events, Summary.ParamEvents[P]);
        }
        for (EventId R : Summary.ReturnEvents)
          Graph.addEdge(R, Call);
      }
    }
    if (Opts.PreciseInlining && !InlinedPrecisely && DeferArgEdges &&
        !(Artifacts && !CrossModuleTarget.empty())) {
      // Precise-inlining deferral without a usable summary: restore the
      // §5.2 direct edges.
      for (const Value &AV : ArgValues)
        flowInto(AV.Events, Call);
      for (const auto &[Kw, KV] : KwValues)
        flowInto(KV.Events, Call);
    }

    Value Out;
    Out.Events = {Call};
    Out.Paths = extendPathsForResult(RepOptions);
    if (ConstructedClass)
      Out.InstanceClass = ConstructedClass->Name;
    if (Opts.UsePointsTo) {
      // Calls with unknown bodies are allocation sites (§5.2); local
      // constructors yield the class's shared abstract instance.
      Out.PtVar = freshPtVar("call");
      if (ConstructedClass)
        PT.addAlloc(Out.PtVar, classInstanceObj(ConstructedClass->Name));
      else
        PT.addAlloc(Out.PtVar,
                    PT.makeObj("call:" + RepOptions.front() + "@" +
                               std::to_string(C->loc().Line)));
    }
    return Out;
  }

  /// The path of a call result is the call rendering itself (the "()" is
  /// already part of each option).
  static std::vector<std::string>
  extendPathsForResult(const std::vector<std::string> &RepOptions) {
    return RepOptions;
  }

  static std::vector<EventId> unionEvents(const std::vector<EventId> &A,
                                          const std::vector<EventId> &B) {
    std::vector<EventId> Out = A;
    for (EventId Id : B)
      if (std::find(Out.begin(), Out.end(), Id) == Out.end())
        Out.push_back(Id);
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  const pysem::ModuleInfo &Module;
  BuildOptions Opts;
  ModuleArtifacts *Artifacts = nullptr;
  pysem::ModuleScope Scope;
  PropagationGraph Graph;
  uint32_t FileIdx = 0;
  Env ModuleEnv;
  std::unordered_map<const FunctionDefStmt *, FunctionSummary> Summaries;
  pointsto::AndersenSolver PT;
  std::unordered_map<std::string, pointsto::ObjId> ClassInstanceObjs;
  std::vector<FieldStore> Stores;
  std::vector<FieldLoad> Loads;
  unsigned PtTemp = 0;
};

} // namespace

PropagationGraph
seldon::propgraph::buildModuleGraph(const pysem::Project &Proj,
                                    const pysem::ModuleInfo &Module,
                                    const BuildOptions &Opts) {
  (void)Proj; // Cross-module resolution is per-file in this reproduction.
  ModuleGraphBuilder Builder(Module, Opts);
  return Builder.build();
}

PropagationGraph
seldon::propgraph::buildProjectGraph(const pysem::Project &Proj,
                                     const BuildOptions &Opts) {
  PropagationGraph Out;
  if (!Opts.CrossModuleFlows) {
    for (const pysem::ModuleInfo &M : Proj.modules()) {
      PropagationGraph G = buildModuleGraph(Proj, M, Opts);
      Out.append(G);
    }
    return Out;
  }

  // Beyond-paper mode: link calls to project-local modules. Build every
  // module, collect its exports and cross-module call sites, then wire
  // arguments to parameters and returns to calls.
  ModuleArtifacts Linked;
  for (const pysem::ModuleInfo &M : Proj.modules()) {
    ModuleArtifacts Artifacts;
    ModuleGraphBuilder Builder(M, Opts, &Artifacts);
    PropagationGraph G = Builder.build();
    Artifacts.offsetIds(static_cast<EventId>(Out.numEvents()));
    Out.append(G);
    for (auto &[Name, Fn] : Artifacts.Exports)
      Linked.Exports.emplace(Name, std::move(Fn));
    for (auto &Site : Artifacts.Calls)
      Linked.Calls.push_back(std::move(Site));
  }

  for (const ModuleArtifacts::CallSite &Site : Linked.Calls) {
    auto It = Linked.Exports.find(Site.Target);
    if (It == Linked.Exports.end() && !Site.CallerPackage.empty())
      // `from utils import f` inside pkg.app resolves to pkg.utils.f.
      It = Linked.Exports.find(Site.CallerPackage + "." + Site.Target);
    if (It == Linked.Exports.end()) {
      // Unresolved: restore the deferred direct argument edges (§5.2's
      // unknown-body behaviour).
      for (const auto &Events : Site.Args)
        for (EventId Arg : Events)
          Out.addEdge(Arg, Site.Call);
      for (const auto &[Kw, Events] : Site.Kwargs)
        for (EventId Arg : Events)
          Out.addEdge(Arg, Site.Call);
      continue;
    }
    const ModuleArtifacts::ExportedFn &Fn = It->second;
    for (size_t I = 0; I < Site.Args.size() && I < Fn.Params.size(); ++I)
      for (EventId Arg : Site.Args[I])
        Out.addEdge(Arg, Fn.Params[I].second);
    for (const auto &[Kw, Events] : Site.Kwargs)
      for (const auto &[ParamName, ParamEvent] : Fn.Params)
        if (ParamName == Kw)
          for (EventId Arg : Events)
            Out.addEdge(Arg, ParamEvent);
    for (EventId Ret : Fn.Returns)
      Out.addEdge(Ret, Site.Call);
  }
  return Out;
}
