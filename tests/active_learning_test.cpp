//===- tests/active_learning_test.cpp - Active-learning loop --------------===//
//
// Differential tests of the active-learning loop on the seeded synthetic
// corpus: starting from half the hand-written seed, the loop must recover
// full-seed passive quality with measurably fewer oracle labels than
// pinning every candidate, the query transcript and learned spec must be
// byte-identical at any --jobs value and across the compiled/simd
// backends, and a replayed transcript must reproduce the run exactly.
//
//===----------------------------------------------------------------------===//

#include "TestCorpus.h"

#include "active/ActiveLearner.h"
#include "active/Oracle.h"
#include "active/Uncertainty.h"
#include "eval/Precision.h"
#include "spec/SpecIO.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace seldon;
using namespace seldon::active;

namespace {

constexpr uint64_t CorpusSeed = 13;
constexpr int CorpusProjects = 8;
constexpr int SolveIterations = 300;

infer::PipelineOptions
testPipelineOptions(unsigned Jobs = 1,
                    solver::SolverBackend Backend =
                        solver::SolverBackend::Compiled) {
  infer::PipelineOptions P;
  P.Solve.MaxIterations = SolveIterations;
  P.Jobs = Jobs;
  P.Solve.Backend = Backend;
  return P;
}

ActiveResult runActive(const corpus::Corpus &Data, Oracle &O,
                       const ActiveOptions &AO, unsigned Jobs = 1,
                       solver::SolverBackend Backend =
                           solver::SolverBackend::Compiled) {
  infer::Session S(testPipelineOptions(Jobs, Backend));
  S.addProjects(Data.Projects);
  return runActiveLoop(S, Data.Seed, O, AO);
}

std::string specBytes(const spec::LearnedSpec &Learned) {
  return spec::writeLearnedSpec(Learned, /*MinScore=*/0.0);
}

void expectSameTranscript(const ActiveResult &A, const ActiveResult &B) {
  ASSERT_EQ(A.Transcript.size(), B.Transcript.size());
  for (size_t I = 0; I < A.Transcript.size(); ++I) {
    EXPECT_EQ(A.Transcript[I].Rep, B.Transcript[I].Rep) << "query " << I;
    EXPECT_EQ(A.Transcript[I].R, B.Transcript[I].R) << "query " << I;
    EXPECT_EQ(A.Transcript[I].A, B.Transcript[I].A) << "query " << I;
  }
}

//===----------------------------------------------------------------------===//
// Label efficiency: starting from half the hand-written seed, active
// recovers full-seed passive quality with measurably fewer oracle labels
// than labeling every candidate.
//===----------------------------------------------------------------------===//

TEST(ActiveLearningTest, RecoversFullSeedQualityWithHalfTheLabels) {
  // The larger corpus gives the loop a meaningful candidate pool and a
  // full-seed target the halved seed clearly misses. (On tiny corpora the
  // full seed predicts representations that never surface as variables,
  // so no amount of labeling can close the gap.)
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, 16);
  const double Threshold = 0.1;
  spec::SeedSpec Half = Data.Seed.halved();

  // Both runs score against the halved seed's exclusion set, so the
  // withheld seed entries count as predictions the loop must recover.
  auto passiveF1 = [&](const spec::SeedSpec &Seed) {
    infer::Session S(testPipelineOptions());
    S.addProjects(Data.Projects);
    S.generateConstraints(Seed);
    return eval::macroF1(S.solve().Learned, Data.Truth, Half, Threshold);
  };
  const double TargetF1 = passiveF1(Data.Seed);
  ASSERT_GT(TargetF1, 0.0);
  ASSERT_LT(passiveF1(Half), TargetF1)
      << "halving the seed must cost quality, or recovery is vacuous";

  GroundTruthOracle O(Data.Truth);
  ActiveOptions AO;
  AO.Threshold = Threshold;
  AO.QueriesPerRound = 6;
  AO.MaxRounds = 1'000'000; // Let StopWhen decide; labels are the metric.
  AO.StopWhen = [&](const infer::PipelineResult &R) {
    return eval::macroF1(R.Learned, Data.Truth, Half, Threshold) >=
           TargetF1 - 1e-9;
  };
  infer::Session S(testPipelineOptions());
  S.addProjects(Data.Projects);
  ActiveResult AR = runActiveLoop(S, Half, O, AO);

  EXPECT_TRUE(AR.Converged)
      << "active never recovered the full-seed F1; queried "
      << AR.TotalQueries << " of " << AR.Candidates;
  EXPECT_GE(eval::macroF1(AR.Final.Learned, Data.Truth, Half, Threshold),
            TargetF1 - 1e-9);
  ASSERT_GT(AR.Candidates, 0u);
  // The label-efficiency claim: at most half the pin-everything labels.
  EXPECT_LE(AR.TotalQueries * 2, AR.Candidates)
      << "active needed " << AR.TotalQueries << " labels; pinning "
      << "everything costs " << AR.Candidates;
}

//===----------------------------------------------------------------------===//
// Determinism: byte-identical specs and transcripts across jobs, backends,
// and repeated runs.
//===----------------------------------------------------------------------===//

ActiveOptions shortRun() {
  ActiveOptions AO;
  AO.MaxRounds = 3;
  AO.QueriesPerRound = 6;
  return AO;
}

TEST(ActiveLearningTest, ByteIdenticalAcrossJobs) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  GroundTruthOracle O1(Data.Truth), O4(Data.Truth);
  ActiveResult A = runActive(Data, O1, shortRun(), /*Jobs=*/1);
  ActiveResult B = runActive(Data, O4, shortRun(), /*Jobs=*/4);
  expectSameTranscript(A, B);
  EXPECT_EQ(specBytes(A.Final.Learned), specBytes(B.Final.Learned));
}

TEST(ActiveLearningTest, ByteIdenticalAcrossBackends) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  GroundTruthOracle OC(Data.Truth), OS(Data.Truth);
  ActiveResult A = runActive(Data, OC, shortRun(), /*Jobs=*/2,
                             solver::SolverBackend::Compiled);
  ActiveResult B = runActive(Data, OS, shortRun(), /*Jobs=*/2,
                             solver::SolverBackend::Simd);
  expectSameTranscript(A, B);
  EXPECT_EQ(specBytes(A.Final.Learned), specBytes(B.Final.Learned));
}

TEST(ActiveLearningTest, QueryOrderIsDeterministic) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  GroundTruthOracle OA(Data.Truth), OB(Data.Truth);
  ActiveResult A = runActive(Data, OA, shortRun());
  ActiveResult B = runActive(Data, OB, shortRun());
  expectSameTranscript(A, B);
  ASSERT_EQ(A.Rounds.size(), B.Rounds.size());
  EXPECT_EQ(A.TotalQueries, B.TotalQueries);
  EXPECT_EQ(A.TotalPinned, B.TotalPinned);
}

//===----------------------------------------------------------------------===//
// Replay: a ground-truth run's transcript, serialized and re-loaded as a
// FileOracle, reproduces the run byte for byte.
//===----------------------------------------------------------------------===//

TEST(ActiveLearningTest, TranscriptReplaysByteIdentically) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  GroundTruthOracle Live(Data.Truth);
  ActiveResult A = runActive(Data, Live, shortRun());
  ASSERT_GT(A.Transcript.size(), 0u);

  std::string Json = writeOracleFile(A.Transcript);
  FileOracle Replay;
  std::string Error;
  ASSERT_TRUE(FileOracle::parse(Json, Replay, Error)) << Error;
  EXPECT_EQ(Replay.size(), A.Transcript.size());

  ActiveResult B = runActive(Data, Replay, shortRun());
  expectSameTranscript(A, B);
  EXPECT_EQ(specBytes(A.Final.Learned), specBytes(B.Final.Learned));
}

TEST(ActiveLearningTest, UnknownAnswersCountButNeverPin) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  FileOracle Empty; // No entries: every answer is Unknown.
  ActiveResult A = runActive(Data, Empty, shortRun());
  EXPECT_GT(A.TotalQueries, 0u);
  EXPECT_EQ(A.TotalPinned, 0u);
  for (const OracleExchange &E : A.Transcript)
    EXPECT_EQ(E.A, OracleAnswer::Unknown) << E.Rep;
  // Unknown exchanges would replay as no-ops, so the serializer drops
  // them entirely.
  EXPECT_EQ(writeOracleFile(A.Transcript), "{\"answers\":[]}\n");
}

//===----------------------------------------------------------------------===//
// Budget and stopping rules
//===----------------------------------------------------------------------===//

TEST(ActiveLearningTest, MaxQueriesCapsTheRun) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  GroundTruthOracle O(Data.Truth);
  ActiveOptions AO;
  AO.MaxRounds = 100;
  AO.QueriesPerRound = 4;
  AO.MaxQueries = 10; // Not a multiple of the round size: last round is 2.
  ActiveResult A = runActive(Data, O, AO);
  EXPECT_EQ(A.TotalQueries, 10u);
  EXPECT_FALSE(A.Converged); // A budget stop is not convergence.
  ASSERT_EQ(A.Rounds.size(), 3u);
  EXPECT_EQ(A.Rounds.back().Queried, 2u);
}

TEST(ActiveLearningTest, StableRoundsStopsEarly) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  // An oracle with no opinions: rounds query but never pin, so the
  // selected role set cannot move and the stability rule must fire after
  // exactly StableRounds rounds — well before the candidates run out.
  FileOracle Undecided;
  ActiveOptions AO;
  AO.MaxRounds = 1'000'000;
  AO.QueriesPerRound = 4;
  AO.StableRounds = 2;
  ActiveResult A = runActive(Data, Undecided, AO);
  EXPECT_TRUE(A.Converged);
  EXPECT_EQ(A.Rounds.size(), 2u);
  EXPECT_EQ(A.TotalQueries, 8u);
  EXPECT_EQ(A.TotalPinned, 0u);
  EXPECT_LT(A.TotalQueries, A.Candidates);
}

//===----------------------------------------------------------------------===//
// Uncertainty ranking
//===----------------------------------------------------------------------===//

TEST(UncertaintyTest, RanksByDistanceToThresholdWithNamedTies) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  infer::Session S(testPipelineOptions());
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  infer::PipelineResult R = S.solve();

  std::vector<uint8_t> None(S.system().Vars.numVars(), 0);
  std::vector<Candidate> Cands = rankUncertain(
      S.system(), S.reps(), R.Solve.X, 0.1, /*K=*/16, /*Band=*/1.0, None);
  ASSERT_FALSE(Cands.empty());
  for (size_t I = 1; I < Cands.size(); ++I) {
    const Candidate &P = Cands[I - 1], &C = Cands[I];
    if (P.Uncertainty != C.Uncertainty) {
      EXPECT_LT(P.Uncertainty, C.Uncertainty);
    } else if (P.Rep != C.Rep) {
      EXPECT_LT(P.Rep, C.Rep);
    } else {
      EXPECT_LT(P.R, C.R);
    }
  }
  // Pinned (seed) variables are never candidates.
  for (const auto &[Var, Value] : S.system().Pinned) {
    (void)Value;
    for (const Candidate &C : Cands)
      EXPECT_NE(C.Var, Var);
  }
}

TEST(UncertaintyTest, ExcludedAndBandedVariablesAreSkipped) {
  corpus::Corpus Data = testutil::makeCorpus(CorpusSeed, CorpusProjects);
  infer::Session S(testPipelineOptions());
  S.addProjects(Data.Projects);
  S.generateConstraints(Data.Seed);
  infer::PipelineResult R = S.solve();

  std::vector<uint8_t> None(S.system().Vars.numVars(), 0);
  std::vector<Candidate> All = rankUncertain(
      S.system(), S.reps(), R.Solve.X, 0.1, /*K=*/8, /*Band=*/1.0, None);
  ASSERT_FALSE(All.empty());

  // Excluding the top candidate promotes the rest.
  std::vector<uint8_t> Exclude = None;
  Exclude[All[0].Var] = 1;
  std::vector<Candidate> Rest = rankUncertain(
      S.system(), S.reps(), R.Solve.X, 0.1, /*K=*/8, /*Band=*/1.0, Exclude);
  ASSERT_FALSE(Rest.empty());
  EXPECT_NE(Rest[0].Var, All[0].Var);
  EXPECT_EQ(Rest[0].Var, All[1].Var);

  // A tight band keeps only near-threshold scores.
  std::vector<Candidate> Tight = rankUncertain(
      S.system(), S.reps(), R.Solve.X, 0.1, /*K=*/1000, /*Band=*/0.05,
      None);
  for (const Candidate &C : Tight)
    EXPECT_LE(C.Uncertainty, 0.05);
}

//===----------------------------------------------------------------------===//
// FileOracle parsing
//===----------------------------------------------------------------------===//

TEST(FileOracleTest, ParsesAnswersAndDefaultsToUnknown) {
  FileOracle O;
  std::string Error;
  ASSERT_TRUE(FileOracle::parse(
      "{\"answers\":["
      "{\"rep\":\"a.b()\",\"role\":\"source\",\"truth\":true},"
      "{\"rep\":\"c.d()\",\"role\":\"sink\",\"truth\":false}]}",
      O, Error))
      << Error;
  EXPECT_EQ(O.size(), 2u);
  EXPECT_EQ(O.answer("a.b()", propgraph::Role::Source), OracleAnswer::Yes);
  EXPECT_EQ(O.answer("c.d()", propgraph::Role::Sink), OracleAnswer::No);
  EXPECT_EQ(O.answer("a.b()", propgraph::Role::Sink),
            OracleAnswer::Unknown);
  EXPECT_EQ(O.answer("unheard.of()", propgraph::Role::Source),
            OracleAnswer::Unknown);
}

TEST(FileOracleTest, RejectsMalformedInput) {
  struct Case {
    const char *Json;
    const char *Why;
  } Cases[] = {
      {"[]", "top level must be an object"},
      {"{}", "missing answers"},
      {"{\"answers\":{}}", "answers must be an array"},
      {"{\"answers\":[42]}", "entry must be an object"},
      {"{\"answers\":[{\"role\":\"source\",\"truth\":true}]}", "no rep"},
      {"{\"answers\":[{\"rep\":\"a\",\"role\":\"boss\",\"truth\":true}]}",
       "bad role"},
      {"{\"answers\":[{\"rep\":\"a\",\"role\":\"sink\"}]}", "no truth"},
      {"{\"answers\":[{\"rep\":\"a\",\"role\":\"sink\",\"truth\":1}]}",
       "truth must be a boolean"},
  };
  for (const Case &C : Cases) {
    FileOracle O;
    std::string Error;
    EXPECT_FALSE(FileOracle::parse(C.Json, O, Error)) << C.Why;
    EXPECT_FALSE(Error.empty()) << C.Why;
  }
}

} // namespace
