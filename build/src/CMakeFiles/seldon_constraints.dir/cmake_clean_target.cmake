file(REMOVE_RECURSE
  "libseldon_constraints.a"
)
