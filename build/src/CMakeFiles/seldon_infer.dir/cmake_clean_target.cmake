file(REMOVE_RECURSE
  "libseldon_infer.a"
)
