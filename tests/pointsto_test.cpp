//===- tests/pointsto_test.cpp - Tests for the Andersen solver ------------===//

#include "pointsto/AndersenSolver.h"
#include "pointsto/PointsToAnalysis.h"
#include "pyast/Parser.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::pointsto;

namespace {

//===----------------------------------------------------------------------===//
// Raw solver
//===----------------------------------------------------------------------===//

TEST(AndersenSolverTest, AllocAndCopy) {
  AndersenSolver S;
  VarId A = S.makeVar("a"), B = S.makeVar("b");
  ObjId O = S.makeObj("o");
  S.addAlloc(A, O);
  S.addCopy(B, A);
  S.solve();
  EXPECT_TRUE(S.pointsTo(B).count(O));
  EXPECT_TRUE(S.mayAlias(A, B));
}

TEST(AndersenSolverTest, CopyChain) {
  AndersenSolver S;
  VarId V[5];
  for (int I = 0; I < 5; ++I)
    V[I] = S.makeVar("v" + std::to_string(I));
  ObjId O = S.makeObj("o");
  S.addAlloc(V[0], O);
  for (int I = 1; I < 5; ++I)
    S.addCopy(V[I], V[I - 1]);
  S.solve();
  EXPECT_TRUE(S.pointsTo(V[4]).count(O));
}

TEST(AndersenSolverTest, CopyCycleTerminates) {
  AndersenSolver S;
  VarId A = S.makeVar("a"), B = S.makeVar("b");
  ObjId O = S.makeObj("o");
  S.addAlloc(A, O);
  S.addCopy(B, A);
  S.addCopy(A, B);
  S.solve();
  EXPECT_TRUE(S.pointsTo(A).count(O));
  EXPECT_TRUE(S.pointsTo(B).count(O));
}

TEST(AndersenSolverTest, FieldStoreLoad) {
  // p = obj; p.f = q; r = obj.f  =>  r points to what q points to.
  AndersenSolver S;
  VarId Obj = S.makeVar("obj"), P = S.makeVar("p"), Q = S.makeVar("q"),
        R = S.makeVar("r");
  ObjId Heap = S.makeObj("heap"), Payload = S.makeObj("payload");
  S.addAlloc(Obj, Heap);
  S.addCopy(P, Obj);
  S.addAlloc(Q, Payload);
  S.addStore(P, "f", Q);
  S.addLoad(R, Obj, "f");
  S.solve();
  EXPECT_TRUE(S.pointsTo(R).count(Payload));
  EXPECT_TRUE(S.fieldPointsTo(Heap, "f").count(Payload));
}

TEST(AndersenSolverTest, FieldsAreSeparate) {
  AndersenSolver S;
  VarId Obj = S.makeVar("obj"), Q = S.makeVar("q"), R = S.makeVar("r");
  ObjId Heap = S.makeObj("heap"), Payload = S.makeObj("payload");
  S.addAlloc(Obj, Heap);
  S.addAlloc(Q, Payload);
  S.addStore(Obj, "f", Q);
  S.addLoad(R, Obj, "g");
  S.solve();
  EXPECT_TRUE(S.pointsTo(R).empty()) << "field g was never written";
}

TEST(AndersenSolverTest, StoreBeforeBasePopulated) {
  // The store is registered before `base` points anywhere; the worklist
  // must dispatch it when the object arrives.
  AndersenSolver S;
  VarId Base = S.makeVar("base"), Src = S.makeVar("src"),
        Pre = S.makeVar("pre"), Dst = S.makeVar("dst");
  ObjId Heap = S.makeObj("heap"), Payload = S.makeObj("payload");
  S.addStore(Base, "f", Src);
  S.addLoad(Dst, Base, "f");
  S.addAlloc(Src, Payload);
  S.addAlloc(Pre, Heap);
  S.addCopy(Base, Pre);
  S.solve();
  EXPECT_TRUE(S.pointsTo(Dst).count(Payload));
}

TEST(AndersenSolverTest, IncrementalResolve) {
  AndersenSolver S;
  VarId A = S.makeVar("a"), B = S.makeVar("b");
  ObjId O1 = S.makeObj("o1");
  S.addAlloc(A, O1);
  S.solve();
  // Add constraints after a solve; a second solve must pick them up.
  ObjId O2 = S.makeObj("o2");
  S.addAlloc(A, O2);
  S.addCopy(B, A);
  S.solve();
  EXPECT_EQ(S.pointsTo(B).size(), 2u);
}

TEST(AndersenSolverTest, NoAliasWhenDisjoint) {
  AndersenSolver S;
  VarId A = S.makeVar("a"), B = S.makeVar("b");
  S.addAlloc(A, S.makeObj("o1"));
  S.addAlloc(B, S.makeObj("o2"));
  S.solve();
  EXPECT_FALSE(S.mayAlias(A, B));
}

//===----------------------------------------------------------------------===//
// AST-driven analysis
//===----------------------------------------------------------------------===//

struct PtFixture {
  pyast::AstContext Ctx;
  PointsToAnalysis PTA;

  explicit PtFixture(std::string_view Source) {
    std::vector<pyast::ParseError> Errors;
    pyast::ModuleNode *M = pyast::parseSource(Ctx, Source, &Errors);
    EXPECT_TRUE(Errors.empty());
    PTA.run(M);
  }
};

TEST(PointsToAnalysisTest, DirectAlias) {
  PtFixture F("a = make()\nb = a\nc = other()\n");
  EXPECT_TRUE(F.PTA.mayAlias("", "a", "", "b"));
  EXPECT_FALSE(F.PTA.mayAlias("", "a", "", "c"));
}

TEST(PointsToAnalysisTest, FieldFlowThroughAlias) {
  PtFixture F("obj = make()\n"
              "p = obj\n"
              "p.f = payload()\n"
              "r = obj.f\n"
              "s = obj.g\n");
  auto R = F.PTA.lookupVar("", "r");
  auto S = F.PTA.lookupVar("", "s");
  ASSERT_TRUE(R && S);
  EXPECT_FALSE(F.PTA.solver().pointsTo(*R).empty());
  EXPECT_TRUE(F.PTA.solver().pointsTo(*S).empty());
}

TEST(PointsToAnalysisTest, ContainerElementFlow) {
  PtFixture F("x = make()\n"
              "l = [x]\n"
              "y = l[0]\n");
  EXPECT_TRUE(F.PTA.mayAlias("", "x", "", "y"));
}

TEST(PointsToAnalysisTest, SubscriptStore) {
  PtFixture F("d = {}\n"
              "d['k'] = make()\n"
              "v = d['other']\n");
  // Element field is key-insensitive: any read may see any write.
  EXPECT_TRUE(F.PTA.mayAlias("", "v", "", "v"));
  auto V = F.PTA.lookupVar("", "v");
  ASSERT_TRUE(V.has_value());
  EXPECT_FALSE(F.PTA.solver().pointsTo(*V).empty());
}

TEST(PointsToAnalysisTest, BranchesMerge) {
  PtFixture F("if cond():\n    x = a_make()\nelse:\n    x = b_make()\ny = x\n");
  auto Y = F.PTA.lookupVar("", "y");
  ASSERT_TRUE(Y.has_value());
  EXPECT_EQ(F.PTA.solver().pointsTo(*Y).size(), 2u);
}

TEST(PointsToAnalysisTest, LoopSingleIterationTerminates) {
  PtFixture F("acc = make()\n"
              "for i in items():\n"
              "    acc = wrap(acc)\n"
              "out = acc\n");
  auto Out = F.PTA.lookupVar("", "out");
  ASSERT_TRUE(Out.has_value());
  EXPECT_FALSE(F.PTA.solver().pointsTo(*Out).empty());
}

TEST(PointsToAnalysisTest, FunctionScopesAreSeparate) {
  PtFixture F("x = make()\n"
              "def f(x):\n"
              "    y = x\n");
  EXPECT_TRUE(F.PTA.mayAlias("f", "x", "f", "y"));
  EXPECT_FALSE(F.PTA.mayAlias("", "x", "f", "y"));
}

TEST(PointsToAnalysisTest, TupleUnpackingSpreads) {
  PtFixture F("a, b = pair()\nc = a\n");
  EXPECT_TRUE(F.PTA.mayAlias("", "a", "", "c"));
}

TEST(PointsToAnalysisTest, ConditionalExprMergesBothArms) {
  PtFixture F("x = left() if cond() else right()\n");
  auto X = F.PTA.lookupVar("", "x");
  ASSERT_TRUE(X.has_value());
  EXPECT_EQ(F.PTA.solver().pointsTo(*X).size(), 2u);
}

TEST(PointsToAnalysisTest, BoolOpDefaultIdiom) {
  PtFixture F("x = maybe() or fallback()\n");
  auto X = F.PTA.lookupVar("", "x");
  ASSERT_TRUE(X.has_value());
  EXPECT_EQ(F.PTA.solver().pointsTo(*X).size(), 2u);
}

TEST(PointsToAnalysisTest, WithBinding) {
  PtFixture F("with open_thing() as f:\n    g = f\n");
  EXPECT_TRUE(F.PTA.mayAlias("", "f", "", "g"));
}

} // namespace
