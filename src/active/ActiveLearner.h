//===- active/ActiveLearner.h - Query→pin→re-solve loop ----------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The active-learning loop over an infer::Session:
///
///   round 0: generateConstraints(seed) + solve()      (the passive solve)
///   repeat:
///     1. rank the unpinned, unqueried score variables by uncertainty
///        (distance to the report threshold, ties by rep name)
///     2. query the oracle about the top-K; pin every answered variable
///        to 1 (yes) or 0 (no) — the same §4.1 pin mechanism seeds use
///     3. re-solve, warm-started from the previous round's learned spec
///   until a budget or convergence rule stops it.
///
/// Determinism contract: for a fixed oracle, the query transcript and the
/// final learned spec are byte-identical at any Jobs value and across the
/// compiled/simd solver backends — every solve is byte-identical, so the
/// uncertainty ranking (and hence the pins) never diverges.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_ACTIVE_ACTIVELEARNER_H
#define SELDON_ACTIVE_ACTIVELEARNER_H

#include "active/Oracle.h"
#include "active/Uncertainty.h"
#include "infer/Pipeline.h"

#include <functional>
#include <vector>

namespace seldon {
namespace active {

/// Budget and convergence knobs of one active-learning run.
struct ActiveOptions {
  /// Query rounds after the passive round-0 solve.
  int MaxRounds = 10;
  /// Oracle queries proposed per round.
  size_t QueriesPerRound = 8;
  /// Total query budget across all rounds (0 = bounded by MaxRounds).
  size_t MaxQueries = 0;
  /// The report threshold the uncertainty scorer centers on.
  double Threshold = 0.1;
  /// Only scores within this distance of the threshold count as
  /// uncertain; a round proposing no in-band candidate stops the loop.
  /// 1.0 disables the band (every unqueried variable stays a candidate).
  double UncertaintyBand = 1.0;
  /// Stop once the selected role set is unchanged for this many
  /// consecutive rounds (0 disables the rule).
  int StableRounds = 0;
  /// Iteration budget of each warm-started per-round re-solve (0 keeps
  /// the session's Solve.MaxIterations).
  int RoundIterations = 0;
  /// External stop, checked after each round's solve (e.g. "target F1
  /// reached" in the bench). Returning true ends the loop.
  std::function<bool(const infer::PipelineResult &)> StopWhen;
};

/// Per-round accounting.
struct ActiveRoundStats {
  int Round = 0;
  size_t Queried = 0;
  size_t Answered = 0;
  size_t PinnedTrue = 0;
  size_t PinnedFalse = 0;
  double SolveSeconds = 0.0;
};

/// Everything an active run produced.
struct ActiveResult {
  /// The last round's full pipeline result (the learned spec to report).
  infer::PipelineResult Final;
  std::vector<ActiveRoundStats> Rounds;
  /// Every query in the order it was asked (replayable via
  /// writeOracleFile).
  std::vector<OracleExchange> Transcript;
  /// Unpinned candidate variables before the first query round — the
  /// "pin everything" labeling cost the loop competes against.
  size_t Candidates = 0;
  size_t TotalQueries = 0;
  size_t TotalPinned = 0;
  /// True when a convergence rule (no candidates, stable roles, StopWhen)
  /// ended the loop rather than the round/query budget.
  bool Converged = false;
};

/// Runs the loop on \p S, which must have its projects added (or a graph
/// adopted); the function drives generateConstraints(\p Seed) and every
/// solve itself. The session's WarmStart option and per-round iteration
/// budget are restored on return. Emits `active.*` metrics when the
/// global registry is enabled.
ActiveResult runActiveLoop(infer::Session &S, const spec::SeedSpec &Seed,
                           Oracle &O, const ActiveOptions &Opts);

} // namespace active
} // namespace seldon

#endif // SELDON_ACTIVE_ACTIVELEARNER_H
