//===- tests/explain_test.cpp - Constraint explanations + JSON export -----===//

#include "constraints/Explain.h"
#include "infer/Pipeline.h"
#include "propgraph/GraphBuilder.h"
#include "taint/JsonExport.h"
#include "taint/ReportRenderer.h"

#include <gtest/gtest.h>

#include "support/StrUtil.h"

#include <algorithm>

using namespace seldon;
using namespace seldon::propgraph;

namespace {

struct ExplainFixture {
  infer::PipelineResult Result;
  spec::SeedSpec Seed;

  ExplainFixture() {
    std::vector<pysem::Project> Corpus;
    for (int I = 0; I < 6; ++I) {
      pysem::Project P("p" + std::to_string(I));
      P.addModule("p" + std::to_string(I) + "/app.py",
                  "import web\nimport mid\nimport db\n"
                  "db.exec(mid.filter(web.read()))\n"
                  "x = noise.call()\n");
      Corpus.push_back(std::move(P));
    }
    Seed = spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
    infer::PipelineOptions Opts;
    Opts.Solve.MaxIterations = 1500;
    infer::Session S(Opts);
    S.addProjects(Corpus);
    S.generateConstraints(Seed);
    Result = S.solve();
  }

  constraints::Explanation explain(const std::string &Rep, Role R) {
    return constraints::explainRep(Result.System, Result.Reps, Rep, R,
                                   Result.Solve.X);
  }
};

TEST(ExplainTest, LearnedSanitizerHasDemandingConstraint) {
  ExplainFixture F;
  auto E = F.explain("mid.filter()", Role::Sanitizer);
  ASSERT_TRUE(E.Found);
  EXPECT_FALSE(E.Pinned);
  EXPECT_GT(E.Score, 0.3);
  ASSERT_FALSE(E.Constraints.empty());
  bool Demanded = false;
  for (const auto &C : E.Constraints) {
    Demanded |= !C.OnLhs;
    EXPECT_NE(C.Text.find("mid.filter()^sanitizer"), std::string::npos);
    EXPECT_NE(C.Text.find("<="), std::string::npos);
  }
  EXPECT_TRUE(Demanded) << "Fig. 4c must demand the sanitizer on the RHS";
}

TEST(ExplainTest, SeededVariableReportedAsPinned) {
  ExplainFixture F;
  auto E = F.explain("web.read()", Role::Source);
  ASSERT_TRUE(E.Found);
  EXPECT_TRUE(E.Pinned);
  EXPECT_DOUBLE_EQ(E.PinnedValue, 1.0);
  EXPECT_DOUBLE_EQ(E.Score, 1.0);
}

TEST(ExplainTest, UnknownRepNotFound) {
  ExplainFixture F;
  EXPECT_FALSE(F.explain("never.seen()", Role::Source).Found);
}

TEST(ExplainTest, NonCandidateRoleNotFound) {
  ExplainFixture F;
  // noise.call() occurs but interacts with nothing: it may have variables
  // only if some constraint or seed touched it.
  auto E = F.explain("noise.call()", Role::Sanitizer);
  EXPECT_FALSE(E.Found);
}

TEST(ExplainTest, RenderConstraintShape) {
  ExplainFixture F;
  ASSERT_FALSE(F.Result.System.Constraints.empty());
  std::string Text = constraints::renderConstraint(
      F.Result.System, F.Result.Reps, F.Result.System.Constraints.front());
  EXPECT_NE(Text.find(" <= "), std::string::npos);
  EXPECT_NE(Text.find(" + 0.75"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// JSON export
//===----------------------------------------------------------------------===//

TEST(JsonExportTest, WellFormedReport) {
  pysem::Project Proj("p");
  const pysem::ModuleInfo &M = Proj.addModule(
      "p/app.py", "import web\nimport db\ndb.exec(web.read())\n");
  ASSERT_TRUE(M.Errors.empty());
  PropagationGraph G = buildModuleGraph(Proj, M);
  spec::SeedSpec Seed =
      spec::SeedSpec::parse("o: web.read()\ni: db.exec()\n");
  taint::RoleResolver Roles(&Seed.Spec, nullptr);
  auto Reports = taint::TaintAnalyzer(G).analyze(Roles);
  ASSERT_EQ(Reports.size(), 1u);
  std::vector<double> Confidence =
      taint::rankViolations(G, Reports, &Seed.Spec, nullptr);

  std::string Json = taint::reportsToJson(G, Reports, &Confidence);
  EXPECT_NE(Json.find("\"file\": \"p/app.py\""), std::string::npos);
  EXPECT_NE(Json.find("\"confidence\": 1.0000"), std::string::npos);
  EXPECT_NE(Json.find("\"rep\": \"web.read()\""), std::string::npos);
  EXPECT_NE(Json.find("\"rep\": \"db.exec()\""), std::string::npos);
  EXPECT_NE(Json.find("\"path\": ["), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '{'),
            std::count(Json.begin(), Json.end(), '}'));
  EXPECT_EQ(std::count(Json.begin(), Json.end(), '['),
            std::count(Json.begin(), Json.end(), ']'));
}

TEST(JsonExportTest, EmptyReportsAndNoConfidence) {
  PropagationGraph G;
  EXPECT_EQ(taint::reportsToJson(G, {}), "{\"reports\": []}");
}

TEST(JsonExportTest, EscapesSpecialCharacters) {
  PropagationGraph G;
  uint32_t File = G.addFile("dir/quote\"back\\slash.py");
  Event E1, E2;
  E1.Kind = E2.Kind = EventKind::Call;
  E1.Reps = {"weird\"rep()"};
  E2.Reps = {"snk()"};
  E1.FileIdx = E2.FileIdx = File;
  EventId A = G.addEvent(E1), B = G.addEvent(E2);
  G.addEdge(A, B);
  taint::Violation V;
  V.Source = A;
  V.Sink = B;
  V.Path = {A, B};
  V.FileIdx = File;
  std::string Json = taint::reportsToJson(G, {V});
  EXPECT_NE(Json.find("quote\\\"back\\\\slash.py"), std::string::npos);
  EXPECT_NE(Json.find("weird\\\"rep()"), std::string::npos);
}

TEST(JsonEscapeTest, ControlCharacters) {
  EXPECT_EQ(seldon::jsonEscape("a\tb\nc"), "a\\tb\\nc");
  EXPECT_EQ(seldon::jsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(seldon::jsonEscape("plain"), "plain");
}

} // namespace
