//===- support/Trace.h - RAII stage spans ------------------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// RAII trace spans that nest into "parent/child" paths and record into a
/// metrics::Registry. A span always measures wall time (seconds() is valid
/// whether or not the registry records), so pipeline code can use one span
/// both as its stopwatch and as its telemetry emitter:
///
///   trace::Span Solve(metrics::Registry::global(), "solve");
///   ... run stage ...
///   Stats.SolveSeconds = Solve.finish();
///
/// Nesting is tracked per thread: a span constructed while another span on
/// the same thread is open becomes its child ("session/solve"). Spans are
/// only appended to the registry when it was enabled at construction, so a
/// disabled registry costs a steady_clock read and nothing else.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_TRACE_H
#define SELDON_SUPPORT_TRACE_H

#include "support/Metrics.h"

#include <string>
#include <string_view>

namespace seldon {
namespace trace {

/// An RAII wall-clock span. Records a metrics::SpanRecord on finish() (or
/// destruction) when the registry was enabled at construction time.
class Span {
public:
  Span(metrics::Registry &Reg, std::string_view Name);
  ~Span();

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Seconds elapsed since construction (after finish(): the final
  /// duration). Always valid, even when the registry is disabled.
  double seconds() const;

  /// Ends the span now, records it, and returns the duration. Idempotent.
  double finish();

  /// The full nested path, e.g. "session/solve".
  const std::string &path() const { return Path; }

private:
  metrics::Registry &Reg;
  std::string Path;
  double StartSeconds;
  double DurationSeconds = -1.0; ///< < 0 while the span is open.
  bool Record;                   ///< Registry was enabled at construction.
  Span *Parent;                  ///< Enclosing span on this thread, if any.
};

} // namespace trace
} // namespace seldon

#endif // SELDON_SUPPORT_TRACE_H
