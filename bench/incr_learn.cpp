//===- bench/incr_learn.cpp - Incremental re-learn speedup ----------------===//
//
// Measures what the shard cache and warm-start buy on the canonical edit
// loop: learn a corpus once (cold, caches populated), touch ONE project,
// and re-learn. The incremental run replays every unchanged project's
// propagation graph and constraint shard from disk, re-extracts only the
// touched project, and seeds the solve from the previous specification;
// the comparison run re-does everything from scratch on the same edited
// corpus.
//
// Correctness is gated, not just timed: a cache-composed re-learn with
// warm start disabled must reproduce the from-scratch specification byte
// for byte, the warm-started solve must select the same roles at the
// report threshold, and exactly one shard may rebuild. With
// SELDON_INCR_OUT=FILE the comparison is written as a JSON fragment that
// scripts/bench_solver.sh merges into BENCH_solver.json (where the >= 5x
// re-learn speedup is enforced).
//
// Knobs: SELDON_PROJECTS (default 300), SELDON_JOBS, SELDON_SOLVER_ITERS.
//
//===----------------------------------------------------------------------===//

#include "eval/ExperimentDriver.h"
#include "spec/SpecIO.h"
#include "support/StrUtil.h"
#include "support/TablePrinter.h"
#include "support/ThreadPool.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

using namespace seldon;
using namespace seldon::eval;

namespace {

struct TimedRun {
  infer::PipelineResult Result;
  double TotalSeconds = 0.0;
};

TimedRun runLearn(const corpus::Corpus &Data,
                  const infer::PipelineOptions &BaseOpts, unsigned Jobs,
                  const std::string &CacheDir = std::string(),
                  const spec::LearnedSpec *WarmFrom = nullptr,
                  int MaxIterations = 0) {
  infer::PipelineOptions Opts = BaseOpts;
  Opts.Jobs = Jobs;
  Opts.WarmStart = WarmFrom;
  if (MaxIterations > 0)
    Opts.Solve.MaxIterations = MaxIterations;
  infer::Session Session(Opts);
  if (!CacheDir.empty()) {
    Session.enableCache(CacheDir);
    Session.enableShardCache(CacheDir + "/shards");
  }
  Session.addProjects(Data.Projects);
  Session.generateConstraints(Data.Seed);
  TimedRun Run;
  Run.Result = Session.solve();
  Run.TotalSeconds = Run.Result.BuildSeconds + Run.Result.GenSeconds +
                     Run.Result.SolveSeconds;
  return Run;
}

bool sameRolesAtThreshold(const spec::LearnedSpec &A,
                          const spec::LearnedSpec &B, double Threshold) {
  spec::TaintSpec SpecA = A.toSpec(Threshold);
  spec::TaintSpec SpecB = B.toSpec(Threshold);
  for (spec::Role R :
       {spec::Role::Source, spec::Role::Sanitizer, spec::Role::Sink})
    if (SpecA.sortedReps(R) != SpecB.sortedReps(R))
      return false;
  return true;
}

} // namespace

int main() {
  int Projects = envInt("SELDON_PROJECTS", 300);
  unsigned Jobs = static_cast<unsigned>(
      envInt("SELDON_JOBS",
             static_cast<int>(ThreadPool::hardwareConcurrency())));
  infer::PipelineOptions PipelineOpts = standardPipelineOptions();
  // The warm refinement budget: a re-solve seeded at the previous optimum
  // needs a fraction of the cold descent schedule. Step-norm convergence
  // cannot stand in for this — with a fixed learning rate the Adam
  // iterate oscillates at a step-norm floor far above any meaningful
  // Tolerance, so MaxIterations is the knob an edit loop actually turns —
  // and the roles gate below proves the short solve still lands on the
  // from-scratch answer. Override with SELDON_WARM_ITERS.
  int WarmIters = envInt(
      "SELDON_WARM_ITERS",
      std::max(20, PipelineOpts.Solve.MaxIterations / 30));

  corpus::CorpusOptions CorpusOpts = standardCorpusOptions();
  CorpusOpts.NumProjects = Projects;
  corpus::Corpus Data = corpus::generateCorpus(CorpusOpts);

  std::string Template =
      (std::filesystem::temp_directory_path() / "seldon-incr-XXXXXX")
          .string();
  std::vector<char> Path(Template.begin(), Template.end());
  Path.push_back('\0');
  if (!mkdtemp(Path.data())) {
    std::cerr << "incr bench: cannot create temp cache directory\n";
    return 1;
  }
  std::string CacheDir(Path.data());

  std::cout << formatString(
      "=== Incremental re-learn: touch 1 of %d project(s), %u job(s) "
      "===\n\n",
      Projects, Jobs);

  // Cold: first learn ever — every graph parses, every shard extracts and
  // is written to the cache. This is what a CI box pays on day one.
  TimedRun Cold = runLearn(Data, PipelineOpts, Jobs, CacheDir);

  // The edit: one project gains one handler file. Its graph key — and
  // therefore its shard key — changes; nobody else's does.
  Data.Projects.front().addModule(
      "app/incr_extra.py", "import flask\n"
                           "def extra():\n"
                           "    v = flask.request.args.get('x')\n"
                           "    flask.render_template('t.html', value=v)\n");

  // Fresh: from-scratch learn of the edited corpus, no caches — the
  // reference both for timing (what incrementality must beat) and for the
  // specification the composed runs must reproduce.
  TimedRun Fresh = runLearn(Data, PipelineOpts, Jobs);

  // Incremental: the headline run. N-1 shards replay, 1 re-extracts, and
  // the solve refines the cold run's learned scores on the short budget.
  TimedRun Incr = runLearn(Data, PipelineOpts, Jobs, CacheDir,
                           &Cold.Result.Learned, WarmIters);

  // Cold-init replay: same composed constraint system, default-initialized
  // solve — must be byte-identical to Fresh (every shard now hits).
  TimedRun Replay = runLearn(Data, PipelineOpts, Jobs, CacheDir);
  std::filesystem::remove_all(CacheDir);

  const infer::IncrStats &Stats = Incr.Result.Incr;
  size_t N = Data.Projects.size();
  bool OneRebuild = Stats.ShardsRebuilt == 1 && Stats.ShardsHit == N - 1;
  bool Identical = spec::writeLearnedSpec(Fresh.Result.Learned) ==
                   spec::writeLearnedSpec(Replay.Result.Learned);
  bool RolesMatch =
      sameRolesAtThreshold(Incr.Result.Learned, Fresh.Result.Learned, 0.1);
  double Speedup =
      Incr.TotalSeconds > 0.0 ? Cold.TotalSeconds / Incr.TotalSeconds : 0.0;

  TablePrinter Table({"Run", "Parse (s)", "Gen (s)", "Solve (s)",
                      "Total (s)", "Iters", "Shards hit/rebuilt"});
  auto Row = [&](const char *Name, const TimedRun &Run, bool Shards) {
    Table.addRow(
        {Name, formatString("%.3f", Run.Result.BuildSeconds),
         formatString("%.3f", Run.Result.GenSeconds),
         formatString("%.3f", Run.Result.SolveSeconds),
         formatString("%.3f", Run.TotalSeconds),
         std::to_string(Run.Result.Solve.Iterations),
         Shards ? formatString("%llu/%llu",
                               static_cast<unsigned long long>(
                                   Run.Result.Incr.ShardsHit),
                               static_cast<unsigned long long>(
                                   Run.Result.Incr.ShardsRebuilt))
                : std::string("-")});
  };
  Row("cold (populate)", Cold, true);
  Row("fresh (no cache)", Fresh, false);
  Row("incremental+warm", Incr, true);
  Row("replay (cold init)", Replay, true);
  Table.print(std::cout);

  std::cout << formatString(
      "\nre-learn speedup over cold learn: %.2fx "
      "(%.2fx over fresh, %d warm iteration(s))\n"
      "touched project rebuilt exactly one shard: %s\n"
      "cold-init replay byte-identical to fresh: %s\n"
      "warm-started solve selects the same roles: %s\n",
      Speedup,
      Incr.TotalSeconds > 0.0 ? Fresh.TotalSeconds / Incr.TotalSeconds : 0.0,
      WarmIters, OneRebuild ? "yes" : "NO — SHARD KEY BUG",
      Identical ? "yes" : "NO — COMPOSE BUG",
      RolesMatch ? "yes" : "NO — WARM-START BUG");

  if (const char *Out = std::getenv("SELDON_INCR_OUT")) {
    std::ofstream Json(Out, std::ios::trunc);
    Json << "{\n";
    Json << formatString("  \"projects\": %zu,\n", N);
    Json << formatString("  \"files\": %zu,\n", Fresh.Result.NumFiles);
    Json << formatString("  \"jobs\": %u,\n", Jobs);
    Json << formatString("  \"cold_seconds\": %.6f,\n", Cold.TotalSeconds);
    Json << formatString("  \"fresh_seconds\": %.6f,\n", Fresh.TotalSeconds);
    Json << formatString("  \"incr_seconds\": %.6f,\n", Incr.TotalSeconds);
    Json << formatString("  \"incr_speedup\": %.4f,\n", Speedup);
    Json << formatString("  \"warm_budget\": %d,\n", WarmIters);
    Json << formatString(
        "  \"shards_hit\": %llu,\n",
        static_cast<unsigned long long>(Stats.ShardsHit));
    Json << formatString(
        "  \"shards_rebuilt\": %llu,\n",
        static_cast<unsigned long long>(Stats.ShardsRebuilt));
    Json << formatString("  \"warm_iterations\": %d,\n",
                         Incr.Result.Solve.Iterations);
    Json << formatString("  \"fresh_iterations\": %d,\n",
                         Fresh.Result.Solve.Iterations);
    Json << formatString("  \"byte_identical\": %s,\n",
                         Identical ? "true" : "false");
    Json << formatString("  \"warm_roles_match\": %s\n",
                         RolesMatch ? "true" : "false");
    Json << "}\n";
  }
  return (OneRebuild && Identical && RolesMatch) ? 0 : 1;
}
