//===- tests/threadpool_test.cpp - ThreadPool + parallelFor ---------------===//
//
// The pool underpins every parallel phase of the pipeline, so the contract
// it must keep is spelled out here: all indices covered exactly once,
// exceptions propagate to the caller, queued tasks drain on destruction,
// and worker ids stay inside [0, numWorkers()).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

using namespace seldon;

namespace {

TEST(ThreadPoolTest, HardwareConcurrencyAtLeastOne) {
  EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.numWorkers(), 4u);
  constexpr size_t N = 1000;
  std::vector<std::atomic<int>> Hits(N);
  Pool.parallelFor(N, [&](size_t I, unsigned) { ++Hits[I]; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_EQ(Hits[I].load(), 1) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForWorkerIdsInBounds) {
  ThreadPool Pool(3);
  constexpr size_t N = 200;
  std::vector<unsigned> Worker(N, ~0u);
  Pool.parallelFor(N, [&](size_t I, unsigned W) { Worker[I] = W; });
  for (size_t I = 0; I < N; ++I)
    EXPECT_LT(Worker[I], Pool.numWorkers()) << "index " << I;
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndSingleElementRanges) {
  ThreadPool Pool(2);
  std::atomic<int> Calls{0};
  Pool.parallelFor(0, [&](size_t, unsigned) { ++Calls; });
  EXPECT_EQ(Calls.load(), 0);
  Pool.parallelFor(1, [&](size_t I, unsigned W) {
    EXPECT_EQ(I, 0u);
    EXPECT_EQ(W, 0u);
    ++Calls;
  });
  EXPECT_EQ(Calls.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesBodyException) {
  ThreadPool Pool(4);
  EXPECT_THROW(Pool.parallelFor(100,
                                [&](size_t I, unsigned) {
                                  if (I == 37)
                                    throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  // The pool survives a failed loop and keeps working.
  std::atomic<int> Calls{0};
  Pool.parallelFor(10, [&](size_t, unsigned) { ++Calls; });
  EXPECT_EQ(Calls.load(), 10);
}

TEST(ThreadPoolTest, SubmitFutureRethrowsTaskException) {
  ThreadPool Pool(2);
  std::future<void> Ok = Pool.submit([] {});
  std::future<void> Bad =
      Pool.submit([] { throw std::logic_error("task failed"); });
  EXPECT_NO_THROW(Ok.get());
  EXPECT_THROW(Bad.get(), std::logic_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  constexpr int N = 64;
  std::atomic<int> Completed{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < N; ++I)
      Pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++Completed;
      });
    // Destructor runs with most tasks still queued.
  }
  EXPECT_EQ(Completed.load(), N);
}

TEST(ThreadPoolTest, ParallelForMoreIndicesThanWorkersBalances) {
  ThreadPool Pool(2);
  std::atomic<long> Sum{0};
  Pool.parallelFor(100, [&](size_t I, unsigned) {
    Sum += static_cast<long>(I);
  });
  EXPECT_EQ(Sum.load(), 99L * 100L / 2L);
}

// Regression: calling parallelFor from a worker of the same pool used to
// deadlock (the caller blocked on futures no idle worker could run). The
// nested call must run inline instead.
TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  ThreadPool Pool(2);
  constexpr size_t Outer = 8;
  constexpr size_t Inner = 16;
  std::atomic<long> Sum{0};
  Pool.parallelFor(Outer, [&](size_t, unsigned) {
    Pool.parallelFor(Inner, [&](size_t J, unsigned W) {
      // The inline fallback is serial on the calling worker: Worker id 0.
      EXPECT_EQ(W, 0u);
      Sum += static_cast<long>(J);
    });
  });
  EXPECT_EQ(Sum.load(),
            static_cast<long>(Outer) * (Inner - 1) * Inner / 2);
}

TEST(ThreadPoolTest, ParallelForFromSubmittedTaskRunsInline) {
  ThreadPool Pool(2);
  std::atomic<int> Calls{0};
  auto F = Pool.submit([&] {
    Pool.parallelFor(10, [&](size_t, unsigned) { ++Calls; });
  });
  F.get(); // Used to hang forever.
  EXPECT_EQ(Calls.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesExceptions) {
  ThreadPool Pool(2);
  EXPECT_THROW(
      Pool.parallelFor(4,
                       [&](size_t, unsigned) {
                         Pool.parallelFor(4, [&](size_t J, unsigned) {
                           if (J == 2)
                             throw std::runtime_error("inner");
                         });
                       }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForOnDifferentPoolFromWorkerStaysParallel) {
  // Re-entrancy detection is per pool: a worker of pool A may fan out on
  // pool B normally.
  ThreadPool A(2), B(2);
  std::atomic<int> Calls{0};
  A.parallelFor(4, [&](size_t, unsigned) {
    B.parallelFor(8, [&](size_t, unsigned W) {
      EXPECT_LT(W, B.numWorkers());
      ++Calls;
    });
  });
  EXPECT_EQ(Calls.load(), 32);
}

} // namespace
