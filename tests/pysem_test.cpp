//===- tests/pysem_test.cpp - Tests for project/scope/imports -------------===//

#include "pysem/Project.h"
#include "pysem/QualifiedNames.h"
#include "pysem/ScopeBuilder.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::pysem;
using namespace seldon::pyast;

namespace {

//===----------------------------------------------------------------------===//
// Project
//===----------------------------------------------------------------------===//

TEST(ProjectTest, ModuleNameForPath) {
  EXPECT_EQ(Project::moduleNameForPath("app.py"), "app");
  EXPECT_EQ(Project::moduleNameForPath("pkg/views.py"), "pkg.views");
  EXPECT_EQ(Project::moduleNameForPath("pkg/__init__.py"), "pkg");
  EXPECT_EQ(Project::moduleNameForPath("a/b/c.py"), "a.b.c");
}

TEST(ProjectTest, AddModuleParses) {
  Project P("demo");
  const ModuleInfo &M = P.addModule("pkg/app.py", "x = 1\n");
  EXPECT_EQ(M.ModuleName, "pkg.app");
  EXPECT_TRUE(M.Errors.empty());
  ASSERT_NE(M.Ast, nullptr);
  EXPECT_EQ(M.Ast->Body.size(), 1u);
  EXPECT_EQ(P.numErrors(), 0u);
}

TEST(ProjectTest, ErrorsAreCounted) {
  Project P;
  P.addModule("bad.py", "def f(:\n    pass\n");
  EXPECT_GT(P.numErrors(), 0u);
}

//===----------------------------------------------------------------------===//
// ImportMap / qualified names
//===----------------------------------------------------------------------===//

struct ImportFixture {
  Project P;
  const ModuleInfo *M = nullptr;
  ImportMap Imports;

  explicit ImportFixture(std::string_view Source,
                         std::string Path = "pkg/app.py") {
    M = &P.addModule(std::move(Path), Source);
    Imports.build(M->Ast, M->ModuleName);
  }
};

TEST(ImportMapTest, PlainImport) {
  ImportFixture F("import os\n");
  EXPECT_EQ(F.Imports.resolveRoot("os").value_or(""), "os");
  EXPECT_FALSE(F.Imports.resolveRoot("sys").has_value());
}

TEST(ImportMapTest, DottedImportBindsRoot) {
  ImportFixture F("import os.path\n");
  EXPECT_EQ(F.Imports.resolveRoot("os").value_or(""), "os");
}

TEST(ImportMapTest, ImportAs) {
  ImportFixture F("import numpy as np\n");
  EXPECT_EQ(F.Imports.resolveRoot("np").value_or(""), "numpy");
}

TEST(ImportMapTest, FromImport) {
  ImportFixture F("from flask import request\n");
  EXPECT_EQ(F.Imports.resolveRoot("request").value_or(""), "flask.request");
}

TEST(ImportMapTest, FromImportAs) {
  ImportFixture F("from werkzeug.utils import secure_filename as sf\n");
  EXPECT_EQ(F.Imports.resolveRoot("sf").value_or(""),
            "werkzeug.utils.secure_filename");
}

TEST(ImportMapTest, RelativeImport) {
  ImportFixture F("from . import models\n", "pkg/app.py");
  EXPECT_EQ(F.Imports.resolveRoot("models").value_or(""), "pkg.models");
}

TEST(ImportMapTest, RelativeImportWithModule) {
  ImportFixture F("from .db import session\n", "pkg/app.py");
  EXPECT_EQ(F.Imports.resolveRoot("session").value_or(""), "pkg.db.session");
}

TEST(ImportMapTest, StarImportIgnored) {
  ImportFixture F("from os import *\n");
  EXPECT_EQ(F.Imports.size(), 0u);
}

TEST(ImportMapTest, ImportInsideTryAndFunction) {
  ImportFixture F("try:\n"
                  "    import ujson as json\n"
                  "except ImportError:\n"
                  "    import json\n"
                  "def f():\n"
                  "    import re\n");
  EXPECT_TRUE(F.Imports.resolveRoot("json").has_value());
  EXPECT_EQ(F.Imports.resolveRoot("re").value_or(""), "re");
}

TEST(ImportMapTest, StripRelativeLevels) {
  EXPECT_EQ(stripRelativeLevels("a.b.c", 1), "a.b");
  EXPECT_EQ(stripRelativeLevels("a.b.c", 2), "a");
  EXPECT_EQ(stripRelativeLevels("a", 3), "");
  EXPECT_EQ(stripRelativeLevels("a.b", 0), "a.b");
}

TEST(QualifiedNamesTest, ResolveDottedName) {
  ImportFixture F("from flask import request\nimport os\n");
  AstContext Ctx;
  std::vector<ParseError> Errors;
  ModuleNode *M = parseSource(Ctx, "request.form\nos.path.join\nplain.x\n",
                              &Errors);
  ASSERT_TRUE(Errors.empty());
  auto ExprAt = [&](size_t I) {
    return cast<ExprStmt>(M->Body[I])->Value;
  };
  EXPECT_EQ(resolveDottedName(F.Imports, ExprAt(0)), "flask.request.form");
  EXPECT_EQ(resolveDottedName(F.Imports, ExprAt(1)), "os.path.join");
  EXPECT_EQ(resolveDottedName(F.Imports, ExprAt(2)), "plain.x");
}

TEST(QualifiedNamesTest, NonDottedShapesYieldEmpty) {
  ImportMap Imports;
  AstContext Ctx;
  ModuleNode *M = parseSource(Ctx, "f().x\nd['k'].y\n", nullptr);
  EXPECT_EQ(resolveDottedName(
                Imports, cast<ExprStmt>(M->Body[0])->Value),
            "");
  EXPECT_EQ(resolveDottedName(
                Imports, cast<ExprStmt>(M->Body[1])->Value),
            "");
}

//===----------------------------------------------------------------------===//
// ModuleScope
//===----------------------------------------------------------------------===//

struct ScopeFixture {
  Project P;
  ModuleScope Scope;

  explicit ScopeFixture(std::string_view Source) {
    const ModuleInfo &M = P.addModule("mod.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Scope.build(M.Ast, M.ModuleName);
  }
};

TEST(ModuleScopeTest, TopLevelFunctions) {
  ScopeFixture F("def helper(x):\n    return x\n"
                 "def main():\n    pass\n");
  EXPECT_NE(F.Scope.lookupFunction("helper"), nullptr);
  EXPECT_NE(F.Scope.lookupFunction("main"), nullptr);
  EXPECT_EQ(F.Scope.lookupFunction("missing"), nullptr);
}

TEST(ModuleScopeTest, ClassWithMethodsAndBases) {
  ScopeFixture F("from base_driver import ThreadDriver\n"
                 "class ESCPOSDriver(ThreadDriver):\n"
                 "    def status(self, eprint):\n"
                 "        pass\n");
  const ClassInfo *C = F.Scope.lookupClass("ESCPOSDriver");
  ASSERT_NE(C, nullptr);
  ASSERT_EQ(C->BaseQualNames.size(), 1u);
  EXPECT_EQ(C->BaseQualNames[0], "base_driver.ThreadDriver");
  EXPECT_NE(F.Scope.lookupMethod("ESCPOSDriver", "status"), nullptr);
  EXPECT_EQ(F.Scope.lookupMethod("ESCPOSDriver", "missing"), nullptr);
}

TEST(ModuleScopeTest, MethodLookupThroughLocalBase) {
  ScopeFixture F("class Base:\n"
                 "    def shared(self):\n        pass\n"
                 "class Derived(Base):\n"
                 "    def own(self):\n        pass\n");
  EXPECT_NE(F.Scope.lookupMethod("Derived", "own"), nullptr);
  EXPECT_NE(F.Scope.lookupMethod("Derived", "shared"), nullptr)
      << "must search same-module base classes";
  EXPECT_EQ(F.Scope.lookupMethod("Base", "own"), nullptr);
}

TEST(ImportMapTest, DeepRelativeImport) {
  // Two dots from pkg.sub.app climb to package `pkg`.
  ImportFixture F("from ..shared.db import session\n", "pkg/sub/app.py");
  EXPECT_EQ(F.Imports.resolveRoot("session").value_or(""),
            "pkg.shared.db.session");
}

TEST(ImportMapTest, RelativeBeyondRootClamps) {
  ImportFixture F("from ... import models\n", "app.py");
  EXPECT_EQ(F.Imports.resolveRoot("models").value_or(""), "models");
}

TEST(ImportMapTest, LaterBindingWins) {
  ImportFixture F("import json\nimport ujson as json\n");
  EXPECT_EQ(F.Imports.resolveRoot("json").value_or(""), "ujson");
}

TEST(ModuleScopeTest, AccessorsExposeTables) {
  ScopeFixture F("def a():\n    pass\n"
                 "class C:\n"
                 "    def m(self):\n        pass\n");
  EXPECT_EQ(F.Scope.functions().size(), 1u);
  EXPECT_EQ(F.Scope.classes().size(), 1u);
  EXPECT_EQ(F.Scope.moduleName(), "mod");
  const ClassInfo *C = F.Scope.lookupClass("C");
  ASSERT_NE(C, nullptr);
  EXPECT_EQ(C->Methods.size(), 1u);
  EXPECT_TRUE(C->BaseQualNames.empty());
}

TEST(ModuleScopeTest, MethodsAreNotModuleFunctions) {
  ScopeFixture F("class C:\n"
                 "    def m(self):\n        pass\n");
  EXPECT_EQ(F.Scope.lookupFunction("m"), nullptr);
}

TEST(ModuleScopeTest, InheritanceCycleDoesNotHang) {
  ScopeFixture F("class A(B):\n    pass\nclass B(A):\n    pass\n");
  EXPECT_EQ(F.Scope.lookupMethod("A", "anything"), nullptr);
}

} // namespace
