//===- tests/simd_objective_test.cpp - Blocked SIMD kernel tests ----------===//
//
// The SIMD backend's fp64 mode must be an exact drop-in for
// CompiledObjective: byte-identical values, gradients, and optimizer
// trajectories, for any Jobs setting, with either the AVX2 kernels or the
// scalar fallback. Unlike the compiled-vs-legacy comparison (which needs
// grid points or structured rows to pin down the summation order), these
// assertions hold at *arbitrary* points: each SIMD lane accumulates its
// row's terms in the original CSR order with separate mul/add, so every
// per-row value is the same IEEE operation sequence as the scalar kernel.
//
// fp32 mode is exercised two ways: on dyadic systems (coefficients 2^-k,
// grid iterates) where float arithmetic is exact and the results must
// match fp64 bitwise, and on random systems where the value must agree
// within the documented tolerance and a full solve must select the same
// roles.
//
//===----------------------------------------------------------------------===//

#include "solver/AdamOptimizer.h"
#include "solver/CompiledObjective.h"
#include "solver/ProjectedGradient.h"
#include "solver/SimdObjective.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <set>

using namespace seldon;
using namespace seldon::solver;

namespace {

/// A random system in the shape the generator emits (averaging
/// coefficients 1/n, constants that are multiples of 0.25, duplicates,
/// seed pins), large enough to span multiple shards.
Objective randomSystem(uint32_t Seed, size_t NumVars = 60,
                       size_t NumConstraints = 3000, double Lambda = 0.1) {
  std::mt19937 Rng(Seed);
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  std::vector<LinearConstraint> Constraints;
  Constraints.reserve(NumConstraints);
  while (Constraints.size() < NumConstraints) {
    LinearConstraint LC;
    int NumLhs = Rand(1, 3), NumRhs = Rand(0, 3);
    for (int I = 0; I < NumLhs; ++I)
      LC.Lhs.push_back({static_cast<uint32_t>(Rand(0, NumVars - 1)),
                        1.0f / Rand(1, 6)});
    for (int I = 0; I < NumRhs; ++I)
      LC.Rhs.push_back({static_cast<uint32_t>(Rand(0, NumVars - 1)),
                        1.0f / Rand(1, 6)});
    LC.C = 0.25 * Rand(0, 4);
    int Copies = Rand(0, 4) == 0 ? Rand(2, 5) : 1;
    for (int I = 0; I < Copies && Constraints.size() < NumConstraints; ++I)
      Constraints.push_back(LC);
  }
  Objective Obj(NumVars, std::move(Constraints), Lambda);
  for (size_t I = 0; I < NumVars / 10; ++I)
    Obj.pin(Rand(0, NumVars - 1), Rand(0, 1));
  return Obj;
}

/// A system whose coefficients are dyadic (2^-k): every product with a
/// 2^-8 grid point and every partial row sum is exact in *float*, so the
/// fp32 kernel must agree with fp64 bit for bit.
Objective dyadicSystem(uint32_t Seed, size_t NumVars = 50,
                       size_t NumConstraints = 2500, double Lambda = 0.125) {
  std::mt19937 Rng(Seed);
  auto Rand = [&](int Lo, int Hi) {
    return std::uniform_int_distribution<int>(Lo, Hi)(Rng);
  };
  std::vector<LinearConstraint> Constraints;
  Constraints.reserve(NumConstraints);
  while (Constraints.size() < NumConstraints) {
    LinearConstraint LC;
    int NumLhs = Rand(1, 4), NumRhs = Rand(0, 3);
    for (int I = 0; I < NumLhs; ++I)
      LC.Lhs.push_back({static_cast<uint32_t>(Rand(0, NumVars - 1)),
                        1.0f / (1 << Rand(0, 3))});
    for (int I = 0; I < NumRhs; ++I)
      LC.Rhs.push_back({static_cast<uint32_t>(Rand(0, NumVars - 1)),
                        1.0f / (1 << Rand(0, 3))});
    LC.C = 0.25 * Rand(0, 4);
    Constraints.push_back(LC);
  }
  Objective Obj(NumVars, std::move(Constraints), Lambda);
  for (size_t I = 0; I < NumVars / 10; ++I)
    Obj.pin(Rand(0, NumVars - 1), Rand(0, 1));
  return Obj;
}

/// A random point on the 2^-8 grid.
std::vector<double> gridPoint(std::mt19937 &Rng, size_t NumVars) {
  std::uniform_int_distribution<int> Dist(0, 256);
  std::vector<double> X(NumVars);
  for (double &V : X)
    V = Dist(Rng) / 256.0;
  return X;
}

/// An arbitrary (non-grid) point in [0, 1]. Valid for the fp64
/// comparisons: per-row accumulation order matches the compiled kernel
/// exactly, so no grid alignment is needed.
std::vector<double> randomPoint(std::mt19937 &Rng, size_t NumVars) {
  std::uniform_real_distribution<double> Dist(0.0, 1.0);
  std::vector<double> X(NumVars);
  for (double &V : X)
    V = Dist(Rng);
  return X;
}

bool bitwiseEqual(const std::vector<double> &A, const std::vector<double> &B) {
  return A.size() == B.size() &&
         std::memcmp(A.data(), B.data(), A.size() * sizeof(double)) == 0;
}

template <class ObjT> SolveResult runAdam(const ObjT &Obj, int Iters = 120) {
  SolveOptions O;
  O.MaxIterations = Iters;
  O.LearningRate = 0.05;
  O.Tolerance = 1e-9;
  AdamOptimizer Opt(O);
  return Opt.minimize(Obj);
}

/// Temporarily forces the scalar fallback via SELDON_SIMD (the dispatch
/// is sampled at construction).
struct ScopedScalarFallback {
  ScopedScalarFallback() { setenv("SELDON_SIMD", "off", 1); }
  ~ScopedScalarFallback() { unsetenv("SELDON_SIMD"); }
};

//===----------------------------------------------------------------------===//
// Layout
//===----------------------------------------------------------------------===//

TEST(SimdLayoutTest, BlocksCoverEveryRowOnce) {
  Objective Legacy = randomSystem(3);
  SimdObjective Simd = SimdObjective::compile(Legacy);
  const CompiledObjective &Inner = Simd.inner();
  EXPECT_EQ(Simd.numRows(), Inner.numRows());
  EXPECT_EQ(Simd.numNonZeros(), Inner.numNonZeros());
  // At least ceil(rows/lanes) blocks, padding bounded by the per-block
  // spread (at most (lanes-1)·width per block).
  EXPECT_GE(Simd.numBlocks() * Simd.lanesPerBlock(), Simd.numRows());
  EXPECT_LT(Simd.numBlocks(), Simd.numRows());
  EXPECT_GT(Simd.paddedEntries(), 0u) << "variable-length rows must pad";
  // Same shard structure as the compiled kernel.
  EXPECT_EQ(Simd.numShards(), Inner.numShards());
}

TEST(SimdLayoutTest, CompileCopiesPins) {
  Objective Legacy(3, {}, 0.1);
  Legacy.pin(1, 1.0);
  SimdObjective Simd = SimdObjective::compile(Legacy);
  EXPECT_TRUE(Simd.isPinned(1));
  EXPECT_DOUBLE_EQ(Simd.pinnedValue(1), 1.0);
  EXPECT_FALSE(Simd.isPinned(0));
  EXPECT_DOUBLE_EQ(Simd.lambda(), 0.1);
}

TEST(SimdLayoutTest, EmptySystemEvaluatesToZero) {
  SimdObjective Simd(4, {}, 0.5);
  std::vector<double> Grad;
  EXPECT_EQ(Simd.hingeLoss({0.0, 0.0, 0.0, 0.0}), 0.0);
  EXPECT_EQ(Simd.valueAndGradient({1.0, 1.0, 1.0, 1.0}, Grad), 2.0);
  for (double G : Grad)
    EXPECT_DOUBLE_EQ(G, 0.5);
}

//===----------------------------------------------------------------------===//
// fp64: byte-identical to CompiledObjective
//===----------------------------------------------------------------------===//

TEST(SimdEquivalenceTest, ValuesAndGradientsBitwiseEqualAtArbitraryPoints) {
  for (uint32_t Seed : {1u, 2u, 3u}) {
    Objective Legacy = randomSystem(Seed);
    CompiledObjective Compiled = CompiledObjective::compile(Legacy);
    SimdObjective Simd = SimdObjective::compile(Legacy);

    std::mt19937 Rng(Seed * 7919);
    for (int Trial = 0; Trial < 20; ++Trial) {
      std::vector<double> X = Trial % 2 ? randomPoint(Rng, Legacy.numVars())
                                        : gridPoint(Rng, Legacy.numVars());
      Compiled.project(X);
      EXPECT_EQ(Compiled.hingeLoss(X), Simd.hingeLoss(X));
      EXPECT_EQ(Compiled.value(X), Simd.value(X));
      std::vector<double> GradC, GradS, GradF;
      Compiled.gradient(X, GradC);
      Simd.gradient(X, GradS);
      EXPECT_TRUE(bitwiseEqual(GradC, GradS)) << "seed " << Seed;
      EXPECT_EQ(Simd.valueAndGradient(X, GradF), Compiled.value(X));
      EXPECT_TRUE(bitwiseEqual(GradF, GradC));
    }
  }
}

TEST(SimdEquivalenceTest, ParallelSweepsBitwiseEqualSerial) {
  Objective Legacy = randomSystem(42);
  SimdObjective Serial = SimdObjective::compile(Legacy);
  SimdObjective Parallel = SimdObjective::compile(Legacy);
  ASSERT_GT(Serial.numShards(), 1u) << "system too small to test sharding";
  ThreadPool Pool(4);
  Parallel.setThreadPool(&Pool);

  std::mt19937 Rng(99);
  for (int Trial = 0; Trial < 10; ++Trial) {
    std::vector<double> X = randomPoint(Rng, Legacy.numVars());
    Serial.project(X);
    std::vector<double> GradS, GradP;
    double ValueS = Serial.valueAndGradient(X, GradS);
    double ValueP = Parallel.valueAndGradient(X, GradP);
    EXPECT_EQ(ValueS, ValueP);
    EXPECT_TRUE(bitwiseEqual(GradS, GradP));
  }
}

TEST(SimdEquivalenceTest, FullAdamTrajectoryMatchesCompiledAcrossJobs) {
  // fp64 SIMD is bit-identical to the compiled kernel at every iterate,
  // so the whole trajectory — iterate values, iteration count,
  // convergence — matches byte for byte, serial and parallel.
  for (uint32_t Seed : {5u, 7u}) {
    Objective Legacy = randomSystem(Seed);
    CompiledObjective Compiled = CompiledObjective::compile(Legacy);
    SimdObjective Serial = SimdObjective::compile(Legacy);
    SimdObjective Parallel = SimdObjective::compile(Legacy);
    ThreadPool Pool(4);
    Parallel.setThreadPool(&Pool);
    SolveResult RC = runAdam(Compiled);
    SolveResult RS = runAdam(Serial);
    SolveResult RP = runAdam(Parallel);
    EXPECT_EQ(RC.Iterations, RS.Iterations);
    EXPECT_EQ(RC.Converged, RS.Converged);
    EXPECT_TRUE(bitwiseEqual(RC.X, RS.X)) << "seed " << Seed;
    EXPECT_EQ(RC.FinalObjective, RS.FinalObjective);
    EXPECT_EQ(RS.Iterations, RP.Iterations);
    EXPECT_TRUE(bitwiseEqual(RS.X, RP.X));
    EXPECT_EQ(RS.FinalObjective, RP.FinalObjective);
  }
}

TEST(SimdEquivalenceTest, ProjectedGradientTrajectoryMatchesCompiled) {
  Objective Legacy = randomSystem(11);
  CompiledObjective Compiled = CompiledObjective::compile(Legacy);
  SimdObjective Simd = SimdObjective::compile(Legacy);
  SolveOptions O;
  O.MaxIterations = 80;
  O.LearningRate = 0.05;
  O.Tolerance = 1e-9;
  ProjectedGradient Opt(O);
  SolveResult RC = Opt.minimize(Compiled);
  SolveResult RS = Opt.minimize(Simd);
  EXPECT_EQ(RC.Iterations, RS.Iterations);
  EXPECT_TRUE(bitwiseEqual(RC.X, RS.X));
}

TEST(SimdEquivalenceTest, WarmStartTrajectoryMatchesCompiled) {
  // Both explicit-X0 and SolveOptions::WarmStart entry points.
  Objective Legacy = randomSystem(13);
  CompiledObjective Compiled = CompiledObjective::compile(Legacy);
  SimdObjective Simd = SimdObjective::compile(Legacy);
  std::mt19937 Rng(17);
  std::vector<double> X0 = randomPoint(Rng, Legacy.numVars());
  SolveOptions O;
  O.MaxIterations = 60;
  O.LearningRate = 0.05;
  O.Tolerance = 1e-9;
  AdamOptimizer Opt(O);
  SolveResult RC = Opt.minimize(Compiled, X0);
  SolveResult RS = Opt.minimize(Simd, X0);
  EXPECT_EQ(RC.Iterations, RS.Iterations);
  EXPECT_TRUE(bitwiseEqual(RC.X, RS.X));

  O.WarmStart = X0;
  AdamOptimizer WarmOpt(O);
  SolveResult RW = WarmOpt.minimize(Simd);
  EXPECT_TRUE(bitwiseEqual(RW.X, RS.X));
}

//===----------------------------------------------------------------------===//
// Runtime dispatch
//===----------------------------------------------------------------------===//

TEST(SimdDispatchTest, ScalarFallbackBitwiseEqualAvx2) {
  // SELDON_SIMD=off forces the scalar kernels (the only path on non-AVX2
  // hosts); both kernels perform the same per-lane operation sequence, so
  // results match byte for byte whichever one dispatch picks.
  Objective Legacy = randomSystem(23);
  SimdObjective Native = SimdObjective::compile(Legacy);
  std::vector<double> XNative, XFallback;
  {
    SolveResult R = runAdam(Native, 60);
    XNative = std::move(R.X);
  }
  {
    ScopedScalarFallback Scoped;
    SimdObjective Fallback = SimdObjective::compile(Legacy);
    EXPECT_FALSE(Fallback.simdActive());
    EXPECT_FALSE(SimdObjective::simdSupported());
    SolveResult R = runAdam(Fallback, 60);
    XFallback = std::move(R.X);
  }
  EXPECT_TRUE(bitwiseEqual(XNative, XFallback));

  // Same check for fp32: scalar-f32 and AVX2-f32 share the lane order.
  SimdObjective NativeF32 =
      SimdObjective::compile(Legacy, SimdPrecision::F32);
  SolveResult RN = runAdam(NativeF32, 60);
  {
    ScopedScalarFallback Scoped;
    SimdObjective FallbackF32 =
        SimdObjective::compile(Legacy, SimdPrecision::F32);
    EXPECT_FALSE(FallbackF32.simdActive());
    SolveResult RF = runAdam(FallbackF32, 60);
    EXPECT_TRUE(bitwiseEqual(RN.X, RF.X));
  }
}

//===----------------------------------------------------------------------===//
// fp32 mode
//===----------------------------------------------------------------------===//

TEST(SimdF32Test, ExactOnDyadicSystems) {
  // Dyadic coefficients and grid iterates make every float operation
  // exact, so fp32 must reproduce the fp64 results bit for bit — this
  // isolates layout/plumbing bugs from genuine rounding.
  for (uint32_t Seed : {31u, 32u}) {
    Objective Legacy = dyadicSystem(Seed);
    CompiledObjective Compiled = CompiledObjective::compile(Legacy);
    SimdObjective F32 = SimdObjective::compile(Legacy, SimdPrecision::F32);
    EXPECT_EQ(F32.precision(), SimdPrecision::F32);
    std::mt19937 Rng(Seed * 131);
    for (int Trial = 0; Trial < 10; ++Trial) {
      std::vector<double> X = gridPoint(Rng, Legacy.numVars());
      Compiled.project(X);
      EXPECT_EQ(Compiled.hingeLoss(X), F32.hingeLoss(X));
      std::vector<double> GradC, GradF;
      Compiled.gradient(X, GradC);
      F32.gradient(X, GradF);
      EXPECT_TRUE(bitwiseEqual(GradC, GradF)) << "seed " << Seed;
    }
  }
}

TEST(SimdF32Test, WithinToleranceOnRandomSystems) {
  // The documented per-evaluation contract: the fp32 hinge agrees with
  // fp64 to float accuracy (relative ~1e-6 per row term; 1e-4 overall is
  // a comfortable envelope for these systems).
  for (uint32_t Seed : {41u, 43u}) {
    Objective Legacy = randomSystem(Seed);
    CompiledObjective Compiled = CompiledObjective::compile(Legacy);
    SimdObjective F32 = SimdObjective::compile(Legacy, SimdPrecision::F32);
    std::mt19937 Rng(Seed * 977);
    for (int Trial = 0; Trial < 10; ++Trial) {
      std::vector<double> X = randomPoint(Rng, Legacy.numVars());
      Compiled.project(X);
      double V64 = Compiled.value(X);
      double V32 = F32.value(X);
      EXPECT_NEAR(V32, V64, 1e-4 * std::max(1.0, std::abs(V64)))
          << "seed " << Seed;
    }
  }
}

TEST(SimdF32Test, FullSolveSelectsTheSameRoles) {
  // End-to-end contract: a full solve on fp32 picks the same role set at
  // the 0.5 threshold as the bit-exact compiled path, with scores close.
  for (uint32_t Seed : {51u, 53u}) {
    Objective Legacy = randomSystem(Seed);
    CompiledObjective Compiled = CompiledObjective::compile(Legacy);
    SimdObjective F32 = SimdObjective::compile(Legacy, SimdPrecision::F32);
    SolveResult RC = runAdam(Compiled);
    SolveResult RF = runAdam(F32);
    std::set<size_t> RolesC, RolesF;
    double MaxDelta = 0.0;
    for (size_t I = 0; I < RC.X.size(); ++I) {
      if (RC.X[I] > 0.5)
        RolesC.insert(I);
      if (RF.X[I] > 0.5)
        RolesF.insert(I);
      MaxDelta = std::max(MaxDelta, std::abs(RC.X[I] - RF.X[I]));
    }
    EXPECT_EQ(RolesC, RolesF) << "seed " << Seed;
    EXPECT_LT(MaxDelta, 5e-3) << "seed " << Seed;
  }
}

} // namespace
