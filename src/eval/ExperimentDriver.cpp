//===- eval/ExperimentDriver.cpp - Shared experiment plumbing -------------===//

#include "eval/ExperimentDriver.h"

#include "support/StrUtil.h"

#include <cstdlib>

using namespace seldon;
using namespace seldon::eval;

int seldon::eval::envInt(const char *Name, int Default) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return Default;
  return std::atoi(Value);
}

corpus::CorpusOptions seldon::eval::standardCorpusOptions() {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = envInt("SELDON_PROJECTS", 300);
  Opts.Seed = static_cast<uint64_t>(envInt("SELDON_SEED", 42));
  return Opts;
}

infer::PipelineOptions seldon::eval::standardPipelineOptions() {
  infer::PipelineOptions Opts;
  Opts.Solve.MaxIterations = envInt("SELDON_SOLVER_ITERS", 600);
  Opts.Solve.LearningRate = 0.02;
  return Opts;
}

CorpusRun
seldon::eval::runStandardExperiment(const corpus::CorpusOptions &CorpusOpts,
                                    const infer::PipelineOptions &PipelineOpts) {
  CorpusRun Run;
  Run.Data = corpus::generateCorpus(CorpusOpts);
  infer::Session S(PipelineOpts);
  S.addProjects(Run.Data.Projects);
  S.generateConstraints(Run.Data.Seed);
  Run.Pipeline = S.solve();
  return Run;
}

std::vector<taint::Violation>
seldon::eval::analyzeCorpus(const CorpusRun &Run, bool UseLearned) {
  taint::RoleResolver Roles(&Run.Data.Seed.Spec,
                            UseLearned ? &Run.Pipeline.Learned : nullptr,
                            ScoreThreshold);
  taint::TaintAnalyzer Analyzer(Run.Pipeline.Graph);
  return Analyzer.analyze(Roles);
}

std::string seldon::eval::percent(double Fraction) {
  return formatString("%.1f%%", Fraction * 100.0);
}
