file(REMOVE_RECURSE
  "libseldon_support.a"
)
