//===- cache/ShardCache.cpp - Persistent constraint-shard cache -----------===//

#include "cache/ShardCache.h"

#include "constraints/ShardCodec.h"
#include "support/BinaryCodec.h"
#include "support/Metrics.h"
#include "support/StrUtil.h"
#include "support/Timer.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

using namespace seldon;
using namespace seldon::cache;

namespace fs = std::filesystem;

namespace {

constexpr size_t KeyPrefixBytes = 8;
constexpr const char *EntrySuffix = ".scs";

} // namespace

CacheKey seldon::cache::projectShardKey(const CacheKey &GraphKey,
                                        const constraints::GenOptions &Gen,
                                        const spec::SeedSpec &Seed) {
  uint64_t Hash = 0xcbf29ce484222325ull;
  codec::hashChunk(Hash, "seldon-shard-cache");
  codec::hashValue(Hash, constraints::ShardCodecVersion);

  // Every generation knob participates: flipping any must regenerate.
  uint64_t CBits;
  static_assert(sizeof(CBits) == sizeof(Gen.C), "C must be a double");
  std::memcpy(&CBits, &Gen.C, sizeof(CBits));
  codec::hashValue(Hash, CBits);
  codec::hashValue(Hash, Gen.RepCutoff);
  codec::hashValue(Hash, Gen.MaxPairsPerAnchor);

  // The seed spec drives both the blacklist filter and the pins. entries()
  // iterates an unordered_map, so sort for a process-independent hash.
  std::vector<std::pair<std::string, uint64_t>> Entries;
  Entries.reserve(Seed.Spec.entries().size());
  for (const auto &[Rep, Mask] : Seed.Spec.entries())
    Entries.emplace_back(Rep, Mask);
  std::sort(Entries.begin(), Entries.end());
  codec::hashValue(Hash, Entries.size());
  for (const auto &[Rep, Mask] : Entries) {
    codec::hashChunk(Hash, Rep);
    codec::hashValue(Hash, Mask);
  }
  codec::hashValue(Hash, Seed.Blacklist.patterns().size());
  for (const std::string &Pattern : Seed.Blacklist.patterns())
    codec::hashChunk(Hash, Pattern);

  // The graph key covers the sources and every frontend knob, so a source
  // touch or build-option flip invalidates the shard too.
  codec::hashValue(Hash, GraphKey.Hash);

  CacheKey Key;
  Key.Hash = Hash;
  return Key;
}

ShardCache::ShardCache(std::string Dir) : Dir(std::move(Dir)) {
  std::error_code Ec;
  fs::create_directories(this->Dir, Ec);
  if (Ec) {
    DirError = formatString("cannot create shard cache directory %s: %s",
                            this->Dir.c_str(), Ec.message().c_str());
    return;
  }
  if (!fs::is_directory(this->Dir, Ec)) {
    DirError = formatString("shard cache path %s is not a directory",
                            this->Dir.c_str());
    return;
  }
  // Same crash-leak discipline as GraphCache: sweep old
  // "<entry>.scs.tmp<seq>" files a dead writer left behind.
  Stats.StaleTempsRemoved = sweepStaleTemps(this->Dir, EntrySuffix);
}

std::string ShardCache::entryPath(const CacheKey &Key) const {
  return Dir + "/" + Key.hex() + EntrySuffix;
}

void ShardCache::recordError(std::string Message) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stats.Errors.push_back(std::move(Message));
}

std::optional<constraints::ConstraintShard>
ShardCache::load(const CacheKey &Key) {
  metrics::Registry &Reg = metrics::Registry::global();
  auto Miss = [&] {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Misses;
  };
  if (!valid()) {
    Miss();
    if (Reg.enabled())
      Reg.counter("shard.misses").add();
    return std::nullopt;
  }

  Timer LoadTimer;
  std::string Path = entryPath(Key);
  std::ifstream In(Path, std::ios::binary);
  if (!In) {
    // Absent entry: a plain miss, not an error.
    Miss();
    if (Reg.enabled())
      Reg.counter("shard.misses").add();
    return std::nullopt;
  }
  std::string Bytes((std::istreambuf_iterator<char>(In)),
                    std::istreambuf_iterator<char>());
  In.close();

  std::string Problem;
  if (Bytes.size() < KeyPrefixBytes) {
    Problem = formatString("truncated shard entry (%zu byte(s), need at "
                           "least %zu for the key prefix)",
                           Bytes.size(), KeyPrefixBytes);
  } else {
    uint64_t StoredKey = 0;
    for (size_t I = 0; I < KeyPrefixBytes; ++I)
      StoredKey |= static_cast<uint64_t>(
                       static_cast<unsigned char>(Bytes[I]))
                   << (8 * I);
    if (StoredKey != Key.Hash) {
      Problem = formatString(
          "shard entry key mismatch: stored %016llx, expected %s",
          static_cast<unsigned long long>(StoredKey), Key.hex().c_str());
    } else {
      io::IOResult<constraints::ConstraintShard> Decoded =
          constraints::decodeShard(
              std::string_view(Bytes).substr(KeyPrefixBytes));
      if (Decoded.ok()) {
        {
          std::lock_guard<std::mutex> Lock(Mutex);
          ++Stats.Hits;
          Stats.BytesRead += Bytes.size();
        }
        if (Reg.enabled()) {
          Reg.counter("shard.hits").add();
          Reg.counter("shard.bytes_read").add(Bytes.size());
          Reg.timer("shard.load_seconds").record(LoadTimer.seconds());
        }
        return std::move(Decoded.Value);
      }
      Problem = Decoded.Error;
    }
  }

  // Corrupt entry: evict it so the rebuild's write-back starts clean, and
  // report a miss so the caller falls back to fresh extraction.
  std::error_code Ec;
  fs::remove(Path, Ec);
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Misses;
    ++Stats.Evictions;
    Stats.Errors.push_back(formatString("evicted %s: %s", Path.c_str(),
                                        Problem.c_str()));
  }
  if (Reg.enabled()) {
    Reg.counter("shard.misses").add();
    Reg.counter("shard.evictions").add();
  }
  return std::nullopt;
}

bool ShardCache::store(const CacheKey &Key,
                       const constraints::ConstraintShard &Shard) {
  metrics::Registry &Reg = metrics::Registry::global();
  if (!valid()) {
    recordError(formatString("cannot store %s: %s", Key.hex().c_str(),
                             DirError.c_str()));
    return false;
  }

  Timer StoreTimer;
  std::string Bytes;
  Bytes.reserve(KeyPrefixBytes + 64);
  for (size_t I = 0; I < KeyPrefixBytes; ++I)
    Bytes.push_back(static_cast<char>((Key.Hash >> (8 * I)) & 0xff));
  Bytes += constraints::encodeShard(Shard);

  // Unique temp name per store call: two workers may store the same key
  // when a corpus contains byte-identical projects.
  static std::atomic<uint64_t> StoreSeq{0};
  std::string Path = entryPath(Key);
  std::string TmpPath = formatString(
      "%s.tmp%llu", Path.c_str(),
      static_cast<unsigned long long>(
          StoreSeq.fetch_add(1, std::memory_order_relaxed)));
  {
    std::ofstream Out(TmpPath, std::ios::binary | std::ios::trunc);
    if (Out)
      Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
    if (!Out) {
      recordError(formatString("cannot write shard entry %s",
                               TmpPath.c_str()));
      std::error_code Ec;
      fs::remove(TmpPath, Ec);
      return false;
    }
  }
  std::error_code Ec;
  fs::rename(TmpPath, Path, Ec);
  if (Ec) {
    recordError(formatString("cannot publish shard entry %s: %s",
                             Path.c_str(), Ec.message().c_str()));
    fs::remove(TmpPath, Ec);
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ++Stats.Stores;
    Stats.BytesWritten += Bytes.size();
  }
  if (Reg.enabled()) {
    Reg.counter("shard.stores").add();
    Reg.counter("shard.bytes_written").add(Bytes.size());
    Reg.timer("shard.store_seconds").record(StoreTimer.seconds());
  }
  return true;
}

CacheStats ShardCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Stats;
}
