//===- tests/eval_test.cpp - Tests for precision + report classification --===//

#include "eval/ExperimentDriver.h"
#include "eval/Precision.h"
#include "eval/ReportClassifier.h"
#include "propgraph/GraphBuilder.h"

#include <gtest/gtest.h>

using namespace seldon;
using namespace seldon::eval;
using namespace seldon::propgraph;

namespace {

//===----------------------------------------------------------------------===//
// Precision
//===----------------------------------------------------------------------===//

struct PrecisionFixture {
  spec::LearnedSpec Learned;
  corpus::GroundTruth Truth;
  spec::SeedSpec Seed;

  PrecisionFixture() {
    // Three correct predictions, one wrong, one seeded, one below zero.
    Learned.setScore("good1()", Role::Source, 0.9);
    Learned.setScore("good2()", Role::Source, 0.5);
    Learned.setScore("good3()", Role::Source, 0.2);
    Learned.setScore("bad()", Role::Source, 0.6);
    Learned.setScore("seeded()", Role::Source, 1.0);
    Learned.setScore("tiny()", Role::Source, 0.05);
    Truth.add("good1()", SourceMask);
    Truth.add("good2()", SourceMask);
    Truth.add("good3()", SourceMask);
    Truth.add("tiny()", SourceMask);
    Truth.add("seeded()", SourceMask);
    Seed.Spec.add("seeded()", Role::Source);
  }
};

TEST(PrecisionTest, ExactPrecisionExcludesSeedsAndThreshold) {
  PrecisionFixture F;
  RolePrecision P =
      exactPrecision(F.Learned, F.Truth, F.Seed, Role::Source, 0.1);
  EXPECT_EQ(P.Predicted, 4u); // good1-3 + bad; seeded excluded, tiny below.
  EXPECT_EQ(P.Correct, 3u);
  EXPECT_DOUBLE_EQ(P.precision(), 0.75);
}

TEST(PrecisionTest, PredictionsSortedByScore) {
  PrecisionFixture F;
  auto Preds = predictionsAbove(F.Learned, F.Truth, F.Seed, Role::Source, 0.1);
  ASSERT_EQ(Preds.size(), 4u);
  EXPECT_EQ(Preds[0].Rep, "good1()");
  EXPECT_EQ(Preds[1].Rep, "bad()");
  EXPECT_FALSE(Preds[1].Correct);
}

TEST(PrecisionTest, TopKPrecision) {
  PrecisionFixture F;
  RolePrecision Top2 = topKPrecision(F.Learned, F.Truth, F.Seed,
                                     Role::Source, 2);
  EXPECT_EQ(Top2.Predicted, 2u);
  EXPECT_EQ(Top2.Correct, 1u); // good1 + bad.
  RolePrecision Top100 = topKPrecision(F.Learned, F.Truth, F.Seed,
                                       Role::Source, 100);
  EXPECT_EQ(Top100.Predicted, 5u) << "capped at available predictions";
}

TEST(PrecisionTest, SampleDeterministicAndCapped) {
  PrecisionFixture F;
  auto S1 = sampledPredictions(F.Learned, F.Truth, F.Seed, Role::Source, 0.1,
                               2, 17);
  auto S2 = sampledPredictions(F.Learned, F.Truth, F.Seed, Role::Source, 0.1,
                               2, 17);
  ASSERT_EQ(S1.size(), 2u);
  EXPECT_EQ(S1[0].Rep, S2[0].Rep);
  EXPECT_GE(S1[0].Score, S1[1].Score) << "sample sorted by score";
}

TEST(PrecisionTest, CumulativePrecisionCurve) {
  std::vector<ScoredPrediction> Sample = {
      {"a", 0.9, true}, {"b", 0.8, true}, {"c", 0.5, false}, {"d", 0.2, true}};
  std::vector<double> Curve = cumulativePrecision(Sample);
  ASSERT_EQ(Curve.size(), 4u);
  EXPECT_DOUBLE_EQ(Curve[0], 1.0);
  EXPECT_DOUBLE_EQ(Curve[1], 1.0);
  EXPECT_NEAR(Curve[2], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(Curve[3], 0.75);
}

TEST(PrecisionTest, ExactF1CountsRecallOverNonSeedTruth) {
  PrecisionFixture F;
  RoleF1 R = exactF1(F.Learned, F.Truth, F.Seed, Role::Source, 0.1);
  EXPECT_EQ(R.Predicted, 4u); // good1-3 + bad; seeded excluded, tiny below.
  EXPECT_EQ(R.Correct, 3u);
  EXPECT_EQ(R.TruthReps, 4u); // good1-3 + tiny; seeded() excluded.
  EXPECT_DOUBLE_EQ(R.precision(), 0.75);
  EXPECT_DOUBLE_EQ(R.recall(), 0.75);
  EXPECT_DOUBLE_EQ(R.f1(), 0.75);
}

TEST(PrecisionTest, MacroF1AveragesRolesAndHitsTheRoleMemo) {
  PrecisionFixture F;
  // Source scores 0.75 F1; sanitizer and sink have no truth and no
  // predictions, contributing zero each.
  EXPECT_DOUBLE_EQ(macroF1(F.Learned, F.Truth, F.Seed, 0.1), 0.25);
  // A threshold sweep reuses the memoized role lists: the truth role maps
  // are derived exactly once no matter how many F1s are computed.
  for (double T : {0.05, 0.1, 0.3, 0.6, 0.9})
    macroF1(F.Learned, F.Truth, F.Seed, T);
  EXPECT_EQ(F.Truth.derivations(), 1u);
}

//===----------------------------------------------------------------------===//
// Report classification (Tab. 6)
//===----------------------------------------------------------------------===//

struct ReportFixture {
  pysem::Project Proj;
  PropagationGraph Graph;
  corpus::GroundTruth Truth;
  std::vector<corpus::GeneratedFlow> Flows;

  explicit ReportFixture(std::string_view Source) {
    const pysem::ModuleInfo &M = Proj.addModule("p/app.py", Source);
    EXPECT_TRUE(M.Errors.empty());
    Graph = buildModuleGraph(Proj, M);
  }

  taint::Violation reportBetween(const std::string &SrcRep,
                                 const std::string &SnkRep) {
    taint::Violation V;
    for (const Event &E : Graph.events()) {
      if (E.primaryRep() == SrcRep)
        V.Source = E.Id;
      if (E.primaryRep() == SnkRep)
        V.Sink = E.Id;
    }
    EXPECT_NE(V.Source, InvalidEvent);
    EXPECT_NE(V.Sink, InvalidEvent);
    // Reconstruct some witness path via BFS reachability (direct flows in
    // these fixtures are short).
    V.Path = {V.Source};
    std::vector<EventId> R = Graph.reachableFrom(V.Source);
    for (EventId Mid : R)
      if (Mid != V.Sink &&
          std::find(R.begin(), R.end(), Mid) != R.end()) {
        // Insert intermediate events lying on a path (approximation:
        // events both reachable from source and reaching sink).
        auto Back = Graph.reachingTo(V.Sink);
        if (std::find(Back.begin(), Back.end(), Mid) != Back.end())
          V.Path.push_back(Mid);
      }
    V.Path.push_back(V.Sink);
    V.FileIdx = Graph.event(V.Source).FileIdx;
    return V;
  }
};

TEST(ReportClassifierTest, TrueVulnerability) {
  ReportFixture F("import web\nimport db\ndb.exec(web.read())\n");
  F.Truth.add("web.read()", SourceMask);
  F.Truth.add("db.exec()", SinkMask);
  F.Flows.push_back({"p/app.py", "web.read()", "db.exec()", "sqli", false,
                     true, false});
  auto V = F.reportBetween("web.read()", "db.exec()");
  EXPECT_EQ(classifyReport(F.Graph, V, F.Truth, F.Flows),
            ReportCategory::TrueVulnerability);
}

TEST(ReportClassifierTest, VulnerableNoBug) {
  ReportFixture F("import web\nimport db\ndb.exec(web.read())\n");
  F.Truth.add("web.read()", SourceMask);
  F.Truth.add("db.exec()", SinkMask);
  F.Flows.push_back({"p/app.py", "web.read()", "db.exec()", "xss", false,
                     false, false});
  auto V = F.reportBetween("web.read()", "db.exec()");
  EXPECT_EQ(classifyReport(F.Graph, V, F.Truth, F.Flows),
            ReportCategory::VulnerableNoBug);
}

TEST(ReportClassifierTest, IncorrectEndpoints) {
  ReportFixture F("import web\nimport db\ndb.exec(web.read())\n");
  F.Truth.add("web.read()", SourceMask);
  auto V = F.reportBetween("web.read()", "db.exec()");
  EXPECT_EQ(classifyReport(F.Graph, V, F.Truth, F.Flows),
            ReportCategory::IncorrectSink);

  corpus::GroundTruth OnlySink;
  OnlySink.add("db.exec()", SinkMask);
  EXPECT_EQ(classifyReport(F.Graph, V, OnlySink, F.Flows),
            ReportCategory::IncorrectSource);

  corpus::GroundTruth Neither;
  EXPECT_EQ(classifyReport(F.Graph, V, Neither, F.Flows),
            ReportCategory::IncorrectSourceAndSink);
}

TEST(ReportClassifierTest, MissingSanitizer) {
  ReportFixture F("import web\nimport clean\nimport db\n"
                  "db.exec(clean.scrub(web.read()))\n");
  F.Truth.add("web.read()", SourceMask);
  F.Truth.add("db.exec()", SinkMask);
  F.Truth.add("clean.scrub()", SanitizerMask);
  auto V = F.reportBetween("web.read()", "db.exec()");
  EXPECT_EQ(classifyReport(F.Graph, V, F.Truth, F.Flows),
            ReportCategory::MissingSanitizer);
}

TEST(ReportClassifierTest, WrongParameter) {
  ReportFixture F("import web\nimport db\n"
                  "data = web.read()\n"
                  "db.exec('static', meta=data)\n");
  F.Truth.add("web.read()", SourceMask);
  F.Truth.add("db.exec()", SinkMask);
  F.Flows.push_back({"p/app.py", "web.read()", "db.exec()", "sqli", false,
                     false, true});
  auto V = F.reportBetween("web.read()", "db.exec()");
  EXPECT_EQ(classifyReport(F.Graph, V, F.Truth, F.Flows),
            ReportCategory::WrongParameter);
}

TEST(ReportClassifierTest, BreakdownCountsAndSampling) {
  ReportFixture F("import web\nimport db\ndb.exec(web.read())\n");
  F.Truth.add("web.read()", SourceMask);
  F.Truth.add("db.exec()", SinkMask);
  F.Flows.push_back({"p/app.py", "web.read()", "db.exec()", "sqli", false,
                     true, false});
  auto V = F.reportBetween("web.read()", "db.exec()");
  std::vector<taint::Violation> Reports{V, V, V};
  ReportBreakdown All =
      classifyReports(F.Graph, Reports, F.Truth, F.Flows);
  EXPECT_EQ(All.Total, 3u);
  EXPECT_EQ(All.count(ReportCategory::TrueVulnerability), 3u);
  ReportBreakdown Sampled =
      classifyReports(F.Graph, Reports, F.Truth, F.Flows, 2, 5);
  EXPECT_EQ(Sampled.Total, 2u);
  EXPECT_DOUBLE_EQ(Sampled.fraction(ReportCategory::TrueVulnerability), 1.0);
}

//===----------------------------------------------------------------------===//
// Experiment driver smoke test (small end-to-end corpus run)
//===----------------------------------------------------------------------===//

TEST(ExperimentDriverTest, SmallCorpusEndToEnd) {
  corpus::CorpusOptions CorpusOpts;
  CorpusOpts.NumProjects = 100;
  CorpusOpts.Seed = 3;
  infer::PipelineOptions PipelineOpts;
  PipelineOpts.Solve.MaxIterations = 800;
  PipelineOpts.Solve.LearningRate = 0.02;

  CorpusRun Run = runStandardExperiment(CorpusOpts, PipelineOpts);
  EXPECT_GT(Run.Pipeline.System.NumCandidates, 100u);
  EXPECT_GT(Run.Pipeline.System.Constraints.size(), 10u);

  // Inferred specs must add reports over the seed-only run.
  auto SeedReports = analyzeCorpus(Run, /*UseLearned=*/false);
  auto FullReports = analyzeCorpus(Run, /*UseLearned=*/true);
  EXPECT_GT(FullReports.size(), SeedReports.size());

  // And the inferred spec must contain some correct predictions.
  RolePrecision P =
      exactPrecision(Run.Pipeline.Learned, Run.Data.Truth, Run.Data.Seed,
                     Role::Source, ScoreThreshold);
  EXPECT_GT(P.Predicted, 0u);
  EXPECT_GT(P.Correct, 0u);
}

TEST(ExperimentDriverTest, PercentFormatting) {
  EXPECT_EQ(percent(0.666), "66.6%");
  EXPECT_EQ(percent(0.0), "0.0%");
  EXPECT_EQ(percent(1.0), "100.0%");
}

} // namespace
