//===- tests/TestCorpus.h - Shared seeded-RNG corpus setup -------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place tests configure corpus::CorpusGenerator: a seeded corpus
/// of a given size, the corpus-order global graph, and a unique scratch
/// directory helper for cache tests. Property, codec, and cache tests all
/// draw their randomized inputs from here so "the corpus at seed S" means
/// the same thing in every suite.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_TESTS_TESTCORPUS_H
#define SELDON_TESTS_TESTCORPUS_H

#include "corpus/CorpusGenerator.h"
#include "propgraph/GraphBuilder.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <string>

#include <unistd.h>

namespace seldon {
namespace testutil {

/// Generates the standard test corpus for \p Seed: \p NumProjects small
/// synthetic web apps plus the paper-style seed specification and ground
/// truth. Deterministic in (Seed, NumProjects).
inline corpus::Corpus makeCorpus(uint64_t Seed, int NumProjects = 8) {
  corpus::CorpusOptions Opts;
  Opts.NumProjects = NumProjects;
  Opts.Seed = Seed;
  return corpus::generateCorpus(Opts);
}

/// Builds the corpus-order global propagation graph of \p Data — the same
/// merge order Session::buildGraph uses, so event ids match a pipeline
/// run.
inline propgraph::PropagationGraph
buildGlobalGraph(const corpus::Corpus &Data,
                 const propgraph::BuildOptions &Opts =
                     propgraph::BuildOptions()) {
  propgraph::PropagationGraph Global;
  for (const pysem::Project &P : Data.Projects)
    Global.append(propgraph::buildProjectGraph(P, Opts));
  return Global;
}

/// Adds every project of \p Data except the corpus indices in \p Skip to
/// \p Session (relative order preserved) — the survivor set of a
/// quarantine test. Templated so this header stays independent of
/// infer/Pipeline.h.
template <class SessionT>
inline void addProjectsExcept(SessionT &Session, const corpus::Corpus &Data,
                              std::initializer_list<size_t> Skip) {
  auto Skipped = [&](size_t I) {
    for (size_t S : Skip)
      if (S == I)
        return true;
    return false;
  };
  for (size_t I = 0; I < Data.Projects.size(); ++I)
    if (!Skipped(I))
      Session.addProject(Data.Projects[I]);
}

/// Creates a fresh, uniquely named scratch directory under gtest's temp
/// root. Each call returns a different directory, so tests sharing a
/// binary (or running in parallel) never collide.
inline std::string makeScratchDir(const std::string &Prefix) {
  static std::atomic<uint64_t> Seq{0};
  std::string Dir = ::testing::TempDir() + Prefix + "-" +
                    std::to_string(::getpid()) + "-" +
                    std::to_string(Seq.fetch_add(1));
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace testutil
} // namespace seldon

#endif // SELDON_TESTS_TESTCORPUS_H
