//===- merlin/LoopyBeliefPropagation.h - Sum-product inference ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loopy belief propagation (sum-product) over binary factor graphs,
/// standing in for the Expectation Propagation engine of Infer.NET that the
/// paper drives Merlin with (§7.4). Damped, with a wall-clock budget so the
/// Tab. 2 scalability experiment can report timeouts.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_MERLIN_LOOPYBELIEFPROPAGATION_H
#define SELDON_MERLIN_LOOPYBELIEFPROPAGATION_H

#include "merlin/FactorGraph.h"

namespace seldon {
namespace merlin {

/// Knobs for BP.
struct BpOptions {
  int MaxIterations = 200;
  /// New message = Damping * old + (1 - Damping) * computed.
  double Damping = 0.3;
  /// Convergence threshold on the max message change.
  double Tolerance = 1e-6;
  /// Wall-clock budget in seconds; <= 0 means unlimited.
  double TimeoutSeconds = 0.0;
};

/// Marginals and run metadata.
struct InferenceResult {
  /// P(x_v = 1) for every variable.
  std::vector<double> Marginals;
  bool Converged = false;
  bool TimedOut = false;
  int Iterations = 0;
  double Seconds = 0.0;
};

/// Sum-product message passing.
class LoopyBeliefPropagation {
public:
  explicit LoopyBeliefPropagation(BpOptions Options = BpOptions())
      : Options(Options) {}

  InferenceResult run(const FactorGraph &Graph) const;

private:
  BpOptions Options;
};

} // namespace merlin
} // namespace seldon

#endif // SELDON_MERLIN_LOOPYBELIEFPROPAGATION_H
