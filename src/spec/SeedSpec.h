//===- spec/SeedSpec.h - Hand-labeled seed specifications --------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The seed specification format of paper App. B: a line-oriented text file
/// where `o:` marks sources, `a:` sanitizers, `i:` sinks, and `b:`
/// blacklisted wildcard patterns; `#` starts a comment.
///
/// Seed entries pin constraint variables during learning (§4.1, Constraints
/// for Known Variables); blacklist patterns exclude common library noise
/// from taking any role (§7.2).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SPEC_SEEDSPEC_H
#define SELDON_SPEC_SEEDSPEC_H

#include "spec/TaintSpec.h"
#include "support/Glob.h"

#include <string>
#include <string_view>
#include <vector>

namespace seldon {
namespace spec {

/// A parsed seed specification.
struct SeedSpec {
  TaintSpec Spec;    ///< o:/a:/i: entries.
  GlobSet Blacklist; ///< b: patterns.

  /// True if \p Rep is blacklisted from all roles.
  bool isBlacklisted(const std::string &Rep) const {
    return Blacklist.matches(Rep);
  }

  /// Parses the App. B text format. Unknown line kinds are reported into
  /// \p ErrorsOut (one message per bad line) and skipped.
  static SeedSpec parse(std::string_view Text,
                        std::vector<std::string> *ErrorsOut = nullptr);

  /// Keeps only every second specification line (by entry index within each
  /// role, deterministic order), reproducing the half-seed ablation of
  /// paper Q6. Blacklist patterns are kept in full.
  SeedSpec halved() const;
};

/// A representative excerpt of the paper's App. B seed specification
/// (sources, SQL-injection, XSS, path-traversal, open-redirect entries and
/// the common blacklist patterns). Used by examples and tests; the corpus
/// experiments use the generator's own seed (see corpus/ApiUniverse.h).
const char *paperSeedSpecText();

} // namespace spec
} // namespace seldon

#endif // SELDON_SPEC_SEEDSPEC_H
