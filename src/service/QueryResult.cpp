//===- service/QueryResult.cpp - Point-query results ----------------------===//

#include "service/QueryResult.h"

#include "constraints/Explain.h"
#include "support/StrUtil.h"

using namespace seldon;
using namespace seldon::service;

bool seldon::service::roleFromName(const std::string &Name,
                                   propgraph::Role &Out) {
  if (Name == "source")
    Out = propgraph::Role::Source;
  else if (Name == "sanitizer")
    Out = propgraph::Role::Sanitizer;
  else if (Name == "sink")
    Out = propgraph::Role::Sink;
  else
    return false;
  return true;
}

QueryResult
seldon::service::queryRep(const constraints::ConstraintSystem &System,
                          const propgraph::RepTable &Reps,
                          const std::string &Rep, propgraph::Role Role,
                          const std::vector<double> &X) {
  QueryResult Q;
  Q.Rep = Rep;
  Q.Role = Role;
  constraints::Explanation E =
      constraints::explainRep(System, Reps, Rep, Role, X);
  Q.Found = E.Found;
  if (!E.Found)
    return Q;
  Q.Score = E.Score;
  Q.Pinned = E.Pinned;
  Q.PinnedValue = E.PinnedValue;
  Q.Constraints.reserve(E.Constraints.size());
  for (const constraints::ExplainedConstraint &C : E.Constraints)
    Q.Constraints.push_back({C.Text, C.Residual, C.OnLhs});
  return Q;
}

std::string seldon::service::renderQueryJson(const QueryResult &Q) {
  std::string Out = "{\"rep\":\"" + jsonEscape(Q.Rep) + "\",\"role\":\"" +
                    propgraph::roleName(Q.Role) + "\",\"found\":" +
                    (Q.Found ? "true" : "false");
  Out += formatString(",\"score\":%.6f", Q.Score);
  Out += Q.Pinned ? ",\"pinned\":true" : ",\"pinned\":false";
  Out += formatString(",\"pinned_value\":%.6f", Q.PinnedValue);
  Out += ",\"constraints\":[";
  for (size_t I = 0; I < Q.Constraints.size(); ++I) {
    const QueryConstraint &C = Q.Constraints[I];
    if (I)
      Out += ",";
    Out += formatString("{\"kind\":\"%s\",\"residual\":%.6f,\"text\":\"%s\"}",
                        C.Caps ? "caps" : "demands", C.Residual,
                        jsonEscape(C.Text).c_str());
  }
  Out += "]}";
  return Out;
}

std::string seldon::service::renderQueryText(const QueryResult &Q) {
  std::string Out = formatString(
      "%s as %s: score %.3f%s\n%zu constraint(s) mention it:\n",
      Q.Rep.c_str(), propgraph::roleName(Q.Role), Q.Score,
      Q.Pinned
          ? formatString(" (pinned to %.0f by the seed)", Q.PinnedValue)
                .c_str()
          : "",
      Q.Constraints.size());
  for (const QueryConstraint &C : Q.Constraints)
    Out += formatString("  [%s, residual %+.3f] %s\n",
                        C.Caps ? "caps it" : "demands it", C.Residual,
                        C.Text.c_str());
  return Out;
}
