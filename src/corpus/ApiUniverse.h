//===- corpus/ApiUniverse.h - The library-API world --------------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The universe of library APIs the synthetic web-app corpus draws from.
/// It mirrors the structure of the paper's dataset:
///
///  * a hand-written core of real-flavoured web APIs (flask / django /
///    werkzeug / DB drivers) carrying the ~100-entry seed specification
///    (App. B);
///  * a much larger procedurally generated long tail of "third-party"
///    libraries whose roles are ground truth but NOT in the seed — these
///    are what Seldon must infer;
///  * neutral helper APIs with no security role (the bulk of candidates).
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CORPUS_APIUNIVERSE_H
#define SELDON_CORPUS_APIUNIVERSE_H

#include "corpus/GroundTruth.h"
#include "spec/SeedSpec.h"

#include <optional>
#include <string>
#include <vector>

namespace seldon {
namespace corpus {

/// One callable (or readable) library API.
struct ApiInfo {
  /// Representation string as the graph builder renders it, e.g.
  /// "flask.request.args.get()".
  std::string Rep;
  /// Import line required by Expr, e.g. "from flask import request".
  std::string Import;
  /// Python expression template; "{}" is the tainted-argument slot for
  /// sinks/sanitizers (absent for sources).
  std::string Expr;
  /// Ground-truth roles (0 for neutral helpers).
  RoleMask Roles = 0;
  /// Part of the seed specification handed to the learner.
  bool InSeed = false;
  /// Vulnerability class ("xss", "sqli", "path", "cmdi", "redirect").
  std::string VulnClass;
  /// Hand-written popular-framework API (true) vs procedural long tail
  /// (false). Popular APIs are picked more often by the generator, the way
  /// flask/django dominate real corpora.
  bool Core = true;
};

/// Size knobs of the procedural long tail.
struct UniverseOptions {
  /// Number of procedurally generated third-party library families.
  int NumUnknownLibs = 40;
  /// Sources / sanitizers / sinks per unknown library family.
  int ApisPerRolePerLib = 3;
  /// Neutral helpers per unknown library family.
  int NeutralsPerLib = 6;
};

/// Derives the argument-position suffix of the "{}" taint slot in a
/// sink/sanitizer expression template: "[arg0]" for the first positional
/// argument, "[kw:data]" for a keyword argument, std::nullopt when the
/// template has no slot. Used to build argument-position-sensitive seeds
/// and ground truth (cf. BuildOptions::ArgPositionReps).
std::optional<std::string> taintSlotSuffix(const std::string &ExprTemplate);

/// The complete API world.
class ApiUniverse {
public:
  /// Builds the standard universe.
  static ApiUniverse standard(const UniverseOptions &Opts =
                                  UniverseOptions());

  const std::vector<ApiInfo> &sources() const { return Sources; }
  const std::vector<ApiInfo> &sanitizers() const { return Sanitizers; }
  const std::vector<ApiInfo> &sinks() const { return Sinks; }
  const std::vector<ApiInfo> &neutrals() const { return Neutrals; }

  /// Sanitizers/sinks restricted to one vulnerability class.
  std::vector<const ApiInfo *> sanitizersOf(const std::string &Cls) const;
  std::vector<const ApiInfo *> sinksOf(const std::string &Cls) const;

  /// The seed specification (InSeed entries + the builtin blacklist).
  spec::SeedSpec seedSpec() const;

  /// Ground truth over every API with a role.
  GroundTruth groundTruth() const;

  /// All vulnerability classes in use.
  static const std::vector<std::string> &vulnClasses();

private:
  void addApi(ApiInfo Info);

  std::vector<ApiInfo> Sources, Sanitizers, Sinks, Neutrals;
};

} // namespace corpus
} // namespace seldon

#endif // SELDON_CORPUS_APIUNIVERSE_H
