# Empty compiler generated dependencies file for projectloader_test.
# This may be replaced when dependencies are built.
