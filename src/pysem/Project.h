//===- pysem/Project.h - A collection of parsed Python modules ---*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Project owns the ASTs of all source files of one repository. The
/// propagation graph builder runs per file (paper §3: per-program graphs are
/// disjoint), but same-module function lookup and import resolution need the
/// project-level view.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_PYSEM_PROJECT_H
#define SELDON_PYSEM_PROJECT_H

#include "pyast/Ast.h"
#include "pyast/Parser.h"

#include <string>
#include <vector>

namespace seldon {
namespace pysem {

/// One parsed source file of a project.
struct ModuleInfo {
  std::string Path;       ///< Repository-relative path, e.g. "app/views.py".
  std::string ModuleName; ///< Dotted module name, e.g. "app.views".
  std::string Source;     ///< The original text (kept for report quoting
                          ///< and external validation).
  pyast::ModuleNode *Ast = nullptr;
  std::vector<pyast::ParseError> Errors;
};

/// A set of parsed modules sharing one AstContext.
class Project {
public:
  explicit Project(std::string Name = "project") : Name(std::move(Name)) {}
  Project(Project &&) = default;
  Project &operator=(Project &&) = default;

  /// Parses \p Source and registers it under \p Path. The module name is
  /// derived from the path ("a/b.py" -> "a.b"; "__init__.py" maps to the
  /// package name). Returns the stored module.
  const ModuleInfo &addModule(std::string Path, std::string_view Source);

  const std::vector<ModuleInfo> &modules() const { return Modules; }
  const std::string &name() const { return Name; }
  pyast::AstContext &context() { return Ctx; }

  /// Total number of parse/lex diagnostics across all modules.
  size_t numErrors() const;

  /// Derives the dotted module name for a repository-relative path.
  static std::string moduleNameForPath(std::string_view Path);

private:
  std::string Name;
  pyast::AstContext Ctx;
  std::vector<ModuleInfo> Modules;
};

} // namespace pysem
} // namespace seldon

#endif // SELDON_PYSEM_PROJECT_H
