//===- service/FeedbackJson.h - Feedback wire/file format --------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared JSON shape of user feedback, used by both the `seldond`
/// `feedback` op (request params) and the CLI's `--feedback` file:
///
///   {"accept":[{"rep":"flask.escape()","role":"sanitizer"}, ...],
///    "reject":[{"rep":"eval()","role":"sanitizer"}, ...]}
///
/// Either array may be absent; at least one non-empty array is required.
/// One parser for both front-ends keeps the validation — and the
/// structured bad-request messages — identical on the wire and on disk.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SERVICE_FEEDBACKJSON_H
#define SELDON_SERVICE_FEEDBACKJSON_H

#include "constraints/Feedback.h"
#include "service/Json.h"

#include <cstddef>
#include <string>

namespace seldon {
namespace service {

/// Merges the "accept"/"reject" members of \p Doc into \p Out. Returns
/// false with a message on malformed entries (non-array members, entries
/// without a string "rep", unknown roles, or neither array present /
/// both empty). \p Accepted / \p Rejected (optional) receive the entry
/// counts of this document.
bool feedbackFromJson(const JsonValue &Doc, constraints::FeedbackSet &Out,
                      std::string &Error, size_t *Accepted = nullptr,
                      size_t *Rejected = nullptr);

/// Reads \p Path and parses it with feedbackFromJson.
bool loadFeedbackFile(const std::string &Path, constraints::FeedbackSet &Out,
                      std::string &Error, size_t *Accepted = nullptr,
                      size_t *Rejected = nullptr);

} // namespace service
} // namespace seldon

#endif // SELDON_SERVICE_FEEDBACKJSON_H
