//===- solver/AdamOptimizer.h - Projected Adam descent -----------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Projected Adam (Kingma & Ba 2014), the optimizer the paper uses through
/// TensorFlow (§4.4): full-batch subgradient steps with first/second moment
/// estimates and bias correction, projecting onto [0,1] (and the pinned
/// seed values) after every step.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_ADAMOPTIMIZER_H
#define SELDON_SOLVER_ADAMOPTIMIZER_H

#include "solver/Objective.h"

namespace seldon {
namespace solver {

/// Projected Adam gradient descent.
class AdamOptimizer {
public:
  explicit AdamOptimizer(SolveOptions Options = SolveOptions())
      : Options(Options) {}

  /// Minimizes \p Obj starting from Obj.initialPoint().
  SolveResult minimize(const Objective &Obj) const;

  /// Minimizes \p Obj starting from \p X0 (projected first).
  SolveResult minimize(const Objective &Obj, std::vector<double> X0) const;

private:
  SolveOptions Options;
};

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_ADAMOPTIMIZER_H
