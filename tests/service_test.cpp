//===- tests/service_test.cpp - The seldond inference service -------------===//
//
// Exercises the service layer end to end without a process boundary:
// protocol framing and its structured error paths, the warm Service
// against a throwaway corpus (query/learn/taint/status/shutdown), the
// CLI-vs-daemon byte-identity contract, concurrent queries racing a
// learn (the shared_mutex contract — meaningful under TSan), and the
// Unix-socket transport through SocketClient.
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"
#include "service/Protocol.h"
#include "service/QueryResult.h"
#include "service/Service.h"
#include "service/SocketServer.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fs = std::filesystem;

using namespace seldon;
using namespace seldon::service;

namespace {

//===----------------------------------------------------------------------===//
// JSON framing
//===----------------------------------------------------------------------===//

JsonValue parseOk(const std::string &Text) {
  JsonValue V;
  std::string Error;
  EXPECT_TRUE(parseJson(Text, V, Error)) << Text << ": " << Error;
  return V;
}

TEST(ServiceJsonTest, RoundTripsScalarsAndContainers) {
  for (const char *Doc :
       {"null", "true", "false", "3", "-2.5", "\"hi\"", "[]", "[1,2,3]",
        "{}", "{\"a\":1,\"b\":[true,null]}",
        "{\"nested\":{\"deep\":\"\\\"quoted\\\"\"}}"})
    EXPECT_EQ(parseOk(Doc).render(), Doc);
}

TEST(ServiceJsonTest, EscapesAndUnicodeSurvive) {
  JsonValue V = parseOk("\"a\\n\\t\\u00e9\\ud83d\\ude00b\"");
  EXPECT_EQ(V.stringValue(), "a\n\t\xC3\xA9\xF0\x9F\x98\x80"
                             "b");
}

TEST(ServiceJsonTest, MalformedInputsFailWithOffsets) {
  JsonValue V;
  std::string Error;
  for (const char *Doc : {"", "{", "[1,", "{\"a\":}", "tru", "1.2.3",
                          "\"unterminated", "{\"a\":1}x", "nan",
                          "\"bad \\q escape\"", "\"\\ud800\""}) {
    EXPECT_FALSE(parseJson(Doc, V, Error)) << Doc;
    EXPECT_NE(Error.find("at byte"), std::string::npos) << Error;
  }
}

TEST(ServiceJsonTest, DepthIsBounded) {
  std::string Deep(100, '[');
  JsonValue V;
  std::string Error;
  EXPECT_FALSE(parseJson(Deep, V, Error));
  EXPECT_NE(Error.find("nesting too deep"), std::string::npos);
}

TEST(ServiceJsonTest, NumbersRenderShortestRoundTrip) {
  EXPECT_EQ(renderJsonNumber(3.0), "3");
  EXPECT_EQ(renderJsonNumber(-7.0), "-7");
  EXPECT_EQ(renderJsonNumber(0.1), "0.1");
  EXPECT_EQ(renderJsonNumber(2.5), "2.5");
  // Whatever it prints must parse back to the exact double.
  for (double N : {1.0 / 3.0, 1e-7, 123456.789, 0.30000000000000004})
    EXPECT_EQ(std::stod(renderJsonNumber(N)), N);
}

/// Activates a ','-decimal LC_NUMERIC for one test: generates de_DE.UTF-8
/// into a temp dir with localedef (containers rarely ship it) and restores
/// the prior locale and LOCPATH on destruction. `ok()` is false when the
/// host cannot produce the locale at all — the caller should skip.
class CommaDecimalLocale {
public:
  CommaDecimalLocale() {
    const char *Prior = std::setlocale(LC_NUMERIC, nullptr);
    Saved = Prior ? Prior : "C";
    if (const char *Env = std::getenv("LOCPATH"))
      SavedLocPath = Env;
    Dir = fs::temp_directory_path() / "seldon_locale_test";
    std::error_code Ec;
    fs::create_directories(Dir, Ec);
    std::string Cmd = "localedef -i de_DE -f UTF-8 " +
                      (Dir / "de_DE.UTF-8").string() + " >/dev/null 2>&1";
    // localedef exits non-zero on benign warnings; trust setlocale below
    // as the real success check.
    (void)std::system(Cmd.c_str());
    setenv("LOCPATH", Dir.c_str(), 1);
    Active = std::setlocale(LC_NUMERIC, "de_DE.UTF-8") != nullptr;
  }
  ~CommaDecimalLocale() {
    std::setlocale(LC_NUMERIC, Saved.c_str());
    if (SavedLocPath)
      setenv("LOCPATH", SavedLocPath->c_str(), 1);
    else
      unsetenv("LOCPATH");
    std::error_code Ec;
    fs::remove_all(Dir, Ec);
  }
  bool ok() const { return Active; }

private:
  std::string Saved;
  std::optional<std::string> SavedLocPath;
  fs::path Dir;
  bool Active = false;
};

TEST(ServiceJsonTest, NumbersIgnoreNumericLocale) {
  CommaDecimalLocale Locale;
  if (!Locale.ok())
    GTEST_SKIP() << "no comma-decimal locale available on this host";
  // Sanity: the locale really is in force for printf-family formatting.
  char Probe[32];
  std::snprintf(Probe, sizeof(Probe), "%g", 0.5);
  ASSERT_STREQ(Probe, "0,5");
  // Rendering must keep emitting '.'-decimal JSON...
  EXPECT_EQ(renderJsonNumber(0.1), "0.1");
  EXPECT_EQ(renderJsonNumber(2.5), "2.5");
  // (stod would be the wrong round-trip check here — it is itself
  // locale-aware — so go through the service parser.)
  for (double N : {123456.789, -1.0 / 3.0, 1e-7})
    EXPECT_EQ(parseOk(renderJsonNumber(N)).numberValue(), N);
  // ...and parsing must keep accepting it: a locale-aware strtod would
  // stop at the '.' and reject every fractional number on the wire.
  JsonValue V = parseOk("{\"score\":0.125,\"neg\":-2.5,\"exp\":1.5e2}");
  EXPECT_EQ(V.get("score")->numberValue(), 0.125);
  EXPECT_EQ(V.get("neg")->numberValue(), -2.5);
  EXPECT_EQ(V.get("exp")->numberValue(), 150.0);
}

//===----------------------------------------------------------------------===//
// Request parsing + response envelopes
//===----------------------------------------------------------------------===//

TEST(ProtocolTest, ValidRequestParses) {
  Request Req;
  RequestError Err;
  ASSERT_TRUE(parseRequest(
      "{\"v\":1,\"id\":\"q7\",\"op\":\"query\",\"rep\":\"f()\"}",
      DefaultMaxRequestBytes, Req, Err));
  EXPECT_EQ(Req.Version, 1);
  EXPECT_EQ(Req.Id.render(), "\"q7\"");
  EXPECT_EQ(Req.Op, "query");
  ASSERT_NE(Req.Params.get("rep"), nullptr);
  EXPECT_EQ(Req.Params.get("rep")->stringValue(), "f()");
}

TEST(ProtocolTest, MissingIdIsNull) {
  Request Req;
  RequestError Err;
  ASSERT_TRUE(parseRequest("{\"v\":1,\"op\":\"status\"}",
                           DefaultMaxRequestBytes, Req, Err));
  EXPECT_TRUE(Req.Id.isNull());
}

struct BadLine {
  const char *Line;
  ErrorCode Expected;
};

TEST(ProtocolTest, StructuredErrorsInOrder) {
  const BadLine Cases[] = {
      {"not json at all", ErrorCode::BadJson},
      {"[1,2,3]", ErrorCode::BadRequest},          // not an object
      {"{\"op\":\"status\"}", ErrorCode::BadRequest}, // no v
      {"{\"v\":\"1\",\"op\":\"status\"}", ErrorCode::BadRequest},
      {"{\"v\":1.5,\"op\":\"status\"}", ErrorCode::BadRequest},
      {"{\"v\":9,\"op\":\"status\"}", ErrorCode::UnsupportedVersion},
      {"{\"v\":1}", ErrorCode::BadRequest},        // no op
      {"{\"v\":1,\"op\":7}", ErrorCode::BadRequest},
      {"{\"v\":1,\"op\":\"\"}", ErrorCode::BadRequest},
      {"{\"v\":1,\"id\":[1],\"op\":\"status\"}", ErrorCode::BadRequest},
  };
  for (const BadLine &C : Cases) {
    Request Req;
    RequestError Err;
    EXPECT_FALSE(parseRequest(C.Line, DefaultMaxRequestBytes, Req, Err))
        << C.Line;
    EXPECT_EQ(errorCodeName(Err.Code), std::string(errorCodeName(C.Expected)))
        << C.Line << ": " << Err.Message;
  }
}

TEST(ProtocolTest, IdSalvagedOnLaterFailures) {
  // Version gating happens after id salvage, so even an unsupported
  // version echoes the caller's id.
  Request Req;
  RequestError Err;
  EXPECT_FALSE(parseRequest("{\"v\":9,\"id\":5,\"op\":\"status\"}",
                            DefaultMaxRequestBytes, Req, Err));
  EXPECT_EQ(Err.Code, ErrorCode::UnsupportedVersion);
  EXPECT_EQ(Req.Id.render(), "5");
}

TEST(ProtocolTest, OversizedLineIsRejectedBeforeParsing) {
  std::string Huge = "{\"v\":1,\"op\":\"status\",\"pad\":\"" +
                     std::string(4096, 'x') + "\"}";
  Request Req;
  RequestError Err;
  EXPECT_FALSE(parseRequest(Huge, /*MaxBytes=*/1024, Req, Err));
  EXPECT_EQ(Err.Code, ErrorCode::Oversized);
}

TEST(ProtocolTest, EnvelopeKeyOrderIsFixed) {
  // `result` is last so consumers can splice the payload off the end of
  // the line without a JSON parser; check.sh relies on this.
  EXPECT_EQ(renderOkResponse(JsonValue::makeNumber(7), "{\"a\":1}"),
            "{\"v\":1,\"id\":7,\"ok\":true,\"result\":{\"a\":1}}");
  EXPECT_EQ(renderErrorResponse(JsonValue::makeNull(), ErrorCode::BadJson,
                                "bad \"stuff\""),
            "{\"v\":1,\"id\":null,\"ok\":false,\"error\":{\"code\":"
            "\"bad-json\",\"message\":\"bad \\\"stuff\\\"\"}}");
}

//===----------------------------------------------------------------------===//
// The warm service
//===----------------------------------------------------------------------===//

/// Splices the `result` payload off a success envelope (the same
/// byte-oriented extraction the smoke script uses).
std::string resultOf(const std::string &Response) {
  size_t At = Response.find("\"result\":");
  EXPECT_NE(At, std::string::npos) << Response;
  if (At == std::string::npos)
    return std::string();
  return Response.substr(At + 9, Response.size() - At - 9 - 1);
}

class ServiceTest : public ::testing::Test {
protected:
  void SetUp() override {
    Root = fs::temp_directory_path() /
           ("seldon_service_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(Root / "repo");
    std::ofstream Out(Root / "repo" / "app.py");
    Out << "from flask import request\n"
           "import flask\n"
           "\n"
           "def greet():\n"
           "    name = request.args.get('name')\n"
           "    flask.make_response('<h1>' + name + '</h1>')\n"
           "\n"
           "def safe():\n"
           "    name = request.args.get('name')\n"
           "    flask.make_response(flask.escape(name))\n";
  }

  void TearDown() override {
    std::error_code Ec;
    fs::remove_all(Root, Ec);
  }

  Service::Options testOptions() {
    Service::Options Opts;
    Opts.CorpusDirs = {(Root / "repo").string()};
    Opts.Iterations = 200;
    Opts.RepCutoff = 1;
    return Opts;
  }

  std::unique_ptr<Service> startService(Service::Options Opts) {
    auto Svc = std::make_unique<Service>(std::move(Opts));
    std::string Error;
    if (!Svc->start(Error)) {
      ADD_FAILURE() << "start: " << Error;
      return nullptr;
    }
    return Svc;
  }

  fs::path Root;
};

TEST_F(ServiceTest, StatusReportsTheWarmCorpus) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  std::string R = Svc->serve("{\"v\":1,\"id\":1,\"op\":\"status\"}");
  EXPECT_NE(R.find("\"ok\":true"), std::string::npos) << R;
  EXPECT_NE(R.find("\"projects\":1"), std::string::npos) << R;
  EXPECT_NE(R.find("\"files\":1"), std::string::npos) << R;
  EXPECT_NE(R.find("\"protocol\":1"), std::string::npos) << R;
}

TEST_F(ServiceTest, QueryIsByteIdenticalToDirectRendering) {
  // The daemon's wire answer must be exactly renderQueryJson(queryRep())
  // over the warm artifacts — the same call `seldon explain --json`
  // makes, which is what pins CLI and daemon together.
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  std::string R = Svc->serve(
      "{\"v\":1,\"id\":2,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"role\":\"sanitizer\"}");
  ASSERT_NE(R.find("\"ok\":true"), std::string::npos) << R;

  const infer::PipelineResult &Warm = Svc->warm();
  QueryResult Direct =
      queryRep(Warm.System, Warm.Reps, "flask.escape()",
               propgraph::Role::Sanitizer, Warm.Solve.X);
  EXPECT_TRUE(Direct.Found);
  EXPECT_EQ(resultOf(R), renderQueryJson(Direct));
}

TEST_F(ServiceTest, LearnThenQueryServesTheNewSolve) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  std::string Before = Svc->serve(
      "{\"v\":1,\"id\":1,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"role\":\"sanitizer\"}");

  std::string Learn = Svc->serve(
      "{\"v\":1,\"id\":2,\"op\":\"learn\",\"iters\":200,\"warm\":true}");
  EXPECT_NE(Learn.find("\"ok\":true"), std::string::npos) << Learn;
  EXPECT_NE(Learn.find("\"warm_started\":true"), std::string::npos);

  std::string After = Svc->serve(
      "{\"v\":1,\"id\":3,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"role\":\"sanitizer\"}");
  ASSERT_NE(After.find("\"ok\":true"), std::string::npos) << After;

  // Differential check: the served answer equals a direct render of the
  // post-learn artifacts, byte for byte (modulo the echoed id).
  const infer::PipelineResult &Warm = Svc->warm();
  QueryResult Direct =
      queryRep(Warm.System, Warm.Reps, "flask.escape()",
               propgraph::Role::Sanitizer, Warm.Solve.X);
  EXPECT_EQ(resultOf(After), renderQueryJson(Direct));
  // Same corpus, same iteration count: the re-solve lands on the same
  // scores, so the wire bytes match the pre-learn answer too.
  EXPECT_EQ(resultOf(After), resultOf(Before));
}

TEST_F(ServiceTest, LearnResponseCarriesIncrementalStats) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  // No shard cache configured: the delta counters are zero but present,
  // and a plain re-solve is never warm unless asked.
  std::string Learn =
      Svc->serve("{\"v\":1,\"id\":1,\"op\":\"learn\",\"iters\":200}");
  EXPECT_NE(Learn.find("\"ok\":true"), std::string::npos) << Learn;
  EXPECT_NE(Learn.find("\"incremental\":{\"shards_hit\":0,"
                       "\"shards_rebuilt\":0,\"warm_start\":false}"),
            std::string::npos)
      << Learn;
}

TEST_F(ServiceTest, LearnReloadReplaysUnchangedShards) {
  fs::create_directories(Root / "cache");
  Service::Options Opts = testOptions();
  Opts.CacheDir = (Root / "cache").string();
  Opts.ShardCacheDir = (Root / "cache" / "shards").string();
  auto Svc = startService(Opts);
  ASSERT_TRUE(Svc);

  // Nothing changed: the reload replays the cached graph and shard, and
  // defaults to a warm start from the served spec.
  std::string Same = Svc->serve(
      "{\"v\":1,\"id\":1,\"op\":\"learn\",\"iters\":200,\"reload\":true}");
  EXPECT_NE(Same.find("\"ok\":true"), std::string::npos) << Same;
  EXPECT_NE(Same.find("\"incremental\":{\"shards_hit\":1,"
                      "\"shards_rebuilt\":0,\"warm_start\":true}"),
            std::string::npos)
      << Same;
  EXPECT_NE(Same.find("\"warm_started\":true"), std::string::npos) << Same;

  // Touch the corpus on disk; the next reload re-extracts exactly the
  // changed project and the served answers reflect the new source.
  {
    std::ofstream Out(Root / "repo" / "extra.py");
    Out << "import flask\n"
           "def extra():\n"
           "    v = flask.request.args.get('x')\n"
           "    flask.make_response(v)\n";
  }
  std::string Changed = Svc->serve(
      "{\"v\":1,\"id\":2,\"op\":\"learn\",\"iters\":200,\"reload\":true,"
      "\"warm\":false}");
  EXPECT_NE(Changed.find("\"ok\":true"), std::string::npos) << Changed;
  EXPECT_NE(Changed.find("\"incremental\":{\"shards_hit\":0,"
                         "\"shards_rebuilt\":1,\"warm_start\":false}"),
            std::string::npos)
      << Changed;
  std::string Status = Svc->serve("{\"v\":1,\"id\":3,\"op\":\"status\"}");
  EXPECT_NE(Status.find("\"files\":2"), std::string::npos) << Status;
}

TEST_F(ServiceTest, TaintAnalyzesAnInlinePayload) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  std::string R = Svc->serve(
      "{\"v\":1,\"id\":4,\"op\":\"taint\",\"files\":{\"app.py\":"
      "\"from flask import request\\nimport flask\\n"
      "def greet():\\n    name = request.args.get('name')\\n"
      "    flask.make_response('<h1>' + name + '</h1>')\\n\"}}");
  EXPECT_NE(R.find("\"ok\":true"), std::string::npos) << R;
  EXPECT_NE(R.find("flask.request.args.get()"), std::string::npos) << R;
  EXPECT_NE(R.find("flask.make_response()"), std::string::npos) << R;
  EXPECT_EQ(R.back(), '}');
  EXPECT_EQ(R.find('\n'), std::string::npos)
      << "responses must be single lines";
}

TEST_F(ServiceTest, FeedbackRoundTripNudgesTheServedSpec) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  std::string R = Svc->serve(
      "{\"v\":1,\"id\":1,\"op\":\"feedback\",\"iters\":200,"
      "\"accept\":[{\"rep\":\"flask.escape()\",\"role\":\"sanitizer\"}],"
      "\"reject\":[{\"rep\":\"no.such.rep()\",\"role\":\"sink\"}]}");
  EXPECT_NE(R.find("\"ok\":true"), std::string::npos) << R;
  EXPECT_NE(R.find("\"accepted\":1"), std::string::npos) << R;
  EXPECT_NE(R.find("\"rejected\":1"), std::string::npos) << R;
  EXPECT_NE(R.find("\"total_feedback\":2"), std::string::npos) << R;
  EXPECT_NE(R.find("\"matched\":1"), std::string::npos) << R;
  EXPECT_NE(R.find("\"unmatched\":1"), std::string::npos) << R;
  // Feedback nudges the served spec, so it warm-starts by default.
  EXPECT_NE(R.find("\"warm_started\":true"), std::string::npos) << R;
  EXPECT_EQ(R.find('\n'), std::string::npos)
      << "responses must be single lines";

  // Warm-swap consistency: a query after the swap is byte-identical to a
  // direct render of the post-feedback artifacts.
  std::string Q = Svc->serve(
      "{\"v\":1,\"id\":2,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"role\":\"sanitizer\"}");
  ASSERT_NE(Q.find("\"ok\":true"), std::string::npos) << Q;
  const infer::PipelineResult &Warm = Svc->warm();
  QueryResult Direct =
      queryRep(Warm.System, Warm.Reps, "flask.escape()",
               propgraph::Role::Sanitizer, Warm.Solve.X);
  EXPECT_TRUE(Direct.Found);
  EXPECT_EQ(resultOf(Q), renderQueryJson(Direct));

  // The set is cumulative: a repeat of the same verdicts reports the same
  // totals, not doubled ones.
  std::string Again = Svc->serve(
      "{\"v\":1,\"id\":3,\"op\":\"feedback\",\"iters\":200,"
      "\"accept\":[{\"rep\":\"flask.escape()\",\"role\":\"sanitizer\"}],"
      "\"reject\":[{\"rep\":\"no.such.rep()\",\"role\":\"sink\"}]}");
  EXPECT_NE(Again.find("\"total_feedback\":2"), std::string::npos) << Again;
}

TEST_F(ServiceTest, DurableRestartServesByteIdenticalState) {
  fs::create_directories(Root / "state");
  Service::Options Opts = testOptions();
  Opts.StateDir = (Root / "state").string();

  const std::string FeedbackLine =
      "{\"v\":1,\"id\":1,\"op\":\"feedback\",\"iters\":200,"
      "\"accept\":[{\"rep\":\"flask.escape()\",\"role\":\"sanitizer\"}]}";
  const std::string QueryLine =
      "{\"v\":1,\"id\":2,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"role\":\"sanitizer\"}";

  std::string Before;
  {
    auto Svc = startService(Opts);
    ASSERT_TRUE(Svc);
    ASSERT_NE(Svc->stateStore(), nullptr);
    std::string R = Svc->serve(FeedbackLine);
    ASSERT_NE(R.find("\"ok\":true"), std::string::npos) << R;
    Before = Svc->serve(QueryLine);
    Svc->persist();
  }
  // A second service on the same state directory serves the same bytes —
  // restoreSolve, not a re-optimization.
  auto Restarted = startService(Opts);
  ASSERT_TRUE(Restarted);
  EXPECT_EQ(Restarted->serve(QueryLine), Before);
  // The cumulative feedback set came back too: the repeat verdict is not
  // counted twice.
  std::string Again = Restarted->serve(FeedbackLine);
  EXPECT_NE(Again.find("\"total_feedback\":1"), std::string::npos) << Again;
}

TEST_F(ServiceTest, StatusReportsDurabilityCounters) {
  fs::create_directories(Root / "state");
  Service::Options Opts = testOptions();
  Opts.StateDir = (Root / "state").string();
  auto Svc = startService(Opts);
  ASSERT_TRUE(Svc);
  std::string R = Svc->serve("{\"v\":1,\"id\":1,\"op\":\"status\"}");
  EXPECT_NE(R.find("\"durability\":{\"enabled\":true"), std::string::npos)
      << R;
  for (const char *Key :
       {"\"appends\":", "\"fsyncs\":", "\"journal_bytes\":",
        "\"snapshots\":", "\"compactions\":", "\"replayed\":",
        "\"truncated_tail_bytes\":", "\"recovery_seconds\":"})
    EXPECT_NE(R.find(Key), std::string::npos) << Key << " missing: " << R;

  // Without a state dir the section stays, but reports disabled.
  auto Plain = startService(testOptions());
  ASSERT_TRUE(Plain);
  std::string P = Plain->serve("{\"v\":1,\"id\":1,\"op\":\"status\"}");
  EXPECT_NE(P.find("\"durability\":{\"enabled\":false}"), std::string::npos)
      << P;
  EXPECT_EQ(Plain->stateStore(), nullptr);
}

TEST_F(ServiceTest, PersistIsIdempotent) {
  fs::create_directories(Root / "state");
  Service::Options Opts = testOptions();
  Opts.StateDir = (Root / "state").string();
  auto Svc = startService(Opts);
  ASSERT_TRUE(Svc);
  Svc->persist();
  uint64_t Snapshots = Svc->stateStore()->stats().Snapshots;
  // Nothing changed since: a second persist writes nothing.
  Svc->persist();
  EXPECT_EQ(Svc->stateStore()->stats().Snapshots, Snapshots);
}

TEST_F(ServiceTest, ConcurrentQueriesRaceFeedbackSafely) {
  // Same shared_mutex contract as the learn race: readers (query/status)
  // race the feedback writer. Under TSan this is the data-race proof;
  // everywhere it checks that every response is well-formed. (Answers may
  // legitimately change once feedback lands, so readers only assert
  // structure, not bytes.)
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  const std::string QueryLine =
      "{\"v\":1,\"id\":0,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"role\":\"sanitizer\"}";
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 25; ++I)
        if (Svc->serve(QueryLine).find("\"ok\":true") == std::string::npos)
          Failures.fetch_add(1);
    });
  Threads.emplace_back([&] {
    for (int I = 0; I < 3; ++I) {
      std::string R = Svc->serve(
          "{\"v\":1,\"id\":0,\"op\":\"feedback\",\"iters\":200,"
          "\"accept\":[{\"rep\":\"flask.escape()\","
          "\"role\":\"sanitizer\"}]}");
      if (R.find("\"ok\":true") == std::string::npos)
        Failures.fetch_add(1);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I < 25; ++I)
      if (Svc->serve("{\"v\":1,\"id\":0,\"op\":\"status\"}")
              .find("\"ok\":true") == std::string::npos)
        Failures.fetch_add(1);
  });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST_F(ServiceTest, OperationErrorsAreStructured) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  struct Case {
    const char *Line;
    const char *Code;
  };
  const Case Cases[] = {
      {"{\"v\":1,\"id\":1,\"op\":\"frobnicate\"}", "\"unknown-op\""},
      {"{\"v\":1,\"id\":2,\"op\":\"query\"}", "\"bad-request\""},
      {"{\"v\":1,\"id\":3,\"op\":\"query\",\"rep\":\"f()\","
       "\"role\":\"oracle\"}",
       "\"bad-request\""},
      {"{\"v\":1,\"id\":4,\"op\":\"learn\",\"iters\":0}", "\"bad-request\""},
      {"{\"v\":1,\"id\":5,\"op\":\"taint\"}", "\"bad-request\""},
      {"{\"v\":1,\"id\":20,\"op\":\"feedback\"}", "\"bad-request\""},
      {"{\"v\":1,\"id\":21,\"op\":\"feedback\",\"accept\":{}}",
       "\"bad-request\""},
      {"{\"v\":1,\"id\":22,\"op\":\"feedback\","
       "\"accept\":[{\"rep\":\"f()\",\"role\":\"boss\"}]}",
       "\"bad-request\""},
      {"{\"v\":1,\"id\":23,\"op\":\"feedback\","
       "\"accept\":[{\"role\":\"sink\"}]}",
       "\"bad-request\""},
      {"{\"v\":1,\"id\":24,\"op\":\"feedback\",\"weight\":0,"
       "\"accept\":[{\"rep\":\"f()\",\"role\":\"sink\"}]}",
       "\"bad-request\""},
      {"{\"v\":1,\"id\":25,\"op\":\"feedback\",\"decay\":2,"
       "\"accept\":[{\"rep\":\"f()\",\"role\":\"sink\"}]}",
       "\"bad-request\""},
      {"{\"v\":1,\"id\":6,\"op\":\"taint\",\"files\":{}}",
       "\"bad-request\""},
      {"{\"v\":1,\"id\":7,\"op\":\"status\",\"deadline_s\":-1}",
       "\"bad-request\""},
      {"not json", "\"bad-json\""},
      {"{\"v\":3,\"id\":8,\"op\":\"status\"}", "\"unsupported-version\""},
  };
  for (const Case &C : Cases) {
    std::string R = Svc->serve(C.Line);
    EXPECT_NE(R.find("\"ok\":false"), std::string::npos) << C.Line;
    EXPECT_NE(R.find(C.Code), std::string::npos) << C.Line << " -> " << R;
  }
}

TEST_F(ServiceTest, ExpiredDeadlineIsAStructuredError) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  // A (near-)zero budget expires before the first stage poll.
  std::string R = Svc->serve(
      "{\"v\":1,\"id\":1,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"deadline_s\":1e-9}");
  EXPECT_NE(R.find("\"ok\":false"), std::string::npos) << R;
  EXPECT_NE(R.find("\"deadline\""), std::string::npos) << R;
}

TEST_F(ServiceTest, AdmissionGateDegradesToOverloaded) {
  Service::Options Opts = testOptions();
  Opts.MaxInFlight = 2;
  auto Svc = startService(std::move(Opts));
  ASSERT_TRUE(Svc);
  ASSERT_TRUE(Svc->tryAdmit());
  ASSERT_TRUE(Svc->tryAdmit());
  EXPECT_FALSE(Svc->tryAdmit());
  std::string R = Svc->serve("{\"v\":1,\"id\":9,\"op\":\"status\"}");
  EXPECT_NE(R.find("\"overloaded\""), std::string::npos) << R;
  EXPECT_NE(R.find("\"id\":9"), std::string::npos)
      << "overload must still echo the id: " << R;
  Svc->release();
  EXPECT_NE(Svc->serve("{\"v\":1,\"id\":10,\"op\":\"status\"}")
                .find("\"ok\":true"),
            std::string::npos);
  Svc->release();
}

TEST_F(ServiceTest, ShutdownDrains) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  std::string R = Svc->serve("{\"v\":1,\"id\":1,\"op\":\"shutdown\"}");
  EXPECT_NE(R.find("{\"stopping\":true}"), std::string::npos) << R;
  EXPECT_TRUE(Svc->shuttingDown());
  std::string After = Svc->serve("{\"v\":1,\"id\":2,\"op\":\"status\"}");
  EXPECT_NE(After.find("\"shutting-down\""), std::string::npos) << After;
}

TEST_F(ServiceTest, ConcurrentQueriesRaceALearnSafely) {
  // The shared_mutex contract: readers (query/status) race a writer
  // (learn) from many threads. Under TSan this is the data-race proof;
  // everywhere it checks that every response is well-formed and that
  // query answers are byte-stable (same corpus + same iteration count
  // means every re-solve lands on identical scores).
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  const std::string QueryLine =
      "{\"v\":1,\"id\":0,\"op\":\"query\",\"rep\":\"flask.escape()\","
      "\"role\":\"sanitizer\"}";
  const std::string Expected = resultOf(Svc->serve(QueryLine));

  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < 4; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < 25; ++I) {
        std::string R = Svc->serve(QueryLine);
        if (R.find("\"ok\":true") == std::string::npos ||
            resultOf(R) != Expected)
          Failures.fetch_add(1);
      }
    });
  Threads.emplace_back([&] {
    for (int I = 0; I < 3; ++I) {
      std::string R = Svc->serve(
          "{\"v\":1,\"id\":0,\"op\":\"learn\",\"iters\":200}");
      if (R.find("\"ok\":true") == std::string::npos)
        Failures.fetch_add(1);
    }
  });
  Threads.emplace_back([&] {
    for (int I = 0; I < 25; ++I)
      if (Svc->serve("{\"v\":1,\"id\":0,\"op\":\"status\"}")
              .find("\"ok\":true") == std::string::npos)
        Failures.fetch_add(1);
  });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

//===----------------------------------------------------------------------===//
// Socket transport
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, SocketRoundTripAndDrain) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  ThreadPool Pool(2);
  std::string Socket = (Root / "seldond.sock").string();
  SocketServer Server(*Svc, Pool, Socket);
  std::string Error;
  ASSERT_TRUE(Server.listen(Error)) << Error;
  std::thread Accept([&] { Server.run(); });

  {
    SocketClient Client;
    ASSERT_TRUE(Client.connect(Socket, Error)) << Error;
    std::string R;
    ASSERT_TRUE(Client.roundTrip("{\"v\":1,\"id\":1,\"op\":\"status\"}", R));
    EXPECT_NE(R.find("\"ok\":true"), std::string::npos) << R;
    ASSERT_TRUE(Client.roundTrip(
        "{\"v\":1,\"id\":2,\"op\":\"query\",\"rep\":\"flask.escape()\","
        "\"role\":\"sanitizer\"}",
        R));
    EXPECT_NE(R.find("\"found\":true"), std::string::npos) << R;
    // Requests on one connection answer in order.
    ASSERT_TRUE(Client.sendLine("{\"v\":1,\"id\":3,\"op\":\"status\"}"));
    ASSERT_TRUE(Client.sendLine("{\"v\":1,\"id\":4,\"op\":\"status\"}"));
    ASSERT_TRUE(Client.recvLine(R));
    EXPECT_NE(R.find("\"id\":3"), std::string::npos) << R;
    ASSERT_TRUE(Client.recvLine(R));
    EXPECT_NE(R.find("\"id\":4"), std::string::npos) << R;
  }

  // A second live binding of the same path must be refused.
  {
    SocketServer Second(*Svc, Pool, Socket);
    std::string E2;
    EXPECT_FALSE(Second.listen(E2));
    EXPECT_NE(E2.find("already listening"), std::string::npos) << E2;
  }

  {
    SocketClient Client;
    ASSERT_TRUE(Client.connect(Socket, Error)) << Error;
    std::string R;
    ASSERT_TRUE(
        Client.roundTrip("{\"v\":1,\"id\":5,\"op\":\"shutdown\"}", R));
    EXPECT_NE(R.find("{\"stopping\":true}"), std::string::npos) << R;
  }
  Accept.join();
  EXPECT_TRUE(Svc->shuttingDown());
  EXPECT_FALSE(fs::exists(Socket)) << "drained server must unlink its socket";
}

/// A raw client connection (SocketClient hides the fd, and these tests
/// need shutdown()/close() control the wrapper deliberately doesn't offer).
int rawConnect(const std::string &Path) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return -1;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd >= 0 && ::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                           sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

TEST_F(ServiceTest, RecvHardErrorDropsFragmentCleanEofAnswersIt) {
  auto Svc = startService(testOptions());
  ASSERT_TRUE(Svc);
  ThreadPool Pool(2);
  std::string Socket = (Root / "seldond.sock").string();
  SocketServer Server(*Svc, Pool, Socket);
  std::string Error;
  ASSERT_TRUE(Server.listen(Error)) << Error;
  std::thread Accept([&] { Server.run(); });

  {
    // Clean EOF: an unterminated trailing line still gets an answer.
    int Fd = rawConnect(Socket);
    ASSERT_GE(Fd, 0);
    const std::string Line = "{\"v\":1,\"id\":9,\"op\":\"status\"}";
    ASSERT_EQ(::send(Fd, Line.data(), Line.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(Line.size()));
    ASSERT_EQ(::shutdown(Fd, SHUT_WR), 0);
    std::string R;
    char C;
    while (::recv(Fd, &C, 1, 0) == 1 && C != '\n')
      R += C;
    EXPECT_NE(R.find("\"id\":9"), std::string::npos) << R;
    ::close(Fd);
  }

  {
    // Hard error: a fragment cut off by a connection reset is a
    // truncation, not a request — it must be dropped, not executed. The
    // fragment here is a shutdown op, so executing it (the old conflated
    // EOF path) is observable below. Leaving the first response unread
    // makes the close surface as ECONNRESET on the server's recv.
    int Fd = rawConnect(Socket);
    ASSERT_GE(Fd, 0);
    const std::string Line = "{\"v\":1,\"id\":10,\"op\":\"status\"}\n";
    ASSERT_EQ(::send(Fd, Line.data(), Line.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(Line.size()));
    char Peek;
    ASSERT_EQ(::recv(Fd, &Peek, 1, MSG_PEEK), 1); // answered, unread
    const std::string Frag = "{\"v\":1,\"id\":11,\"op\":\"shutdown\"}";
    ASSERT_EQ(::send(Fd, Frag.data(), Frag.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(Frag.size()));
    ::close(Fd); // unread data => ECONNRESET at the server
  }

  // The reset fragment must not have executed: the service still answers
  // fresh connections and is not draining.
  SocketClient Client;
  ASSERT_TRUE(Client.connect(Socket, Error)) << Error;
  std::string R;
  ASSERT_TRUE(Client.roundTrip("{\"v\":1,\"id\":12,\"op\":\"status\"}", R));
  EXPECT_NE(R.find("\"ok\":true"), std::string::npos) << R;
  EXPECT_FALSE(Svc->shuttingDown());
  ASSERT_TRUE(Client.roundTrip("{\"v\":1,\"id\":13,\"op\":\"shutdown\"}", R));
  Accept.join();
}

} // namespace
