//===- support/StrUtil.cpp - Small string helpers -------------------------===//

#include "support/StrUtil.h"

#include <cstdarg>
#include <cstdio>

using namespace seldon;

std::vector<std::string> seldon::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.emplace_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::string seldon::joinStrings(const std::vector<std::string> &Parts,
                                std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}

std::string_view seldon::trim(std::string_view Text) {
  auto IsSpace = [](char C) {
    return C == ' ' || C == '\t' || C == '\r' || C == '\n' || C == '\f' ||
           C == '\v';
  };
  while (!Text.empty() && IsSpace(Text.front()))
    Text.remove_prefix(1);
  while (!Text.empty() && IsSpace(Text.back()))
    Text.remove_suffix(1);
  return Text;
}

std::string seldon::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Args2;
  va_copy(Args2, Args);
  int N = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  std::string Out;
  if (N > 0) {
    Out.resize(static_cast<size_t>(N));
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args2);
  }
  va_end(Args2);
  return Out;
}

std::string seldon::jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"': Out += "\\\""; break;
    case '\\': Out += "\\\\"; break;
    case '\n': Out += "\\n"; break;
    case '\r': Out += "\\r"; break;
    case '\t': Out += "\\t"; break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
      break;
    }
  }
  return Out;
}
