//===- support/BinaryCodec.h - Shared binary codec primitives ----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The primitives shared by every checksummed binary format in the tree
/// (propgraph/GraphCodec.h, constraints/ShardCodec.h): LEB128 varints,
/// length-prefixed strings, little-endian fixed64 words, the FNV-1a-64
/// payload checksum, and the strict forward-only ByteReader. Grown out of
/// GraphCodec so new formats inherit the same failure discipline — every
/// read either succeeds or records a descriptive error with the byte
/// offset, and all subsequent reads fail.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SUPPORT_BINARYCODEC_H
#define SELDON_SUPPORT_BINARYCODEC_H

#include "support/StrUtil.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace seldon {
namespace codec {

/// FNV-1a 64-bit over \p Bytes, continuing from \p Seed. Each step is
/// injective in the accumulator, so two equal-length inputs differing in
/// one byte always hash differently — a single bit flip in a stored
/// payload is guaranteed to be detected.
inline uint64_t fnv1a64(std::string_view Bytes,
                        uint64_t Seed = 0xcbf29ce484222325ull) {
  uint64_t Hash = Seed;
  for (unsigned char C : Bytes) {
    Hash ^= C;
    Hash *= 0x100000001b3ull;
  }
  return Hash;
}

/// Appends \p Value as an LEB128 varint.
inline void putVarint(std::string &Out, uint64_t Value) {
  while (Value >= 0x80) {
    Out.push_back(static_cast<char>(Value | 0x80));
    Value >>= 7;
  }
  Out.push_back(static_cast<char>(Value));
}

/// Appends \p Text length-prefixed (varint length, then the bytes).
inline void putString(std::string &Out, std::string_view Text) {
  putVarint(Out, Text.size());
  Out.append(Text);
}

/// Appends \p Value as 8 little-endian bytes.
inline void putFixed64(std::string &Out, uint64_t Value) {
  for (int Shift = 0; Shift < 64; Shift += 8)
    Out.push_back(static_cast<char>((Value >> Shift) & 0xff));
}

/// Folds a length-prefixed chunk into a running FNV-1a hash, so the chunk
/// sequences ("ab","c") and ("a","bc") hash differently. The building
/// block of every content-hash cache key.
inline void hashChunk(uint64_t &Hash, std::string_view Bytes) {
  uint64_t Len = Bytes.size();
  Hash = fnv1a64(
      std::string_view(reinterpret_cast<const char *>(&Len), sizeof(Len)),
      Hash);
  Hash = fnv1a64(Bytes, Hash);
}

/// Folds one 64-bit word into a running FNV-1a hash.
inline void hashValue(uint64_t &Hash, uint64_t Value) {
  Hash = fnv1a64(
      std::string_view(reinterpret_cast<const char *>(&Value),
                       sizeof(Value)),
      Hash);
}

/// Strict forward-only reader over encoded bytes. Every getter either
/// succeeds or records a descriptive error (with the current offset) and
/// makes all further reads fail, so decode logic can chain reads and check
/// once per section.
class ByteReader {
public:
  explicit ByteReader(std::string_view Bytes) : Bytes(Bytes) {}

  bool ok() const { return Error.empty(); }
  const std::string &error() const { return Error; }
  size_t offset() const { return Pos; }
  size_t remaining() const { return Bytes.size() - Pos; }

  void fail(const std::string &What) {
    if (Error.empty())
      Error = formatString("%s at byte %zu", What.c_str(), Pos);
  }

  uint64_t getVarint(const char *What) {
    uint64_t Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 7) {
      if (Pos >= Bytes.size()) {
        fail(formatString("truncated input reading %s", What));
        return 0;
      }
      unsigned char Byte = static_cast<unsigned char>(Bytes[Pos++]);
      Value |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
      if ((Byte & 0x80) == 0)
        return Value;
    }
    fail(formatString("varint overflow reading %s", What));
    return 0;
  }

  uint8_t getByte(const char *What) {
    if (Pos >= Bytes.size()) {
      fail(formatString("truncated input reading %s", What));
      return 0;
    }
    return static_cast<uint8_t>(Bytes[Pos++]);
  }

  uint64_t getFixed64(const char *What) {
    if (remaining() < 8) {
      fail(formatString("truncated input reading %s", What));
      return 0;
    }
    uint64_t Value = 0;
    for (int Shift = 0; Shift < 64; Shift += 8)
      Value |= static_cast<uint64_t>(
                   static_cast<unsigned char>(Bytes[Pos++]))
               << Shift;
    return Value;
  }

  std::string_view getString(const char *What) {
    uint64_t Len = getVarint(What);
    if (!ok())
      return {};
    if (Len > remaining()) {
      fail(formatString("truncated input reading %s (need %llu bytes, "
                        "have %zu)",
                        What, static_cast<unsigned long long>(Len),
                        remaining()));
      return {};
    }
    std::string_view Out = Bytes.substr(Pos, Len);
    Pos += Len;
    return Out;
  }

private:
  std::string_view Bytes;
  size_t Pos = 0;
  std::string Error;
};

} // namespace codec
} // namespace seldon

#endif // SELDON_SUPPORT_BINARYCODEC_H
