//===- cache/ShardCache.h - Persistent constraint-shard cache ----*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An on-disk cache of per-project constraint shards
/// (constraints/ConstraintShard.h), next to GraphCache: where the graph
/// cache makes parse+build O(delta), the shard cache makes constraint
/// *extraction* O(delta) — re-learning after touching one project replays
/// every other project's cached reachability structure instead of redoing
/// its per-file BFS sweeps.
///
/// Keying / invalidation: an entry is addressed by a 64-bit FNV-1a content
/// hash of the shard codec version, every constraints::GenOptions field,
/// the full seed spec (entries sorted by representation, plus the blacklist
/// patterns in order), and the project's *graph* cache key — which already
/// covers the sources and every frontend knob. Any change to any input of
/// constraint generation produces a different key, so stale entries are
/// never hit. (Shard *content* only depends on the graph; the options and
/// seed participate conservatively, trading spurious misses for the
/// guarantee that a hit is always safe to replay.)
///
/// Failure discipline and concurrency match GraphCache: a missing entry is
/// a miss; a corrupt one is evicted and reported as a miss; stores go
/// through a unique temp file + rename; an unusable directory degrades to
/// all-miss operation. A load never yields a partial shard.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_CACHE_SHARDCACHE_H
#define SELDON_CACHE_SHARDCACHE_H

#include "cache/GraphCache.h"
#include "constraints/ConstraintShard.h"

#include <mutex>
#include <optional>
#include <string>

namespace seldon {
namespace cache {

/// Computes the shard cache key for the project identified by \p GraphKey
/// under generation options \p Gen and seed \p Seed. Deterministic across
/// processes (seed entries are hashed in sorted order).
CacheKey projectShardKey(const CacheKey &GraphKey,
                         const constraints::GenOptions &Gen,
                         const spec::SeedSpec &Seed);

/// The on-disk shard store. Same lifecycle and degradation contract as
/// GraphCache; entries use the ".scs" suffix, so both caches can share a
/// directory without colliding.
class ShardCache {
public:
  explicit ShardCache(std::string Dir);

  ShardCache(const ShardCache &) = delete;
  ShardCache &operator=(const ShardCache &) = delete;

  const std::string &dir() const { return Dir; }

  /// False when the cache directory could not be created/used; error()
  /// then describes why.
  bool valid() const { return DirError.empty(); }
  const std::string &error() const { return DirError; }

  /// Path of \p Key's entry file inside dir().
  std::string entryPath(const CacheKey &Key) const;

  /// Loads and decodes \p Key's entry. nullopt on miss — including every
  /// corruption case, which additionally evicts the bad entry and records
  /// a descriptive error in stats(). Thread-safe.
  std::optional<constraints::ConstraintShard> load(const CacheKey &Key);

  /// Encodes and atomically writes \p Shard as \p Key's entry. Returns
  /// false (recording an error) when the write fails. Thread-safe.
  bool store(const CacheKey &Key, const constraints::ConstraintShard &Shard);

  /// Snapshot of the counters and recorded errors.
  CacheStats stats() const;

private:
  void recordError(std::string Message);

  std::string Dir;
  std::string DirError;
  mutable std::mutex Mutex;
  CacheStats Stats;
};

} // namespace cache
} // namespace seldon

#endif // SELDON_CACHE_SHARDCACHE_H
