//===- corpus/ApiUniverse.cpp - The library-API world ---------------------===//

#include "corpus/ApiUniverse.h"

#include "support/StrUtil.h"

using namespace seldon;
using namespace seldon::corpus;
using namespace seldon::propgraph;

std::optional<std::string>
seldon::corpus::taintSlotSuffix(const std::string &ExprTemplate) {
  size_t Slot = ExprTemplate.find("{}");
  if (Slot == std::string::npos)
    return std::nullopt;

  // Innermost unclosed '(' before the slot.
  std::vector<size_t> Opens;
  for (size_t I = 0; I < Slot; ++I) {
    char C = ExprTemplate[I];
    if (C == '(')
      Opens.push_back(I);
    else if (C == ')' && !Opens.empty())
      Opens.pop_back();
  }
  if (Opens.empty())
    return std::nullopt; // Slot outside any call.
  size_t Open = Opens.back();

  // Keyword argument: an identifier directly followed by '=' introduces
  // the slot's argument.
  size_t ArgStart = Open + 1;
  int Depth = 0;
  size_t Commas = 0;
  for (size_t I = Open + 1; I < Slot; ++I) {
    char C = ExprTemplate[I];
    if (C == '(' || C == '[' || C == '{')
      ++Depth;
    else if (C == ')' || C == ']' || C == '}')
      --Depth;
    else if (C == ',' && Depth == 0) {
      ++Commas;
      ArgStart = I + 1;
    }
  }
  // Scan the slot's argument text for `name=` (not `==`). The slot text
  // itself starts right after the '=', so a trailing '=' is the common
  // case (`data={}`).
  std::string ArgText = ExprTemplate.substr(ArgStart, Slot - ArgStart);
  size_t Eq = ArgText.find('=');
  if (Eq != std::string::npos &&
      (Eq + 1 >= ArgText.size() || ArgText[Eq + 1] != '=')) {
    std::string Name(trim(ArgText.substr(0, Eq)));
    if (!Name.empty())
      return "[kw:" + Name + "]";
  }
  return "[arg" + std::to_string(Commas) + "]";
}

const std::vector<std::string> &ApiUniverse::vulnClasses() {
  static const std::vector<std::string> Classes = {"xss", "sqli", "path",
                                                   "cmdi", "redirect"};
  return Classes;
}

void ApiUniverse::addApi(ApiInfo Info) {
  if (maskHas(Info.Roles, Role::Source)) {
    Sources.push_back(Info);
    return;
  }
  if (maskHas(Info.Roles, Role::Sanitizer)) {
    Sanitizers.push_back(Info);
    return;
  }
  if (maskHas(Info.Roles, Role::Sink)) {
    Sinks.push_back(Info);
    return;
  }
  Neutrals.push_back(std::move(Info));
}

ApiUniverse ApiUniverse::standard(const UniverseOptions &Opts) {
  ApiUniverse U;

  auto Src = [&](const char *Rep, const char *Import, const char *Expr,
                 bool InSeed) {
    U.addApi({Rep, Import, Expr, SourceMask, InSeed, "", true});
  };
  auto San = [&](const char *Rep, const char *Import, const char *Expr,
                 bool InSeed, const char *Cls) {
    U.addApi({Rep, Import, Expr, SanitizerMask, InSeed, Cls, true});
  };
  auto Snk = [&](const char *Rep, const char *Import, const char *Expr,
                 bool InSeed, const char *Cls) {
    U.addApi({Rep, Import, Expr, SinkMask, InSeed, Cls, true});
  };
  auto Neutral = [&](const char *Rep, const char *Import, const char *Expr) {
    U.addApi({Rep, Import, Expr, 0, false, "", true});
  };

  // --- Hand-written, real-flavoured core (the seed carriers, cf. App. B).
  // Sources: request data of the three frameworks the paper filters for.
  Src("flask.request.args.get()", "from flask import request",
      "request.args.get('q')", true);
  Src("flask.request.form.get()", "from flask import request",
      "request.form.get('name')", true);
  Src("flask.request.form['name']", "from flask import request",
      "request.form['name']", false);
  Src("flask.request.files['f'].filename", "from flask import request",
      "request.files['f'].filename", false);
  Src("flask.request.cookies.get()", "from flask import request",
      "request.cookies.get('session')", true);
  Src("flask.request.headers.get()", "from flask import request",
      "request.headers.get('Referer')", true);
  Src("django.http.QueryDict()", "import django.http",
      "django.http.QueryDict(raw)", true);
  Src("req.GET.get()", "", "req.GET.get('q')", true);
  Src("req.POST.get()", "", "req.POST.get('body')", true);
  Src("req.GET.copy()", "", "req.GET.copy()", true);
  Src("werkzeug.wrappers.Request().args.get()",
      "import werkzeug.wrappers",
      "werkzeug.wrappers.Request(environ).args.get('x')", false);

  // XSS sinks & sanitizers.
  Snk("flask.render_template_string()", "import flask",
      "flask.render_template_string('<b>' + {} + '</b>')", true, "xss");
  Snk("flask.make_response()", "import flask", "flask.make_response({})",
      true, "xss");
  Snk("flask.Response()", "import flask", "flask.Response({})", false,
      "xss");
  Snk("jinja2.Markup()", "import jinja2", "jinja2.Markup({})", true, "xss");
  Snk("django.utils.safestring.mark_safe()", "import django.utils.safestring",
      "django.utils.safestring.mark_safe({})", false, "xss");
  San("flask.escape()", "import flask", "flask.escape({})", true, "xss");
  San("bleach.clean()", "import bleach", "bleach.clean({})", true, "xss");
  San("cgi.escape()", "import cgi", "cgi.escape({})", false, "xss");
  San("django.utils.html.escape()", "import django.utils.html",
      "django.utils.html.escape({})", true, "xss");
  San("flask.render_template()", "import flask",
      "flask.render_template('page.html', data={})", true, "xss");

  // SQL injection.
  Snk("sqlite3.connect().cursor().execute()", "import sqlite3",
      "sqlite3.connect(DB).cursor().execute('SELECT ' + {})", true, "sqli");
  Snk("sqlite3.connect().execute()", "import sqlite3",
      "sqlite3.connect(DB).execute({})", false, "sqli");
  Snk("MySQLdb.connect().cursor().execute()", "import MySQLdb",
      "MySQLdb.connect().cursor().execute({})", true, "sqli");
  Snk("psycopg2.connect().cursor().execute()", "import psycopg2",
      "psycopg2.connect().cursor().execute({})", false, "sqli");
  Snk("db.engine.execute()", "import db", "db.engine.execute({})", true,
      "sqli");
  San("MySQLdb.escape_string()", "import MySQLdb",
      "MySQLdb.escape_string({})", true, "sqli");
  San("psycopg2.escape_string()", "import psycopg2",
      "psycopg2.escape_string({})", false, "sqli");
  San("sqlite3.escape_string()", "import sqlite3",
      "sqlite3.escape_string({})", true, "sqli");

  // Path traversal.
  Snk("flask.send_file()", "import flask", "flask.send_file({})", true,
      "path");
  Snk("flask.send_from_directory()", "import flask",
      "flask.send_from_directory(ROOT, {})", true, "path");
  San("werkzeug.utils.secure_filename()", "import werkzeug.utils",
      "werkzeug.utils.secure_filename({})", true, "path");
  San("os.path.basename()", "import os", "os.path.basename({})", false,
      "path");

  // Command injection.
  Snk("os.system()", "import os", "os.system('convert ' + {})", true,
      "cmdi");
  Snk("subprocess.check_output()", "import subprocess",
      "subprocess.check_output({})", true, "cmdi");
  Snk("subprocess.call()", "import subprocess", "subprocess.call({})",
      false, "cmdi");
  San("shlex.quote()", "import shlex", "shlex.quote({})", true, "cmdi");
  San("pipes.quote()", "import pipes", "pipes.quote({})", false, "cmdi");

  // Open redirect.
  Snk("flask.redirect()", "import flask", "flask.redirect({})", true,
      "redirect");
  Snk("django.shortcuts.redirect()", "import django.shortcuts",
      "django.shortcuts.redirect({})", false, "redirect");
  San("urlvalid.check_relative()", "import urlvalid",
      "urlvalid.check_relative({})", true, "redirect");

  // Neutral real-flavoured helpers (candidates without any role).
  Neutral("flask.url_for()", "import flask", "flask.url_for('index')");
  Neutral("flask.jsonify()", "import flask", "flask.jsonify(ok=True)");
  Neutral("uuid.uuid4()", "import uuid", "uuid.uuid4()");
  Neutral("random.choice()", "import random", "random.choice(items)");
  Neutral("time.time()", "import time", "time.time()");
  Neutral("collections.OrderedDict()", "import collections",
          "collections.OrderedDict()");
  Neutral("itertools.chain()", "import itertools",
          "itertools.chain(a, b)");
  Neutral("copy.deepcopy()", "import copy", "copy.deepcopy(cfg)");
  Neutral("math.sqrt()", "import math", "math.sqrt(2)");
  Neutral("functools.partial()", "import functools",
          "functools.partial(f, 1)");

  // --- Procedural long tail: unknown third-party libraries whose roles
  // must be inferred. Representations are deterministic so the ground
  // truth can be registered up front.
  const auto &Classes = vulnClasses();
  size_t CoreSrc = U.Sources.size(), CoreSan = U.Sanitizers.size(),
         CoreSnk = U.Sinks.size(), CoreNeu = U.Neutrals.size();
  for (int Lib = 0; Lib < Opts.NumUnknownLibs; ++Lib) {
    std::string Mod = "weblib" + std::to_string(Lib);
    std::string Import = "import " + Mod;
    const std::string &Cls = Classes[Lib % Classes.size()];
    // Sources outnumber the other roles, as in the paper's corpus where
    // object reads and formal parameters dominate the candidates.
    for (int I = 0; I < Opts.ApisPerRolePerLib + 2; ++I) {
      std::string N = std::to_string(I);
      Src((Mod + ".read_" + N + "()").c_str(), Import.c_str(),
          (Mod + ".read_" + N + "(req)").c_str(), false);
    }
    for (int I = 0; I < Opts.ApisPerRolePerLib; ++I) {
      std::string N = std::to_string(I);
      San((Mod + ".clean_" + N + "()").c_str(), Import.c_str(),
          (Mod + ".clean_" + N + "({})").c_str(), false, Cls.c_str());
      Snk((Mod + ".emit_" + N + "()").c_str(), Import.c_str(),
          (Mod + ".emit_" + N + "({})").c_str(), false, Cls.c_str());
    }
    for (int I = 0; I < Opts.NeutralsPerLib; ++I) {
      std::string N = std::to_string(I);
      Neutral((Mod + ".util_" + N + "()").c_str(), Import.c_str(),
              (Mod + ".util_" + N + "(cfg)").c_str());
    }
  }
  for (size_t I = CoreSrc; I < U.Sources.size(); ++I)
    U.Sources[I].Core = false;
  for (size_t I = CoreSan; I < U.Sanitizers.size(); ++I)
    U.Sanitizers[I].Core = false;
  for (size_t I = CoreSnk; I < U.Sinks.size(); ++I)
    U.Sinks[I].Core = false;
  for (size_t I = CoreNeu; I < U.Neutrals.size(); ++I)
    U.Neutrals[I].Core = false;
  return U;
}

std::vector<const ApiInfo *>
ApiUniverse::sanitizersOf(const std::string &Cls) const {
  std::vector<const ApiInfo *> Out;
  for (const ApiInfo &A : Sanitizers)
    if (A.VulnClass == Cls)
      Out.push_back(&A);
  return Out;
}

std::vector<const ApiInfo *>
ApiUniverse::sinksOf(const std::string &Cls) const {
  std::vector<const ApiInfo *> Out;
  for (const ApiInfo &A : Sinks)
    if (A.VulnClass == Cls)
      Out.push_back(&A);
  return Out;
}

spec::SeedSpec ApiUniverse::seedSpec() const {
  spec::SeedSpec Seed;
  auto AddSeeded = [&](const std::vector<ApiInfo> &Apis, Role R) {
    for (const ApiInfo &A : Apis)
      if (A.InSeed)
        Seed.Spec.add(A.Rep, R);
  };
  AddSeeded(Sources, Role::Source);
  AddSeeded(Sanitizers, Role::Sanitizer);
  AddSeeded(Sinks, Role::Sink);

  // The builtin blacklist (a subset of App. B's `b:` entries that the
  // generator's noise statements actually produce).
  for (const char *Pattern :
       {"*.split()*", "*.strip()", "*.lower()", "*.upper()", "*.format()",
        "*.replace()*", "*.join()", "*.encode()", "*.decode()",
        "*.startswith()", "*.endswith()", "*.keys()", "*.values()",
        "*.items()", "*.append()", "*.copy()", "len()", "str()", "int()",
        "list()", "dict()", "range()", "enumerate()", "sorted()", "print()",
        "isinstance()", "*logging*", "*logger*", "math.*", "time.time()",
        "uuid.uuid4()", "*__name__*"})
    Seed.Blacklist.add(Pattern);
  return Seed;
}

GroundTruth ApiUniverse::groundTruth() const {
  GroundTruth Truth;
  for (const ApiInfo &A : Sources)
    Truth.add(A.Rep, A.Roles, A.VulnClass);
  for (const ApiInfo &A : Sanitizers)
    Truth.add(A.Rep, A.Roles, A.VulnClass);
  for (const ApiInfo &A : Sinks)
    Truth.add(A.Rep, A.Roles, A.VulnClass);
  return Truth;
}
