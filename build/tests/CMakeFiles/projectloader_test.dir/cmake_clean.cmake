file(REMOVE_RECURSE
  "CMakeFiles/projectloader_test.dir/projectloader_test.cpp.o"
  "CMakeFiles/projectloader_test.dir/projectloader_test.cpp.o.d"
  "projectloader_test"
  "projectloader_test.pdb"
  "projectloader_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projectloader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
