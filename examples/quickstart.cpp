//===- examples/quickstart.cpp - Minimal Seldon usage ---------------------===//
//
// Quickstart: infer taint specifications for a tiny inline "corpus" of
// three Python web-app files, starting from two seed annotations, then
// print every learned (API, role, score).
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "infer/Pipeline.h"

#include <cstdio>

using namespace seldon;

int main() {
  // 1. A corpus: normally thousands of repositories; here three small
  //    files that use the same (unknown) helper APIs in different ways.
  const char *FileA = "import web\n"
                      "import escaping\n"
                      "import db\n"
                      "def save_comment():\n"
                      "    text = web.get_field()\n"
                      "    safe = escaping.clean_html(text)\n"
                      "    db.store(safe)\n";
  const char *FileB = "import web\n"
                      "import escaping\n"
                      "import render\n"
                      "def show_profile():\n"
                      "    bio = web.get_field()\n"
                      "    render.page(escaping.clean_html(bio))\n";
  const char *FileC = "import feeds\n"
                      "import escaping\n"
                      "import render\n"
                      "def show_feed():\n"
                      "    entry = feeds.latest()\n"
                      "    render.page(escaping.clean_html(entry))\n";

  std::vector<pysem::Project> Corpus;
  for (int Copy = 0; Copy < 6; ++Copy) {
    // Replicate so every representation clears the frequency cutoff of 5
    // (paper §4.3) — stand-in for the natural repetition in big code.
    pysem::Project P("repo" + std::to_string(Copy));
    P.addModule("repo" + std::to_string(Copy) + "/a.py", FileA);
    P.addModule("repo" + std::to_string(Copy) + "/b.py", FileB);
    P.addModule("repo" + std::to_string(Copy) + "/c.py", FileC);
    Corpus.push_back(std::move(P));
  }

  // 2. The seed specification: two hand-written labels (paper App. B
  //    format: o: source, a: sanitizer, i: sink, b: blacklist).
  spec::SeedSpec Seed = spec::SeedSpec::parse("o: web.get_field()\n"
                                              "i: db.store()\n");

  // 3. Run the pipeline: propagation graphs -> linear constraints ->
  //    projected Adam -> per-(API, role) scores.
  infer::Session S;
  S.addProjects(Corpus);
  S.generateConstraints(Seed);
  infer::PipelineResult Result = S.solve();

  std::printf("Learned specification (score >= 0.1):\n");
  for (propgraph::Role R :
       {propgraph::Role::Source, propgraph::Role::Sanitizer,
        propgraph::Role::Sink}) {
    for (const auto &[Rep, Score] : Result.Learned.ranked(R, 0.1)) {
      const char *Origin = Seed.Spec.has(Rep, R) ? "seed" : "inferred";
      std::printf("  %-9s  %-28s score %.2f  (%s)\n",
                  propgraph::roleName(R), Rep.c_str(), Score, Origin);
    }
  }

  std::printf("\nWhat happened: the seed labels web.get_field()/db.store(); "
              "the flow\n  web.get_field() -> escaping.clean_html() -> "
              "db.store()\nmakes clean_html a sanitizer (Fig. 4c); "
              "clean_html feeding render.page() makes\nrender.page a sink "
              "(Fig. 4b); and feeds.latest() feeding the now-known\n"
              "sanitizer/sink pair makes it a source (Fig. 4a).\n");
  return 0;
}
