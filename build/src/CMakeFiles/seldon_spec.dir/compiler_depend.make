# Empty compiler generated dependencies file for seldon_spec.
# This may be replaced when dependencies are built.
