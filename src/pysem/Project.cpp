//===- pysem/Project.cpp - A collection of parsed Python modules ----------===//

#include "pysem/Project.h"

#include "support/StrUtil.h"

using namespace seldon;
using namespace seldon::pysem;

std::string Project::moduleNameForPath(std::string_view Path) {
  std::string_view P = Path;
  if (P.size() >= 3 && P.substr(P.size() - 3) == ".py")
    P.remove_suffix(3);
  std::vector<std::string> Parts = splitString(P, '/');
  if (!Parts.empty() && Parts.back() == "__init__")
    Parts.pop_back();
  return joinStrings(Parts, ".");
}

const ModuleInfo &Project::addModule(std::string Path,
                                     std::string_view Source) {
  ModuleInfo Info;
  Info.Path = std::move(Path);
  Info.ModuleName = moduleNameForPath(Info.Path);
  Info.Source = std::string(Source);
  Info.Ast = pyast::parseSource(Ctx, Info.Source, &Info.Errors);
  Modules.push_back(std::move(Info));
  return Modules.back();
}

size_t Project::numErrors() const {
  size_t N = 0;
  for (const ModuleInfo &M : Modules)
    N += M.Errors.size();
  return N;
}
