//===- solver/NumericGuard.h - Non-finite detection helpers ------*- C++ -*-===//
//
// Part of seldon-cpp, a reproduction of "Scalable Taint Specification
// Inference with Big Code" (PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared pieces of the optimizers' numeric failure discipline: the
/// finiteness check both loops run after every fused evaluation, and the
/// evaluation wrapper the `solver-step` fault point poisons so the
/// recovery ladder is exercisable deterministically (by iteration number,
/// independent of thread schedule). On a healthy, unarmed run neither
/// helper changes a single bit of the trajectory.
///
//===----------------------------------------------------------------------===//

#ifndef SELDON_SOLVER_NUMERICGUARD_H
#define SELDON_SOLVER_NUMERICGUARD_H

#include "support/FaultInjection.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace seldon {
namespace solver {

/// True when the objective value and every gradient component are finite.
inline bool allFinite(double Value, const std::vector<double> &Grad) {
  if (!std::isfinite(Value))
    return false;
  for (double G : Grad)
    if (!std::isfinite(G))
      return false;
  return true;
}

/// One fused objective evaluation, poisoned to NaN when the `solver-step`
/// fault point is armed for \p Iter.
template <class ObjT>
inline double guardedEval(const ObjT &Obj, const std::vector<double> &X,
                          std::vector<double> &Grad, int Iter) {
  double Value = Obj.valueAndGradient(X, Grad);
  if (fault::enabled() &&
      fault::shouldTrip(fault::Point::SolverStep,
                        static_cast<uint64_t>(Iter)))
    Value = std::numeric_limits<double>::quiet_NaN();
  return Value;
}

} // namespace solver
} // namespace seldon

#endif // SELDON_SOLVER_NUMERICGUARD_H
