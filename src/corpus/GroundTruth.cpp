//===- corpus/GroundTruth.cpp - Oracle for generated corpora --------------===//

#include "corpus/GroundTruth.h"

using namespace seldon;
using namespace seldon::corpus;

const std::string GroundTruth::Empty;

void GroundTruth::add(const std::string &Rep, RoleMask Mask,
                      std::string VulnClass) {
  Entry &E = Entries[Rep];
  E.Mask |= Mask;
  if (!VulnClass.empty())
    E.VulnClass = std::move(VulnClass);
}

RoleMask GroundTruth::rolesOf(const std::string &Rep) const {
  auto It = Entries.find(Rep);
  return It == Entries.end() ? 0 : It->second.Mask;
}

bool GroundTruth::isTrue(const std::string &Rep, Role R) const {
  return propgraph::maskHas(rolesOf(Rep), R);
}

bool GroundTruth::anyTrue(const std::vector<std::string> &RepOptions,
                          Role R) const {
  for (const std::string &Rep : RepOptions)
    if (isTrue(Rep, R))
      return true;
  return false;
}

const std::string &GroundTruth::vulnClassOf(const std::string &Rep) const {
  auto It = Entries.find(Rep);
  return It == Entries.end() ? Empty : It->second.VulnClass;
}
