# Empty compiler generated dependencies file for propgraph_test.
# This may be replaced when dependencies are built.
