//===- examples/compare_merlin.cpp - Seldon vs Merlin side by side --------===//
//
// Runs Seldon's linear-optimization inference and the Merlin baseline
// (factor graph + loopy belief propagation) on the same generated project
// with the same seeds, then compares predictions, precision, and runtime —
// a miniature of the paper's §7.4 comparison.
//
//===----------------------------------------------------------------------===//

#include "corpus/CorpusGenerator.h"
#include "eval/Precision.h"
#include "infer/Pipeline.h"
#include "merlin/MerlinPipeline.h"

#include <cstdio>

using namespace seldon;
using propgraph::Role;

int main() {
  corpus::ApiUniverse Universe = corpus::ApiUniverse::standard();
  spec::SeedSpec Seed = Universe.seedSpec();
  corpus::GroundTruth Truth = Universe.groundTruth();

  pysem::Project App =
      corpus::generateSingleProject(Universe, 21, 12, 8, "demo_app");
  std::printf("Analyzing project '%s' (%zu files) with both systems...\n\n",
              App.name().c_str(), App.modules().size());
  propgraph::PropagationGraph Graph = propgraph::buildProjectGraph(App);

  // Seldon (single-project mode: drop the big-code frequency cutoff).
  // The staged Session adopts the already-built graph, so Seldon and
  // Merlin are guaranteed to see the same input.
  infer::PipelineOptions SeldonOpts;
  SeldonOpts.Gen.RepCutoff = 1;
  infer::Session Session(SeldonOpts);
  Session.adoptGraph(propgraph::PropagationGraph(Graph));
  Session.generateConstraints(Seed);
  infer::PipelineResult Seldon = Session.solve();

  // Merlin (collapsed graph, BP inference), bounded to one minute.
  merlin::MerlinOptions MerlinOpts;
  MerlinOpts.Bp.TimeoutSeconds = 60.0;
  merlin::MerlinResult Merlin = merlin::runMerlin(Graph, Seed, MerlinOpts);

  auto Report = [&](const char *Name, const spec::LearnedSpec &Learned,
                    double Threshold, double Seconds) {
    std::printf("%s (%.2fs):\n", Name, Seconds);
    for (Role R : {Role::Source, Role::Sanitizer, Role::Sink}) {
      eval::RolePrecision P =
          eval::exactPrecision(Learned, Truth, Seed, R, Threshold);
      std::printf("  %-10s predictions: %3zu   correct: %3zu   precision: "
                  "%5.1f%%\n",
                  propgraph::roleName(R), P.Predicted, P.Correct,
                  100.0 * P.precision());
    }
    std::printf("\n");
  };

  Report("Seldon (linear optimization, threshold 0.1)", Seldon.Learned, 0.1,
         Seldon.inferenceSeconds());
  Report("Merlin (loopy BP marginals, threshold 0.5)", Merlin.Learned, 0.5,
         Merlin.Seconds);

  std::printf("Merlin factor graph: %zu factors over %zu/%zu/%zu candidates"
              "%s.\n",
              Merlin.NumFactors, Merlin.NumCandidates[0],
              Merlin.NumCandidates[1], Merlin.NumCandidates[2],
              Merlin.TimedOut ? " (timed out)" : "");
  std::printf("Paper §7.4 finding: Merlin is confident but imprecise and "
              "does not scale beyond a\nsingle application, while Seldon "
              "handles the full corpus in seconds.\n");
  return 0;
}
