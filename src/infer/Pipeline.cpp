//===- infer/Pipeline.cpp - Seldon end-to-end inference -------------------===//

#include "infer/Pipeline.h"

#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cassert>
#include <mutex>

using namespace seldon;
using namespace seldon::infer;
using namespace seldon::propgraph;

const char *seldon::infer::phaseName(Phase P) {
  switch (P) {
  case Phase::BuildGraph:
    return "parse";
  case Phase::GenerateConstraints:
    return "constraints";
  case Phase::Solve:
    return "solve";
  }
  return "?";
}

Session::Session(PipelineOptions Opts) : Opts(std::move(Opts)) {}
Session::~Session() = default;
Session::Session(Session &&) noexcept = default;
Session &Session::operator=(Session &&) noexcept = default;

unsigned Session::resolveJobs() const {
  return Opts.Jobs == 0 ? ThreadPool::hardwareConcurrency() : Opts.Jobs;
}

ThreadPool *Session::poolFor(unsigned Jobs) {
  if (Jobs <= 1)
    return nullptr;
  if (!Pool || Pool->numWorkers() != Jobs)
    Pool = std::make_unique<ThreadPool>(Jobs);
  return Pool.get();
}

Session &Session::addProject(const pysem::Project &Proj) {
  assert(!GraphReady && "cannot add projects after the graph is built");
  Projects.push_back(&Proj);
  return *this;
}

Session &Session::addProjects(const std::vector<pysem::Project> &Corpus) {
  for (const pysem::Project &Proj : Corpus)
    addProject(Proj);
  return *this;
}

Session &Session::enableCache(const std::string &Dir) {
  assert(!GraphReady && "enableCache must precede buildGraph");
  Cache = std::make_unique<cache::GraphCache>(Dir);
  return *this;
}

Session &Session::adoptGraph(PropagationGraph NewGraph) {
  Graph = std::move(NewGraph);
  GraphReady = true;
  NumFiles = Graph.files().size();
  BuildSeconds = 0.0;
  BuildShardSeconds.clear();
  SystemReady = false;
  return *this;
}

Session &Session::buildGraph() {
  if (GraphReady)
    return *this;
  unsigned Jobs = resolveJobs();
  ThreadPool *P = poolFor(Jobs);
  JobsUsed = Jobs;
  if (Observer)
    Observer->onPhase(Phase::BuildGraph);

  metrics::Registry &Reg = metrics::Registry::global();
  trace::Span BuildSpan(Reg, "session/parse");
  metrics::TimerStat *ProjectTimer =
      Reg.enabled() ? &Reg.timer("build.project_seconds") : nullptr;
  const size_t Total = Projects.size();
  std::vector<PropagationGraph> PerProject(Total);
  BuildShardSeconds.assign(P ? P->numWorkers() : 1, 0.0);

  std::mutex ProgressMutex;
  size_t Done = 0;
  auto BuildOne = [&](size_t I, unsigned Worker) {
    Timer ShardTimer;
    // With a cache, try to adopt the stored frontend output; the codec is
    // canonical, so a hit is structurally identical to a fresh build and
    // every downstream stage stays bit-deterministic. Misses (including
    // evicted corrupt entries) rebuild and write back.
    bool Loaded = false;
    if (Cache) {
      cache::CacheKey Key = cache::projectCacheKey(*Projects[I], Opts.Build);
      if (std::optional<PropagationGraph> G = Cache->load(Key)) {
        PerProject[I] = std::move(*G);
        Loaded = true;
      } else {
        PerProject[I] = buildProjectGraph(*Projects[I], Opts.Build);
        Cache->store(Key, PerProject[I]);
      }
    } else {
      PerProject[I] = buildProjectGraph(*Projects[I], Opts.Build);
    }
    double Seconds = ShardTimer.seconds();
    BuildShardSeconds[Worker] += Seconds;
    if (ProjectTimer && !Loaded)
      ProjectTimer->record(Seconds);
    if (Observer) {
      std::lock_guard<std::mutex> Lock(ProgressMutex);
      Observer->onProjectGraphBuilt(++Done, Total);
    }
  };
  if (P)
    P->parallelFor(Total, BuildOne);
  else
    for (size_t I = 0; I < Total; ++I)
      BuildOne(I, 0);

  // Deterministic merge: append in corpus order, so event ids and file
  // indices are identical to a serial walk.
  NumFiles = 0;
  for (size_t I = 0; I < Total; ++I) {
    NumFiles += Projects[I]->modules().size();
    Graph.append(PerProject[I]);
    PerProject[I] = PropagationGraph(); // Free as we go.
  }
  BuildSeconds = BuildSpan.finish();
  if (Reg.enabled()) {
    Reg.gauge("build.projects").set(static_cast<double>(Total));
    Reg.gauge("build.files").set(static_cast<double>(NumFiles));
    Reg.gauge("build.events").set(static_cast<double>(Graph.numEvents()));
  }
  if (Observer)
    Observer->onStageFinished(Phase::BuildGraph, BuildSeconds);
  GraphReady = true;
  return *this;
}

Session &Session::generateConstraints(const spec::SeedSpec &Seed) {
  buildGraph();
  unsigned Jobs = resolveJobs();
  ThreadPool *P = poolFor(Jobs);
  JobsUsed = Jobs;
  if (Observer)
    Observer->onPhase(Phase::GenerateConstraints);

  metrics::Registry &Reg = metrics::Registry::global();
  trace::Span GenSpan(Reg, "session/constraints");
  const PropagationGraph *LearnGraph = &Graph;
  PropagationGraph Collapsed;
  if (Opts.CollapseForLearning) {
    Collapsed = Graph.collapseByRep();
    LearnGraph = &Collapsed;
  }
  // Representation frequencies always come from the uncollapsed graph:
  // contraction collapses every representation to one occurrence, which
  // would starve the §4.3 frequency cutoff.
  Reps = RepTable();
  Reps.countOccurrences(Graph);
  System = constraints::generateConstraints(*LearnGraph, Reps, Seed,
                                            Opts.Gen, P, &GenShardSeconds);
  GenSeconds = GenSpan.finish();
  if (Reg.enabled()) {
    Reg.gauge("gen.constraints")
        .set(static_cast<double>(System.Constraints.size()));
    Reg.gauge("gen.vars").set(static_cast<double>(System.Vars.numVars()));
    Reg.gauge("gen.candidates")
        .set(static_cast<double>(System.NumCandidates));
    Reg.gauge("gen.avg_backoff").set(System.AvgBackoffOptions);
    Reg.gauge("gen.pinned").set(static_cast<double>(System.Pinned.size()));
  }
  if (Observer)
    Observer->onStageFinished(Phase::GenerateConstraints, GenSeconds);
  SystemReady = true;
  return *this;
}

PipelineResult Session::solve() {
  assert(SystemReady &&
         "Session::solve() requires generateConstraints() first");
  unsigned Jobs = resolveJobs();
  ThreadPool *P = poolFor(Jobs);
  JobsUsed = Jobs;
  if (Observer)
    Observer->onPhase(Phase::Solve);

  PipelineResult Result;
  Result.Graph = Graph;
  Result.Reps = Reps;
  Result.System = System;
  Result.NumFiles = NumFiles;
  Result.BuildSeconds = BuildSeconds;
  Result.BuildShardSeconds = BuildShardSeconds;
  Result.GenSeconds = GenSeconds;
  Result.GenShardSeconds = GenShardSeconds;
  Result.JobsUsed = Jobs;
  Result.UsedCache = Cache != nullptr;
  if (Cache)
    Result.Cache = Cache->stats();

  solver::SolveOptions SolveOpts = Opts.Solve;
  if (Observer) {
    ProgressObserver *Obs = Observer;
    auto UserCallback = SolveOpts.OnIteration;
    SolveOpts.OnIteration = [Obs, UserCallback](int Iter, double Value) {
      if (UserCallback)
        UserCallback(Iter, Value);
      Obs->onSolveIteration(Iter, Value);
    };
  }

  metrics::Registry &Reg = metrics::Registry::global();
  trace::Span SolveSpan(Reg, "session/solve");
  // Either evaluator runs the same optimizer loop over the same system;
  // the learned scores are byte-identical (see docs/architecture.md).
  auto RunSolver = [&](const auto &Obj) {
    std::vector<double> X0 = Obj.initialPoint();
    if (Opts.WarmStart) {
      // Seed each variable with the previous run's score for its
      // (representation, role); new variables start at zero.
      const constraints::VarTable &Vars = Result.System.Vars;
      for (uint32_t V = 0; V < Vars.numVars(); ++V) {
        const std::string &Rep = Result.Reps.repString(Vars.repOf(V));
        X0[V] = Opts.WarmStart->score(Rep, Vars.roleOf(V));
      }
      Obj.project(X0);
    }
    if (Opts.UseAdam) {
      solver::AdamOptimizer Optimizer(SolveOpts);
      Result.Solve = Optimizer.minimize(Obj, std::move(X0));
    } else {
      solver::ProjectedGradient Optimizer(SolveOpts);
      Result.Solve = Optimizer.minimize(Obj, std::move(X0));
    }
  };
  if (Opts.UseCompiledSolver) {
    solver::CompiledObjective Obj =
        Result.System.makeCompiledObjective(Opts.Lambda);
    Obj.setThreadPool(P);
    Result.UsedCompiledSolver = true;
    Result.SolverStats = Obj.stats();
    RunSolver(Obj);
  } else {
    solver::Objective Obj = Result.System.makeObjective(Opts.Lambda);
    Obj.setThreadPool(P);
    RunSolver(Obj);
  }
  Result.SolveSeconds = SolveSpan.finish();
  if (Reg.enabled()) {
    const solver::CompileStats &CS = Result.SolverStats;
    Reg.gauge("solver.rows_before").set(static_cast<double>(CS.RowsBefore));
    Reg.gauge("solver.rows_after").set(static_cast<double>(CS.RowsAfter));
    Reg.gauge("solver.terms_before")
        .set(static_cast<double>(CS.TermsBefore));
    Reg.gauge("solver.nonzeros").set(static_cast<double>(CS.NonZeros));
    Reg.gauge("solver.max_multiplicity")
        .set(static_cast<double>(CS.MaxMultiplicity));
    Reg.gauge("solver.compiled")
        .set(Result.UsedCompiledSolver ? 1.0 : 0.0);
    Reg.gauge("solve.final_objective").set(Result.Solve.FinalObjective);
    Reg.gauge("solve.converged").set(Result.Solve.Converged ? 1.0 : 0.0);
  }
  if (Observer)
    Observer->onStageFinished(Phase::Solve, Result.SolveSeconds);

  // Read scores back: one entry per (representation, role) variable.
  const constraints::VarTable &Vars = Result.System.Vars;
  for (uint32_t V = 0; V < Vars.numVars(); ++V) {
    const std::string &Rep = Result.Reps.repString(Vars.repOf(V));
    Result.Learned.setScore(Rep, Vars.roleOf(V), Result.Solve.X[V]);
  }
  return Result;
}

PipelineResult
seldon::infer::runPipeline(const std::vector<pysem::Project> &Corpus,
                           const spec::SeedSpec &Seed,
                           const PipelineOptions &Opts) {
  Session S(Opts);
  S.addProjects(Corpus);
  S.generateConstraints(Seed);
  return S.solve();
}

PipelineResult
seldon::infer::runPipelineOnGraph(PropagationGraph Graph,
                                  const spec::SeedSpec &Seed,
                                  const PipelineOptions &Opts) {
  Session S(Opts);
  S.adoptGraph(std::move(Graph));
  S.generateConstraints(Seed);
  return S.solve();
}
