file(REMOVE_RECURSE
  "CMakeFiles/propgraph_test.dir/propgraph_test.cpp.o"
  "CMakeFiles/propgraph_test.dir/propgraph_test.cpp.o.d"
  "propgraph_test"
  "propgraph_test.pdb"
  "propgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/propgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
