//===- tests/argparser_test.cpp - Declarative CLI flag parsing ------------===//
//
// The ArgParser contract shared by `seldon` and `seldond`: typed flags in
// both `--name value` and `--name=value` spellings, strict numerics that
// never let garbage through atoi, positional collection, and usage text
// generated from the same table that parses — so help cannot drift.
//
//===----------------------------------------------------------------------===//

#include "support/ArgParser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace seldon;

namespace {

/// Runs \p Parser over \p Args as if they were argv[Begin..]; returns
/// parse()'s verdict and fills \p Positional.
bool parseArgs(ArgParser &Parser, std::vector<std::string> Args,
               std::vector<std::string> *Positional) {
  std::vector<std::string> Storage = std::move(Args);
  std::vector<char *> Argv;
  Argv.push_back(const_cast<char *>("test"));
  for (std::string &A : Storage)
    Argv.push_back(A.data());
  return Parser.parse(static_cast<int>(Argv.size()), Argv.data(), 1,
                      Positional);
}

TEST(ArgParserTest, TypedFlagsInBothSpellings) {
  bool Verbose = false;
  std::string Out;
  unsigned long Iters = 600;
  double Threshold = 0.1;
  ArgParser Parser;
  Parser.flag("--verbose", &Verbose, "chatty")
      .string("--out", &Out, "FILE", "output file")
      .unsignedInt("--iters", &Iters, "N", "iterations")
      .decimal("--threshold", &Threshold, "X", "score cutoff");

  std::vector<std::string> Positional;
  ASSERT_TRUE(parseArgs(Parser,
                        {"--verbose", "--out", "spec.txt", "--iters=250",
                         "--threshold", "0.25", "dir1", "dir2"},
                        &Positional));
  EXPECT_TRUE(Verbose);
  EXPECT_EQ(Out, "spec.txt");
  EXPECT_EQ(Iters, 250ul);
  EXPECT_DOUBLE_EQ(Threshold, 0.25);
  EXPECT_EQ(Positional, (std::vector<std::string>{"dir1", "dir2"}));
  EXPECT_TRUE(Parser.seen("--out"));
  EXPECT_FALSE(Parser.seen("--missing"));
}

TEST(ArgParserTest, DefaultsSurviveWhenFlagsAbsent) {
  unsigned long Iters = 600;
  std::string Out = "default.spec";
  ArgParser Parser;
  Parser.unsignedInt("--iters", &Iters, "N", "iterations")
      .string("--out", &Out, "FILE", "output");
  std::vector<std::string> Positional;
  ASSERT_TRUE(parseArgs(Parser, {"corpus"}, &Positional));
  EXPECT_EQ(Iters, 600ul);
  EXPECT_EQ(Out, "default.spec");
  EXPECT_FALSE(Parser.seen("--iters"));
}

TEST(ArgParserTest, ErrorsRejectTheWholeLine) {
  bool Flag = false;
  unsigned long N = 0;
  double D = 0.0;
  std::string S;
  std::vector<std::string> Positional;
  const std::vector<std::vector<std::string>> Bad = {
      {"--unknown"},         // unregistered option
      {"--n", "banana"},     // not a number
      {"--n", "-1"},         // signs rejected
      {"--n", "12x"},        // trailing junk
      {"--n"},               // missing value
      {"--d", "1.2.3"},      // malformed decimal
      {"--d", "inf"},        // must be finite
      {"--b=1"},             // inline value on a boolean flag
      {"--s"},               // missing string value
  };
  for (const std::vector<std::string> &Args : Bad) {
    ArgParser Parser;
    Parser.flag("--b", &Flag, "bool")
        .unsignedInt("--n", &N, "N", "count")
        .decimal("--d", &D, "X", "number")
        .string("--s", &S, "V", "value");
    EXPECT_FALSE(parseArgs(Parser, Args, &Positional)) << Args.front();
  }
}

TEST(ArgParserTest, StrictNumericHelpers) {
  unsigned long U = 0;
  EXPECT_TRUE(parseStrictUnsigned("--n", "42", U));
  EXPECT_EQ(U, 42ul);
  EXPECT_FALSE(parseStrictUnsigned("--n", "", U));
  EXPECT_FALSE(parseStrictUnsigned("--n", "-3", U));
  EXPECT_FALSE(parseStrictUnsigned("--n", "+3", U));
  EXPECT_FALSE(parseStrictUnsigned("--n", "3 ", U));
  EXPECT_FALSE(parseStrictUnsigned("--n", "99999999999999999999999", U));

  double D = 0.0;
  EXPECT_TRUE(parseStrictDouble("--x", "0.5", D));
  EXPECT_DOUBLE_EQ(D, 0.5);
  EXPECT_TRUE(parseStrictDouble("--x", "-2", D));
  EXPECT_FALSE(parseStrictDouble("--x", "nan", D));
  EXPECT_FALSE(parseStrictDouble("--x", "0.5abc", D));
}

TEST(ArgParserTest, UsageRendersEveryRegisteredFlag) {
  bool Flag = false;
  unsigned long N = 0;
  std::string S;
  ArgParser Parser;
  Parser.flag("--progress", &Flag, "report phases to stderr")
      .unsignedInt("--jobs", &N, "N", "worker threads")
      .string("--out", &S, "FILE", "write the learned spec to FILE");
  std::string Usage = Parser.usage();
  EXPECT_NE(Usage.find("--progress"), std::string::npos);
  EXPECT_NE(Usage.find("--jobs N"), std::string::npos);
  EXPECT_NE(Usage.find("--out FILE"), std::string::npos);
  EXPECT_NE(Usage.find("write the learned spec"), std::string::npos);
}

} // namespace
